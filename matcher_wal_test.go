package graphkeys

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"graphkeys/internal/testutil"
)

// walGen is the shared-generator configuration of the WAL tests: a
// value-anchored key and a recursive key (Bands), entity churn, and
// coalescing ops, so the replayed fixpoint exercises every repair
// path and the log sees partially-coalescing deltas.
func walGen(seed int64) *testutil.Generator {
	return testutil.New(testutil.Config{
		Seed:        seed,
		Groups:      3,
		PerGroup:    8,
		Bands:       true,
		EntityChurn: true,
		Coalesce:    true,
	})
}

func walFixtureKeys(t *testing.T, gen *testutil.Generator) *KeySet {
	t.Helper()
	ks, err := ParseKeys(gen.Keys())
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

// sortedPairs normalizes matches into sorted {min, max} label pairs,
// the ID-order-independent form of chase(G, Σ).
func sortedPairs(ms []Pair) []Pair {
	out := make([]Pair, len(ms))
	for i, m := range ms {
		if m.A > m.B {
			m.A, m.B = m.B, m.A
		}
		out[i] = m
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// runCrashReplay streams random generated deltas through a durable
// matcher with fsync'd WAL (optionally snapshotting midway), drops the
// in-memory state, reopens the directory, and asserts the
// reconstruction. Without a snapshot the replayed matcher is
// byte-identical down to the dense node IDs, so the raw Matches lists
// must match exactly; with a snapshot the graph text is still
// byte-identical but IDs renumber from the canonical snapshot order,
// so pairs compare as sorted label pairs.
func runCrashReplay(t *testing.T, snapshotMidway bool) {
	const rounds = 30
	dir := t.TempDir()
	gen := walGen(7)
	ks := walFixtureKeys(t, gen)

	m, err := OpenMatcher(dir, ks, Options{Durability: DurabilityFsync})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(wrapDelta(gen.Seed())); err != nil {
		t.Fatal(err)
	}
	for round, gd := range gen.Sequence(rounds) {
		if _, _, err := m.Apply(wrapDelta(gd)); err != nil {
			t.Fatal(err)
		}
		if snapshotMidway && round == rounds/2 {
			if err := m.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantMatches := m.Result().Matches
	var wantGraph bytes.Buffer
	if err := m.Graph().Write(&wantGraph); err != nil {
		t.Fatal(err)
	}
	// Drop the in-memory state without any graceful shutdown: the
	// fsync'd WAL is all that survives.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m = nil

	re, err := OpenMatcher(dir, ks, Options{Durability: DurabilityFsync})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var gotGraph bytes.Buffer
	if err := re.Graph().Write(&gotGraph); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotGraph.Bytes(), wantGraph.Bytes()) {
		t.Fatalf("replayed graph diverges:\ngot:\n%s\nwant:\n%s", gotGraph.String(), wantGraph.String())
	}
	gotMatches := re.Result().Matches
	if snapshotMidway {
		if !reflect.DeepEqual(sortedPairs(gotMatches), sortedPairs(wantMatches)) {
			t.Fatalf("replayed chase pairs diverge:\ngot:  %v\nwant: %v", gotMatches, wantMatches)
		}
	} else if !reflect.DeepEqual(gotMatches, wantMatches) {
		t.Fatalf("replayed chase pairs not byte-identical:\ngot:  %v\nwant: %v", gotMatches, wantMatches)
	}

	// And the replayed fixpoint equals a from-scratch chase of the
	// reconstructed graph (the usual differential closure).
	full, err := Match(re.Graph(), ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.Result().Matches, full.Matches) {
		t.Fatal("replayed incremental state diverges from full re-chase")
	}
}

// TestCrashReplayDifferential is the crash-replay differential test
// over the pure log: replay reconstructs byte-identical chase pairs.
func TestCrashReplayDifferential(t *testing.T) { runCrashReplay(t, false) }

// TestCrashReplayDifferentialSnapshot covers the compaction path: a
// snapshot midway, then more logged deltas, then crash and reopen.
func TestCrashReplayDifferentialSnapshot(t *testing.T) { runCrashReplay(t, true) }

// TestNoopDeltaWritesNoWALRecord pins the coalescing/WAL contract: a
// delta that normalizes to a no-op leaves the log byte-identical.
func TestNoopDeltaWritesNoWALRecord(t *testing.T) {
	dir := t.TempDir()
	gen := walGen(7)
	ks := walFixtureKeys(t, gen)
	m, err := OpenMatcher(dir, ks, Options{Durability: DurabilityFsync})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.Apply(wrapDelta(gen.Seed())); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "wal.log")
	before, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	noop := NewDelta().
		AddValueTriple("g0-p0", "scratch", "v").
		AddValueTriple("g0-p0", "scratch", "v"). // dup
		RemoveValueTriple("g0-p0", "scratch", "v")
	if _, _, err := m.Apply(noop); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("no-op delta grew the WAL by %d bytes", len(after)-len(before))
	}
}

// TestSnapshotKeepsTriplelessEntities is the matcher-level regression
// for snapshot compaction: an entity with no incident triples must
// survive Snapshot + reopen and accept triples afterwards.
func TestSnapshotKeepsTriplelessEntities(t *testing.T) {
	dir := t.TempDir()
	gen := walGen(7)
	ks := walFixtureKeys(t, gen)
	m, err := OpenMatcher(dir, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(wrapDelta(gen.Seed())); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(NewDelta().AddEntity("lonely", "person")); err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	re, err := OpenMatcher(dir, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Graph().HasEntity("lonely"); !ok {
		t.Fatal("tripleless entity lost by snapshot compaction")
	}
	// The seed gives g0-p0 the email g0-mail0; joining that collision
	// class identifies lonely with it.
	if _, _, err := re.Apply(NewDelta().
		AddValueTriple("lonely", "email", "g0-mail0").
		AddValueTriple("g0-p0", "email", "g0-mail0")); err != nil {
		t.Fatalf("triple on revived entity: %v", err)
	}
	if !re.Same("lonely", "g0-p0") {
		t.Fatal("revived entity did not join g0-p0's class")
	}
}

// TestOpenMatcherDetectsSnapshotMismatch: a snapshot taken under one
// key set must refuse to open under a key set deriving different
// pairs.
func TestOpenMatcherDetectsSnapshotMismatch(t *testing.T) {
	dir := t.TempDir()
	gen := walGen(7)
	ks := walFixtureKeys(t, gen)
	m, err := OpenMatcher(dir, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(wrapDelta(gen.Seed())); err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	other, err := ParseKeys(`key Z for person {
		x -nonexistent-> v*
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMatcher(dir, other, Options{}); err == nil {
		t.Fatal("snapshot under a different key set opened without error")
	}
}
