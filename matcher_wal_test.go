package graphkeys

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// walFixtureKeys returns a key set with a value-anchored key and a
// recursive key, so the replayed fixpoint exercises both repair paths.
func walFixtureKeys(t *testing.T) *KeySet {
	t.Helper()
	ks, err := ParseKeys(`
key P for person {
    x -email-> e*
}
key B for band {
    x -name_of-> n*
    x -led_by-> $y:person
}`)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

// seedDelta builds the initial population as one delta: persons with
// colliding emails, bands led by them.
func seedDelta(ents int) *Delta {
	d := NewDelta()
	for i := 0; i < ents; i++ {
		id := fmt.Sprintf("p%d", i)
		d.AddEntity(id, "person")
		d.AddValueTriple(id, "email", fmt.Sprintf("mail%d", i/2))
	}
	for i := 0; i < ents/2; i++ {
		id := fmt.Sprintf("b%d", i)
		d.AddEntity(id, "band")
		d.AddValueTriple(id, "name_of", fmt.Sprintf("band%d", i/2))
		d.AddEntityTriple(id, "led_by", fmt.Sprintf("p%d", i%ents))
	}
	return d
}

// randomDelta mirrors the PR 3 differential harness's mutation mix:
// remove/re-add value triples, flip emails, occasionally remove and
// re-create a whole entity.
func randomDelta(rng *rand.Rand, ents int, round int) *Delta {
	d := NewDelta()
	switch rng.Intn(4) {
	case 0: // email churn
		i := rng.Intn(ents)
		id := fmt.Sprintf("p%d", i)
		d.RemoveValueTriple(id, "email", fmt.Sprintf("mail%d", i/2))
		d.AddValueTriple(id, "email", fmt.Sprintf("mail%d", rng.Intn(ents/2+1)))
	case 1: // band rename
		i := rng.Intn(ents/2 + 1)
		id := fmt.Sprintf("b%d", i%(ents/2))
		d.RemoveValueTriple(id, "name_of", fmt.Sprintf("band%d", (i%(ents/2))/2))
		d.AddValueTriple(id, "name_of", fmt.Sprintf("band%d", rng.Intn(ents/4+1)))
	case 2: // entity churn: drop a person and re-add with a fresh email
		i := rng.Intn(ents)
		id := fmt.Sprintf("p%d", i)
		d.RemoveEntity(id)
		d.AddEntity(id, "person")
		d.AddValueTriple(id, "email", fmt.Sprintf("mail%d", rng.Intn(ents/2+1)))
	case 3: // a delta with internal churn that partially coalesces
		i := rng.Intn(ents)
		id := fmt.Sprintf("p%d", i)
		lit := fmt.Sprintf("note-%d", round)
		d.AddValueTriple(id, "note", lit)
		d.AddValueTriple(id, "note", lit)
		d.RemoveValueTriple(id, "note", lit)
	}
	return d
}

// sortedPairs normalizes matches into sorted {min, max} label pairs,
// the ID-order-independent form of chase(G, Σ).
func sortedPairs(ms []Pair) []Pair {
	out := make([]Pair, len(ms))
	for i, m := range ms {
		if m.A > m.B {
			m.A, m.B = m.B, m.A
		}
		out[i] = m
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// runCrashReplay streams N random deltas through a durable matcher
// with fsync'd WAL (optionally snapshotting midway), drops the
// in-memory state, reopens the directory, and asserts the
// reconstruction. Without a snapshot the replayed matcher is
// byte-identical down to the dense node IDs, so the raw Matches lists
// must match exactly; with a snapshot the graph text is still
// byte-identical but IDs renumber from the canonical snapshot order,
// so pairs compare as sorted label pairs.
func runCrashReplay(t *testing.T, snapshotMidway bool) {
	const ents = 24
	const rounds = 30
	dir := t.TempDir()
	ks := walFixtureKeys(t)

	m, err := OpenMatcher(dir, ks, Options{Durability: DurabilityFsync})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(seedDelta(ents)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < rounds; round++ {
		if _, _, err := m.Apply(randomDelta(rng, ents, round)); err != nil {
			t.Fatal(err)
		}
		if snapshotMidway && round == rounds/2 {
			if err := m.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantMatches := m.Result().Matches
	var wantGraph bytes.Buffer
	if err := m.Graph().Write(&wantGraph); err != nil {
		t.Fatal(err)
	}
	// Drop the in-memory state without any graceful shutdown: the
	// fsync'd WAL is all that survives.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m = nil

	re, err := OpenMatcher(dir, ks, Options{Durability: DurabilityFsync})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	var gotGraph bytes.Buffer
	if err := re.Graph().Write(&gotGraph); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotGraph.Bytes(), wantGraph.Bytes()) {
		t.Fatalf("replayed graph diverges:\ngot:\n%s\nwant:\n%s", gotGraph.String(), wantGraph.String())
	}
	gotMatches := re.Result().Matches
	if snapshotMidway {
		if !reflect.DeepEqual(sortedPairs(gotMatches), sortedPairs(wantMatches)) {
			t.Fatalf("replayed chase pairs diverge:\ngot:  %v\nwant: %v", gotMatches, wantMatches)
		}
	} else if !reflect.DeepEqual(gotMatches, wantMatches) {
		t.Fatalf("replayed chase pairs not byte-identical:\ngot:  %v\nwant: %v", gotMatches, wantMatches)
	}

	// And the replayed fixpoint equals a from-scratch chase of the
	// reconstructed graph (the usual differential closure).
	full, err := Match(re.Graph(), ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.Result().Matches, full.Matches) {
		t.Fatal("replayed incremental state diverges from full re-chase")
	}
}

// TestCrashReplayDifferential is the crash-replay differential test
// over the pure log: replay reconstructs byte-identical chase pairs.
func TestCrashReplayDifferential(t *testing.T) { runCrashReplay(t, false) }

// TestCrashReplayDifferentialSnapshot covers the compaction path: a
// snapshot midway, then more logged deltas, then crash and reopen.
func TestCrashReplayDifferentialSnapshot(t *testing.T) { runCrashReplay(t, true) }

// TestNoopDeltaWritesNoWALRecord pins the coalescing/WAL contract: a
// delta that normalizes to a no-op leaves the log byte-identical.
func TestNoopDeltaWritesNoWALRecord(t *testing.T) {
	dir := t.TempDir()
	ks := walFixtureKeys(t)
	m, err := OpenMatcher(dir, ks, Options{Durability: DurabilityFsync})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.Apply(seedDelta(8)); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "wal.log")
	before, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	noop := NewDelta().
		AddValueTriple("p0", "scratch", "v").
		AddValueTriple("p0", "scratch", "v"). // dup
		RemoveValueTriple("p0", "scratch", "v")
	if _, _, err := m.Apply(noop); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("no-op delta grew the WAL by %d bytes", len(after)-len(before))
	}
}

// TestSnapshotKeepsTriplelessEntities is the matcher-level regression
// for snapshot compaction: an entity with no incident triples must
// survive Snapshot + reopen and accept triples afterwards.
func TestSnapshotKeepsTriplelessEntities(t *testing.T) {
	dir := t.TempDir()
	ks := walFixtureKeys(t)
	m, err := OpenMatcher(dir, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(seedDelta(8)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(NewDelta().AddEntity("lonely", "person")); err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	re, err := OpenMatcher(dir, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Graph().HasEntity("lonely"); !ok {
		t.Fatal("tripleless entity lost by snapshot compaction")
	}
	if _, _, err := re.Apply(NewDelta().AddValueTriple("lonely", "email", "mail0")); err != nil {
		t.Fatalf("triple on revived entity: %v", err)
	}
	if !re.Same("lonely", "p0") {
		t.Fatal("revived entity did not join p0's class")
	}
}

// TestOpenMatcherDetectsSnapshotMismatch: a snapshot taken under one
// key set must refuse to open under a key set deriving different
// pairs.
func TestOpenMatcherDetectsSnapshotMismatch(t *testing.T) {
	dir := t.TempDir()
	ks := walFixtureKeys(t)
	m, err := OpenMatcher(dir, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(seedDelta(8)); err != nil {
		t.Fatal(err)
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	m.Close()

	other, err := ParseKeys(`key Z for person {
		x -nonexistent-> v*
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMatcher(dir, other, Options{}); err == nil {
		t.Fatal("snapshot under a different key set opened without error")
	}
}
