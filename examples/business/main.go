// Command business reproduces the paper's company example (G2 with keys
// Q4 and Q5): identifying companies across mergers and splits where the
// child carries the parent's name — the case that needs DAG-shaped keys
// mixing wildcards (the same-named parent, whose identity is NOT
// required) with entity variables (the other parent, whose identity IS
// required).
package main

import (
	"fmt"
	"log"

	"graphkeys"
)

const keysDSL = `
# Q4: a company merged from a same-named parent is identified by its
# name and the other parent company.
key Q4 for company {
    x -name_of-> name*
    _w:company -name_of-> name*
    _w:company -parent_of-> x
    $c:company -parent_of-> x
}

# Q5: a company split from a same-named parent is identified by its
# name and another child company after splitting.
key Q5 for company {
    x -name_of-> name*
    _w:company -name_of-> name*
    x -parent_of-> _w:company
    x -parent_of-> $c:company
}
`

func main() {
	g := graphkeys.NewGraph()
	for _, id := range []string{"com0", "com1", "com2", "com3", "com4", "com5"} {
		if err := g.AddEntity(id, "company"); err != nil {
			log.Fatal(err)
		}
	}
	names := map[string]string{
		"com0": "AT&T", "com1": "AT&T", "com2": "AT&T",
		"com3": "SBC", "com4": "AT&T", "com5": "AT&T",
	}
	for id, n := range names {
		if err := g.AddValueTriple(id, "name_of", n); err != nil {
			log.Fatal(err)
		}
	}
	// The 2005-style merger: AT&T + SBC -> new AT&T, ingested twice.
	parents := [][2]string{
		{"com1", "com4"}, {"com3", "com4"},
		{"com2", "com5"}, {"com3", "com5"},
		// The split: AT&T -> AT&T + SBC, also ingested twice.
		{"com1", "com0"}, {"com1", "com3"},
		{"com2", "com0"}, {"com2", "com3"},
	}
	for _, p := range parents {
		if err := g.AddEntityTriple(p[0], "parent_of", p[1]); err != nil {
			log.Fatal(err)
		}
	}

	ks, err := graphkeys.ParseKeys(keysDSL)
	if err != nil {
		log.Fatal(err)
	}
	res, err := graphkeys.Match(g, ks, graphkeys.Options{
		Engine: graphkeys.MapReduceOpt, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("duplicate companies found:")
	for _, m := range res.Matches {
		fmt.Printf("  %s (%s) == %s (%s)\n", m.A, names[m.A], m.B, names[m.B])
	}

	fmt.Println("\nexplanations:")
	for _, m := range res.Matches {
		proof, err := graphkeys.Explain(g, ks, m.A, m.B, graphkeys.Options{})
		if err != nil {
			log.Fatal(err)
		}
		last := proof.Steps[len(proof.Steps)-1]
		fmt.Printf("  (%s, %s) identified by key %s\n", m.A, m.B, last.Key)
	}
}
