// Command music reproduces the paper's running example (Examples 1–9):
// the knowledge-base fragment G1 with mutually recursive keys Q1–Q3 —
// albums identified via their artist, artists via one of their albums —
// and prints the chase, an explanation of the recursive identification,
// and the key-satisfaction violations.
package main

import (
	"fmt"
	"log"

	"graphkeys"
)

const keysDSL = `
# Q1: an album is identified by its name and its primary recording artist.
key Q1 for album {
    x -name_of-> name*
    x -recorded_by-> $y:artist
}

# Q2: an album is identified by its name and its year of initial release.
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}

# Q3: an artist is identified by the name and one recorded album.
key Q3 for artist {
    x -name_of-> name*
    $a:album -recorded_by-> x
}
`

func main() {
	g := graphkeys.NewGraph()
	entities := map[string]string{
		"alb1": "album", "alb2": "album", "alb3": "album",
		"art1": "artist", "art2": "artist", "art3": "artist",
	}
	for id, typ := range entities {
		if err := g.AddEntity(id, typ); err != nil {
			log.Fatal(err)
		}
	}
	values := [][3]string{
		{"alb1", "name_of", "Anthology 2"},
		{"alb2", "name_of", "Anthology 2"},
		{"alb3", "name_of", "Anthology 2"},
		{"alb1", "release_year", "1996"},
		{"alb2", "release_year", "1996"},
		{"art1", "name_of", "The Beatles"},
		{"art2", "name_of", "The Beatles"},
		{"art3", "name_of", "John Farnham"},
	}
	for _, t := range values {
		if err := g.AddValueTriple(t[0], t[1], t[2]); err != nil {
			log.Fatal(err)
		}
	}
	edges := [][3]string{
		{"alb1", "recorded_by", "art1"},
		{"alb2", "recorded_by", "art2"},
		{"alb3", "recorded_by", "art3"},
	}
	for _, t := range edges {
		if err := g.AddEntityTriple(t[0], t[1], t[2]); err != nil {
			log.Fatal(err)
		}
	}

	ks, err := graphkeys.ParseKeys(keysDSL)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== entity matching (vertex-centric engine) ==")
	res, err := graphkeys.Match(g, ks, graphkeys.Options{
		Engine: graphkeys.VertexCentricOpt, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, cls := range res.Classes {
		fmt.Printf("  same entity: %v\n", cls)
	}

	fmt.Println("\n== why are art1 and art2 the same? ==")
	proof, err := graphkeys.Explain(g, ks, "art1", "art2", graphkeys.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i, st := range proof.Steps {
		fmt.Printf("  step %d: key %s identifies (%s, %s)", i+1, st.Key, st.A, st.B)
		if len(st.Requires) > 0 {
			fmt.Printf(" using %v", st.Requires)
		}
		fmt.Println()
	}

	fmt.Println("\n== key satisfaction: does G1 satisfy the keys? ==")
	vs, err := graphkeys.Validate(g, ks, graphkeys.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if len(vs) == 0 {
		fmt.Println("  yes: no violations")
	}
	for _, v := range vs {
		fmt.Printf("  violation of %s: (%s, %s) are distinct but coincide\n", v.Key, v.A, v.B)
	}
}
