// Command social demonstrates social-network reconciliation (one of
// the paper's motivating applications): matching user accounts across
// two social networks with mutually recursive keys — an account is
// identified by its handle and its employer; an employer is identified
// by its name and one of its identified members. A value-based email
// key seeds the recursion, and identifications then cascade in both
// directions, including across transitive merges.
package main

import (
	"fmt"
	"log"
	"strings"

	"graphkeys"
)

const keysDSL = `
# An account is identified by handle + employer entity.
key KAccount for account {
    x -handle-> h*
    x -works_at-> $e:org
}

# A verified email identifies an account outright.
key KEmail for account {
    x -handle-> h*
    x -email-> em*
}

# An organization is identified by name + one identified member.
key KOrg for org {
    x -name-> n*
    $u:account -works_at-> x
}
`

func main() {
	g := graphkeys.NewGraph()
	add := func(id, typ string) {
		if err := g.AddEntity(id, typ); err != nil {
			log.Fatal(err)
		}
	}
	val := func(s, p, v string) {
		if err := g.AddValueTriple(s, p, v); err != nil {
			log.Fatal(err)
		}
	}
	ent := func(s, p, o string) {
		if err := g.AddEntityTriple(s, p, o); err != nil {
			log.Fatal(err)
		}
	}

	// Network "blue": alice and bob work at Initech (blue's record).
	add("blue:alice", "account")
	add("blue:bob", "account")
	add("blue:initech", "org")
	val("blue:alice", "handle", "alice")
	val("blue:bob", "handle", "bob")
	val("blue:initech", "name", "Initech")
	ent("blue:alice", "works_at", "blue:initech")
	ent("blue:bob", "works_at", "blue:initech")

	// Network "green": the same people, org ingested separately.
	add("green:alice", "account")
	add("green:bob", "account")
	add("green:initech", "org")
	val("green:alice", "handle", "alice")
	val("green:bob", "handle", "bob")
	val("green:initech", "name", "Initech")
	ent("green:alice", "works_at", "green:initech")
	ent("green:bob", "works_at", "green:initech")

	// Alice linked the same email on both networks: the seed.
	val("blue:alice", "email", "alice@example.org")
	val("green:alice", "email", "alice@example.org")

	// A decoy: another Initech-named org with an unrelated member.
	add("green:initech2", "org")
	add("green:carol", "account")
	val("green:initech2", "name", "Initech")
	val("green:carol", "handle", "carol")
	ent("green:carol", "works_at", "green:initech2")

	ks, err := graphkeys.ParseKeys(keysDSL)
	if err != nil {
		log.Fatal(err)
	}
	if _, cyclic := ks.LongestChain(); !cyclic {
		log.Fatal("expected mutually recursive keys")
	}

	res, err := graphkeys.Match(g, ks, graphkeys.Options{
		Engine: graphkeys.VertexCentricOpt, Workers: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("reconciled identities:")
	for _, cls := range res.Classes {
		fmt.Printf("  %s\n", strings.Join(cls, " == "))
	}
	fmt.Println("\ncascade:")
	fmt.Println("  1. KEmail matches blue:alice == green:alice (shared email)")
	fmt.Println("  2. KOrg matches blue:initech == green:initech (name + alice)")
	fmt.Println("  3. KAccount matches blue:bob == green:bob (handle + employer)")
	proof, err := graphkeys.Explain(g, ks, "blue:bob", "green:bob", graphkeys.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproof that blue:bob == green:bob has %d steps:\n", len(proof.Steps))
	for i, st := range proof.Steps {
		fmt.Printf("  %d. %s identifies (%s, %s)\n", i+1, st.Key, st.A, st.B)
	}
}
