// Command quickstart is the smallest end-to-end use of graphkeys:
// define a value-based key, build a graph with a duplicate, and match.
package main

import (
	"fmt"
	"log"

	"graphkeys"
)

func main() {
	g := graphkeys.NewGraph()
	must(g.AddEntity("alb1", "album"))
	must(g.AddEntity("alb2", "album"))
	must(g.AddEntity("alb3", "album"))
	must(g.AddValueTriple("alb1", "name_of", "Anthology 2"))
	must(g.AddValueTriple("alb2", "name_of", "Anthology 2"))
	must(g.AddValueTriple("alb3", "name_of", "Anthology 2"))
	must(g.AddValueTriple("alb1", "release_year", "1996"))
	must(g.AddValueTriple("alb2", "release_year", "1996"))
	must(g.AddValueTriple("alb3", "release_year", "2003"))

	ks, err := graphkeys.ParseKeys(`
# An album is identified by its name and year of initial release.
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := graphkeys.Match(g, ks, graphkeys.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d entities, %d triples; keys: %d\n",
		g.NumEntities(), g.NumTriples(), ks.Len())
	for _, m := range res.Matches {
		fmt.Printf("%s and %s refer to the same album\n", m.A, m.B)
	}
	if len(res.Matches) == 0 {
		fmt.Println("no duplicates found")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
