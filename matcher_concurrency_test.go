package graphkeys

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMatcherConcurrentApplyAndRead is the public-surface concurrency
// contract: goroutines calling Same/Result/LastStats and reading the
// graph while another goroutine streams deltas through Apply. Run
// under -race (the CI race job does) this exercises the Matcher's
// writer/reader lock and the sharded store beneath it.
func TestMatcherConcurrentApplyAndRead(t *testing.T) {
	g := NewGraph()
	const ents = 60
	for i := 0; i < ents; i++ {
		id := fmt.Sprintf("p%d", i)
		if err := g.AddEntity(id, "person"); err != nil {
			t.Fatal(err)
		}
		if err := g.AddValueTriple(id, "email", fmt.Sprintf("mail%d", i/2)); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := ParseKeys(`key P for person {
		x -email-> e*
	}`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMatcher(g, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Result().Matches) == 0 {
		t.Fatal("fixture identified nothing")
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				a := fmt.Sprintf("p%d", (r+i)%ents)
				b := fmt.Sprintf("p%d", (r+i+1)%ents)
				_ = m.Same(a, b)
				if i%7 == 0 {
					res := m.Result()
					for _, pr := range res.Matches {
						if pr.A == pr.B {
							t.Error("reflexive pair reported")
							return
						}
					}
					_ = m.LastStats()
				}
				// Raw graph reads race-free against Apply by the shard
				// contract.
				_, _ = m.Graph().HasEntity(a)
				_ = m.Graph().NumTriples()
			}
		}(r)
	}

	for round := 0; round < 40; round++ {
		i := round % ents
		id := fmt.Sprintf("p%d", i)
		d := NewDelta()
		d.RemoveValueTriple(id, "email", fmt.Sprintf("mail%d", i/2))
		d.AddValueTriple(id, "email", fmt.Sprintf("mail%d", (i/2+1)%ents))
		if _, _, err := m.Apply(d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round%10 == 9 {
			d := NewDelta().RemoveEntity(id)
			if _, _, err := m.Apply(d); err != nil {
				t.Fatal(err)
			}
			d2 := NewDelta().AddEntity(id, "person")
			d2.AddValueTriple(id, "email", fmt.Sprintf("mail%d", i/2))
			if _, _, err := m.Apply(d2); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestParallelChaseEngineMatchesChase pins the public dispatch: the
// ParallelChase engine returns the same Matches as every other engine.
func TestParallelChaseEngineMatchesChase(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("a%d", i)
		if err := g.AddEntity(id, "album"); err != nil {
			t.Fatal(err)
		}
		if err := g.AddValueTriple(id, "name_of", fmt.Sprintf("title%d", i%4)); err != nil {
			t.Fatal(err)
		}
		if err := g.AddValueTriple(id, "release_year", fmt.Sprintf("%d", 1990+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := ParseKeys(`key Q for album {
		x -name_of-> n*
		x -release_year-> y*
	}`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Match(g, ks, Options{Engine: Chase})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 1, 2, 8} {
		got, err := Match(g, ks, Options{Engine: ParallelChase, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Matches) != fmt.Sprint(want.Matches) {
			t.Fatalf("Parallelism=%d: %v != %v", p, got.Matches, want.Matches)
		}
		if got.Engine != ParallelChase {
			t.Fatalf("result engine = %v", got.Engine)
		}
	}
	if ParallelChase.String() != "ParallelChase" {
		t.Fatalf("String() = %q", ParallelChase.String())
	}
}
