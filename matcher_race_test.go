package graphkeys

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"graphkeys/internal/testutil"
)

// TestConcurrentApplyBatchOverlappingComponents is the parallel-repair
// stress test: several goroutines push ApplyBatch batches whose deltas
// reach into the neighboring group — so the merged repair regions form
// components that overlap chain-wise across every group — while
// readers hammer Same/Result mid-repair. The deltas are add-only and
// therefore commute, so the final state must be exactly what serial
// application of the same deltas reaches, at every repair parallelism.
// Run under -race by the CI race job.
func TestConcurrentApplyBatchOverlappingComponents(t *testing.T) {
	const writers = 4
	const rounds = 5
	const perBatch = 3

	for _, p := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			gen := testutil.New(testutil.Config{Seed: int64(40 + p), Groups: writers, PerGroup: 8})
			g, ks := batchFixture(t, gen)
			m, err := NewMatcher(g, ks, Options{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}

			batch := func(w, round int) []*Delta {
				ds := make([]*Delta, perBatch)
				for i := range ds {
					ds[i] = wrapDelta(gen.AddOnly(w, round*perBatch+i))
				}
				return ds
			}

			var stop atomic.Bool
			var readers sync.WaitGroup
			for r := 0; r < 2; r++ {
				readers.Add(1)
				go func(r int) {
					defer readers.Done()
					for i := 0; !stop.Load(); i++ {
						a := fmt.Sprintf("g%d-p%d", (r+i)%writers, i%8)
						b := fmt.Sprintf("g%d-p%d", (r+i)%writers, (i+3)%8)
						_ = m.Same(a, b)
						if i%7 == 0 {
							_ = m.Result()
						}
					}
				}(r)
			}
			var wg sync.WaitGroup
			errs := make([]error, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for round := 0; round < rounds; round++ {
						if _, _, err := m.ApplyBatch(batch(w, round)); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			stop.Store(true)
			readers.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("writer %d: %v", w, err)
				}
			}

			// Serial reference: same deltas one at a time (add-only, so
			// any interleaving reaches this state).
			sg, _ := batchFixture(t, gen)
			sm, err := NewMatcher(sg, ks, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w < writers; w++ {
				for round := 0; round < rounds; round++ {
					for _, d := range batch(w, round) {
						if _, _, err := sm.Apply(d); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			var got, want bytes.Buffer
			if err := m.Graph().Write(&got); err != nil {
				t.Fatal(err)
			}
			if err := sm.Graph().Write(&want); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatal("concurrent batched graph diverges from serial application")
			}
			if !reflect.DeepEqual(sortedPairs(m.Result().Matches), sortedPairs(sm.Result().Matches)) {
				t.Fatal("concurrent batched pairs diverge from serial application")
			}
			// And the usual differential closure against a full re-chase.
			full, err := Match(m.Graph(), ks, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(m.Result().Matches, full.Matches) {
				t.Fatal("matcher state diverges from full re-chase")
			}
		})
	}
}
