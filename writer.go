package graphkeys

import (
	"errors"
	"fmt"
	"sync"

	"graphkeys/internal/obs"
)

// ErrWriterBusy is returned by TryApply when the queue is full: the
// caller should shed load or retry later (an HTTP front maps it to
// 429 Too Many Requests).
var ErrWriterBusy = errors.New("graphkeys: Writer queue is full")

// Writer is the asynchronous front of a Matcher's write path for
// high-rate streams of small deltas: Apply enqueues and returns
// immediately, and a background goroutine drains whatever has queued
// up into one Matcher.ApplyBatch — so under load the deltas coalesce
// into ever-larger batches that pay for one incremental maintenance
// pass instead of one per delta, and under light load each delta
// still applies promptly.
//
// Batches apply in stream order, but deltas that fall into the same
// batch apply concurrently — as with ApplyBatch, deltas of one stream
// should be independent of one another, since the serialization order
// of conflicting deltas inside a batch is unspecified. Errors are
// sticky and fail-stop: the first per-delta failure is reported by
// every subsequent Apply, Flush and Close, and new deltas are
// rejected from then on. Drain-after-error contract: deltas already
// enqueued when the error struck still drain — they are processed (and
// counted in Stats.Deltas) rather than dropped, the matcher state
// stays coherent (a failed delta is skipped, the rest of its batch
// applies), and Flush/Close return once everything enqueued before
// them has been processed, reporting the sticky error. Failed deltas
// are visible in Stats.Failed and the writer.failed counter. Create a
// fresh Writer to resume the stream.
//
// The queue is bounded (maxPending deltas): a producer that
// sustainably outpaces the batcher blocks in Apply instead of growing
// memory and batch latency without limit.
type Writer struct {
	m *Matcher

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Delta
	busy   bool
	closed bool
	err    error

	// enqueued and done are monotonic delta counters; batches apply in
	// stream order, so done >= mark means every delta enqueued before
	// the mark was taken has been processed (Flush's high-water mark —
	// a sustained producer cannot starve a waiter).
	enqueued int
	done     int
	// batches counts completed batches, for observability and
	// coalescing tests. failed counts deltas whose application failed
	// (they still advance done: done tracks processed, not succeeded).
	batches int
	failed  int

	// Instruments from the matcher's registry (shared across the
	// matcher's Writers): live queue depth, the enqueued/batch
	// counters whose ratio is the coalescing achieved, and the batch
	// size distribution.
	obQueue     *obs.Gauge
	obDeltas    *obs.Counter
	obBatches   *obs.Counter
	obBatchSize *obs.Histogram
	obFailed    *obs.Counter
}

// maxPending bounds the Writer queue: Apply blocks once this many
// deltas are waiting for the batcher.
const maxPending = 1024

// NewWriter starts a Writer over the matcher. Close it when done.
func (m *Matcher) NewWriter() *Writer {
	w := &Writer{
		m:           m,
		obQueue:     m.reg.Gauge("writer.queue_depth", "deltas waiting for the batcher"),
		obDeltas:    m.reg.Counter("writer.deltas", "deltas enqueued"),
		obBatches:   m.reg.Counter("writer.batches", "batches applied (deltas/batches = coalesce ratio)"),
		obBatchSize: m.reg.Histogram("writer.batch_size", "deltas per coalesced batch", obs.SizeBuckets()),
		obFailed:    m.reg.Counter("writer.failed", "deltas whose application failed"),
	}
	w.cond = sync.NewCond(&w.mu)
	go w.loop()
	return w
}

// Apply enqueues the delta and returns without waiting for it to be
// applied, blocking only when the queue is full (backpressure). It
// fails after Close, or once a previous delta has failed.
func (w *Writer) Apply(d *Delta) error {
	if d == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.queue) >= maxPending && !w.closed && w.err == nil {
		w.cond.Wait()
	}
	if w.closed {
		return fmt.Errorf("graphkeys: Writer is closed")
	}
	if w.err != nil {
		return w.err
	}
	w.queue = append(w.queue, d)
	w.enqueued++
	w.obQueue.Inc()
	w.obDeltas.Inc()
	w.cond.Broadcast()
	return nil
}

// TryApply is Apply without the backpressure wait: a full queue
// returns ErrWriterBusy immediately instead of blocking, so a serving
// front can shed load (HTTP 429) rather than stall its handler
// goroutines. Like Apply it fails after Close or once a previous
// delta has failed (sticky error).
func (w *Writer) TryApply(d *Delta) error {
	if d == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("graphkeys: Writer is closed")
	}
	if w.err != nil {
		return w.err
	}
	if len(w.queue) >= maxPending {
		return ErrWriterBusy
	}
	w.queue = append(w.queue, d)
	w.enqueued++
	w.obQueue.Inc()
	w.obDeltas.Inc()
	w.cond.Broadcast()
	return nil
}

// Flush blocks until every delta enqueued before the call has been
// applied and returns the sticky error, if any. Deltas enqueued while
// Flush waits are not waited for.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	mark := w.enqueued
	for w.done < mark {
		w.cond.Wait()
	}
	return w.err
}

// Close drains the queue, stops the background goroutine and returns
// the sticky error. Further Applies fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		w.cond.Broadcast()
	}
	for len(w.queue) > 0 || w.busy {
		w.cond.Wait()
	}
	return w.err
}

// WriterStats is a Writer's progress accounting. Deltas counts every
// delta a batch has processed — applied or failed — so
// Deltas - Failed is the number that actually mutated the matcher;
// Batches < Deltas means enqueues coalesced.
type WriterStats struct {
	// Batches is the number of completed ApplyBatch calls.
	Batches int
	// Deltas is the number of deltas processed (drained from the
	// queue), including failed ones.
	Deltas int
	// Failed is the number of processed deltas whose application
	// failed — skipped by the batch's partial semantics, observable
	// here and as the writer.failed counter.
	Failed int
}

// Stats reports the writer's progress so far.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WriterStats{Batches: w.batches, Deltas: w.done, Failed: w.failed}
}

func (w *Writer) loop() {
	w.mu.Lock()
	for {
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.queue) == 0 {
			// Closed and drained.
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		batch := w.queue
		w.queue = nil
		w.busy = true
		w.obQueue.Add(-int64(len(batch)))
		w.obBatchSize.Observe(int64(len(batch)))
		// Wake producers blocked on the (now empty) queue so they
		// refill it while this batch applies.
		w.cond.Broadcast()
		w.mu.Unlock()

		_, _, applied, err := w.m.applyBatch(batch)

		w.mu.Lock()
		w.busy = false
		w.batches++
		w.obBatches.Inc()
		// done advances by the whole batch — processed, not succeeded —
		// so Flush marks are always eventually beaten even when deltas
		// fail; the failures stay visible in failed/writer.failed.
		w.done += len(batch)
		if nf := len(batch) - applied; nf > 0 {
			w.failed += nf
			w.obFailed.Add(int64(nf))
		}
		if err != nil && w.err == nil {
			w.err = err
		}
		w.cond.Broadcast()
	}
}
