package graphkeys

import (
	"fmt"
	"sync"

	"graphkeys/internal/obs"
)

// Writer is the asynchronous front of a Matcher's write path for
// high-rate streams of small deltas: Apply enqueues and returns
// immediately, and a background goroutine drains whatever has queued
// up into one Matcher.ApplyBatch — so under load the deltas coalesce
// into ever-larger batches that pay for one incremental maintenance
// pass instead of one per delta, and under light load each delta
// still applies promptly.
//
// Batches apply in stream order, but deltas that fall into the same
// batch apply concurrently — as with ApplyBatch, deltas of one stream
// should be independent of one another, since the serialization order
// of conflicting deltas inside a batch is unspecified. Errors are
// sticky and fail-stop: the first per-delta failure is reported by
// every subsequent Apply, Flush and Close, and new deltas are
// rejected from then on (deltas already enqueued still drain; the
// matcher state itself stays coherent, since a failed delta is
// skipped). Create a fresh Writer to resume the stream.
//
// The queue is bounded (maxPending deltas): a producer that
// sustainably outpaces the batcher blocks in Apply instead of growing
// memory and batch latency without limit.
type Writer struct {
	m *Matcher

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Delta
	busy   bool
	closed bool
	err    error

	// enqueued and done are monotonic delta counters; batches apply in
	// stream order, so done >= mark means every delta enqueued before
	// the mark was taken has been processed (Flush's high-water mark —
	// a sustained producer cannot starve a waiter).
	enqueued int
	done     int
	// batches counts completed batches, for observability and
	// coalescing tests.
	batches int

	// Instruments from the matcher's registry (shared across the
	// matcher's Writers): live queue depth, the enqueued/batch
	// counters whose ratio is the coalescing achieved, and the batch
	// size distribution.
	obQueue     *obs.Gauge
	obDeltas    *obs.Counter
	obBatches   *obs.Counter
	obBatchSize *obs.Histogram
}

// maxPending bounds the Writer queue: Apply blocks once this many
// deltas are waiting for the batcher.
const maxPending = 1024

// NewWriter starts a Writer over the matcher. Close it when done.
func (m *Matcher) NewWriter() *Writer {
	w := &Writer{
		m:           m,
		obQueue:     m.reg.Gauge("writer.queue_depth", "deltas waiting for the batcher"),
		obDeltas:    m.reg.Counter("writer.deltas", "deltas enqueued"),
		obBatches:   m.reg.Counter("writer.batches", "batches applied (deltas/batches = coalesce ratio)"),
		obBatchSize: m.reg.Histogram("writer.batch_size", "deltas per coalesced batch", obs.SizeBuckets()),
	}
	w.cond = sync.NewCond(&w.mu)
	go w.loop()
	return w
}

// Apply enqueues the delta and returns without waiting for it to be
// applied, blocking only when the queue is full (backpressure). It
// fails after Close, or once a previous delta has failed.
func (w *Writer) Apply(d *Delta) error {
	if d == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.queue) >= maxPending && !w.closed && w.err == nil {
		w.cond.Wait()
	}
	if w.closed {
		return fmt.Errorf("graphkeys: Writer is closed")
	}
	if w.err != nil {
		return w.err
	}
	w.queue = append(w.queue, d)
	w.enqueued++
	w.obQueue.Inc()
	w.obDeltas.Inc()
	w.cond.Broadcast()
	return nil
}

// Flush blocks until every delta enqueued before the call has been
// applied and returns the sticky error, if any. Deltas enqueued while
// Flush waits are not waited for.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	mark := w.enqueued
	for w.done < mark {
		w.cond.Wait()
	}
	return w.err
}

// Close drains the queue, stops the background goroutine and returns
// the sticky error. Further Applies fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		w.cond.Broadcast()
	}
	for len(w.queue) > 0 || w.busy {
		w.cond.Wait()
	}
	return w.err
}

// Stats reports how many batches and deltas the writer has applied —
// batches < deltas means enqueues coalesced.
func (w *Writer) Stats() (batches, deltas int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.batches, w.done
}

func (w *Writer) loop() {
	w.mu.Lock()
	for {
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.queue) == 0 {
			// Closed and drained.
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		batch := w.queue
		w.queue = nil
		w.busy = true
		w.obQueue.Add(-int64(len(batch)))
		w.obBatchSize.Observe(int64(len(batch)))
		// Wake producers blocked on the (now empty) queue so they
		// refill it while this batch applies.
		w.cond.Broadcast()
		w.mu.Unlock()

		_, _, err := w.m.ApplyBatch(batch)

		w.mu.Lock()
		w.busy = false
		w.batches++
		w.obBatches.Inc()
		w.done += len(batch)
		if err != nil && w.err == nil {
			w.err = err
		}
		w.cond.Broadcast()
	}
}
