package graphkeys_test

import (
	"math/rand"
	"reflect"
	"testing"

	"graphkeys"
)

func musicGraph(t *testing.T) *graphkeys.Graph {
	t.Helper()
	g := graphkeys.NewGraph()
	for id, typ := range map[string]string{
		"alb1": "album", "alb2": "album", "alb3": "album",
		"art1": "artist", "art2": "artist", "art3": "artist",
	} {
		if err := g.AddEntity(id, typ); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range [][3]string{
		{"alb1", "name_of", "Anthology 2"},
		{"alb2", "name_of", "Anthology 2"},
		{"alb3", "name_of", "Anthology 2"},
		{"alb1", "release_year", "1996"},
		{"alb2", "release_year", "1996"},
		{"art1", "name_of", "The Beatles"},
		{"art2", "name_of", "The Beatles"},
		{"art3", "name_of", "John Farnham"},
	} {
		if err := g.AddValueTriple(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range [][3]string{
		{"alb1", "recorded_by", "art1"},
		{"alb2", "recorded_by", "art2"},
		{"alb3", "recorded_by", "art3"},
	} {
		if err := g.AddEntityTriple(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func musicKeys(t *testing.T) *graphkeys.KeySet {
	t.Helper()
	ks, err := graphkeys.ParseKeys(`
key Q1 for album {
    x -name_of-> name*
    x -recorded_by-> $y:artist
}
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}
key Q3 for artist {
    x -name_of-> name*
    $a:album -recorded_by-> x
}`)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestMatcherApply(t *testing.T) {
	g := musicGraph(t)
	ks := musicKeys(t)
	m, err := graphkeys.NewMatcher(g, ks, graphkeys.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Same("alb1", "alb2") || !m.Same("art1", "art2") {
		t.Fatal("initial fixpoint missing expected identifications")
	}
	if m.Same("alb1", "alb3") {
		t.Fatal("alb3 wrongly identified")
	}

	// Removing alb2's release year cascades: the album pair falls to
	// Q2, the artist pair to Q3 which required it.
	added, removed, err := m.Apply(graphkeys.NewDelta().
		RemoveValueTriple("alb2", "release_year", "1996"))
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 0 || len(removed) != 2 {
		t.Fatalf("added=%v removed=%v, want 0 added and 2 removed", added, removed)
	}
	if m.Same("alb1", "alb2") || m.Same("art1", "art2") {
		t.Fatal("identifications survived losing their proofs")
	}

	// Re-adding restores both; the Matcher result must equal Match from
	// scratch on the same graph.
	added, _, err = m.Apply(graphkeys.NewDelta().
		AddValueTriple("alb2", "release_year", "1996"))
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 2 {
		t.Fatalf("added=%v, want both pairs back", added)
	}
	full, err := graphkeys.Match(g, ks, graphkeys.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Result().Matches, full.Matches) {
		t.Fatalf("Matcher.Result() = %v, Match = %v", m.Result().Matches, full.Matches)
	}
	if !reflect.DeepEqual(m.Result().Classes, full.Classes) {
		t.Fatalf("Matcher classes %v != Match classes %v", m.Result().Classes, full.Classes)
	}
}

func TestMatcherApplyNewEntities(t *testing.T) {
	g := musicGraph(t)
	m, err := graphkeys.NewMatcher(g, musicKeys(t), graphkeys.Options{})
	if err != nil {
		t.Fatal(err)
	}
	added, removed, err := m.Apply(graphkeys.NewDelta().
		AddEntity("alb4", "album").
		AddEntity("art4", "artist").
		AddValueTriple("alb4", "name_of", "Anthology 2").
		AddValueTriple("alb4", "release_year", "1996").
		AddEntityTriple("alb4", "recorded_by", "art4").
		AddValueTriple("art4", "name_of", "The Beatles"))
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("removed=%v, want none", removed)
	}
	if !m.Same("alb4", "alb1") || !m.Same("art4", "art2") {
		t.Fatal("new entities not identified with their duplicates")
	}
	if len(added) != 4 {
		t.Fatalf("added=%v, want 4 new pairs", added)
	}
	// The atomicity contract: a bad delta changes nothing.
	before := g.NumTriples()
	if _, _, err := m.Apply(graphkeys.NewDelta().
		AddValueTriple("ghost", "name_of", "x")); err == nil {
		t.Fatal("delta with unknown subject did not error")
	}
	if g.NumTriples() != before {
		t.Fatal("failed delta mutated the graph")
	}
}

// TestMatcherAgainstMatchRandomized is the public-API differential
// test: random remove/re-add churn over the music graph, checking the
// Matcher against Match after every delta.
func TestMatcherAgainstMatchRandomized(t *testing.T) {
	g := musicGraph(t)
	ks := musicKeys(t)
	m, err := graphkeys.NewMatcher(g, ks, graphkeys.Options{})
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		s, p, o string
		isVal   bool
	}
	rng := rand.New(rand.NewSource(11))
	var pool []rec
	for round := 0; round < 40; round++ {
		d := graphkeys.NewDelta()
		if round%2 == 0 {
			var all []rec
			g.EachTriple(func(s, p, o string, isVal bool) {
				all = append(all, rec{s, p, o, isVal})
			})
			r := all[rng.Intn(len(all))]
			pool = append(pool, r)
			if r.isVal {
				d.RemoveValueTriple(r.s, r.p, r.o)
			} else {
				d.RemoveEntityTriple(r.s, r.p, r.o)
			}
		} else {
			if len(pool) == 0 {
				continue
			}
			i := rng.Intn(len(pool))
			r := pool[i]
			pool = append(pool[:i], pool[i+1:]...)
			if r.isVal {
				d.AddValueTriple(r.s, r.p, r.o)
			} else {
				d.AddEntityTriple(r.s, r.p, r.o)
			}
		}
		if _, _, err := m.Apply(d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		full, err := graphkeys.Match(g, ks, graphkeys.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m.Result().Matches, full.Matches) {
			t.Fatalf("round %d: Matcher %v != Match %v", round, m.Result().Matches, full.Matches)
		}
	}
}
