// Command emserve serves entity resolution over HTTP: a durable
// graphkeys.Matcher behind the internal/serve surface — point reads,
// provenance explanations, batched asynchronous writes, and SSE
// streams of merge/split events.
//
// Usage:
//
//	emserve -keys work.keys -wal /var/lib/emserve -addr :8080
//	emserve -keys work.keys -graph seed.graph -wal /var/lib/emserve
//	emserve -keys work.keys -addr :8080            # in-memory (no WAL)
//
// Endpoints (see the README's Serving section for the full table):
//
//	GET  /same?a=&b=      are two entities identified
//	GET  /entity?id=      canonical representative
//	GET  /entities?p=&v=  entities with attribute (p, v)
//	GET  /explain?a=&b=   witness chain for an identified pair
//	POST /apply[?wait=1]  enqueue mutation deltas (JSON)
//	GET  /subscribe       SSE merge/split event stream (?from= resumes)
//	GET  /seq             current sequence number
//	GET  /metrics /vars /events   the matcher's observability surface
//
// On SIGINT/SIGTERM the server stops accepting requests, drains the
// write queue, snapshots the WAL (durable mode) and closes the log —
// an acknowledged write is never lost by a graceful shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"graphkeys"
	"graphkeys/internal/serve"
)

func main() {
	var (
		keysPath  = flag.String("keys", "", "keys file (key DSL), required")
		graphPath = flag.String("graph", "", "graph file to seed a fresh matcher (text triple format)")
		walDir    = flag.String("wal", "", "durable matcher: write-ahead log directory (empty = in-memory)")
		fsync     = flag.Bool("fsync", true, "wal: fsync every WAL record")
		addr      = flag.String("addr", ":8080", "listen address")
		p         = flag.Int("p", 0, "worker parallelism (0 = GOMAXPROCS capped at 4)")
		ring      = flag.Int("ring", serve.DefaultEventRing, "SSE replay ring capacity (events)")
		drainWait = flag.Duration("drain", 30*time.Second, "graceful-shutdown request drain timeout")
	)
	flag.Parse()
	if *keysPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	kf, err := os.Open(*keysPath)
	if err != nil {
		log.Fatal(err)
	}
	ks, err := graphkeys.ParseKeysFrom(kf)
	kf.Close()
	if err != nil {
		log.Fatal(err)
	}

	opts := graphkeys.Options{Workers: *p, Durability: graphkeys.DurabilityAppend}
	if *fsync {
		opts.Durability = graphkeys.DurabilityFsync
	}
	m, err := openMatcher(*walDir, *graphPath, ks, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "emserve: matcher ready: %d triples, %d entities, seq %d\n",
		m.Graph().NumTriples(), m.Graph().NumEntities(), m.Seq())

	srv := serve.New(m, serve.Options{EventRing: *ring})
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-done
		fmt.Fprintf(os.Stderr, "emserve: %v: shutting down\n", sig)
		// Close the serving layer first: SSE streams end (so Shutdown
		// is not held open by them), the writer drains, the WAL
		// snapshots and closes. Then let in-flight point requests
		// finish.
		if err := srv.Close(); err != nil {
			log.Printf("emserve: close: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("emserve: shutdown: %v", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "emserve: listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// openMatcher opens the durable matcher (seeding a fresh WAL from the
// graph file, emrun-style) or builds an in-memory one.
func openMatcher(walDir, graphPath string, ks *graphkeys.KeySet, opts graphkeys.Options) (*graphkeys.Matcher, error) {
	loadGraph := func() (*graphkeys.Graph, error) {
		if graphPath == "" {
			return graphkeys.NewGraph(), nil
		}
		gf, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer gf.Close()
		return graphkeys.LoadGraph(gf)
	}
	if walDir == "" {
		g, err := loadGraph()
		if err != nil {
			return nil, err
		}
		return graphkeys.NewMatcher(g, ks, opts)
	}
	m, err := graphkeys.OpenMatcher(walDir, ks, opts)
	if err != nil {
		return nil, err
	}
	if m.Graph().NumTriples() > 0 || m.Graph().NumEntities() > 0 || graphPath == "" {
		return m, nil
	}
	// Fresh log with a seed graph: load it through the WAL as one
	// initial delta so replay reconstructs it.
	g, err := loadGraph()
	if err != nil {
		m.Close()
		return nil, err
	}
	seed := graphkeys.NewDelta()
	g.EachEntity(func(id graphkeys.EntityID, typeName string) {
		seed.AddEntity(id, typeName)
	})
	g.EachTriple(func(s graphkeys.EntityID, pred, obj string, isValue bool) {
		if isValue {
			seed.AddValueTriple(s, pred, obj)
		} else {
			seed.AddEntityTriple(s, pred, obj)
		}
	})
	if _, _, err := m.Apply(seed); err != nil {
		m.Close()
		return nil, fmt.Errorf("emserve: seeding WAL from %s: %v", graphPath, err)
	}
	fmt.Fprintf(os.Stderr, "emserve: seeded WAL at %s with %d ops\n", walDir, seed.Len())
	return m, nil
}
