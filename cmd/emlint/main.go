// Command emlint is the repo's invariant linter: custom static
// analyzers for map-iteration determinism (maporder), the write
// path's locking contracts (lockcontract), nil-safe observability
// handles (obshandle), and write-ahead durability error handling
// (walerr). See internal/lint and the "Static analysis" section of
// the README.
//
// Run it through go vet:
//
//	go build -o /tmp/emlint ./cmd/emlint
//	go vet -vettool=/tmp/emlint ./...
//
// or directly — `emlint ./...` re-executes itself via go vet.
package main

import "graphkeys/internal/lint"

func main() { lint.Main() }
