// Command emgen generates entity-matching workloads — a graph in the
// text triple format and a key set in the DSL — using the generators of
// the paper's §6 experimental study.
//
// Usage:
//
//	emgen -dataset synthetic -scale 1.0 -c 2 -d 2 -out ./work
//
// writes work.graph, work.keys and work.expected (the planted duplicate
// pairs, one "id1<TAB>id2" per line).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"graphkeys/internal/bench"
	"graphkeys/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "synthetic", "workload family: google | dbpedia | synthetic")
		scale   = flag.Float64("scale", 1.0, "size scale factor")
		c       = flag.Int("c", 2, "dependency chain length of the generated keys")
		d       = flag.Int("d", 2, "radius of the generated keys")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "workload", "output path prefix")
	)
	flag.Parse()

	var ds bench.Dataset
	switch *dataset {
	case "google":
		ds = bench.GoogleDS
	case "dbpedia":
		ds = bench.DBpediaDS
	case "synthetic":
		ds = bench.SyntheticDS
	default:
		log.Fatalf("emgen: unknown dataset %q", *dataset)
	}
	w, err := bench.Build(ds, bench.BuildConfig{Seed: *seed, Scale: *scale, C: *c, D: *d})
	if err != nil {
		log.Fatal(err)
	}

	if err := writeFile(*out+".graph", func(f *bufio.Writer) error {
		return w.Graph.WriteText(f)
	}); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(*out+".keys", func(f *bufio.Writer) error {
		_, err := f.WriteString(w.Keys.Format())
		return err
	}); err != nil {
		log.Fatal(err)
	}
	if err := writeFile(*out+".expected", func(f *bufio.Writer) error {
		for _, pr := range w.Expected {
			fmt.Fprintf(f, "%s\t%s\n",
				w.Graph.Label(graph.NodeID(pr.A)), w.Graph.Label(graph.NodeID(pr.B)))
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s.graph (%d triples, %d entities), %s.keys (%d keys), %s.expected (%d pairs)\n",
		*out, w.Graph.NumTriples(), w.Graph.NumEntities(),
		*out, w.Keys.Cardinality(), *out, len(w.Expected))
}

func writeFile(path string, fn func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := fn(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
