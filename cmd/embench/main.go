// Command embench regenerates the experimental study of "Keys for
// Graphs" (§6): every figure panel of Fig. 8, Table 2, and the
// optimization-effectiveness reports, printing the same rows/series the
// paper reports (absolute times are this machine's, not the paper's
// EC2 cluster; the shapes are the reproduction target).
//
// Usage:
//
//	embench                 # the full suite at the default size
//	embench -quick          # a fast smoke-sized run
//	embench -exp fig8a      # one experiment
//	embench -csv            # machine-readable output
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strings"

	"graphkeys/internal/bench"
	"graphkeys/internal/obs"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all | fig8a..fig8l | table2 | ablations | parallelchase | writepath | repair | groupcommit | obsoverhead | candidates | serve")
		quick   = flag.Bool("quick", false, "smoke-sized datasets")
		csv     = flag.Bool("csv", false, "CSV output")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor")
		seed    = flag.Int64("seed", 1, "random seed")
		jsonOut = flag.String("jsonout", "", "parallelchase: write the JSON report to this file")

		metricsAddr = flag.String("metrics", "", "serve engine metrics and pprof on this address (e.g. :8080)")
	)
	flag.Parse()
	serveMetrics(*metricsAddr)

	cfg := bench.DefaultBuild()
	cfg.Seed = *seed
	cfg.Scale = *scale
	ps := []int{4, 8, 12, 16, 20}
	scales := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	cs := []int{1, 2, 3, 4, 5}
	dsw := []int{1, 2, 3, 4, 5}
	if *quick {
		cfg.Scale = 0.3
		ps = []int{2, 4}
		scales = []float64{0.2, 0.3}
		cs = []int{1, 2}
		dsw = []int{1, 2}
	}

	type runner func() (*bench.Table, error)
	suite := []struct {
		name string
		run  runner
	}{
		{"fig8a", func() (*bench.Table, error) { return bench.Exp1VaryP(bench.GoogleDS, cfg, ps) }},
		{"fig8b", func() (*bench.Table, error) { return bench.Exp2VaryG(bench.GoogleDS, cfg, scales, 4) }},
		{"fig8c", func() (*bench.Table, error) { return bench.Exp3VaryC(bench.GoogleDS, cfg, cs, 4) }},
		{"fig8d", func() (*bench.Table, error) { return bench.Exp3VaryD(bench.GoogleDS, cfg, dsw, 4) }},
		{"fig8e", func() (*bench.Table, error) { return bench.Exp1VaryP(bench.DBpediaDS, cfg, ps) }},
		{"fig8f", func() (*bench.Table, error) { return bench.Exp2VaryG(bench.DBpediaDS, cfg, scales, 4) }},
		{"fig8g", func() (*bench.Table, error) { return bench.Exp3VaryC(bench.DBpediaDS, cfg, cs, 4) }},
		{"fig8h", func() (*bench.Table, error) { return bench.Exp3VaryD(bench.DBpediaDS, cfg, dsw, 4) }},
		{"fig8i", func() (*bench.Table, error) { return bench.Exp1VaryP(bench.SyntheticDS, cfg, ps) }},
		{"fig8j", func() (*bench.Table, error) { return bench.Exp2VaryG(bench.SyntheticDS, cfg, scales, 4) }},
		{"fig8k", func() (*bench.Table, error) { return bench.Exp3VaryC(bench.SyntheticDS, cfg, cs, 4) }},
		{"fig8l", func() (*bench.Table, error) { return bench.Exp3VaryD(bench.SyntheticDS, cfg, dsw, 4) }},
		{"table2", func() (*bench.Table, error) { return bench.Table2(cfg, 4) }},
		{"ablations", func() (*bench.Table, error) { return bench.Ablations(bench.SyntheticDS, cfg, 4) }},
		{"cluster", func() (*bench.Table, error) { return bench.ClusterComparison(bench.SyntheticDS, cfg, 4) }},
		{"parallelchase", func() (*bench.Table, error) {
			// The parallel-chase speedup experiment wants a
			// check-dominated workload: a larger graph than the figure
			// panels, full candidate sweep.
			pcfg := cfg
			if *scale == 1.0 && !*quick {
				pcfg.Scale = 4.0
			}
			t, rep, err := bench.ParallelChaseExp(bench.SyntheticDS, pcfg, []int{2, 4, 8}, true)
			if err != nil {
				return nil, err
			}
			if *jsonOut != "" {
				data, err := rep.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "embench: wrote %s\n", *jsonOut)
			}
			return t, nil
		}},
		{"writepath", func() (*bench.Table, error) {
			// The write-throughput experiment: a stream of independent
			// small deltas, per-delta Apply vs batched concurrent
			// ApplyBatch at 1/2/4/8 writers, plus the allocating-writer
			// leg (durable group commit, fresh names per delta) with
			// plan-retry accounting and phase means in the JSON report.
			wcfg := cfg
			nDeltas, batch := 256, 32
			if *quick {
				nDeltas, batch = 64, 16
			}
			t, rep, err := bench.WritePathExp(bench.SyntheticDS, wcfg, []int{1, 2, 4, 8}, nDeltas, batch)
			if err != nil {
				return nil, err
			}
			if *jsonOut != "" {
				data, err := rep.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "embench: wrote %s\n", *jsonOut)
			}
			return t, nil
		}},
		{"repair", func() (*bench.Table, error) {
			// The parallel-repair experiment: one merged churn batch
			// through the incremental engine at p = 1, 2, 4, 8; wants a
			// larger graph than the figure panels so the maintenance
			// pass dominates.
			rcfg := cfg
			if *scale == 1.0 && !*quick {
				rcfg.Scale = 4.0
			}
			nDeltas := 384
			if *quick {
				nDeltas = 48
			}
			t, rep, err := bench.RepairExp(bench.SyntheticDS, rcfg, []int{2, 4, 8}, nDeltas)
			if err != nil {
				return nil, err
			}
			// The combined report also carries the group-commit runs,
			// so one artifact (BENCH_repair.json) covers both PR-5
			// experiments — but only when this experiment was asked
			// for by name: under -exp all the dedicated groupcommit
			// entry below runs the (fsync-heavy) measurement once.
			if !strings.EqualFold(*exp, "all") {
				gdir, err := os.MkdirTemp("", "embench-groupcommit-*")
				if err != nil {
					return nil, err
				}
				defer os.RemoveAll(gdir)
				gDeltas := 512
				if *quick {
					gDeltas = 128
				}
				gt, gruns, err := bench.GroupCommitExp(gdir, []int{2, 4, 8}, gDeltas)
				if err != nil {
					return nil, err
				}
				rep.GroupCommit = gruns
				if *csv {
					fmt.Printf("# groupcommit\n%s\n", gt.CSV())
				} else {
					gt.Print(os.Stdout)
				}
			}
			if *jsonOut != "" {
				data, err := rep.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "embench: wrote %s\n", *jsonOut)
			}
			return t, nil
		}},
		{"groupcommit", func() (*bench.Table, error) {
			gdir, err := os.MkdirTemp("", "embench-groupcommit-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(gdir)
			nDeltas := 512
			if *quick {
				nDeltas = 128
			}
			t, runs, err := bench.GroupCommitExp(gdir, []int{1, 2, 4, 8}, nDeltas)
			if err != nil {
				return nil, err
			}
			if *jsonOut != "" {
				rep := &bench.RepairReport{GOMAXPROCS: runtime.GOMAXPROCS(0), GroupCommit: runs}
				data, err := rep.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "embench: wrote %s\n", *jsonOut)
			}
			return t, nil
		}},
		{"candidates", func() (*bench.Table, error) {
			// The streaming candidate pipeline: materialized L vs
			// lazy streams, candidate-stage allocation and end-to-end
			// chase wall clock, sequential and at p=4; CI publishes
			// the report as BENCH_candidates.json.
			n, buckets := 4000, 40
			if *quick {
				n, buckets = 1500, 15
			}
			t, rep, err := bench.CandidatesExp(n, buckets, 4)
			if err != nil {
				return nil, err
			}
			if *jsonOut != "" {
				data, err := rep.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "embench: wrote %s\n", *jsonOut)
			}
			return t, nil
		}},
		{"serve", func() (*bench.Table, error) {
			// The serving layer: latency percentiles and QPS per
			// endpoint while concurrent readers and /apply writers share
			// one matcher over real HTTP; CI publishes the report as
			// BENCH_serve.json.
			nSeed, nOps, readers, writers := 2000, 64, 4, 2
			if *quick {
				nSeed, nOps, readers, writers = 500, 16, 2, 1
			}
			t, rep, err := bench.ServeExp(nSeed, nOps, readers, writers)
			if err != nil {
				return nil, err
			}
			if *jsonOut != "" {
				data, err := rep.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "embench: wrote %s\n", *jsonOut)
			}
			return t, nil
		}},
		{"obsoverhead", func() (*bench.Table, error) {
			// The instrumentation budget: bare vs fully instrumented
			// write-path and repair runs; CI publishes the report as
			// BENCH_obs_overhead.json.
			nDeltas := 192
			if *quick {
				nDeltas = 48
			}
			t, rep, err := bench.ObsOverheadExp(bench.SyntheticDS, cfg, 4, nDeltas)
			if err != nil {
				return nil, err
			}
			if *jsonOut != "" {
				data, err := rep.JSON()
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "embench: wrote %s\n", *jsonOut)
			}
			return t, nil
		}},
	}

	ran := 0
	for _, s := range suite {
		if *exp != "all" && !strings.EqualFold(*exp, s.name) {
			continue
		}
		ran++
		t, err := s.run()
		if err != nil {
			log.Fatalf("embench: %s: %v", s.name, err)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", s.name, t.CSV())
		} else {
			t.Print(os.Stdout)
		}
	}
	if ran == 0 {
		log.Fatalf("embench: unknown experiment %q", *exp)
	}
}

// serveMetrics starts a background HTTP server on addr exposing pprof
// (/debug/pprof/) plus an empty registry at /metrics//vars. The
// substrate's instruments are per-owner handles now (each experiment
// wires its own registry), so there is no process-global engine.*
// series to publish here — the endpoint remains for pprof and as a
// liveness probe. No-op when addr is empty.
func serveMetrics(addr string) {
	if addr == "" {
		return
	}
	reg := obs.NewRegistry()
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(reg, nil))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("embench: metrics server: %v", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "embench: serving metrics on %s\n", addr)
}
