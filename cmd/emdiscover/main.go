// Command emdiscover mines candidate keys from a graph file — the
// baseline key-discovery algorithm for the future-work direction of the
// paper's §7. Mined keys hold on the input graph and are printed in the
// key DSL, ready for emrun.
//
// Usage:
//
//	emdiscover -graph work.graph -type album -max-attrs 3 -recursive
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"graphkeys"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (text triple format)")
		typeName  = flag.String("type", "", "entity type to mine keys for")
		maxAttrs  = flag.Int("max-attrs", 3, "maximum attributes per key")
		minSup    = flag.Float64("min-support", 0.5, "minimum support fraction")
		recursive = flag.Bool("recursive", false, "also propose recursive keys")
	)
	flag.Parse()
	if *graphPath == "" || *typeName == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graphkeys.LoadGraph(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	ks, err := graphkeys.DiscoverKeys(g, *typeName, graphkeys.DiscoverOptions{
		MaxAttrs:       *maxAttrs,
		MinSupport:     *minSup,
		AllowRecursive: *recursive,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "emdiscover: %d keys for type %s\n", len(ks), *typeName)
	for _, k := range ks {
		fmt.Printf("# support %.0f%%, recursive=%v\n%s\n", 100*k.Support, k.Recursive, k.DSL)
	}
}
