// Command emrun runs entity matching on a graph file against a keys
// file and prints the identified entity pairs (chase(G, Σ)).
//
// Usage:
//
//	emrun -graph work.graph -keys work.keys -engine emoptvc -p 8
//
// The graph file is the tab-separated triple format of emgen/LoadGraph;
// the keys file is the key DSL. Engines: chase, pchase (the parallel
// chase), emmr, emvf2mr, emoptmr, emvc, emoptvc.
//
// With -incremental, emrun instead replays a mutation workload through
// the stateful graphkeys.Matcher: each round removes a random batch of
// -delta × |G| triples and then re-adds it, reporting per-delta repair
// time and the match churn, against the one-off cost of the initial
// full chase. -verify re-runs the full chase after every delta and
// fails on divergence.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"time"

	"graphkeys"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (text triple format)")
		keysPath  = flag.String("keys", "", "keys file (key DSL)")
		engine    = flag.String("engine", "emoptvc", "chase | pchase | emmr | emvf2mr | emoptmr | emvc | emoptvc")
		p         = flag.Int("p", 4, "number of workers")
		classes   = flag.Bool("classes", false, "print equivalence classes instead of pairs")
		validate  = flag.Bool("validate", false, "check key satisfaction G |= Σ instead of matching")

		incremental = flag.Bool("incremental", false, "replay a mutation workload through the incremental Matcher")
		rounds      = flag.Int("rounds", 5, "incremental: number of remove/re-add rounds")
		deltaFrac   = flag.Float64("delta", 0.01, "incremental: fraction of triples mutated per delta")
		mutSeed     = flag.Int64("mutseed", 1, "incremental: mutation RNG seed")
		verify      = flag.Bool("verify", false, "incremental: check every delta against a full re-chase")
	)
	flag.Parse()
	if *graphPath == "" || *keysPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graphkeys.LoadGraph(gf)
	gf.Close()
	if err != nil {
		log.Fatal(err)
	}
	kf, err := os.Open(*keysPath)
	if err != nil {
		log.Fatal(err)
	}
	ks, err := graphkeys.ParseKeysFrom(kf)
	kf.Close()
	if err != nil {
		log.Fatal(err)
	}

	engines := map[string]graphkeys.Engine{
		"chase":         graphkeys.Chase,
		"pchase":        graphkeys.ParallelChase,
		"parallelchase": graphkeys.ParallelChase,
		"emmr":          graphkeys.MapReduce,
		"emvf2mr":       graphkeys.MapReduceVF2,
		"emoptmr":       graphkeys.MapReduceOpt,
		"emvc":          graphkeys.VertexCentric,
		"emoptvc":       graphkeys.VertexCentricOpt,
	}
	eng, ok := engines[strings.ToLower(*engine)]
	if !ok {
		log.Fatalf("emrun: unknown engine %q", *engine)
	}

	fmt.Fprintf(os.Stderr, "emrun: %d triples, %d entities, %d keys, engine %v, p=%d\n",
		g.NumTriples(), g.NumEntities(), ks.Len(), eng, *p)

	if *incremental {
		runIncremental(g, ks, *rounds, *deltaFrac, *mutSeed, *verify, *p)
		return
	}

	if *validate {
		vs, err := graphkeys.Validate(g, ks, graphkeys.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if len(vs) == 0 {
			fmt.Println("G |= Σ: no violations")
			return
		}
		for _, v := range vs {
			fmt.Printf("violation\t%s\t%s\t%s\n", v.Key, v.A, v.B)
		}
		os.Exit(1)
	}

	start := time.Now()
	res, err := graphkeys.Match(g, ks, graphkeys.Options{Engine: eng, Workers: *p})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "emrun: %d pairs in %v\n", len(res.Matches), time.Since(start).Round(time.Microsecond))
	if *classes {
		for _, cls := range res.Classes {
			fmt.Println(strings.Join(cls, "\t"))
		}
		return
	}
	for _, m := range res.Matches {
		fmt.Printf("%s\t%s\n", m.A, m.B)
	}
}

// triple is the string form of a stored triple, for replay deltas.
type triple struct {
	s, p, o string
	isValue bool
}

// runIncremental drives the -incremental replay mode: build the
// Matcher (one full chase), then per round remove and re-add a random
// small batch of triples, reporting repair cost and churn.
func runIncremental(g *graphkeys.Graph, ks *graphkeys.KeySet, rounds int, deltaFrac float64, seed int64, verify bool, p int) {
	start := time.Now()
	m, err := graphkeys.NewMatcher(g, ks, graphkeys.Options{Workers: p})
	if err != nil {
		log.Fatal(err)
	}
	initial := time.Since(start)
	fmt.Fprintf(os.Stderr, "emrun: initial full chase: %d pairs in %v\n",
		len(m.Result().Matches), initial.Round(time.Microsecond))

	rng := rand.New(rand.NewSource(seed))
	batch := int(float64(g.NumTriples()) * deltaFrac)
	if batch < 1 {
		batch = 1
	}
	var incTotal time.Duration
	deltas := 0
	apply := func(round int, label string, d *graphkeys.Delta) {
		t0 := time.Now()
		added, removed, err := m.Apply(d)
		if err != nil {
			log.Fatal(err)
		}
		dt := time.Since(t0)
		incTotal += dt
		deltas++
		st := m.LastStats()
		fmt.Printf("round %d %s\t%d ops\t+%d -%d pairs\t%v\t(suspects %d, region %d, checked %d)\n",
			round, label, d.Len(), len(added), len(removed), dt.Round(time.Microsecond),
			st.Suspects, st.Region, st.Checked)
		if verify {
			full, err := graphkeys.Match(g, ks, graphkeys.Options{Workers: p})
			if err != nil {
				log.Fatal(err)
			}
			if !reflect.DeepEqual(m.Result().Matches, full.Matches) {
				log.Fatalf("emrun: round %d %s: incremental result diverges from full re-chase", round, label)
			}
		}
	}

	for round := 1; round <= rounds; round++ {
		var all []triple
		g.EachTriple(func(s, pred, o string, isVal bool) {
			all = append(all, triple{s, pred, o, isVal})
		})
		if len(all) == 0 {
			log.Fatal("emrun: graph has no triples to mutate")
		}
		picked := make([]triple, 0, batch)
		for i := 0; i < batch; i++ {
			picked = append(picked, all[rng.Intn(len(all))])
		}
		rem, add := graphkeys.NewDelta(), graphkeys.NewDelta()
		for _, tr := range picked {
			if tr.isValue {
				rem.RemoveValueTriple(tr.s, tr.p, tr.o)
				add.AddValueTriple(tr.s, tr.p, tr.o)
			} else {
				rem.RemoveEntityTriple(tr.s, tr.p, tr.o)
				add.AddEntityTriple(tr.s, tr.p, tr.o)
			}
		}
		apply(round, "remove", rem)
		apply(round, "re-add", add)
	}
	if deltas == 0 {
		fmt.Fprintln(os.Stderr, "emrun: no deltas applied")
		return
	}
	perDelta := incTotal / time.Duration(deltas)
	fmt.Fprintf(os.Stderr, "emrun: %d deltas of ~%d triples: %v total, %v/delta (initial full chase %v, %.1fx)\n",
		deltas, batch, incTotal.Round(time.Microsecond), perDelta.Round(time.Microsecond),
		initial.Round(time.Microsecond), float64(initial)/float64(perDelta))
}
