// Command emrun runs entity matching on a graph file against a keys
// file and prints the identified entity pairs (chase(G, Σ)).
//
// Usage:
//
//	emrun -graph work.graph -keys work.keys -engine emoptvc -p 8
//
// The graph file is the tab-separated triple format of emgen/LoadGraph;
// the keys file is the key DSL. Engines: chase, pchase (the parallel
// chase), emmr, emvf2mr, emoptmr, emvc, emoptvc.
//
// With -incremental, emrun instead replays a mutation workload through
// the stateful graphkeys.Matcher: each round removes a random batch of
// -delta × |G| triples and then re-adds it, reporting per-delta repair
// time and the match churn, against the one-off cost of the initial
// full chase. -verify re-runs the full chase after every delta and
// fails on divergence.
//
// With -wal DIR the matcher is durable: it opens (or creates) the
// write-ahead log in DIR, seeds it from the graph file when fresh, and
// logs every applied delta; -snapshot compacts the log on exit. With
// -replay DIR emrun reconstructs the matcher purely from DIR (no graph
// file needed) and prints the recovered pairs — pass -graph too to
// verify the reconstruction against a reference graph file.
//
// With -metrics ADDR emrun serves the matcher's live instruments over
// HTTP while it runs: Prometheus text at /metrics, a JSON snapshot at
// /vars, recent phase spans at /events, and pprof under /debug/pprof/.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"reflect"
	"strings"
	"time"

	"graphkeys"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (text triple format)")
		keysPath  = flag.String("keys", "", "keys file (key DSL)")
		engine    = flag.String("engine", "emoptvc", "chase | pchase | emmr | emvf2mr | emoptmr | emvc | emoptvc")
		p         = flag.Int("p", 4, "number of workers")
		classes   = flag.Bool("classes", false, "print equivalence classes instead of pairs")
		validate  = flag.Bool("validate", false, "check key satisfaction G |= Σ instead of matching")

		incremental = flag.Bool("incremental", false, "replay a mutation workload through the incremental Matcher")
		rounds      = flag.Int("rounds", 5, "incremental: number of remove/re-add rounds")
		deltaFrac   = flag.Float64("delta", 0.01, "incremental: fraction of triples mutated per delta")
		mutSeed     = flag.Int64("mutseed", 1, "incremental: mutation RNG seed")
		verify      = flag.Bool("verify", false, "incremental: check every delta against a full re-chase")

		walDir    = flag.String("wal", "", "durable matcher: write-ahead log directory")
		replayDir = flag.String("replay", "", "reconstruct the matcher from this WAL directory and print its pairs")
		fsync     = flag.Bool("fsync", true, "wal/replay: fsync every WAL record")
		snapshot  = flag.Bool("snapshot", false, "wal: write a snapshot (compact the log) before exiting")

		metricsAddr = flag.String("metrics", "", "serve the matcher's metrics and pprof on this address (e.g. :8080)")
	)
	flag.Parse()
	// A graph file is needed except when reconstructing from a WAL:
	// -replay never reads it, and -wal only reads it when the log is
	// fresh (openDurable errors then if none was given).
	if *keysPath == "" || (*graphPath == "" && *replayDir == "" && *walDir == "") {
		flag.Usage()
		os.Exit(2)
	}

	kf, err := os.Open(*keysPath)
	if err != nil {
		log.Fatal(err)
	}
	ks, err := graphkeys.ParseKeysFrom(kf)
	kf.Close()
	if err != nil {
		log.Fatal(err)
	}
	durOpts := graphkeys.Options{Workers: *p, Durability: graphkeys.DurabilityAppend}
	if *fsync {
		durOpts.Durability = graphkeys.DurabilityFsync
	}

	if *replayDir != "" {
		runReplay(*replayDir, *graphPath, ks, durOpts, *classes, *metricsAddr)
		return
	}

	loadGraph := func() *graphkeys.Graph {
		if *graphPath == "" {
			log.Fatal("emrun: the WAL directory is fresh; -graph is required to seed it")
		}
		gf, err := os.Open(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		defer gf.Close()
		g, err := graphkeys.LoadGraph(gf)
		if err != nil {
			log.Fatal(err)
		}
		return g
	}

	if *walDir != "" {
		// Durable path: open the WAL first — on resume the graph file
		// is ignored, so it is only parsed when the log is fresh.
		m, err := openDurable(*walDir, loadGraph, ks, durOpts)
		if err != nil {
			log.Fatal(err)
		}
		serveMetrics(*metricsAddr, m)
		fmt.Fprintf(os.Stderr, "emrun: matcher ready: %d triples, %d pairs\n",
			m.Graph().NumTriples(), len(m.Result().Matches))
		if *incremental {
			runIncremental(m, ks, *rounds, *deltaFrac, *mutSeed, *verify, *p)
		} else {
			printResult(m.Result(), *classes)
		}
		if *snapshot {
			if err := m.Snapshot(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "emrun: snapshot written to %s\n", *walDir)
		}
		if err := m.Close(); err != nil {
			log.Fatal(err)
		}
		return
	}

	g := loadGraph()

	engines := map[string]graphkeys.Engine{
		"chase":         graphkeys.Chase,
		"pchase":        graphkeys.ParallelChase,
		"parallelchase": graphkeys.ParallelChase,
		"emmr":          graphkeys.MapReduce,
		"emvf2mr":       graphkeys.MapReduceVF2,
		"emoptmr":       graphkeys.MapReduceOpt,
		"emvc":          graphkeys.VertexCentric,
		"emoptvc":       graphkeys.VertexCentricOpt,
	}
	eng, ok := engines[strings.ToLower(*engine)]
	if !ok {
		log.Fatalf("emrun: unknown engine %q", *engine)
	}

	fmt.Fprintf(os.Stderr, "emrun: %d triples, %d entities, %d keys, engine %v, p=%d\n",
		g.NumTriples(), g.NumEntities(), ks.Len(), eng, *p)

	if *incremental {
		start := time.Now()
		m, err := graphkeys.NewMatcher(g, ks, graphkeys.Options{Workers: *p})
		if err != nil {
			log.Fatal(err)
		}
		serveMetrics(*metricsAddr, m)
		fmt.Fprintf(os.Stderr, "emrun: initial full chase: %d pairs in %v\n",
			len(m.Result().Matches), time.Since(start).Round(time.Microsecond))
		runIncremental(m, ks, *rounds, *deltaFrac, *mutSeed, *verify, *p)
		return
	}

	// One-shot modes have no matcher to instrument; -metrics still
	// serves pprof for profiling the run.
	serveMetrics(*metricsAddr, nil)

	if *validate {
		vs, err := graphkeys.Validate(g, ks, graphkeys.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if len(vs) == 0 {
			fmt.Println("G |= Σ: no violations")
			return
		}
		for _, v := range vs {
			fmt.Printf("violation\t%s\t%s\t%s\n", v.Key, v.A, v.B)
		}
		os.Exit(1)
	}

	start := time.Now()
	res, err := graphkeys.Match(g, ks, graphkeys.Options{Engine: eng, Workers: *p})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "emrun: %d pairs in %v\n", len(res.Matches), time.Since(start).Round(time.Microsecond))
	printResult(res, *classes)
}

// serveMetrics starts a background HTTP server on addr exposing the
// matcher's instruments (/metrics Prometheus text, /vars JSON,
// /events recent phase spans) and the pprof profiling endpoints under
// /debug/pprof/. A nil matcher serves pprof only. No-op when addr is
// empty; the server dies with the process.
func serveMetrics(addr string, m *graphkeys.Matcher) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	if m != nil {
		mux.Handle("/", m.MetricsHandler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("emrun: metrics server: %v", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "emrun: serving metrics on %s\n", addr)
}

func printResult(res *graphkeys.Result, classes bool) {
	if classes {
		for _, cls := range res.Classes {
			fmt.Println(strings.Join(cls, "\t"))
		}
		return
	}
	for _, m := range res.Matches {
		fmt.Printf("%s\t%s\n", m.A, m.B)
	}
}

// openDurable opens the WAL-backed matcher and, when the log is fresh
// (empty matcher), loads the graph file and seeds the log with it as
// one initial delta. On resume the graph file is never parsed.
func openDurable(dir string, loadGraph func() *graphkeys.Graph, ks *graphkeys.KeySet, opts graphkeys.Options) (*graphkeys.Matcher, error) {
	m, err := graphkeys.OpenMatcher(dir, ks, opts)
	if err != nil {
		return nil, err
	}
	if m.Graph().NumTriples() > 0 || m.Graph().NumEntities() > 0 {
		fmt.Fprintf(os.Stderr, "emrun: resumed WAL state from %s (%d triples); graph file ignored\n",
			dir, m.Graph().NumTriples())
		return m, nil
	}
	g := loadGraph()
	seed := graphkeys.NewDelta()
	g.EachEntity(func(id graphkeys.EntityID, typeName string) {
		seed.AddEntity(id, typeName)
	})
	g.EachTriple(func(s graphkeys.EntityID, pred, obj string, isValue bool) {
		if isValue {
			seed.AddValueTriple(s, pred, obj)
		} else {
			seed.AddEntityTriple(s, pred, obj)
		}
	})
	if _, _, err := m.Apply(seed); err != nil {
		m.Close()
		return nil, fmt.Errorf("emrun: seeding WAL from graph: %v", err)
	}
	fmt.Fprintf(os.Stderr, "emrun: seeded WAL at %s with %d ops\n", dir, seed.Len())
	return m, nil
}

// runReplay reconstructs a matcher from the WAL directory alone and
// prints its pairs; with a reference graph file it also verifies the
// reconstruction byte for byte.
func runReplay(dir, graphPath string, ks *graphkeys.KeySet, opts graphkeys.Options, classes bool, metricsAddr string) {
	start := time.Now()
	m, err := graphkeys.OpenMatcher(dir, ks, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	serveMetrics(metricsAddr, m)
	fmt.Fprintf(os.Stderr, "emrun: replayed %s: %d triples, %d pairs in %v\n",
		dir, m.Graph().NumTriples(), len(m.Result().Matches), time.Since(start).Round(time.Microsecond))
	if graphPath != "" {
		gf, err := os.Open(graphPath)
		if err != nil {
			log.Fatal(err)
		}
		ref, err := graphkeys.LoadGraph(gf)
		gf.Close()
		if err != nil {
			log.Fatal(err)
		}
		var got, want bytes.Buffer
		if err := m.Graph().Write(&got); err != nil {
			log.Fatal(err)
		}
		if err := ref.Write(&want); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			log.Fatal("emrun: replayed graph diverges from the reference graph file")
		}
		fmt.Fprintln(os.Stderr, "emrun: replayed graph matches the reference graph file")
	}
	printResult(m.Result(), classes)
}

// triple is the string form of a stored triple, for replay deltas.
type triple struct {
	s, p, o string
	isValue bool
}

// runIncremental drives the -incremental replay mode over an existing
// matcher: per round, remove and re-add a random small batch of
// triples, reporting repair cost and churn.
func runIncremental(m *graphkeys.Matcher, ks *graphkeys.KeySet, rounds int, deltaFrac float64, seed int64, verify bool, p int) {
	g := m.Graph()
	rng := rand.New(rand.NewSource(seed))
	batch := int(float64(g.NumTriples()) * deltaFrac)
	if batch < 1 {
		batch = 1
	}
	var incTotal time.Duration
	deltas := 0
	apply := func(round int, label string, d *graphkeys.Delta) {
		t0 := time.Now()
		added, removed, err := m.Apply(d)
		if err != nil {
			log.Fatal(err)
		}
		dt := time.Since(t0)
		incTotal += dt
		deltas++
		st := m.LastStats()
		fmt.Printf("round %d %s\t%d ops\t+%d -%d pairs\t%v\t(suspects %d, region %d, checked %d)\n",
			round, label, d.Len(), len(added), len(removed), dt.Round(time.Microsecond),
			st.Suspects, st.Region, st.Checked)
		if verify {
			full, err := graphkeys.Match(g, ks, graphkeys.Options{Workers: p})
			if err != nil {
				log.Fatal(err)
			}
			if !reflect.DeepEqual(m.Result().Matches, full.Matches) {
				log.Fatalf("emrun: round %d %s: incremental result diverges from full re-chase", round, label)
			}
		}
	}

	for round := 1; round <= rounds; round++ {
		var all []triple
		g.EachTriple(func(s, pred, o string, isVal bool) {
			all = append(all, triple{s, pred, o, isVal})
		})
		if len(all) == 0 {
			log.Fatal("emrun: graph has no triples to mutate")
		}
		picked := make([]triple, 0, batch)
		for i := 0; i < batch; i++ {
			picked = append(picked, all[rng.Intn(len(all))])
		}
		rem, add := graphkeys.NewDelta(), graphkeys.NewDelta()
		for _, tr := range picked {
			if tr.isValue {
				rem.RemoveValueTriple(tr.s, tr.p, tr.o)
				add.AddValueTriple(tr.s, tr.p, tr.o)
			} else {
				rem.RemoveEntityTriple(tr.s, tr.p, tr.o)
				add.AddEntityTriple(tr.s, tr.p, tr.o)
			}
		}
		apply(round, "remove", rem)
		apply(round, "re-add", add)
	}
	if deltas == 0 {
		fmt.Fprintln(os.Stderr, "emrun: no deltas applied")
		return
	}
	perDelta := incTotal / time.Duration(deltas)
	fmt.Fprintf(os.Stderr, "emrun: %d deltas of ~%d triples: %v total, %v/delta\n",
		deltas, batch, incTotal.Round(time.Microsecond), perDelta.Round(time.Microsecond))
}
