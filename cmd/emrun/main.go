// Command emrun runs entity matching on a graph file against a keys
// file and prints the identified entity pairs (chase(G, Σ)).
//
// Usage:
//
//	emrun -graph work.graph -keys work.keys -engine emoptvc -p 8
//
// The graph file is the tab-separated triple format of emgen/LoadGraph;
// the keys file is the key DSL. Engines: chase, emmr, emvf2mr, emoptmr,
// emvc, emoptvc.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"graphkeys"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (text triple format)")
		keysPath  = flag.String("keys", "", "keys file (key DSL)")
		engine    = flag.String("engine", "emoptvc", "chase | emmr | emvf2mr | emoptmr | emvc | emoptvc")
		p         = flag.Int("p", 4, "number of workers")
		classes   = flag.Bool("classes", false, "print equivalence classes instead of pairs")
		validate  = flag.Bool("validate", false, "check key satisfaction G |= Σ instead of matching")
	)
	flag.Parse()
	if *graphPath == "" || *keysPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := graphkeys.LoadGraph(gf)
	gf.Close()
	if err != nil {
		log.Fatal(err)
	}
	kf, err := os.Open(*keysPath)
	if err != nil {
		log.Fatal(err)
	}
	ks, err := graphkeys.ParseKeysFrom(kf)
	kf.Close()
	if err != nil {
		log.Fatal(err)
	}

	engines := map[string]graphkeys.Engine{
		"chase":   graphkeys.Chase,
		"emmr":    graphkeys.MapReduce,
		"emvf2mr": graphkeys.MapReduceVF2,
		"emoptmr": graphkeys.MapReduceOpt,
		"emvc":    graphkeys.VertexCentric,
		"emoptvc": graphkeys.VertexCentricOpt,
	}
	eng, ok := engines[strings.ToLower(*engine)]
	if !ok {
		log.Fatalf("emrun: unknown engine %q", *engine)
	}

	fmt.Fprintf(os.Stderr, "emrun: %d triples, %d entities, %d keys, engine %v, p=%d\n",
		g.NumTriples(), g.NumEntities(), ks.Len(), eng, *p)

	if *validate {
		vs, err := graphkeys.Validate(g, ks, graphkeys.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if len(vs) == 0 {
			fmt.Println("G |= Σ: no violations")
			return
		}
		for _, v := range vs {
			fmt.Printf("violation\t%s\t%s\t%s\n", v.Key, v.A, v.B)
		}
		os.Exit(1)
	}

	start := time.Now()
	res, err := graphkeys.Match(g, ks, graphkeys.Options{Engine: eng, Workers: *p})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "emrun: %d pairs in %v\n", len(res.Matches), time.Since(start).Round(time.Microsecond))
	if *classes {
		for _, cls := range res.Classes {
			fmt.Println(strings.Join(cls, "\t"))
		}
		return
	}
	for _, m := range res.Matches {
		fmt.Printf("%s\t%s\n", m.A, m.B)
	}
}
