package graphkeys

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// serveSupportFixture builds a small person/email graph plus the
// single-value key identifying persons sharing an email.
func serveSupportFixture(t *testing.T, n int) (*Graph, *KeySet) {
	t.Helper()
	g := NewGraph()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("p%d", i)
		if err := g.AddEntity(id, "person"); err != nil {
			t.Fatal(err)
		}
		if err := g.AddValueTriple(id, "email", fmt.Sprintf("mail%d", i/2)); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := ParseKeys("key P for person {\n x -email-> e*\n}")
	if err != nil {
		t.Fatal(err)
	}
	return g, ks
}

// substrateCounts sums a Metrics snapshot's engine.* and match.*
// counters — the instruments that used to live behind package globals.
func substrateCounts(m *Matcher) int64 {
	var sum int64
	for name, v := range m.Metrics().Counters {
		if len(name) > 7 && (name[:7] == "engine." || name[:6] == "match.") {
			sum += v
		}
	}
	return sum
}

// TestObsScopedPerMatcher is the regression test for the obs
// cross-wiring bug: engine.* and match.* instruments were package
// globals, so whichever Matcher registered last received every
// coexisting Matcher's substrate counts. With per-matcher handles, two
// live Matchers must each account only their own work: driving one
// must not move the other's counters at all.
func TestObsScopedPerMatcher(t *testing.T) {
	g1, ks := serveSupportFixture(t, 24)
	g2, _ := serveSupportFixture(t, 24)
	m1, err := NewMatcher(g1, ks, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMatcher(g2, ks, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	drive := func(m *Matcher, tag string) {
		for i := 0; i < 8; i++ {
			id := EntityID(fmt.Sprintf("%s%d", tag, i))
			d := NewDelta().AddEntity(id, "person")
			d.AddValueTriple(id, "email", fmt.Sprintf("mail%d", i%3))
			if _, _, err := m.Apply(d); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Construction runs the initial chase, so both start nonzero; what
	// matters is who moves when only m1 works.
	base1, base2 := substrateCounts(m1), substrateCounts(m2)
	drive(m1, "x")
	if got := substrateCounts(m1); got <= base1 {
		t.Fatalf("driving m1 did not move its own substrate counters (%d -> %d)", base1, got)
	}
	if got := substrateCounts(m2); got != base2 {
		t.Fatalf("driving m1 moved m2's substrate counters (%d -> %d): obs handles are cross-wired", base2, got)
	}

	// And symmetrically.
	base1, base2 = substrateCounts(m1), substrateCounts(m2)
	drive(m2, "y")
	if got := substrateCounts(m2); got <= base2 {
		t.Fatalf("driving m2 did not move its own substrate counters (%d -> %d)", base2, got)
	}
	if got := substrateCounts(m1); got != base1 {
		t.Fatalf("driving m2 moved m1's substrate counters (%d -> %d): obs handles are cross-wired", base1, got)
	}
}

// TestSamePairLabelsDoesNotMutateArg is the regression test for the
// snapshot aliasing bug: samePairLabels sorted its second argument in
// place, but OpenMatcher passes the WAL store's own snapshot-pairs
// slice — the comparison must not reorder caller-owned data.
func TestSamePairLabelsDoesNotMutateArg(t *testing.T) {
	sorted := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}}
	arg := [][2]string{{"b", "d"}, {"a", "c"}, {"a", "b"}} // deliberately unsorted
	orig := append([][2]string(nil), arg...)
	if !samePairLabels(sorted, arg) {
		t.Fatal("equal pair sets compared unequal")
	}
	if !reflect.DeepEqual(arg, orig) {
		t.Fatalf("samePairLabels reordered its argument: %v -> %v", orig, arg)
	}
	if samePairLabels(sorted, [][2]string{{"a", "b"}, {"a", "c"}, {"b", "e"}}) {
		t.Fatal("different pair sets compared equal")
	}
}

// TestSnapshotStableAcrossReopen: opening a durable matcher
// cross-checks the stored pairs against the re-derived fixpoint; that
// check must treat the snapshot as read-only — the snapshot file is
// byte-identical before and after a reopen, and a re-snapshot of
// unchanged state reproduces it.
func TestSnapshotStableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	_, ks := serveSupportFixture(t, 0)
	m, err := OpenMatcher(dir, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDelta()
	for i := 0; i < 6; i++ {
		id := EntityID(fmt.Sprintf("p%d", i))
		d.AddEntity(id, "person")
		d.AddValueTriple(id, "email", fmt.Sprintf("mail%d", i/2))
	}
	if _, _, err := m.Apply(d); err != nil {
		t.Fatal(err)
	}
	if len(m.Result().Matches) == 0 {
		t.Fatal("fixture identified nothing")
	}
	if err := m.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "snapshot")
	before, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	m2, err := OpenMatcher(dir, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("reopen rewrote the snapshot:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// Re-snapshotting unchanged state is deterministic.
	if err := m2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(again) {
		t.Fatalf("re-snapshot of unchanged state differs:\nbefore:\n%s\nafter:\n%s", before, again)
	}
}

// TestWriterFailureAccounting pins the Writer's drain-after-error
// contract: a delta that fails validation mid-stream surfaces as the
// sticky error on Flush/Apply/Close, is counted in Stats.Failed, and
// does not stall the stream — every delta enqueued before the error is
// still processed, and good ones still mutate the matcher.
func TestWriterFailureAccounting(t *testing.T) {
	g, ks := serveSupportFixture(t, 4)
	m, err := NewMatcher(g, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := m.NewWriter()

	const good = 6
	for i := 0; i < good; i++ {
		id := EntityID(fmt.Sprintf("n%d", i))
		d := NewDelta().AddEntity(id, "person")
		d.AddValueTriple(id, "email", fmt.Sprintf("newmail%d", i/2))
		if err := w.Apply(d); err != nil {
			t.Fatalf("good delta %d: %v", i, err)
		}
	}
	// The poison pill: an edge from an entity that doesn't exist fails
	// delta validation.
	bad := NewDelta().AddEntityTriple("no-such-entity", "knows", "p0")
	if err := w.Apply(bad); err != nil {
		t.Fatal(err) // enqueue succeeds; the failure is asynchronous
	}
	// A good delta after the bad one: if its enqueue beats the sticky
	// error it is still processed (the drain contract); if not, Apply
	// rejects it with that error. Both are legal.
	tail := NewDelta().AddEntity("tail", "person")
	tail.AddValueTriple("tail", "email", "newmail0")
	tailErr := w.Apply(tail)

	ferr := w.Flush()
	if ferr == nil {
		t.Fatal("Flush after a failing delta returned nil")
	}
	if tailErr != nil && !errors.Is(tailErr, ferr) {
		t.Fatalf("tail Apply failed with %v, not the sticky error %v", tailErr, ferr)
	}
	// The error is sticky: new work is rejected with it, and Close
	// reports it too.
	if err := w.Apply(NewDelta().AddEntity("late", "person")); err == nil {
		t.Fatal("Apply after sticky error succeeded")
	}
	if err := w.TryApply(NewDelta().AddEntity("late2", "person")); err == nil {
		t.Fatal("TryApply after sticky error succeeded")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after a failing delta returned nil")
	}

	st := w.Stats()
	if st.Failed != 1 {
		t.Fatalf("Stats.Failed = %d, want 1", st.Failed)
	}
	// Every enqueued delta was processed — done advances by whole
	// batches, failed or not. tail's enqueue may or may not have beaten
	// the sticky error, so allow both.
	if st.Deltas != good+2 && st.Deltas != good+1 {
		t.Fatalf("Stats.Deltas = %d, want %d or %d", st.Deltas, good+1, good+2)
	}
	if st.Deltas-st.Failed < good {
		t.Fatalf("only %d deltas applied, want >= %d", st.Deltas-st.Failed, good)
	}

	// The good deltas really mutated the matcher.
	for i := 0; i < good; i++ {
		id := EntityID(fmt.Sprintf("n%d", i))
		if _, ok := m.Canonical(id); !ok {
			t.Fatalf("good delta %d did not apply: %s unknown", i, id)
		}
	}
	// And the failure counter surfaced on the registry.
	if v := m.Metrics().Counters["writer.failed"]; v != 1 {
		t.Fatalf("writer.failed counter = %d, want 1", v)
	}
	// The matcher is still coherent: a fresh full match agrees.
	full, err := Match(m.Graph(), ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedPairs(m.Result().Matches), sortedPairs(full.Matches)) {
		t.Fatal("matcher state diverges from full re-chase after failed delta")
	}
}
