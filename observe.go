package graphkeys

import (
	"fmt"
	"net/http"

	"graphkeys/internal/engine"
	"graphkeys/internal/graph"
	"graphkeys/internal/match"
	"graphkeys/internal/obs"
)

// This file is the Matcher's observability surface. Every Matcher
// carries its own metrics registry and phase tracer, threaded through
// each layer it drives — the sharded store, the planned write path,
// the WAL (durable matchers), the incremental repair pass, and the
// engine substrate — plus its own Apply/ApplyBatch instruments.
// Instrumentation is pure observation: it never changes what the
// matcher computes (the differential tests in internal/inc pin the
// engine-level half of that guarantee).
//
// Three ways out: Metrics() for an in-process snapshot,
// MetricsHandler() to serve Prometheus text / JSON over HTTP (cmd/
// emrun and cmd/embench mount it under -metrics :addr), and
// Explain() for per-pair provenance.

// Metrics is a point-in-time snapshot of a Matcher's instruments:
// counter and gauge values plus histogram summaries (count, sum,
// min/max, p50/p99, buckets), keyed by metric name. See the README's
// Observability section for the catalog.
type Metrics = obs.Snapshot

// Metrics snapshots the matcher's instruments. Safe to call
// concurrently with Applies; counters tick live while a repair runs.
func (m *Matcher) Metrics() Metrics {
	return m.reg.Snapshot()
}

// Registry exposes the matcher's metrics registry so embedding layers
// (e.g. a server wrapping the matcher) can add their own instruments
// to the same catalog — one scrape covers the whole process.
func (m *Matcher) Registry() *obs.Registry {
	return m.reg
}

// MetricsHandler returns an HTTP handler serving the matcher's
// instruments: Prometheus text exposition at /metrics, a JSON
// snapshot at /vars, and the tracer's recent phase spans at /events.
// Mount it wherever (and whether) the process chooses — the matcher
// itself never opens a port.
func (m *Matcher) MetricsHandler() http.Handler {
	return obs.Handler(m.reg, m.trace)
}

// Explanation is the witness chain for an identified pair: the chase
// steps that derive A ~ B, in an order where every step's Requires
// pairs are connected by earlier steps. Two equal IDs explain as an
// empty chain.
type Explanation struct {
	A, B  EntityID
	Steps []ExplainStep
}

// ExplainStep is one chase step of a witness chain: which key fired
// on which pair, what prior identifications the witness bound entity
// variables against, which graph triples it consumed, and when the
// step was derived.
type ExplainStep struct {
	// A and B are the pair this step identified.
	A, B EntityID
	// Key is the name of the key that fired.
	Key string
	// Seq is the repair generation the step was derived at: 0 for the
	// initial full chase, n for the n-th maintenance pass since — a
	// step with Seq > 0 was (re-)derived incrementally, e.g. after a
	// removal destroyed its previous witness.
	Seq uint64
	// Requires are the prior identifications the witness depended on
	// (entity-variable bindings of a recursive key); empty for
	// value-only keys.
	Requires []Pair
	// Uses are the graph triples the witness consumed — the
	// provenance the removal repair tracks.
	Uses []ExplainTriple
}

// ExplainTriple is one graph triple of a witness, at name level.
type ExplainTriple struct {
	Subject       EntityID
	Predicate     string
	Object        string // entity ID, or the literal when ObjectIsValue
	ObjectIsValue bool
}

// Explain returns the witness chain for why a and b are currently
// identified, walking the live step log's provenance — no re-chase
// runs. It errors when the pair is not identified or either entity is
// unknown. Unlike the package-level Explain (which re-runs the
// sequential chase from scratch), this reports the steps the
// incremental engine actually holds, including at which maintenance
// pass each was derived.
func (m *Matcher) Explain(a, b EntityID) (*Explanation, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	na, ok := m.g.g.Entity(a)
	if !ok {
		return nil, fmt.Errorf("graphkeys: unknown entity %q", a)
	}
	nb, ok := m.g.g.Entity(b)
	if !ok {
		return nil, fmt.Errorf("graphkeys: unknown entity %q", b)
	}
	idxs, err := m.eng.Explain(na, nb)
	if err != nil {
		return nil, err
	}
	steps := m.eng.Steps()
	seqs := m.eng.StepSeqs()
	ex := &Explanation{A: a, B: b}
	for _, i := range idxs {
		st := steps[i]
		es := ExplainStep{
			A:   m.g.g.Label(graph.NodeID(st.Pair.A)),
			B:   m.g.g.Label(graph.NodeID(st.Pair.B)),
			Key: st.Key,
			Seq: seqs[i],
		}
		for _, r := range st.Requires {
			es.Requires = append(es.Requires, Pair{
				A: m.g.g.Label(graph.NodeID(r.A)),
				B: m.g.g.Label(graph.NodeID(r.B)),
			})
		}
		for _, tr := range st.Uses {
			es.Uses = append(es.Uses, ExplainTriple{
				Subject:       m.g.g.Label(tr.S),
				Predicate:     m.g.g.PredName(tr.P),
				Object:        m.g.g.Label(tr.O),
				ObjectIsValue: m.g.g.IsValue(tr.O),
			})
		}
		ex.Steps = append(ex.Steps, es)
	}
	return ex, nil
}

// Target returns the explained pair.
func (e *Explanation) Target() Pair { return Pair{A: e.A, B: e.B} }

// registerObs builds the matcher's registry, tracer and per-layer
// instruments and threads them through the layers the matcher owns.
// The engine substrate's and candidate pipeline's bundles are handles
// held on the Matcher and passed down through match.Options — never
// process globals — so N coexisting Matchers each keep their own
// engine.* and match.* series (the serving layer runs exactly that
// shape).
func (m *Matcher) registerObs() {
	m.reg = obs.NewRegistry()
	m.trace = obs.NewTracer(256)
	m.obApply = m.reg.Histogram("matcher.apply_ns", "Apply latency", obs.DurationBuckets())
	m.obBatch = m.reg.Histogram("matcher.apply_batch_ns", "ApplyBatch latency", obs.DurationBuckets())
	m.obBatchSize = m.reg.Histogram("matcher.batch_size", "deltas per ApplyBatch", obs.SizeBuckets())
	m.g.g.RegisterObs(m.reg)
	m.obEng = engine.NewObs(m.reg)
	m.obMatch = match.NewObs(m.reg)
}
