// Benchmarks regenerating the experimental study of "Keys for Graphs"
// (§6): one benchmark per figure panel of Fig. 8 plus Table 2 and the
// optimization ablations. Each sub-benchmark fixes one x-axis point of
// the corresponding panel and one algorithm, so `go test -bench=.`
// produces the full series. cmd/embench prints the same experiments as
// formatted tables; EXPERIMENTS.md records paper-vs-measured shapes.
//
// This is an external test package (graphkeys_test): internal/bench
// imports graphkeys (the serve experiment drives the public Matcher
// over HTTP), so an in-package test file importing bench would cycle.
package graphkeys_test

import (
	"fmt"
	"sync"
	"testing"

	"graphkeys/internal/bench"
	"graphkeys/internal/gen"
)

// benchScale keeps a single iteration in the low-millisecond range so
// the full suite stays runnable; scale up via cmd/embench for larger
// runs.
const benchScale = 0.35

var (
	workloadMu    sync.Mutex
	workloadCache = map[string]*gen.Workload{}
)

// workload builds (and caches) the workload for a dataset and key
// parameters.
func workload(b *testing.B, ds bench.Dataset, scale float64, c, d int) *gen.Workload {
	b.Helper()
	key := fmt.Sprintf("%v-%v-%d-%d", ds, scale, c, d)
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if w, ok := workloadCache[key]; ok {
		return w
	}
	w, err := bench.Build(ds, bench.BuildConfig{Seed: 1, Scale: scale, C: c, D: d})
	if err != nil {
		b.Fatal(err)
	}
	workloadCache[key] = w
	return w
}

// runAlgo runs one algorithm once and validates the result.
func runAlgo(b *testing.B, w *gen.Workload, a bench.Algo, p int) {
	b.Helper()
	m, err := bench.RunAlgo(w, a, p)
	if err != nil {
		b.Fatal(err)
	}
	if !m.Correct {
		b.Fatalf("%v produced a wrong result", a)
	}
}

// exp1 is the Fig. 8(a)/(e)/(i) shape: all algorithms, varying p.
func exp1(b *testing.B, ds bench.Dataset) {
	w := workload(b, ds, benchScale, 2, 2)
	algos := []bench.Algo{bench.AlgoEMMR, bench.AlgoEMOptMR, bench.AlgoEMVC, bench.AlgoEMOptVC}
	for _, p := range []int{4, 8, 12, 16, 20} {
		for _, a := range algos {
			b.Run(fmt.Sprintf("p%02d/%v", p, a), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runAlgo(b, w, a, p)
				}
			})
		}
	}
}

// exp2 is the Fig. 8(b)/(f)/(j) shape: varying the scale factor, p=4.
func exp2(b *testing.B, ds bench.Dataset) {
	for _, s := range []float64{0.2, 0.6, 1.0} {
		w := workload(b, ds, s*benchScale, 2, 2)
		for _, a := range []bench.Algo{bench.AlgoEMOptMR, bench.AlgoEMOptVC} {
			b.Run(fmt.Sprintf("scale%.1f/%v", s, a), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runAlgo(b, w, a, 4)
				}
			})
		}
	}
}

// exp3c is the Fig. 8(c)/(g)/(k) shape: varying the dependency chain c.
func exp3c(b *testing.B, ds bench.Dataset) {
	for _, c := range []int{1, 3, 5} {
		w := workload(b, ds, benchScale, c, 2)
		for _, a := range []bench.Algo{bench.AlgoEMOptMR, bench.AlgoEMOptVC} {
			b.Run(fmt.Sprintf("c%d/%v", c, a), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runAlgo(b, w, a, 4)
				}
			})
		}
	}
}

// exp3d is the Fig. 8(d)/(h)/(l) shape: varying the key radius d.
func exp3d(b *testing.B, ds bench.Dataset) {
	for _, d := range []int{1, 2, 3} {
		w := workload(b, ds, benchScale, 2, d)
		for _, a := range []bench.Algo{bench.AlgoEMOptMR, bench.AlgoEMOptVC} {
			b.Run(fmt.Sprintf("d%d/%v", d, a), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runAlgo(b, w, a, 4)
				}
			})
		}
	}
}

func BenchmarkFig8aVaryPGoogle(b *testing.B)    { exp1(b, bench.GoogleDS) }
func BenchmarkFig8bVaryGGoogle(b *testing.B)    { exp2(b, bench.GoogleDS) }
func BenchmarkFig8cVaryCGoogle(b *testing.B)    { exp3c(b, bench.GoogleDS) }
func BenchmarkFig8dVaryDGoogle(b *testing.B)    { exp3d(b, bench.GoogleDS) }
func BenchmarkFig8eVaryPDBpedia(b *testing.B)   { exp1(b, bench.DBpediaDS) }
func BenchmarkFig8fVaryGDBpedia(b *testing.B)   { exp2(b, bench.DBpediaDS) }
func BenchmarkFig8gVaryCDBpedia(b *testing.B)   { exp3c(b, bench.DBpediaDS) }
func BenchmarkFig8hVaryDDBpedia(b *testing.B)   { exp3d(b, bench.DBpediaDS) }
func BenchmarkFig8iVaryPSynthetic(b *testing.B) { exp1(b, bench.SyntheticDS) }
func BenchmarkFig8jVaryGSynthetic(b *testing.B) { exp2(b, bench.SyntheticDS) }
func BenchmarkFig8kVaryCSynthetic(b *testing.B) { exp3c(b, bench.SyntheticDS) }
func BenchmarkFig8lVaryDSynthetic(b *testing.B) { exp3d(b, bench.SyntheticDS) }

// BenchmarkTable2Candidates reproduces Table 2: the optimized
// algorithms per dataset; candidate and confirmed counts are reported
// as benchmark metrics.
func BenchmarkTable2Candidates(b *testing.B) {
	for _, ds := range []bench.Dataset{bench.GoogleDS, bench.DBpediaDS, bench.SyntheticDS} {
		w := workload(b, ds, benchScale, 2, 2)
		for _, a := range []bench.Algo{bench.AlgoEMOptVC, bench.AlgoEMOptMR} {
			b.Run(fmt.Sprintf("%v/%v", ds, a), func(b *testing.B) {
				var cands, confirmed int
				for i := 0; i < b.N; i++ {
					m, err := bench.RunAlgo(w, a, 4)
					if err != nil {
						b.Fatal(err)
					}
					if !m.Correct {
						b.Fatal("wrong result")
					}
					cands, confirmed = m.Candidates, m.Pairs
				}
				b.ReportMetric(float64(cands), "candidates")
				b.ReportMetric(float64(confirmed), "confirmed")
			})
		}
	}
}

// BenchmarkAblationGuidedVsVF2 measures the EvalMR guided search with
// early termination against the VF2 enumerate-all baseline (the EMMR
// vs EMVF2MR comparison of §6).
func BenchmarkAblationGuidedVsVF2(b *testing.B) {
	w := workload(b, bench.SyntheticDS, benchScale, 2, 2)
	for _, a := range []bench.Algo{bench.AlgoEMMR, bench.AlgoEMVF2MR} {
		b.Run(a.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runAlgo(b, w, a, 4)
			}
		})
	}
}

// BenchmarkAblationPairing measures the §4.2 optimizations (EMOptMR vs
// EMMR).
func BenchmarkAblationPairing(b *testing.B) {
	w := workload(b, bench.SyntheticDS, benchScale, 2, 2)
	for _, a := range []bench.Algo{bench.AlgoEMMR, bench.AlgoEMOptMR} {
		b.Run(a.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runAlgo(b, w, a, 4)
			}
		})
	}
}

// BenchmarkAblationBoundedMessages measures bounded messages and
// prioritized propagation (EMOptVC vs EMVC, §5.2).
func BenchmarkAblationBoundedMessages(b *testing.B) {
	w := workload(b, bench.SyntheticDS, benchScale, 2, 2)
	for _, a := range []bench.Algo{bench.AlgoEMVC, bench.AlgoEMOptVC} {
		b.Run(a.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runAlgo(b, w, a, 4)
			}
		})
	}
}
