package graphkeys

import (
	"fmt"
	"sort"
	"sync"

	"graphkeys/internal/engine"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/inc"
	"graphkeys/internal/match"
	"graphkeys/internal/obs"
	"graphkeys/internal/wal"
)

// This file is the public surface of the incremental entity-matching
// subsystem (internal/inc): a stateful Matcher that keeps chase(G, Σ)
// up to date while the graph mutates, instead of recomputing the
// fixpoint from scratch per change the way Match does.

// Delta is a batch of graph mutations to be applied through a Matcher:
// entity additions plus triple additions and removals, in order.
// The zero value is an empty batch; builder methods chain.
type Delta struct {
	d graph.Delta
}

// NewDelta returns an empty delta.
func NewDelta() *Delta { return &Delta{} }

// AddEntity ensures an entity with the given ID and type exists.
func (d *Delta) AddEntity(id EntityID, typeName string) *Delta {
	d.d.AddEntity(id, typeName)
	return d
}

// AddEntityTriple inserts (subject, predicate, object) between two
// entities. Both must exist or be added earlier in the same delta.
func (d *Delta) AddEntityTriple(subject EntityID, predicate string, object EntityID) *Delta {
	d.d.AddTriple(subject, predicate, object)
	return d
}

// AddValueTriple inserts (subject, predicate, value) with a literal
// object.
func (d *Delta) AddValueTriple(subject EntityID, predicate string, value string) *Delta {
	d.d.AddValueTriple(subject, predicate, value)
	return d
}

// RemoveEntityTriple deletes (subject, predicate, object) between two
// entities; absent triples are ignored.
func (d *Delta) RemoveEntityTriple(subject EntityID, predicate string, object EntityID) *Delta {
	d.d.RemoveTriple(subject, predicate, object)
	return d
}

// RemoveValueTriple deletes (subject, predicate, value); absent
// triples are ignored.
func (d *Delta) RemoveValueTriple(subject EntityID, predicate string, value string) *Delta {
	d.d.RemoveValueTriple(subject, predicate, value)
	return d
}

// RemoveEntity removes the entity with the given ID: the removal
// expands to deleting every triple the entity participates in (as
// subject or object) and then tombstones the node. Absent entities
// are ignored. Later operations of the same delta may re-add the ID,
// which creates a fresh entity.
func (d *Delta) RemoveEntity(id EntityID) *Delta {
	d.d.RemoveEntity(id)
	return d
}

// Len reports the number of operations in the delta.
func (d *Delta) Len() int { return d.d.Len() }

// Matcher maintains chase(G, Σ) incrementally: it computes the full
// fixpoint once at construction and then repairs it per Delta, using
// the proof graphs of the chase as provenance (removals invalidate
// only identifications whose proofs touch a removed triple) and d-hop
// locality (additions re-chase only the affected region).
//
// After NewMatcher the graph must be mutated only through Apply. A
// Matcher is safe for concurrent use: Apply serializes against other
// Applies and against the read methods (Same, Result, LastStats), so
// readers always observe a graph and fixpoint from the same delta
// boundary. Concurrent reads run in parallel — against the underlying
// shard-partitioned graph as well, whose per-shard locks the readers
// only touch shard-locally.
type Matcher struct {
	// mu serializes Apply (writer) against the fixpoint readers. Raw
	// graph reads through Graph() need no lock to be race-free (the
	// sharded store guarantees that), but the Matcher's own accessors
	// take the read lock so graph and match state stay consistent.
	mu      sync.RWMutex
	g       *Graph
	eng     *inc.Engine
	workers int
	store   *wal.Store // non-nil for durable matchers (OpenMatcher)

	// Observability (see observe.go): every Matcher carries its own
	// registry and tracer, snapshotted by Metrics and served by
	// MetricsHandler.
	reg         *obs.Registry
	trace       *obs.Tracer
	obApply     *obs.Histogram
	obBatch     *obs.Histogram
	obBatchSize *obs.Histogram
	// obEng and obMatch are this matcher's handles into the execution
	// substrate and candidate pipeline, threaded down through
	// match.Options — per-matcher, so coexisting matchers never share
	// counters (see observe.go registerObs).
	obEng   *engine.Obs
	obMatch *match.Obs

	// onApply, when set, is called under m.mu at the end of every
	// Apply/ApplyBatch that changed the pair set (see SetOnApply).
	onApply func(ApplyEvent)
}

// ApplyEvent describes the merge/split effect of one Apply or
// ApplyBatch: the pairs that appeared and disappeared, tagged with the
// matcher's sequence number after the call (the WAL sequence for
// durable matchers, the repair generation otherwise) so subscribers
// can resume from a known point.
type ApplyEvent struct {
	Seq     uint64
	Added   []Pair
	Removed []Pair
}

// SetOnApply installs a hook receiving an ApplyEvent for every
// Apply/ApplyBatch that changed the pair set. The hook runs under the
// matcher's write lock — it must not call back into the Matcher and
// should hand the event off quickly (e.g. into a channel). Install it
// before the matcher is used concurrently; a nil fn removes the hook.
func (m *Matcher) SetOnApply(fn func(ApplyEvent)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onApply = fn
}

// Seq returns the matcher's current sequence number: the WAL sequence
// of the last logged delta for durable matchers, or the repair
// generation (maintenance passes run so far) for in-memory ones. It
// only moves forward, and every ApplyEvent carries the value current
// at its delta boundary.
func (m *Matcher) Seq() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.seqLocked()
}

func (m *Matcher) seqLocked() uint64 {
	if m.store != nil {
		return m.store.Seq()
	}
	return m.eng.Seq()
}

// fireLocked invokes the onApply hook if the pair set changed. Caller
// holds m.mu.
func (m *Matcher) fireLocked(added, removed []Pair) {
	if m.onApply == nil || (len(added) == 0 && len(removed) == 0) {
		return
	}
	m.onApply(ApplyEvent{Seq: m.seqLocked(), Added: added, Removed: removed})
}

// NewMatcher computes chase(G, Σ) with the sequential chase and
// returns a Matcher maintaining it. Options.Engine is ignored: the
// incremental result always equals the sequential chase (and hence,
// by Church–Rosser, every engine).
func NewMatcher(g *Graph, ks *KeySet, opts Options) (*Matcher, error) {
	if g == nil || ks == nil {
		return nil, fmt.Errorf("graphkeys: NewMatcher requires a graph and a key set")
	}
	m := &Matcher{g: g, workers: opts.Workers}
	m.registerObs()
	eng, err := inc.New(g.g, ks.set, inc.Options{
		Match:       match.Options{ValueEq: opts.ValueEq, Workers: opts.Workers, Obs: m.obMatch, Eng: m.obEng},
		Parallelism: opts.parallelism(),
		Obs:         inc.RegisterObs(m.reg),
		Trace:       m.trace, //emlint:ignore obshandle forwarded as wiring, not dereferenced; Tracer methods are nil-safe
	})
	if err != nil {
		return nil, err
	}
	m.eng = eng
	return m, nil
}

// Apply mutates the graph by the delta and repairs the fixpoint,
// returning the matches that appeared and disappeared. The delta is
// applied atomically: on error neither the graph nor the match state
// changes.
func (m *Matcher) Apply(d *Delta) (added, removed []Pair, err error) {
	if d == nil {
		return nil, nil, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t0 := m.obApply.Start()
	addedPairs, removedPairs, err := m.eng.Apply(&d.d)
	m.obApply.ObserveSince(t0)
	if err != nil {
		return nil, nil, err
	}
	added, removed = m.toMatches(addedPairs), m.toMatches(removedPairs)
	m.fireLocked(added, removed)
	return added, removed, nil
}

// ApplyBatch mutates the graph by every delta and repairs the fixpoint
// with one maintenance pass over the merged changes, instead of one
// per delta the way repeated Apply calls would. The graph mutations of
// deltas touching disjoint store shards run concurrently (Options
// .Workers writers); overlapping deltas serialize inside the store.
//
// Each delta stays individually atomic, but the batch is not: deltas
// that fail validation are skipped, the rest apply, and their joined
// errors return alongside the (still correct) repair result. Deltas in
// one batch should be independent of each other — when two conflict,
// their serialization order is unspecified.
func (m *Matcher) ApplyBatch(ds []*Delta) (added, removed []Pair, err error) {
	added, removed, _, err = m.applyBatch(ds)
	return added, removed, err
}

// applyBatch is ApplyBatch plus the count of deltas that actually
// applied (the batch's partial semantics skip deltas failing
// validation) — the Writer's failure accounting needs the split.
func (m *Matcher) applyBatch(ds []*Delta) (added, removed []Pair, applied int, err error) {
	if len(ds) == 0 {
		return nil, nil, 0, nil
	}
	gds := make([]*graph.Delta, len(ds))
	for i, d := range ds {
		if d != nil {
			gds[i] = &d.d
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.obBatchSize.Observe(int64(len(ds)))
	t0 := m.obBatch.Start()
	addedPairs, removedPairs, err := m.eng.ApplyAll(gds, engine.Workers(m.workers))
	m.obBatch.ObserveSince(t0)
	applied = m.eng.LastStats().Merged
	added, removed = m.toMatches(addedPairs), m.toMatches(removedPairs)
	m.fireLocked(added, removed)
	return added, removed, applied, err
}

// Result materializes the current chase(G, Σ) as a Result, identical
// to what Match would return on the current graph.
func (m *Matcher) Result() *Result {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return buildResult(m.g, m.eng.Pairs(), Chase)
}

// Same reports whether the two entities are currently identified.
// Unknown entities are never identified with anything.
func (m *Matcher) Same(a, b EntityID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	na, ok := m.g.g.Entity(a)
	if !ok {
		return false
	}
	nb, ok := m.g.g.Entity(b)
	if !ok {
		return false
	}
	if na == nb {
		return true
	}
	// Eq().Same performs path compression, so it needs the exclusive
	// view the read lock provides against Apply; concurrent Same
	// callers share a snapshot-free non-compressing reader instead.
	return m.eng.Eq().Reader().Same(int32(na), int32(nb))
}

// Canonical returns the canonical entity of a's equivalence class —
// the class representative of the union-find maintained by the chase.
// Two entities are identified exactly when their canonical entities
// coincide, and the representative is stable between Applies, so it
// serves as the class's lookup key. The second result is false when a
// is unknown.
func (m *Matcher) Canonical(a EntityID) (EntityID, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	na, ok := m.g.g.Entity(a)
	if !ok {
		return "", false
	}
	// The non-compressing reader keeps this safe for any number of
	// concurrent callers under the read lock (Eq.Find compresses and
	// would race).
	root := m.eng.Eq().Reader().Find(int32(na))
	return m.g.g.Label(graph.NodeID(root)), true
}

// EntitiesWith returns the entities with the attribute
// (predicate, value) — the subjects of triples (e, predicate, value)
// with a literal object — in ascending internal order (deterministic
// for a given graph history). It reads the inverted value index, so
// the lookup costs one posting list, not a graph sweep. Unknown
// predicates or values yield nil.
func (m *Matcher) EntitiesWith(predicate, value string) []EntityID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.g.g.PredByName(predicate)
	if !ok {
		return nil
	}
	v, ok := m.g.g.Value(value)
	if !ok {
		return nil
	}
	subs := m.g.g.ValueSubjects(p, v)
	if len(subs) == 0 {
		return nil
	}
	out := make([]EntityID, 0, len(subs))
	for _, s := range subs {
		out = append(out, m.g.g.Label(s))
	}
	return out
}

// Graph returns the maintained graph. Mutate it only through Apply.
func (m *Matcher) Graph() *Graph { return m.g }

// Stats reports the repair work of one maintenance pass (see
// LastStats for what one pass covers).
type Stats = inc.Stats

// LastStats reports the repair work of the most recent maintenance
// pass. One pass covers one Apply OR one whole ApplyBatch: batched
// deltas (including everything a Writer coalesced into one batch)
// merge into a single pass, so after a batched call the Stats
// describe the batch as a whole, never a single delta —
// Stats.Merged reports how many deltas the pass covered. The counters
// reset at the start of every Apply/ApplyBatch, including calls whose
// merged delta coalesces to a no-op (those report zero work with the
// Merged count of the attempt). For cumulative counters that survive
// across passes, use Metrics.
func (m *Matcher) LastStats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.eng.LastStats()
}

func (m *Matcher) toMatches(pairs []eqrel.Pair) []Pair {
	out := make([]Pair, 0, len(pairs))
	for _, pr := range pairs {
		out = append(out, Pair{
			A: m.g.g.Label(graph.NodeID(pr.A)),
			B: m.g.g.Label(graph.NodeID(pr.B)),
		})
	}
	return out
}

// EachTriple calls fn for every triple of the graph: object is an
// entity ID or, when objectIsValue, a literal. It exists so callers
// (e.g. replay drivers) can construct deltas from the stored triples.
func (g *Graph) EachTriple(fn func(subject EntityID, predicate, object string, objectIsValue bool)) {
	g.g.EachTriple(func(s graph.NodeID, p graph.PredID, o graph.NodeID) {
		fn(g.g.Label(s), g.g.PredName(p), g.g.Label(o), g.g.IsValue(o))
	})
}

// EachEntity calls fn for every live entity with its type, in
// insertion order. It exists so callers can seed deltas (e.g. when
// loading an existing graph into a durable matcher).
func (g *Graph) EachEntity(fn func(id EntityID, typeName string)) {
	g.g.EachEntity(func(n graph.NodeID) {
		fn(g.g.Label(n), g.g.TypeName(g.g.TypeOf(n)))
	})
}

// Durability selects the WAL append policy of a durable Matcher (see
// OpenMatcher). NewMatcher ignores it: durability is a property of the
// log, and only OpenMatcher has one.
type Durability int

const (
	// DurabilityAppend logs every applied delta, leaving fsync to the
	// OS: a crash may lose the most recently applied deltas but never
	// corrupts the log prefix.
	DurabilityAppend Durability = iota
	// DurabilityFsync additionally fsyncs the log before each delta
	// applies, so an acknowledged Apply survives any crash.
	DurabilityFsync
)

// OpenMatcher opens (creating if needed) a durable Matcher backed by
// the write-ahead log in dir: the snapshot graph (or an empty one) is
// loaded, its fixpoint chase(G, Σ) derived, and the logged deltas are
// replayed through the incremental engine — reconstructing both the
// graph and the match state the previous process reached. Every
// subsequent Apply/ApplyBatch appends its normalized deltas to the log
// (write-ahead, in the order the deltas serialize) under
// opts.Durability; deltas that coalesce to a no-op are not logged.
//
// If the snapshot stores identified pairs, OpenMatcher cross-checks
// that re-deriving the fixpoint reproduces them and fails otherwise.
// Call Snapshot to compact the log and Close when done.
func OpenMatcher(dir string, ks *KeySet, opts Options) (*Matcher, error) {
	policy := wal.SyncNone
	if opts.Durability == DurabilityFsync {
		policy = wal.SyncAlways
	}
	store, err := wal.Open(dir, policy)
	if err != nil {
		return nil, err
	}
	gg := store.SnapshotGraph()
	if gg == nil {
		gg = graph.New()
	}
	m, err := NewMatcher(&Graph{g: gg}, ks, opts)
	if err != nil {
		return nil, closeOnErr(store, err)
	}
	store.RegisterObs(m.reg)
	if want := store.SnapshotPairs(); want != nil {
		if got := m.pairLabels(); !samePairLabels(got, want) {
			return nil, closeOnErr(store, fmt.Errorf("graphkeys: snapshot in %s stores %d pairs but re-deriving the fixpoint yields %d — snapshot and key set disagree", dir, len(want), len(got)))
		}
	}
	// Replay all records as one batch with a single worker: mutations
	// apply sequentially in log order (later records may depend on
	// earlier ones), but the incremental repair runs once over the
	// merged result instead of once per record — the same amortization
	// ApplyBatch buys on the write path, here cutting reopen latency.
	if recs := store.Records(); len(recs) > 0 {
		ds := make([]*graph.Delta, len(recs))
		for i, rec := range recs {
			ds[i] = graph.NewDeltaOps(rec.Ops)
		}
		if _, _, err := m.eng.ApplyAll(ds, 1); err != nil {
			return nil, closeOnErr(store, fmt.Errorf("graphkeys: replay of WAL records %d..%d: %v", recs[0].Seq, recs[len(recs)-1].Seq, err))
		}
	}
	// The write-ahead hook buffers the record under the plan mutex and
	// hands back the group-commit wait: the fsync (under
	// DurabilityFsync) runs after the plan mutex is released, so
	// disjoint-footprint writers share one fsync per group instead of
	// serializing a sync each inside the plan lock.
	m.eng.SetLog(func(ops []graph.DeltaOp) (graph.DeltaCommit, error) {
		_, commit, err := store.Begin(ops)
		if err != nil {
			return nil, err
		}
		return graph.DeltaCommit(commit), nil
	})
	m.store = store
	return m, nil
}

// closeOnErr abandons a half-opened store on an OpenMatcher error
// path, folding a close failure (which may carry a deferred write
// error) into the error being returned.
func closeOnErr(store *wal.Store, err error) error {
	if cerr := store.Close(); cerr != nil {
		return fmt.Errorf("%v (and closing the WAL failed: %v)", err, cerr)
	}
	return err
}

// Snapshot compacts a durable Matcher's log: it atomically writes the
// current graph and identified pairs as the new snapshot and truncates
// the WAL. It errors on matchers not opened with OpenMatcher.
func (m *Matcher) Snapshot() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.store == nil {
		return fmt.Errorf("graphkeys: Snapshot on a non-durable Matcher")
	}
	return m.store.WriteSnapshot(m.g.g, m.pairLabels())
}

// Close releases a durable Matcher's log; the Matcher stays readable
// but further Applies fail at the log. Close on a non-durable Matcher
// is a no-op.
func (m *Matcher) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.store == nil {
		return nil
	}
	return m.store.Close()
}

// pairLabels materializes the current fixpoint as sorted external-ID
// pairs. Caller holds m.mu.
func (m *Matcher) pairLabels() [][2]string {
	pairs := m.eng.Pairs()
	out := make([][2]string, 0, len(pairs))
	for _, pr := range pairs {
		a, b := m.g.g.Label(graph.NodeID(pr.A)), m.g.g.Label(graph.NodeID(pr.B))
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]string{a, b})
	}
	sortPairLabels(out)
	return out
}

func sortPairLabels(ps [][2]string) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// samePairLabels reports whether a (already sorted, as pairLabels
// returns) and b contain the same pairs. b may arrive in any order and
// may be caller-owned (OpenMatcher passes the WAL's snapshot slice),
// so the sort runs on a copy — sorting in place would mutate the
// store's data behind its back.
func samePairLabels(a, b [][2]string) bool {
	if len(a) != len(b) {
		return false
	}
	b = append([][2]string(nil), b...)
	sortPairLabels(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
