package graphkeys

import (
	"fmt"
	"strings"
	"testing"
)

// TestDiscoverKeysPublicAPI: mined keys parse, hold on the graph, and
// actually match duplicates on a second graph with the same schema.
func TestDiscoverKeysPublicAPI(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("p%d", i)
		if err := g.AddEntity(id, "product"); err != nil {
			t.Fatal(err)
		}
		_ = g.AddValueTriple(id, "sku", fmt.Sprintf("SKU-%d", i))
		_ = g.AddValueTriple(id, "color", []string{"red", "blue"}[i%2])
	}
	ks, err := DiscoverKeys(g, "product", DiscoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) == 0 {
		t.Fatal("no keys discovered")
	}
	if !strings.Contains(ks[0].DSL, "sku") {
		t.Errorf("first key = %q, want the sku key", ks[0].DSL)
	}
	set, err := KeySetFromDiscovered(ks)
	if err != nil {
		t.Fatal(err)
	}
	// The keys hold on the mining graph.
	vs, err := Validate(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("discovered keys violated on mining graph: %+v", vs)
	}
	// A dirty graph with a planted duplicate is caught.
	dirty := NewGraph()
	for _, id := range []string{"a", "b", "c"} {
		if err := dirty.AddEntity(id, "product"); err != nil {
			t.Fatal(err)
		}
	}
	_ = dirty.AddValueTriple("a", "sku", "SKU-1")
	_ = dirty.AddValueTriple("b", "sku", "SKU-1")
	_ = dirty.AddValueTriple("c", "sku", "SKU-2")
	res, err := Match(dirty, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0] != (Pair{A: "a", B: "b"}) {
		t.Errorf("matches = %v, want [(a, b)]", res.Matches)
	}
}

func TestDiscoverKeysErrors(t *testing.T) {
	if _, err := DiscoverKeys(nil, "t", DiscoverOptions{}); err == nil {
		t.Error("nil graph accepted")
	}
	g := NewGraph()
	if _, err := DiscoverKeys(g, "ghost", DiscoverOptions{}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := KeySetFromDiscovered(nil); err == nil {
		t.Error("empty discovered set accepted")
	}
}
