package emvc

import (
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"graphkeys/internal/engine"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
	"graphkeys/internal/pattern"
	"graphkeys/internal/vertexcentric"
)

// Variant selects EMVC or EMOptVC.
type Variant int

const (
	// Base is EMVC of §5.1: every propagation step forks a message copy
	// per compatible neighbor.
	Base Variant = iota
	// Opt is EMOptVC of §5.2: bounded messages (at most K in-flight
	// copies per pair and key; further alternatives are explored by the
	// holding worker without forking) and prioritized propagation
	// (most-promising neighbors first).
	Opt
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case Base:
		return "EMVC"
	case Opt:
		return "EMOptVC"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config configures a run.
type Config struct {
	// P is the number of workers.
	P int
	// Variant selects Base or Opt.
	Variant Variant
	// K bounds in-flight message copies per (pair, key) for Opt;
	// 0 means the paper's default of 4.
	K int
	// Match passes through matching options.
	Match match.Options
	// CountProductEdges additionally enumerates |Ep| into the stats
	// (used by the experiment harness for the |Gp| ≈ 2.7·|G| report);
	// it costs an extra pass over the product graph.
	CountProductEdges bool
	// FullSweep disables value-indexed candidate generation and seeds
	// the product graph from the full C(n, 2) per-type candidate
	// sweep; results must be identical. It exists for measurement and
	// differential testing.
	FullSweep bool
}

// Stats reports the work a run performed.
type Stats struct {
	// Candidates is the number of paired candidate pairs seeded.
	Candidates int
	// ProductNodes is |Vp|; ProductEdges is |Ep| (enumerated on
	// demand); DepLinks counts entity→pair dependency registrations
	// (the dep edges of Gp, keyed by entity).
	ProductNodes, ProductEdges, DepLinks int
	// Messages is the number of engine messages processed; LocalSteps
	// counts in-place (non-forking) exploration steps of the bounded
	// variant; Increments counts dependency-triggered re-check seeds.
	Messages, LocalSteps, Increments int64
	// Identified counts direct identifications; BackstopFound counts
	// pairs the driver's final verification sweep had to add (always 0
	// unless the asynchronous protocol missed something).
	Identified    int64
	BackstopFound int
	// Runs is the number of engine runs (1 + backstop reruns).
	Runs int
	// MaxQueueDepth is the engine mailbox high-water mark.
	MaxQueueDepth int
	// Wall is the total duration.
	Wall time.Duration
}

// Result is the outcome of a run.
type Result struct {
	Pairs []eqrel.Pair
	Eq    *eqrel.Eq
	Stats Stats
}

// message is one EvalVC message m_Q(e1, e2): a partial instantiation of
// key keyIdx's pattern nodes with Gp pairs, positioned before tour step
// pos. Messages are immutable once sent; forks copy the slot vector.
// counted marks copies charged against the (pair, key) budget K_Q;
// in-place exploration copies of the bounded variant are not counted.
type message struct {
	candIdx int // index into the paired candidate list
	keyIdx  int // index into the tours of the pair's type
	pos     int // number of tour steps already traversed
	slots   []opair
	counted bool
}

type engineState struct {
	m       *match.Matcher
	prod    *Product
	cands   []eqrel.Pair
	tours   map[graph.TypeID][]*compiledTour
	tr      *engine.Tracker
	depIdx  *match.DependencyIndex
	cfg     Config
	k       int
	budgets [][]atomic.Int64 // per candidate, per key: in-flight copies
	stats   *Stats
	eng     *vertexcentric.Engine[*message]
}

// Run computes chase(G, Σ) in the vertex-centric model.
func Run(g *graph.Graph, set *keys.Set, cfg Config) (*Result, error) {
	start := time.Now()
	mo := cfg.Match
	mo.Workers = cfg.P
	m, err := match.New(g, set, mo)
	if err != nil {
		return nil, err
	}
	st := &engineState{m: m, cfg: cfg, stats: &Stats{}, tr: engine.NewTracker(g.NumNodes())}
	st.k = cfg.K
	if st.k <= 0 {
		st.k = 4
	}

	// Product graph from the pairing relations (Proposition 9), seeded
	// from the value-index-generated candidates unless the caller
	// forces the full sweep.
	var cands []eqrel.Pair
	if cfg.FullSweep {
		cands = m.Candidates()
	} else {
		// Collected rather than consumed lazily: the product graph
		// (Proposition 9) needs all of L to build its vertices.
		cands = slices.Collect(m.CandidateStream())
	}
	st.prod, st.cands = buildProduct(m, cands, cfg.P)
	st.stats.Candidates = len(st.cands)
	st.stats.ProductNodes = st.prod.NumNodes()

	// Tours per type, aligned with the matcher's key order.
	st.tours = make(map[graph.TypeID][]*compiledTour)
	for _, t := range m.KeyedTypes() {
		for _, ck := range m.KeysFor(t) {
			st.tours[t] = append(st.tours[t], compileTour(ck))
		}
	}

	// Dependency index over the paired candidates (dep edges).
	st.depIdx = m.BuildDependencyIndexParallel(st.cands, cfg.P)
	st.stats.DepLinks = st.depIdx.Links()
	if cfg.CountProductEdges {
		st.stats.ProductEdges = st.prod.EdgeCount()
	}

	// Per-(pair, key) message budgets for the bounded variant.
	st.budgets = make([][]atomic.Int64, len(st.cands))
	for i, pr := range st.cands {
		t := g.TypeOf(graph.NodeID(pr.A))
		st.budgets[i] = make([]atomic.Int64, len(st.tours[t]))
	}

	st.eng = vertexcentric.New[*message](cfg.P, st.handle)

	// Seed: initial messages for every key at every paired candidate.
	for i := range st.cands {
		st.seed(i)
	}
	st.stats.Runs = 1
	st.stats.Messages += st.eng.Run()

	// Backstop: verify quiescence reached the fixpoint; re-seed if not.
	for {
		missed := st.sweep()
		if missed == 0 {
			break
		}
		st.stats.BackstopFound += missed
		st.stats.Runs++
		st.stats.Messages += st.eng.Run()
	}

	st.stats.MaxQueueDepth = st.eng.MaxQueueDepth()
	res := &Result{Eq: st.tr.Relation(), Stats: *st.stats}
	res.Pairs = res.Eq.Pairs(m.KeyedEntities())
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// seed sends the initial messages m_Q(e1, e2) for every key defined on
// candidate i (EvalVC part (1)).
func (st *engineState) seed(i int) {
	pr := st.cands[i]
	e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
	if st.tr.Same(pr.A, pr.B) {
		return
	}
	origin, ok := st.prod.ID(opair{e1, e2})
	if !ok {
		return
	}
	tours := st.tours[st.m.G.TypeOf(e1)]
	for ki, ct := range tours {
		if !ct.ck.Matchable() {
			continue
		}
		// Verify self-loop triples on x here; they have no tour step.
		bad := false
		for _, p := range ct.xSelfLoops {
			if !st.m.G.HasTriple(e1, p, e1) || !st.m.G.HasTriple(e2, p, e2) {
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		slots := make([]opair, ct.ck.PatternNodeCount())
		for s := range slots {
			slots[s] = unset
		}
		slots[ct.ck.XIndex()] = opair{e1, e2}
		st.budgets[i][ki].Add(1)
		st.eng.Send(origin, &message{candIdx: i, keyIdx: ki, pos: 0, slots: slots, counted: true})
	}
}

// handle is the vertex program: EvalVC parts (2)–(7).
func (st *engineState) handle(vertex int, msg *message, ctx *vertexcentric.Context[*message]) {
	st.deliver(vertex, msg, func(to int, m *message) { ctx.Send(to, m) })
}

// deliver processes an arrival; send forwards continuations (engine
// send for forks, or recursive local calls in bounded mode). Budget
// accounting: the processed message dies unless exactly one
// continuation is sent; each extra continuation is a new copy.
func (st *engineState) deliver(vertex int, msg *message, send func(int, *message)) {
	pr := st.cands[msg.candIdx]
	// (2) Early cancellation: the pair is already identified.
	if st.tr.Same(pr.A, pr.B) {
		st.release(msg)
		return
	}
	ct := st.tourOf(msg)
	here := st.prod.Pair(vertex)

	// Bind or verify the pattern node this arrival targets.
	if msg.pos > 0 {
		step := ct.steps[msg.pos-1]
		if msg.slots[step.To] == unset {
			if !st.feasible(ct.ck, step.To, here, msg.slots) {
				st.release(msg)
				return
			}
			msg.slots[step.To] = here
		} else if msg.slots[step.To] != here {
			// A direct send must land on the recorded binding.
			st.release(msg)
			return
		}
	}

	// (3) Verification: tour complete means fully instantiated.
	if msg.pos == len(ct.steps) {
		st.identify(msg.candIdx, send)
		st.release(msg)
		return
	}

	// (5) Guided propagation along the next tour step.
	step := ct.steps[msg.pos]
	from := msg.slots[step.From]
	if bound := msg.slots[step.To]; bound != unset {
		// Return hop: send the message straight back to the binding.
		// The budget count transfers from msg to its continuation.
		next := &message{candIdx: msg.candIdx, keyIdx: msg.keyIdx, pos: msg.pos + 1,
			slots: msg.slots, counted: msg.counted}
		if id, ok := st.prod.ID(bound); ok {
			send(id, next)
			return
		}
		st.release(msg)
		return
	}

	// Fork one copy per compatible neighbor, most promising first when
	// prioritization is on; respect the budget in bounded mode.
	_, pred, _ := ct.ck.TripleAt(step.Triple)
	type target struct {
		id    int
		op    opair
		score int
	}
	var targets []target
	st.prod.neighbors(from.A, from.B, pred, step.Forward, func(op opair, id int) {
		sc := 0
		if st.cfg.Variant == Opt {
			sc = st.potential(ct.ck, step.To, op, msg.slots)
		}
		targets = append(targets, target{id: id, op: op, score: sc})
	})
	if len(targets) == 0 {
		st.release(msg)
		return
	}
	if st.cfg.Variant == Opt {
		// Prioritized propagation: highest potential first.
		for i := 0; i < len(targets); i++ {
			best := i
			for j := i + 1; j < len(targets); j++ {
				if targets[j].score > targets[best].score {
					best = j
				}
			}
			targets[i], targets[best] = targets[best], targets[i]
		}
	}

	budget := &st.budgets[msg.candIdx][msg.keyIdx]
	for _, tg := range targets {
		cp := &message{candIdx: msg.candIdx, keyIdx: msg.keyIdx, pos: msg.pos + 1, slots: cloneSlots(msg.slots)}
		mayFork := st.cfg.Variant == Base
		if st.cfg.Variant == Opt && budget.Load() < int64(st.k) {
			// Fork while under budget (the check-then-add may briefly
			// overshoot k under contention; the bound is advisory, as a
			// distributed K_Q counter's would be).
			mayFork = true
		}
		if mayFork {
			budget.Add(1)
			cp.counted = true
			send(tg.id, cp)
			continue
		}
		// In-place exploration: recurse synchronously, reusing deliver
		// with a local trampoline so no engine message is created.
		atomic.AddInt64(&st.stats.LocalSteps, 1)
		st.localDeliver(tg.id, cp)
		if st.tr.Same(pr.A, pr.B) {
			break // early termination: someone identified the pair
		}
	}
	st.release(msg)
}

// localDeliver explores synchronously (the bounded variant's non-fork
// path). Continuations stay local.
func (st *engineState) localDeliver(vertex int, msg *message) {
	st.deliver(vertex, msg, func(to int, m *message) {
		atomic.AddInt64(&st.stats.LocalSteps, 1)
		st.localDeliver(to, m)
	})
}

// release retires one in-flight copy of the message's (pair, key); it
// is a no-op for uncounted in-place copies.
func (st *engineState) release(msg *message) {
	if msg.counted {
		st.budgets[msg.candIdx][msg.keyIdx].Add(-1)
	}
}

// tourOf resolves the compiled tour of a message.
func (st *engineState) tourOf(msg *message) *compiledTour {
	pr := st.cands[msg.candIdx]
	return st.tours[st.m.G.TypeOf(graph.NodeID(pr.A))][msg.keyIdx]
}

// identify marks the pair identified, computes the affected class
// members and triggers increment messages at dependent pairs
// (EvalVC parts (6) and (7); transitive closure lives in the tracker's
// union-find).
func (st *engineState) identify(candIdx int, send func(int, *message)) {
	pr := st.cands[candIdx]
	affected, changed := st.tr.Union(pr.A, pr.B)
	if !changed {
		return
	}
	atomic.AddInt64(&st.stats.Identified, 1)
	seen := make(map[int]bool)
	for _, e := range affected {
		for _, di := range st.depIdx.Dependents(graph.NodeID(e)) {
			if seen[di] || st.tr.Same(st.cands[di].A, st.cands[di].B) {
				continue
			}
			seen[di] = true
			atomic.AddInt64(&st.stats.Increments, 1)
			st.reseed(di, send)
		}
	}
}

// reseed sends fresh initial messages for every key at candidate i —
// the increment messages of EvalVC part (6).
func (st *engineState) reseed(i int, send func(int, *message)) {
	pr := st.cands[i]
	e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
	origin, ok := st.prod.ID(opair{e1, e2})
	if !ok {
		return
	}
	tours := st.tours[st.m.G.TypeOf(e1)]
	for ki, ct := range tours {
		if !ct.ck.Matchable() || !ct.ck.Key.Recursive {
			continue // only recursive keys can newly fire after a union
		}
		slots := make([]opair, ct.ck.PatternNodeCount())
		for s := range slots {
			slots[s] = unset
		}
		slots[ct.ck.XIndex()] = opair{e1, e2}
		st.budgets[i][ki].Add(1)
		send(origin, &message{candIdx: i, keyIdx: ki, pos: 0, slots: slots, counted: true})
	}
}

// feasible checks the EvalVC feasibility conditions for binding pattern
// node q of key ck to the pair (here.A, here.B): injectivity per side,
// kind/equality constraints (entity variables consult the live Eq), and
// guided expansion against already-bound nodes.
func (st *engineState) feasible(ck *match.CompiledKey, q int, here opair, slots []opair) bool {
	g := st.m.G
	a, b := here.A, here.B
	for _, s := range slots {
		if s == unset {
			continue
		}
		if s.A == a || s.B == b {
			return false // injectivity within each side
		}
	}
	kind, typ, constID := ck.NodeInfo(q)
	switch kind {
	case pattern.Designated:
		return false // x never re-binds
	case pattern.EntityVar:
		if !g.IsEntity(a) || !g.IsEntity(b) || g.TypeOf(a) != typ || g.TypeOf(b) != typ {
			return false
		}
		if !st.tr.Same(int32(a), int32(b)) {
			return false
		}
	case pattern.Wildcard:
		if !g.IsEntity(a) || !g.IsEntity(b) || g.TypeOf(a) != typ || g.TypeOf(b) != typ {
			return false
		}
	case pattern.ValueVar:
		if !g.IsValue(a) || !g.IsValue(b) || !st.valueEq(g.Label(a), g.Label(b)) {
			return false
		}
	case pattern.Const:
		if !g.IsValue(a) || !g.IsValue(b) {
			return false
		}
		cv := g.Label(constID)
		if !st.valueEq(g.Label(a), cv) || !st.valueEq(g.Label(b), cv) {
			return false
		}
	}
	// Guided expansion: triples between q and bound nodes must exist.
	for _, ti := range ck.IncidentTriples(q) {
		s, p, o := ck.TripleAt(ti)
		if s == q && o == q {
			if !g.HasTriple(a, p, a) || !g.HasTriple(b, p, b) {
				return false
			}
			continue
		}
		if s == q {
			if ob := slots[o]; ob != unset {
				if !g.HasTriple(a, p, ob.A) || !g.HasTriple(b, p, ob.B) {
					return false
				}
			}
		}
		if o == q {
			if sb := slots[s]; sb != unset {
				if !g.HasTriple(sb.A, p, a) || !g.HasTriple(sb.B, p, b) {
					return false
				}
			}
		}
	}
	return true
}

func (st *engineState) valueEq(a, b string) bool {
	if st.cfg.Match.ValueEq == nil {
		return a == b
	}
	return st.cfg.Match.ValueEq(a, b)
}

// potential estimates how promising a neighbor pair is for completing
// the instantiation (§5.2 prioritized propagation): the number of
// still-unbound pattern triples incident to the target node whose
// predicate both sides of the pair can follow.
func (st *engineState) potential(ck *match.CompiledKey, q int, op opair, slots []opair) int {
	g := st.m.G
	score := 0
	for _, ti := range ck.IncidentTriples(q) {
		s, p, o := ck.TripleAt(ti)
		var other int
		outgoing := false
		if s == q {
			other, outgoing = o, true
		} else {
			other = s
		}
		if other == q || slots[other] != unset {
			continue
		}
		if hasPred(g, op.A, p, outgoing) && hasPred(g, op.B, p, outgoing) {
			score++
		}
	}
	return score
}

func hasPred(g *graph.Graph, n graph.NodeID, p graph.PredID, outgoing bool) bool {
	edges := g.Out(n)
	if !outgoing {
		edges = g.In(n)
	}
	for _, e := range edges {
		if e.Pred == p {
			return true
		}
	}
	return false
}

// sweep is the driver's correctness backstop: after quiescence, verify
// sequentially that no unidentified candidate has become identifiable;
// any stragglers are identified and their dependents reseeded.
func (st *engineState) sweep() int {
	missed := 0
	for i, pr := range st.cands {
		if st.tr.Same(pr.A, pr.B) {
			continue
		}
		e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
		if ok, _, _ := st.m.Identified(e1, e2, st.tr); ok {
			missed++
			st.identify(i, func(to int, m *message) { st.eng.Send(to, m) })
		}
	}
	return missed
}

func cloneSlots(s []opair) []opair {
	c := make([]opair, len(s))
	copy(c, s)
	return c
}
