// Package emvc implements algorithm EMVC of "Keys for Graphs" (§5) and
// its optimized variant EMOptVC: entity matching in the vertex-centric
// asynchronous model. Candidate instantiations of a key are explored by
// messages propagating through a product graph, guided by a precomputed
// tour of the key's pattern, with no global rounds — identifications
// and their dependent re-checks happen as messages arrive.
package emvc

import (
	"graphkeys/internal/engine"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/match"
)

// opair is an ordered node pair (s1 from the first match's side, s2
// from the second's): a node of the product graph Gp.
type opair struct {
	A, B graph.NodeID
}

// unset is the sentinel for uninstantiated message slots.
var unset = opair{graph.NoNode, graph.NoNode}

// Product is the product graph Gp of §5.1, restricted — as the paper
// prescribes via Proposition 9 — to pairs that can be paired: the union
// of the maximum pairing relations of every key at every candidate
// pair. Structural edges ((s1,s2), p, (o1,o2)) are not materialized;
// they are enumerated on demand from the underlying graph's adjacency,
// which keeps |Gp| storage linear in its node count.
type Product struct {
	g     *graph.Graph
	nodes []opair
	idx   map[opair]int
}

func newProduct(g *graph.Graph) *Product {
	return &Product{g: g, idx: make(map[opair]int)}
}

func (p *Product) add(op opair) int {
	if id, ok := p.idx[op]; ok {
		return id
	}
	id := len(p.nodes)
	p.nodes = append(p.nodes, op)
	p.idx[op] = id
	return id
}

// ID returns the vertex ID of a pair, if it is a Gp node.
func (p *Product) ID(op opair) (int, bool) {
	id, ok := p.idx[op]
	return id, ok
}

// Pair returns the ordered pair of vertex id.
func (p *Product) Pair(id int) opair { return p.nodes[id] }

// NumNodes returns |Vp|.
func (p *Product) NumNodes() int { return len(p.nodes) }

// EdgeCount enumerates |Ep| (structural edges): for every Gp node
// (a, b) and predicate p, the pairs (o1, o2) ∈ Vp with (a,p,o1) and
// (b,p,o2) in G. It exists for the |Gp| ≈ 2.7·|G| report of §6 and is
// O(Σ deg(a)·deg(b)).
func (p *Product) EdgeCount() int {
	n := 0
	for _, op := range p.nodes {
		for _, ea := range p.g.Out(op.A) {
			for _, eb := range p.g.Out(op.B) {
				if ea.Pred != eb.Pred {
					continue
				}
				if _, ok := p.idx[opair{ea.To, eb.To}]; ok {
					n++
				}
			}
		}
	}
	return n
}

// neighbors enumerates the Gp nodes reachable from (a, b) by one
// pattern-triple step: outgoing edges labeled pred when forward, else
// incoming. fn is called with the neighbor pair and its vertex ID.
func (p *Product) neighbors(a, b graph.NodeID, pred graph.PredID, forward bool, fn func(op opair, id int)) {
	edgesA, edgesB := p.g.Out(a), p.g.Out(b)
	if !forward {
		edgesA, edgesB = p.g.In(a), p.g.In(b)
	}
	for _, ea := range edgesA {
		if ea.Pred != pred {
			continue
		}
		for _, eb := range edgesB {
			if eb.Pred != pred {
				continue
			}
			op := opair{ea.To, eb.To}
			if id, ok := p.idx[op]; ok {
				fn(op, id)
			}
		}
	}
}

// buildProduct constructs Gp from the pairing relations of the paired
// candidate pairs, and returns the paired candidate list alongside.
// Per-candidate pairing runs in parallel on p workers (the paper's
// construction of Gp is itself a parallel job); the cheap x-local
// QuickPaired filter rejects hopeless pairs before the fixpoint.
func buildProduct(m *match.Matcher, cands []eqrel.Pair, workers int) (*Product, []eqrel.Pair) {
	p := newProduct(m.G)
	type out struct {
		paired bool
		tuples []opair
	}
	outs := make([]out, len(cands))
	engine.Parallel(m.Opts.Eng, workers, len(cands), func(i int) {
		pr := cands[i]
		e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
		g1d, g2d := m.Neighborhood(e1), m.Neighborhood(e2)
		for _, ck := range m.KeysFor(m.G.TypeOf(e1)) {
			if !m.QuickPaired(ck, e1, e2) {
				continue
			}
			rel := m.ComputePairing(ck, e1, e2, g1d, g2d)
			if !rel.Paired(e1, e2) {
				continue
			}
			outs[i].paired = true
			rel.EachPair(func(a, b graph.NodeID) {
				outs[i].tuples = append(outs[i].tuples, opair{a, b})
			})
		}
	})
	var paired []eqrel.Pair
	for i, pr := range cands {
		if !outs[i].paired {
			continue
		}
		paired = append(paired, pr)
		p.add(opair{graph.NodeID(pr.A), graph.NodeID(pr.B)})
		for _, t := range outs[i].tuples {
			p.add(t)
		}
	}
	return p, paired
}

// The concurrent equivalence relation with class-membership lists the
// engine merges identifications through is engine.Tracker: a union
// reports every entity of the two merged classes so that dependents of
// any member can be re-triggered (transitive merges can enable pairs
// that depend on entities far from the unioned pair).
