package emvc

import (
	"graphkeys/internal/graph"
	"graphkeys/internal/match"
	"graphkeys/internal/pattern"
)

// tourStep is one hop of the traversal order P_Q of §5.1: traverse
// pattern triple Triple from pattern node From to pattern node To
// (Forward means From is the triple's subject, so the hop follows an
// outgoing graph edge; otherwise an incoming one).
type tourStep struct {
	Triple  int
	From    int
	To      int
	Forward bool
}

// buildTour computes a tour of the key's pattern: a closed walk that
// starts and ends at x and visits every pattern node, as message
// propagation in EvalVC is guided by it. We take the DFS tree walk over
// the pattern's undirected view — each tree triple is traversed down
// and then back up, so the walk has at most 2|Q| steps (Lemma 11's
// bound). Non-tree triples (pattern cycles) need no step of their own:
// the guided-expansion feasibility check verifies them when their
// second endpoint is bound. Finding a shortest tour is NP-complete
// (Chinese Postman, §5.1), so like the paper we use a greedy order:
// neighbors with harder constraints (constants, value variables) are
// descended into first.
//
// Self-loop triples (x -p-> x) never produce steps; the seeding code
// verifies them directly.
func buildTour(ck *match.CompiledKey) []tourStep {
	n := ck.PatternNodeCount()
	visited := make([]bool, n)
	var steps []tourStep

	// scoreOf ranks descent targets: cheap-to-refute nodes first.
	scoreOf := func(node int) int {
		kind, _, _ := ck.NodeInfo(node)
		switch kind {
		case pattern.Const:
			return 3
		case pattern.ValueVar:
			return 2
		case pattern.EntityVar:
			return 1
		default:
			return 0
		}
	}

	var visit func(u int)
	visit = func(u int) {
		visited[u] = true
		// Collect unvisited neighbors with the triple reaching them.
		type hop struct {
			triple, to int
			forward    bool
			score      int
		}
		var hops []hop
		for _, ti := range ck.IncidentTriples(u) {
			s, _, o := ck.TripleAt(ti)
			if s == u && o != u && !visited[o] {
				hops = append(hops, hop{ti, o, true, scoreOf(o)})
			} else if o == u && s != u && !visited[s] {
				hops = append(hops, hop{ti, s, false, scoreOf(s)})
			}
		}
		// Greedy: highest score first (stable by construction order).
		for i := 0; i < len(hops); i++ {
			best := i
			for j := i + 1; j < len(hops); j++ {
				if hops[j].score > hops[best].score {
					best = j
				}
			}
			hops[i], hops[best] = hops[best], hops[i]
		}
		for _, h := range hops {
			if visited[h.to] {
				continue // reached through an earlier sibling subtree
			}
			steps = append(steps, tourStep{Triple: h.triple, From: u, To: h.to, Forward: h.forward})
			visit(h.to)
			// Walk back up the same triple, in the opposite direction.
			steps = append(steps, tourStep{Triple: h.triple, From: h.to, To: u, Forward: !h.forward})
		}
	}
	visit(ck.XIndex())
	return steps
}

// compiledTour bundles a compiled key with its tour and per-node
// metadata used by message feasibility checks.
type compiledTour struct {
	ck    *match.CompiledKey
	steps []tourStep
	// selfLoopPreds lists predicates of self-loop triples on x, checked
	// at seeding time.
	xSelfLoops []graph.PredID
}

func compileTour(ck *match.CompiledKey) *compiledTour {
	ct := &compiledTour{ck: ck, steps: buildTour(ck)}
	x := ck.XIndex()
	for _, ti := range ck.IncidentTriples(x) {
		s, p, o := ck.TripleAt(ti)
		if s == x && o == x {
			ct.xSelfLoops = append(ct.xSelfLoops, p)
		}
	}
	return ct
}
