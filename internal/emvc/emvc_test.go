package emvc

import (
	"fmt"
	"math/rand"
	"testing"

	"graphkeys/internal/chase"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/fixtures"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
)

func run(t *testing.T, g *graph.Graph, set *keys.Set, cfg Config) *Result {
	t.Helper()
	res, err := Run(g, set, cfg)
	if err != nil {
		t.Fatalf("Run(%v): %v", cfg.Variant, err)
	}
	return res
}

func groundTruth(t *testing.T, g *graph.Graph, set *keys.Set) []eqrel.Pair {
	t.Helper()
	res, err := chase.Run(g, set, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Pairs
}

func samePairs(a, b []eqrel.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVariantsMatchChaseOnFixtures: both variants at several worker
// counts reproduce the sequential chase on the paper fixtures, and the
// asynchronous protocol itself reaches the fixpoint (backstop finds 0).
func TestVariantsMatchChaseOnFixtures(t *testing.T) {
	fixturesList := []struct {
		name string
		g    *graph.Graph
		set  *keys.Set
	}{
		{"music", fixtures.MusicGraph(), fixtures.MusicKeys()},
		{"company", fixtures.CompanyGraph(), fixtures.CompanyKeys()},
		{"address", fixtures.AddressGraph(), fixtures.AddressKeys()},
	}
	for _, fx := range fixturesList {
		want := groundTruth(t, fx.g, fx.set)
		for _, v := range []Variant{Base, Opt} {
			for _, p := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("%s/%v/p%d", fx.name, v, p), func(t *testing.T) {
					res := run(t, fx.g, fx.set, Config{P: p, Variant: v})
					if !samePairs(res.Pairs, want) {
						t.Fatalf("pairs = %v, want %v", res.Pairs, want)
					}
					if res.Stats.BackstopFound != 0 {
						t.Errorf("async protocol missed %d pairs; the dep-triggered rechecks are incomplete",
							res.Stats.BackstopFound)
					}
				})
			}
		}
	}
}

// TestExample10MessageFlow mirrors Example 10: the music fixture's
// (alb1, alb2) is identified by Q2, which then triggers an increment at
// the dependent (art1, art2).
func TestExample10MessageFlow(t *testing.T) {
	g := fixtures.MusicGraph()
	res := run(t, g, fixtures.MusicKeys(), Config{P: 2, Variant: Base})
	if res.Stats.Identified != 2 {
		t.Errorf("direct identifications = %d, want 2", res.Stats.Identified)
	}
	if res.Stats.Increments == 0 {
		t.Error("no increment messages: dependency propagation did not fire")
	}
	if res.Stats.Messages == 0 {
		t.Error("no messages processed")
	}
}

// TestProductGraphShape: Gp contains the candidate pair nodes, is
// restricted to paired nodes, and stays far below |G|^2.
func TestProductGraphShape(t *testing.T) {
	g := fixtures.MusicGraph()
	m, err := match.New(g, fixtures.MusicKeys(), match.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prod, cands := buildProduct(m, m.Candidates(), 2)
	if len(cands) == 0 {
		t.Fatal("no paired candidates")
	}
	for _, pr := range cands {
		if _, ok := prod.ID(opair{graph.NodeID(pr.A), graph.NodeID(pr.B)}); !ok {
			t.Errorf("candidate pair (%d,%d) missing from Vp", pr.A, pr.B)
		}
	}
	n2 := g.NumNodes() * g.NumNodes()
	if prod.NumNodes() >= n2/2 {
		t.Errorf("|Vp| = %d is not much smaller than |G|^2 = %d", prod.NumNodes(), n2)
	}
	if prod.EdgeCount() == 0 {
		t.Error("product graph has no structural edges")
	}
}

// TestTourProperties: for every paper key, the tour starts and ends at
// x, visits every pattern node, has at most 2|Q| steps, and consecutive
// steps are chained.
func TestTourProperties(t *testing.T) {
	g := fixtures.MusicGraph()
	// Compile against a graph that has all predicates; use each fixture
	// set against its graph.
	check := func(t *testing.T, g *graph.Graph, set *keys.Set) {
		m, err := match.New(g, set, match.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, tid := range m.KeyedTypes() {
			for _, ck := range m.KeysFor(tid) {
				steps := buildTour(ck)
				if len(steps) > 2*ck.TripleCount() {
					t.Errorf("%s: tour has %d steps > 2|Q| = %d",
						ck.Key.Name, len(steps), 2*ck.TripleCount())
				}
				if len(steps) == 0 {
					continue
				}
				if steps[0].From != ck.XIndex() {
					t.Errorf("%s: tour does not start at x", ck.Key.Name)
				}
				if steps[len(steps)-1].To != ck.XIndex() {
					t.Errorf("%s: tour does not end at x", ck.Key.Name)
				}
				visited := map[int]bool{ck.XIndex(): true}
				for i, s := range steps {
					if i > 0 && steps[i-1].To != s.From {
						t.Errorf("%s: steps %d and %d not chained", ck.Key.Name, i-1, i)
					}
					visited[s.From] = true
					visited[s.To] = true
				}
				if len(visited) != ck.PatternNodeCount() {
					t.Errorf("%s: tour visits %d of %d nodes", ck.Key.Name, len(visited), ck.PatternNodeCount())
				}
			}
		}
	}
	check(t, g, fixtures.MusicKeys())
	check(t, fixtures.CompanyGraph(), fixtures.CompanyKeys())
	check(t, fixtures.AddressGraph(), fixtures.AddressKeys())
}

// TestBoundedMessagesStillCorrect: tiny budgets force in-place
// exploration and must not lose identifications.
func TestBoundedMessagesStillCorrect(t *testing.T) {
	g := fixtures.MusicGraph()
	want := groundTruth(t, g, fixtures.MusicKeys())
	for _, k := range []int{1, 2, 4, 64} {
		res := run(t, g, fixtures.MusicKeys(), Config{P: 4, Variant: Opt, K: k})
		if !samePairs(res.Pairs, want) {
			t.Fatalf("K=%d: pairs differ", k)
		}
	}
	// A K of 1 must do most exploration in place.
	res := run(t, g, fixtures.MusicKeys(), Config{P: 4, Variant: Opt, K: 1})
	if res.Stats.LocalSteps == 0 {
		t.Error("K=1 produced no local exploration steps")
	}
}

// TestOptFewerMessages: bounding reduces engine messages relative to
// unbounded forking on the same input.
func TestOptFewerMessages(t *testing.T) {
	g := fixtures.CompanyGraph()
	set := fixtures.CompanyKeys()
	base := run(t, g, set, Config{P: 4, Variant: Base})
	opt := run(t, g, set, Config{P: 4, Variant: Opt, K: 2})
	if opt.Stats.Messages > base.Stats.Messages {
		t.Errorf("Opt processed more messages (%d) than Base (%d)",
			opt.Stats.Messages, base.Stats.Messages)
	}
}

// TestDependencyChainCascade: the async engine resolves dependency
// chains end to end in one Run (increments ripple through).
func TestDependencyChainCascade(t *testing.T) {
	for _, depth := range []int{2, 4, 6} {
		g, set := chainFixture(t, depth)
		for _, v := range []Variant{Base, Opt} {
			res := run(t, g, set, Config{P: 3, Variant: v})
			if len(res.Pairs) != depth {
				t.Errorf("depth %d %v: pairs = %d, want %d", depth, v, len(res.Pairs), depth)
			}
			if res.Stats.BackstopFound != 0 {
				t.Errorf("depth %d %v: backstop found %d", depth, v, res.Stats.BackstopFound)
			}
			if res.Stats.Runs != 1 {
				t.Errorf("depth %d %v: runs = %d, want 1 (no re-seeding needed)", depth, v, res.Stats.Runs)
			}
		}
	}
}

func chainFixture(t *testing.T, depth int) (*graph.Graph, *keys.Set) {
	t.Helper()
	dsl := `
key K0 for t0 {
    x -name-> n*
}
`
	for lvl := 1; lvl < depth; lvl++ {
		dsl += fmt.Sprintf(`
key K%d for t%d {
    x -name-> n*
    x -child-> $y:t%d
}
`, lvl, lvl, lvl-1)
	}
	set, err := keys.ParseString(dsl)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	for side := 0; side < 2; side++ {
		var prev graph.NodeID
		for lvl := 0; lvl < depth; lvl++ {
			e := g.MustAddEntity(fmt.Sprintf("s%d_l%d", side, lvl), fmt.Sprintf("t%d", lvl))
			g.MustAddTriple(e, "name", g.AddValue(fmt.Sprintf("name-l%d", lvl)))
			if lvl > 0 {
				g.MustAddTriple(e, "child", prev)
			}
			prev = e
		}
	}
	return g, set
}

// TestTransitiveMergeTriggersDependents mirrors the EMMR test: a parent
// pair enabled only by a transitive merge of child classes.
func TestTransitiveMergeTriggersDependents(t *testing.T) {
	set, err := keys.ParseString(`
key KA for u {
    x -a-> a*
}
key KB for u {
    x -b-> b*
}
key KP for p {
    x -name-> n*
    x -child-> $y:u
}`)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	u := make([]graph.NodeID, 5)
	for i := 1; i <= 4; i++ {
		u[i] = g.MustAddEntity(fmt.Sprintf("u%d", i), "u")
	}
	g.MustAddTriple(u[1], "a", g.AddValue("a12"))
	g.MustAddTriple(u[2], "a", g.AddValue("a12"))
	g.MustAddTriple(u[3], "a", g.AddValue("a34"))
	g.MustAddTriple(u[4], "a", g.AddValue("a34"))
	g.MustAddTriple(u[2], "b", g.AddValue("b23"))
	g.MustAddTriple(u[3], "b", g.AddValue("b23"))
	p1 := g.MustAddEntity("p1", "p")
	p2 := g.MustAddEntity("p2", "p")
	g.MustAddTriple(p1, "name", g.AddValue("P"))
	g.MustAddTriple(p2, "name", g.AddValue("P"))
	g.MustAddTriple(p1, "child", u[1])
	g.MustAddTriple(p2, "child", u[4])
	want := groundTruth(t, g, set)
	for _, v := range []Variant{Base, Opt} {
		res := run(t, g, set, Config{P: 4, Variant: v})
		if !samePairs(res.Pairs, want) {
			t.Fatalf("%v: pairs = %v, want %v", v, res.Pairs, want)
		}
	}
}

// TestRandomizedAgainstChase fuzzes both variants and several worker
// counts against the sequential chase.
func TestRandomizedAgainstChase(t *testing.T) {
	set, err := keys.ParseString(`
key KA for a {
    x -name-> n*
    x -rel-> $y:b
}
key KB for b {
    x -tag-> t*
}
key KW for a {
    x -name-> n*
    x -near-> _:b
}`)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		want := groundTruth(t, g, set)
		for _, v := range []Variant{Base, Opt} {
			res := run(t, g, set, Config{P: 1 + int(seed)%5, Variant: v})
			if !samePairs(res.Pairs, want) {
				t.Fatalf("seed %d %v: pairs differ\n got %v\nwant %v", seed, v, res.Pairs, want)
			}
		}
	}
}

func randomGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New()
	nB := 5 + rng.Intn(4)
	var bs []graph.NodeID
	for i := 0; i < nB; i++ {
		b := g.MustAddEntity(fmt.Sprintf("b%d", i), "b")
		g.MustAddTriple(b, "tag", g.AddValue(fmt.Sprintf("tag%d", rng.Intn(3))))
		bs = append(bs, b)
	}
	nA := 6 + rng.Intn(4)
	for i := 0; i < nA; i++ {
		a := g.MustAddEntity(fmt.Sprintf("a%d", i), "a")
		g.MustAddTriple(a, "name", g.AddValue(fmt.Sprintf("name%d", rng.Intn(3))))
		g.MustAddTriple(a, "rel", bs[rng.Intn(len(bs))])
		if rng.Intn(2) == 0 {
			g.MustAddTriple(a, "near", bs[rng.Intn(len(bs))])
		}
	}
	return g
}

// TestSelfLoopOnlyKey: a key whose single triple is a self-loop on x
// has an empty tour; seeding must verify it directly.
func TestSelfLoopOnlyKey(t *testing.T) {
	set, err := keys.ParseString(`
key K for t {
    x -self-> x
}`)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	e1 := g.MustAddEntity("e1", "t")
	e2 := g.MustAddEntity("e2", "t")
	e3 := g.MustAddEntity("e3", "t")
	g.MustAddTriple(e1, "self", e1)
	g.MustAddTriple(e2, "self", e2)
	g.MustAddTriple(e3, "other", e3)
	want := groundTruth(t, g, set)
	res := run(t, g, set, Config{P: 2, Variant: Base})
	if !samePairs(res.Pairs, want) {
		t.Fatalf("pairs = %v, want %v", res.Pairs, want)
	}
}

// TestEmptyGraph: no candidates, no messages, clean return.
func TestEmptyGraph(t *testing.T) {
	res := run(t, graph.New(), fixtures.MusicKeys(), Config{P: 4, Variant: Opt})
	if len(res.Pairs) != 0 || res.Stats.Messages != 0 {
		t.Errorf("empty graph: %+v", res.Stats)
	}
}

// TestVariantString keeps the paper names.
func TestVariantString(t *testing.T) {
	if Base.String() != "EMVC" || Opt.String() != "EMOptVC" {
		t.Error("variant names drifted")
	}
	if Variant(7).String() != "Variant(7)" {
		t.Error("unknown variant formatting")
	}
}

// TestProductEdgesStat: the optional edge enumeration fills the stat.
func TestProductEdgesStat(t *testing.T) {
	g := fixtures.MusicGraph()
	res := run(t, g, fixtures.MusicKeys(), Config{P: 2, Variant: Base, CountProductEdges: true})
	if res.Stats.ProductEdges == 0 {
		t.Error("ProductEdges not counted")
	}
	res = run(t, g, fixtures.MusicKeys(), Config{P: 2, Variant: Base})
	if res.Stats.ProductEdges != 0 {
		t.Error("ProductEdges counted without the flag")
	}
}
