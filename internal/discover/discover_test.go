package discover

import (
	"fmt"
	"strings"
	"testing"

	"graphkeys/internal/chase"
	"graphkeys/internal/fixtures"
	"graphkeys/internal/graph"
	"graphkeys/internal/match"
)

// TestDiscoverValueKey: a type uniquely identified by one attribute
// yields that single-attribute key, minimal (no supersets proposed).
func TestDiscoverValueKey(t *testing.T) {
	g := graph.New()
	for i := 0; i < 6; i++ {
		e := g.MustAddEntity(fmt.Sprintf("e%d", i), "item")
		g.MustAddTriple(e, "sku", g.AddValue(fmt.Sprintf("sku-%d", i)))
		g.MustAddTriple(e, "color", g.AddValue([]string{"red", "blue"}[i%2]))
	}
	cands, err := Discover(g, "item", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no keys discovered")
	}
	// sku alone must be the first (smallest) key; color alone is not a
	// key; color+sku is non-minimal and must not appear.
	first := cands[0]
	if first.Key.Size() != 1 || !strings.Contains(first.Key.Pattern.String(), "sku") {
		t.Errorf("first key = %s (size %d), want the sku key", first.Key.Pattern.String(), first.Key.Size())
	}
	for _, c := range cands {
		body := c.Key.Pattern.String()
		if strings.Contains(body, "sku") && c.Key.Size() > 1 {
			t.Errorf("non-minimal superset of sku proposed: %s", body)
		}
		if c.Key.Size() == 1 && strings.Contains(body, "color") {
			t.Errorf("color alone proposed as key")
		}
	}
}

// TestDiscoverComposite: two attributes that identify only jointly.
func TestDiscoverComposite(t *testing.T) {
	g := graph.New()
	// (name, year) unique; name alone and year alone collide.
	data := [][2]string{{"A", "1"}, {"A", "2"}, {"B", "1"}, {"B", "2"}}
	for i, d := range data {
		e := g.MustAddEntity(fmt.Sprintf("e%d", i), "album")
		g.MustAddTriple(e, "name", g.AddValue(d[0]))
		g.MustAddTriple(e, "year", g.AddValue(d[1]))
	}
	cands, err := Discover(g, "album", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want exactly the composite key", len(cands))
	}
	if cands[0].Key.Size() != 2 {
		t.Errorf("key size = %d, want 2", cands[0].Key.Size())
	}
	if cands[0].Support != 1.0 {
		t.Errorf("support = %v, want 1.0", cands[0].Support)
	}
}

// TestDiscoveredKeysHold: every discovered key satisfies G ⊨ Q — the
// chase under the discovered set identifies nothing.
func TestDiscoveredKeysHold(t *testing.T) {
	g := graph.New()
	for i := 0; i < 8; i++ {
		e := g.MustAddEntity(fmt.Sprintf("p%d", i), "person")
		g.MustAddTriple(e, "email", g.AddValue(fmt.Sprintf("p%d@x.org", i)))
		g.MustAddTriple(e, "city", g.AddValue([]string{"A", "B", "C"}[i%3]))
		g.MustAddTriple(e, "nick", g.AddValue(fmt.Sprintf("nick%d", i%4)))
	}
	cands, err := Discover(g, "person", Options{MaxAttrs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no keys discovered")
	}
	set, err := AsKeySet(cands)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := chase.Violations(g, set, match.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("discovered keys are violated on their own graph: %+v", vs)
	}
}

// TestDiscoverRecursive: with recursion allowed, a type identifiable
// only via an entity neighbor yields an entity-variable key.
func TestDiscoverRecursive(t *testing.T) {
	g := graph.New()
	// Artists share names; only the recorded album distinguishes them.
	albums := make([]graph.NodeID, 4)
	for i := range albums {
		albums[i] = g.MustAddEntity(fmt.Sprintf("alb%d", i), "album")
	}
	for i := 0; i < 4; i++ {
		a := g.MustAddEntity(fmt.Sprintf("art%d", i), "artist")
		g.MustAddTriple(a, "name", g.AddValue([]string{"X", "Y"}[i%2]))
		g.MustAddTriple(albums[i], "recorded_by", a)
	}
	noRec, err := Discover(g, "artist", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range noRec {
		if c.Recursive {
			t.Errorf("recursive key proposed without AllowRecursive: %s", c.Key.Pattern.String())
		}
	}
	rec, err := Discover(g, "artist", Options{AllowRecursive: true})
	if err != nil {
		t.Fatal(err)
	}
	foundRecursive := false
	for _, c := range rec {
		if c.Recursive {
			foundRecursive = true
		}
	}
	if !foundRecursive {
		t.Error("no recursive key discovered despite AllowRecursive")
	}
}

// TestDiscoverSupportThreshold: attributes carried by too few entities
// are not proposed.
func TestDiscoverSupportThreshold(t *testing.T) {
	g := graph.New()
	for i := 0; i < 10; i++ {
		e := g.MustAddEntity(fmt.Sprintf("e%d", i), "t")
		g.MustAddTriple(e, "common", g.AddValue(fmt.Sprintf("c%d", i)))
		if i == 0 {
			g.MustAddTriple(e, "rare", g.AddValue("r"))
		}
	}
	cands, err := Discover(g, "t", Options{MinSupport: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if strings.Contains(c.Key.Pattern.String(), "rare") {
			t.Errorf("low-support attribute proposed: %s", c.Key.Pattern.String())
		}
	}
}

// TestDiscoverOnMusicFixture: on the paper's G1 — which violates Q2 —
// name/year must NOT be proposed (alb1 and alb2 coincide), showing the
// miner respects actual duplicates in the data.
func TestDiscoverOnMusicFixture(t *testing.T) {
	g := fixtures.MusicGraph()
	cands, err := Discover(g, "album", Options{MaxAttrs: 2})
	if err != nil {
		// All-attribute collisions can leave nothing to propose; that
		// is acceptable as long as it is an explicit error.
		t.Skipf("no keys discoverable on G1: %v", err)
	}
	for _, c := range cands {
		body := c.Key.Pattern.String()
		if strings.Contains(body, "name_of") && strings.Contains(body, "release_year") && c.Key.Size() == 2 {
			t.Errorf("name+year proposed as key although alb1/alb2 violate it")
		}
	}
}

// TestDiscoverErrors: degenerate inputs fail loudly.
func TestDiscoverErrors(t *testing.T) {
	g := graph.New()
	if _, err := Discover(g, "ghost", Options{}); err == nil {
		t.Error("unknown type accepted")
	}
	g.MustAddEntity("only", "solo")
	if _, err := Discover(g, "solo", Options{}); err == nil {
		t.Error("single-entity type accepted")
	}
	e1 := g.MustAddEntity("a", "bare")
	e2 := g.MustAddEntity("b", "bare")
	_, _ = e1, e2
	if _, err := Discover(g, "bare", Options{}); err == nil {
		t.Error("attribute-less type accepted")
	}
}

// TestMultiValuedAttributeNotKey: an entity with two values for an
// attribute shares one of them with another entity; the attribute must
// not be proposed (existential match semantics).
func TestMultiValuedAttributeNotKey(t *testing.T) {
	g := graph.New()
	e1 := g.MustAddEntity("e1", "t")
	e2 := g.MustAddEntity("e2", "t")
	g.MustAddTriple(e1, "tag", g.AddValue("shared"))
	g.MustAddTriple(e1, "tag", g.AddValue("unique1"))
	g.MustAddTriple(e2, "tag", g.AddValue("shared"))
	cands, err := Discover(g, "t", Options{MaxAttrs: 1})
	if err == nil {
		for _, c := range cands {
			if strings.Contains(c.Key.Pattern.String(), "tag") {
				t.Errorf("tag proposed although e1/e2 share a tag value")
			}
		}
	}
}
