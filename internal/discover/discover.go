// Package discover implements a baseline key-discovery algorithm — the
// future-work direction §7 of "Keys for Graphs" defers ("develop
// efficient algorithms for discovering keys"). Given a graph and an
// entity type, it mines graph-pattern keys that hold on the graph
// (G ⊨ Q, no two distinct entities coincide) and meet a minimum
// support, searching three pattern families in increasing complexity:
//
//   - value-based keys: combinations of value attributes of x
//     (x -p-> v*), the relational-key analogue;
//   - wildcard-extended keys: value attributes plus typed entity
//     neighbors whose identity is not required (x -p-> _:t);
//   - recursive keys: value attributes plus one identified entity
//     neighbor (x -p-> $y:t or $y:t -p-> x), which are the graph-only
//     keys of the paper.
//
// The miner is levelwise à la TANE/Apriori on the attribute lattice:
// a candidate attribute set is pruned when a superset of an already
// minimal key would be produced, and validated by checking that no two
// distinct supported entities agree (under the same semantics the
// matcher uses).
package discover

import (
	"fmt"
	"sort"
	"strings"

	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/pattern"
)

// Options bounds the search.
type Options struct {
	// MaxAttrs bounds the number of triples adjacent to x in a mined
	// key (default 3).
	MaxAttrs int
	// MinSupport is the minimum fraction of entities of the type that
	// must have all attributes of the key for it to be proposed
	// (default 0.5): a key nobody's data carries is useless.
	MinSupport float64
	// AllowRecursive also proposes keys with one entity variable.
	AllowRecursive bool
}

func (o Options) maxAttrs() int {
	if o.MaxAttrs <= 0 {
		return 3
	}
	return o.MaxAttrs
}

func (o Options) minSupport() float64 {
	if o.MinSupport <= 0 {
		return 0.5
	}
	return o.MinSupport
}

// Candidate is a proposed key with its quality measures.
type Candidate struct {
	// Key is the mined key, named D<n>_<type>.
	Key pattern.Named
	// Support is the fraction of entities of the type matching the
	// pattern at least once.
	Support float64
	// Recursive mirrors pattern.IsRecursive.
	Recursive bool
}

// attribute is one candidate triple adjacent to x.
type attribute struct {
	pred     graph.PredID
	outgoing bool
	// kind of the far end: value variable, wildcard type, or entity
	// variable type.
	kind pattern.NodeKind
	typ  graph.TypeID
}

func (a attribute) String(g *graph.Graph) string {
	dir := "->"
	if !a.outgoing {
		dir = "<-"
	}
	switch a.kind {
	case pattern.ValueVar:
		return fmt.Sprintf("%s%s*", g.PredName(a.pred), dir)
	case pattern.Wildcard:
		return fmt.Sprintf("%s%s_:%s", g.PredName(a.pred), dir, g.TypeName(a.typ))
	default:
		return fmt.Sprintf("%s%s$:%s", g.PredName(a.pred), dir, g.TypeName(a.typ))
	}
}

// Discover mines keys for the given entity type.
func Discover(g *graph.Graph, typeName string, opts Options) ([]Candidate, error) {
	tid, ok := g.TypeByName(typeName)
	if !ok {
		return nil, fmt.Errorf("discover: no entities of type %q", typeName)
	}
	entities := g.EntitiesOfType(tid)
	if len(entities) < 2 {
		return nil, fmt.Errorf("discover: type %q has fewer than two entities; every pattern is trivially a key", typeName)
	}

	attrs := collectAttributes(g, entities, tid, opts)
	if len(attrs) == 0 {
		return nil, fmt.Errorf("discover: no attributes with sufficient support for type %q", typeName)
	}

	// Levelwise search over attribute subsets. minimal keeps found keys
	// so supersets are pruned (a superset of a key is a key but not a
	// minimal one).
	var out []Candidate
	var minimal [][]int
	n := 0
	var frontier [][]int
	for i := range attrs {
		frontier = append(frontier, []int{i})
	}
	for level := 1; level <= opts.maxAttrs() && len(frontier) > 0; level++ {
		var next [][]int
		for _, set := range frontier {
			if coversMinimal(set, minimal) {
				continue
			}
			support, unique := validate(g, entities, attrs, set)
			if support < opts.minSupport() {
				continue // supersets only lose support: prune
			}
			if unique {
				n++
				cand, err := buildKey(g, typeName, attrs, set, n)
				if err != nil {
					return nil, err
				}
				out = append(out, Candidate{
					Key:       cand,
					Support:   support,
					Recursive: cand.IsRecursive(),
				})
				minimal = append(minimal, set)
				continue
			}
			// Extend with attributes after the last index to avoid
			// revisiting permutations.
			for j := set[len(set)-1] + 1; j < len(attrs); j++ {
				if attrs[j].kind == pattern.EntityVar && hasEntityVar(attrs, set) {
					continue // at most one entity variable per mined key
				}
				next = append(next, append(append([]int{}, set...), j))
			}
		}
		frontier = next
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Key.Triples) != len(out[j].Key.Triples) {
			return len(out[i].Key.Triples) < len(out[j].Key.Triples)
		}
		return out[i].Support > out[j].Support
	})
	return out, nil
}

func hasEntityVar(attrs []attribute, set []int) bool {
	for _, i := range set {
		if attrs[i].kind == pattern.EntityVar {
			return true
		}
	}
	return false
}

func coversMinimal(set []int, minimal [][]int) bool {
	for _, m := range minimal {
		if isSubset(m, set) {
			return true
		}
	}
	return false
}

func isSubset(sub, super []int) bool {
	j := 0
	for _, s := range super {
		if j < len(sub) && sub[j] == s {
			j++
		}
	}
	return j == len(sub)
}

// collectAttributes enumerates the candidate triples adjacent to x:
// every (pred, direction) pair observed on entities of the type, once
// as a value variable (if values occur), once as a wildcard and — when
// recursion is allowed — once as an entity variable (if typed entities
// occur, taking the majority neighbor type).
func collectAttributes(g *graph.Graph, entities []graph.NodeID, tid graph.TypeID, opts Options) []attribute {
	type slot struct {
		values int
		types  map[graph.TypeID]int
	}
	outgoing := make(map[graph.PredID]*slot)
	incoming := make(map[graph.PredID]*slot)
	record := func(m map[graph.PredID]*slot, p graph.PredID, to graph.NodeID) {
		s := m[p]
		if s == nil {
			s = &slot{types: make(map[graph.TypeID]int)}
			m[p] = s
		}
		if g.IsValue(to) {
			s.values++
		} else {
			s.types[g.TypeOf(to)]++
		}
	}
	for _, e := range entities {
		for _, ed := range g.Out(e) {
			record(outgoing, ed.Pred, ed.To)
		}
		for _, ed := range g.In(e) {
			record(incoming, ed.Pred, ed.To)
		}
	}
	minCount := int(opts.minSupport() * float64(len(entities)))
	var attrs []attribute
	addFrom := func(m map[graph.PredID]*slot, out bool) {
		preds := make([]graph.PredID, 0, len(m))
		for p := range m {
			preds = append(preds, p)
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
		for _, p := range preds {
			s := m[p]
			if out && s.values >= minCount && s.values > 0 {
				attrs = append(attrs, attribute{pred: p, outgoing: true, kind: pattern.ValueVar})
			}
			// Majority entity neighbor type.
			bestT, bestN := graph.TypeID(0), 0
			for t, c := range s.types {
				if c > bestN || (c == bestN && t < bestT) {
					bestT, bestN = t, c
				}
			}
			if bestN >= minCount && bestN > 0 {
				attrs = append(attrs, attribute{pred: p, outgoing: out, kind: pattern.Wildcard, typ: bestT})
				if opts.AllowRecursive {
					attrs = append(attrs, attribute{pred: p, outgoing: out, kind: pattern.EntityVar, typ: bestT})
				}
			}
		}
	}
	addFrom(outgoing, true)
	addFrom(incoming, false)
	return attrs
}

// signature computes, for one entity, the set of agreement signatures
// the attribute set induces: for value attributes the value node, for
// wildcards the presence marker, for entity variables the neighbor
// entity (node identity stands in for "identified" — under Eq0 this is
// exactly the key-satisfaction check of §2.2). Multi-valued attributes
// make an entity carry several signatures; two entities agreeing on any
// signature pair violate uniqueness, which matches the existential
// match semantics.
func signatures(g *graph.Graph, e graph.NodeID, attrs []attribute, set []int) []string {
	parts := make([][]string, len(set))
	for i, ai := range set {
		a := attrs[ai]
		edges := g.Out(e)
		if !a.outgoing {
			edges = g.In(e)
		}
		for _, ed := range edges {
			if ed.Pred != a.pred {
				continue
			}
			switch a.kind {
			case pattern.ValueVar:
				if g.IsValue(ed.To) {
					parts[i] = append(parts[i], "v"+g.Label(ed.To))
				}
			case pattern.Wildcard:
				if g.IsEntity(ed.To) && g.TypeOf(ed.To) == a.typ {
					// Existence only: one marker regardless of which.
					parts[i] = []string{"w"}
				}
			case pattern.EntityVar:
				if g.IsEntity(ed.To) && g.TypeOf(ed.To) == a.typ {
					parts[i] = append(parts[i], fmt.Sprintf("e%d", ed.To))
				}
			}
		}
		if len(parts[i]) == 0 {
			return nil // unsupported: entity lacks this attribute
		}
	}
	// Cartesian product of per-attribute alternatives.
	sigs := []string{""}
	for _, alts := range parts {
		var next []string
		for _, s := range sigs {
			for _, alt := range alts {
				next = append(next, s+"|"+alt)
			}
		}
		sigs = next
	}
	return sigs
}

// validate computes the support of the attribute set and whether it
// uniquely identifies the supported entities.
func validate(g *graph.Graph, entities []graph.NodeID, attrs []attribute, set []int) (support float64, unique bool) {
	seen := make(map[string]graph.NodeID)
	supported := 0
	unique = true
	for _, e := range entities {
		sigs := signatures(g, e, attrs, set)
		if sigs == nil {
			continue
		}
		supported++
		for _, s := range sigs {
			if prev, dup := seen[s]; dup && prev != e {
				unique = false
			}
			seen[s] = e
		}
	}
	return float64(supported) / float64(len(entities)), unique
}

// buildKey renders the attribute set as a DSL key and parses it back,
// which also validates it.
func buildKey(g *graph.Graph, typeName string, attrs []attribute, set []int, n int) (pattern.Named, error) {
	var b strings.Builder
	name := fmt.Sprintf("D%d_%s", n, typeName)
	fmt.Fprintf(&b, "key %s for %s {\n", name, typeName)
	vi := 0
	for _, ai := range set {
		a := attrs[ai]
		var tok string
		switch a.kind {
		case pattern.ValueVar:
			vi++
			tok = fmt.Sprintf("v%d*", vi)
		case pattern.Wildcard:
			tok = "_:" + g.TypeName(a.typ)
		case pattern.EntityVar:
			tok = "$y:" + g.TypeName(a.typ)
		}
		if a.outgoing {
			fmt.Fprintf(&b, "    x -%s-> %s\n", g.PredName(a.pred), tok)
		} else {
			fmt.Fprintf(&b, "    %s -%s-> x\n", tok, g.PredName(a.pred))
		}
	}
	b.WriteString("}\n")
	ks, err := pattern.ParseString(b.String())
	if err != nil {
		return pattern.Named{}, fmt.Errorf("discover: generated key invalid: %v", err)
	}
	return ks[0], nil
}

// AsKeySet bundles discovered candidates into a key set usable by the
// matching engines.
func AsKeySet(cands []Candidate) (*keys.Set, error) {
	named := make([]pattern.Named, 0, len(cands))
	for _, c := range cands {
		named = append(named, c.Key)
	}
	return keys.FromNamed(named)
}
