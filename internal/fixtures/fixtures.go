// Package fixtures provides the running examples of "Keys for Graphs"
// (Fan et al., PVLDB 2015) — the music graph G1 and company graph G2 of
// Fig. 2, the keys Q1–Q6 of Fig. 1 — together with the identifications
// the paper derives from them (Examples 5, 7, 8 and 10). Every engine's
// test suite asserts against these.
package fixtures

import (
	"fmt"

	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

// KeysDSL is the DSL source for Q1–Q6 of Fig. 1.
const KeysDSL = `
# Q1: an album is identified by its name and its primary recording artist.
key Q1 for album {
    x -name_of-> name*
    x -recorded_by-> $y:artist
}

# Q2: an album is identified by its name and its year of initial release.
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}

# Q3: an artist is identified by the name and one album he or she recorded.
key Q3 for artist {
    x -name_of-> name*
    $a:album -recorded_by-> x
}

# Q4: a company merged from a same-named parent is identified by its name
# and the other parent company.
key Q4 for company {
    x -name_of-> name*
    _w:company -name_of-> name*
    _w:company -parent_of-> x
    $c:company -parent_of-> x
}

# Q5: a company split from a same-named parent is identified by its name
# and another child company after splitting.
key Q5 for company {
    x -name_of-> name*
    _w:company -name_of-> name*
    x -parent_of-> _w:company
    x -parent_of-> $c:company
}

# Q6: a street in the UK is identified by its zip code.
key Q6 for street {
    x -zip_code-> code*
    x -nation_of-> "UK"
}
`

// MusicKeys returns Σ1 = {Q1, Q2, Q3}.
func MusicKeys() *keys.Set {
	return subset("Q1", "Q2", "Q3")
}

// CompanyKeys returns Σ2 = {Q4, Q5}.
func CompanyKeys() *keys.Set {
	return subset("Q4", "Q5")
}

// AddressKeys returns {Q6}.
func AddressKeys() *keys.Set {
	return subset("Q6")
}

// AllKeys returns all six keys.
func AllKeys() *keys.Set {
	s, err := keys.ParseString(KeysDSL)
	if err != nil {
		panic(fmt.Sprintf("fixtures: %v", err))
	}
	return s
}

func subset(names ...string) *keys.Set {
	all := AllKeys()
	var dsl string
	for _, n := range names {
		k, ok := all.ByName(n)
		if !ok {
			panic("fixtures: unknown key " + n)
		}
		dsl += "key " + k.Name + " for " + k.Type() + " {\n" + k.Pattern.String() + "}\n"
	}
	s, err := keys.ParseString(dsl)
	if err != nil {
		panic(fmt.Sprintf("fixtures: subset: %v", err))
	}
	return s
}

// MusicGraph builds G1 of Fig. 2: three albums named "Anthology 2",
// two of which (alb1, alb2) are duplicates released in 1996 by the two
// duplicate artists (art1, art2) both named "The Beatles"; alb3/art3 is
// John Farnham's distinct album of the same name.
//
// Expected chase(G1, Σ1): {(alb1, alb2), (art1, art2)} (Example 7).
func MusicGraph() *graph.Graph {
	g := graph.New()
	alb1 := g.MustAddEntity("alb1", "album")
	alb2 := g.MustAddEntity("alb2", "album")
	alb3 := g.MustAddEntity("alb3", "album")
	art1 := g.MustAddEntity("art1", "artist")
	art2 := g.MustAddEntity("art2", "artist")
	art3 := g.MustAddEntity("art3", "artist")
	anthology := g.AddValue("Anthology 2")
	y1996 := g.AddValue("1996")
	beatles := g.AddValue("The Beatles")
	farnham := g.AddValue("John Farnham")
	g.MustAddTriple(alb1, "name_of", anthology)
	g.MustAddTriple(alb2, "name_of", anthology)
	g.MustAddTriple(alb3, "name_of", anthology)
	g.MustAddTriple(alb1, "release_year", y1996)
	g.MustAddTriple(alb2, "release_year", y1996)
	g.MustAddTriple(alb1, "recorded_by", art1)
	g.MustAddTriple(alb2, "recorded_by", art2)
	g.MustAddTriple(alb3, "recorded_by", art3)
	g.MustAddTriple(art1, "name_of", beatles)
	g.MustAddTriple(art2, "name_of", beatles)
	g.MustAddTriple(art3, "name_of", farnham)
	return g
}

// CompanyGraph builds G2 of Fig. 2, following Examples 5 and 7 of the
// paper. com1 and com2 are duplicate "AT&T" companies; com4 and com5 are
// duplicate post-merger "AT&T" companies with parents {com1, com3} and
// {com2, com3} respectively (com3 is "SBC"); com1 and com2 each split
// into com0 ("AT&T") and com3.
//
// Expected chase(G2, Σ2): {(com4, com5)} by Q4 — the wildcard maps to
// com1/com2 without requiring them identified — and {(com1, com2)} by
// Q5 via the shared children com0 (wildcard) and com3 (entity variable,
// reflexive pair).
func CompanyGraph() *graph.Graph {
	g := graph.New()
	com0 := g.MustAddEntity("com0", "company")
	com1 := g.MustAddEntity("com1", "company")
	com2 := g.MustAddEntity("com2", "company")
	com3 := g.MustAddEntity("com3", "company")
	com4 := g.MustAddEntity("com4", "company")
	com5 := g.MustAddEntity("com5", "company")
	att := g.AddValue("AT&T")
	sbc := g.AddValue("SBC")
	y1997 := g.AddValue("1997")
	g.MustAddTriple(com0, "name_of", att)
	g.MustAddTriple(com1, "name_of", att)
	g.MustAddTriple(com2, "name_of", att)
	g.MustAddTriple(com4, "name_of", att)
	g.MustAddTriple(com5, "name_of", att)
	g.MustAddTriple(com3, "name_of", sbc)
	// Merger: AT&T (com1/com2) + SBC (com3) -> new AT&T (com4/com5).
	g.MustAddTriple(com1, "parent_of", com4)
	g.MustAddTriple(com3, "parent_of", com4)
	g.MustAddTriple(com2, "parent_of", com5)
	g.MustAddTriple(com3, "parent_of", com5)
	// Split: AT&T (com1/com2) -> AT&T (com0) + SBC (com3).
	g.MustAddTriple(com1, "parent_of", com0)
	g.MustAddTriple(com1, "parent_of", com3)
	g.MustAddTriple(com2, "parent_of", com0)
	g.MustAddTriple(com2, "parent_of", com3)
	g.MustAddTriple(com0, "founded", y1997)
	return g
}

// AddressGraph builds a small street graph exercising Q6: two duplicate
// UK streets sharing a zip code, one US street pair sharing a zip code
// (which Q6 must NOT identify), and an unrelated UK street.
//
// Expected chase: {(st1, st2)}.
func AddressGraph() *graph.Graph {
	g := graph.New()
	st1 := g.MustAddEntity("st1", "street")
	st2 := g.MustAddEntity("st2", "street")
	st3 := g.MustAddEntity("st3", "street")
	us1 := g.MustAddEntity("us1", "street")
	us2 := g.MustAddEntity("us2", "street")
	uk := g.AddValue("UK")
	us := g.AddValue("US")
	eh8 := g.AddValue("EH8 9AB")
	ny := g.AddValue("10001")
	g.MustAddTriple(st1, "nation_of", uk)
	g.MustAddTriple(st2, "nation_of", uk)
	g.MustAddTriple(st3, "nation_of", uk)
	g.MustAddTriple(us1, "nation_of", us)
	g.MustAddTriple(us2, "nation_of", us)
	g.MustAddTriple(st1, "zip_code", eh8)
	g.MustAddTriple(st2, "zip_code", eh8)
	g.MustAddTriple(st3, "zip_code", g.AddValue("EH1 1AA"))
	g.MustAddTriple(us1, "zip_code", ny)
	g.MustAddTriple(us2, "zip_code", ny)
	return g
}

// Node returns the node for an external entity ID, panicking if absent;
// a convenience for tests.
func Node(g *graph.Graph, id string) graph.NodeID {
	n, ok := g.Entity(id)
	if !ok {
		panic("fixtures: no entity " + id)
	}
	return n
}
