// Package pattern implements graph patterns Q(x) from "Keys for Graphs"
// (Fan et al., PVLDB 2015), Section 2.
//
// A pattern is a set of triples (sQ, pQ, oQ) over pattern nodes. A node is
// one of:
//
//   - the designated entity variable x (exactly one per pattern), which
//     denotes the entity to be identified and carries its type τ;
//   - an entity variable y with a type, which must map to an entity whose
//     node identity is checked (these make a key recursively defined);
//   - a value variable y* which must map to a data value, checked by
//     value equality;
//   - a wildcard ȳ with a type, which must map to an entity of that type
//     whose identity is NOT checked (existence only);
//   - a constant d, a value-binding condition.
//
// Subjects must be entity-like nodes (designated, entity variable or
// wildcard); objects may be any node. Patterns must be connected when
// viewed as undirected graphs.
//
// Patterns are written in a small text DSL, see Parse.
package pattern

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeKind classifies pattern nodes.
type NodeKind uint8

const (
	// Designated is the variable x whose entity the key identifies.
	Designated NodeKind = iota
	// EntityVar is a variable y: maps to an entity, node identity enforced.
	EntityVar
	// ValueVar is a variable y*: maps to a value, value equality enforced.
	ValueVar
	// Wildcard is a variable ȳ: maps to an entity of the right type,
	// identity not enforced.
	Wildcard
	// Const is a constant value d: both matches must bind exactly d.
	Const
)

// String returns a short human-readable kind name.
func (k NodeKind) String() string {
	switch k {
	case Designated:
		return "designated"
	case EntityVar:
		return "entity-var"
	case ValueVar:
		return "value-var"
	case Wildcard:
		return "wildcard"
	case Const:
		return "const"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// IsEntityLike reports whether nodes of this kind bind to entities.
func (k NodeKind) IsEntityLike() bool {
	return k == Designated || k == EntityVar || k == Wildcard
}

// Node is one pattern node.
type Node struct {
	Kind  NodeKind
	Name  string // variable name; empty for anonymous wildcards and constants
	Type  string // entity type for entity-like nodes
	Value string // literal for Const nodes
}

// Triple is one pattern triple; Subj and Obj index Pattern.Nodes.
type Triple struct {
	Subj int
	Pred string
	Obj  int
}

// Pattern is a graph pattern Q(x).
type Pattern struct {
	Nodes   []Node
	Triples []Triple
	X       int // index of the designated node in Nodes
}

// Type returns the type τ of the designated variable: the entity type
// this pattern is a key for.
func (p *Pattern) Type() string { return p.Nodes[p.X].Type }

// Size returns |Q|, the number of triples.
func (p *Pattern) Size() int { return len(p.Triples) }

// IsRecursive reports whether the pattern contains an entity variable
// other than x (§2.2): identifying x then depends on identifying other
// entities, which is what makes entity matching require a fixpoint.
func (p *Pattern) IsRecursive() bool {
	for i, n := range p.Nodes {
		if i != p.X && n.Kind == EntityVar {
			return true
		}
	}
	return false
}

// EntityVarTypes returns the set of types of entity variables other than
// x. These induce the key-dependency edges used to compute dependency
// chains and dep edges in the product graph.
func (p *Pattern) EntityVarTypes() []string {
	seen := make(map[string]bool)
	var out []string
	for i, n := range p.Nodes {
		if i != p.X && n.Kind == EntityVar && !seen[n.Type] {
			seen[n.Type] = true
			out = append(out, n.Type)
		}
	}
	return out
}

// Radius returns d(Q, x): the longest undirected distance from x to any
// node of the pattern (§2.2, Table 1).
func (p *Pattern) Radius() int {
	dist := p.distancesFromX()
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return max
}

// distancesFromX runs an undirected BFS from x. Unreachable nodes keep
// distance -1 (Validate rejects those).
func (p *Pattern) distancesFromX() []int {
	adj := make([][]int, len(p.Nodes))
	for _, t := range p.Triples {
		adj[t.Subj] = append(adj[t.Subj], t.Obj)
		adj[t.Obj] = append(adj[t.Obj], t.Subj)
	}
	dist := make([]int, len(p.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[p.X] = 0
	queue := []int{p.X}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if dist[m] == -1 {
				dist[m] = dist[n] + 1
				queue = append(queue, m)
			}
		}
	}
	return dist
}

// Validate checks the structural well-formedness rules of §2.1:
// exactly one designated node, entity-like subjects, typed entity-like
// nodes, literal-bearing constants, at least one triple, connectedness,
// in-range triple endpoints, and no unused nodes.
func (p *Pattern) Validate() error {
	if len(p.Triples) == 0 {
		return fmt.Errorf("pattern: no triples")
	}
	if p.X < 0 || p.X >= len(p.Nodes) {
		return fmt.Errorf("pattern: designated index %d out of range", p.X)
	}
	designated := 0
	for i, n := range p.Nodes {
		switch n.Kind {
		case Designated:
			designated++
			if i != p.X {
				return fmt.Errorf("pattern: designated node at %d but X=%d", i, p.X)
			}
			if n.Type == "" {
				return fmt.Errorf("pattern: designated variable has no type")
			}
		case EntityVar, Wildcard:
			if n.Type == "" {
				return fmt.Errorf("pattern: %s %q has no type", n.Kind, n.Name)
			}
		case ValueVar:
			if n.Name == "" {
				return fmt.Errorf("pattern: value variable with empty name")
			}
		case Const:
			// The empty string is a legal constant.
		default:
			return fmt.Errorf("pattern: node %d has invalid kind %d", i, n.Kind)
		}
	}
	if designated != 1 {
		return fmt.Errorf("pattern: %d designated variables, want exactly 1", designated)
	}
	used := make([]bool, len(p.Nodes))
	for _, t := range p.Triples {
		if t.Subj < 0 || t.Subj >= len(p.Nodes) || t.Obj < 0 || t.Obj >= len(p.Nodes) {
			return fmt.Errorf("pattern: triple endpoint out of range (%d,%d)", t.Subj, t.Obj)
		}
		if t.Pred == "" {
			return fmt.Errorf("pattern: empty predicate")
		}
		if !p.Nodes[t.Subj].Kind.IsEntityLike() {
			return fmt.Errorf("pattern: triple subject %q is a %s; subjects must be entities",
				p.nodeToken(t.Subj), p.Nodes[t.Subj].Kind)
		}
		used[t.Subj] = true
		used[t.Obj] = true
	}
	for i, u := range used {
		if !u {
			return fmt.Errorf("pattern: node %q appears in no triple", p.nodeToken(i))
		}
	}
	for i, d := range p.distancesFromX() {
		if d == -1 {
			return fmt.Errorf("pattern: node %q is not connected to x", p.nodeToken(i))
		}
	}
	return nil
}

// nodeToken renders node i in the DSL syntax; used in error messages and
// by the printer.
func (p *Pattern) nodeToken(i int) string {
	n := p.Nodes[i]
	switch n.Kind {
	case Designated:
		return "x"
	case EntityVar:
		return "$" + n.Name + ":" + n.Type
	case ValueVar:
		return n.Name + "*"
	case Wildcard:
		return "_" + n.Name + ":" + n.Type
	case Const:
		return strconv.Quote(n.Value)
	default:
		return fmt.Sprintf("?%d", i)
	}
}

// String renders the pattern body in the DSL (one triple per line).
// Anonymous wildcards that occur in more than one triple are given
// generated names so that re-parsing the output reconstructs the same
// node sharing.
func (p *Pattern) String() string {
	occur := make([]int, len(p.Nodes))
	for _, t := range p.Triples {
		occur[t.Subj]++
		occur[t.Obj]++
	}
	tokens := make([]string, len(p.Nodes))
	gen := 0
	for i, n := range p.Nodes {
		if n.Kind == Wildcard && n.Name == "" && occur[i] > 1 {
			gen++
			tokens[i] = fmt.Sprintf("_w%d:%s", gen, n.Type)
			continue
		}
		tokens[i] = p.nodeToken(i)
	}
	var b strings.Builder
	for _, t := range p.Triples {
		fmt.Fprintf(&b, "%s -%s-> %s\n", tokens[t.Subj], t.Pred, tokens[t.Obj])
	}
	return b.String()
}
