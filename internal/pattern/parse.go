package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Named is a pattern with a name, as written in the DSL. The keys
// package wraps Named patterns into key sets.
type Named struct {
	Name string
	*Pattern
}

// The DSL, by example:
//
//	# Q1: an album is identified by its name and its recording artist.
//	key Q1 for album {
//	    x -name_of-> name*
//	    x -recorded_by-> $y:artist
//	}
//
//	key Q4 for company {
//	    x -name_of-> name*
//	    _:company -name_of-> name*
//	    _:company -parent_of-> x
//	    $c:company -parent_of-> x
//	}
//
//	key Q6 for street {
//	    x -zip_code-> code*
//	    x -nation_of-> "UK"
//	}
//
// Node tokens:
//
//	x            the designated variable (type comes from the header)
//	$y:type      entity variable y of the given type (recursive)
//	name*        value variable
//	_:type       anonymous wildcard (each occurrence is a distinct node)
//	_w:type      named wildcard (occurrences share one node)
//	"literal"    constant value (Go string syntax)
//
// Edges are written  subject -predicate-> object ; the subject is always
// on the left. Comments start with '#'. Several keys may appear in one
// input.

// Parse reads every key in the DSL input. Each parsed pattern is
// validated (see Pattern.Validate).
func Parse(r io.Reader) ([]Named, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Named
	var cur *keyBuilder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case cur == nil:
			kb, err := parseHeader(line)
			if err != nil {
				return nil, fmt.Errorf("pattern: line %d: %v", lineNo, err)
			}
			cur = kb
		case line == "}":
			named, err := cur.finish()
			if err != nil {
				return nil, fmt.Errorf("pattern: key %q (ending line %d): %v", cur.name, lineNo, err)
			}
			out = append(out, named)
			cur = nil
		default:
			if err := cur.addEdgeLine(line); err != nil {
				return nil, fmt.Errorf("pattern: line %d: %v", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pattern: read: %v", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("pattern: key %q: missing closing '}'", cur.name)
	}
	return out, nil
}

// ParseString is Parse over a string.
func ParseString(s string) ([]Named, error) { return Parse(strings.NewReader(s)) }

// MustParseOne parses exactly one key and panics on any error; it is a
// convenience for tests and examples.
func MustParseOne(s string) Named {
	ks, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	if len(ks) != 1 {
		panic(fmt.Sprintf("pattern: MustParseOne: got %d keys", len(ks)))
	}
	return ks[0]
}

type keyBuilder struct {
	name    string
	typ     string
	nodes   []Node
	triples []Triple
	byToken map[string]int // canonical token -> node index
	anon    int            // counter for anonymous wildcards
}

// parseHeader parses `key NAME for TYPE {`.
func parseHeader(line string) (*keyBuilder, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 || fields[0] != "key" || fields[2] != "for" || fields[4] != "{" {
		return nil, fmt.Errorf("want `key NAME for TYPE {`, got %q", line)
	}
	kb := &keyBuilder{name: fields[1], typ: fields[3], byToken: make(map[string]int)}
	kb.nodes = append(kb.nodes, Node{Kind: Designated, Name: "x", Type: kb.typ})
	kb.byToken["x"] = 0
	return kb, nil
}

// addEdgeLine parses `subj -pred-> obj`.
func (kb *keyBuilder) addEdgeLine(line string) error {
	s := line
	subj, rest, err := kb.scanNode(s)
	if err != nil {
		return fmt.Errorf("subject: %v", err)
	}
	rest = strings.TrimLeft(rest, " \t")
	if !strings.HasPrefix(rest, "-") {
		return fmt.Errorf("want `-pred->` after subject in %q", line)
	}
	// Search after the leading '-': for input like `x ->` the arrow
	// found at index 0 would otherwise make the predicate slice invert.
	arrowEnd := strings.Index(rest[1:], "->")
	if arrowEnd < 0 {
		return fmt.Errorf("unterminated predicate arrow in %q", line)
	}
	arrowEnd++
	pred := rest[1:arrowEnd]
	if pred == "" {
		return fmt.Errorf("empty predicate in %q", line)
	}
	obj, tail, err := kb.scanNode(strings.TrimLeft(rest[arrowEnd+2:], " \t"))
	if err != nil {
		return fmt.Errorf("object: %v", err)
	}
	if tail = strings.TrimSpace(tail); tail != "" {
		return fmt.Errorf("trailing input %q", tail)
	}
	kb.triples = append(kb.triples, Triple{Subj: subj, Pred: pred, Obj: obj})
	return nil
}

// scanNode consumes one node token from the front of s and returns its
// node index plus the remaining input.
func (kb *keyBuilder) scanNode(s string) (int, string, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return 0, "", fmt.Errorf("missing node token")
	}
	if s[0] == '"' {
		quoted, err := strconv.QuotedPrefix(s)
		if err != nil {
			return 0, "", fmt.Errorf("bad constant: %v", err)
		}
		lit, err := strconv.Unquote(quoted)
		if err != nil {
			return 0, "", fmt.Errorf("bad constant: %v", err)
		}
		return kb.node("\x00const:"+lit, Node{Kind: Const, Value: lit}), s[len(quoted):], nil
	}
	end := strings.IndexAny(s, " \t")
	tok := s
	rest := ""
	if end >= 0 {
		tok, rest = s[:end], s[end:]
	}
	idx, err := kb.nodeForToken(tok)
	return idx, rest, err
}

func (kb *keyBuilder) nodeForToken(tok string) (int, error) {
	switch {
	case tok == "x":
		return 0, nil
	case strings.HasPrefix(tok, "$"):
		name, typ, ok := strings.Cut(tok[1:], ":")
		if !ok || name == "" || typ == "" {
			return 0, fmt.Errorf("entity variable %q is not of the form $name:type", tok)
		}
		return kb.node(tok, Node{Kind: EntityVar, Name: name, Type: typ}), nil
	case strings.HasSuffix(tok, "*"):
		name := tok[:len(tok)-1]
		if name == "" {
			return 0, fmt.Errorf("value variable %q has no name", tok)
		}
		return kb.node(tok, Node{Kind: ValueVar, Name: name}), nil
	case strings.HasPrefix(tok, "_"):
		name, typ, ok := strings.Cut(tok[1:], ":")
		if !ok || typ == "" {
			return 0, fmt.Errorf("wildcard %q is not of the form _:type or _name:type", tok)
		}
		if name == "" { // anonymous: every occurrence is a fresh node
			kb.anon++
			key := fmt.Sprintf("\x00anon%d", kb.anon)
			return kb.node(key, Node{Kind: Wildcard, Type: typ}), nil
		}
		return kb.node(tok, Node{Kind: Wildcard, Name: name, Type: typ}), nil
	default:
		return 0, fmt.Errorf("unrecognized node token %q (want x, $var:type, var*, _:type or a quoted constant)", tok)
	}
}

// node returns the index for the canonical token, adding the node on
// first sight and checking that repeats agree on kind and type.
func (kb *keyBuilder) node(canonical string, n Node) int {
	if i, ok := kb.byToken[canonical]; ok {
		return i
	}
	kb.nodes = append(kb.nodes, n)
	kb.byToken[canonical] = len(kb.nodes) - 1
	return len(kb.nodes) - 1
}

func (kb *keyBuilder) finish() (Named, error) {
	p := &Pattern{Nodes: kb.nodes, Triples: kb.triples, X: 0}
	if err := p.Validate(); err != nil {
		return Named{}, err
	}
	return Named{Name: kb.name, Pattern: p}, nil
}

// Format renders a named key back into the DSL; Parse(Format(k)) is
// equivalent to k up to anonymous wildcard numbering.
func Format(k Named) string {
	var b strings.Builder
	fmt.Fprintf(&b, "key %s for %s {\n", k.Name, k.Type())
	for _, line := range strings.Split(strings.TrimRight(k.Pattern.String(), "\n"), "\n") {
		fmt.Fprintf(&b, "    %s\n", line)
	}
	b.WriteString("}\n")
	return b.String()
}
