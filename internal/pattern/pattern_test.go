package pattern

import (
	"strings"
	"testing"
)

// PaperKeys is the DSL source for the six keys Q1–Q6 of Fig. 1.
const PaperKeys = `
# Q1: an album is identified by its name and its primary recording artist.
key Q1 for album {
    x -name_of-> name*
    x -recorded_by-> $y:artist
}

# Q2: an album is identified by its name and year of initial release.
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}

# Q3: an artist is identified by name and one recorded album.
key Q3 for artist {
    x -name_of-> name*
    $a:album -recorded_by-> x
}

# Q4: company merged from a same-named parent: name + the other parent.
key Q4 for company {
    x -name_of-> name*
    _w:company -name_of-> name*
    _w:company -parent_of-> x
    $c:company -parent_of-> x
}

# Q5: company split from a same-named parent: name + another child.
key Q5 for company {
    x -name_of-> name*
    _w:company -name_of-> name*
    x -parent_of-> _w:company
    x -parent_of-> $c:company
}

# Q6: a street in the UK is identified by its zip code.
key Q6 for street {
    x -zip_code-> code*
    x -nation_of-> "UK"
}
`

func parsePaperKeys(t *testing.T) map[string]Named {
	t.Helper()
	ks, err := ParseString(PaperKeys)
	if err != nil {
		t.Fatalf("parse paper keys: %v", err)
	}
	m := make(map[string]Named, len(ks))
	for _, k := range ks {
		m[k.Name] = k
	}
	return m
}

func TestParsePaperKeys(t *testing.T) {
	m := parsePaperKeys(t)
	if len(m) != 6 {
		t.Fatalf("parsed %d keys, want 6", len(m))
	}
	cases := []struct {
		name      string
		typ       string
		triples   int
		recursive bool
		radius    int
	}{
		{"Q1", "album", 2, true, 1},
		{"Q2", "album", 2, false, 1},
		{"Q3", "artist", 2, true, 1},
		{"Q4", "company", 4, true, 1},
		{"Q5", "company", 4, true, 1},
		{"Q6", "street", 2, false, 1},
	}
	for _, c := range cases {
		k, ok := m[c.name]
		if !ok {
			t.Errorf("key %s missing", c.name)
			continue
		}
		if k.Type() != c.typ {
			t.Errorf("%s: type = %q, want %q", c.name, k.Type(), c.typ)
		}
		if k.Size() != c.triples {
			t.Errorf("%s: |Q| = %d, want %d", c.name, k.Size(), c.triples)
		}
		if k.IsRecursive() != c.recursive {
			t.Errorf("%s: recursive = %v, want %v", c.name, k.IsRecursive(), c.recursive)
		}
		if k.Radius() != c.radius {
			t.Errorf("%s: radius = %d, want %d", c.name, k.Radius(), c.radius)
		}
	}
}

func TestEntityVarTypes(t *testing.T) {
	m := parsePaperKeys(t)
	if got := m["Q1"].EntityVarTypes(); len(got) != 1 || got[0] != "artist" {
		t.Errorf("Q1 entity var types = %v", got)
	}
	if got := m["Q2"].EntityVarTypes(); len(got) != 0 {
		t.Errorf("Q2 entity var types = %v, want none", got)
	}
	if got := m["Q4"].EntityVarTypes(); len(got) != 1 || got[0] != "company" {
		t.Errorf("Q4 entity var types = %v", got)
	}
}

func TestQ4Structure(t *testing.T) {
	// Q4 must have 5 nodes: x, name*, shared wildcard, entity var c.
	k := parsePaperKeys(t)["Q4"]
	if len(k.Nodes) != 4 {
		t.Fatalf("Q4 has %d nodes, want 4 (x, name*, _w, $c): %+v", len(k.Nodes), k.Nodes)
	}
	kinds := map[NodeKind]int{}
	for _, n := range k.Nodes {
		kinds[n.Kind]++
	}
	if kinds[Designated] != 1 || kinds[ValueVar] != 1 || kinds[Wildcard] != 1 || kinds[EntityVar] != 1 {
		t.Errorf("Q4 node kinds = %v", kinds)
	}
}

func TestAnonymousWildcardsAreDistinct(t *testing.T) {
	k := MustParseOne(`
key K for t {
    x -p-> _:u
    x -p-> _:u
}`)
	// Two anonymous wildcards -> two distinct nodes besides x.
	if len(k.Nodes) != 3 {
		t.Fatalf("got %d nodes, want 3 (x + two distinct wildcards)", len(k.Nodes))
	}
}

func TestNamedWildcardShared(t *testing.T) {
	k := MustParseOne(`
key K for t {
    x -p-> _w:u
    _w:u -q-> v*
}`)
	if len(k.Nodes) != 3 {
		t.Fatalf("got %d nodes, want 3 (x, shared wildcard, value var)", len(k.Nodes))
	}
}

func TestConstantsShareNodes(t *testing.T) {
	k := MustParseOne(`
key K for t {
    x -p-> "UK"
    x -q-> "UK"
    x -r-> "US"
}`)
	if len(k.Nodes) != 3 {
		t.Fatalf("got %d nodes, want 3 (x, \"UK\", \"US\")", len(k.Nodes))
	}
}

func TestConstantsWithSpacesAndEscapes(t *testing.T) {
	k := MustParseOne(`
key K for t {
    x -p-> "The Beatles"
    x -q-> "line\nbreak"
}`)
	var vals []string
	for _, n := range k.Nodes {
		if n.Kind == Const {
			vals = append(vals, n.Value)
		}
	}
	if len(vals) != 2 || vals[0] != "The Beatles" || vals[1] != "line\nbreak" {
		t.Errorf("constants = %q", vals)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	ks, err := ParseString(PaperKeys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks {
		text := Format(k)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", k.Name, err, text)
		}
		if len(back) != 1 {
			t.Fatalf("%s: reparse produced %d keys", k.Name, len(back))
		}
		b := back[0]
		if b.Name != k.Name || b.Type() != k.Type() || b.Size() != k.Size() ||
			len(b.Nodes) != len(k.Nodes) || b.IsRecursive() != k.IsRecursive() ||
			b.Radius() != k.Radius() {
			t.Errorf("%s: round trip changed structure:\noriginal:\n%sreparsed:\n%s",
				k.Name, Format(k), Format(b))
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"badHeader", "key Q1 album {\n}\n"},
		{"missingBrace", "key Q1 for album {\n x -p-> v*\n"},
		{"noTriples", "key Q1 for album {\n}\n"},
		{"badSubjToken", "key Q for t {\n ?? -p-> v*\n}\n"},
		{"valueVarSubject", "key Q for t {\n v* -p-> x\n}\n"},
		{"constSubject", "key Q for t {\n \"c\" -p-> x\n}\n"},
		{"noArrow", "key Q for t {\n x p v*\n}\n"},
		{"emptyPred", "key Q for t {\n x --> v*\n}\n"},
		{"trailing", "key Q for t {\n x -p-> v* junk\n}\n"},
		{"disconnected", "key Q for t {\n x -p-> v*\n $a:t -q-> w*\n}\n"},
		{"badEntityVar", "key Q for t {\n x -p-> $y\n}\n"},
		{"badWildcard", "key Q for t {\n x -p-> _\n}\n"},
		{"bareStar", "key Q for t {\n x -p-> *\n}\n"},
		{"badConst", "key Q for t {\n x -p-> \"oops\n}\n"},
		{"unclosedConst", "key Q for t {\n x -p-> \"a\\\n}\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseString(c.in); err == nil {
				t.Errorf("ParseString succeeded, want error:\n%s", c.in)
			}
		})
	}
}

func TestValidateDirect(t *testing.T) {
	// Construct invalid patterns programmatically to hit Validate paths
	// the parser cannot produce.
	valid := func() *Pattern {
		return &Pattern{
			Nodes: []Node{
				{Kind: Designated, Name: "x", Type: "t"},
				{Kind: ValueVar, Name: "v"},
			},
			Triples: []Triple{{Subj: 0, Pred: "p", Obj: 1}},
			X:       0,
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid pattern rejected: %v", err)
	}
	p := valid()
	p.X = 5
	if err := p.Validate(); err == nil {
		t.Error("out-of-range X accepted")
	}
	p = valid()
	p.Nodes[0].Type = ""
	if err := p.Validate(); err == nil {
		t.Error("untyped designated accepted")
	}
	p = valid()
	p.Nodes = append(p.Nodes, Node{Kind: Designated, Name: "x2", Type: "t"})
	p.Triples = append(p.Triples, Triple{Subj: 2, Pred: "p", Obj: 1})
	if err := p.Validate(); err == nil {
		t.Error("two designated nodes accepted")
	}
	p = valid()
	p.Triples[0].Obj = 9
	if err := p.Validate(); err == nil {
		t.Error("out-of-range triple endpoint accepted")
	}
	p = valid()
	p.Triples[0].Pred = ""
	if err := p.Validate(); err == nil {
		t.Error("empty predicate accepted")
	}
	p = valid()
	p.Nodes = append(p.Nodes, Node{Kind: ValueVar, Name: "unused"})
	if err := p.Validate(); err == nil {
		t.Error("unused node accepted")
	}
	p = valid()
	p.Nodes[1].Name = ""
	if err := p.Validate(); err == nil {
		t.Error("unnamed value var accepted")
	}
	p = valid()
	p.Nodes[1].Kind = NodeKind(99)
	if err := p.Validate(); err == nil {
		t.Error("invalid kind accepted")
	}
	p = valid()
	p.Triples = nil
	if err := p.Validate(); err == nil {
		t.Error("empty pattern accepted")
	}
}

func TestRadiusLongerChain(t *testing.T) {
	k := MustParseOne(`
key K for a {
    x -p-> $b:b
    $b:b -p-> $c:c
    $c:c -p-> v*
}`)
	if got := k.Radius(); got != 3 {
		t.Errorf("radius = %d, want 3", got)
	}
}

func TestNodeKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{
		Designated: "designated", EntityVar: "entity-var", ValueVar: "value-var",
		Wildcard: "wildcard", Const: "const", NodeKind(42): "NodeKind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", k, got, want)
		}
	}
}

func TestMultiKeyParseKeepsOrder(t *testing.T) {
	ks, err := ParseString(PaperKeys)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6"}
	for i, k := range ks {
		if k.Name != want[i] {
			t.Errorf("key %d = %s, want %s", i, k.Name, want[i])
		}
	}
	if !strings.Contains(Format(ks[5]), `"UK"`) {
		t.Error("Q6 constant lost in formatting")
	}
}
