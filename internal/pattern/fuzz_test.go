package pattern

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the key DSL parser. The parser
// ingests untrusted input (key files on the command line), so it must
// never panic — it either returns keys or an error. For inputs that do
// parse, the printed form must parse back to the same number of keys
// (Format/Parse round trip), since Format output is what emdiscover
// and the generators feed back into Parse.
func FuzzParse(f *testing.F) {
	f.Add(`key Q1 for album {
    x -name_of-> name*
    x -recorded_by-> $y:artist
}`)
	f.Add(`key Q4 for company {
    x -name_of-> name*
    _:company -name_of-> name*
    _:company -parent_of-> x
    $c:company -parent_of-> x
}`)
	f.Add(`key Q6 for street {
    x -zip_code-> code*
    x -nation_of-> "UK"
}`)
	f.Add("key A for t {\n    x -p-> _w:t2\n    _w:t2 -q-> v*\n}")
	f.Add("# comment only\n")
	f.Add("key broken for t {")
	f.Add("key a for t {\n}\n")
	f.Add("key a for t {\n    x -p-> \"unterminated\n}")
	f.Add("key a for t {\n    x p x\n}")
	f.Add("key \x00 for \xff {\n    x -p-> y*\n}")
	// Regression: the arrow at offset 0 after the subject used to make
	// the predicate slice invert and panic.
	f.Add("key 0 for 0 {\nx ->")
	f.Add(strings.Repeat("key a for t {\n    x -p-> v*\n}\n", 3))

	f.Fuzz(func(t *testing.T, src string) {
		keys, err := ParseString(src)
		if err != nil {
			return
		}
		for _, k := range keys {
			// Parsed keys are validated; a valid pattern must format and
			// re-parse.
			printed := Format(k)
			again, err := ParseString(printed)
			if err != nil {
				t.Fatalf("parsed key %q does not re-parse from its own Format output:\n%s\nerror: %v", k.Name, printed, err)
			}
			if len(again) != 1 {
				t.Fatalf("Format output of key %q re-parsed into %d keys", k.Name, len(again))
			}
		}
	})
}
