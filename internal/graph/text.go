package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text format is one triple per line:
//
//	subject <TAB> predicate <TAB> object
//
// where an entity token is written id:Type (the last colon separates the
// external ID from the type name) and a value token is a Go-quoted string
// literal. Blank lines and lines starting with '#' are ignored.
//
// Example:
//
//	alb1:album	name_of	"Anthology 2"
//	alb1:album	recorded_by	art1:artist

// ParseText reads a graph in the text format from r.
func ParseText(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 3 tab-separated fields, got %d", lineNo, len(parts))
		}
		s, err := parseEntityToken(g, parts[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: subject: %v", lineNo, err)
		}
		pred := strings.TrimSpace(parts[1])
		if pred == "" {
			return nil, fmt.Errorf("graph: line %d: empty predicate", lineNo)
		}
		var o NodeID
		obj := strings.TrimSpace(parts[2])
		if strings.HasPrefix(obj, `"`) {
			lit, err := strconv.Unquote(obj)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: object literal: %v", lineNo, err)
			}
			o = g.AddValue(lit)
		} else {
			o, err = parseEntityToken(g, obj)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: object: %v", lineNo, err)
			}
		}
		if err := g.AddTriple(s, pred, o); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %v", err)
	}
	return g, nil
}

func parseEntityToken(g *Graph, tok string) (NodeID, error) {
	tok = strings.TrimSpace(tok)
	i := strings.LastIndexByte(tok, ':')
	if i <= 0 || i == len(tok)-1 {
		return NoNode, fmt.Errorf("entity token %q is not of the form id:Type", tok)
	}
	return g.AddEntity(tok[:i], tok[i+1:])
}

// WriteText writes g in the text format. Triples are emitted sorted by
// subject label, predicate name and object so that the output is
// deterministic and diffable.
func (g *Graph) WriteText(w io.Writer) error {
	type row struct{ s, p, o string }
	rows := make([]row, 0, g.NumTriples())
	g.EachTriple(func(s NodeID, p PredID, o NodeID) {
		rows = append(rows, row{g.entityToken(s), g.PredName(p), g.objectToken(o)})
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].s != rows[j].s {
			return rows[i].s < rows[j].s
		}
		if rows[i].p != rows[j].p {
			return rows[i].p < rows[j].p
		}
		return rows[i].o < rows[j].o
	})
	bw := bufio.NewWriter(w)
	for _, r := range rows {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\n", r.s, r.p, r.o); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (g *Graph) entityToken(n NodeID) string {
	return g.Label(n) + ":" + g.TypeName(g.TypeOf(n))
}

func (g *Graph) objectToken(n NodeID) string {
	if g.IsValue(n) {
		return strconv.Quote(g.Label(n))
	}
	return g.entityToken(n)
}
