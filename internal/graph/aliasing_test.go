package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRemoveTripleDoesNotAliasEdgeSlices is the regression test for the
// removeEdge aliasing bug: compacting with append(edges[:i],
// edges[i+1:]...) mutated the backing array of the graph-owned slices
// previously returned by Out/In, so a caller iterating edges across a
// RemoveTriple saw shifted and duplicated edges. Removal must leave
// previously handed-out slices untouched.
func TestRemoveTripleDoesNotAliasEdgeSlices(t *testing.T) {
	g := New()
	s := g.MustAddEntity("s", "T")
	a := g.MustAddEntity("a", "T")
	b := g.MustAddEntity("b", "T")
	c := g.MustAddEntity("c", "T")
	g.MustAddTriple(s, "p", a)
	g.MustAddTriple(s, "p", b)
	g.MustAddTriple(s, "p", c)
	g.MustAddTriple(a, "q", s)
	g.MustAddTriple(b, "q", s)
	g.MustAddTriple(c, "q", s)

	out := g.Out(s) // caller-held view, taken before the removal
	in := g.In(s)
	wantOut := append([]Edge(nil), out...)
	wantIn := append([]Edge(nil), in...)

	// Remove the first edge: in-place compaction would shift every
	// element of the held views left and duplicate the tail.
	if !g.RemoveTriple(s, "p", a) {
		t.Fatal("RemoveTriple (s, p, a) reported absent")
	}
	if !g.RemoveTriple(a, "q", s) {
		t.Fatal("RemoveTriple (a, q, s) reported absent")
	}

	for i := range wantOut {
		if out[i] != wantOut[i] {
			t.Errorf("held Out slice mutated at %d: got %+v, want %+v", i, out[i], wantOut[i])
		}
	}
	for i := range wantIn {
		if in[i] != wantIn[i] {
			t.Errorf("held In slice mutated at %d: got %+v, want %+v", i, in[i], wantIn[i])
		}
	}

	// The graph's own view reflects the removal, order preserved.
	cur := g.Out(s)
	if len(cur) != 2 || cur[0].To != b || cur[1].To != c {
		t.Errorf("Out after removal = %+v, want edges to b then c", cur)
	}
}

// TestRemoveTripleIterationSafe pins the caller-visible symptom: code
// iterating a pre-removal edge slice while removing triples must visit
// exactly the pre-removal edges, each once.
func TestRemoveTripleIterationSafe(t *testing.T) {
	g := New()
	s := g.MustAddEntity("s", "T")
	var objs []NodeID
	for i := 0; i < 8; i++ {
		o := g.MustAddEntity(fmt.Sprintf("o%d", i), "T")
		objs = append(objs, o)
		g.MustAddTriple(s, "p", o)
	}
	seen := make(map[NodeID]int)
	for _, e := range g.Out(s) {
		seen[e.To]++
		g.RemoveTripleID(s, e.Pred, e.To)
	}
	for _, o := range objs {
		if seen[o] != 1 {
			t.Errorf("object %d visited %d times, want 1", o, seen[o])
		}
	}
	if g.NumTriples() != 0 {
		t.Errorf("NumTriples = %d after removing every edge, want 0", g.NumTriples())
	}
}

// TestValueSubjectsNotAliased mirrors the edge-slice regression for the
// value index's posting lists.
func TestValueSubjectsNotAliased(t *testing.T) {
	g := New()
	v := g.AddValue("x")
	var subs []NodeID
	for i := 0; i < 4; i++ {
		s := g.MustAddEntity(fmt.Sprintf("e%d", i), "T")
		subs = append(subs, s)
		g.MustAddTriple(s, "name", v)
	}
	p, ok := g.PredByName("name")
	if !ok {
		t.Fatal("predicate name not interned")
	}
	held := g.ValueSubjects(p, v)
	want := append([]NodeID(nil), held...)
	g.RemoveTriple(subs[0], "name", v)
	for i := range want {
		if held[i] != want[i] {
			t.Errorf("held posting list mutated at %d: got %d, want %d", i, held[i], want[i])
		}
	}
	if got := g.ValueSubjects(p, v); len(got) != 3 || got[0] != subs[1] {
		t.Errorf("posting list after removal = %v, want %v", got, subs[1:])
	}
}

// TestValueIndexMaintained checks the index invariant — for every
// (p, v) with v a value node, ValueSubjects(p, v) is exactly the set
// {s : (s, p, v) ∈ G} — under a random add/remove workload, including
// through ApplyDelta.
func TestValueIndexMaintained(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New()
	const nEnt, nVal, nPred = 12, 6, 3
	var ents []NodeID
	for i := 0; i < nEnt; i++ {
		ents = append(ents, g.MustAddEntity(fmt.Sprintf("e%d", i), "T"))
	}
	var vals []string
	for i := 0; i < nVal; i++ {
		vals = append(vals, fmt.Sprintf("v%d", i))
	}
	preds := []string{"p0", "p1", "p2"}

	verify := func() {
		t.Helper()
		// Recompute the index from the triples and compare both ways.
		want := make(map[string]map[NodeID]bool)
		g.EachTriple(func(s NodeID, p PredID, o NodeID) {
			if !g.IsValue(o) {
				return
			}
			k := fmt.Sprintf("%d/%d", p, o)
			if want[k] == nil {
				want[k] = make(map[NodeID]bool)
			}
			want[k][s] = true
		})
		got := 0
		g.EachValuePosting(func(p PredID, v NodeID, subjects []NodeID) {
			got++
			k := fmt.Sprintf("%d/%d", p, v)
			if len(subjects) != len(want[k]) {
				t.Fatalf("posting (%d,%d): %d subjects, want %d", p, v, len(subjects), len(want[k]))
			}
			for _, s := range subjects {
				if !want[k][s] {
					t.Fatalf("posting (%d,%d) contains %d, not in graph", p, v, s)
				}
			}
		})
		if got != len(want) {
			t.Fatalf("index has %d postings, graph has %d distinct (p,v)", got, len(want))
		}
		if got != g.NumPostings() {
			t.Fatalf("NumPostings = %d, iterated %d", g.NumPostings(), got)
		}
	}

	for step := 0; step < 300; step++ {
		s := ents[rng.Intn(nEnt)]
		pred := preds[rng.Intn(nPred)]
		lit := vals[rng.Intn(nVal)]
		if rng.Intn(2) == 0 {
			g.MustAddTriple(s, pred, g.AddValue(lit))
		} else {
			g.RemoveTriple(s, pred, g.AddValue(lit))
		}
		if step%37 == 0 {
			verify()
		}
	}
	// Exercise the delta path too.
	d := new(Delta).
		AddValueTriple("e0", "p0", "fresh").
		AddValueTriple("e1", "p0", "fresh").
		RemoveValueTriple("e0", "p0", "fresh")
	if _, err := g.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	verify()
	v, _ := g.Value("fresh")
	p, _ := g.PredByName("p0")
	if got := g.ValueSubjects(p, v); len(got) != 1 || g.Label(got[0]) != "e1" {
		t.Errorf("ValueSubjects(p0, fresh) = %v, want [e1]", got)
	}
}
