package graph

import "testing"

// removalFixture builds: a --knows--> b, b --knows--> c, a/b/c with a
// name attribute, and a self-loop on b.
func removalFixture(t *testing.T) (*Graph, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New()
	a := g.MustAddEntity("a", "person")
	b := g.MustAddEntity("b", "person")
	c := g.MustAddEntity("c", "person")
	for _, id := range []NodeID{a, b, c} {
		g.MustAddTriple(id, "name", g.AddValue("n"+g.Label(id)))
	}
	g.MustAddTriple(a, "knows", b)
	g.MustAddTriple(b, "knows", c)
	g.MustAddTriple(b, "self", b)
	return g, a, b, c
}

func TestRemoveEntityExpandsToIncidentTriples(t *testing.T) {
	g, a, b, c := removalFixture(t)
	before := g.NumTriples() // 3 names + 2 knows + 1 self = 6
	res, err := g.ApplyDelta((&Delta{}).RemoveEntity("b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RemovedEntities) != 1 || res.RemovedEntities[0] != b {
		t.Fatalf("RemovedEntities = %v, want [%d]", res.RemovedEntities, b)
	}
	// b's incident triples: name, out-knows to c, in-knows from a, self.
	if len(res.RemovedTriples) != 4 {
		t.Fatalf("RemovedTriples = %v, want 4 triples", res.RemovedTriples)
	}
	if got := g.NumTriples(); got != before-4 {
		t.Fatalf("NumTriples = %d, want %d", got, before-4)
	}
	if g.IsEntity(b) || g.IsValue(b) {
		t.Fatal("tombstoned node still reports a kind")
	}
	if g.Label(b) != "b" {
		t.Fatalf("tombstone lost its label: %q", g.Label(b))
	}
	if _, ok := g.Entity("b"); ok {
		t.Fatal("removed entity still resolvable by ID")
	}
	if g.Degree(b) != 0 {
		t.Fatalf("tombstone has degree %d", g.Degree(b))
	}
	tid, _ := g.TypeByName("person")
	if got := len(g.EntitiesOfType(tid)); got != 2 {
		t.Fatalf("EntitiesOfType = %d entities, want 2", got)
	}
	if g.NumEntities() != 2 {
		t.Fatalf("NumEntities = %d, want 2", g.NumEntities())
	}
	// a and c survive with their remaining edges.
	if len(g.Out(a)) != 1 || len(g.In(c)) != 0 {
		t.Fatalf("survivor adjacency wrong: out(a)=%v in(c)=%v", g.Out(a), g.In(c))
	}
	// Value index no longer lists b under its name value.
	pid, _ := g.PredByName("name")
	if v, ok := g.Value("nb"); !ok {
		t.Fatal("value node for nb vanished")
	} else if got := g.ValueSubjects(pid, v); len(got) != 0 {
		t.Fatalf("posting list for removed entity's value = %v, want empty", got)
	}
}

func TestRemoveEntityIdempotentAndUnknown(t *testing.T) {
	g, _, _, _ := removalFixture(t)
	res, err := g.ApplyDelta((&Delta{}).RemoveEntity("nobody"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() {
		t.Fatalf("removing unknown entity reported changes: %+v", res)
	}
	if _, err := g.ApplyDelta((&Delta{}).RemoveEntity("b").RemoveEntity("b")); err != nil {
		t.Fatalf("double removal errored: %v", err)
	}
}

func TestRemoveEntityThenReAdd(t *testing.T) {
	g, _, b, _ := removalFixture(t)
	d := (&Delta{}).RemoveEntity("b")
	d.AddEntity("b", "robot") // new type is fine: it is a fresh node
	d.AddValueTriple("b", "name", "nb2")
	res, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	nb, ok := g.Entity("b")
	if !ok {
		t.Fatal("re-added entity not resolvable")
	}
	if nb == b {
		t.Fatal("tombstoned NodeID was reused")
	}
	if g.TypeName(g.TypeOf(nb)) != "robot" {
		t.Fatalf("re-added entity has type %q", g.TypeName(g.TypeOf(nb)))
	}
	if len(res.AddedEntities) != 1 || len(res.RemovedEntities) != 1 {
		t.Fatalf("delta result %+v", res)
	}
}

func TestRemoveEntityValidation(t *testing.T) {
	g, _, _, _ := removalFixture(t)
	// Referencing an entity after its removal in the same delta fails,
	// and the graph stays unchanged (atomicity).
	before := g.NumTriples()
	d := (&Delta{}).RemoveEntity("b").AddValueTriple("b", "name", "zz")
	if _, err := g.ApplyDelta(d); err == nil {
		t.Fatal("want validation error for triple on removed entity")
	}
	if g.NumTriples() != before {
		t.Fatal("failed delta mutated the graph")
	}
	if _, ok := g.Entity("b"); !ok {
		t.Fatal("failed delta removed the entity")
	}
	// Remove, re-add, then reference: valid.
	d2 := (&Delta{}).RemoveEntity("b").AddEntity("b", "person").AddValueTriple("b", "name", "zz")
	if _, err := g.ApplyDelta(d2); err != nil {
		t.Fatalf("remove+re-add+use: %v", err)
	}
}

func TestAddTripleOnTombstoneFails(t *testing.T) {
	g, a, b, _ := removalFixture(t)
	if _, err := g.ApplyDelta((&Delta{}).RemoveEntity("b")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddTriple(b, "knows", a); err == nil {
		t.Fatal("AddTriple with tombstoned subject succeeded")
	}
	if err := g.AddTriple(a, "knows", b); err != nil {
		// Dangling references to a tombstone as object are permitted at
		// the graph layer (the node exists); the Delta layer prevents
		// them by ID since the directory entry is gone.
		t.Fatalf("AddTriple to tombstoned object: %v", err)
	}
}
