package graph

import (
	"graphkeys/internal/engine"
	"graphkeys/internal/obs"
)

// Obs is the write path's instrument bundle. Every handle may be nil
// (they no-op); a graph with no observer set pays one atomic load per
// delta and nothing else. Instrumentation never participates in
// control flow — see the obs package comment.
type Obs struct {
	// AdmissionWait is nanoseconds a delta spent blocked in admission —
	// acquiring the plan mutex plus waiting for in-flight executions
	// overlapping its shard footprint to retire.
	AdmissionWait *obs.Histogram
	// PlanHold is nanoseconds the plan mutex was held per delta, from
	// admission to the release that starts the durability wait or the
	// execution.
	PlanHold *obs.Histogram
	// ShardLockWait is nanoseconds an executor spent acquiring one
	// shard's write lock.
	ShardLockWait *obs.Histogram
	// ShardMutations counts micro-ops applied, labeled by shard index.
	ShardMutations *obs.CounterVec
	// PostingLen observes the length of a value-index posting list
	// right after an insertion.
	PostingLen *obs.Histogram
	// Deltas counts deltas that mutated the graph; NoopDeltas counts
	// deltas whose ops coalesced away.
	Deltas     *obs.Counter
	NoopDeltas *obs.Counter

	// Phase wall-time split of the optimistic write path (see plan.go):
	// PlanNanos is one optimistic planning pass (validate + coalesce +
	// lower-prep, no lock held); LowerNanos is the off-mutex lowering of
	// a group-commit delta; CommitNanos is the durability (group fsync)
	// wait. Admission + revalidation time is AdmissionWait + PlanHold.
	PlanNanos   *obs.Histogram
	LowerNanos  *obs.Histogram
	CommitNanos *obs.Histogram
	// PlanRetries counts optimistic plans discarded by a stale footprint
	// or a failed revalidation; PlanFallbacks counts deltas that
	// exhausted their replans (or needed a rejection confirmed) and took
	// the pessimistic path; OptimisticPlans counts plans that admitted
	// by revalidation. PendingNameWaits counts admissions that blocked
	// on another delta's pending name reservation.
	PlanRetries      *obs.Counter
	PlanFallbacks    *obs.Counter
	OptimisticPlans  *obs.Counter
	PendingNameWaits *obs.Counter

	// Eng is the execution substrate's bundle, accounted to the shard
	// fan-out of executePlanned; per-graph so coexisting graphs (two
	// matchers in one process) keep their pool metrics apart.
	Eng *engine.Obs
}

// Nil-safe field access, so instrumentation sites read handles off a
// possibly-nil *Obs without branching.
func (o *Obs) admissionWait() *obs.Histogram {
	return histOf(o, func(o *Obs) *obs.Histogram { return o.AdmissionWait })
}
func (o *Obs) planHold() *obs.Histogram {
	return histOf(o, func(o *Obs) *obs.Histogram { return o.PlanHold })
}
func (o *Obs) shardLockWait() *obs.Histogram {
	return histOf(o, func(o *Obs) *obs.Histogram { return o.ShardLockWait })
}
func (o *Obs) postingLen() *obs.Histogram {
	return histOf(o, func(o *Obs) *obs.Histogram { return o.PostingLen })
}
func (o *Obs) planNanos() *obs.Histogram {
	return histOf(o, func(o *Obs) *obs.Histogram { return o.PlanNanos })
}
func (o *Obs) lowerNanos() *obs.Histogram {
	return histOf(o, func(o *Obs) *obs.Histogram { return o.LowerNanos })
}
func (o *Obs) commitNanos() *obs.Histogram {
	return histOf(o, func(o *Obs) *obs.Histogram { return o.CommitNanos })
}

func histOf(o *Obs, f func(*Obs) *obs.Histogram) *obs.Histogram {
	if o == nil {
		return nil
	}
	return f(o)
}

func (o *Obs) shardMutations() *obs.CounterVec {
	if o == nil {
		return nil
	}
	return o.ShardMutations
}

func (o *Obs) deltas() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Deltas
}

func (o *Obs) noopDeltas() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.NoopDeltas
}

func ctrOf(o *Obs, f func(*Obs) *obs.Counter) *obs.Counter {
	if o == nil {
		return nil
	}
	return f(o)
}

func (o *Obs) planRetries() *obs.Counter {
	return ctrOf(o, func(o *Obs) *obs.Counter { return o.PlanRetries })
}
func (o *Obs) planFallbacks() *obs.Counter {
	return ctrOf(o, func(o *Obs) *obs.Counter { return o.PlanFallbacks })
}
func (o *Obs) optimisticPlans() *obs.Counter {
	return ctrOf(o, func(o *Obs) *obs.Counter { return o.OptimisticPlans })
}
func (o *Obs) pendingNameWaits() *obs.Counter {
	return ctrOf(o, func(o *Obs) *obs.Counter { return o.PendingNameWaits })
}

func (o *Obs) eng() *engine.Obs {
	if o == nil {
		return nil
	}
	return o.Eng
}

// SetObserver installs (or, with nil, removes) the write path's
// instruments. Safe to call concurrently with writers; in-flight
// deltas may record against the previous observer.
func (g *Graph) SetObserver(o *Obs) {
	g.ob.Store(o)
}

// RegisterObs builds an Obs wired to conventionally named instruments
// of the registry and installs it. A nil registry installs nothing.
func (g *Graph) RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	g.SetObserver(&Obs{
		AdmissionWait:  r.Histogram("graph.admission_wait_ns", "time a delta waited for plan-mutex admission", obs.DurationBuckets()),
		PlanHold:       r.Histogram("graph.plan_hold_ns", "time the plan mutex was held per delta", obs.DurationBuckets()),
		ShardLockWait:  r.Histogram("graph.shard_lock_wait_ns", "time an executor waited for a shard write lock", obs.DurationBuckets()),
		ShardMutations: r.CounterVec("graph.shard_mutations", "micro-ops applied, by shard", "shard", ShardCount),
		PostingLen:     r.Histogram("graph.posting_len", "value-index posting list length after insert", obs.SizeBuckets()),
		Deltas:         r.Counter("graph.deltas", "deltas that mutated the graph"),
		NoopDeltas:     r.Counter("graph.deltas_noop", "deltas whose ops coalesced to nothing"),

		PlanNanos:        r.Histogram("graph.plan_ns", "one optimistic planning pass (no lock held)", obs.DurationBuckets()),
		LowerNanos:       r.Histogram("graph.lower_ns", "off-mutex lowering of a group-commit delta", obs.DurationBuckets()),
		CommitNanos:      r.Histogram("graph.commit_wait_ns", "durability (group fsync) wait per delta", obs.DurationBuckets()),
		PlanRetries:      r.Counter("graph.plan_retries", "optimistic plans discarded by stale footprint or failed revalidation"),
		PlanFallbacks:    r.Counter("graph.plan_fallbacks", "deltas that fell back to the pessimistic plan path"),
		OptimisticPlans:  r.Counter("graph.plans_optimistic", "deltas admitted by footprint revalidation"),
		PendingNameWaits: r.Counter("graph.pending_name_waits", "admissions that blocked on a pending name reservation"),

		Eng: engine.NewObs(r),
	})
}
