package graph

import (
	"fmt"
	"sort"
	"sync"

	"graphkeys/internal/engine"
)

// This file is the planned write path. A mutation no longer walks the
// raw op list of a Delta against the store one op at a time under a
// global writer lock; it is first *planned* — validated, normalized and
// coalesced, resolved to node IDs, and split into per-shard micro-op
// lists — and the plan is then *executed* against the shards it
// touches, concurrently with the execution of any other plan touching
// disjoint shards.
//
// # Phases
//
// Planning runs under the graph's single plan mutex and is short: it
// reads, never restructures. It (1) waits for admission — no in-flight
// execution may overlap the delta's shard footprint, so every read the
// plan depends on (triple presence, adjacency, the directory entries of
// referenced entities) is stable; (2) validates the delta exactly as
// before (entity-level simulation, atomic reject); (3) coalesces the
// ops into their net effect — duplicate adds collapse, add/remove pairs
// of the same triple cancel, RemoveEntity expands over the entity's
// incident triples — producing the normalized op list that is also the
// WAL record; (4) allocates the surviving new nodes and directory
// entries (serialized by the plan mutex, so dense IDs stay
// deterministic in plan order) and lowers the net ops into per-shard
// micro-ops.
//
// Execution takes no global lock at all: the plan's shard footprint is
// registered as an in-flight mask, the plan mutex is released, and the
// micro-op lists apply under their own shard's write lock — fanned out
// via engine.Parallel when the plan spans several shards. Readers keep
// the shard-local contract they have always had; writers whose
// footprints are disjoint run fully concurrently; writers that overlap
// serialize through admission in plan order.
//
// # Why presence is decided at plan time
//
// Admission excludes any concurrent execution over the plan's shards,
// and planning is serialized, so the triple-presence and adjacency
// reads made while planning cannot go stale before the plan executes.
// That is what lets the executor be purely mechanical (no re-checks, no
// failure paths) and lets the normalized record be exact: replaying it
// against the same pre-state reproduces the same post-state, byte for
// byte.

// DeltaLog receives the normalized (net-effect) op list of a planned
// delta before it is applied, while plan order is still held — records
// handed to consecutive calls are in exactly the order the deltas
// serialize in. Returning an error aborts the delta before any
// mutation: this is the write-ahead hook the WAL hangs off.
//
// The returned DeltaCommit, when non-nil, is the delta's durability
// wait: the write path calls it AFTER releasing the plan mutex and
// before any mutation, so concurrent planners overlap their fsyncs
// (the WAL's group commit — one fsync covers every record buffered
// while the leader flushed). If the commit errors the delta aborts
// with the graph untouched. A nil commit means the hook already made
// the record durable (or does not need to): the delta then lowers and
// executes inside the same plan-mutex hold, exactly the pre-group-
// commit write path.
type DeltaLog func(norm []DeltaOp) (DeltaCommit, error)

// DeltaCommit blocks until the logged record is durable per the log's
// policy, reporting the flush error if it is not.
type DeltaCommit func() error

// planner is the admission state of the write path: which shard
// footprints are currently executing, and which planners are waiting.
type planner struct {
	mu   sync.Mutex
	cond *sync.Cond
	// flights maps an in-flight token to the shard mask its execution
	// may write; union is the OR of all of them.
	flights map[int64]uint32
	union   uint32
	nextTok int64
	// waitQ holds the tickets of planners blocked in admission, in
	// arrival order. Admission is strict FIFO among waiters: once a
	// planner has started waiting, later arrivals queue behind it even
	// when their own footprints are clear, so a wide-footprint delta
	// (e.g. removing a high-degree hub) cannot be starved by a
	// sustained stream of narrow ones.
	waitQ      []int64
	nextTicket int64

	// Lowering sequencer for the group-commit path: a delta that
	// releases the plan mutex for its durability wait reserves a
	// lowering slot first (nextLower), and lowers only when every
	// earlier slot has resolved (lowered catches up). Slot order is
	// plan order is WAL order, so node allocation — which happens at
	// lowering — stays deterministic in log order even though the
	// durability waits overlap; that is what keeps replay
	// byte-identical. pendingAlloc counts the node allocations of
	// reserved-but-not-yet-lowered plans, so deltaMask can cover the
	// allocation range of a new planner no matter how the slots ahead
	// of it resolve.
	nextLower    int64
	lowered      int64
	pendingAlloc int
}

func (g *Graph) initPlanner() {
	g.pl.cond = sync.NewCond(&g.pl.mu)
	g.pl.flights = make(map[int64]uint32)
}

func shardBit(i int) uint32 { return 1 << uint(i) }

// admit blocks, with pl.mu held, until maskFn's footprint is clear of
// every in-flight execution AND this planner is not behind an earlier
// waiter. maskFn is re-evaluated after every wake-up (name resolutions
// shift while waiting); its final value is returned. Fast path: with
// no in-flight conflict and no waiters, admit never blocks.
func (g *Graph) admit(maskFn func() uint32) uint32 {
	queued := false
	var ticket int64
	for {
		mask := maskFn()
		if g.pl.union&mask == 0 && (len(g.pl.waitQ) == 0 || (queued && g.pl.waitQ[0] == ticket)) {
			if queued {
				g.pl.waitQ = g.pl.waitQ[1:]
				// The next waiter may be admissible right now.
				g.pl.cond.Broadcast()
			}
			return mask
		}
		if !queued {
			ticket = g.pl.nextTicket
			g.pl.nextTicket++
			g.pl.waitQ = append(g.pl.waitQ, ticket)
			queued = true
		}
		g.pl.cond.Wait()
	}
}

// waitMask is admit for a footprint that cannot shift while waiting
// (shards derived from node IDs, which are stable).
func (g *Graph) waitMask(mask uint32) {
	g.admit(func() uint32 { return mask })
}

// registerFlight marks mask as executing and returns its token.
// Caller holds pl.mu.
func (g *Graph) registerFlight(mask uint32) int64 {
	tok := g.pl.nextTok
	g.pl.nextTok++
	g.pl.flights[tok] = mask
	g.pl.union |= mask
	return tok
}

// completeFlight retires a flight and wakes waiting planners. It takes
// pl.mu itself; the caller must have released every shard lock first.
func (g *Graph) completeFlight(tok int64) {
	g.pl.mu.Lock()
	delete(g.pl.flights, tok)
	var u uint32
	for _, m := range g.pl.flights {
		u |= m
	}
	g.pl.union = u
	g.pl.cond.Broadcast()
	g.pl.mu.Unlock()
}

// planRef names a node during planning: a concrete NodeID for nodes
// that exist, or a pending allocation for nodes the delta creates.
// Distinct incarnations of the same external ID (remove + re-add in one
// delta) get distinct refs, so triple keys never conflate them.
type planRef struct {
	n    NodeID
	pend *pendNode
}

// pendNode is a node the delta will create if its incarnation survives
// coalescing. n is assigned at allocation time.
type pendNode struct {
	kind     Kind
	label    string
	typeName string
	live     bool
	n        NodeID
}

// tKey identifies one logical triple during planning, at whatever
// resolution level its endpoints have (predicates stay names until
// lowering, so planning never interns on behalf of ops that may
// coalesce away).
type tKey struct {
	s    planRef
	pred string
	o    planRef
}

// tState tracks the net effect on one triple across the delta's ops.
type tState struct {
	initial   bool // present in the graph before the delta
	current   bool // present after the ops processed so far
	adderOp   int  // op index of the last absent->present transition
	removerOp int  // op index of the last present->absent transition; -1 when a RemoveEntity expansion caused it
}

// shardOp is one mechanical mutation of one shard, produced by
// lowering a planned delta. Executors apply these under the shard lock
// with no decisions left to make.
type shardOp struct {
	kind uint8
	n    NodeID // local node the op touches (subject, object, or tombstone)
	e    Edge
	pk   postKey
}

const (
	sAddKey uint8 = iota // triples[{n, e.Pred, e.To}] insert (n is the subject)
	sDelKey
	sOutAdd // out[n] append e
	sOutDel
	sInAdd // in[n] append e
	sInDel
	sPostAdd // posting pk gains n (sorted insert)
	sPostDel
	sDead // tombstone n
)

// planned is a fully lowered delta: everything the executor needs, and
// nothing it has to think about.
type planned struct {
	mask      uint32
	perShard  map[int][]shardOp
	norm      []DeltaOp
	emit      []emitItem
	result    DeltaResult
	tripDelta int64
	// pids memoizes predicate name -> interned ID across the plan's
	// lowering, so a high-degree RemoveEntity resolves each distinct
	// predicate once instead of once per incident triple.
	pids map[string]PredID
}

// ApplyDelta applies the delta atomically through the planned write
// path: it validates every operation (simulating entity creation and
// removal, so a triple may reference an entity added earlier in the
// same delta, and may not reference one removed earlier) and only then
// mutates the graph. On error the graph is untouched — not a node, not
// an interned name.
//
// Ops are normalized before application: duplicate adds, removals of
// absent triples, and add/remove pairs of the same triple inside one
// delta coalesce to their net effect, which is what DeltaResult
// reports (a delta whose ops cancel out reports Empty). ApplyDelta is
// safe for concurrent use: deltas whose shard footprints are disjoint
// apply concurrently, overlapping ones serialize in plan order.
func (g *Graph) ApplyDelta(d *Delta) (*DeltaResult, error) {
	return g.ApplyDeltaLogged(d, nil)
}

// ApplyDeltaLogged is ApplyDelta with a write-ahead hook: log (when
// non-nil) receives the normalized op list after validation and
// coalescing but before any mutation, in plan order. If log (or the
// durability commit it returns) errors, the delta is aborted and the
// graph left untouched. Deltas that coalesce to a no-op are not
// logged.
//
// When the hook returns a DeltaCommit, the durability wait runs with
// the plan mutex RELEASED: the delta's conservative shard footprint is
// registered as in-flight first (so overlapping planners wait exactly
// as they would for an executing delta) and a lowering slot is
// reserved (so allocation order stays plan order); disjoint planners
// keep planning and buffering their own records meanwhile, and one
// group fsync covers them all.
func (g *Graph) ApplyDeltaLogged(d *Delta, log DeltaLog) (*DeltaResult, error) {
	ob := g.ob.Load()
	tAdmit := ob.admissionWait().Start()
	g.pl.mu.Lock()
	admitted := g.admit(func() uint32 { return g.deltaMask(d) })
	ob.admissionWait().ObserveSince(tAdmit)
	tHold := ob.planHold().Start()
	if err := g.validateDelta(d); err != nil {
		g.pl.mu.Unlock()
		return nil, err
	}
	p := g.planDelta(d)
	if len(p.norm) == 0 {
		g.pl.mu.Unlock()
		ob.noopDeltas().Inc()
		return &p.result, nil
	}
	var commit DeltaCommit
	if log != nil {
		c, err := log(p.norm)
		if err != nil {
			g.pl.mu.Unlock()
			return nil, fmt.Errorf("graph: delta log: %w", err)
		}
		commit = c
	}
	if commit == nil {
		// No durability wait: lower and fly inside this plan-mutex
		// hold, the classic write path.
		g.lowerPlanned(p)
		tok := g.registerFlight(p.mask)
		g.pl.mu.Unlock()
		ob.planHold().ObserveSince(tHold)
		g.executePlanned(p)
		g.completeFlight(tok)
		ob.deltas().Inc()
		return &p.result, nil
	}
	// Group-commit path. The flight must cover lowering as well as
	// execution, and the plan's exact mask is only known after
	// lowering — so the admitted (conservative, superset) mask flies.
	alloc := p.allocCount()
	ticket := g.pl.nextLower
	g.pl.nextLower++
	g.pl.pendingAlloc += alloc
	tok := g.registerFlight(admitted)
	g.pl.mu.Unlock()
	ob.planHold().ObserveSince(tHold)

	cerr := commit()

	g.pl.mu.Lock()
	for g.pl.lowered != ticket {
		g.pl.cond.Wait()
	}
	if cerr == nil {
		g.lowerPlanned(p)
	}
	g.pl.lowered++
	g.pl.pendingAlloc -= alloc
	g.pl.cond.Broadcast()
	g.pl.mu.Unlock()
	if cerr != nil {
		g.completeFlight(tok)
		return nil, fmt.Errorf("graph: delta log: %w", cerr)
	}
	g.executePlanned(p)
	g.completeFlight(tok)
	ob.deltas().Inc()
	return &p.result, nil
}

// allocCount reports exactly how many nodes lowering this plan will
// allocate: one per surviving entity creation, one per distinct new
// value literal a surviving triple addition interns. The lowering
// sequencer uses it to keep deltaMask's allocation-range cover exact
// while slots ahead are still unresolved.
func (p *planned) allocCount() int {
	n := 0
	var seen map[*pendNode]bool
	for _, it := range p.emit {
		switch it.kind {
		case eAlloc:
			n++
		case eAddTriple:
			if pn := it.key.o.pend; pn != nil && pn.kind == ValueKind {
				if seen == nil {
					seen = make(map[*pendNode]bool)
				}
				if !seen[pn] {
					seen[pn] = true
					n++
				}
			}
		}
	}
	return n
}

// deltaMask conservatively over-approximates the shard footprint of the
// delta against the current directory: the shards of every node the
// delta references, the shards of the neighbors of every entity it
// removes, and the shards of every node it could allocate (tentative
// dense IDs are exact because allocation is serialized under the plan
// mutex). Caller holds pl.mu; the mask must be recomputed after every
// admission wait, since resolutions shift while waiting.
func (g *Graph) deltaMask(d *Delta) uint32 {
	var mask uint32
	tentative := 0
	seenVal := make(map[string]bool)
	ent := func(id string) (NodeID, bool) {
		g.dir.mu.RLock()
		n, ok := g.dir.entByID[id]
		g.dir.mu.RUnlock()
		return n, ok
	}
	for _, op := range d.ops {
		switch op.Kind {
		case OpAddEntity:
			if n, ok := ent(op.ID); ok {
				mask |= shardBit(shardIndex(n))
			}
			// Count an allocation even for IDs that resolve: a
			// remove + re-add in the same delta allocates a fresh node.
			tentative++
		case OpRemoveEntity:
			if n, ok := ent(op.ID); ok {
				mask |= shardBit(shardIndex(n))
				out, in := g.edges(n)
				for _, e := range out {
					mask |= shardBit(shardIndex(e.To))
				}
				for _, e := range in {
					mask |= shardBit(shardIndex(e.To))
				}
			}
		case OpAddTriple, OpRemoveTriple:
			if n, ok := ent(op.Subject); ok {
				mask |= shardBit(shardIndex(n))
			}
			if op.ObjectIsValue {
				g.dir.mu.RLock()
				v, ok := g.dir.valByLit[op.Object]
				g.dir.mu.RUnlock()
				if ok {
					mask |= shardBit(shardIndex(v))
				} else if op.Kind == OpAddTriple && !seenVal[op.Object] {
					seenVal[op.Object] = true
					tentative++
				}
			} else if n, ok := ent(op.Object); ok {
				mask |= shardBit(shardIndex(n))
			}
		}
	}
	// The allocation range starts wherever the node table stands when
	// THIS plan lowers. Slots reserved ahead of us may each allocate
	// (shifting our base up by their count) or abort (leaving it) — so
	// an allocating delta covers the whole span from the current table
	// end through every pending allocation plus its own tentative
	// ones. (A delta that allocates nothing needs no cover at all.)
	base := int(g.nNodes.Load())
	if tentative > 0 {
		tentative += g.pl.pendingAlloc
	}
	if tentative > ShardCount {
		tentative = ShardCount
	}
	for k := 0; k < tentative; k++ {
		mask |= shardBit(shardIndex(NodeID(base + k)))
	}
	return mask
}

// planDelta coalesces a validated delta into its net effect. Caller
// holds pl.mu with the delta's footprint admitted, so every read is
// stable. No mutation happens here.
func (g *Graph) planDelta(d *Delta) *planned {
	type entState struct {
		ref  planRef
		live bool
	}
	ents := make(map[string]entState)
	vals := make(map[string]planRef)
	trips := make(map[tKey]*tState)
	entOf := func(id string) entState {
		if st, ok := ents[id]; ok {
			return st
		}
		g.dir.mu.RLock()
		n, ok := g.dir.entByID[id]
		g.dir.mu.RUnlock()
		st := entState{ref: planRef{n: NoNode}}
		if ok {
			st = entState{ref: planRef{n: n}, live: true}
		}
		ents[id] = st
		return st
	}
	valOf := func(lit string, create bool) (planRef, bool) {
		if r, ok := vals[lit]; ok {
			return r, true
		}
		g.dir.mu.RLock()
		v, ok := g.dir.valByLit[lit]
		g.dir.mu.RUnlock()
		if ok {
			r := planRef{n: v}
			vals[lit] = r
			return r, true
		}
		if !create {
			return planRef{n: NoNode}, false
		}
		r := planRef{n: NoNode, pend: &pendNode{kind: ValueKind, label: lit, n: NoNode}}
		vals[lit] = r
		return r, true
	}
	present := func(k tKey) bool {
		if k.s.pend != nil || k.o.pend != nil {
			return false
		}
		pid, ok := g.PredByName(k.pred)
		if !ok {
			return false
		}
		return g.HasTriple(k.s.n, pid, k.o.n)
	}
	stateOf := func(k tKey) *tState {
		if ts, ok := trips[k]; ok {
			return ts
		}
		p := present(k)
		ts := &tState{initial: p, current: p, adderOp: -1, removerOp: -1}
		trips[k] = ts
		return ts
	}
	predNames := make(map[PredID]string)
	pname := func(p PredID) string {
		if name, ok := predNames[p]; ok {
			return name
		}
		name := g.PredName(p)
		predNames[p] = name
		return name
	}

	created := make(map[int]*pendNode) // AddEntity op index -> incarnation it created
	removedAt := make(map[int]NodeID)  // RemoveEntity op index -> existing node removed
	ownedRems := make(map[int][]tKey)  // RemoveEntity op index -> expansion removals, adjacency order
	opKey := make(map[int]tKey)        // triple op index -> resolved key
	// cancelRef cancels in-delta triple additions touching r. For an
	// existing node every initial-present incident triple was already
	// flipped by the adjacency expansion, so only initial-absent
	// (net-no-op) entries can still be current here — nothing to own.
	cancelRef := func(r planRef) {
		for k, ts := range trips {
			if ts.current && (k.s == r || k.o == r) {
				ts.current = false
				ts.removerOp = -1
			}
		}
	}

	for i, op := range d.ops {
		switch op.Kind {
		case OpAddEntity:
			if st := entOf(op.ID); st.live {
				continue // exists (validated same-type) — no-op
			}
			p := &pendNode{kind: EntityKind, label: op.ID, typeName: op.TypeName, live: true, n: NoNode}
			ents[op.ID] = entState{ref: planRef{n: NoNode, pend: p}, live: true}
			created[i] = p
		case OpRemoveEntity:
			st := entOf(op.ID)
			if !st.live {
				continue
			}
			ents[op.ID] = entState{ref: planRef{n: NoNode}}
			if st.ref.pend != nil {
				// In-delta incarnation: cancel it and its triples.
				st.ref.pend.live = false
				cancelRef(st.ref)
				continue
			}
			n := st.ref.n
			removedAt[i] = n
			// Expand over the pre-delta incident triples (out then in;
			// a self-loop dedups through the state map)…
			out, in := g.edges(n)
			for _, e := range out {
				k := tKey{s: planRef{n: n}, pred: pname(e.Pred), o: planRef{n: e.To}}
				if ts := stateOf(k); ts.current {
					ts.current = false
					ts.removerOp = -1
					ownedRems[i] = append(ownedRems[i], k)
				}
			}
			for _, e := range in {
				k := tKey{s: planRef{n: e.To}, pred: pname(e.Pred), o: planRef{n: n}}
				if ts := stateOf(k); ts.current {
					ts.current = false
					ts.removerOp = -1
					ownedRems[i] = append(ownedRems[i], k)
				}
			}
			// …and over triples this delta added onto the node.
			cancelRef(planRef{n: n})
		case OpAddTriple:
			s := entOf(op.Subject).ref
			var o planRef
			if op.ObjectIsValue {
				o, _ = valOf(op.Object, true)
			} else {
				o = entOf(op.Object).ref
			}
			k := tKey{s: s, pred: op.Pred, o: o}
			opKey[i] = k
			if ts := stateOf(k); !ts.current {
				ts.current = true
				ts.adderOp = i
			}
		case OpRemoveTriple:
			s := entOf(op.Subject).ref
			var o planRef
			if op.ObjectIsValue {
				var ok bool
				if o, ok = valOf(op.Object, false); !ok {
					continue // unknown literal: nothing to remove
				}
			} else {
				o = entOf(op.Object).ref
			}
			k := tKey{s: s, pred: op.Pred, o: o}
			opKey[i] = k
			if ts := stateOf(k); ts.current {
				ts.current = false
				ts.removerOp = i
			}
		}
	}

	// Emission: walk the ops again and keep exactly those whose effect
	// survived — the normalized record, in original op order, plus the
	// lowering worklist that mirrors it.
	p := &planned{perShard: make(map[int][]shardOp), pids: make(map[string]PredID)}
	for i, op := range d.ops {
		switch op.Kind {
		case OpAddEntity:
			if pn := created[i]; pn != nil && pn.live {
				p.norm = append(p.norm, op)
				p.emit = append(p.emit, emitItem{kind: eAlloc, pend: pn})
			}
		case OpRemoveEntity:
			if n, ok := removedAt[i]; ok {
				p.norm = append(p.norm, op)
				p.emit = append(p.emit, emitItem{kind: eTombstone, n: n, keys: ownedRems[i]})
			}
		case OpAddTriple:
			k, ok := opKey[i]
			if !ok {
				continue
			}
			if ts := trips[k]; !ts.initial && ts.current && ts.adderOp == i {
				p.norm = append(p.norm, op)
				p.emit = append(p.emit, emitItem{kind: eAddTriple, key: k})
			}
		case OpRemoveTriple:
			k, ok := opKey[i]
			if !ok {
				continue
			}
			if ts := trips[k]; ts.initial && !ts.current && ts.removerOp == i {
				p.norm = append(p.norm, op)
				p.emit = append(p.emit, emitItem{kind: eRemTriple, key: k})
			}
		}
	}
	return p
}

// emitItem is one surviving effect of a planned delta, in normalized
// order, still at planning resolution (lowerPlanned resolves it).
type emitItem struct {
	kind uint8
	pend *pendNode
	n    NodeID
	key  tKey
	keys []tKey // eTombstone: the expansion removals this entity owns
}

const (
	eAlloc uint8 = iota
	eTombstone
	eAddTriple
	eRemTriple
)

// lowerPlanned allocates the plan's surviving nodes, interns its
// predicate names, and lowers the emission list into per-shard
// micro-ops and the DeltaResult. Caller holds pl.mu; this is the only
// part of planning that mutates (allocation and interning only — the
// delta is committed from here on, which is why it runs after the
// write-ahead log hook).
func (g *Graph) lowerPlanned(p *planned) {
	shardOpAdd := func(si int, op shardOp) {
		p.perShard[si] = append(p.perShard[si], op)
		p.mask |= shardBit(si)
	}
	for _, it := range p.emit {
		switch it.kind {
		case eAlloc:
			g.dir.mu.Lock()
			t := TypeID(g.dir.types.Intern(it.pend.typeName))
			g.dir.mu.Unlock()
			n := g.allocNode(node{kind: EntityKind, typ: t, label: it.pend.label})
			it.pend.n = n
			g.dir.mu.Lock()
			g.dir.entByID[it.pend.label] = n
			for int(t) >= len(g.dir.byType) {
				g.dir.byType = append(g.dir.byType, nil)
			}
			g.dir.byType[t] = append(g.dir.byType[t], n)
			g.dir.mu.Unlock()
			p.result.AddedEntities = append(p.result.AddedEntities, n)
		case eTombstone:
			for _, k := range it.keys {
				g.lowerTriple(p, k, false, shardOpAdd)
			}
			// The directory is plan-authoritative in both directions:
			// entries appear at eAlloc lowering and disappear here, so a
			// remove + re-add of the same external ID in one delta
			// leaves the re-added incarnation's entry in place.
			typ, _ := g.EntityType(it.n)
			shardOpAdd(shardIndex(it.n), shardOp{kind: sDead, n: it.n})
			g.dir.mu.Lock()
			delete(g.dir.entByID, g.Label(it.n))
			if int(typ) < len(g.dir.byType) {
				g.dir.byType[typ] = removeOne(g.dir.byType[typ], it.n)
			}
			g.dir.mu.Unlock()
			p.result.RemovedEntities = append(p.result.RemovedEntities, it.n)
		case eAddTriple:
			g.lowerTriple(p, it.key, true, shardOpAdd)
		case eRemTriple:
			g.lowerTriple(p, it.key, false, shardOpAdd)
		}
	}
	p.tripDelta = int64(len(p.result.AddedTriples) - len(p.result.RemovedTriples))
}

// lowerTriple lowers one net triple add or removal into micro-ops on
// the subject's and object's shards.
func (g *Graph) lowerTriple(p *planned, k tKey, add bool, emit func(int, shardOp)) {
	s := k.s.n
	if k.s.pend != nil {
		s = k.s.pend.n
	}
	pid, cached := p.pids[k.pred]
	if !cached {
		if add {
			g.dir.mu.Lock()
			pid = PredID(g.dir.preds.Intern(k.pred))
			g.dir.mu.Unlock()
		} else {
			pid, _ = g.PredByName(k.pred)
		}
		p.pids[k.pred] = pid
	}
	var o NodeID
	oIsValue := false
	if k.o.pend != nil {
		if k.o.pend.n == NoNode && k.o.pend.kind == ValueKind {
			k.o.pend.n = g.allocNode(node{kind: ValueKind, label: k.o.pend.label})
			g.dir.mu.Lock()
			g.dir.valByLit[k.o.pend.label] = k.o.pend.n
			g.dir.mu.Unlock()
		}
		o = k.o.pend.n
		oIsValue = k.o.pend.kind == ValueKind
	} else {
		o = k.o.n
		oIsValue = g.IsValue(o)
	}
	ssi, osi := shardIndex(s), shardIndex(o)
	tr := Triple{S: s, P: pid, O: o}
	if add {
		emit(ssi, shardOp{kind: sAddKey, n: s, e: Edge{Pred: pid, To: o}})
		emit(ssi, shardOp{kind: sOutAdd, n: s, e: Edge{Pred: pid, To: o}})
		emit(osi, shardOp{kind: sInAdd, n: o, e: Edge{Pred: pid, To: s}})
		if oIsValue {
			emit(osi, shardOp{kind: sPostAdd, n: s, pk: postKey{p: pid, v: o}})
		}
		p.result.AddedTriples = append(p.result.AddedTriples, tr)
	} else {
		emit(ssi, shardOp{kind: sDelKey, n: s, e: Edge{Pred: pid, To: o}})
		emit(ssi, shardOp{kind: sOutDel, n: s, e: Edge{Pred: pid, To: o}})
		emit(osi, shardOp{kind: sInDel, n: o, e: Edge{Pred: pid, To: s}})
		if oIsValue {
			emit(osi, shardOp{kind: sPostDel, n: s, pk: postKey{p: pid, v: o}})
		}
		p.result.RemovedTriples = append(p.result.RemovedTriples, tr)
	}
}

// executePlanned applies a lowered plan: per-shard micro-op lists in
// parallel (each shard's list under that shard's write lock, so
// readers observe the shard's whole sub-delta atomically), then the
// triple-count adjustment. Directory changes already happened at
// lowering (the directory is plan-authoritative).
func (g *Graph) executePlanned(p *planned) {
	shards := make([]int, 0, len(p.perShard))
	for si := range p.perShard {
		shards = append(shards, si)
	}
	// Disjoint shards make the final state order-independent, but a
	// deterministic application order keeps traces and lock-wait
	// profiles reproducible run to run.
	sort.Ints(shards)
	engine.Parallel(engine.Workers(0), len(shards), func(i int) {
		g.applyShardOps(shards[i], p.perShard[shards[i]])
	})
	g.nTrip.Add(p.tripDelta)
}

// applyShardOps runs one shard's micro-ops under its write lock. Every
// slice mutation keeps the handed-out-snapshot contract: removals copy
// (removeOne / postRemove), insertions append or copy (postInsert).
func (g *Graph) applyShardOps(si int, ops []shardOp) {
	sh := &g.shards[si]
	ob := g.ob.Load()
	tLock := ob.shardLockWait().Start()
	sh.mu.Lock()
	ob.shardLockWait().ObserveSince(tLock)
	ob.shardMutations().At(si).Add(int64(len(ops)))
	defer sh.mu.Unlock()
	for _, op := range ops {
		switch op.kind {
		case sAddKey:
			sh.triples[tripleKey{op.n, op.e.Pred, op.e.To}] = struct{}{}
		case sDelKey:
			delete(sh.triples, tripleKey{op.n, op.e.Pred, op.e.To})
		case sOutAdd:
			sh.out[localIndex(op.n)] = append(sh.out[localIndex(op.n)], op.e)
		case sOutDel:
			sh.out[localIndex(op.n)] = removeOne(sh.out[localIndex(op.n)], op.e)
		case sInAdd:
			sh.in[localIndex(op.n)] = append(sh.in[localIndex(op.n)], op.e)
		case sInDel:
			sh.in[localIndex(op.n)] = removeOne(sh.in[localIndex(op.n)], op.e)
		case sPostAdd:
			postInsert(sh, op.pk.p, op.pk.v, op.n)
			ob.postingLen().Observe(int64(len(sh.post[op.pk])))
		case sPostDel:
			postRemove(sh, op.pk.p, op.pk.v, op.n)
		case sDead:
			sh.nodes[localIndex(op.n)].dead = true
		}
	}
}
