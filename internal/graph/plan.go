package graph

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"graphkeys/internal/engine"
)

// This file is the planned write path. A mutation no longer walks the
// raw op list of a Delta against the store one op at a time under a
// global writer lock; it is first *planned* — validated, normalized and
// coalesced, resolved to node IDs, and split into per-shard micro-op
// lists — and the plan is then *executed* against the shards it
// touches, concurrently with the execution of any other plan touching
// disjoint shards.
//
// # Phases
//
// Planning is OPTIMISTIC: validation, coalescing, and every presence/
// adjacency read-decision run with no lock held at all, against the
// live shards — each directory resolution and each shard read is
// recorded in a read footprint (name -> node, shard -> epoch; see
// footprint below). The plan mutex is then taken only to admit and
// revalidate: admission waits until no in-flight execution overlaps the
// plan's shard footprint and none of the names it resolved as absent
// has a pending reservation; revalidation re-checks the recorded
// resolutions and shard epochs. A hit means every read the plan was
// built from still holds — the plan is exactly what a plan made under
// the mutex would produce — so the short mutex hold shrinks to a
// handful of map lookups and epoch compares. A miss discards the plan
// and replans (bounded retries, then the pessimistic fallback: plan
// under the mutex with the footprint admitted first, exactly the old
// write path).
//
// # Allocation: name-level reservation
//
// A delta that creates nodes reserves them under the plan mutex before
// releasing it for the durability wait: dead (invisible) slots appended
// in plan order, plus pending-name entries mapping the not-yet-lowered
// names to their reserved IDs. Two allocating writers therefore
// conflict only when they allocate (or resolved-as-absent read) the
// SAME name — not, as the old allocation-range mask had it, whenever
// both allocate anything — so allocating writers group-commit and
// execute concurrently. Reservation order is plan order is WAL log
// order, which is what keeps node IDs deterministic under replay; a
// reservation whose commit fails stays a dead hole no name resolves
// to (the name-level text format renders it invisibly).
//
// Execution takes no global lock at all: the plan's shard footprint is
// registered as an in-flight mask, the plan mutex is released, and the
// micro-op lists apply under their own shard's write lock — fanned out
// via engine.Parallel when the plan spans several shards. Readers keep
// the shard-local contract they have always had; writers whose
// footprints are disjoint run fully concurrently; writers that overlap
// serialize through admission in plan order.
//
// # Why revalidated presence decisions are safe
//
// Admission excludes any concurrent execution over the plan's shards,
// legacy mutators hold the plan mutex for their whole write, and every
// shard mutation bumps that shard's epoch under its write lock — so a
// revalidation pass proves the plan's reads never went stale, and they
// cannot go stale afterwards: the flight mask covers every shard the
// reads depended on until execution retires it. That is what lets the
// executor stay purely mechanical (no re-checks, no failure paths) and
// the normalized record stay exact: replaying it against the same
// pre-state reproduces the same post-state, byte for byte.

// DeltaLog receives the normalized (net-effect) op list of a planned
// delta before it is applied, while plan order is still held — records
// handed to consecutive calls are in exactly the order the deltas
// serialize in. Returning an error aborts the delta before any
// mutation: this is the write-ahead hook the WAL hangs off.
//
// The returned DeltaCommit, when non-nil, is the delta's durability
// wait: the write path calls it AFTER releasing the plan mutex and
// before any mutation, so concurrent planners overlap their fsyncs
// (the WAL's group commit — one fsync covers every record buffered
// while the leader flushed). If the commit errors the delta aborts
// with the graph untouched at name level (reserved slots stay dead
// holes). A nil commit means the hook already made the record durable
// (or does not need to): the delta then lowers and executes inside the
// same plan-mutex hold, exactly the pre-group-commit write path.
type DeltaLog func(norm []DeltaOp) (DeltaCommit, error)

// DeltaCommit blocks until the logged record is durable per the log's
// policy, reporting the flush error if it is not.
type DeltaCommit func() error

// maxReplans bounds how many times a delta replans after a failed
// revalidation before falling back to the pessimistic path, so a
// writer on a hot shard makes progress instead of chasing epochs.
const maxReplans = 3

// planner is the admission state of the write path: which shard
// footprints are currently executing, which planners are waiting, and
// which names are reserved by group commits that have not lowered yet.
type planner struct {
	mu   sync.Mutex
	cond *sync.Cond
	// flights maps an in-flight token to the shard mask its execution
	// may write; union is the OR of all of them.
	flights map[int64]uint32
	union   uint32
	nextTok int64
	// waitQ holds the tickets of planners blocked in admission, in
	// arrival order. Admission is strict FIFO among waiters: once a
	// planner has started waiting, later arrivals queue behind it even
	// when their own footprints are clear, so a wide-footprint delta
	// (e.g. removing a high-degree hub) cannot be starved by a
	// sustained stream of narrow ones.
	waitQ      []int64
	nextTicket int64

	// Pending-name tables for the group-commit path: names whose nodes
	// are reserved (IDs assigned, slots dead) but not yet lowered into
	// the directory. A planner whose footprint resolved one of these
	// names as absent must wait — proceeding would either double-
	// allocate the name or commit a record planned against a state the
	// log already contradicts. Entries are removed (and cond broadcast)
	// when the owning delta lowers or aborts. Entity IDs and value
	// literals are separate namespaces, hence two tables.
	pendEnts map[string]NodeID
	pendVals map[string]NodeID
}

func (g *Graph) initPlanner() {
	g.pl.cond = sync.NewCond(&g.pl.mu)
	g.pl.flights = make(map[int64]uint32)
	g.pl.pendEnts = make(map[string]NodeID)
	g.pl.pendVals = make(map[string]NodeID)
}

func shardBit(i int) uint32 { return 1 << uint(i) }

// admit blocks, with pl.mu held, until maskFn's footprint is clear of
// every in-flight execution, free (when non-nil) reports no pending-
// name conflict, AND this planner is not behind an earlier waiter.
// maskFn and free are re-evaluated after every wake-up (name
// resolutions shift while waiting); the final mask is returned. Fast
// path: with no conflict and no waiters, admit never blocks.
func (g *Graph) admit(maskFn func() uint32, free func() bool) uint32 {
	queued := false
	var ticket int64
	for {
		mask := maskFn()
		if g.pl.union&mask == 0 && (free == nil || free()) &&
			(len(g.pl.waitQ) == 0 || (queued && g.pl.waitQ[0] == ticket)) {
			if queued {
				g.pl.waitQ = g.pl.waitQ[1:]
				// The next waiter may be admissible right now.
				g.pl.cond.Broadcast()
			}
			return mask
		}
		if !queued {
			ticket = g.pl.nextTicket
			g.pl.nextTicket++
			g.pl.waitQ = append(g.pl.waitQ, ticket)
			queued = true
		}
		g.pl.cond.Wait()
	}
}

// waitMask is admit for a footprint that cannot shift while waiting
// (shards derived from node IDs, which are stable).
func (g *Graph) waitMask(mask uint32) {
	g.admit(func() uint32 { return mask }, nil)
}

// registerFlight marks mask as executing and returns its token.
// Caller holds pl.mu.
func (g *Graph) registerFlight(mask uint32) int64 {
	tok := g.pl.nextTok
	g.pl.nextTok++
	g.pl.flights[tok] = mask
	g.pl.union |= mask
	return tok
}

// completeFlight retires a flight and wakes waiting planners. It takes
// pl.mu itself; the caller must have released every shard lock first.
func (g *Graph) completeFlight(tok int64) {
	g.pl.mu.Lock()
	delete(g.pl.flights, tok)
	var u uint32
	for _, m := range g.pl.flights {
		u |= m
	}
	g.pl.union = u
	g.pl.cond.Broadcast()
	g.pl.mu.Unlock()
}

// footprint records every read an optimistic plan depended on, so the
// whole plan can be revalidated in O(reads) under the plan mutex:
//
//   - ents/vals pin the directory resolutions (NoNode = resolved as
//     absent). A name whose resolution changed — appeared, vanished, or
//     re-resolved to a different node — invalidates the plan.
//   - epochs pins the first-observed mutation epoch of every shard a
//     presence or adjacency read touched. Any mutation of that shard
//     since bumps the epoch and invalidates the plan.
//   - mask accumulates the shard bits of every resolved node plus the
//     neighborhoods of removed entities: the admission footprint.
//
// stale flips when two reads of the same shard observed different
// epochs mid-plan: the plan is internally inconsistent and is
// discarded without even attempting admission.
type footprint struct {
	ents   map[string]NodeID
	vals   map[string]NodeID
	epochs map[int]uint64
	mask   uint32
	stale  bool
}

func newFootprint() *footprint {
	return &footprint{
		ents:   make(map[string]NodeID),
		vals:   make(map[string]NodeID),
		epochs: make(map[int]uint64),
	}
}

// observe records a shard epoch, flagging the footprint stale if the
// shard was read before at a different epoch.
func (fp *footprint) observe(si int, e uint64) {
	if prev, ok := fp.epochs[si]; ok {
		if prev != e {
			fp.stale = true
		}
		return
	}
	fp.epochs[si] = e
}

// fpEnt resolves an external entity ID against the directory, recording
// the resolution (and the node's shard) in the footprint when one is
// supplied. With fp == nil it is a plain directory lookup — the
// pessimistic path, which reads under the plan mutex with its footprint
// admitted and needs no recording.
func (g *Graph) fpEnt(fp *footprint, id string) (NodeID, bool) {
	if fp != nil {
		if n, ok := fp.ents[id]; ok {
			return n, n != NoNode
		}
	}
	g.dir.mu.RLock()
	n, ok := g.dir.entByID[id]
	g.dir.mu.RUnlock()
	if !ok {
		n = NoNode
	}
	if fp != nil {
		fp.ents[id] = n
		if ok {
			fp.mask |= shardBit(shardIndex(n))
		}
	}
	return n, ok
}

// fpVal is fpEnt for value literals.
func (g *Graph) fpVal(fp *footprint, lit string) (NodeID, bool) {
	if fp != nil {
		if n, ok := fp.vals[lit]; ok {
			return n, n != NoNode
		}
	}
	g.dir.mu.RLock()
	n, ok := g.dir.valByLit[lit]
	g.dir.mu.RUnlock()
	if !ok {
		n = NoNode
	}
	if fp != nil {
		fp.vals[lit] = n
		if ok {
			fp.mask |= shardBit(shardIndex(n))
		}
	}
	return n, ok
}

// fpPresent reports whether the triple (s, pred, o) is in G, recording
// the subject shard's epoch. The epoch is read twice, around the
// predicate resolution (which lives in the directory's lock domain, not
// the shard's): if a writer interned the predicate and flipped the
// triple between the two reads, the epochs differ and the plan is
// flagged stale — without the double read, a presence probe on the
// predicate-missing branch could record a post-mutation epoch for a
// pre-mutation answer and revalidate a wrong plan.
func (g *Graph) fpPresent(fp *footprint, s NodeID, pred string, o NodeID) bool {
	if fp == nil {
		pid, ok := g.PredByName(pred)
		return ok && g.HasTriple(s, pid, o)
	}
	sh := g.shardOf(s)
	sh.mu.RLock()
	e1 := sh.epoch.Load()
	sh.mu.RUnlock()
	pid, ok := g.PredByName(pred)
	var present bool
	sh.mu.RLock()
	e2 := sh.epoch.Load()
	if ok {
		_, present = sh.triples[tripleKey{s, pid, o}]
	}
	sh.mu.RUnlock()
	if e1 != e2 {
		fp.stale = true
	}
	fp.observe(shardIndex(s), e1)
	return present
}

// fpEdges reads n's adjacency (for RemoveEntity expansion), recording
// n's shard epoch and widening the footprint mask over the neighbors —
// the removal writes their shards too.
func (g *Graph) fpEdges(fp *footprint, n NodeID) (out, in []Edge) {
	if fp == nil {
		out, in = g.edges(n)
	} else {
		sh := g.shardOf(n)
		l := localIndex(n)
		sh.mu.RLock()
		e := sh.epoch.Load()
		out, in = sh.out[l], sh.in[l]
		sh.mu.RUnlock()
		fp.observe(shardIndex(n), e)
	}
	if fp != nil {
		for _, ed := range out {
			fp.mask |= shardBit(shardIndex(ed.To))
		}
		for _, ed := range in {
			fp.mask |= shardBit(shardIndex(ed.To))
		}
	}
	return out, in
}

// revalidate reports whether every read the footprint recorded still
// holds. Caller holds pl.mu with the footprint's mask admitted and its
// absent names free of pending reservations: a pass here means the
// optimistic plan is exactly what a plan made under the mutex would
// decide now, and nothing can invalidate it before its flight retires
// (the mask covers every shard the reads depended on, legacy mutators
// hold the plan mutex, and concurrent lowerings write only shards of
// their own disjoint flights).
func (g *Graph) revalidate(fp *footprint) bool {
	if fp.stale {
		return false
	}
	g.dir.mu.RLock()
	ok := true
	for id, n := range fp.ents {
		cur, found := g.dir.entByID[id]
		if !found {
			cur = NoNode
		}
		if cur != n {
			ok = false
			break
		}
	}
	if ok {
		for lit, n := range fp.vals {
			cur, found := g.dir.valByLit[lit]
			if !found {
				cur = NoNode
			}
			if cur != n {
				ok = false
				break
			}
		}
	}
	g.dir.mu.RUnlock()
	if !ok {
		return false
	}
	for si, e := range fp.epochs {
		if g.shards[si].epoch.Load() != e {
			return false
		}
	}
	return true
}

// namesFree reports whether none of the names the footprint resolved
// as absent carries a pending reservation. Caller holds pl.mu.
func (g *Graph) namesFree(fp *footprint) bool {
	for id, n := range fp.ents {
		if n == NoNode {
			if _, pend := g.pl.pendEnts[id]; pend {
				return false
			}
		}
	}
	for lit, n := range fp.vals {
		if n == NoNode {
			if _, pend := g.pl.pendVals[lit]; pend {
				return false
			}
		}
	}
	return true
}

// deltaNamesFree is namesFree for the pessimistic path, which has no
// footprint yet: it conservatively checks every name the delta
// mentions. Caller holds pl.mu.
func (g *Graph) deltaNamesFree(d *Delta) bool {
	if len(g.pl.pendEnts) == 0 && len(g.pl.pendVals) == 0 {
		return true
	}
	pendEnt := func(id string) bool {
		_, ok := g.pl.pendEnts[id]
		return ok
	}
	for _, op := range d.ops {
		switch op.Kind {
		case OpAddEntity, OpRemoveEntity:
			if pendEnt(op.ID) {
				return false
			}
		case OpAddTriple, OpRemoveTriple:
			if pendEnt(op.Subject) {
				return false
			}
			if op.ObjectIsValue {
				if _, ok := g.pl.pendVals[op.Object]; ok {
					return false
				}
			} else if pendEnt(op.Object) {
				return false
			}
		}
	}
	return true
}

// planRef names a node during planning: a concrete NodeID for nodes
// that exist, or a pending allocation for nodes the delta creates.
// Distinct incarnations of the same external ID (remove + re-add in one
// delta) get distinct refs, so triple keys never conflate them.
type planRef struct {
	n    NodeID
	pend *pendNode
}

// pendNode is a node the delta will create if its incarnation survives
// coalescing. n is assigned at reservation (group-commit path) or
// lowering (inline path); published flips when the directory entry for
// a value node lands.
type pendNode struct {
	kind      Kind
	label     string
	typeName  string
	typ       TypeID // interned at reservation (group-commit path)
	live      bool
	published bool
	n         NodeID
}

// tKey identifies one logical triple during planning, at whatever
// resolution level its endpoints have (predicates stay names until
// lowering, so planning never interns on behalf of ops that may
// coalesce away).
type tKey struct {
	s    planRef
	pred string
	o    planRef
}

// tState tracks the net effect on one triple across the delta's ops.
type tState struct {
	initial   bool // present in the graph before the delta
	current   bool // present after the ops processed so far
	adderOp   int  // op index of the last absent->present transition
	removerOp int  // op index of the last present->absent transition; -1 when a RemoveEntity expansion caused it
}

// shardOp is one mechanical mutation of one shard, produced by
// lowering a planned delta. Executors apply these under the shard lock
// with no decisions left to make.
type shardOp struct {
	kind uint8
	n    NodeID // local node the op touches (subject, object, or tombstone)
	e    Edge
	pk   postKey
}

const (
	sAddKey uint8 = iota // triples[{n, e.Pred, e.To}] insert (n is the subject)
	sDelKey
	sOutAdd // out[n] append e
	sOutDel
	sInAdd // in[n] append e
	sInDel
	sPostAdd // posting pk gains n (sorted insert)
	sPostDel
	sDead // tombstone n
)

// planned is a fully lowered delta: everything the executor needs, and
// nothing it has to think about.
type planned struct {
	mask      uint32
	perShard  map[int][]shardOp
	norm      []DeltaOp
	emit      []emitItem
	result    DeltaResult
	tripDelta int64
	// nAlloc is how many nodes the plan allocates (see allocCount);
	// reserved flips once those slots are reserved, switching the
	// lowering from allocate-and-publish to flip-and-publish.
	nAlloc   int
	reserved bool
	// pids memoizes predicate name -> interned ID across the plan's
	// lowering, so a high-degree RemoveEntity resolves each distinct
	// predicate once instead of once per incident triple.
	pids map[string]PredID
}

// ApplyDelta applies the delta atomically through the planned write
// path: it validates every operation (simulating entity creation and
// removal, so a triple may reference an entity added earlier in the
// same delta, and may not reference one removed earlier) and only then
// mutates the graph. On error the graph is untouched — not a node, not
// an interned name.
//
// Ops are normalized before application: duplicate adds, removals of
// absent triples, and add/remove pairs of the same triple inside one
// delta coalesce to their net effect, which is what DeltaResult
// reports (a delta whose ops cancel out reports Empty). ApplyDelta is
// safe for concurrent use: deltas whose shard footprints are disjoint
// apply concurrently, overlapping ones serialize in plan order.
func (g *Graph) ApplyDelta(d *Delta) (*DeltaResult, error) {
	return g.ApplyDeltaLogged(d, nil)
}

// ApplyDeltaLogged is ApplyDelta with a write-ahead hook: log (when
// non-nil) receives the normalized op list after validation and
// coalescing but before any mutation, in plan order. If log (or the
// durability commit it returns) errors, the delta is aborted; a commit
// failure can leave reserved dead slots behind (holes in the dense ID
// space no name resolves to), but never a name, a triple, or any state
// a reader or a replay can observe. Deltas that coalesce to a no-op
// are not logged.
//
// The delta is planned optimistically (no lock) and the plan admitted
// by footprint revalidation; see the file comment. When the hook
// returns a DeltaCommit, the durability wait runs with the plan mutex
// RELEASED: the plan's nodes are reserved and its exact shard
// footprint registered as in-flight first, so disjoint planners —
// including other allocating ones — keep planning and buffering their
// own records meanwhile, and one group fsync covers them all.
func (g *Graph) ApplyDeltaLogged(d *Delta, log DeltaLog) (*DeltaResult, error) {
	ob := g.ob.Load()
	for attempt := 0; attempt <= maxReplans; attempt++ {
		fp := newFootprint()
		tPlan := ob.planNanos().Start()
		verr := g.validateDelta(d, fp)
		var p *planned
		if verr == nil {
			p = g.planDelta(d, fp)
		}
		ob.planNanos().ObserveSince(tPlan)
		if verr != nil {
			if fp.stale {
				// The rejection may be an artifact of torn reads.
				ob.planRetries().Inc()
				continue
			}
			// Plausible rejection — but computed from unvalidated reads,
			// so confirm it under the mutex before reporting (a
			// concurrent delta may have created the entity this one
			// failed to find).
			break
		}
		if fp.stale {
			ob.planRetries().Inc()
			continue
		}
		res, ok, err := g.runOptimistic(p, fp, log, ob)
		if ok {
			return res, err
		}
		ob.planRetries().Inc()
	}
	ob.planFallbacks().Inc()
	return g.applyPessimistic(d, log, ob)
}

// runOptimistic admits and revalidates an optimistic plan and, on a
// hit, drives the delta to completion. ok = false means revalidation
// missed and the caller should replan.
func (g *Graph) runOptimistic(p *planned, fp *footprint, log DeltaLog, ob *Obs) (res *DeltaResult, ok bool, err error) {
	namesWaited := false
	tAdmit := ob.admissionWait().Start()
	g.pl.mu.Lock()
	// The admission mask: every shard the footprint touched, plus the
	// exact shards of the nodes this plan will reserve — [nNodes,
	// nNodes+nAlloc) is exact under pl.mu, because reservation is
	// serialized by it. Re-evaluated per wake-up: the base shifts as
	// other planners reserve.
	mask := g.admit(func() uint32 {
		m := fp.mask
		base := int(g.nNodes.Load())
		k := p.nAlloc
		if k > ShardCount {
			k = ShardCount
		}
		for i := 0; i < k; i++ {
			m |= shardBit(shardIndex(NodeID(base + i)))
		}
		return m
	}, func() bool {
		if g.namesFree(fp) {
			return true
		}
		namesWaited = true
		return false
	})
	ob.admissionWait().ObserveSince(tAdmit)
	if namesWaited {
		ob.pendingNameWaits().Inc()
	}
	if !g.revalidate(fp) {
		g.pl.mu.Unlock()
		return nil, false, nil
	}
	ob.optimisticPlans().Inc()
	tHold := ob.planHold().Start()
	if len(p.norm) == 0 {
		g.pl.mu.Unlock()
		ob.noopDeltas().Inc()
		return &p.result, true, nil
	}
	var commit DeltaCommit
	if log != nil {
		c, lerr := log(p.norm)
		if lerr != nil {
			g.pl.mu.Unlock()
			return nil, true, fmt.Errorf("graph: delta log: %w", lerr)
		}
		commit = c
	}
	if commit == nil {
		// No durability wait: lower and fly inside this plan-mutex
		// hold, the classic write path.
		g.lowerPlanned(p)
		tok := g.registerFlight(p.mask)
		g.pl.mu.Unlock()
		ob.planHold().ObserveSince(tHold)
		g.executePlanned(p)
		g.completeFlight(tok)
		ob.deltas().Inc()
		return &p.result, true, nil
	}
	res, err = g.commitReserved(p, mask, commit, ob, tHold)
	return res, true, err
}

// applyPessimistic is the fallback write path after replans are
// exhausted (or a validation rejection needs confirming): plan under
// the plan mutex with the delta's conservative footprint admitted
// first, exactly the pre-optimistic path. It shares the reservation
// machinery for the group-commit case, so allocation order stays plan
// order either way.
func (g *Graph) applyPessimistic(d *Delta, log DeltaLog, ob *Obs) (*DeltaResult, error) {
	tAdmit := ob.admissionWait().Start()
	g.pl.mu.Lock()
	admitted := g.admit(func() uint32 { return g.deltaMask(d) }, func() bool { return g.deltaNamesFree(d) })
	ob.admissionWait().ObserveSince(tAdmit)
	tHold := ob.planHold().Start()
	if err := g.validateDelta(d, nil); err != nil {
		g.pl.mu.Unlock()
		return nil, err
	}
	p := g.planDelta(d, nil)
	if len(p.norm) == 0 {
		g.pl.mu.Unlock()
		ob.noopDeltas().Inc()
		return &p.result, nil
	}
	var commit DeltaCommit
	if log != nil {
		c, err := log(p.norm)
		if err != nil {
			g.pl.mu.Unlock()
			return nil, fmt.Errorf("graph: delta log: %w", err)
		}
		commit = c
	}
	if commit == nil {
		g.lowerPlanned(p)
		tok := g.registerFlight(p.mask)
		g.pl.mu.Unlock()
		ob.planHold().ObserveSince(tHold)
		g.executePlanned(p)
		g.completeFlight(tok)
		ob.deltas().Inc()
		return &p.result, nil
	}
	return g.commitReserved(p, admitted, commit, ob, tHold)
}

// commitReserved drives a group-commit delta from the log hook to
// completion: reserve the plan's nodes and names, register the flight,
// release the plan mutex (which the CALLER locked — this is the tail
// of both admission paths), overlap the durability wait with other
// planners, then lower and execute. mask must cover every shard the
// plan can touch, including the reserved slots'.
func (g *Graph) commitReserved(p *planned, mask uint32, commit DeltaCommit, ob *Obs, tHold time.Time) (*DeltaResult, error) {
	g.reservePlanned(p)
	tok := g.registerFlight(mask)
	g.pl.mu.Unlock()
	ob.planHold().ObserveSince(tHold)

	tCommit := ob.commitNanos().Start()
	cerr := commit()
	ob.commitNanos().ObserveSince(tCommit)
	if cerr != nil {
		// The reserved slots stay dead holes (no name resolves to
		// them; see reserveNode). Release the names so blocked
		// allocators of the same names proceed.
		g.pl.mu.Lock()
		g.unreservePlanned(p)
		g.pl.mu.Unlock()
		g.completeFlight(tok)
		return nil, fmt.Errorf("graph: delta log: %w", cerr)
	}
	tLower := ob.lowerNanos().Start()
	g.lowerPlanned(p)
	ob.lowerNanos().ObserveSince(tLower)
	// Only now — with the directory entries published — may the
	// pending-name entries go: a waiter that wakes re-resolves the
	// name and finds it.
	g.pl.mu.Lock()
	g.unreservePlanned(p)
	g.pl.mu.Unlock()
	g.executePlanned(p)
	g.completeFlight(tok)
	ob.deltas().Inc()
	return &p.result, nil
}

// reservePlanned reserves the plan's allocations: dead node slots
// appended in exactly the order lowering will need them (entity
// creations at their eAlloc, value literals at the first surviving
// triple that references them — the same order the inline path
// allocates in), plus the pending-name entries that keep other
// planners off the names until lowering publishes them. Caller holds
// pl.mu; reservation order is plan order is log order.
func (g *Graph) reservePlanned(p *planned) {
	for _, it := range p.emit {
		switch it.kind {
		case eAlloc:
			it.pend.typ = g.internType(it.pend.typeName)
			it.pend.n = g.reserveNode(node{kind: EntityKind, typ: it.pend.typ, label: it.pend.label})
			g.pl.pendEnts[it.pend.label] = it.pend.n
		case eAddTriple:
			if pn := it.key.o.pend; pn != nil && pn.kind == ValueKind && pn.n == NoNode {
				pn.n = g.reserveNode(node{kind: ValueKind, label: pn.label})
				g.pl.pendVals[pn.label] = pn.n
			}
		}
	}
	p.reserved = true
}

// unreservePlanned drops the plan's pending-name entries and wakes
// planners blocked on them. Caller holds pl.mu. Each name has exactly
// one owner (namesFree admits no second reservation), so the deletes
// cannot clobber another delta's entries.
func (g *Graph) unreservePlanned(p *planned) {
	for _, it := range p.emit {
		switch it.kind {
		case eAlloc:
			delete(g.pl.pendEnts, it.pend.label)
		case eAddTriple:
			if pn := it.key.o.pend; pn != nil && pn.kind == ValueKind && pn.n != NoNode {
				delete(g.pl.pendVals, pn.label)
			}
		}
	}
	g.pl.cond.Broadcast()
}

// allocCount reports exactly how many nodes lowering this plan will
// allocate: one per surviving entity creation, one per distinct new
// value literal a surviving triple addition interns. The admission
// mask covers exactly that many tentative slots.
func (p *planned) allocCount() int {
	n := 0
	var seen map[*pendNode]bool
	for _, it := range p.emit {
		switch it.kind {
		case eAlloc:
			n++
		case eAddTriple:
			if pn := it.key.o.pend; pn != nil && pn.kind == ValueKind {
				if seen == nil {
					seen = make(map[*pendNode]bool)
				}
				if !seen[pn] {
					seen[pn] = true
					n++
				}
			}
		}
	}
	return n
}

// deltaMask conservatively over-approximates the shard footprint of the
// delta against the current directory, for the pessimistic path (which
// must admit before planning): the shards of every node the delta
// references, the shards of the neighbors of every entity it removes,
// and the shards of every node it could allocate (tentative dense IDs
// are exact because allocation is serialized under the plan mutex —
// and in-flight reservations already hold their own slots' bits in
// their flight masks, so no cross-delta allocation cover is needed).
// Caller holds pl.mu; the mask must be recomputed after every
// admission wait, since resolutions shift while waiting.
func (g *Graph) deltaMask(d *Delta) uint32 {
	var mask uint32
	tentative := 0
	seenVal := make(map[string]bool)
	ent := func(id string) (NodeID, bool) {
		g.dir.mu.RLock()
		n, ok := g.dir.entByID[id]
		g.dir.mu.RUnlock()
		return n, ok
	}
	for _, op := range d.ops {
		switch op.Kind {
		case OpAddEntity:
			if n, ok := ent(op.ID); ok {
				mask |= shardBit(shardIndex(n))
			}
			// Count an allocation even for IDs that resolve: a
			// remove + re-add in the same delta allocates a fresh node.
			tentative++
		case OpRemoveEntity:
			if n, ok := ent(op.ID); ok {
				mask |= shardBit(shardIndex(n))
				out, in := g.edges(n)
				for _, e := range out {
					mask |= shardBit(shardIndex(e.To))
				}
				for _, e := range in {
					mask |= shardBit(shardIndex(e.To))
				}
			}
		case OpAddTriple, OpRemoveTriple:
			if n, ok := ent(op.Subject); ok {
				mask |= shardBit(shardIndex(n))
			}
			if op.ObjectIsValue {
				g.dir.mu.RLock()
				v, ok := g.dir.valByLit[op.Object]
				g.dir.mu.RUnlock()
				if ok {
					mask |= shardBit(shardIndex(v))
				} else if op.Kind == OpAddTriple && !seenVal[op.Object] {
					seenVal[op.Object] = true
					tentative++
				}
			} else if n, ok := ent(op.Object); ok {
				mask |= shardBit(shardIndex(n))
			}
		}
	}
	base := int(g.nNodes.Load())
	if tentative > ShardCount {
		tentative = ShardCount
	}
	for k := 0; k < tentative; k++ {
		mask |= shardBit(shardIndex(NodeID(base + k)))
	}
	return mask
}

// planDelta coalesces a validated delta into its net effect. With a
// footprint it runs optimistically — no lock held, every read
// recorded for revalidation; with fp == nil the caller holds pl.mu
// with the delta's footprint admitted, so every read is stable. No
// mutation happens in either mode.
func (g *Graph) planDelta(d *Delta, fp *footprint) *planned {
	type entState struct {
		ref  planRef
		live bool
	}
	ents := make(map[string]entState)
	vals := make(map[string]planRef)
	trips := make(map[tKey]*tState)
	entOf := func(id string) entState {
		if st, ok := ents[id]; ok {
			return st
		}
		n, ok := g.fpEnt(fp, id)
		st := entState{ref: planRef{n: NoNode}}
		if ok {
			st = entState{ref: planRef{n: n}, live: true}
		}
		ents[id] = st
		return st
	}
	valOf := func(lit string, create bool) (planRef, bool) {
		if r, ok := vals[lit]; ok {
			return r, true
		}
		v, ok := g.fpVal(fp, lit)
		if ok {
			r := planRef{n: v}
			vals[lit] = r
			return r, true
		}
		if !create {
			return planRef{n: NoNode}, false
		}
		r := planRef{n: NoNode, pend: &pendNode{kind: ValueKind, label: lit, n: NoNode}}
		vals[lit] = r
		return r, true
	}
	present := func(k tKey) bool {
		if k.s.pend != nil || k.o.pend != nil {
			return false
		}
		return g.fpPresent(fp, k.s.n, k.pred, k.o.n)
	}
	stateOf := func(k tKey) *tState {
		if ts, ok := trips[k]; ok {
			return ts
		}
		p := present(k)
		ts := &tState{initial: p, current: p, adderOp: -1, removerOp: -1}
		trips[k] = ts
		return ts
	}
	predNames := make(map[PredID]string)
	pname := func(p PredID) string {
		if name, ok := predNames[p]; ok {
			return name
		}
		name := g.PredName(p)
		predNames[p] = name
		return name
	}

	created := make(map[int]*pendNode) // AddEntity op index -> incarnation it created
	removedAt := make(map[int]NodeID)  // RemoveEntity op index -> existing node removed
	ownedRems := make(map[int][]tKey)  // RemoveEntity op index -> expansion removals, adjacency order
	opKey := make(map[int]tKey)        // triple op index -> resolved key
	// cancelRef cancels in-delta triple additions touching r. For an
	// existing node every initial-present incident triple was already
	// flipped by the adjacency expansion, so only initial-absent
	// (net-no-op) entries can still be current here — nothing to own.
	cancelRef := func(r planRef) {
		for k, ts := range trips {
			if ts.current && (k.s == r || k.o == r) {
				ts.current = false
				ts.removerOp = -1
			}
		}
	}

	for i, op := range d.ops {
		switch op.Kind {
		case OpAddEntity:
			if st := entOf(op.ID); st.live {
				continue // exists (validated same-type) — no-op
			}
			p := &pendNode{kind: EntityKind, label: op.ID, typeName: op.TypeName, live: true, n: NoNode}
			ents[op.ID] = entState{ref: planRef{n: NoNode, pend: p}, live: true}
			created[i] = p
		case OpRemoveEntity:
			st := entOf(op.ID)
			if !st.live {
				continue
			}
			ents[op.ID] = entState{ref: planRef{n: NoNode}}
			if st.ref.pend != nil {
				// In-delta incarnation: cancel it and its triples.
				st.ref.pend.live = false
				cancelRef(st.ref)
				continue
			}
			n := st.ref.n
			removedAt[i] = n
			// Expand over the pre-delta incident triples (out then in;
			// a self-loop dedups through the state map)…
			out, in := g.fpEdges(fp, n)
			for _, e := range out {
				k := tKey{s: planRef{n: n}, pred: pname(e.Pred), o: planRef{n: e.To}}
				if ts := stateOf(k); ts.current {
					ts.current = false
					ts.removerOp = -1
					ownedRems[i] = append(ownedRems[i], k)
				}
			}
			for _, e := range in {
				k := tKey{s: planRef{n: e.To}, pred: pname(e.Pred), o: planRef{n: n}}
				if ts := stateOf(k); ts.current {
					ts.current = false
					ts.removerOp = -1
					ownedRems[i] = append(ownedRems[i], k)
				}
			}
			// …and over triples this delta added onto the node.
			cancelRef(planRef{n: n})
		case OpAddTriple:
			s := entOf(op.Subject).ref
			var o planRef
			if op.ObjectIsValue {
				o, _ = valOf(op.Object, true)
			} else {
				o = entOf(op.Object).ref
			}
			k := tKey{s: s, pred: op.Pred, o: o}
			opKey[i] = k
			if ts := stateOf(k); !ts.current {
				ts.current = true
				ts.adderOp = i
			}
		case OpRemoveTriple:
			s := entOf(op.Subject).ref
			var o planRef
			if op.ObjectIsValue {
				var ok bool
				if o, ok = valOf(op.Object, false); !ok {
					continue // unknown literal: nothing to remove
				}
			} else {
				o = entOf(op.Object).ref
			}
			k := tKey{s: s, pred: op.Pred, o: o}
			opKey[i] = k
			if ts := stateOf(k); ts.current {
				ts.current = false
				ts.removerOp = i
			}
		}
	}

	// Emission: walk the ops again and keep exactly those whose effect
	// survived — the normalized record, in original op order, plus the
	// lowering worklist that mirrors it.
	p := &planned{perShard: make(map[int][]shardOp), pids: make(map[string]PredID)}
	for i, op := range d.ops {
		switch op.Kind {
		case OpAddEntity:
			if pn := created[i]; pn != nil && pn.live {
				p.norm = append(p.norm, op)
				p.emit = append(p.emit, emitItem{kind: eAlloc, pend: pn})
			}
		case OpRemoveEntity:
			if n, ok := removedAt[i]; ok {
				p.norm = append(p.norm, op)
				p.emit = append(p.emit, emitItem{kind: eTombstone, n: n, keys: ownedRems[i]})
			}
		case OpAddTriple:
			k, ok := opKey[i]
			if !ok {
				continue
			}
			if ts := trips[k]; !ts.initial && ts.current && ts.adderOp == i {
				p.norm = append(p.norm, op)
				p.emit = append(p.emit, emitItem{kind: eAddTriple, key: k})
			}
		case OpRemoveTriple:
			k, ok := opKey[i]
			if !ok {
				continue
			}
			if ts := trips[k]; ts.initial && !ts.current && ts.removerOp == i {
				p.norm = append(p.norm, op)
				p.emit = append(p.emit, emitItem{kind: eRemTriple, key: k})
			}
		}
	}
	p.nAlloc = p.allocCount()
	return p
}

// emitItem is one surviving effect of a planned delta, in normalized
// order, still at planning resolution (lowerPlanned resolves it).
type emitItem struct {
	kind uint8
	pend *pendNode
	n    NodeID
	key  tKey
	keys []tKey // eTombstone: the expansion removals this entity owns
}

const (
	eAlloc uint8 = iota
	eTombstone
	eAddTriple
	eRemTriple
)

// lowerPlanned resolves the plan's surviving nodes — allocating them
// inline, or flipping live the slots reservePlanned put down —
// publishes their directory entries, interns its predicate names, and
// lowers the emission list into per-shard micro-ops and the
// DeltaResult. The inline (unreserved) mode runs under pl.mu, which is
// what serializes its allocations; the reserved mode runs with NO plan
// mutex, concurrently with other lowerings — its IDs are fixed and its
// shards flight-covered, and the directory lock serializes the
// publications themselves.
func (g *Graph) lowerPlanned(p *planned) {
	shardOpAdd := func(si int, op shardOp) {
		p.perShard[si] = append(p.perShard[si], op)
		p.mask |= shardBit(si)
	}
	for _, it := range p.emit {
		switch it.kind {
		case eAlloc:
			if p.reserved {
				g.flipNode(it.pend.n)
			} else {
				it.pend.typ = g.internType(it.pend.typeName)
				it.pend.n = g.allocNode(node{kind: EntityKind, typ: it.pend.typ, label: it.pend.label})
			}
			g.dir.mu.Lock()
			g.dir.entByID[it.pend.label] = it.pend.n
			g.dir.byTypeInsert(it.pend.typ, it.pend.n)
			g.dir.mu.Unlock()
			p.result.AddedEntities = append(p.result.AddedEntities, it.pend.n)
		case eTombstone:
			for _, k := range it.keys {
				g.lowerTriple(p, k, false, shardOpAdd)
			}
			// The directory is plan-authoritative in both directions:
			// entries appear at eAlloc lowering and disappear here, so a
			// remove + re-add of the same external ID in one delta
			// leaves the re-added incarnation's entry in place.
			typ, _ := g.EntityType(it.n)
			shardOpAdd(shardIndex(it.n), shardOp{kind: sDead, n: it.n})
			g.dir.mu.Lock()
			delete(g.dir.entByID, g.Label(it.n))
			if int(typ) < len(g.dir.byType) {
				g.dir.byType[typ] = removeOne(g.dir.byType[typ], it.n)
			}
			g.dir.mu.Unlock()
			p.result.RemovedEntities = append(p.result.RemovedEntities, it.n)
		case eAddTriple:
			g.lowerTriple(p, it.key, true, shardOpAdd)
		case eRemTriple:
			g.lowerTriple(p, it.key, false, shardOpAdd)
		}
	}
	p.tripDelta = int64(len(p.result.AddedTriples) - len(p.result.RemovedTriples))
}

// lowerTriple lowers one net triple add or removal into micro-ops on
// the subject's and object's shards.
func (g *Graph) lowerTriple(p *planned, k tKey, add bool, emit func(int, shardOp)) {
	s := k.s.n
	if k.s.pend != nil {
		s = k.s.pend.n
	}
	pid, cached := p.pids[k.pred]
	if !cached {
		if add {
			pid = g.internPred(k.pred)
		} else {
			pid, _ = g.PredByName(k.pred)
		}
		p.pids[k.pred] = pid
	}
	var o NodeID
	oIsValue := false
	if k.o.pend != nil {
		if pn := k.o.pend; pn.kind == ValueKind && !pn.published {
			if pn.n == NoNode {
				pn.n = g.allocNode(node{kind: ValueKind, label: pn.label})
			} else {
				g.flipNode(pn.n) // reserved slot
			}
			g.dir.mu.Lock()
			g.dir.valByLit[pn.label] = pn.n
			g.dir.mu.Unlock()
			pn.published = true
		}
		o = k.o.pend.n
		oIsValue = k.o.pend.kind == ValueKind
	} else {
		o = k.o.n
		oIsValue = g.IsValue(o)
	}
	ssi, osi := shardIndex(s), shardIndex(o)
	tr := Triple{S: s, P: pid, O: o}
	if add {
		emit(ssi, shardOp{kind: sAddKey, n: s, e: Edge{Pred: pid, To: o}})
		emit(ssi, shardOp{kind: sOutAdd, n: s, e: Edge{Pred: pid, To: o}})
		emit(osi, shardOp{kind: sInAdd, n: o, e: Edge{Pred: pid, To: s}})
		if oIsValue {
			emit(osi, shardOp{kind: sPostAdd, n: s, pk: postKey{p: pid, v: o}})
		}
		p.result.AddedTriples = append(p.result.AddedTriples, tr)
	} else {
		emit(ssi, shardOp{kind: sDelKey, n: s, e: Edge{Pred: pid, To: o}})
		emit(ssi, shardOp{kind: sOutDel, n: s, e: Edge{Pred: pid, To: o}})
		emit(osi, shardOp{kind: sInDel, n: o, e: Edge{Pred: pid, To: s}})
		if oIsValue {
			emit(osi, shardOp{kind: sPostDel, n: s, pk: postKey{p: pid, v: o}})
		}
		p.result.RemovedTriples = append(p.result.RemovedTriples, tr)
	}
}

// executePlanned applies a lowered plan: per-shard micro-op lists in
// parallel (each shard's list under that shard's write lock, so
// readers observe the shard's whole sub-delta atomically), then the
// triple-count adjustment. Directory changes already happened at
// lowering (the directory is plan-authoritative).
func (g *Graph) executePlanned(p *planned) {
	shards := make([]int, 0, len(p.perShard))
	for si := range p.perShard {
		shards = append(shards, si)
	}
	// Disjoint shards make the final state order-independent, but a
	// deterministic application order keeps traces and lock-wait
	// profiles reproducible run to run.
	sort.Ints(shards)
	engine.Parallel(g.ob.Load().eng(), engine.Workers(0), len(shards), func(i int) {
		g.applyShardOps(shards[i], p.perShard[shards[i]])
	})
	g.nTrip.Add(p.tripDelta)
}

// applyShardOps runs one shard's micro-ops under its write lock. Every
// slice mutation keeps the handed-out-snapshot contract: removals copy
// (removeOne / postRemove), insertions append or copy (postInsert).
// The shard's epoch is bumped in the same critical section, so any
// optimistic footprint that read this shard before the mutation fails
// its revalidation.
func (g *Graph) applyShardOps(si int, ops []shardOp) {
	sh := &g.shards[si]
	ob := g.ob.Load()
	tLock := ob.shardLockWait().Start()
	sh.mu.Lock()
	ob.shardLockWait().ObserveSince(tLock)
	ob.shardMutations().At(si).Add(int64(len(ops)))
	defer sh.mu.Unlock()
	sh.epoch.Add(1)
	for _, op := range ops {
		switch op.kind {
		case sAddKey:
			sh.triples[tripleKey{op.n, op.e.Pred, op.e.To}] = struct{}{}
		case sDelKey:
			delete(sh.triples, tripleKey{op.n, op.e.Pred, op.e.To})
		case sOutAdd:
			sh.out[localIndex(op.n)] = append(sh.out[localIndex(op.n)], op.e)
		case sOutDel:
			sh.out[localIndex(op.n)] = removeOne(sh.out[localIndex(op.n)], op.e)
		case sInAdd:
			sh.in[localIndex(op.n)] = append(sh.in[localIndex(op.n)], op.e)
		case sInDel:
			sh.in[localIndex(op.n)] = removeOne(sh.in[localIndex(op.n)], op.e)
		case sPostAdd:
			postInsert(sh, op.pk.p, op.pk.v, op.n)
			ob.postingLen().Observe(int64(len(sh.post[op.pk])))
		case sPostDel:
			postRemove(sh, op.pk.p, op.pk.v, op.n)
		case sDead:
			sh.nodes[localIndex(op.n)].dead = true
		}
	}
}
