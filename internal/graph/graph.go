// Package graph implements the triple-based graph model of "Keys for
// Graphs" (Fan et al., PVLDB 2015), Section 2.1.
//
// A graph is a set of triples (s, p, o) where the subject s is an entity,
// p is a predicate, and the object o is either an entity or a data value.
// Entities carry a type; values are opaque literals. The graph is also a
// directed edge-labeled graph: entities and values are nodes, and each
// triple contributes an edge from s to o labeled p.
//
// Graphs are built incrementally with AddEntity/AddValue/AddTriple and
// mutated afterwards with RemoveTriple and ApplyDelta (see delta.go).
// The store is shard-partitioned by node ID (see shard.go) and writes
// go through the planned write path (see plan.go): a mutation is
// planned — validated, coalesced to its net effect, split into
// per-shard micro-ops — under a short planning lock, and then executed
// against only the shards it touches. Writers whose shard footprints
// are disjoint execute concurrently; overlapping writers serialize in
// plan order. Readers only lock the shard they touch, so any number of
// readers may run concurrently with the writers — a reader blocks only
// while a writer is writing the very shard it reads. Slices handed out
// by accessors (Out, In, EntitiesOfType, ValueSubjects) are never
// mutated in place, so they remain valid snapshots across later
// mutations.
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node (entity or value) within one Graph. IDs are
// dense indexes assigned in insertion order, so they can be used to index
// per-node slices.
type NodeID int32

// PredID identifies an interned predicate name within one Graph.
type PredID int32

// TypeID identifies an interned entity type name within one Graph.
type TypeID int32

// NoNode is returned by lookups that find nothing.
const NoNode NodeID = -1

// Kind distinguishes entity nodes from value nodes.
type Kind uint8

const (
	// EntityKind marks a node that represents an entity with an ID and a type.
	EntityKind Kind = iota
	// ValueKind marks a node that represents a data value.
	ValueKind
)

// Edge is one half of a stored triple: the predicate plus the node at the
// other end. Out-edges of s store (p, o); in-edges of o store (p, s).
type Edge struct {
	Pred PredID
	To   NodeID
}

type node struct {
	kind  Kind
	typ   TypeID // entities only; 0 is a valid TypeID, guarded by kind
	label string // external entity ID, or the value literal
	// dead marks a tombstoned entity (see Delta.RemoveEntity): the slot
	// keeps its dense ID and label, but the node is no longer an entity
	// — it has no type, no edges, and no directory entry.
	dead bool
}

type tripleKey struct {
	s NodeID
	p PredID
	o NodeID
}

// Triple is one stored triple (s, p, o), exported for provenance
// tracking and delta reporting. It is comparable and usable as a map
// key.
type Triple struct {
	S NodeID
	P PredID
	O NodeID
}

// directory holds the name maps shared by all shards. Its mutex
// follows the same discipline as a shard's: the (serialized) writer
// locks it for writing around each update; readers take the read lock.
type directory struct {
	mu       sync.RWMutex
	preds    *Interner
	types    *Interner
	entByID  map[string]NodeID // external entity ID -> node
	valByLit map[string]NodeID // value literal -> node
	byType   [][]NodeID        // TypeID -> entity nodes of that type
}

// byTypeInsert records entity n under type t, keeping each per-type
// list sorted by NodeID. Caller holds dir.mu for writing. Group-commit
// lowerings can publish entities out of dense-ID order (their commits
// finish out of order), and EntitiesOfType's iteration order feeds
// deterministic derivations — sorted insertion makes the list
// independent of lowering order, identical to a serial replay. The
// append fast path keeps the common in-order case O(1); the insert
// path copies, preserving the handed-out-snapshot contract.
func (d *directory) byTypeInsert(t TypeID, n NodeID) {
	for int(t) >= len(d.byType) {
		d.byType = append(d.byType, nil)
	}
	ns := d.byType[t]
	if len(ns) == 0 || ns[len(ns)-1] < n {
		d.byType[t] = append(ns, n)
		return
	}
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= n })
	out := make([]NodeID, 0, len(ns)+1)
	out = append(out, ns[:i]...)
	out = append(out, n)
	d.byType[t] = append(out, ns[i:]...)
}

// Graph is an in-memory triple store, shard-partitioned by node ID for
// concurrent access (see shard.go). The zero value is not usable; call
// New.
type Graph struct {
	// pl is the write-path planner: plans are serialized by its mutex
	// (short: validation, coalescing, allocation), executions are
	// admission-controlled by shard footprint so disjoint writers run
	// concurrently. Readers never touch it. See plan.go.
	pl planner

	shards [ShardCount]shard
	dir    directory

	nNodes atomic.Int32
	nTrip  atomic.Int64

	// ob is the optional instrument bundle (see obs.go). Loaded once
	// per delta / shard execution; nil means uninstrumented.
	ob atomic.Pointer[Obs]
}

// New returns an empty graph.
func New() *Graph {
	g := &Graph{}
	g.initPlanner()
	g.dir.preds = NewInterner()
	g.dir.types = NewInterner()
	g.dir.entByID = make(map[string]NodeID)
	g.dir.valByLit = make(map[string]NodeID)
	for i := range g.shards {
		//emlint:ignore lockcontract constructor: the graph has not escaped, no reader or writer exists yet
		g.shards[i].triples = make(map[tripleKey]struct{})
		g.shards[i].post = make(map[postKey][]NodeID)
	}
	return g
}

// NumNodes reports the number of nodes (entities plus values),
// including tombstoned entities, which keep their dense IDs.
func (g *Graph) NumNodes() int { return int(g.nNodes.Load()) }

// NumTriples reports |G|, the number of triples.
func (g *Graph) NumTriples() int { return int(g.nTrip.Load()) }

// NumEntities reports the number of live entity nodes.
func (g *Graph) NumEntities() int {
	g.dir.mu.RLock()
	defer g.dir.mu.RUnlock()
	n := 0
	for _, ns := range g.dir.byType {
		n += len(ns)
	}
	return n
}

// AddEntity returns the node for the entity with the given external ID,
// creating it with the given type if it does not exist. Adding the same
// ID twice with different types is an error.
func (g *Graph) AddEntity(id, typeName string) (NodeID, error) {
	g.pl.mu.Lock()
	defer g.pl.mu.Unlock()
	var n NodeID
	var exists bool
	// If the entity exists, an in-flight execution over its shard may
	// be removing it: admit the shard before trusting the lookup (the
	// lookup re-runs after every wait). If the ID is pending — reserved
	// by a group commit that has not lowered yet — wait for it to
	// resolve one way or the other rather than double-allocate it.
	g.admit(func() uint32 {
		g.dir.mu.RLock()
		n, exists = g.dir.entByID[id]
		g.dir.mu.RUnlock()
		if exists {
			return shardBit(shardIndex(n))
		}
		return 0
	}, func() bool {
		_, pend := g.pl.pendEnts[id]
		return !pend
	})
	if exists {
		nd := g.nodeView(n)
		if have := g.TypeName(nd.typ); have != typeName {
			return NoNode, fmt.Errorf("graph: entity %q redeclared with type %q (was %q)",
				id, typeName, have)
		}
		return n, nil
	}
	t := g.internType(typeName)
	n = g.allocNode(node{kind: EntityKind, typ: t, label: id})
	g.dir.mu.Lock()
	g.dir.entByID[id] = n
	g.dir.byTypeInsert(t, n)
	g.dir.mu.Unlock()
	return n, nil
}

// MustAddEntity is AddEntity for programmatic construction where the
// caller guarantees type consistency; it panics on error.
func (g *Graph) MustAddEntity(id, typeName string) NodeID {
	n, err := g.AddEntity(id, typeName)
	if err != nil {
		panic(err)
	}
	return n
}

// AddValue returns the node for the given value literal, creating it if
// needed. Equal literals share one node (value equality, §2.1).
func (g *Graph) AddValue(lit string) NodeID {
	g.pl.mu.Lock()
	defer g.pl.mu.Unlock()
	return g.addValue(lit)
}

// addValue is AddValue with the plan mutex held. Values are never
// removed, so an existing literal needs no admission; a new one only
// touches its fresh slot, which no in-flight execution can reference —
// unless the literal is pending (reserved by a group commit that has
// not lowered yet), in which case wait for the reservation to resolve
// rather than double-allocate it.
func (g *Graph) addValue(lit string) NodeID {
	for {
		g.dir.mu.RLock()
		n, ok := g.dir.valByLit[lit]
		g.dir.mu.RUnlock()
		if ok {
			return n
		}
		if _, pend := g.pl.pendVals[lit]; !pend {
			break
		}
		g.pl.cond.Wait()
	}
	n := g.allocNode(node{kind: ValueKind, label: lit})
	g.dir.mu.Lock()
	g.dir.valByLit[lit] = n
	g.dir.mu.Unlock()
	return n
}

// AddTriple records the triple (s, p, o). The subject must be an entity
// node. Duplicate triples are ignored.
func (g *Graph) AddTriple(s NodeID, pred string, o NodeID) error {
	g.pl.mu.Lock()
	defer g.pl.mu.Unlock()
	g.waitMask(shardBit(shardIndex(s)) | shardBit(shardIndex(o)))
	return g.addTriple(s, pred, o)
}

// addTriple is AddTriple with the plan mutex held and both endpoint
// shards admitted (no in-flight execution touches them).
func (g *Graph) addTriple(s NodeID, pred string, o NodeID) error {
	if !g.valid(s) || !g.valid(o) {
		return fmt.Errorf("graph: AddTriple with unknown node (s=%d, o=%d)", s, o)
	}
	ssh, osh := g.shardOf(s), g.shardOf(o)
	snd := ssh.nodes[localIndex(s)]
	if snd.kind != EntityKind || snd.dead {
		return fmt.Errorf("graph: triple subject %q is not a live entity", snd.label)
	}
	p := g.internPred(pred)
	k := tripleKey{s, p, o}
	if _, dup := ssh.triples[k]; dup {
		return nil
	}
	okind := osh.nodes[localIndex(o)].kind
	ssh.mu.Lock()
	ssh.epoch.Add(1)
	ssh.triples[k] = struct{}{}
	ssh.out[localIndex(s)] = append(ssh.out[localIndex(s)], Edge{Pred: p, To: o})
	ssh.mu.Unlock()
	osh.mu.Lock()
	osh.epoch.Add(1)
	osh.in[localIndex(o)] = append(osh.in[localIndex(o)], Edge{Pred: p, To: s})
	if okind == ValueKind {
		postInsert(osh, p, o, s)
	}
	osh.mu.Unlock()
	g.nTrip.Add(1)
	return nil
}

// RemoveTriple deletes the triple (s, p, o) if present and reports
// whether it was. Nodes are never removed: an entity or value left
// without edges stays in the graph (and keeps its dense NodeID).
func (g *Graph) RemoveTriple(s NodeID, pred string, o NodeID) bool {
	g.dir.mu.RLock()
	pid, ok := g.dir.preds.Lookup(pred)
	g.dir.mu.RUnlock()
	if !ok {
		return false
	}
	return g.RemoveTripleID(s, PredID(pid), o)
}

// RemoveTripleID is RemoveTriple with the predicate already resolved.
func (g *Graph) RemoveTripleID(s NodeID, p PredID, o NodeID) bool {
	g.pl.mu.Lock()
	defer g.pl.mu.Unlock()
	g.waitMask(shardBit(shardIndex(s)) | shardBit(shardIndex(o)))
	return g.removeTripleID(s, p, o)
}

// removeTripleID is RemoveTripleID with the plan mutex held and both
// endpoint shards admitted.
func (g *Graph) removeTripleID(s NodeID, p PredID, o NodeID) bool {
	ssh := g.shardOf(s)
	k := tripleKey{s, p, o}
	if _, ok := ssh.triples[k]; !ok {
		return false
	}
	ssh.mu.Lock()
	ssh.epoch.Add(1)
	delete(ssh.triples, k)
	ssh.out[localIndex(s)] = removeOne(ssh.out[localIndex(s)], Edge{Pred: p, To: o})
	ssh.mu.Unlock()
	osh := g.shardOf(o)
	okind := osh.nodes[localIndex(o)].kind
	osh.mu.Lock()
	osh.epoch.Add(1)
	osh.in[localIndex(o)] = removeOne(osh.in[localIndex(o)], Edge{Pred: p, To: s})
	if okind == ValueKind {
		postRemove(osh, p, o, s)
	}
	osh.mu.Unlock()
	g.nTrip.Add(-1)
	return true
}

// removeOne returns the slice without the first occurrence of x,
// preserving the order of the remaining elements (so removal does not
// perturb deterministic iteration order elsewhere). It copies instead
// of compacting in place: graph-owned slices previously handed out by
// Out/In/ValueSubjects keep their pre-removal contents, so a caller
// iterating one across a RemoveTriple never sees shifted or duplicated
// elements.
func removeOne[T comparable](xs []T, x T) []T {
	for i, cur := range xs {
		if cur == x {
			out := make([]T, 0, len(xs)-1)
			out = append(out, xs[:i]...)
			return append(out, xs[i+1:]...)
		}
	}
	return xs
}

// MustAddTriple is AddTriple that panics on error.
func (g *Graph) MustAddTriple(s NodeID, pred string, o NodeID) {
	if err := g.AddTriple(s, pred, o); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < int(g.nNodes.Load()) }

// IsEntity reports whether n is a live entity node.
func (g *Graph) IsEntity(n NodeID) bool {
	if !g.valid(n) {
		return false
	}
	nd := g.nodeView(n)
	return nd.kind == EntityKind && !nd.dead
}

// IsValue reports whether n is a value node.
func (g *Graph) IsValue(n NodeID) bool {
	return g.valid(n) && g.nodeView(n).kind == ValueKind
}

// EntityType returns the type of n if n is a live entity, in one
// shard-lock round trip — the hot-path combination of IsEntity and
// TypeOf (neighborhood scans classify every node they visit).
func (g *Graph) EntityType(n NodeID) (TypeID, bool) {
	if !g.valid(n) {
		return 0, false
	}
	nd := g.nodeView(n)
	if nd.kind != EntityKind || nd.dead {
		return 0, false
	}
	return nd.typ, true
}

// TypeOf returns the type of entity n. It panics if n is not a live
// entity.
func (g *Graph) TypeOf(n NodeID) TypeID {
	if !g.valid(n) {
		panic(fmt.Sprintf("graph: TypeOf(%d) on non-entity", n))
	}
	nd := g.nodeView(n)
	if nd.kind != EntityKind || nd.dead {
		panic(fmt.Sprintf("graph: TypeOf(%d) on non-entity", n))
	}
	return nd.typ
}

// Label returns the external entity ID of an entity node, or the literal
// of a value node. Tombstoned entities keep their label.
func (g *Graph) Label(n NodeID) string { return g.nodeView(n).label }

// TypeName returns the name of the given type.
func (g *Graph) TypeName(t TypeID) string {
	g.dir.mu.RLock()
	defer g.dir.mu.RUnlock()
	return g.dir.types.Name(int32(t))
}

// TypeByName returns the TypeID for a type name, if any entity of that
// type exists.
func (g *Graph) TypeByName(name string) (TypeID, bool) {
	g.dir.mu.RLock()
	defer g.dir.mu.RUnlock()
	id, ok := g.dir.types.Lookup(name)
	return TypeID(id), ok
}

// NumTypes reports the number of distinct entity types.
func (g *Graph) NumTypes() int {
	g.dir.mu.RLock()
	defer g.dir.mu.RUnlock()
	return g.dir.types.Len()
}

// PredName returns the name of the given predicate.
func (g *Graph) PredName(p PredID) string {
	g.dir.mu.RLock()
	defer g.dir.mu.RUnlock()
	return g.dir.preds.Name(int32(p))
}

// PredByName returns the PredID for a predicate name, if it occurs in G.
func (g *Graph) PredByName(name string) (PredID, bool) {
	g.dir.mu.RLock()
	defer g.dir.mu.RUnlock()
	id, ok := g.dir.preds.Lookup(name)
	return PredID(id), ok
}

// NumPreds reports the number of distinct predicates.
func (g *Graph) NumPreds() int {
	g.dir.mu.RLock()
	defer g.dir.mu.RUnlock()
	return g.dir.preds.Len()
}

// Entity returns the node for the entity with the given external ID.
func (g *Graph) Entity(id string) (NodeID, bool) {
	g.dir.mu.RLock()
	defer g.dir.mu.RUnlock()
	n, ok := g.dir.entByID[id]
	return n, ok
}

// Value returns the node for the given literal, if present.
func (g *Graph) Value(lit string) (NodeID, bool) {
	g.dir.mu.RLock()
	defer g.dir.mu.RUnlock()
	n, ok := g.dir.valByLit[lit]
	return n, ok
}

// EntitiesOfType returns all live entity nodes with type t. The
// returned slice is owned by the graph and must not be modified; it is
// never mutated in place, so it stays a valid snapshot across later
// mutations.
func (g *Graph) EntitiesOfType(t TypeID) []NodeID {
	g.dir.mu.RLock()
	defer g.dir.mu.RUnlock()
	if int(t) >= len(g.dir.byType) {
		return nil
	}
	return g.dir.byType[t]
}

// Out returns the out-edges of n: for each stored triple (n, p, o) an
// Edge{p, o}. The slice is owned by the graph and must not be modified;
// it is never mutated in place, so a slice obtained before a
// RemoveTriple keeps its pre-removal contents.
func (g *Graph) Out(n NodeID) []Edge {
	sh := g.shardOf(n)
	sh.mu.RLock()
	e := sh.out[localIndex(n)]
	sh.mu.RUnlock()
	return e
}

// In returns the in-edges of n: for each stored triple (s, p, n) an
// Edge{p, s}. The slice is owned by the graph and must not be modified;
// it is never mutated in place, so a slice obtained before a
// RemoveTriple keeps its pre-removal contents.
func (g *Graph) In(n NodeID) []Edge {
	sh := g.shardOf(n)
	sh.mu.RLock()
	e := sh.in[localIndex(n)]
	sh.mu.RUnlock()
	return e
}

// HasTriple reports whether the triple (s, p, o) is in G.
func (g *Graph) HasTriple(s NodeID, p PredID, o NodeID) bool {
	sh := g.shardOf(s)
	sh.mu.RLock()
	_, ok := sh.triples[tripleKey{s, p, o}]
	sh.mu.RUnlock()
	return ok
}

// Degree returns the undirected degree of n (out plus in edges).
func (g *Graph) Degree(n NodeID) int {
	sh := g.shardOf(n)
	l := localIndex(n)
	sh.mu.RLock()
	d := len(sh.out[l]) + len(sh.in[l])
	sh.mu.RUnlock()
	return d
}

// Nodes returns the range of valid node IDs as [0, NumNodes).
// It exists for documentation; callers typically loop over NumNodes.
func (g *Graph) Nodes() int { return g.NumNodes() }

// EachEntity calls fn for every live entity node, in ID order.
func (g *Graph) EachEntity(fn func(NodeID)) {
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		if g.IsEntity(NodeID(i)) {
			fn(NodeID(i))
		}
	}
}

// EachTriple calls fn for every triple (s, p, o) in G, in unspecified
// order.
func (g *Graph) EachTriple(fn func(s NodeID, p PredID, o NodeID)) {
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		s := NodeID(i)
		for _, e := range g.Out(s) {
			fn(s, e.Pred, e.To)
		}
	}
}

// Triples materializes every triple of G, in unspecified order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.NumTriples())
	g.EachTriple(func(s NodeID, p PredID, o NodeID) {
		out = append(out, Triple{S: s, P: p, O: o})
	})
	return out
}
