// Package graph implements the triple-based graph model of "Keys for
// Graphs" (Fan et al., PVLDB 2015), Section 2.1.
//
// A graph is a set of triples (s, p, o) where the subject s is an entity,
// p is a predicate, and the object o is either an entity or a data value.
// Entities carry a type; values are opaque literals. The graph is also a
// directed edge-labeled graph: entities and values are nodes, and each
// triple contributes an edge from s to o labeled p.
//
// Graphs are built incrementally with AddEntity/AddValue/AddTriple and are
// safe for concurrent readers once building has finished; no method
// mutates a graph after construction except the Add* builders,
// RemoveTriple, and ApplyDelta (see delta.go). Mutation is not safe
// concurrently with readers.
package graph

import "fmt"

// NodeID identifies a node (entity or value) within one Graph. IDs are
// dense indexes assigned in insertion order, so they can be used to index
// per-node slices.
type NodeID int32

// PredID identifies an interned predicate name within one Graph.
type PredID int32

// TypeID identifies an interned entity type name within one Graph.
type TypeID int32

// NoNode is returned by lookups that find nothing.
const NoNode NodeID = -1

// Kind distinguishes entity nodes from value nodes.
type Kind uint8

const (
	// EntityKind marks a node that represents an entity with an ID and a type.
	EntityKind Kind = iota
	// ValueKind marks a node that represents a data value.
	ValueKind
)

// Edge is one half of a stored triple: the predicate plus the node at the
// other end. Out-edges of s store (p, o); in-edges of o store (p, s).
type Edge struct {
	Pred PredID
	To   NodeID
}

type node struct {
	kind  Kind
	typ   TypeID // entities only; 0 is a valid TypeID, guarded by kind
	label string // external entity ID, or the value literal
}

type tripleKey struct {
	s NodeID
	p PredID
	o NodeID
}

// Triple is one stored triple (s, p, o), exported for provenance
// tracking and delta reporting. It is comparable and usable as a map
// key.
type Triple struct {
	S NodeID
	P PredID
	O NodeID
}

// Graph is an in-memory triple store. The zero value is not usable; call
// New.
type Graph struct {
	nodes []node
	out   [][]Edge
	in    [][]Edge

	preds *Interner
	types *Interner

	entByID  map[string]NodeID // external entity ID -> node
	valByLit map[string]NodeID // value literal -> node
	byType   [][]NodeID        // TypeID -> entity nodes of that type

	triples map[tripleKey]struct{}
	nTrip   int

	valIndex valueIndex
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		preds:    NewInterner(),
		types:    NewInterner(),
		entByID:  make(map[string]NodeID),
		valByLit: make(map[string]NodeID),
		triples:  make(map[tripleKey]struct{}),
		valIndex: newValueIndex(),
	}
}

// NumNodes reports the number of nodes (entities plus values).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumTriples reports |G|, the number of triples.
func (g *Graph) NumTriples() int { return g.nTrip }

// NumEntities reports the number of entity nodes.
func (g *Graph) NumEntities() int {
	n := 0
	for _, ns := range g.byType {
		n += len(ns)
	}
	return n
}

// AddEntity returns the node for the entity with the given external ID,
// creating it with the given type if it does not exist. Adding the same
// ID twice with different types is an error.
func (g *Graph) AddEntity(id, typeName string) (NodeID, error) {
	if n, ok := g.entByID[id]; ok {
		if g.types.Name(int32(g.nodes[n].typ)) != typeName {
			return NoNode, fmt.Errorf("graph: entity %q redeclared with type %q (was %q)",
				id, typeName, g.types.Name(int32(g.nodes[n].typ)))
		}
		return n, nil
	}
	t := TypeID(g.types.Intern(typeName))
	n := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, node{kind: EntityKind, typ: t, label: id})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.entByID[id] = n
	for int(t) >= len(g.byType) {
		g.byType = append(g.byType, nil)
	}
	g.byType[t] = append(g.byType[t], n)
	return n, nil
}

// MustAddEntity is AddEntity for programmatic construction where the
// caller guarantees type consistency; it panics on error.
func (g *Graph) MustAddEntity(id, typeName string) NodeID {
	n, err := g.AddEntity(id, typeName)
	if err != nil {
		panic(err)
	}
	return n
}

// AddValue returns the node for the given value literal, creating it if
// needed. Equal literals share one node (value equality, §2.1).
func (g *Graph) AddValue(lit string) NodeID {
	if n, ok := g.valByLit[lit]; ok {
		return n
	}
	n := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, node{kind: ValueKind, label: lit})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.valByLit[lit] = n
	return n
}

// AddTriple records the triple (s, p, o). The subject must be an entity
// node. Duplicate triples are ignored.
func (g *Graph) AddTriple(s NodeID, pred string, o NodeID) error {
	if !g.valid(s) || !g.valid(o) {
		return fmt.Errorf("graph: AddTriple with unknown node (s=%d, o=%d)", s, o)
	}
	if g.nodes[s].kind != EntityKind {
		return fmt.Errorf("graph: triple subject %q is a value, not an entity", g.nodes[s].label)
	}
	p := PredID(g.preds.Intern(pred))
	k := tripleKey{s, p, o}
	if _, dup := g.triples[k]; dup {
		return nil
	}
	g.triples[k] = struct{}{}
	g.out[s] = append(g.out[s], Edge{Pred: p, To: o})
	g.in[o] = append(g.in[o], Edge{Pred: p, To: s})
	g.valIndex.add(p, o, s, g.nodes[o].kind)
	g.nTrip++
	return nil
}

// RemoveTriple deletes the triple (s, p, o) if present and reports
// whether it was. Nodes are never removed: an entity or value left
// without edges stays in the graph (and keeps its dense NodeID).
func (g *Graph) RemoveTriple(s NodeID, pred string, o NodeID) bool {
	pid, ok := g.preds.Lookup(pred)
	if !ok {
		return false
	}
	return g.RemoveTripleID(s, PredID(pid), o)
}

// RemoveTripleID is RemoveTriple with the predicate already resolved.
func (g *Graph) RemoveTripleID(s NodeID, p PredID, o NodeID) bool {
	k := tripleKey{s, p, o}
	if _, ok := g.triples[k]; !ok {
		return false
	}
	delete(g.triples, k)
	g.out[s] = removeOne(g.out[s], Edge{Pred: p, To: o})
	g.in[o] = removeOne(g.in[o], Edge{Pred: p, To: s})
	g.valIndex.remove(p, o, s, g.nodes[o].kind)
	g.nTrip--
	return true
}

// removeOne returns the slice without the first occurrence of x,
// preserving the order of the remaining elements (so removal does not
// perturb deterministic iteration order elsewhere). It copies instead
// of compacting in place: graph-owned slices previously handed out by
// Out/In/ValueSubjects keep their pre-removal contents, so a caller
// iterating one across a RemoveTriple never sees shifted or duplicated
// elements.
func removeOne[T comparable](xs []T, x T) []T {
	for i, cur := range xs {
		if cur == x {
			out := make([]T, 0, len(xs)-1)
			out = append(out, xs[:i]...)
			return append(out, xs[i+1:]...)
		}
	}
	return xs
}

// MustAddTriple is AddTriple that panics on error.
func (g *Graph) MustAddTriple(s NodeID, pred string, o NodeID) {
	if err := g.AddTriple(s, pred, o); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.nodes) }

// IsEntity reports whether n is an entity node.
func (g *Graph) IsEntity(n NodeID) bool { return g.valid(n) && g.nodes[n].kind == EntityKind }

// IsValue reports whether n is a value node.
func (g *Graph) IsValue(n NodeID) bool { return g.valid(n) && g.nodes[n].kind == ValueKind }

// TypeOf returns the type of entity n. It panics if n is not an entity.
func (g *Graph) TypeOf(n NodeID) TypeID {
	if !g.IsEntity(n) {
		panic(fmt.Sprintf("graph: TypeOf(%d) on non-entity", n))
	}
	return g.nodes[n].typ
}

// Label returns the external entity ID of an entity node, or the literal
// of a value node.
func (g *Graph) Label(n NodeID) string { return g.nodes[n].label }

// TypeName returns the name of the given type.
func (g *Graph) TypeName(t TypeID) string { return g.types.Name(int32(t)) }

// TypeByName returns the TypeID for a type name, if any entity of that
// type exists.
func (g *Graph) TypeByName(name string) (TypeID, bool) {
	id, ok := g.types.Lookup(name)
	return TypeID(id), ok
}

// NumTypes reports the number of distinct entity types.
func (g *Graph) NumTypes() int { return g.types.Len() }

// PredName returns the name of the given predicate.
func (g *Graph) PredName(p PredID) string { return g.preds.Name(int32(p)) }

// PredByName returns the PredID for a predicate name, if it occurs in G.
func (g *Graph) PredByName(name string) (PredID, bool) {
	id, ok := g.preds.Lookup(name)
	return PredID(id), ok
}

// NumPreds reports the number of distinct predicates.
func (g *Graph) NumPreds() int { return g.preds.Len() }

// Entity returns the node for the entity with the given external ID.
func (g *Graph) Entity(id string) (NodeID, bool) {
	n, ok := g.entByID[id]
	return n, ok
}

// Value returns the node for the given literal, if present.
func (g *Graph) Value(lit string) (NodeID, bool) {
	n, ok := g.valByLit[lit]
	return n, ok
}

// EntitiesOfType returns all entity nodes with type t. The returned slice
// is owned by the graph and must not be modified.
func (g *Graph) EntitiesOfType(t TypeID) []NodeID {
	if int(t) >= len(g.byType) {
		return nil
	}
	return g.byType[t]
}

// Out returns the out-edges of n: for each stored triple (n, p, o) an
// Edge{p, o}. The slice is owned by the graph and must not be modified;
// it is never mutated in place, so a slice obtained before a
// RemoveTriple keeps its pre-removal contents.
func (g *Graph) Out(n NodeID) []Edge { return g.out[n] }

// In returns the in-edges of n: for each stored triple (s, p, n) an
// Edge{p, s}. The slice is owned by the graph and must not be modified;
// it is never mutated in place, so a slice obtained before a
// RemoveTriple keeps its pre-removal contents.
func (g *Graph) In(n NodeID) []Edge { return g.in[n] }

// HasTriple reports whether the triple (s, p, o) is in G.
func (g *Graph) HasTriple(s NodeID, p PredID, o NodeID) bool {
	_, ok := g.triples[tripleKey{s, p, o}]
	return ok
}

// Degree returns the undirected degree of n (out plus in edges).
func (g *Graph) Degree(n NodeID) int { return len(g.out[n]) + len(g.in[n]) }

// Nodes returns the range of valid node IDs as [0, NumNodes).
// It exists for documentation; callers typically loop over NumNodes.
func (g *Graph) Nodes() int { return len(g.nodes) }

// EachEntity calls fn for every entity node.
func (g *Graph) EachEntity(fn func(NodeID)) {
	for i, nd := range g.nodes {
		if nd.kind == EntityKind {
			fn(NodeID(i))
		}
	}
}

// EachTriple calls fn for every triple (s, p, o) in G, in unspecified
// order.
func (g *Graph) EachTriple(fn func(s NodeID, p PredID, o NodeID)) {
	for s, edges := range g.out {
		for _, e := range edges {
			fn(NodeID(s), e.Pred, e.To)
		}
	}
}

// Triples materializes every triple of G, in unspecified order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.nTrip)
	g.EachTriple(func(s NodeID, p PredID, o NodeID) {
		out = append(out, Triple{S: s, P: p, O: o})
	})
	return out
}
