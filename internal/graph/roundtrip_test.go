package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randomTextGraph builds a random graph: a few types, entities with typed
// edges among themselves and value edges, including the awkward cases
// (labels with tabs/quotes/unicode in values, colons in entity IDs,
// isolated entities).
func randomTextGraph(rng *rand.Rand) *Graph {
	g := New()
	nTypes := 1 + rng.Intn(4)
	nEnts := 2 + rng.Intn(30)
	nVals := 1 + rng.Intn(15)
	nPreds := 1 + rng.Intn(6)

	ents := make([]NodeID, nEnts)
	for i := range ents {
		id := fmt.Sprintf("e%d", i)
		if rng.Intn(5) == 0 {
			id = fmt.Sprintf("ns:%d:e%d", rng.Intn(3), i) // colons are legal in IDs
		}
		ents[i] = g.MustAddEntity(id, fmt.Sprintf("T%d", rng.Intn(nTypes)))
	}
	vals := make([]NodeID, nVals)
	for i := range vals {
		lit := fmt.Sprintf("v%d", i)
		switch rng.Intn(6) {
		case 0:
			lit = fmt.Sprintf("tab\there%d", i)
		case 1:
			lit = fmt.Sprintf("quote\"and\\back%d", i)
		case 2:
			lit = fmt.Sprintf("uni→%d", i)
		case 3:
			lit = fmt.Sprintf("line\nbreak%d", i)
		}
		vals[i] = g.AddValue(lit)
	}
	nTrip := rng.Intn(60)
	for i := 0; i < nTrip; i++ {
		s := ents[rng.Intn(len(ents))]
		p := fmt.Sprintf("p%d", rng.Intn(nPreds))
		var o NodeID
		if rng.Intn(3) == 0 {
			o = vals[rng.Intn(len(vals))]
		} else {
			o = ents[rng.Intn(len(ents))]
		}
		g.MustAddTriple(s, p, o)
	}
	return g
}

// canonTriples renders every triple as a canonical string, for
// set-equality comparison across graphs with different NodeIDs.
func canonTriples(g *Graph) map[string]bool {
	out := make(map[string]bool)
	g.EachTriple(func(s NodeID, p PredID, o NodeID) {
		obj := g.Label(o)
		if g.IsEntity(o) {
			obj = "E:" + g.Label(o) + ":" + g.TypeName(g.TypeOf(o))
		}
		out[fmt.Sprintf("%s:%s|%s|%s", g.Label(s), g.TypeName(g.TypeOf(s)), g.PredName(p), obj)] = true
	})
	return out
}

// TestWriteParseRoundTrip is a property-style test: for many random
// graphs, Write followed by ParseText preserves the triples with their
// entity types and value literals exactly.
//
// Note the format round-trips *triples*, not isolated nodes: an entity
// or value that no triple touches has no line to live on, which is why
// entity and value counts are compared over triple-connected nodes
// only.
func TestWriteParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomTextGraph(rng)

		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			t.Fatalf("seed %d: WriteText: %v", seed, err)
		}
		g2, err := ParseText(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: ParseText: %v\ninput:\n%s", seed, err, buf.String())
		}

		if g2.NumTriples() != g.NumTriples() {
			t.Fatalf("seed %d: triples %d -> %d", seed, g.NumTriples(), g2.NumTriples())
		}
		want, got := canonTriples(g), canonTriples(g2)
		for tr := range want {
			if !got[tr] {
				t.Fatalf("seed %d: triple lost in round trip: %s", seed, tr)
			}
		}
		for tr := range got {
			if !want[tr] {
				t.Fatalf("seed %d: triple invented in round trip: %s", seed, tr)
			}
		}

		// Idempotence: a second round trip produces byte-identical
		// output (WriteText is canonical/sorted).
		var buf2 bytes.Buffer
		if err := g2.WriteText(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("seed %d: WriteText not canonical across a round trip", seed)
		}
	}
}
