package graph

import (
	"fmt"
	"testing"

	"graphkeys/internal/obs"
)

// BenchmarkInternLookup measures the read-mostly intern fast path: the
// name directories see a handful of distinct predicates and millions
// of lookups, so the hit path costs an RLock (shared, scalable) rather
// than serializing every lookup through the directory write lock.
func BenchmarkInternLookup(b *testing.B) {
	g := New()
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("pred%d", i)
		g.internPred(names[i])
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			g.internPred(names[i&63])
			i++
		}
	})
}

// BenchmarkPlanPhases splits the write path's wall time across its
// phases — optimistic plan (no lock), admission wait, plan-mutex hold
// (admit + revalidate + log + reserve), lower, commit wait — so a
// regression in one phase localizes instead of hiding in the
// aggregate. The same histograms feed the allocating leg of
// `embench -exp writepath` (phase_means_ns in BENCH_write_path.json).
func BenchmarkPlanPhases(b *testing.B) {
	g := New()
	reg := obs.NewRegistry()
	g.RegisterObs(reg)
	hook := func([]DeltaOp) (DeltaCommit, error) {
		return func() error { return nil }, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("e%d", i)
		d := (&Delta{}).
			AddEntity(id, "T").
			AddValueTriple(id, "p", fmt.Sprintf("v%d", i))
		if _, err := g.ApplyDeltaLogged(d, hook); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	snap := reg.Snapshot()
	for name, metric := range map[string]string{
		"graph.plan_ns":           "plan-ns/op",
		"graph.admission_wait_ns": "admit-ns/op",
		"graph.plan_hold_ns":      "hold-ns/op",
		"graph.lower_ns":          "lower-ns/op",
		"graph.commit_wait_ns":    "commit-ns/op",
	} {
		b.ReportMetric(snap.Histograms[name].Mean(), metric)
	}
}
