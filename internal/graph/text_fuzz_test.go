package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseText feeds arbitrary text to the graph parser. The parser
// ingests untrusted input (graph files on the command line), so it
// must never panic — it either returns a graph or an error. Inputs
// that parse must survive a Write/Parse round trip: the written form
// parses back to a graph with the same triples, and re-writing that
// graph reproduces the written form byte for byte (WriteText output is
// canonical: sorted and deterministic).
func FuzzParseText(f *testing.F) {
	f.Add("alb1:album\tname_of\t\"Anthology 2\"\n" +
		"alb1:album\trecorded_by\tart1:artist\n")
	f.Add("# comment\n\n  a:T \t p \t b:U \n")
	f.Add("a:T\tp\t\"quoted \\\"literal\\\" with \\t escapes\"\n")
	f.Add("id:with:colons:T\tp\t\"v\"\n")
	f.Add("a:T\tp\n")             // 2 fields
	f.Add("a:T\tp\tb:U\textra\n") // 4 fields
	f.Add("noType\tp\t\"v\"\n")   // bad entity token
	f.Add(":T\tp\t\"v\"\n")       // empty id
	f.Add("a:\tp\t\"v\"\n")       // empty type
	f.Add("a:T\t\t\"v\"\n")       // empty predicate
	f.Add("a:T\tp\t\"unterminated\n")
	f.Add("a:T\tp\ta:U\n")          // entity redeclared with another type
	f.Add("a:T\tp\t\"\"\n")         // empty literal
	f.Add("\"q:T\tp\t\"v\"\n")      // quote-prefixed subject id
	f.Add("a b:T\tp c\tb d:U\n")    // interior spaces
	f.Add("a:T\tp\t\"\x00\xff\"\n") // non-UTF8 escape attempt
	f.Add(strings.Repeat("e:T\tp\t\"v\"\n", 4))

	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseText(strings.NewReader(src))
		if err != nil {
			return
		}
		var w1 bytes.Buffer
		if err := g.WriteText(&w1); err != nil {
			t.Fatalf("WriteText on parsed graph: %v", err)
		}
		g2, err := ParseText(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("written form does not re-parse:\n%s\nerror: %v", w1.String(), err)
		}
		if g2.NumTriples() != g.NumTriples() || g2.NumEntities() != g.NumEntities() || g2.NumNodes() != g.NumNodes() {
			t.Fatalf("round trip changed shape: triples %d->%d, entities %d->%d, nodes %d->%d",
				g.NumTriples(), g2.NumTriples(), g.NumEntities(), g2.NumEntities(), g.NumNodes(), g2.NumNodes())
		}
		var w2 bytes.Buffer
		if err := g2.WriteText(&w2); err != nil {
			t.Fatalf("WriteText on re-parsed graph: %v", err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("canonical form not stable:\nfirst:\n%s\nsecond:\n%s", w1.String(), w2.String())
		}
		// The value index must come out of parsing consistent: one
		// posting entry per value triple.
		n := 0
		g.EachValuePosting(func(p PredID, v NodeID, subjects []NodeID) { n += len(subjects) })
		vals := 0
		g.EachTriple(func(s NodeID, p PredID, o NodeID) {
			if g.IsValue(o) {
				vals++
			}
		})
		if n != vals {
			t.Fatalf("value index has %d entries, graph has %d value triples", n, vals)
		}
	})
}
