package graph

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"graphkeys/internal/obs"
)

// These tests pin the optimistic write path (see plan.go): concurrent
// allocating writers are equivalent to a serial application of their
// log records, bounded replans guarantee progress on a hot shard, and
// a pending name reservation blocks a duplicate allocation until the
// owning delta lowers.

// logOrder is a DeltaLog capturing normalized records in plan order
// (the hook runs under the plan mutex, so appends are already
// serialized) and returning a trivial durability commit, which forces
// the group-commit path: reserve, release the mutex, commit, lower.
type logOrder struct {
	mu      sync.Mutex
	records [][]DeltaOp
}

func (lo *logOrder) log(ops []DeltaOp) (DeltaCommit, error) {
	lo.mu.Lock()
	lo.records = append(lo.records, append([]DeltaOp(nil), ops...))
	lo.mu.Unlock()
	return func() error { return nil }, nil
}

func graphText(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConcurrentAllocatingWritersEquivalence runs N concurrent writers
// that each allocate entities and value literals under DISTINCT names
// — the workload the name-level pending table exists for — and checks
// the result is byte-identical to applying the logged records
// serially, in log order, to a fresh graph.
func TestConcurrentAllocatingWritersEquivalence(t *testing.T) {
	const writers, deltas = 8, 24
	g := New()
	lo := &logOrder{}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < deltas; j++ {
				id := fmt.Sprintf("w%d-e%d", w, j)
				d := (&Delta{}).
					AddEntity(id, "T").
					AddValueTriple(id, "score", fmt.Sprintf("w%d-v%d", w, j))
				if j > 0 {
					d.AddTriple(id, "follows", fmt.Sprintf("w%d-e%d", w, j-1))
				}
				if _, err := g.ApplyDeltaLogged(d, lo.log); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got, want := len(lo.records), writers*deltas; got != want {
		t.Fatalf("logged %d records, want %d", got, want)
	}
	// Serial replay of the log: reservation order is plan order is log
	// order, so even the dense node IDs must agree, not just the
	// name-level text.
	g2 := New()
	for _, ops := range lo.records {
		if _, err := g2.ApplyDelta(NewDeltaOps(ops)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(graphText(t, g), graphText(t, g2)) {
		t.Fatal("concurrent allocating writers diverged from serial log replay")
	}
	if g.NumNodes() != g2.NumNodes() {
		t.Fatalf("node space diverged: concurrent %d, serial %d", g.NumNodes(), g2.NumNodes())
	}
	for w := 0; w < writers; w++ {
		for j := 0; j < deltas; j++ {
			id := fmt.Sprintf("w%d-e%d", w, j)
			n1, ok1 := g.Entity(id)
			n2, ok2 := g2.Entity(id)
			if !ok1 || !ok2 || n1 != n2 {
				t.Fatalf("entity %q: concurrent (%d,%v) vs serial (%d,%v)", id, n1, ok1, n2, ok2)
			}
		}
	}
}

// TestAdmissionRetryStarvation hammers one entity's shard from every
// writer at once — the worst case for optimistic planning, where
// footprints go stale constantly — and checks that bounded replans
// plus the pessimistic fallback guarantee progress, with the retry
// accounting visible in the observer.
func TestAdmissionRetryStarvation(t *testing.T) {
	const writers, rounds = 8, 40
	g := New()
	reg := obs.NewRegistry()
	g.RegisterObs(reg)
	g.MustAddEntity("hub", "T")

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lit := fmt.Sprintf("hot%d", w)
			for j := 0; j < rounds; j++ {
				add := (&Delta{}).AddValueTriple("hub", "p", lit)
				if _, err := g.ApplyDelta(add); err != nil {
					t.Error(err)
					return
				}
				rem := (&Delta{}).RemoveValueTriple("hub", "p", lit)
				if _, err := g.ApplyDelta(rem); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Every writer completed (the progress guarantee) and the net
	// state is exact: all adds matched by removes.
	for w := 0; w < writers; w++ {
		if _, ok := g.Value(fmt.Sprintf("hot%d", w)); !ok {
			t.Fatalf("writer %d's literal missing", w)
		}
	}
	hub, _ := g.Entity("hub")
	if d := g.Degree(hub); d != 0 {
		t.Fatalf("hub degree = %d after matched add/remove rounds, want 0", d)
	}
	snap := reg.Snapshot()
	applied := snap.Counters["graph.deltas"] + snap.Counters["graph.deltas_noop"]
	if want := int64(writers * rounds * 2); applied != want {
		t.Fatalf("deltas accounted %d, want %d", applied, want)
	}
	// Replans are bounded per delta: the counter cannot exceed
	// maxReplans per application (+1 for the discarded pass that
	// precedes each fallback).
	if max := int64(writers*rounds*2) * int64(maxReplans+1); snap.Counters["graph.plan_retries"] > max {
		t.Fatalf("plan_retries = %d exceeds the per-delta bound (max %d)", snap.Counters["graph.plan_retries"], max)
	}
	if snap.Counters["graph.plans_optimistic"]+snap.Counters["graph.plan_fallbacks"] == 0 {
		t.Fatal("no plan admitted through either path")
	}
}

// TestPendingNameBlocksDuplicateAllocation holds a group commit open
// (reservation made, durability wait in progress) and checks that a
// legacy allocator of the same names blocks until the commit lowers —
// then resolves to the RESERVED node rather than allocating a second
// one.
func TestPendingNameBlocksDuplicateAllocation(t *testing.T) {
	g := New()
	gate := make(chan struct{})
	reserved := make(chan struct{})
	resCh := make(chan *DeltaResult, 1)
	go func() {
		d := (&Delta{}).AddEntity("x", "T").AddValueTriple("x", "p", "litx")
		res, err := g.ApplyDeltaLogged(d, func([]DeltaOp) (DeltaCommit, error) {
			return func() error {
				close(reserved) // reservation happened before commit was called
				<-gate
				return nil
			}, nil
		})
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()
	<-reserved

	entDone := make(chan NodeID, 1)
	valDone := make(chan NodeID, 1)
	go func() { entDone <- g.MustAddEntity("x", "T") }()
	go func() { valDone <- g.AddValue("litx") }()

	select {
	case <-entDone:
		t.Fatal("AddEntity of a pending name completed before the owning commit lowered")
	case <-valDone:
		t.Fatal("AddValue of a pending literal completed before the owning commit lowered")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	res := <-resCh
	if len(res.AddedEntities) != 1 {
		t.Fatalf("delta added %d entities, want 1", len(res.AddedEntities))
	}
	if n := <-entDone; n != res.AddedEntities[0] {
		t.Fatalf("AddEntity resolved to %d, want the reserved node %d", n, res.AddedEntities[0])
	}
	v, ok := g.Value("litx")
	if !ok {
		t.Fatal("value literal not published")
	}
	if n := <-valDone; n != v {
		t.Fatalf("AddValue resolved to %d, want the reserved value node %d", n, v)
	}
}
