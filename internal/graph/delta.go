package graph

import "fmt"

// This file implements batched graph mutations: a Delta is an ordered
// list of add-entity, add-triple, remove-triple and remove-entity
// operations, applied atomically by ApplyDelta. Deltas are the unit of
// change the incremental entity-matching engine (internal/inc)
// maintains chase(G, Σ) under.
//
// Operations reference entities by external ID and values by literal,
// so a Delta can be built without a Graph in hand and applied to any
// graph (or logged and replayed).

// OpKind distinguishes delta operations.
type OpKind uint8

const (
	// OpAddEntity ensures an entity exists (no-op if it already does
	// with the same type).
	OpAddEntity OpKind = iota
	// OpAddTriple inserts a triple (no-op if it is already present).
	OpAddTriple
	// OpRemoveTriple deletes a triple (no-op if it is absent).
	OpRemoveTriple
	// OpRemoveEntity removes an entity: it expands to removing every
	// incident triple (out- and in-edges) and then tombstones the node
	// (no-op if the entity is absent). The dense NodeID is retired, not
	// reused; re-adding the same external ID later creates a fresh
	// node.
	OpRemoveEntity
)

// DeltaOp is one operation of a Delta.
type DeltaOp struct {
	Kind OpKind

	// OpAddEntity / OpRemoveEntity.
	ID       string
	TypeName string // OpAddEntity only

	// OpAddTriple / OpRemoveTriple. Object is an entity ID, or a value
	// literal when ObjectIsValue is set.
	Subject       string
	Pred          string
	Object        string
	ObjectIsValue bool
}

// Delta is an ordered batch of mutations. The zero value is an empty
// delta ready for use; the builder methods return the receiver for
// chaining.
type Delta struct {
	ops []DeltaOp
}

// AddEntity appends an ensure-entity op.
func (d *Delta) AddEntity(id, typeName string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpAddEntity, ID: id, TypeName: typeName})
	return d
}

// AddTriple appends an add of (subject, pred, object) between entities.
func (d *Delta) AddTriple(subject, pred, object string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpAddTriple, Subject: subject, Pred: pred, Object: object})
	return d
}

// AddValueTriple appends an add of (subject, pred, literal).
func (d *Delta) AddValueTriple(subject, pred, literal string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpAddTriple, Subject: subject, Pred: pred, Object: literal, ObjectIsValue: true})
	return d
}

// RemoveTriple appends a removal of (subject, pred, object) between
// entities.
func (d *Delta) RemoveTriple(subject, pred, object string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpRemoveTriple, Subject: subject, Pred: pred, Object: object})
	return d
}

// RemoveValueTriple appends a removal of (subject, pred, literal).
func (d *Delta) RemoveValueTriple(subject, pred, literal string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpRemoveTriple, Subject: subject, Pred: pred, Object: literal, ObjectIsValue: true})
	return d
}

// RemoveEntity appends a removal of the entity with the given external
// ID: its incident triples are removed and the node is tombstoned.
// Removing an absent entity is a no-op.
func (d *Delta) RemoveEntity(id string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpRemoveEntity, ID: id})
	return d
}

// Len reports the number of operations.
func (d *Delta) Len() int { return len(d.ops) }

// Ops returns the operations in application order. The slice is owned
// by the delta.
func (d *Delta) Ops() []DeltaOp { return d.ops }

// NewDeltaOps builds a delta from an op list (copied). It is the
// inverse of Ops, used to replay logged normalized records.
func NewDeltaOps(ops []DeltaOp) *Delta {
	return &Delta{ops: append([]DeltaOp(nil), ops...)}
}

// DeltaResult reports the effective changes of an applied delta:
// operations that were no-ops (duplicate adds, removals of absent
// triples or entities, re-adds of existing entities) do not appear,
// and neither do ops that cancel inside the delta (an add and a
// remove of the same triple, an entity created and removed again) —
// the planner coalesces the ops to their net effect before applying.
type DeltaResult struct {
	// AddedEntities lists entity nodes created by the delta.
	AddedEntities []NodeID
	// AddedTriples lists triples actually inserted.
	AddedTriples []Triple
	// RemovedTriples lists triples actually deleted, including the
	// incident triples of removed entities.
	RemovedTriples []Triple
	// RemovedEntities lists entity nodes tombstoned by the delta.
	RemovedEntities []NodeID
}

// Empty reports whether the delta changed nothing.
func (r *DeltaResult) Empty() bool {
	return len(r.AddedEntities) == 0 && len(r.AddedTriples) == 0 &&
		len(r.RemovedTriples) == 0 && len(r.RemovedEntities) == 0
}

// validateDelta checks every op without mutating the graph, simulating
// the entity-level state (creations and removals) op by op. Interning
// predicates and allocating nodes are deferred to the plan's lowering;
// validation only needs entity-level checks, which is what makes
// atomicity possible. With a footprint it runs optimistically — no
// lock held, every directory resolution recorded so a rejection or an
// acceptance computed here can be revalidated under the plan mutex;
// with fp == nil the caller holds the plan mutex with the delta's
// footprint admitted (see plan.go). The type check needs no epoch: a
// node's type is immutable for its lifetime, and the footprint pins
// which node the ID resolved to.
func (g *Graph) validateDelta(d *Delta, fp *footprint) error {
	pending := make(map[string]string) // entity IDs added earlier in this delta -> type
	removed := make(map[string]bool)   // entity IDs removed earlier in this delta
	lookup := func(id string) (NodeID, bool) {
		return g.fpEnt(fp, id)
	}
	entityKnown := func(id string) bool {
		if removed[id] {
			return false
		}
		if _, ok := pending[id]; ok {
			return true
		}
		_, ok := lookup(id)
		return ok
	}
	for i, op := range d.ops {
		switch op.Kind {
		case OpAddEntity:
			if have, ok := pending[op.ID]; ok && !removed[op.ID] {
				if have != op.TypeName {
					return fmt.Errorf("graph: delta op %d: entity %q redeclared with type %q (was %q)",
						i, op.ID, op.TypeName, have)
				}
				continue
			}
			if n, ok := lookup(op.ID); ok && !removed[op.ID] {
				if have := g.TypeName(g.nodeView(n).typ); have != op.TypeName {
					return fmt.Errorf("graph: delta op %d: entity %q redeclared with type %q (was %q)",
						i, op.ID, op.TypeName, have)
				}
				continue
			}
			// Fresh, or re-adding an ID removed earlier in this delta
			// (which creates a new node, so any type is fine).
			delete(removed, op.ID)
			pending[op.ID] = op.TypeName
		case OpRemoveEntity:
			if entityKnown(op.ID) {
				removed[op.ID] = true
				delete(pending, op.ID)
			}
		case OpAddTriple, OpRemoveTriple:
			if !entityKnown(op.Subject) {
				return fmt.Errorf("graph: delta op %d: unknown subject entity %q", i, op.Subject)
			}
			if !op.ObjectIsValue && !entityKnown(op.Object) {
				return fmt.Errorf("graph: delta op %d: unknown object entity %q", i, op.Object)
			}
			if op.Pred == "" {
				return fmt.Errorf("graph: delta op %d: empty predicate", i)
			}
		default:
			return fmt.Errorf("graph: delta op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}
