package graph

import "fmt"

// This file implements batched graph mutations: a Delta is an ordered
// list of add-entity, add-triple and remove-triple operations, applied
// atomically by ApplyDelta. Deltas are the unit of change the
// incremental entity-matching engine (internal/inc) maintains
// chase(G, Σ) under.
//
// Operations reference entities by external ID and values by literal,
// so a Delta can be built without a Graph in hand and applied to any
// graph (or logged and replayed).

// OpKind distinguishes delta operations.
type OpKind uint8

const (
	// OpAddEntity ensures an entity exists (no-op if it already does
	// with the same type).
	OpAddEntity OpKind = iota
	// OpAddTriple inserts a triple (no-op if it is already present).
	OpAddTriple
	// OpRemoveTriple deletes a triple (no-op if it is absent).
	OpRemoveTriple
)

// DeltaOp is one operation of a Delta.
type DeltaOp struct {
	Kind OpKind

	// OpAddEntity.
	ID       string
	TypeName string

	// OpAddTriple / OpRemoveTriple. Object is an entity ID, or a value
	// literal when ObjectIsValue is set.
	Subject       string
	Pred          string
	Object        string
	ObjectIsValue bool
}

// Delta is an ordered batch of mutations. The zero value is an empty
// delta ready for use; the builder methods return the receiver for
// chaining.
type Delta struct {
	ops []DeltaOp
}

// AddEntity appends an ensure-entity op.
func (d *Delta) AddEntity(id, typeName string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpAddEntity, ID: id, TypeName: typeName})
	return d
}

// AddTriple appends an add of (subject, pred, object) between entities.
func (d *Delta) AddTriple(subject, pred, object string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpAddTriple, Subject: subject, Pred: pred, Object: object})
	return d
}

// AddValueTriple appends an add of (subject, pred, literal).
func (d *Delta) AddValueTriple(subject, pred, literal string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpAddTriple, Subject: subject, Pred: pred, Object: literal, ObjectIsValue: true})
	return d
}

// RemoveTriple appends a removal of (subject, pred, object) between
// entities.
func (d *Delta) RemoveTriple(subject, pred, object string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpRemoveTriple, Subject: subject, Pred: pred, Object: object})
	return d
}

// RemoveValueTriple appends a removal of (subject, pred, literal).
func (d *Delta) RemoveValueTriple(subject, pred, literal string) *Delta {
	d.ops = append(d.ops, DeltaOp{Kind: OpRemoveTriple, Subject: subject, Pred: pred, Object: literal, ObjectIsValue: true})
	return d
}

// Len reports the number of operations.
func (d *Delta) Len() int { return len(d.ops) }

// Ops returns the operations in application order. The slice is owned
// by the delta.
func (d *Delta) Ops() []DeltaOp { return d.ops }

// DeltaResult reports the effective changes of an applied delta:
// operations that were no-ops (duplicate adds, removals of absent
// triples, re-adds of existing entities) do not appear.
type DeltaResult struct {
	// AddedEntities lists entity nodes created by the delta.
	AddedEntities []NodeID
	// AddedTriples lists triples actually inserted.
	AddedTriples []Triple
	// RemovedTriples lists triples actually deleted.
	RemovedTriples []Triple
}

// Empty reports whether the delta changed nothing.
func (r *DeltaResult) Empty() bool {
	return len(r.AddedEntities) == 0 && len(r.AddedTriples) == 0 && len(r.RemovedTriples) == 0
}

// ApplyDelta applies the delta atomically: it first validates every
// operation in order (simulating entity creation, so a triple may
// reference an entity added earlier in the same delta) and only then
// mutates the graph. On error the graph is unchanged.
//
// Semantics are sequential and idempotent at the op level: adding an
// existing triple or entity is a no-op, as is removing an absent
// triple; only entity type conflicts and references to unknown
// entities are errors.
func (g *Graph) ApplyDelta(d *Delta) (*DeltaResult, error) {
	if err := g.validateDelta(d); err != nil {
		return nil, err
	}
	res := &DeltaResult{}
	for i, op := range d.ops {
		switch op.Kind {
		case OpAddEntity:
			if _, exists := g.entByID[op.ID]; !exists {
				n, err := g.AddEntity(op.ID, op.TypeName)
				if err != nil {
					return nil, fmt.Errorf("graph: delta op %d: %v", i, err)
				}
				res.AddedEntities = append(res.AddedEntities, n)
			}
		case OpAddTriple, OpRemoveTriple:
			s := g.entByID[op.Subject]
			var o NodeID
			if op.ObjectIsValue {
				if op.Kind == OpRemoveTriple {
					// Do not intern a value just to fail to remove it.
					v, ok := g.valByLit[op.Object]
					if !ok {
						continue
					}
					o = v
				} else {
					o = g.AddValue(op.Object)
				}
			} else {
				o = g.entByID[op.Object]
			}
			p := PredID(g.preds.Intern(op.Pred))
			if op.Kind == OpAddTriple {
				if g.HasTriple(s, p, o) {
					continue
				}
				if err := g.AddTriple(s, op.Pred, o); err != nil {
					return nil, fmt.Errorf("graph: delta op %d: %v", i, err)
				}
				res.AddedTriples = append(res.AddedTriples, Triple{S: s, P: p, O: o})
			} else if g.RemoveTripleID(s, p, o) {
				res.RemovedTriples = append(res.RemovedTriples, Triple{S: s, P: p, O: o})
			}
		default:
			return nil, fmt.Errorf("graph: delta op %d: unknown kind %d", i, op.Kind)
		}
	}
	return res, nil
}

// validateDelta checks every op without mutating the graph. Interning
// predicates for removals is deferred to application; validation only
// needs entity-level checks, which is what makes atomicity possible.
func (g *Graph) validateDelta(d *Delta) error {
	pending := make(map[string]string) // entity IDs added earlier in this delta -> type
	entityKnown := func(id string) bool {
		if _, ok := g.entByID[id]; ok {
			return true
		}
		_, ok := pending[id]
		return ok
	}
	for i, op := range d.ops {
		switch op.Kind {
		case OpAddEntity:
			if n, ok := g.entByID[op.ID]; ok {
				if have := g.types.Name(int32(g.nodes[n].typ)); have != op.TypeName {
					return fmt.Errorf("graph: delta op %d: entity %q redeclared with type %q (was %q)",
						i, op.ID, op.TypeName, have)
				}
			} else if have, ok := pending[op.ID]; ok && have != op.TypeName {
				return fmt.Errorf("graph: delta op %d: entity %q redeclared with type %q (was %q)",
					i, op.ID, op.TypeName, have)
			} else {
				pending[op.ID] = op.TypeName
			}
		case OpAddTriple, OpRemoveTriple:
			if !entityKnown(op.Subject) {
				return fmt.Errorf("graph: delta op %d: unknown subject entity %q", i, op.Subject)
			}
			if !op.ObjectIsValue && !entityKnown(op.Object) {
				return fmt.Errorf("graph: delta op %d: unknown object entity %q", i, op.Object)
			}
			if op.Pred == "" {
				return fmt.Errorf("graph: delta op %d: empty predicate", i)
			}
		default:
			return fmt.Errorf("graph: delta op %d: unknown kind %d", i, op.Kind)
		}
	}
	return nil
}
