package graph

import (
	"sync"
	"sync/atomic"
)

// This file holds the shard layout of the store. The graph is
// partitioned by node ID into a fixed number of shards: node n lives in
// shard n mod ShardCount at local index n div ShardCount, so dense IDs
// stripe round-robin across shards and every shard's local table stays
// dense. Each shard owns, under one RWMutex:
//
//   - the node records of its nodes (kind, type, label, tombstone),
//   - their out- and in-adjacency,
//   - the triple set keyed by subject (a triple (s, p, o) lives in the
//     shard of s),
//   - the inverted value-index postings keyed by value node (the
//     posting list of (p, v) lives in the shard of v).
//
// Locking discipline: mutation runs through the planned write path of
// plan.go — planning (validation, coalescing, allocation) is
// serialized by the plan mutex, and a plan's execution is admitted
// only while no other execution overlaps its shard footprint, so at
// most one writer ever touches a given shard at a time. Writers with
// disjoint footprints execute concurrently; each takes a shard's
// write lock around its writes to that shard's data. Readers take
// only the read lock of the shard they touch, so readers of one shard
// run concurrently with a mutation of another — the old "no readers
// during mutation" contract is shard-local. A planner may read data
// in its admitted footprint without shard locks (admission excludes
// writers there; read/read is not a conflict). A reader observes each
// shard atomically, but an operation spanning shards (AddTriple
// touches the subject's and the object's shard) is visible shard by
// shard; cross-shard consistency is only guaranteed at the
// granularity the caller serializes (e.g. graphkeys.Matcher holds its
// own lock across ApplyDelta and fixpoint repair).
//
// The directory — the name maps shared by all shards (interned
// predicates and types, entity-ID and value-literal lookup, the
// per-type entity lists) — is guarded by its own RWMutex the same way.

const (
	shardBits = 5
	// ShardCount is the fixed number of shards the store is partitioned
	// into. It is a power of two so the shard of a node is a mask away.
	ShardCount = 1 << shardBits
)

// shard is one partition of the store. See the file comment for what
// lives where and for the locking discipline.
type shard struct {
	mu    sync.RWMutex
	nodes []node
	out   [][]Edge
	in    [][]Edge
	// triples holds the triples whose subject is in this shard.
	triples map[tripleKey]struct{}
	// post holds the value-index posting lists whose value node is in
	// this shard, each sorted by subject NodeID.
	post map[postKey][]NodeID
	// epoch counts data mutations of the shard's existing slots:
	// triple/adjacency/posting changes and tombstones, bumped under the
	// shard write lock in the same critical section as the mutation.
	// Appending a fresh slot (allocNode, reserveNode) does NOT bump it —
	// a slot nothing references yet cannot invalidate a read. The
	// optimistic planner (plan.go) records the epoch of every shard a
	// read-decision depended on and revalidates the set under the plan
	// mutex; loads outside the shard lock are fine because any mutation
	// since the recorded read must have bumped the counter.
	epoch atomic.Uint64
}

// shardIndex returns the shard holding node n.
func shardIndex(n NodeID) int { return int(uint32(n) & (ShardCount - 1)) }

// localIndex returns n's index within its shard's tables. The mapping
// (shard, local) -> local*ShardCount + shard is a bijection onto the
// dense ID space, so an out-of-range ID maps to an out-of-range local
// slot and panics like the flat slices did, never aliasing another
// node.
func localIndex(n NodeID) int { return int(uint32(n)) >> shardBits }

func (g *Graph) shardOf(n NodeID) *shard { return &g.shards[shardIndex(n)] }

// nodeView returns a copy of n's record, taking the shard read lock.
func (g *Graph) nodeView(n NodeID) node {
	sh := g.shardOf(n)
	sh.mu.RLock()
	nd := sh.nodes[localIndex(n)]
	sh.mu.RUnlock()
	return nd
}

// edges returns n's adjacency under one read lock. The slices are
// owned by the graph: never mutated in place, so they stay valid after
// the lock is released.
func (g *Graph) edges(n NodeID) (out, in []Edge) {
	sh := g.shardOf(n)
	l := localIndex(n)
	sh.mu.RLock()
	out, in = sh.out[l], sh.in[l]
	sh.mu.RUnlock()
	return out, in
}

// allocNode appends a node record, returning its dense ID. Caller
// holds the plan mutex (allocation is serialized, so dense IDs follow
// plan order). The ID is published (NumNodes moves past it) only
// after the shard tables contain it, so a reader that sees the new
// count always finds the slot.
func (g *Graph) allocNode(nd node) NodeID {
	id := NodeID(g.nNodes.Load())
	sh := g.shardOf(id)
	sh.mu.Lock()
	sh.nodes = append(sh.nodes, nd)
	sh.out = append(sh.out, nil)
	sh.in = append(sh.in, nil)
	sh.mu.Unlock()
	g.nNodes.Store(int32(id + 1))
	return id
}

// reserveNode appends nd as a dead (invisible) slot and returns its
// dense ID. Caller holds the plan mutex, so reservation order is plan
// order — which is what keeps node IDs deterministic in WAL log order
// even though the group-commit lowerings that make the slots live may
// finish out of order. The slot carries its final record (kind, type,
// label) from the start; lowering only flips dead off. A reservation
// whose delta later aborts (failed group fsync) stays dead forever: a
// hole in the dense ID space that no name resolves to, which the
// name-level text format renders invisibly.
func (g *Graph) reserveNode(nd node) NodeID {
	nd.dead = true
	return g.allocNode(nd)
}

// flipNode makes a reserved slot live. Runs at lowering, off the plan
// mutex; the slot's shard is covered by the delta's flight mask, and
// nothing resolves to the ID until the directory publishes it right
// after this.
func (g *Graph) flipNode(n NodeID) {
	sh := g.shardOf(n)
	sh.mu.Lock()
	sh.nodes[localIndex(n)].dead = false
	sh.mu.Unlock()
}
