package graph

import "math/bits"

// NodeSet is a set of nodes of one graph, used to represent induced
// subgraphs such as d-neighbors without copying adjacency data: the
// matcher restricts its search to nodes in the set. It is a bitset —
// membership tests sit on the matcher's hottest path, and node IDs are
// dense by construction.
type NodeSet struct {
	bits []uint64
	n    int
}

// NewNodeSet returns an empty set.
func NewNodeSet() *NodeSet { return &NodeSet{} }

// Add inserts n into the set.
func (s *NodeSet) Add(n NodeID) {
	w := int(n) >> 6
	for w >= len(s.bits) {
		s.bits = append(s.bits, 0)
	}
	mask := uint64(1) << (uint(n) & 63)
	if s.bits[w]&mask == 0 {
		s.bits[w] |= mask
		s.n++
	}
}

// Contains reports whether n is in the set. A nil set contains every
// node, so a nil *NodeSet means "the whole graph".
func (s *NodeSet) Contains(n NodeID) bool {
	if s == nil {
		return true
	}
	w := int(n) >> 6
	if w >= len(s.bits) || n < 0 {
		return false
	}
	return s.bits[w]&(uint64(1)<<(uint(n)&63)) != 0
}

// Len reports the number of nodes in the set; a nil set has length -1 to
// signal "unbounded".
func (s *NodeSet) Len() int {
	if s == nil {
		return -1
	}
	return s.n
}

// Each calls fn for every node in the set, in ascending ID order. A nil
// set (meaning "every node") cannot be enumerated; Each on nil is a
// no-op, and callers that may hold a nil set must branch on it
// explicitly.
func (s *NodeSet) Each(fn func(NodeID)) {
	if s == nil {
		return
	}
	for w, word := range s.bits {
		for word != 0 {
			bit := word & (-word)
			idx := NodeID(w<<6 + bits.TrailingZeros64(bit))
			fn(idx)
			word ^= bit
		}
	}
}

// Union adds all nodes of other into s.
func (s *NodeSet) Union(other *NodeSet) {
	if other == nil {
		return
	}
	for len(s.bits) < len(other.bits) {
		s.bits = append(s.bits, 0)
	}
	s.n = 0
	for w := range s.bits {
		if w < len(other.bits) {
			s.bits[w] |= other.bits[w]
		}
		s.n += bits.OnesCount64(s.bits[w])
	}
}

// Clone returns a copy of the set. Cloning a nil set returns nil.
func (s *NodeSet) Clone() *NodeSet {
	if s == nil {
		return nil
	}
	c := &NodeSet{bits: make([]uint64, len(s.bits)), n: s.n}
	copy(c.bits, s.bits)
	return c
}

// Neighborhood computes the d-neighbor G^d of e (§4.1): the set of nodes
// within d hops of e, treating edges as undirected. The subgraph of G
// induced by this set is what EvalMR inspects instead of the whole of G
// (data locality: (G,Σ) ⊨ (e1,e2) iff (G1^d ∪ G2^d, Σ) ⊨ (e1,e2)).
func (g *Graph) Neighborhood(e NodeID, d int) *NodeSet {
	set := NewNodeSet()
	set.Add(e)
	frontier := []NodeID{e}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []NodeID
		for _, n := range frontier {
			out, in := g.edges(n)
			for _, edge := range out {
				if !set.Contains(edge.To) {
					set.Add(edge.To)
					next = append(next, edge.To)
				}
			}
			for _, edge := range in {
				if !set.Contains(edge.To) {
					set.Add(edge.To)
					next = append(next, edge.To)
				}
			}
		}
		frontier = next
	}
	return set
}

// TriplesWithin counts the triples of G whose endpoints are both in set.
// It is used for reporting d-neighbor sizes in the optimization
// experiments.
func (g *Graph) TriplesWithin(set *NodeSet) int {
	if set == nil {
		return g.NumTriples()
	}
	n := 0
	set.Each(func(s NodeID) {
		for _, e := range g.Out(s) {
			if set.Contains(e.To) {
				n++
			}
		}
	})
	return n
}
