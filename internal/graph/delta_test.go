package graph

import "testing"

func buildSmall(t *testing.T) *Graph {
	t.Helper()
	g := New()
	a := g.MustAddEntity("a", "T")
	b := g.MustAddEntity("b", "T")
	v := g.AddValue("42")
	g.MustAddTriple(a, "knows", b)
	g.MustAddTriple(a, "age", v)
	g.MustAddTriple(b, "age", v)
	return g
}

func TestRemoveTriple(t *testing.T) {
	g := buildSmall(t)
	a, _ := g.Entity("a")
	b, _ := g.Entity("b")
	v, _ := g.Value("42")
	p, _ := g.PredByName("knows")

	if !g.RemoveTriple(a, "knows", b) {
		t.Fatal("RemoveTriple reported absent for an existing triple")
	}
	if g.HasTriple(a, p, b) {
		t.Fatal("triple still present after removal")
	}
	if g.NumTriples() != 2 {
		t.Fatalf("NumTriples = %d, want 2", g.NumTriples())
	}
	if got := len(g.Out(a)); got != 1 {
		t.Fatalf("len(Out(a)) = %d, want 1", got)
	}
	if got := len(g.In(b)); got != 0 {
		t.Fatalf("len(In(b)) = %d, want 0", got)
	}
	// Removing again is a reported no-op.
	if g.RemoveTriple(a, "knows", b) {
		t.Fatal("second removal reported success")
	}
	// Unknown predicate never removes.
	if g.RemoveTriple(a, "nope", v) {
		t.Fatal("removal with unknown predicate reported success")
	}
	// Removal is reversible.
	g.MustAddTriple(a, "knows", b)
	if !g.HasTriple(a, p, b) || g.NumTriples() != 3 {
		t.Fatal("re-add after removal did not restore the triple")
	}
}

func TestApplyDelta(t *testing.T) {
	g := buildSmall(t)
	d := &Delta{}
	d.AddEntity("c", "T").
		AddTriple("c", "knows", "a").
		AddValueTriple("c", "age", "42").
		RemoveTriple("a", "knows", "b").
		RemoveValueTriple("b", "age", "42").
		RemoveValueTriple("b", "age", "no-such-value"). // no-op
		AddTriple("a", "knows", "b").                   // re-add of a removal in the same delta
		AddValueTriple("a", "age", "42")                // duplicate, no-op
	res, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AddedEntities) != 1 {
		t.Fatalf("AddedEntities = %v, want 1 entry", res.AddedEntities)
	}
	// The remove + re-add of (a, knows, b) coalesces to a no-op, so only
	// c's two new triples count as added and only (b, age, 42) as
	// removed.
	if len(res.AddedTriples) != 2 {
		t.Fatalf("AddedTriples = %v, want 2 entries", res.AddedTriples)
	}
	if len(res.RemovedTriples) != 1 {
		t.Fatalf("RemovedTriples = %v, want 1 entry", res.RemovedTriples)
	}
	if g.NumTriples() != 4 {
		t.Fatalf("NumTriples = %d, want 4", g.NumTriples())
	}
	c, ok := g.Entity("c")
	if !ok {
		t.Fatal("entity c missing after delta")
	}
	a, _ := g.Entity("a")
	b, _ := g.Entity("b")
	v, _ := g.Value("42")
	knows, _ := g.PredByName("knows")
	age, _ := g.PredByName("age")
	for _, want := range []struct {
		s NodeID
		p PredID
		o NodeID
	}{{c, knows, a}, {c, age, v}, {a, knows, b}, {a, age, v}} {
		if !g.HasTriple(want.s, want.p, want.o) {
			t.Fatalf("triple (%d,%d,%d) missing after delta", want.s, want.p, want.o)
		}
	}
	if g.HasTriple(b, age, v) {
		t.Fatal("removed triple (b, age, 42) still present")
	}
}

func TestApplyDeltaAtomic(t *testing.T) {
	g := buildSmall(t)
	trips := g.NumTriples()

	// A delta with a bad op at the end must leave the graph untouched.
	bad := &Delta{}
	bad.AddEntity("c", "T").
		AddTriple("c", "knows", "a").
		AddTriple("ghost", "knows", "a")
	if _, err := g.ApplyDelta(bad); err == nil {
		t.Fatal("delta referencing unknown entity did not error")
	}
	if g.NumTriples() != trips {
		t.Fatalf("failed delta mutated the graph: %d triples, want %d", g.NumTriples(), trips)
	}
	if _, ok := g.Entity("c"); ok {
		t.Fatal("failed delta created entity c")
	}

	// Type conflicts are rejected, including against entities pending in
	// the same delta.
	conflict := &Delta{}
	conflict.AddEntity("a", "U")
	if _, err := g.ApplyDelta(conflict); err == nil {
		t.Fatal("type redeclaration did not error")
	}
	conflict2 := &Delta{}
	conflict2.AddEntity("n", "T").AddEntity("n", "U")
	if _, err := g.ApplyDelta(conflict2); err == nil {
		t.Fatal("pending type redeclaration did not error")
	}

	// Forward references within a delta work: triple before its entity
	// op fails, after succeeds.
	forward := &Delta{}
	forward.AddTriple("d", "knows", "a").AddEntity("d", "T")
	if _, err := g.ApplyDelta(forward); err == nil {
		t.Fatal("triple referencing a later-added entity did not error")
	}
	ordered := &Delta{}
	ordered.AddEntity("d", "T").AddTriple("d", "knows", "a")
	if _, err := g.ApplyDelta(ordered); err != nil {
		t.Fatalf("ordered delta failed: %v", err)
	}
}

func TestTriples(t *testing.T) {
	g := buildSmall(t)
	ts := g.Triples()
	if len(ts) != g.NumTriples() {
		t.Fatalf("Triples() returned %d, want %d", len(ts), g.NumTriples())
	}
	for _, tr := range ts {
		if !g.HasTriple(tr.S, tr.P, tr.O) {
			t.Fatalf("Triples() returned absent triple %+v", tr)
		}
	}
}
