package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildG1 constructs the music fragment G1 of the paper (Fig. 2).
func buildG1(t *testing.T) *Graph {
	t.Helper()
	g := New()
	alb1 := g.MustAddEntity("alb1", "album")
	alb2 := g.MustAddEntity("alb2", "album")
	alb3 := g.MustAddEntity("alb3", "album")
	art1 := g.MustAddEntity("art1", "artist")
	art2 := g.MustAddEntity("art2", "artist")
	art3 := g.MustAddEntity("art3", "artist")
	anthology := g.AddValue("Anthology 2")
	y1996 := g.AddValue("1996")
	beatles := g.AddValue("The Beatles")
	farnham := g.AddValue("John Farnham")
	g.MustAddTriple(alb1, "name_of", anthology)
	g.MustAddTriple(alb2, "name_of", anthology)
	g.MustAddTriple(alb3, "name_of", anthology)
	g.MustAddTriple(alb1, "release_year", y1996)
	g.MustAddTriple(alb2, "release_year", y1996)
	g.MustAddTriple(alb1, "recorded_by", art1)
	g.MustAddTriple(alb2, "recorded_by", art2)
	g.MustAddTriple(alb3, "recorded_by", art3)
	g.MustAddTriple(art1, "name_of", beatles)
	g.MustAddTriple(art2, "name_of", beatles)
	g.MustAddTriple(art3, "name_of", farnham)
	return g
}

func TestBuildAndAccessors(t *testing.T) {
	g := buildG1(t)
	if got, want := g.NumTriples(), 11; got != want {
		t.Fatalf("NumTriples = %d, want %d", got, want)
	}
	if got, want := g.NumEntities(), 6; got != want {
		t.Fatalf("NumEntities = %d, want %d", got, want)
	}
	if got, want := g.NumNodes(), 10; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	alb1, ok := g.Entity("alb1")
	if !ok {
		t.Fatal("alb1 not found")
	}
	if !g.IsEntity(alb1) || g.IsValue(alb1) {
		t.Error("alb1 should be an entity")
	}
	if g.TypeName(g.TypeOf(alb1)) != "album" {
		t.Errorf("alb1 type = %q, want album", g.TypeName(g.TypeOf(alb1)))
	}
	v, ok := g.Value("Anthology 2")
	if !ok || !g.IsValue(v) {
		t.Fatal("value node missing")
	}
	if g.Label(v) != "Anthology 2" {
		t.Errorf("Label = %q", g.Label(v))
	}
	albumType, ok := g.TypeByName("album")
	if !ok {
		t.Fatal("album type missing")
	}
	if got := len(g.EntitiesOfType(albumType)); got != 3 {
		t.Errorf("albums = %d, want 3", got)
	}
	if _, ok := g.TypeByName("nosuch"); ok {
		t.Error("TypeByName(nosuch) should fail")
	}
	if _, ok := g.PredByName("nosuch"); ok {
		t.Error("PredByName(nosuch) should fail")
	}
}

func TestAddEntityTypeConflict(t *testing.T) {
	g := New()
	g.MustAddEntity("e1", "album")
	if _, err := g.AddEntity("e1", "artist"); err == nil {
		t.Fatal("expected type-conflict error")
	}
	// Same type is idempotent.
	n1 := g.MustAddEntity("e1", "album")
	n2 := g.MustAddEntity("e1", "album")
	if n1 != n2 {
		t.Fatalf("idempotent AddEntity returned %d then %d", n1, n2)
	}
}

func TestAddTripleValidation(t *testing.T) {
	g := New()
	e := g.MustAddEntity("e", "t")
	v := g.AddValue("lit")
	if err := g.AddTriple(v, "p", e); err == nil {
		t.Error("value subject should be rejected")
	}
	if err := g.AddTriple(NodeID(99), "p", e); err == nil {
		t.Error("unknown subject should be rejected")
	}
	if err := g.AddTriple(e, "p", NodeID(99)); err == nil {
		t.Error("unknown object should be rejected")
	}
	if err := g.AddTriple(e, "p", v); err != nil {
		t.Fatalf("valid triple rejected: %v", err)
	}
	if err := g.AddTriple(e, "p", v); err != nil {
		t.Fatalf("duplicate triple errored: %v", err)
	}
	if g.NumTriples() != 1 {
		t.Fatalf("duplicate triple counted: %d", g.NumTriples())
	}
}

func TestHasTripleAndEdges(t *testing.T) {
	g := buildG1(t)
	alb1, _ := g.Entity("alb1")
	art1, _ := g.Entity("art1")
	rb, ok := g.PredByName("recorded_by")
	if !ok {
		t.Fatal("recorded_by missing")
	}
	if !g.HasTriple(alb1, rb, art1) {
		t.Error("HasTriple(alb1, recorded_by, art1) = false")
	}
	if g.HasTriple(art1, rb, alb1) {
		t.Error("reverse triple should not exist")
	}
	// alb1 out: name_of, release_year, recorded_by.
	if got := len(g.Out(alb1)); got != 3 {
		t.Errorf("out-degree(alb1) = %d, want 3", got)
	}
	// art1 in: recorded_by from alb1.
	if got := len(g.In(art1)); got != 1 {
		t.Errorf("in-degree(art1) = %d, want 1", got)
	}
	if got := g.Degree(alb1); got != 3 {
		t.Errorf("Degree(alb1) = %d, want 3", got)
	}
}

func TestNeighborhood(t *testing.T) {
	g := buildG1(t)
	alb1, _ := g.Entity("alb1")
	art1, _ := g.Entity("art1")
	art2, _ := g.Entity("art2")

	n0 := g.Neighborhood(alb1, 0)
	if n0.Len() != 1 || !n0.Contains(alb1) {
		t.Fatalf("0-neighborhood = %d nodes", n0.Len())
	}
	n1 := g.Neighborhood(alb1, 1)
	// alb1 plus name, year, art1.
	if n1.Len() != 4 {
		t.Fatalf("1-neighborhood = %d nodes, want 4", n1.Len())
	}
	if !n1.Contains(art1) {
		t.Error("1-neighborhood should contain art1")
	}
	n2 := g.Neighborhood(alb1, 2)
	// +alb2, alb3 (via shared name/year values) and "The Beatles".
	if !n2.Contains(art1) {
		t.Error("2-neighborhood should contain art1")
	}
	if n2.Contains(art2) {
		t.Error("2-neighborhood should not contain art2 (3 hops away)")
	}
	n3 := g.Neighborhood(alb1, 3)
	if !n3.Contains(art2) {
		t.Error("3-neighborhood should contain art2")
	}
	// Whole graph at large d.
	nAll := g.Neighborhood(alb1, 10)
	if nAll.Len() != g.NumNodes() {
		t.Errorf("10-neighborhood = %d nodes, want %d (graph is connected)", nAll.Len(), g.NumNodes())
	}
}

func TestNodeSetSemantics(t *testing.T) {
	var nilSet *NodeSet
	if !nilSet.Contains(5) {
		t.Error("nil set must contain everything")
	}
	if nilSet.Len() != -1 {
		t.Error("nil set length must be -1")
	}
	if nilSet.Clone() != nil {
		t.Error("cloning nil must stay nil")
	}
	s := NewNodeSet()
	s.Add(1)
	s.Add(2)
	s2 := NewNodeSet()
	s2.Add(3)
	s.Union(s2)
	if s.Len() != 3 || !s.Contains(3) {
		t.Errorf("union failed: len=%d", s.Len())
	}
	c := s.Clone()
	c.Add(4)
	if s.Contains(4) {
		t.Error("clone must not alias")
	}
	count := 0
	s.Each(func(NodeID) { count++ })
	if count != 3 {
		t.Errorf("Each visited %d, want 3", count)
	}
	s.Union(nil) // must be a no-op
	if s.Len() != 3 {
		t.Error("Union(nil) changed the set")
	}
}

func TestTriplesWithin(t *testing.T) {
	g := buildG1(t)
	if got := g.TriplesWithin(nil); got != g.NumTriples() {
		t.Errorf("TriplesWithin(nil) = %d, want %d", got, g.NumTriples())
	}
	alb1, _ := g.Entity("alb1")
	n1 := g.Neighborhood(alb1, 1)
	// Induced triples: alb1's three out-edges only.
	if got := g.TriplesWithin(n1); got != 3 {
		t.Errorf("TriplesWithin(1-hop alb1) = %d, want 3", got)
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := buildG1(t)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTriples() != g.NumTriples() || g2.NumNodes() != g.NumNodes() {
		t.Fatalf("round trip: %d/%d triples, %d/%d nodes",
			g2.NumTriples(), g.NumTriples(), g2.NumNodes(), g.NumNodes())
	}
	var buf2 bytes.Buffer
	if err := g2.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("text output is not canonical across a round trip")
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"fields", "a:T\tp\n"},
		{"badSubject", "noType\tp\t\"v\"\n"},
		{"badObjectEntity", "a:T\tp\tnoType\n"},
		{"badLiteral", "a:T\tp\t\"unterminated\n"},
		{"emptyPred", "a:T\t\t\"v\"\n"},
		{"valueSubjectViaTypeConflict", "a:T\tp\tb:T\nb:U\tp\t\"v\"\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseText(strings.NewReader(c.in)); err == nil {
				t.Errorf("ParseText(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestParseTextCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n  \nalb1:album\tname_of\t\"x\"\n"
	g, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTriples() != 1 {
		t.Fatalf("NumTriples = %d, want 1", g.NumTriples())
	}
}

func TestEntityIDWithColon(t *testing.T) {
	// External IDs may contain colons; the last colon splits off the type.
	in := "http://kb/e:1:album\tname_of\t\"x\"\n"
	g, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	n, ok := g.Entity("http://kb/e:1")
	if !ok {
		t.Fatal("colon-bearing ID not found")
	}
	if g.TypeName(g.TypeOf(n)) != "album" {
		t.Errorf("type = %q", g.TypeName(g.TypeOf(n)))
	}
}

func TestEachTripleAndEachEntity(t *testing.T) {
	g := buildG1(t)
	nt := 0
	g.EachTriple(func(s NodeID, p PredID, o NodeID) {
		if !g.HasTriple(s, p, o) {
			t.Fatalf("EachTriple yielded non-triple (%d,%d,%d)", s, p, o)
		}
		nt++
	})
	if nt != g.NumTriples() {
		t.Errorf("EachTriple visited %d, want %d", nt, g.NumTriples())
	}
	ne := 0
	g.EachEntity(func(n NodeID) {
		if !g.IsEntity(n) {
			t.Fatalf("EachEntity yielded non-entity %d", n)
		}
		ne++
	})
	if ne != g.NumEntities() {
		t.Errorf("EachEntity visited %d, want %d", ne, g.NumEntities())
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := in.Intern("a")
	b := in.Intern("b")
	if a == b {
		t.Fatal("distinct strings shared an ID")
	}
	if in.Intern("a") != a {
		t.Fatal("re-interning changed the ID")
	}
	if got, ok := in.Lookup("b"); !ok || got != b {
		t.Fatal("Lookup(b) failed")
	}
	if _, ok := in.Lookup("c"); ok {
		t.Fatal("Lookup(c) should fail")
	}
	if in.Name(a) != "a" || in.Name(b) != "b" {
		t.Fatal("Name mismatch")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
}

// TestNodeSetQuick property-tests the bitset against a reference map
// implementation under random Add/Union/Clone interleavings.
func TestNodeSetQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewNodeSet()
		ref := make(map[NodeID]bool)
		other := NewNodeSet()
		refOther := make(map[NodeID]bool)
		for i, op := range ops {
			n := NodeID(op % 500)
			switch i % 4 {
			case 0, 1:
				s.Add(n)
				ref[n] = true
			case 2:
				other.Add(n)
				refOther[n] = true
			case 3:
				s.Union(other)
				for k := range refOther {
					ref[k] = true
				}
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for k := range ref {
			if !s.Contains(k) {
				return false
			}
		}
		// Each visits exactly the members.
		visited := 0
		s.Each(func(n NodeID) {
			if !ref[n] {
				t.Errorf("Each yielded non-member %d", n)
			}
			visited++
		})
		if visited != len(ref) {
			return false
		}
		// Clone is independent and equal.
		c := s.Clone()
		if c.Len() != s.Len() {
			return false
		}
		c.Add(NodeID(501))
		return !s.Contains(NodeID(501))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNodeSetNegativeContains: out-of-range IDs are simply absent.
func TestNodeSetNegativeContains(t *testing.T) {
	s := NewNodeSet()
	s.Add(3)
	if s.Contains(-1) || s.Contains(1<<20) {
		t.Error("out-of-range membership")
	}
}

// TestNeighborhoodRandomInvariant checks, on random graphs, that the
// (d+1)-neighborhood contains the d-neighborhood, and that every node in
// the d-neighborhood is reachable within d undirected hops (by comparing
// against an independent BFS).
func TestNeighborhoodRandomInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 30, 60)
		start := NodeID(rng.Intn(g.NumNodes()))
		if !g.IsEntity(start) {
			continue
		}
		prev := g.Neighborhood(start, 0)
		for d := 1; d <= 4; d++ {
			cur := g.Neighborhood(start, d)
			prev.Each(func(n NodeID) {
				if !cur.Contains(n) {
					t.Fatalf("d=%d neighborhood lost node %d present at d-1", d, n)
				}
			})
			if dist := bfsDistances(g, start); true {
				cur.Each(func(n NodeID) {
					if dist[n] > d {
						t.Fatalf("node %d at distance %d included in %d-neighborhood", n, dist[n], d)
					}
				})
				for n, dd := range dist {
					if dd <= d && !cur.Contains(NodeID(n)) {
						t.Fatalf("node %d at distance %d missing from %d-neighborhood", n, dd, d)
					}
				}
			}
			prev = cur
		}
	}
}

func randomGraph(rng *rand.Rand, nEnt, nTrip int) *Graph {
	g := New()
	types := []string{"A", "B", "C"}
	ents := make([]NodeID, nEnt)
	for i := range ents {
		ents[i] = g.MustAddEntity(fmt.Sprintf("e%d", i), types[rng.Intn(len(types))])
	}
	preds := []string{"p", "q", "r"}
	for i := 0; i < nTrip; i++ {
		s := ents[rng.Intn(nEnt)]
		if rng.Intn(2) == 0 {
			g.MustAddTriple(s, preds[rng.Intn(len(preds))], ents[rng.Intn(nEnt)])
		} else {
			g.MustAddTriple(s, preds[rng.Intn(len(preds))], g.AddValue(fmt.Sprintf("v%d", rng.Intn(10))))
		}
	}
	return g
}

func bfsDistances(g *Graph, start NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = 1 << 30
	}
	dist[start] = 0
	queue := []NodeID{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range g.Out(n) {
			if dist[e.To] > dist[n]+1 {
				dist[e.To] = dist[n] + 1
				queue = append(queue, e.To)
			}
		}
		for _, e := range g.In(n) {
			if dist[e.To] > dist[n]+1 {
				dist[e.To] = dist[n] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}
