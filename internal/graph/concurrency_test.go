package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// buildStressGraph returns a graph with ents entities across two
// types, value attributes, and entity-entity edges.
func buildStressGraph(t testing.TB, ents int) *Graph {
	t.Helper()
	g := New()
	for i := 0; i < ents; i++ {
		typ := "person"
		if i%2 == 1 {
			typ = "org"
		}
		n := g.MustAddEntity(fmt.Sprintf("e%d", i), typ)
		v := g.AddValue(fmt.Sprintf("val%d", i%7))
		g.MustAddTriple(n, "attr", v)
	}
	for i := 1; i < ents; i++ {
		s, _ := g.Entity(fmt.Sprintf("e%d", i))
		o, _ := g.Entity(fmt.Sprintf("e%d", i-1))
		g.MustAddTriple(s, "knows", o)
	}
	return g
}

// TestConcurrentReadersAndWriter is the shard-contract stress test:
// reader goroutines hammer every read accessor while one writer
// applies remove/re-add/remove-entity deltas. Run under -race (the CI
// race job does) this asserts the per-shard RWMutex discipline is
// sound; without -race it still checks that readers never observe a
// structurally broken graph (panics, impossible values).
func TestConcurrentReadersAndWriter(t *testing.T) {
	const ents = 200
	g := buildStressGraph(t, ents)
	pid, ok := g.PredByName("attr")
	if !ok {
		t.Fatal("attr predicate missing")
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	readErr := make(chan string, 8)
	report := func(msg string) {
		select {
		case readErr <- msg:
		default:
		}
	}

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for it := 0; !stop.Load(); it++ {
				n := NodeID((seed*31 + it) % g.NumNodes())
				// EntityType, not IsEntity-then-TypeOf: the writer may
				// tombstone n between two separate calls, and TypeOf
				// panics on tombstones.
				if typ, ok := g.EntityType(n); ok {
					if typ < 0 {
						report("negative TypeID")
					}
					for _, e := range g.Out(n) {
						if e.To < 0 || int(e.To) >= g.NumNodes() {
							report("out-edge to invalid node")
						}
					}
					_ = g.Degree(n)
					_ = g.Neighborhood(n, 2)
				}
				if g.IsValue(n) {
					for _, s := range g.ValueSubjects(pid, n) {
						if !g.IsEntity(s) && g.Label(s) == "" {
							report("posting subject with empty label")
						}
					}
				}
				_ = g.Label(n)
				_ = g.In(n)
				if tid, ok := g.TypeByName("person"); ok {
					ents := g.EntitiesOfType(tid)
					for _, e := range ents {
						_ = g.Label(e)
					}
				}
				_ = g.NumTriples()
				_ = g.NumEntities()
				g.EachValuePosting(func(p PredID, v NodeID, subjects []NodeID) {
					if len(subjects) == 0 {
						report("empty posting list handed out")
					}
				})
			}
		}(r)
	}

	// Writer: churn value triples, entity edges, and whole entities.
	for round := 0; round < 60; round++ {
		i := round % ents
		id := fmt.Sprintf("e%d", i)
		d := &Delta{}
		d.RemoveValueTriple(id, "attr", fmt.Sprintf("val%d", i%7))
		d.AddValueTriple(id, "attr", fmt.Sprintf("val%d", (i+1)%7))
		if _, err := g.ApplyDelta(d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round%10 == 9 {
			// Remove an entity entirely, then re-add it fresh.
			victim := fmt.Sprintf("e%d", (i+5)%ents)
			typ := "person"
			if (i+5)%2 == 1 {
				typ = "org"
			}
			rm := (&Delta{}).RemoveEntity(victim)
			if _, err := g.ApplyDelta(rm); err != nil {
				t.Fatalf("remove entity: %v", err)
			}
			readd := (&Delta{}).AddEntity(victim, typ)
			readd.AddValueTriple(victim, "attr", "valX")
			if _, err := g.ApplyDelta(readd); err != nil {
				t.Fatalf("re-add entity: %v", err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-readErr:
		t.Fatalf("reader observed: %s", msg)
	default:
	}
}

// TestPostingListsSorted asserts the value-index invariant behind the
// merge-join candidate generation: every posting list is sorted by
// NodeID, across interleaved adds and removes.
func TestPostingListsSorted(t *testing.T) {
	g := New()
	// Insert entities so their IDs interleave with value nodes, then
	// attach them to shared values in a scrambled order.
	var ents []NodeID
	for i := 0; i < 40; i++ {
		ents = append(ents, g.MustAddEntity(fmt.Sprintf("e%d", i), "t")) //nolint
		if i%3 == 0 {
			g.AddValue(fmt.Sprintf("pad%d", i))
		}
	}
	v := g.AddValue("shared")
	perm := []int{17, 3, 39, 0, 24, 8, 31, 12, 5, 28, 1, 19, 36, 7, 22}
	for _, i := range perm {
		g.MustAddTriple(ents[i], "p", v)
	}
	pid, _ := g.PredByName("p")
	assertSorted := func() {
		ps := g.ValueSubjects(pid, v)
		for i := 1; i < len(ps); i++ {
			if ps[i-1] >= ps[i] {
				t.Fatalf("posting list not strictly sorted: %v", ps)
			}
		}
	}
	assertSorted()
	if got := len(g.ValueSubjects(pid, v)); got != len(perm) {
		t.Fatalf("posting list has %d subjects, want %d", got, len(perm))
	}
	// Remove a few from the middle and re-add; still sorted.
	for _, i := range []int{3, 24, 17} {
		if !g.RemoveTriple(ents[i], "p", v) {
			t.Fatalf("remove e%d failed", i)
		}
	}
	assertSorted()
	for _, i := range []int{24, 3} {
		g.MustAddTriple(ents[i], "p", v)
	}
	assertSorted()
}

// TestShardLayoutBijection pins the shard addressing: every dense ID
// maps to a unique (shard, local) slot and back.
func TestShardLayoutBijection(t *testing.T) {
	seen := make(map[[2]int]NodeID)
	for n := NodeID(0); n < 5000; n++ {
		key := [2]int{shardIndex(n), localIndex(n)}
		if prev, dup := seen[key]; dup {
			t.Fatalf("nodes %d and %d share slot %v", prev, n, key)
		}
		seen[key] = n
		if got := NodeID(localIndex(n)<<shardBits | shardIndex(n)); got != n {
			t.Fatalf("slot of %d maps back to %d", n, got)
		}
	}
}
