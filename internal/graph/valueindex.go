package graph

// This file implements the persistent inverted value index: for every
// (predicate, value node) pair, the posting list of subject entities s
// with a triple (s, p, v) in G. Because equal literals are interned to
// one value node (§2.1 value equality), two entities carry the same
// (p, "lit") attribute iff they appear in the same posting list — the
// join that lets candidate generation (match.CandidatesIndexed, the
// incremental engine's partner lookup) find same-value entity pairs
// without enumerating the quadratic per-type product.
//
// The index is maintained incrementally inside AddTriple and
// RemoveTripleID (and therefore under ApplyDelta, which mutates
// through them); it is never rebuilt. Posting lists are append-only
// per slice: removal copies (see removeOne), so a list handed out by
// ValueSubjects stays valid across later mutations.

// postKey identifies one posting list: a predicate plus the value node
// it points at.
type postKey struct {
	p PredID
	v NodeID
}

// valueIndex maps (predicate, value node) to the subjects carrying
// that attribute, in insertion order.
type valueIndex struct {
	post map[postKey][]NodeID
}

func newValueIndex() valueIndex {
	return valueIndex{post: make(map[postKey][]NodeID)}
}

// add records (s, p, v) if v is a value node. The caller (AddTriple)
// has already deduplicated the triple, so s appears at most once per
// posting list.
func (ix *valueIndex) add(p PredID, v, s NodeID, kind Kind) {
	if kind != ValueKind {
		return
	}
	k := postKey{p, v}
	ix.post[k] = append(ix.post[k], s)
}

// remove erases (s, p, v) from the index if v is a value node.
func (ix *valueIndex) remove(p PredID, v, s NodeID, kind Kind) {
	if kind != ValueKind {
		return
	}
	k := postKey{p, v}
	ps := removeOne(ix.post[k], s)
	if len(ps) == 0 {
		delete(ix.post, k)
	} else {
		ix.post[k] = ps
	}
}

// ValueSubjects returns the posting list for (p, v): every subject
// entity s with the triple (s, p, v), where v is a value node, in
// insertion order. The slice is owned by the graph and must not be
// modified; it is never mutated in place, so a list obtained before a
// RemoveTriple keeps its pre-removal contents.
func (g *Graph) ValueSubjects(p PredID, v NodeID) []NodeID {
	return g.valIndex.post[postKey{p, v}]
}

// EachValuePosting calls fn once per non-empty posting list, in
// unspecified order. The subjects slice is owned by the graph.
func (g *Graph) EachValuePosting(fn func(p PredID, v NodeID, subjects []NodeID)) {
	for k, ps := range g.valIndex.post {
		fn(k.p, k.v, ps)
	}
}

// NumPostings reports the number of non-empty posting lists — the
// number of distinct (predicate, value) attributes in G.
func (g *Graph) NumPostings() int { return len(g.valIndex.post) }
