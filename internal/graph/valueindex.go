package graph

import "sort"

// This file implements the persistent inverted value index: for every
// (predicate, value node) pair, the posting list of subject entities s
// with a triple (s, p, v) in G. Because equal literals are interned to
// one value node (§2.1 value equality), two entities carry the same
// (p, "lit") attribute iff they appear in the same posting list — the
// join that lets candidate generation (match.CandidatesIndexed, the
// incremental engine's partner lookup) find same-value entity pairs
// without enumerating the quadratic per-type product.
//
// The index is maintained incrementally inside AddTriple and
// RemoveTripleID (and therefore under ApplyDelta, which mutates
// through them); it is never rebuilt. Posting lists are sharded with
// their value node (the list for (p, v) lives in v's shard, guarded by
// that shard's lock) and kept sorted by subject NodeID, so candidate
// generation intersects and unions them with merge-joins instead of
// hash probes. A list is never mutated in place — insertion in the
// middle and removal both copy — so a list handed out by ValueSubjects
// stays valid across later mutations.

// postKey identifies one posting list: a predicate plus the value node
// it points at.
type postKey struct {
	p PredID
	v NodeID
}

// postInsert records subject s in the posting list of (p, v), keeping
// the list sorted by NodeID. The caller (addTriple) has already
// deduplicated the triple and holds the shard lock of v.
func postInsert(sh *shard, p PredID, v, s NodeID) {
	k := postKey{p, v}
	ps := sh.post[k]
	i := sort.Search(len(ps), func(i int) bool { return ps[i] >= s })
	if i == len(ps) {
		// Append fast path: in-place growth is safe, handed-out slices
		// never see past their length.
		sh.post[k] = append(ps, s)
		return
	}
	grown := make([]NodeID, 0, len(ps)+1)
	grown = append(grown, ps[:i]...)
	grown = append(grown, s)
	sh.post[k] = append(grown, ps[i:]...)
}

// postRemove erases s from the posting list of (p, v). The caller
// holds the shard lock of v.
func postRemove(sh *shard, p PredID, v, s NodeID) {
	k := postKey{p, v}
	ps := removeOne(sh.post[k], s)
	if len(ps) == 0 {
		delete(sh.post, k)
	} else {
		sh.post[k] = ps
	}
}

// ValueSubjects returns the posting list for (p, v): every subject
// entity s with the triple (s, p, v), where v is a value node, sorted
// by NodeID. The slice is owned by the graph and must not be modified;
// it is never mutated in place, so a list obtained before a
// RemoveTriple keeps its pre-removal contents.
func (g *Graph) ValueSubjects(p PredID, v NodeID) []NodeID {
	sh := g.shardOf(v)
	sh.mu.RLock()
	ps := sh.post[postKey{p, v}]
	sh.mu.RUnlock()
	return ps
}

// EachValuePosting calls fn once per non-empty posting list, in
// ascending (predicate, value) order within each shard. The subjects
// slice is owned by the graph. Each shard's lists are collected under
// that shard's read lock and emitted after it is released, so fn may
// call back into the graph.
func (g *Graph) EachValuePosting(fn func(p PredID, v NodeID, subjects []NodeID)) {
	type posting struct {
		k  postKey
		ps []NodeID
	}
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		batch := make([]posting, 0, len(sh.post))
		for k, ps := range sh.post {
			batch = append(batch, posting{k, ps})
		}
		sh.mu.RUnlock()
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].k.p != batch[j].k.p {
				return batch[i].k.p < batch[j].k.p
			}
			return batch[i].k.v < batch[j].k.v
		})
		for _, b := range batch {
			fn(b.k.p, b.k.v, b.ps)
		}
	}
}

// NumPostings reports the number of non-empty posting lists — the
// number of distinct (predicate, value) attributes in G.
func (g *Graph) NumPostings() int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		n += len(sh.post)
		sh.mu.RUnlock()
	}
	return n
}
