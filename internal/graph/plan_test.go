package graph

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// capture applies the delta with a log hook and returns the normalized
// ops handed to it (nil when the hook was never invoked — the delta
// coalesced to a no-op).
func capture(t *testing.T, g *Graph, d *Delta) (*DeltaResult, []DeltaOp) {
	t.Helper()
	var norm []DeltaOp
	called := false
	res, err := g.ApplyDeltaLogged(d, func(ops []DeltaOp) (DeltaCommit, error) {
		called = true
		norm = append([]DeltaOp(nil), ops...)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		return res, nil
	}
	return res, norm
}

func TestCoalesceDuplicateAdds(t *testing.T) {
	g := buildSmall(t)
	d := (&Delta{}).
		AddValueTriple("a", "tag", "x").
		AddValueTriple("a", "tag", "x").
		AddValueTriple("a", "tag", "x")
	res, norm := capture(t, g, d)
	if len(norm) != 1 {
		t.Fatalf("normalized ops = %v, want exactly 1", norm)
	}
	if len(res.AddedTriples) != 1 {
		t.Fatalf("AddedTriples = %v, want 1", res.AddedTriples)
	}
}

func TestCoalesceAddThenRemoveIsNoop(t *testing.T) {
	g := buildSmall(t)
	before := g.NumNodes()
	d := (&Delta{}).
		AddValueTriple("a", "tag", "fresh-literal").
		RemoveValueTriple("a", "tag", "fresh-literal")
	res, norm := capture(t, g, d)
	if norm != nil {
		t.Fatalf("no-op delta logged %v", norm)
	}
	if !res.Empty() {
		t.Fatalf("no-op delta reported changes: %+v", res)
	}
	// The canceled add never interned its value literal.
	if g.NumNodes() != before {
		t.Fatalf("no-op delta allocated nodes: %d -> %d", before, g.NumNodes())
	}
	if _, ok := g.Value("fresh-literal"); ok {
		t.Fatal("canceled add interned its value")
	}
}

func TestCoalesceRemoveThenReAddIsNoop(t *testing.T) {
	g := buildSmall(t)
	var before bytes.Buffer
	if err := g.WriteText(&before); err != nil {
		t.Fatal(err)
	}
	d := (&Delta{}).
		RemoveTriple("a", "knows", "b").
		AddTriple("a", "knows", "b")
	res, norm := capture(t, g, d)
	if norm != nil || !res.Empty() {
		t.Fatalf("remove+re-add of an existing triple reported changes: norm=%v res=%+v", norm, res)
	}
	var after bytes.Buffer
	if err := g.WriteText(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("graph changed across a net no-op delta")
	}
}

func TestCoalesceEntityCreatedAndRemoved(t *testing.T) {
	g := buildSmall(t)
	before := g.NumNodes()
	d := (&Delta{}).
		AddEntity("ghost", "T").
		AddValueTriple("ghost", "tag", "gx").
		AddTriple("ghost", "knows", "a").
		RemoveEntity("ghost")
	res, norm := capture(t, g, d)
	if norm != nil || !res.Empty() {
		t.Fatalf("created+removed entity reported changes: norm=%v res=%+v", norm, res)
	}
	if g.NumNodes() != before {
		t.Fatalf("canceled incarnation allocated nodes: %d -> %d", before, g.NumNodes())
	}
	if _, ok := g.Entity("ghost"); ok {
		t.Fatal("canceled entity resolvable")
	}
}

func TestCoalesceRemoveEntityThenReAdd(t *testing.T) {
	g := buildSmall(t)
	d := (&Delta{}).
		RemoveEntity("a").
		AddEntity("a", "T").
		AddValueTriple("a", "age", "43")
	res, norm := capture(t, g, d)
	// Normalized: RemoveEntity, AddEntity, AddValueTriple — in order.
	if len(norm) != 3 || norm[0].Kind != OpRemoveEntity || norm[1].Kind != OpAddEntity || norm[2].Kind != OpAddTriple {
		t.Fatalf("normalized ops = %+v", norm)
	}
	if len(res.RemovedEntities) != 1 || len(res.AddedEntities) != 1 {
		t.Fatalf("result %+v", res)
	}
	n, ok := g.Entity("a")
	if !ok {
		t.Fatal("re-added entity not resolvable")
	}
	if n == res.RemovedEntities[0] {
		t.Fatal("tombstoned NodeID reused")
	}
}

// TestApplyDeltaRejectedLeavesGraphUntouched is the atomicity
// regression test: a delta that fails validation — even one whose
// prefix removes an entity and re-adds it — must leave the graph
// byte-identical, with no node allocated and no name interned.
func TestApplyDeltaRejectedLeavesGraphUntouched(t *testing.T) {
	g := buildSmall(t)
	var before bytes.Buffer
	if err := g.WriteText(&before); err != nil {
		t.Fatal(err)
	}
	nodes, ents, preds, trips := g.NumNodes(), g.NumEntities(), g.NumPreds(), g.NumTriples()

	bad := (&Delta{}).
		RemoveEntity("a").
		AddEntity("a", "U").
		AddValueTriple("a", "brandnewpred", "brandnewvalue").
		AddEntity("fresh", "T").
		AddTriple("fresh", "knows", "no-such-entity") // fails validation
	logged := false
	if _, err := g.ApplyDeltaLogged(bad, func([]DeltaOp) (DeltaCommit, error) { logged = true; return nil, nil }); err == nil {
		t.Fatal("invalid delta did not error")
	}
	if logged {
		t.Fatal("rejected delta reached the log")
	}

	var after bytes.Buffer
	if err := g.WriteText(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("rejected delta changed the graph:\nbefore:\n%s\nafter:\n%s", before.String(), after.String())
	}
	if g.NumNodes() != nodes || g.NumEntities() != ents || g.NumPreds() != preds || g.NumTriples() != trips {
		t.Fatalf("rejected delta leaked state: nodes %d->%d ents %d->%d preds %d->%d triples %d->%d",
			nodes, g.NumNodes(), ents, g.NumEntities(), preds, g.NumPreds(), trips, g.NumTriples())
	}
	if _, ok := g.Value("brandnewvalue"); ok {
		t.Fatal("rejected delta interned a value")
	}
	if typ, ok := g.Entity("a"); !ok {
		t.Fatal("rejected delta removed entity a")
	} else if g.TypeName(g.TypeOf(typ)) != "T" {
		t.Fatal("rejected delta changed a's type")
	}
}

// TestApplyDeltaLogAbort pins the write-ahead contract: a log hook
// error aborts the delta before any mutation.
func TestApplyDeltaLogAbort(t *testing.T) {
	g := buildSmall(t)
	var before bytes.Buffer
	if err := g.WriteText(&before); err != nil {
		t.Fatal(err)
	}
	nodes := g.NumNodes()
	d := (&Delta{}).AddEntity("c", "T").AddValueTriple("c", "age", "9")
	if _, err := g.ApplyDeltaLogged(d, func([]DeltaOp) (DeltaCommit, error) { return nil, fmt.Errorf("disk full") }); err == nil {
		t.Fatal("log error did not abort the delta")
	}
	// The same contract holds when the failure surfaces at commit time
	// (a failed group fsync): the delta aborts before any mutation.
	if _, err := g.ApplyDeltaLogged(d, func([]DeltaOp) (DeltaCommit, error) {
		return func() error { return fmt.Errorf("fsync failed") }, nil
	}); err == nil {
		t.Fatal("commit error did not abort the delta")
	}
	var after bytes.Buffer
	if err := g.WriteText(&after); err != nil {
		t.Fatal(err)
	}
	// The commit-time abort may leave reserved dead slots behind (holes
	// in the dense ID space — see reserveNode), so NumNodes can grow;
	// what the contract guarantees is that nothing observable at name
	// level changed: no entity, no value, no triple, byte-identical
	// text.
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("aborted delta mutated the graph")
	}
	if g.NumNodes() < nodes {
		t.Fatal("aborted delta shrank the node space")
	}
	if _, ok := g.Entity("c"); ok {
		t.Fatal("aborted delta created its entity")
	}
	if _, ok := g.Value("9"); ok {
		t.Fatal("aborted delta published its value literal")
	}
}

// TestAdmissionFIFO pins the starvation guarantee: once a writer has
// started waiting, later-arriving writers queue behind it — even ones
// whose own footprints are clear — so a wide-footprint delta is
// admitted before traffic that arrived after it.
func TestAdmissionFIFO(t *testing.T) {
	g := New()
	a := g.MustAddEntity("a", "T")
	b := g.MustAddEntity("b", "T") // different shard from a (IDs 0 and 1)
	_ = b

	// Manually hold a flight over a's shard, as if an execution were in
	// progress there.
	g.pl.mu.Lock()
	tok := g.registerFlight(shardBit(shardIndex(a)))
	g.pl.mu.Unlock()

	var mu sync.Mutex
	var order []string
	done := make(chan struct{}, 2)
	apply := func(name string, d *Delta) {
		if _, err := g.ApplyDelta(d); err != nil {
			t.Error(err)
		}
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
		done <- struct{}{}
	}
	waiters := func() int {
		g.pl.mu.Lock()
		defer g.pl.mu.Unlock()
		return len(g.pl.waitQ)
	}

	// First writer conflicts with the held flight and must wait.
	go apply("conflicting", (&Delta{}).AddValueTriple("a", "p", "x"))
	for waiters() < 1 {
	}
	// Second writer touches only b's shard — clear footprint, but it
	// arrived after a waiter and must queue behind it.
	go apply("disjoint", (&Delta{}).AddValueTriple("b", "p", "y"))
	for waiters() < 2 {
	}

	g.completeFlight(tok)
	<-done
	<-done
	if len(order) != 2 || order[0] != "conflicting" || order[1] != "disjoint" {
		t.Fatalf("admission order = %v, want [conflicting disjoint]", order)
	}
}
