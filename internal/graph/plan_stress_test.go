package graph_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"graphkeys/internal/graph"
	"graphkeys/internal/testutil"
)

// TestConcurrentWritersDisjointShards is the write-path stress test:
// several goroutines stream deltas over disjoint entity groups through
// ApplyDelta while readers hammer the accessors; the final graph must
// equal a serialized application of the same deltas. The stream comes
// from the shared testutil generator at Overlap 0 (group-scoped
// footprints) with entity churn and coalescing ops on. Run under -race
// by the CI race job.
func TestConcurrentWritersDisjointShards(t *testing.T) {
	const writers = 8
	const rounds = 40

	gen := testutil.New(testutil.Config{
		Seed:        11,
		Groups:      writers,
		PerGroup:    12,
		EntityChurn: true,
		Coalesce:    true,
	})
	build := func() *graph.Graph {
		g := graph.New()
		if _, err := g.ApplyDelta(gen.Seed()); err != nil {
			t.Fatal(err)
		}
		return g
	}
	mkDelta := func(w, round int) *graph.Delta { return gen.Delta(w, round) }

	// Concurrent application.
	g := build()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for it := 0; ; it++ {
				select {
				case <-stop:
					return
				default:
				}
				n := graph.NodeID((seed*17 + it) % g.NumNodes())
				if typ, ok := g.EntityType(n); ok && typ >= 0 {
					_ = g.Out(n)
					_ = g.In(n)
				}
				_ = g.NumTriples()
				if tid, ok := g.TypeByName("person"); ok {
					_ = g.EntitiesOfType(tid)
				}
			}
		}(r)
	}
	var werr error
	var werrMu sync.Mutex
	var writersWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWg.Add(1)
		go func(w int) {
			defer writersWg.Done()
			for round := 0; round < rounds; round++ {
				if _, err := g.ApplyDelta(mkDelta(w, round)); err != nil {
					werrMu.Lock()
					werr = fmt.Errorf("writer %d round %d: %v", w, round, err)
					werrMu.Unlock()
					return
				}
			}
		}(w)
	}
	writersWg.Wait()
	close(stop)
	wg.Wait()
	if werr != nil {
		t.Fatal(werr)
	}

	// Serialized application of the same deltas (writer-major order —
	// the groups are disjoint, so any interleaving commutes).
	ref := build()
	for w := 0; w < writers; w++ {
		for round := 0; round < rounds; round++ {
			if _, err := ref.ApplyDelta(mkDelta(w, round)); err != nil {
				t.Fatalf("serial writer %d round %d: %v", w, round, err)
			}
		}
	}
	var got, want bytes.Buffer
	if err := g.WriteText(&got); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteText(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("concurrent application diverges from serialized:\nconcurrent:\n%s\nserial:\n%s", got.String(), want.String())
	}
}
