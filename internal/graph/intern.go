package graph

// Interner maps strings to dense small integer identifiers and back.
// It is used for predicate names and entity type names, which repeat
// heavily across the triples of a graph. The zero value is not usable;
// call NewInterner.
type Interner struct {
	ids   map[string]int32
	names []string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// Intern returns the identifier for s, assigning a fresh one if s has
// not been seen before.
func (in *Interner) Intern(s string) int32 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := int32(len(in.names))
	in.ids[s] = id
	in.names = append(in.names, s)
	return id
}

// Lookup returns the identifier for s and whether s has been interned.
func (in *Interner) Lookup(s string) (int32, bool) {
	id, ok := in.ids[s]
	return id, ok
}

// Name returns the string for id. It panics if id was never assigned.
func (in *Interner) Name(id int32) string { return in.names[id] }

// Len reports the number of distinct strings interned.
func (in *Interner) Len() int { return len(in.names) }

// internPred interns a predicate name with a double-checked read-lock
// fast path: name directories are read-mostly (a handful of distinct
// predicates, millions of lookups), so the common hit costs an RLock
// instead of serializing through the directory write lock. On a miss
// the write lock is taken and Intern re-checks under it, so two racing
// missers agree on one ID.
func (g *Graph) internPred(name string) PredID {
	g.dir.mu.RLock()
	id, ok := g.dir.preds.Lookup(name)
	g.dir.mu.RUnlock()
	if ok {
		return PredID(id)
	}
	g.dir.mu.Lock()
	id = g.dir.preds.Intern(name)
	g.dir.mu.Unlock()
	return PredID(id)
}

// internType is internPred for entity type names.
func (g *Graph) internType(name string) TypeID {
	g.dir.mu.RLock()
	id, ok := g.dir.types.Lookup(name)
	g.dir.mu.RUnlock()
	if ok {
		return TypeID(id)
	}
	g.dir.mu.Lock()
	id = g.dir.types.Intern(name)
	g.dir.mu.Unlock()
	return TypeID(id)
}
