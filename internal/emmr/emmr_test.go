package emmr

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"graphkeys/internal/chase"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/fixtures"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

func run(t *testing.T, g *graph.Graph, set *keys.Set, cfg Config) *Result {
	t.Helper()
	res, err := Run(g, set, cfg)
	if err != nil {
		t.Fatalf("Run(%v): %v", cfg.Variant, err)
	}
	return res
}

func samePairs(a, b []eqrel.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// groundTruth computes the sequential chase for comparison.
func groundTruth(t *testing.T, g *graph.Graph, set *keys.Set) []eqrel.Pair {
	t.Helper()
	res, err := chase.Run(g, set, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Pairs
}

// TestAllVariantsMatchChaseOnFixtures: every variant at several worker
// counts reproduces the sequential chase on all three paper fixtures.
func TestAllVariantsMatchChaseOnFixtures(t *testing.T) {
	fixturesList := []struct {
		name string
		g    *graph.Graph
		set  *keys.Set
	}{
		{"music", fixtures.MusicGraph(), fixtures.MusicKeys()},
		{"company", fixtures.CompanyGraph(), fixtures.CompanyKeys()},
		{"address", fixtures.AddressGraph(), fixtures.AddressKeys()},
	}
	for _, fx := range fixturesList {
		want := groundTruth(t, fx.g, fx.set)
		for _, v := range []Variant{Base, VF2, Opt} {
			for _, p := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/%v/p%d", fx.name, v, p), func(t *testing.T) {
					res := run(t, fx.g, fx.set, Config{P: p, Variant: v})
					if !samePairs(res.Pairs, want) {
						t.Fatalf("pairs = %v, want %v", res.Pairs, want)
					}
				})
			}
		}
	}
}

// TestMusicRounds mirrors Example 8: the music chase takes two
// productive rounds plus one empty round to detect the fixpoint.
func TestMusicRounds(t *testing.T) {
	g := fixtures.MusicGraph()
	res := run(t, g, fixtures.MusicKeys(), Config{P: 2, Variant: Base})
	if res.Stats.Rounds != 3 {
		t.Errorf("rounds = %d, want 3 (two productive, one terminal)", res.Stats.Rounds)
	}
	if res.Stats.IdentifiedDirect != 2 {
		t.Errorf("direct identifications = %d, want 2", res.Stats.IdentifiedDirect)
	}
	if len(res.Pairs) != 2 {
		t.Errorf("pairs = %d, want 2", len(res.Pairs))
	}
}

// TestOptReducesWork: on the music fixture the Opt variant shrinks L
// (alb3/art3 pairs may stay, but the unfiltered count is an upper
// bound) and skips dependency-gated re-checks.
func TestOptReducesWork(t *testing.T) {
	g := fixtures.MusicGraph()
	base := run(t, g, fixtures.MusicKeys(), Config{P: 2, Variant: Base})
	opt := run(t, g, fixtures.MusicKeys(), Config{P: 2, Variant: Opt})
	if opt.Stats.Candidates > opt.Stats.CandidatesUnfiltered {
		t.Error("pairing filter grew L")
	}
	if opt.Stats.Checks > base.Stats.Checks {
		t.Errorf("Opt performed more checks (%d) than Base (%d)",
			opt.Stats.Checks, base.Stats.Checks)
	}
	if opt.Stats.ReducedNeighborhoodNodes > opt.Stats.NeighborhoodNodes {
		t.Error("reduced neighborhoods grew")
	}
}

// TestVF2DoesMoreWork: the enumerate-all baseline must never take fewer
// search steps than the guided search with early termination.
func TestVF2DoesMoreWork(t *testing.T) {
	g := fixtures.MusicGraph()
	base := run(t, g, fixtures.MusicKeys(), Config{P: 1, Variant: Base})
	vf2 := run(t, g, fixtures.MusicKeys(), Config{P: 1, Variant: VF2})
	if vf2.Stats.IsoSteps < base.Stats.IsoSteps {
		t.Errorf("VF2 steps (%d) < guided steps (%d)", vf2.Stats.IsoSteps, base.Stats.IsoSteps)
	}
}

// TestDeterministicAcrossP: the result is identical for any worker
// count (the BSP snapshot semantics make rounds deterministic).
func TestDeterministicAcrossP(t *testing.T) {
	g := fixtures.CompanyGraph()
	set := fixtures.CompanyKeys()
	ref := run(t, g, set, Config{P: 1, Variant: Base})
	for _, p := range []int{2, 3, 8, 16} {
		res := run(t, g, set, Config{P: p, Variant: Base})
		if !samePairs(res.Pairs, ref.Pairs) {
			t.Fatalf("p=%d changed the result", p)
		}
		if res.Stats.Rounds != ref.Stats.Rounds {
			t.Errorf("p=%d changed round count: %d vs %d", p, res.Stats.Rounds, ref.Stats.Rounds)
		}
	}
}

// TestDependencyChainRounds: a dependency chain of length c needs c
// productive rounds — the Exp-3 claim that rounds grow with c.
func TestDependencyChainRounds(t *testing.T) {
	for _, depth := range []int{2, 4, 6} {
		g, set := chainFixture(t, depth)
		res := run(t, g, set, Config{P: 2, Variant: Base})
		// Level k can only be identified in round k+1 (BSP snapshots),
		// and every candidate pair resolves, so the driver stops after
		// exactly depth rounds with no terminal empty round.
		if res.Stats.Rounds != depth {
			t.Errorf("depth %d: rounds = %d, want %d", depth, res.Stats.Rounds, depth)
		}
		if len(res.Pairs) != depth {
			t.Errorf("depth %d: pairs = %d, want %d", depth, len(res.Pairs), depth)
		}
		// Opt agrees and skips work.
		opt := run(t, g, set, Config{P: 2, Variant: Opt})
		if !samePairs(opt.Pairs, res.Pairs) {
			t.Errorf("depth %d: Opt differs", depth)
		}
		if depth >= 4 && opt.Stats.SkippedByDependency == 0 {
			t.Errorf("depth %d: dependency gating skipped nothing", depth)
		}
	}
}

// chainFixture builds the level-chain graph of the chase tests: two
// duplicate chains of entities over types t0..t(depth-1).
func chainFixture(t *testing.T, depth int) (*graph.Graph, *keys.Set) {
	t.Helper()
	dsl := `
key K0 for t0 {
    x -name-> n*
}
`
	for lvl := 1; lvl < depth; lvl++ {
		dsl += fmt.Sprintf(`
key K%d for t%d {
    x -name-> n*
    x -child-> $y:t%d
}
`, lvl, lvl, lvl-1)
	}
	set, err := keys.ParseString(dsl)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	for side := 0; side < 2; side++ {
		var prev graph.NodeID
		for lvl := 0; lvl < depth; lvl++ {
			e := g.MustAddEntity(fmt.Sprintf("s%d_l%d", side, lvl), fmt.Sprintf("t%d", lvl))
			g.MustAddTriple(e, "name", g.AddValue(fmt.Sprintf("name-l%d", lvl)))
			if lvl > 0 {
				g.MustAddTriple(e, "child", prev)
			}
			prev = e
		}
	}
	return g, set
}

// TestTransitiveMergeTriggersDependents: when a union merges two
// existing classes, dependents of all members are re-checked (the
// correctness subtlety the driver's member tracking exists for).
func TestTransitiveMergeTriggersDependents(t *testing.T) {
	// u-pairs (u1,u2) and (u3,u4) are identified by value keys on
	// different attributes; a parent pair (p1,p2) requires its child
	// pair (u2,u3) — which only enters Eq transitively when (u1,u2),
	// (u1,u3) and (u3,u4) all merge into one class.
	set, err := keys.ParseString(`
key KA for u {
    x -a-> a*
}
key KB for u {
    x -b-> b*
}
key KP for p {
    x -name-> n*
    x -child-> $y:u
}`)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	u := make([]graph.NodeID, 5)
	for i := 1; i <= 4; i++ {
		u[i] = g.MustAddEntity(fmt.Sprintf("u%d", i), "u")
	}
	// (u1,u2) share a; (u3,u4) share a (different value); (u2,u3) share b.
	g.MustAddTriple(u[1], "a", g.AddValue("a12"))
	g.MustAddTriple(u[2], "a", g.AddValue("a12"))
	g.MustAddTriple(u[3], "a", g.AddValue("a34"))
	g.MustAddTriple(u[4], "a", g.AddValue("a34"))
	g.MustAddTriple(u[2], "b", g.AddValue("b23"))
	g.MustAddTriple(u[3], "b", g.AddValue("b23"))
	p1 := g.MustAddEntity("p1", "p")
	p2 := g.MustAddEntity("p2", "p")
	g.MustAddTriple(p1, "name", g.AddValue("P"))
	g.MustAddTriple(p2, "name", g.AddValue("P"))
	g.MustAddTriple(p1, "child", u[1])
	g.MustAddTriple(p2, "child", u[4])
	want := groundTruth(t, g, set)
	// (p1,p2) must be identified: u1 ≡ u4 transitively.
	found := false
	for _, pr := range want {
		if graph.NodeID(pr.A) == p1 || graph.NodeID(pr.B) == p2 {
			if graph.NodeID(pr.A) == p1 && graph.NodeID(pr.B) == p2 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("fixture broken: chase did not identify (p1, p2)")
	}
	for _, v := range []Variant{Base, Opt} {
		res := run(t, g, set, Config{P: 2, Variant: v})
		if !samePairs(res.Pairs, want) {
			t.Fatalf("%v: pairs = %v, want %v", v, res.Pairs, want)
		}
	}
}

// TestRandomizedAgainstChase fuzzes all variants against the sequential
// chase on random graphs.
func TestRandomizedAgainstChase(t *testing.T) {
	set, err := keys.ParseString(`
key KA for a {
    x -name-> n*
    x -rel-> $y:b
}
key KB for b {
    x -tag-> t*
}
key KW for a {
    x -name-> n*
    x -near-> _:b
}`)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		want := groundTruth(t, g, set)
		for _, v := range []Variant{Base, VF2, Opt} {
			res := run(t, g, set, Config{P: 3, Variant: v})
			if !samePairs(res.Pairs, want) {
				t.Fatalf("seed %d %v: pairs differ from chase\n got %v\nwant %v",
					seed, v, res.Pairs, want)
			}
		}
	}
}

func randomGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New()
	nB := 5 + rng.Intn(4)
	var bs []graph.NodeID
	for i := 0; i < nB; i++ {
		b := g.MustAddEntity(fmt.Sprintf("b%d", i), "b")
		g.MustAddTriple(b, "tag", g.AddValue(fmt.Sprintf("tag%d", rng.Intn(3))))
		bs = append(bs, b)
	}
	nA := 6 + rng.Intn(4)
	for i := 0; i < nA; i++ {
		a := g.MustAddEntity(fmt.Sprintf("a%d", i), "a")
		g.MustAddTriple(a, "name", g.AddValue(fmt.Sprintf("name%d", rng.Intn(3))))
		g.MustAddTriple(a, "rel", bs[rng.Intn(len(bs))])
		if rng.Intn(2) == 0 {
			g.MustAddTriple(a, "near", bs[rng.Intn(len(bs))])
		}
	}
	return g
}

// TestEmptyAndNoMatchInputs: degenerate inputs terminate immediately.
func TestEmptyAndNoMatchInputs(t *testing.T) {
	res := run(t, graph.New(), fixtures.MusicKeys(), Config{P: 4, Variant: Base})
	if len(res.Pairs) != 0 {
		t.Error("empty graph produced pairs")
	}
	// A graph whose entities share nothing.
	g := graph.New()
	a := g.MustAddEntity("a", "album")
	b := g.MustAddEntity("b", "album")
	g.MustAddTriple(a, "name_of", g.AddValue("A"))
	g.MustAddTriple(b, "name_of", g.AddValue("B"))
	res = run(t, g, fixtures.MusicKeys(), Config{P: 4, Variant: Opt})
	if len(res.Pairs) != 0 {
		t.Error("disjoint albums identified")
	}
}

// TestStragglerInjection: injected map-task delays surface in the
// round statistics but do not change the result.
func TestStragglerInjection(t *testing.T) {
	g := fixtures.MusicGraph()
	res := run(t, g, fixtures.MusicKeys(), Config{
		P:       4,
		Variant: Base,
		TaskDelay: func(w int) {
			if w == 0 {
				time.Sleep(5 * time.Millisecond)
			}
		},
	})
	if len(res.Pairs) != 2 {
		t.Fatalf("straggler changed the result: %v", res.Pairs)
	}
	if res.Stats.MR[0].Straggler < 4*time.Millisecond {
		t.Error("straggler time not recorded")
	}
}

func TestVariantString(t *testing.T) {
	if Base.String() != "EMMR" || VF2.String() != "EMVF2MR" || Opt.String() != "EMOptMR" {
		t.Error("variant names drifted from the paper")
	}
	if Variant(9).String() != "Variant(9)" {
		t.Error("unknown variant formatting")
	}
}
