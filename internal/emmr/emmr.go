// Package emmr implements algorithm EMMR of "Keys for Graphs" (§4) and
// its variants: entity matching by rounds of a (simulated) MapReduce
// job. Each round maps over the active candidate pairs, checking
// (G1^d ∪ G2^d, Eq, Σ) ⊨ (e1, e2) with the EvalMR guided search (or the
// VF2 enumerate-all baseline), groups verdicts by entity in the reduce
// phase, and then the driver merges newly identified pairs into Eq —
// maintaining its transitive closure — until a round identifies nothing
// new (Eq no longer changes).
//
// Three variants reproduce the paper's experimental algorithms:
//
//   - Base (EMMR): guided search with early termination over the full
//     candidate set L, re-checking every unidentified pair each round.
//   - VF2 (EM^VF2_MR): the same driver with the enumerate-then-coincide
//     baseline checker, measuring the cost EvalMR avoids.
//   - Opt (EM^Opt_MR): the §4.2 optimizations — L filtered by the
//     pairing relation, d-neighbors reduced to pairing-relation nodes,
//     and dependency-driven incremental checking (after the first
//     round, a pair is re-checked only when a pair it depends on was
//     newly identified).
//
// One deliberate deviation from the paper's §4.2 "entity dependency"
// description: seeding the first round with only the value-based pairs
// L0 would miss pairs whose recursive keys fire through reflexive or
// wildcard bindings (for example Q4 on the company graph of Fig. 2).
// Our Opt variant therefore checks all of L in round one and applies
// dependency gating from round two on, which preserves the fixpoint.
package emmr

import (
	"fmt"
	"slices"
	"time"

	"graphkeys/internal/engine"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/mapreduce"
	"graphkeys/internal/match"
)

// Variant selects the algorithm flavor.
type Variant int

const (
	// Base is EMMR as in Fig. 4.
	Base Variant = iota
	// VF2 is EM^VF2_MR: no guided pruning, no early termination.
	VF2
	// Opt is EM^Opt_MR with the §4.2 optimization strategies.
	Opt
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case Base:
		return "EMMR"
	case VF2:
		return "EMVF2MR"
	case Opt:
		return "EMOptMR"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Config configures a run.
type Config struct {
	// P is the number of parallel workers (processors), >= 1.
	P int
	// Variant selects Base, VF2 or Opt.
	Variant Variant
	// Match passes through matching options (e.g. a similarity ValueEq).
	Match match.Options
	// TaskDelay is forwarded to the MapReduce runtime for straggler
	// injection in tests.
	TaskDelay func(worker int)
	// Cost forwards a simulated cluster cost model to the MapReduce
	// runtime (zero = disabled); see mapreduce.CostModel.
	Cost mapreduce.CostModel
	// FullSweep disables value-indexed candidate generation and
	// enumerates the full C(n, 2) per-type candidate sweep; results
	// must be identical. It exists for measurement and differential
	// testing.
	FullSweep bool
}

// Stats reports the work a run performed.
type Stats struct {
	// Rounds is the number of MapReduce rounds until the fixpoint.
	Rounds int
	// Candidates is |L| after any filtering; CandidatesUnfiltered is
	// |L| before the pairing filter (identical for Base/VF2).
	Candidates, CandidatesUnfiltered int
	// Checks counts pair checks performed; SkippedByDependency counts
	// pair checks avoided by the Opt incremental gating.
	Checks, SkippedByDependency int
	// IsoSteps accumulates search-tree steps across all checks.
	IsoSteps int64
	// IdentifiedDirect counts pairs identified by a key application
	// (the chase steps); the final Pairs set also includes transitive
	// consequences.
	IdentifiedDirect int
	// NeighborhoodNodes and ReducedNeighborhoodNodes report the summed
	// d-neighbor sizes before and after the pairing reduction (Opt).
	NeighborhoodNodes, ReducedNeighborhoodNodes int
	// MR holds the per-round runtime statistics.
	MR []mapreduce.RoundStats
	// Wall is the total wall-clock duration.
	Wall time.Duration
}

// Result is the outcome of a run.
type Result struct {
	// Pairs is chase(G, Σ): every identified entity pair, sorted.
	Pairs []eqrel.Pair
	// Eq is the underlying equivalence relation.
	Eq    *eqrel.Eq
	Stats Stats
}

// verdict is the map-phase output for one candidate pair.
type verdict struct {
	idx   int
	ok    bool
	steps int
}

// Run computes chase(G, Σ) with the configured variant.
func Run(g *graph.Graph, set *keys.Set, cfg Config) (*Result, error) {
	start := time.Now()
	mo := cfg.Match
	mo.Workers = cfg.P
	m, err := match.New(g, set, mo)
	if err != nil {
		return nil, err
	}
	rt := mapreduce.New(cfg.P)
	rt.TaskDelay = cfg.TaskDelay
	rt.Cost = cfg.Cost

	// The driver merges identifications through the shared tracker (the
	// lock-protected Eq plus class members); its relation becomes the
	// result once the rounds quiesce.
	tr := engine.NewTracker(g.NumNodes())
	res := &Result{}
	st := &res.Stats

	// DriverMR line 1: candidate set and d-neighbors (cached in the
	// matcher). L is generated through the inverted value index unless
	// the caller forces the full sweep. Opt additionally filters L by
	// pairing and reduces the neighborhoods; like the paper's driver,
	// the per-pair work runs as a parallel job.
	var unfiltered []eqrel.Pair
	if cfg.FullSweep {
		unfiltered = m.Candidates()
	} else {
		// Collected rather than consumed lazily: the MapReduce driver
		// partitions L across its simulated cluster up front, so the
		// stream's value here is sharing the greedy-planned joins.
		unfiltered = slices.Collect(m.CandidateStream())
	}
	st.CandidatesUnfiltered = len(unfiltered)
	cands := unfiltered
	type nbhd struct{ g1, g2 *graph.NodeSet }
	var reduced []nbhd
	if cfg.Variant == Opt {
		type pairingOut struct {
			paired bool
			nb     nbhd
		}
		outs := make([]pairingOut, len(unfiltered))
		engine.Parallel(m.Opts.Eng, cfg.P, len(unfiltered), func(i int) {
			e1, e2 := graph.NodeID(unfiltered[i].A), graph.NodeID(unfiltered[i].B)
			r1, r2, paired := m.ReducedNeighborhoods(e1, e2)
			outs[i] = pairingOut{paired: paired, nb: nbhd{r1, r2}}
		})
		cands = nil
		for i, pr := range unfiltered {
			if !outs[i].paired {
				continue
			}
			e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
			cands = append(cands, pr)
			reduced = append(reduced, outs[i].nb)
			st.NeighborhoodNodes += m.Neighborhood(e1).Len() + m.Neighborhood(e2).Len()
			st.ReducedNeighborhoodNodes += outs[i].nb.g1.Len() + outs[i].nb.g2.Len()
		}
	}
	st.Candidates = len(cands)

	depIdx := m.BuildDependencyIndexParallel(cands, cfg.P)

	active := make([]int, len(cands))
	for i := range active {
		active[i] = i
	}

	check := func(idx int, eqView match.EqView) verdict {
		pr := cands[idx]
		e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
		switch cfg.Variant {
		case VF2:
			ok, _, steps := m.IdentifiedVF2(e1, e2, eqView)
			return verdict{idx, ok, steps}
		case Opt:
			nb := reduced[idx]
			steps := 0
			for _, ck := range m.KeysFor(g.TypeOf(e1)) {
				ok, s := m.IdentifiedByKey(ck, e1, e2, nb.g1, nb.g2, eqView)
				steps += s
				if ok {
					return verdict{idx, true, steps}
				}
			}
			return verdict{idx, false, steps}
		default:
			ok, _, steps := m.Identified(e1, e2, eqView)
			return verdict{idx, ok, steps}
		}
	}

	for len(active) > 0 {
		// BSP semantics: every check in a round sees the Eq of the
		// previous round (the global Eq in HDFS). The read-only view is
		// safe for the concurrent map tasks.
		eqSnap := tr.Snapshot().Reader()

		// MapEM: check pairs in parallel, keyed by entity as in Fig. 4.
		verdicts := mapreduce.Round(rt, active,
			func(idx int, emit func(int32, verdict)) {
				v := check(idx, eqSnap)
				emit(cands[idx].A, v)
				if v.ok {
					emit(cands[idx].B, v)
				}
			},
			// ReduceEM: group per entity, forward one verdict per pair
			// (deduplicating the double emission of identified pairs).
			func(e int32, vs []verdict, emit func(verdict)) {
				for _, v := range vs {
					if cands[v.idx].A == e { // emit once, at the A-side reducer
						emit(v)
					}
				}
			})

		newlyIdentified := make([]int, 0, 8)
		changedEntities := make(map[int32]bool)
		for _, v := range verdicts {
			st.Checks++
			st.IsoSteps += int64(v.steps)
			if !v.ok {
				continue
			}
			pr := cands[v.idx]
			// Union and record the merged class members: every cross
			// pair of the two classes is newly in Eq, so dependents of
			// any member may now fire.
			affected, changed := tr.Union(pr.A, pr.B)
			if !changed {
				continue
			}
			for _, x := range affected {
				changedEntities[x] = true
			}
			st.IdentifiedDirect++
			newlyIdentified = append(newlyIdentified, v.idx)
		}

		if len(newlyIdentified) == 0 {
			break
		}

		// Select the next round's active pairs.
		var next []int
		if cfg.Variant == Opt {
			wl := engine.NewWorklist[int]()
			for e := range changedEntities {
				for _, di := range depIdx.Dependents(graph.NodeID(e)) {
					if !tr.Same(cands[di].A, cands[di].B) {
						wl.Push(di)
					}
				}
			}
			next = wl.Drain()
			// Count the re-checks the gating avoided.
			pending := 0
			for i := range cands {
				if !tr.Same(cands[i].A, cands[i].B) {
					pending++
				}
			}
			st.SkippedByDependency += pending - len(next)
		} else {
			for i := range cands {
				if !tr.Same(cands[i].A, cands[i].B) {
					next = append(next, i)
				}
			}
		}
		active = next
	}

	st.Rounds = rt.Rounds()
	st.MR = rt.Stats()
	res.Eq = tr.Relation()
	res.Pairs = res.Eq.Pairs(m.KeyedEntities())
	st.Wall = time.Since(start)
	return res, nil
}
