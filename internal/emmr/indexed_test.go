package emmr

import (
	"testing"

	"graphkeys/internal/fixtures"
	"graphkeys/internal/gen"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

// TestIndexedCandidatesDifferential: every MapReduce variant computes
// the same chase(G, Σ) from the value-index-generated candidate set as
// from the full C(n, 2) sweep, on fixtures and generated workloads.
func TestIndexedCandidatesDifferential(t *testing.T) {
	workloads := []struct {
		name string
		g    *graph.Graph
		set  *keys.Set
	}{
		{"music", fixtures.MusicGraph(), fixtures.MusicKeys()},
		{"company", fixtures.CompanyGraph(), fixtures.CompanyKeys()},
		{"address", fixtures.AddressGraph(), fixtures.AddressKeys()},
	}
	syn, err := gen.Synthetic(gen.DefaultSynthetic())
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, struct {
		name string
		g    *graph.Graph
		set  *keys.Set
	}{"synthetic", syn.Graph, syn.Keys})
	gw, err := gen.Google(gen.FlavorConfig{Seed: 1, Scale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	workloads = append(workloads, struct {
		name string
		g    *graph.Graph
		set  *keys.Set
	}{"google", gw.Graph, gw.Keys})

	for _, w := range workloads {
		for _, v := range []Variant{Base, VF2, Opt} {
			t.Run(w.name+"/"+v.String(), func(t *testing.T) {
				full := run(t, w.g, w.set, Config{P: 3, Variant: v, FullSweep: true})
				indexed := run(t, w.g, w.set, Config{P: 3, Variant: v})
				if !samePairs(full.Pairs, indexed.Pairs) {
					t.Fatalf("%v: indexed candidates changed the result:\nfull    %v\nindexed %v",
						v, full.Pairs, indexed.Pairs)
				}
				if indexed.Stats.CandidatesUnfiltered > full.Stats.CandidatesUnfiltered {
					t.Errorf("indexed L larger than full: %d > %d",
						indexed.Stats.CandidatesUnfiltered, full.Stats.CandidatesUnfiltered)
				}
			})
		}
	}
}
