package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the persistent work-stealing pool behind Parallel.
//
// The strided Parallel of PR 3 spawned fresh goroutines on every call
// and partitioned the index space statically, so a skewed load — one
// giant repair component next to dozens of tiny ones, one hot
// candidate chunk next to cold ones — left all but one worker idle
// while the unlucky one finished alone. The pool keeps a fixed set of
// worker goroutines alive for the life of the process, splits each
// parallel-for into chunks distributed round-robin over per-worker
// deques (preserving the old stride's property that adjacent items
// spread over workers: neighboring candidates tend to cost alike), and
// lets idle workers steal from the busy ones' deque tails.
//
// Deadlock freedom under nesting (the incremental engine fans out over
// deltas whose application fans out again over graph shards) comes
// from submitter participation: the submitting goroutine is always
// participant zero of its own job and drains or steals until no chunk
// is obtainable, so a job completes even if every pool worker is busy
// elsewhere — the pool only ever accelerates a job, it is never
// required for progress. Workers that find nothing to pop or steal
// leave the job instead of waiting, so no pool goroutine ever blocks
// on another job's completion.

// maxPoolWorkers bounds the pool size; requests beyond it still
// complete (extra chunks are drained by stealing), they just share the
// capped worker set.
const maxPoolWorkers = 64

// poolTaskBuckets is the width of the per-worker task CounterVec;
// worker IDs fold into it modulo the width.
const poolTaskBuckets = 16

// chunksPerWorker is the steal granularity: each participant's share
// of the index space splits into this many chunks, so a worker that
// finishes early finds up to chunksPerWorker*(p-1) stealable pieces.
const chunksPerWorker = 8

// Pool is a persistent work-stealing worker pool. A zero Pool is not
// usable; use NewPool, or the process-shared pool Parallel runs on.
// All methods are safe for concurrent use, including nested submission
// from inside a running job.
type Pool struct {
	mu   sync.Mutex
	size int
	jobs chan *Job
}

// NewPool starts a pool with the given number of persistent workers
// (clamped to [1, 64]). Close releases them.
func NewPool(size int) *Pool {
	p := &Pool{jobs: make(chan *Job, 4*maxPoolWorkers)}
	if size < 1 {
		size = 1
	}
	p.ensure(size)
	return p
}

// Close shuts the pool's workers down. No Parallel or Submit call may
// be in flight or follow.
func (p *Pool) Close() {
	close(p.jobs)
}

// ensure grows the worker set to at least n goroutines (capped).
func (p *Pool) ensure(n int) {
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	p.mu.Lock()
	for p.size < n {
		go p.worker(p.size)
		p.size++
	}
	p.mu.Unlock()
}

// worker is the persistent loop of one pool goroutine: take a job
// token, help with that job until nothing is left to pop or steal,
// go back to waiting. It never blocks on a job's completion.
func (p *Pool) worker(id int) {
	for j := range p.jobs {
		slot := int(j.joiners.Add(1))
		if slot >= len(j.deques) {
			continue // job fully subscribed; stale wake token
		}
		j.run(slot, id)
	}
}

// chunkRange is one contiguous piece [lo, hi) of a job's index space.
type chunkRange struct{ lo, hi int32 }

// Job is one submitted parallel-for. Wait blocks until every index has
// run, lending the waiting goroutine to the remaining chunks first.
type Job struct {
	fn     func(int)
	ob     *Obs
	chunks []chunkRange
	deques []deque
	// joiners assigns deque slots to pool workers as they pick up the
	// job's wake tokens; slot 0 is reserved for the submitter/waiter.
	joiners atomic.Int32
	pending atomic.Int32
	done    chan struct{}
}

// deque is one participant's chunk queue: the owner pops from the
// head, thieves steal from the tail. A mutex (not a lock-free deque)
// is enough here — chunks are coarse, so queue operations are rare
// relative to the work they hand out.
type deque struct {
	mu    sync.Mutex
	items []int32
	head  int
}

func (d *deque) pop() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.items) {
		return 0, false
	}
	c := d.items[d.head]
	d.head++
	return c, true
}

func (d *deque) stealTail() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head >= len(d.items) {
		return 0, false
	}
	c := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return c, true
}

// newJob chunks [0, n) over the given participant count and fills the
// per-participant deques round-robin.
func newJob(ob *Obs, participants, n int, fn func(int)) *Job {
	nchunks := participants * chunksPerWorker
	if nchunks > n {
		nchunks = n
	}
	j := &Job{
		fn:     fn,
		ob:     ob,
		chunks: make([]chunkRange, nchunks),
		deques: make([]deque, participants),
		done:   make(chan struct{}),
	}
	size, rem := n/nchunks, n%nchunks
	lo := int32(0)
	for c := range j.chunks {
		hi := lo + int32(size)
		if c < rem {
			hi++
		}
		j.chunks[c] = chunkRange{lo, hi}
		lo = hi
	}
	for s := range j.deques {
		items := make([]int32, 0, (nchunks+participants-1)/participants)
		for c := s; c < nchunks; c += participants {
			items = append(items, int32(c))
		}
		j.deques[s].items = items
	}
	j.pending.Store(int32(nchunks))
	return j
}

// run participates in the job from the given deque slot until no chunk
// can be popped or stolen. workerID is the pool worker's identity for
// the per-worker task counters, or -1 for a submitter/waiter.
func (j *Job) run(slot, workerID int) {
	ob := j.ob
	if ob != nil {
		ob.ActiveWorkers.Inc()
	}
	// Per-chunk accounting accumulates locally and flushes once on the
	// way out: one atomic add per participant-join, not per chunk,
	// keeps the instrumented path within the obs overhead budget.
	var executed, stole int64
	for {
		c, ok := j.deques[slot].pop()
		if !ok {
			c, ok = j.steal(slot)
			if !ok {
				break
			}
			stole++
		}
		r := j.chunks[c]
		for i := r.lo; i < r.hi; i++ {
			j.fn(int(i))
		}
		executed += int64(r.hi - r.lo)
		if j.pending.Add(-1) == 0 {
			close(j.done)
		}
	}
	if ob != nil {
		ob.ActiveWorkers.Dec()
		if stole > 0 {
			ob.PoolSteals.Add(stole)
		}
		if executed > 0 {
			if workerID >= 0 {
				ob.PoolWorkerTasks.At(workerID % poolTaskBuckets).Add(executed)
			} else {
				ob.PoolSubmitterTasks.Add(executed)
			}
		}
	}
}

// steal scans the other participants' deques for a chunk, starting
// just past the thief's own slot.
func (j *Job) steal(slot int) (int32, bool) {
	for k := 1; k < len(j.deques); k++ {
		if c, ok := j.deques[(slot+k)%len(j.deques)].stealTail(); ok {
			return c, true
		}
	}
	return 0, false
}

// Wait blocks until every index of the job has run. The waiter helps
// first: it drains its reserved deque slot and steals leftovers, so a
// job completes even when every pool worker is busy elsewhere.
func (j *Job) Wait() {
	if j.done == nil {
		return // trivial job, ran inline at submission
	}
	j.run(0, -1)
	<-j.done
}

// Parallel runs fn(i) for i in [0, n) on the pool and returns when
// every call has. The submitting goroutine always participates, so
// nested Parallel calls from inside a running job cannot deadlock.
// Like the package-level Parallel it degrades to an inline loop when
// workers < 2 or n < 2. ob is the caller's instrument bundle (nil for
// uninstrumented).
func (p *Pool) Parallel(ob *Obs, workers, n int, fn func(i int)) {
	p.Submit(ob, workers, n, fn).Wait()
}

// Submit enqueues fn over [0, n) as a job on the pool and returns
// without waiting; pool workers start on it immediately. The caller
// must eventually Wait — the waiter lends its goroutine to whatever
// chunks remain. Trivial submissions (workers < 2 or n < 2) run
// inline before Submit returns. The job's fan-out is accounted to ob
// (nil for uninstrumented), so concurrent jobs from different owners
// keep their metrics apart.
func (p *Pool) Submit(ob *Obs, workers, n int, fn func(i int)) *Job {
	if workers > n {
		workers = n
	}
	if ob != nil && n > 0 {
		ob.ParallelCalls.Inc()
		ob.ParallelItems.Add(int64(n))
	}
	if workers < 2 || n < 2 {
		if ob != nil && n > 0 {
			ob.ActiveWorkers.Inc()
			defer ob.ActiveWorkers.Dec()
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		return &Job{}
	}
	p.ensure(workers)
	j := newJob(ob, workers, n, fn)
	for w := 1; w < workers; w++ {
		select {
		case p.jobs <- j:
		default:
			// Token queue full (extreme nesting): skip the wake-up; the
			// waiter drains the unclaimed deques itself.
			return j
		}
	}
	return j
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// shared returns the process-wide pool the package-level Parallel runs
// on, sized to GOMAXPROCS at first use and grown on demand when a
// caller asks for more workers than it has.
func shared() *Pool {
	sharedOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		if n < 1 {
			n = 1
		}
		sharedPool = NewPool(n)
	})
	return sharedPool
}
