package engine

import (
	"sync"

	"graphkeys/internal/eqrel"
)

// Tracker is the lock-protected equivalence relation the concurrent
// engines merge identifications through: a union-find plus
// class-membership lists, so that a union reports every entity of the
// two merged classes — the set whose dependents may newly fire. The
// transitive-closure maintenance the paper's ReduceEM join rule and
// tc-edge propagation implement explicitly in a distributed setting is
// the union-find here; the membership lists are what lets a merge
// trigger re-checks of pairs that depend on entities far from the
// unioned pair.
//
// All methods are safe for concurrent use. Same implements the
// matcher's EqView, so workers can consult the live relation while
// others union into it.
type Tracker struct {
	mu      sync.Mutex
	eq      *eqrel.Eq
	members map[int32][]int32
}

// NewTracker returns a tracker over the identity relation of n nodes.
func NewTracker(n int) *Tracker {
	return &Tracker{eq: eqrel.New(n), members: make(map[int32][]int32)}
}

// Same reports whether (a, b) is in the relation. It implements
// match.EqView.
func (t *Tracker) Same(a, b int32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eq.Same(a, b)
}

// Union merges the classes of a and b. If the relation grew, it
// returns the members of both former classes (the affected entities);
// changed is false when a and b were already equivalent.
func (t *Tracker) Union(a, b int32) (affected []int32, changed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.unionLocked(a, b)
}

func (t *Tracker) unionLocked(a, b int32) (affected []int32, changed bool) {
	ra, rb := t.eq.Find(a), t.eq.Find(b)
	if ra == rb {
		return nil, false
	}
	ca, cb := t.members[ra], t.members[rb]
	if ca == nil {
		ca = []int32{a}
	}
	if cb == nil {
		cb = []int32{b}
	}
	t.eq.Union(a, b)
	merged := append(append(make([]int32, 0, len(ca)+len(cb)), ca...), cb...)
	nr := t.eq.Find(a)
	t.members[nr] = merged
	if ra != nr {
		delete(t.members, ra)
	}
	if rb != nr {
		delete(t.members, rb)
	}
	return merged, true
}

// Snapshot returns an independent copy of the relation, for BSP-style
// rounds where every concurrent check must see the Eq of the previous
// round.
func (t *Tracker) Snapshot() *eqrel.Eq {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eq.Clone()
}

// Relation hands out the underlying Eq once concurrent work has
// finished. The caller must ensure no concurrent access afterwards.
func (t *Tracker) Relation() *eqrel.Eq { return t.eq }
