package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	for _, p := range []int{1, 2, 7, 16} {
		if got := Workers(p); got != p {
			t.Errorf("Workers(%d) = %d, want %d", p, got, p)
		}
	}
	def := Workers(0)
	if def < 1 || def > DefaultWorkers {
		t.Errorf("Workers(0) = %d, want in [1, %d]", def, DefaultWorkers)
	}
	if n := runtime.GOMAXPROCS(0); n < DefaultWorkers && def != n {
		t.Errorf("Workers(0) = %d on GOMAXPROCS=%d, want %d", def, n, n)
	}
	if Workers(-3) != def {
		t.Errorf("Workers(-3) = %d, want default %d", Workers(-3), def)
	}
}

func TestParallelCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 17, 64} {
			hits := make([]atomic.Int32, n)
			Parallel(nil, workers, n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestWorklistDedupAndFIFO(t *testing.T) {
	w := NewWorklist[int]()
	if !w.Push(1) || !w.Push(2) || w.Push(1) {
		t.Fatal("push dedup broken")
	}
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
	if x, ok := w.Pop(); !ok || x != 1 {
		t.Fatalf("Pop = %d,%v, want 1,true", x, ok)
	}
	// Re-push after pop is allowed.
	if !w.Push(1) {
		t.Fatal("re-push after pop rejected")
	}
	got := w.Drain()
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("Drain = %v, want [2 1]", got)
	}
	if _, ok := w.Pop(); ok {
		t.Fatal("Pop on empty reported ok")
	}
}

func TestTrackerUnionMembers(t *testing.T) {
	tr := NewTracker(10)
	aff, changed := tr.Union(1, 2)
	if !changed || len(aff) != 2 {
		t.Fatalf("Union(1,2) = %v,%v", aff, changed)
	}
	if _, changed := tr.Union(2, 1); changed {
		t.Fatal("re-union reported change")
	}
	aff, changed = tr.Union(3, 1)
	if !changed || len(aff) != 3 {
		t.Fatalf("Union(3,1) affected %v, want 3 members", aff)
	}
	if !tr.Same(2, 3) {
		t.Fatal("transitivity lost")
	}
	snap := tr.Snapshot()
	tr.Union(4, 5)
	if snap.Same(4, 5) {
		t.Fatal("snapshot observed a later union")
	}
	if !tr.Relation().Same(4, 5) {
		t.Fatal("relation lost a union")
	}
}

func TestTrackerConcurrentUnions(t *testing.T) {
	const n = 256
	tr := NewTracker(n)
	Parallel(nil, 8, n-1, func(i int) {
		tr.Union(int32(i), int32(i+1))
	})
	if !tr.Same(0, n-1) {
		t.Fatal("chain of unions did not connect ends")
	}
	if got := tr.Relation().Classes(); got != 1 {
		t.Fatalf("classes = %d, want 1", got)
	}
}
