// Package engine is the shared concurrent-execution substrate of the
// entity-matching engines: worker-count resolution, a parallel-for on
// a persistent work-stealing pool, a dedup worklist, and a
// lock-protected equivalence tracker with class-membership lists.
//
// Before this package existed, the sequential chase, EMMR, EMVC and the
// incremental engine each hand-rolled their own partitioning, worklist
// and class-tracking machinery. All four now run on these primitives,
// as does the parallel chase (internal/chase, EngineParallelChase),
// which is built directly on Parallel + Tracker + Worklist.
package engine

import "runtime"

// DefaultWorkers is the ceiling for the default worker count: the
// paper's experiments default to p = 4, and small fixed parallelism
// keeps the simulated-cluster measurements comparable across machines.
const DefaultWorkers = 4

// Workers resolves a caller-supplied worker count: p >= 1 is taken as
// is; anything else defaults to GOMAXPROCS capped at DefaultWorkers,
// so a single-core environment does not pay goroutine overhead for
// parallelism it cannot use.
func Workers(p int) int {
	if p >= 1 {
		return p
	}
	if n := runtime.GOMAXPROCS(0); n < DefaultWorkers {
		if n < 1 {
			return 1
		}
		return n
	}
	return DefaultWorkers
}

// Parallel runs fn(i) for i in [0, n) across the given number of
// workers of the process-shared persistent pool (see pool.go): the
// index space splits into chunks spread round-robin over the
// participants (adjacent items spread over workers — candidate lists
// are sorted, and neighboring pairs tend to cost alike), and idle
// participants steal from busy ones' tails, so skewed loads balance
// instead of striding blindly. It degrades to a sequential inline loop
// when workers < 2 or the problem is trivially small, and returns when
// every call has. ob is the caller's instrument bundle — each layer
// threads its own handle (nil for uninstrumented) so coexisting
// matchers never share counters through a process global.
func Parallel(ob *Obs, workers, n int, fn func(i int)) {
	shared().Parallel(ob, workers, n, fn)
}
