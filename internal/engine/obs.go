package engine

import (
	"sync/atomic"

	"graphkeys/internal/obs"
)

// Obs is the substrate's instrument bundle. Parallel is a free
// function called from every layer, so the hook is a package-global
// atomic pointer rather than a parameter: uninstrumented processes
// pay one atomic load per Parallel call.
type Obs struct {
	// ParallelCalls counts Parallel invocations; ParallelItems counts
	// the items they fanned out (ParallelItems/ParallelCalls is the
	// mean fan-out).
	ParallelCalls *obs.Counter
	ParallelItems *obs.Counter
	// ActiveWorkers tracks the worker goroutines currently running —
	// a live utilization gauge for the whole process.
	ActiveWorkers *obs.Gauge
	// PoolSteals counts chunks taken from another participant's deque
	// tail: the load-imbalance signal of the work-stealing pool (zero
	// means every participant stayed busy on its own share).
	PoolSteals *obs.Counter
	// PoolWorkerTasks counts items executed per persistent pool worker
	// (worker IDs fold modulo the vector width); PoolSubmitterTasks
	// counts items the submitting/waiting goroutines executed
	// themselves. A skew across workers with a low steal count points
	// at chunking too coarse to balance.
	PoolWorkerTasks    *obs.CounterVec
	PoolSubmitterTasks *obs.Counter
}

var globalObs atomic.Pointer[Obs]

// SetObs installs (or, with nil, removes) the process-wide substrate
// instruments.
func SetObs(o *Obs) {
	globalObs.Store(o)
}

// RegisterObs builds an Obs wired to conventionally named instruments
// of the registry and installs it. A nil registry installs nothing.
func RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	SetObs(&Obs{
		ParallelCalls:      r.Counter("engine.parallel_calls", "Parallel invocations"),
		ParallelItems:      r.Counter("engine.parallel_items", "items fanned out by Parallel"),
		ActiveWorkers:      r.Gauge("engine.active_workers", "worker goroutines currently running"),
		PoolSteals:         r.Counter("engine.pool_steals", "chunks stolen from another participant's deque"),
		PoolWorkerTasks:    r.CounterVec("engine.pool_worker_tasks", "items executed per pool worker", "worker", poolTaskBuckets),
		PoolSubmitterTasks: r.Counter("engine.pool_submitter_tasks", "items executed by submitting goroutines"),
	})
}
