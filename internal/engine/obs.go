package engine

import (
	"graphkeys/internal/obs"
)

// Obs is the substrate's instrument bundle, threaded explicitly through
// Parallel/Submit by the layer that owns the registry. It used to be a
// package-global atomic pointer, which silently cross-wired metrics
// whenever two Matchers (two registries) coexisted in one process —
// exactly the multi-matcher shape a serving layer creates. A nil *Obs
// is valid everywhere and means "uninstrumented".
type Obs struct {
	// ParallelCalls counts Parallel invocations; ParallelItems counts
	// the items they fanned out (ParallelItems/ParallelCalls is the
	// mean fan-out).
	ParallelCalls *obs.Counter
	ParallelItems *obs.Counter
	// ActiveWorkers tracks the worker goroutines currently running —
	// a live utilization gauge for this bundle's owner.
	ActiveWorkers *obs.Gauge
	// PoolSteals counts chunks taken from another participant's deque
	// tail: the load-imbalance signal of the work-stealing pool (zero
	// means every participant stayed busy on its own share).
	PoolSteals *obs.Counter
	// PoolWorkerTasks counts items executed per persistent pool worker
	// (worker IDs fold modulo the vector width); PoolSubmitterTasks
	// counts items the submitting/waiting goroutines executed
	// themselves. A skew across workers with a low steal count points
	// at chunking too coarse to balance.
	PoolWorkerTasks    *obs.CounterVec
	PoolSubmitterTasks *obs.Counter
}

// NewObs builds an Obs wired to conventionally named instruments of the
// registry. Instruments are get-or-create by name, so several NewObs
// calls against the same registry share the underlying counters. A nil
// registry yields nil (uninstrumented).
func NewObs(r *obs.Registry) *Obs {
	if r == nil {
		return nil
	}
	return &Obs{
		ParallelCalls:      r.Counter("engine.parallel_calls", "Parallel invocations"),
		ParallelItems:      r.Counter("engine.parallel_items", "items fanned out by Parallel"),
		ActiveWorkers:      r.Gauge("engine.active_workers", "worker goroutines currently running"),
		PoolSteals:         r.Counter("engine.pool_steals", "chunks stolen from another participant's deque"),
		PoolWorkerTasks:    r.CounterVec("engine.pool_worker_tasks", "items executed per pool worker", "worker", poolTaskBuckets),
		PoolSubmitterTasks: r.Counter("engine.pool_submitter_tasks", "items executed by submitting goroutines"),
	}
}
