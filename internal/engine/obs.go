package engine

import (
	"sync/atomic"

	"graphkeys/internal/obs"
)

// Obs is the substrate's instrument bundle. Parallel is a free
// function called from every layer, so the hook is a package-global
// atomic pointer rather than a parameter: uninstrumented processes
// pay one atomic load per Parallel call.
type Obs struct {
	// ParallelCalls counts Parallel invocations; ParallelItems counts
	// the items they fanned out (ParallelItems/ParallelCalls is the
	// mean fan-out).
	ParallelCalls *obs.Counter
	ParallelItems *obs.Counter
	// ActiveWorkers tracks the worker goroutines currently running —
	// a live utilization gauge for the whole process.
	ActiveWorkers *obs.Gauge
}

var globalObs atomic.Pointer[Obs]

// SetObs installs (or, with nil, removes) the process-wide substrate
// instruments.
func SetObs(o *Obs) {
	globalObs.Store(o)
}

// RegisterObs builds an Obs wired to conventionally named instruments
// of the registry and installs it. A nil registry installs nothing.
func RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	SetObs(&Obs{
		ParallelCalls: r.Counter("engine.parallel_calls", "Parallel invocations"),
		ParallelItems: r.Counter("engine.parallel_items", "items fanned out by Parallel"),
		ActiveWorkers: r.Gauge("engine.active_workers", "worker goroutines currently running"),
	})
}
