package engine

import (
	"sync/atomic"
	"testing"
	"time"

	"graphkeys/internal/obs"
)

// Every index must run exactly once, for any worker/size combination,
// including workers beyond the pool's persistent size.
func TestPoolParallelCoversAllIndices(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for _, tc := range []struct{ workers, n int }{
		{1, 0}, {1, 1}, {2, 1}, {2, 2}, {2, 100},
		{4, 3}, {4, 1000}, {8, 17}, {16, 1000}, {100, 257},
	} {
		counts := make([]atomic.Int32, tc.n)
		p.Parallel(nil, tc.workers, tc.n, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d n=%d: index %d ran %d times", tc.workers, tc.n, i, got)
			}
		}
	}
}

// Nested submission must complete even when every pool worker is busy
// with the outer job: the submitter participates in its own job, so
// the pool is never required for progress.
func TestPoolNestedParallelNoDeadlock(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var total atomic.Int64
		p.Parallel(nil, 4, 8, func(i int) {
			p.Parallel(nil, 4, 8, func(j int) {
				total.Add(1)
			})
		})
		if got := total.Load(); got != 64 {
			t.Errorf("nested fan-out ran %d inner items, want 64", got)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested Parallel deadlocked")
	}
}

// Submit returns before the job completes; Wait lends the waiter to
// the leftovers and returns only when every index has run.
func TestPoolSubmitWait(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Int32
	j := p.Submit(nil, 4, 500, func(i int) {
		ran.Add(1)
	})
	j.Wait()
	if got := ran.Load(); got != 500 {
		t.Fatalf("after Wait: %d of 500 indices ran", got)
	}
	// Trivial submissions run inline; Wait on them is a no-op.
	var inline atomic.Int32
	p.Submit(nil, 1, 3, func(i int) { inline.Add(1) }).Wait()
	if got := inline.Load(); got != 3 {
		t.Fatalf("inline submission ran %d of 3", got)
	}
}

// A skewed load must spread: with one chunk's item vastly more
// expensive than the rest, the cheap chunks drain via stealing and the
// per-worker/submitter task counters account for every item exactly
// once.
func TestPoolStealAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	ob := NewObs(reg)

	p := NewPool(4)
	defer p.Close()
	const n = 4000
	var total atomic.Int64
	p.Parallel(ob, 4, n, func(i int) {
		if i == 0 {
			time.Sleep(20 * time.Millisecond) // the skewed item
		}
		total.Add(1)
	})
	if total.Load() != n {
		t.Fatalf("ran %d of %d", total.Load(), n)
	}
	var accounted int64
	for i := 0; i < ob.PoolWorkerTasks.Len(); i++ {
		accounted += ob.PoolWorkerTasks.At(i).Value()
	}
	accounted += ob.PoolSubmitterTasks.Value()
	if accounted != n {
		t.Fatalf("task counters account for %d items, want %d", accounted, n)
	}
}

// The result of a pool-run parallel-for must be independent of worker
// count and identical run to run when the per-index function is pure:
// the chunking is deterministic and every index runs exactly once, so
// writes into a pre-sized slice land identically.
func TestPoolDeterministicWrites(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ref := make([]int, 1000)
	for i := range ref {
		ref[i] = i * i
	}
	for _, workers := range []int{1, 2, 4, 8} {
		out := make([]int, len(ref))
		p.Parallel(nil, workers, len(out), func(i int) {
			out[i] = i * i
		})
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], ref[i])
			}
		}
	}
}
