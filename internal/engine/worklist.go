package engine

// Worklist is a FIFO queue with membership dedup: an item may be
// re-pushed after it has been popped (a later union can make a pair
// newly checkable) but is never queued twice concurrently. It is the
// dependency-worklist shape the incremental engine and the parallel
// chase drain: identifications enqueue the candidate pairs that depend
// on the merged classes.
//
// A Worklist is not safe for concurrent use; drivers that fan work out
// collect results first and push from the merge step, which is
// single-threaded in every engine here.
type Worklist[T comparable] struct {
	queue []T
	head  int
	inQ   map[T]bool
}

// NewWorklist returns an empty worklist.
func NewWorklist[T comparable]() *Worklist[T] {
	return &Worklist[T]{inQ: make(map[T]bool)}
}

// Push enqueues x unless it is already queued. It reports whether the
// item was actually added.
func (w *Worklist[T]) Push(x T) bool {
	if w.inQ[x] {
		return false
	}
	w.inQ[x] = true
	w.queue = append(w.queue, x)
	return true
}

// Pop dequeues the oldest item. After a Pop the item may be pushed
// again.
func (w *Worklist[T]) Pop() (T, bool) {
	var zero T
	if w.head >= len(w.queue) {
		return zero, false
	}
	x := w.queue[w.head]
	w.head++
	delete(w.inQ, x)
	if w.head == len(w.queue) {
		w.queue = w.queue[:0]
		w.head = 0
	}
	return x, true
}

// Len reports the number of queued items.
func (w *Worklist[T]) Len() int { return len(w.queue) - w.head }

// Drain pops and returns every queued item, leaving the list empty.
func (w *Worklist[T]) Drain() []T {
	out := make([]T, 0, w.Len())
	for {
		x, ok := w.Pop()
		if !ok {
			return out
		}
		out = append(out, x)
	}
}
