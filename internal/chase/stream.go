package chase

import (
	"sort"
	"sync/atomic"

	"graphkeys/internal/engine"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/match"
)

// This file runs the chase directly off the streaming candidate
// pipeline (match.CandidateStream): key checks start while candidate
// generation is still running, and the full candidate list L is never
// materialized — only the pairs whose first check failed are retained
// for the fixpoint iteration. Both paths below are provably
// byte-identical (Pairs, Steps, Candidates, IsoSteps) to their
// materialized counterparts in chase.go / parallel.go, which stay as
// the differential oracle (Options.Materialize):
//
//   - Sequential: sweep 1 consumes the stream in its sorted order,
//     which is elementwise the materialized list's order. Same(A, B)
//     is monotone under the chase (unions are never undone), so a pair
//     identified or transitively merged in an earlier sweep is skipped
//     by every later materialized sweep — retaining only the pairs
//     whose check failed, in order, reproduces the materialized sweep
//     loop check for check.
//
//   - Parallel: round 1 of the materialized parallel chase checks all
//     of L against the initial (identity) snapshot, so each verdict is
//     independent of every other pair; checking the stream in bounded
//     chunks against that same snapshot and committing verdicts in
//     stream order produces identical unions and steps regardless of
//     chunk boundaries. The dependency index is then built over the
//     failed pairs only: a dependent pair that succeeded in round 1 is
//     already Same and the materialized worklist filters it at push
//     time, so the gated rounds see identical active sets (failed
//     pairs keep their relative order, so sorted indices agree) and
//     run exactly as in parallel.go.
func runSequentialStreamed(m *match.Matcher, opts Options) *Result {
	res := &Result{Eq: eqrel.New(m.G.NumNodes())}
	stream := m.CandidateStream()
	if opts.UsePairing {
		stream = m.FilterStream(stream)
	}
	// Sweep 1: check pairs as they stream out of the joins, keeping
	// only the failures.
	var failed []eqrel.Pair
	for pr := range stream {
		res.Candidates++
		if res.Eq.Same(pr.A, pr.B) {
			continue
		}
		ok, key, reqs, uses, steps := identify(m, graph.NodeID(pr.A), graph.NodeID(pr.B), res.Eq, opts.UseVF2)
		res.IsoSteps += steps
		if !ok {
			failed = append(failed, pr)
			continue
		}
		res.Eq.Union(pr.A, pr.B)
		res.Steps = append(res.Steps, Step{Pair: pr, Key: key, Requires: reqs, Uses: uses})
	}
	// Fixpoint sweeps over the failed pairs, dropping any that get
	// identified or transitively merged (Same is monotone: once
	// skipped, always skipped).
	changed := len(res.Steps) > 0
	for changed {
		changed = false
		remaining := failed[:0]
		for _, pr := range failed {
			if res.Eq.Same(pr.A, pr.B) {
				continue
			}
			ok, key, reqs, uses, steps := identify(m, graph.NodeID(pr.A), graph.NodeID(pr.B), res.Eq, opts.UseVF2)
			res.IsoSteps += steps
			if !ok {
				remaining = append(remaining, pr)
				continue
			}
			res.Eq.Union(pr.A, pr.B)
			res.Steps = append(res.Steps, Step{Pair: pr, Key: key, Requires: reqs, Uses: uses})
			changed = true
		}
		failed = remaining
	}
	res.Pairs = res.Eq.Pairs(m.KeyedEntities())
	return res
}

// streamChunk bounds how many streamed candidates are in flight per
// parallel check batch: large enough to amortize the fan-out, small
// enough that memory stays O(chunk + failed) instead of O(L).
const streamChunk = 1024

type verdict struct {
	ok   bool
	key  string
	reqs []eqrel.Pair
	uses []graph.Triple
}

// runParallelStreamed is the parallel chase of parallel.go with round
// one fed by the candidate stream in chunks. See the file comment for
// the byte-identity argument; the recursive rounds are verbatim the
// materialized ones, operating on the retained failed pairs.
func runParallelStreamed(m *match.Matcher, recursive bool, opts Options) *Result {
	p := opts.Parallelism
	res := &Result{}
	tr := engine.NewTracker(m.G.NumNodes())
	var isoSteps atomic.Int64

	stream := m.CandidateStream()
	if opts.UsePairing {
		stream = m.FilterStream(stream)
	}

	// Round 1: every check sees the initial identity snapshot, so
	// verdicts are independent of chunk boundaries; commits happen in
	// stream order, exactly as the materialized merge phase would.
	snap := tr.Snapshot().Reader()
	changed := make(map[int32]bool)
	var failed []eqrel.Pair
	chunk := make([]eqrel.Pair, 0, streamChunk)
	verdicts := make([]verdict, streamChunk)
	flush := func() {
		if len(chunk) == 0 {
			return
		}
		engine.Parallel(m.Opts.Eng, p, len(chunk), func(i int) {
			pr := chunk[i]
			ok, key, reqs, uses, steps := identify(m, graph.NodeID(pr.A), graph.NodeID(pr.B), snap, opts.UseVF2)
			isoSteps.Add(int64(steps))
			verdicts[i] = verdict{ok: ok, key: key, reqs: reqs, uses: uses}
		})
		for i, pr := range chunk {
			v := verdicts[i]
			if !v.ok {
				if recursive {
					failed = append(failed, pr)
				}
				continue
			}
			affected, grew := tr.Union(pr.A, pr.B)
			if !grew {
				continue
			}
			res.Steps = append(res.Steps, Step{Pair: pr, Key: v.key, Requires: v.reqs, Uses: v.uses})
			for _, x := range affected {
				changed[x] = true
			}
		}
		chunk = chunk[:0]
	}
	for pr := range stream {
		res.Candidates++
		chunk = append(chunk, pr)
		if len(chunk) == streamChunk {
			flush()
		}
	}
	flush()

	// Recursive rounds: dependency-gated re-checks over the failed
	// pairs, identical to parallel.go's (a failed pair's index order
	// matches its stream order, so the sorted active sets agree with
	// the materialized chase's).
	if recursive && len(changed) > 0 && len(failed) > 0 {
		depIdx := m.BuildDependencyIndexParallel(failed, p)
		active := nextActive(tr, depIdx, failed, changed)
		for len(active) > 0 {
			snap := tr.Snapshot().Reader()
			verdicts := make([]verdict, len(active))
			engine.Parallel(m.Opts.Eng, p, len(active), func(i int) {
				pr := failed[active[i]]
				if snap.Same(pr.A, pr.B) {
					return
				}
				ok, key, reqs, uses, steps := identify(m, graph.NodeID(pr.A), graph.NodeID(pr.B), snap, opts.UseVF2)
				isoSteps.Add(int64(steps))
				if ok {
					verdicts[i] = verdict{ok: true, key: key, reqs: reqs, uses: uses}
				}
			})
			changed := make(map[int32]bool)
			for i, v := range verdicts {
				if !v.ok {
					continue
				}
				pr := failed[active[i]]
				affected, grew := tr.Union(pr.A, pr.B)
				if !grew {
					continue
				}
				res.Steps = append(res.Steps, Step{Pair: pr, Key: v.key, Requires: v.reqs, Uses: v.uses})
				for _, x := range affected {
					changed[x] = true
				}
			}
			if len(changed) == 0 {
				break
			}
			active = nextActive(tr, depIdx, failed, changed)
		}
	}

	res.Eq = tr.Relation()
	res.IsoSteps = int(isoSteps.Load())
	res.Pairs = res.Eq.Pairs(m.KeyedEntities())
	return res
}

// nextActive collects the sorted indices of not-yet-identified pairs
// depending on an entity whose class just merged.
func nextActive(tr *engine.Tracker, depIdx *match.DependencyIndex, pairs []eqrel.Pair, changed map[int32]bool) []int {
	wl := engine.NewWorklist[int]()
	for e := range changed {
		for _, di := range depIdx.Dependents(graph.NodeID(e)) {
			if !tr.Same(pairs[di].A, pairs[di].B) {
				wl.Push(di)
			}
		}
	}
	active := wl.Drain()
	sort.Ints(active)
	return active
}
