package chase

import (
	"fmt"
	"sort"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
)

// This file materializes proof graphs, the witness notion behind the NP
// upper bound of Theorem 2: a DAG whose nodes are chase steps such that
// every step's prerequisites are justified by earlier steps (or by
// transitivity over them), ending in the target pair. Proofs are
// extracted from a chase Result and can be re-verified independently in
// polynomial time (modulo the per-step isomorphism check, which is
// bounded by the key size).

// Proof is a verifiable justification that (G, Σ) ⊨ Target.
type Proof struct {
	Target eqrel.Pair
	// Steps is a topologically ordered subset of the chase steps: every
	// step's Requires pairs are connected by earlier steps.
	Steps []Step
}

// Prove extracts a proof for (e1, e2) from the result. It fails if the
// pair was not identified.
func (r *Result) Prove(e1, e2 graph.NodeID) (*Proof, error) {
	target := eqrel.MakePair(int32(e1), int32(e2))
	if target.A == target.B {
		return &Proof{Target: target}, nil
	}
	if !r.Identified(e1, e2) {
		return nil, fmt.Errorf("chase: (%d, %d) is not identified; no proof exists", e1, e2)
	}
	idxs, err := ProveIndices(r.Steps, target)
	if err != nil {
		return nil, err
	}
	proof := &Proof{Target: target}
	for _, i := range idxs {
		proof.Steps = append(proof.Steps, r.Steps[i])
	}
	return proof, nil
}

// ProveIndices extracts, from any valid chasing sequence, the indices
// of the steps that form a witness chain for the target pair: a
// topologically ordered (by index) subset in which every step's
// Requires pairs are connected by earlier steps, ending in a step path
// connecting the target. It errors when no step path connects the
// pair — the sequence does not identify it. The incremental engine's
// explain surface walks its live step log through here.
func ProveIndices(steps []Step, target eqrel.Pair) ([]int, error) {
	if target.A == target.B {
		return nil, nil
	}
	// Step graph: chase steps are undirected edges between entities;
	// a pair (u, v) in Eq is justified by any u–v path.
	adj := make(map[int32][]int) // entity -> incident step indices
	for i, st := range steps {
		adj[st.Pair.A] = append(adj[st.Pair.A], i)
		adj[st.Pair.B] = append(adj[st.Pair.B], i)
	}
	needed := make(map[int]bool) // step indices in the proof
	var justify func(p eqrel.Pair) error
	justify = func(p eqrel.Pair) error {
		if p.A == p.B {
			return nil
		}
		path, err := stepPath(adj, steps, p)
		if err != nil {
			return err
		}
		for _, si := range path {
			if needed[si] {
				continue
			}
			needed[si] = true
			for _, req := range steps[si].Requires {
				if err := justify(req); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := justify(target); err != nil {
		return nil, err
	}
	idxs := make([]int, 0, len(needed))
	for i := range needed {
		idxs = append(idxs, i)
	}
	// Chase order is a valid topological order: a step's prerequisites
	// were in Eq before it fired, hence justified by earlier steps.
	sort.Ints(idxs)
	return idxs, nil
}

// stepPath finds a path of chase steps connecting p.A to p.B via BFS
// over the step graph and returns the step indices along it.
func stepPath(adj map[int32][]int, steps []Step, p eqrel.Pair) ([]int, error) {
	type visit struct {
		via  int // step index taken to reach the node, -1 at the source
		prev int32
	}
	seen := map[int32]visit{p.A: {via: -1}}
	queue := []int32{p.A}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == p.B {
			var path []int
			for u != p.A {
				v := seen[u]
				path = append(path, v.via)
				u = v.prev
			}
			return path, nil
		}
		for _, si := range adj[u] {
			st := steps[si]
			next := st.Pair.A
			if next == u {
				next = st.Pair.B
			}
			if _, ok := seen[next]; !ok {
				seen[next] = visit{via: si, prev: u}
				queue = append(queue, next)
			}
		}
	}
	return nil, fmt.Errorf("chase: no step path connects (%d, %d); result is inconsistent", p.A, p.B)
}

// Verify replays the proof against the graph and key set from scratch:
// starting at the identity relation, it checks that every step's
// prerequisites already hold, that the step's key indeed identifies the
// step's pair under the partial relation, and that the target pair ends
// up identified. A nil error means the proof is valid.
func (p *Proof) Verify(g *graph.Graph, set *keys.Set, opts match.Options) error {
	m, err := match.New(g, set, opts)
	if err != nil {
		return err
	}
	eq := eqrel.New(g.NumNodes())
	for i, st := range p.Steps {
		for _, req := range st.Requires {
			if !eq.Same(req.A, req.B) {
				return fmt.Errorf("chase: proof step %d requires (%d, %d) which is not yet proven", i, req.A, req.B)
			}
		}
		k, ok := set.ByName(st.Key)
		if !ok {
			return fmt.Errorf("chase: proof step %d uses unknown key %q", i, st.Key)
		}
		ck, err := match.Compile(g, k)
		if err != nil {
			return err
		}
		e1, e2 := graph.NodeID(st.Pair.A), graph.NodeID(st.Pair.B)
		got, _ := m.IdentifiedByKey(ck, e1, e2, m.Neighborhood(e1), m.Neighborhood(e2), eq)
		if !got {
			return fmt.Errorf("chase: proof step %d: key %s does not identify (%d, %d) at this point", i, st.Key, e1, e2)
		}
		eq.Union(st.Pair.A, st.Pair.B)
	}
	if p.Target.A != p.Target.B && !eq.Same(p.Target.A, p.Target.B) {
		return fmt.Errorf("chase: proof steps do not connect the target pair (%d, %d)", p.Target.A, p.Target.B)
	}
	return nil
}
