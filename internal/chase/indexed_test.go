package chase

import (
	"fmt"
	"testing"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/fixtures"
	"graphkeys/internal/gen"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
)

// diffWorkloads enumerates the fixture and generated workloads the
// indexed-candidate differential tests sweep: every paper fixture plus
// synthetic chains across radii (radius 1 exercises the pure
// posting-list join, radius ≥ 2 the neighborhood value-bucket join)
// and both flavored generators.
func diffWorkloads(t *testing.T) []struct {
	name string
	g    *graph.Graph
	set  *keys.Set
} {
	t.Helper()
	out := []struct {
		name string
		g    *graph.Graph
		set  *keys.Set
	}{
		{"music", fixtures.MusicGraph(), fixtures.MusicKeys()},
		{"company", fixtures.CompanyGraph(), fixtures.CompanyKeys()},
		{"address", fixtures.AddressGraph(), fixtures.AddressKeys()},
	}
	for _, cfg := range []struct {
		chain, radius int
	}{{0, 1}, {1, 1}, {2, 2}, {1, 3}} {
		c := gen.DefaultSynthetic()
		c.Chain = cfg.chain
		c.Radius = cfg.radius
		w, err := gen.Synthetic(c)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			name string
			g    *graph.Graph
			set  *keys.Set
		}{fmt.Sprintf("synthetic_c%d_d%d", cfg.chain, cfg.radius), w.Graph, w.Keys})
	}
	for _, fl := range []struct {
		name  string
		build func(gen.FlavorConfig) (*gen.Workload, error)
	}{{"google", gen.Google}, {"dbpedia", gen.DBpedia}} {
		w, err := fl.build(gen.FlavorConfig{Seed: 1, Scale: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			name string
			g    *graph.Graph
			set  *keys.Set
		}{fl.name, w.Graph, w.Keys})
	}
	return out
}

// TestIndexedCandidatesDifferential is the central correctness check of
// value-indexed candidate generation: on every workload, the chase over
// CandidatesIndexed() produces exactly the same chase(G, Σ) as over the
// full Candidates() sweep, and the indexed candidate list is a subset
// of the full one.
func TestIndexedCandidatesDifferential(t *testing.T) {
	for _, w := range diffWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			full, err := Run(w.g, w.set, Options{FullSweep: true})
			if err != nil {
				t.Fatal(err)
			}
			indexed, err := Run(w.g, w.set, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !eqPairs(full.Pairs, indexed.Pairs) {
				t.Fatalf("indexed chase disagrees with full sweep:\nfull    %v\nindexed %v",
					describe(w.g, full.Pairs), describe(w.g, indexed.Pairs))
			}
			if indexed.Candidates > full.Candidates {
				t.Errorf("indexed L larger than full sweep: %d > %d", indexed.Candidates, full.Candidates)
			}

			m, err := match.New(w.g, w.set, match.Options{})
			if err != nil {
				t.Fatal(err)
			}
			inFull := make(map[eqrel.Pair]bool)
			for _, pr := range m.Candidates() {
				inFull[pr] = true
			}
			prev := eqrel.Pair{A: -1, B: -1}
			for _, pr := range m.CandidatesIndexed() {
				if !inFull[pr] {
					t.Fatalf("indexed candidate (%s, %s) not in the full sweep",
						w.g.Label(graph.NodeID(pr.A)), w.g.Label(graph.NodeID(pr.B)))
				}
				if pr == prev {
					t.Fatalf("duplicate indexed candidate (%d, %d)", pr.A, pr.B)
				}
				prev = pr
			}
			t.Logf("|L| full = %d, indexed = %d", full.Candidates, indexed.Candidates)
		})
	}
}

// TestIndexedWithPairing checks the two candidate reductions compose:
// pairing-filtered indexed candidates still reach the same fixpoint.
func TestIndexedWithPairing(t *testing.T) {
	for _, w := range diffWorkloads(t) {
		t.Run(w.name, func(t *testing.T) {
			ref, err := Run(w.g, w.set, Options{FullSweep: true})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(w.g, w.set, Options{UsePairing: true})
			if err != nil {
				t.Fatal(err)
			}
			if !eqPairs(ref.Pairs, got.Pairs) {
				t.Fatalf("indexed+pairing chase disagrees with full sweep")
			}
		})
	}
}

// TestIndexedFallbacks pins the two fallback conditions.
func TestIndexedFallbacks(t *testing.T) {
	// A custom ValueEq can equate distinct value nodes, so the indexed
	// join (which requires a shared interned node) must not be used.
	g := graph.New()
	a := g.MustAddEntity("a", "T")
	b := g.MustAddEntity("b", "T")
	g.MustAddTriple(a, "name", g.AddValue("X"))
	g.MustAddTriple(b, "name", g.AddValue("x"))
	set, err := keys.ParseString("key K for T {\n    x -name-> n*\n}")
	if err != nil {
		t.Fatal(err)
	}
	fold := func(p, q string) bool {
		return p == q || p == "X" && q == "x" || p == "x" && q == "X"
	}
	res, err := Run(g, set, Options{Match: match.Options{ValueEq: fold}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 {
		t.Fatalf("case-folding ValueEq found %d pairs, want 1 (fallback to full sweep)", len(res.Pairs))
	}

	// A purely entity-variable key has no value anchor: its type must
	// fall back to the full sweep (here the witness shares only an
	// entity, never a value).
	g2 := graph.New()
	c := g2.MustAddEntity("c", "T")
	d := g2.MustAddEntity("d", "T")
	e := g2.MustAddEntity("e", "U")
	g2.MustAddTriple(c, "owns", e)
	g2.MustAddTriple(d, "owns", e)
	set2, err := keys.ParseString("key K for T {\n    x -owns-> _:U\n}")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(g2, set2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Pairs) != 1 {
		t.Fatalf("anchor-free key found %d pairs, want 1 (fallback to full sweep)", len(res2.Pairs))
	}
}

func eqPairs(a, b []eqrel.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
