package chase

import (
	"fmt"
	"reflect"
	"testing"

	"graphkeys/internal/fixtures"
	"graphkeys/internal/gen"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

// diffCase is one graph/key-set workload the parallel chase must agree
// with the sequential chase on.
type diffCase struct {
	name string
	g    *graph.Graph
	set  *keys.Set
}

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	cases := []diffCase{
		{"music", fixtures.MusicGraph(), fixtures.MusicKeys()},
		{"company", fixtures.CompanyGraph(), fixtures.CompanyKeys()},
		{"address", fixtures.AddressGraph(), fixtures.AddressKeys()},
		{"music-allkeys", fixtures.MusicGraph(), fixtures.AllKeys()},
	}
	for seed := int64(1); seed <= 4; seed++ {
		cfg := gen.DefaultSynthetic()
		cfg.Seed = seed
		cfg.EntitiesPerType = 18 + int(seed)*7
		cfg.Chain = 1 + int(seed)%3
		cfg.Radius = 1 + int(seed)%2
		w, err := gen.Synthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, diffCase{fmt.Sprintf("synthetic-%d", seed), w.Graph, w.Keys})
	}
	for _, flavor := range []struct {
		name  string
		build func(gen.FlavorConfig) (*gen.Workload, error)
	}{{"google", gen.Google}, {"dbpedia", gen.DBpedia}} {
		w, err := flavor.build(gen.FlavorConfig{Seed: 7, Scale: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, diffCase{flavor.name, w.Graph, w.Keys})
	}
	return cases
}

// TestParallelMatchesSequential is the acceptance differential: on
// every fixture and random generator workload, at several worker
// counts, the parallel chase returns byte-identical Pairs to the
// sequential reference — the Church–Rosser property made executable.
func TestParallelMatchesSequential(t *testing.T) {
	for _, tc := range diffCases(t) {
		seq, err := Run(tc.g, tc.set, Options{})
		if err != nil {
			t.Fatalf("%s: sequential: %v", tc.name, err)
		}
		for _, p := range []int{2, 4, 8} {
			for _, full := range []bool{false, true} {
				par, err := Run(tc.g, tc.set, Options{Parallelism: p, FullSweep: full})
				if err != nil {
					t.Fatalf("%s p=%d full=%v: %v", tc.name, p, full, err)
				}
				if !reflect.DeepEqual(seq.Pairs, par.Pairs) {
					t.Errorf("%s p=%d full=%v: parallel pairs diverge\nseq: %v\npar: %v",
						tc.name, p, full, seq.Pairs, par.Pairs)
				}
			}
		}
	}
}

// TestParallelStepsFormValidChasingSequence replays the recorded step
// log of a parallel run: every step's Requires must already hold in
// the relation built from the steps before it, and the replayed
// relation must reach the same fixpoint.
func TestParallelStepsFormValidChasingSequence(t *testing.T) {
	for _, tc := range diffCases(t) {
		res, err := Run(tc.g, tc.set, Options{Parallelism: 4})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		replay := newReplayEq(tc.g.NumNodes())
		for i, st := range res.Steps {
			for _, rq := range st.Requires {
				if !replay.Same(rq.A, rq.B) {
					t.Fatalf("%s: step %d (%v by %s) requires %v before it holds",
						tc.name, i, st.Pair, st.Key, rq)
				}
			}
			replay.Union(st.Pair.A, st.Pair.B)
		}
		for _, pr := range res.Pairs {
			if !replay.Same(pr.A, pr.B) {
				t.Fatalf("%s: replayed steps do not derive pair %v", tc.name, pr)
			}
		}
	}
}

// TestParallelProofsStillProve runs the proof extraction over a
// parallel result, exercising Result.Prove on a concurrent step log.
func TestParallelProofsStillProve(t *testing.T) {
	g, set := fixtures.MusicGraph(), fixtures.MusicKeys()
	res, err := Run(g, set, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res.Pairs {
		proof, err := res.Prove(graph.NodeID(pr.A), graph.NodeID(pr.B))
		if err != nil {
			t.Fatalf("Prove(%v): %v", pr, err)
		}
		if len(proof.Steps) == 0 {
			t.Fatalf("Prove(%v): empty proof", pr)
		}
	}
}

// replayEq is a minimal union-find for replay checks, independent of
// eqrel to keep the test's trust base small.
type replayEq struct{ parent []int32 }

func newReplayEq(n int) *replayEq {
	r := &replayEq{parent: make([]int32, n)}
	for i := range r.parent {
		r.parent[i] = int32(i)
	}
	return r
}

func (r *replayEq) find(a int32) int32 {
	for r.parent[a] != a {
		r.parent[a] = r.parent[r.parent[a]]
		a = r.parent[a]
	}
	return a
}
func (r *replayEq) Same(a, b int32) bool { return r.find(a) == r.find(b) }
func (r *replayEq) Union(a, b int32)     { r.parent[r.find(a)] = r.find(b) }
