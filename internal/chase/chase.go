// Package chase implements the entity matching problem of "Keys for
// Graphs" (§3.1) as a sequential reference algorithm: the revised chase
// that repeatedly applies keys as rules until the equivalence relation
// Eq reaches its fixpoint, chase(G, Σ).
//
// This implementation is the ground truth the parallel engines (EMMR and
// EMVC families) are tested against: by the Church–Rosser property
// (Proposition 1) every terminal chasing sequence has the same result,
// so any correct engine must produce exactly the same pair set.
//
// The package also materializes proof graphs (the witnesses behind
// Theorem 2's NP upper bound): DAGs of chase steps justifying an
// identification, independently verifiable in polynomial time.
package chase

import (
	"fmt"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
)

// Step is one chase step Eq ⇒(e1,e2) Eq′: the pair identified, the key
// that identified it, and the recursive-entity-variable prerequisites
// that were in Eq at the time. Uses records the graph triples the
// witness match consumed on either side — the triple-level provenance
// the incremental engine (internal/inc) invalidates identifications by
// when triples are removed.
type Step struct {
	Pair     eqrel.Pair
	Key      string
	Requires []eqrel.Pair
	Uses     []graph.Triple
}

// Result is the outcome of a terminal chasing sequence.
type Result struct {
	// Eq is chase(G, Σ) as an equivalence relation over node IDs.
	Eq *eqrel.Eq
	// Pairs is chase(G, Σ) materialized: all non-trivial identified
	// entity pairs (including those implied by transitivity), sorted.
	Pairs []eqrel.Pair
	// Steps is the chasing sequence actually taken, in order.
	Steps []Step
	// Candidates is the size of the candidate set L used.
	Candidates int
	// IsoSteps counts guided-search steps across all checks, the
	// sequential analogue of the engines' work counters.
	IsoSteps int
}

// Identified reports whether (G, Σ) ⊨ (e1, e2) in this result.
func (r *Result) Identified(e1, e2 graph.NodeID) bool {
	return r.Eq.Same(int32(e1), int32(e2))
}

// Options configures a chase run.
type Options struct {
	Match match.Options
	// Parallelism selects the parallel chase (see parallel.go) when
	// >= 2: candidate checks fan out across that many workers, and
	// identifications merge through a lock-protected Eq with a
	// dependency worklist driving recursive re-checks. By the
	// Church–Rosser property (Proposition 1) the result is identical
	// to the sequential chase. Values <= 1 run the sequential
	// reference algorithm.
	Parallelism int
	// Order optionally permutes the candidate list before each sweep;
	// it exists so tests can exercise the Church–Rosser property by
	// applying keys in different orders. It must be a permutation. It
	// is a sequential-chase testing hook and is ignored by the
	// parallel path.
	Order func(pairs []eqrel.Pair)
	// UseVF2 selects the enumerate-then-coincide baseline checker
	// instead of the guided search; results must be identical.
	UseVF2 bool
	// UsePairing filters the candidate set by the pairing necessary
	// condition before chasing; results must be identical.
	UsePairing bool
	// FullSweep disables value-indexed candidate generation and
	// enumerates the full C(n, 2) per-type candidate sweep; results
	// must be identical. It exists for measurement and differential
	// testing.
	FullSweep bool
	// Materialize forces the materialized candidate path: build and
	// sort the whole candidate list L before any key check runs, as
	// the chase did before the streaming pipeline. The default streams
	// candidates out of match.CandidateStream instead, never holding
	// L; results must be byte-identical (pairs, step log, stats) — the
	// materialized path is kept as the differential oracle and for
	// measurement. FullSweep and Order imply materialization.
	Materialize bool
}

// Run computes chase(G, Σ). It sweeps the candidate set until a sweep
// identifies nothing new; each sweep consults the Eq computed so far, so
// recursively defined keys fire as soon as their prerequisites are in.
// With Options.Parallelism >= 2 the sweeps fan out across a worker
// pool (see parallel.go); the fixpoint is the same either way.
func Run(g *graph.Graph, set *keys.Set, opts Options) (*Result, error) {
	if opts.Parallelism >= 2 {
		return runParallel(g, set, opts)
	}
	m, err := match.New(g, set, opts.Match)
	if err != nil {
		return nil, err
	}
	if !opts.FullSweep && !opts.Materialize && opts.Order == nil {
		return runSequentialStreamed(m, opts), nil
	}
	var cands []eqrel.Pair
	if opts.FullSweep {
		cands = m.Candidates()
	} else {
		cands = m.CandidatesIndexed()
	}
	if opts.UsePairing {
		cands = m.FilterPaired(cands)
	}
	if opts.Order != nil {
		cands = append([]eqrel.Pair(nil), cands...)
		opts.Order(cands)
	}
	res := &Result{
		Eq:         eqrel.New(g.NumNodes()),
		Candidates: len(cands),
	}
	for {
		changed := false
		for _, pr := range cands {
			if res.Eq.Same(pr.A, pr.B) {
				continue
			}
			e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
			ok, key, reqs, uses, steps := identify(m, e1, e2, res.Eq, opts.UseVF2)
			res.IsoSteps += steps
			if !ok {
				continue
			}
			res.Eq.Union(pr.A, pr.B)
			res.Steps = append(res.Steps, Step{Pair: pr, Key: key, Requires: reqs, Uses: uses})
			changed = true
		}
		if !changed {
			break
		}
	}
	res.Pairs = res.Eq.Pairs(m.KeyedEntities())
	return res, nil
}

// identify runs one chase-step check with the configured checker,
// returning the identifying key name, the witness prerequisites, and
// the triple provenance of the witness.
func identify(m *match.Matcher, e1, e2 graph.NodeID, eq match.EqView, useVF2 bool) (ok bool, key string, reqs []eqrel.Pair, uses []graph.Triple, steps int) {
	if useVF2 {
		got, ck, s := m.IdentifiedVF2(e1, e2, eq)
		if !got {
			return false, "", nil, nil, s
		}
		// Re-derive the witness with the guided search for the proof
		// graph; the extra cost is one successful check.
		okW, raw, used, s2 := m.IdentifiedByKeyProvenance(ck, e1, e2, m.Neighborhood(e1), m.Neighborhood(e2), eq)
		if !okW {
			// The two checkers must agree; treat disagreement as a bug.
			panic(fmt.Sprintf("chase: VF2 identified (%d,%d) by %s but guided search did not", e1, e2, ck.Key.Name))
		}
		return true, ck.Key.Name, toPairs(raw), used, s + s2
	}
	t := m.G.TypeOf(e1)
	g1d, g2d := m.Neighborhood(e1), m.Neighborhood(e2)
	for _, ck := range m.KeysFor(t) {
		got, raw, used, s := m.IdentifiedByKeyProvenance(ck, e1, e2, g1d, g2d, eq)
		steps += s
		if got {
			return true, ck.Key.Name, toPairs(raw), used, steps
		}
	}
	return false, "", nil, nil, steps
}

func toPairs(raw [][2]graph.NodeID) []eqrel.Pair {
	out := make([]eqrel.Pair, 0, len(raw))
	for _, r := range raw {
		out = append(out, eqrel.MakePair(int32(r[0]), int32(r[1])))
	}
	return out
}

// Violation is a witness that G ⊭ Q(x): two distinct entities whose
// matches of Q coincide under plain node identity.
type Violation struct {
	Pair eqrel.Pair
	Key  string
}

// Violations checks key satisfaction (§2.2): it returns, for every key,
// the pairs of distinct entities identified by that key alone under the
// node-identity relation Eq0. An empty result means G ⊨ Σ.
func Violations(g *graph.Graph, set *keys.Set, opts match.Options) ([]Violation, error) {
	m, err := match.New(g, set, opts)
	if err != nil {
		return nil, err
	}
	var out []Violation
	id := match.Identity()
	for pr := range m.CandidateStream() {
		e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
		t := m.G.TypeOf(e1)
		for _, ck := range m.KeysFor(t) {
			ok, _ := m.IdentifiedByKey(ck, e1, e2, m.Neighborhood(e1), m.Neighborhood(e2), id)
			if ok {
				out = append(out, Violation{Pair: pr, Key: ck.Key.Name})
			}
		}
	}
	return out, nil
}
