package chase

import (
	"fmt"
	"math/rand"
	"testing"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/fixtures"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
)

func pairsOf(t *testing.T, g *graph.Graph, ids ...[2]string) map[eqrel.Pair]bool {
	t.Helper()
	out := make(map[eqrel.Pair]bool)
	for _, p := range ids {
		out[eqrel.MakePair(int32(fixtures.Node(g, p[0])), int32(fixtures.Node(g, p[1])))] = true
	}
	return out
}

func assertPairs(t *testing.T, g *graph.Graph, got []eqrel.Pair, want map[eqrel.Pair]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d pairs %v, want %d", len(got), describe(g, got), len(want))
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("unexpected pair (%s, %s)", g.Label(graph.NodeID(p.A)), g.Label(graph.NodeID(p.B)))
		}
	}
}

func describe(g *graph.Graph, ps []eqrel.Pair) []string {
	var out []string
	for _, p := range ps {
		out = append(out, fmt.Sprintf("(%s,%s)", g.Label(graph.NodeID(p.A)), g.Label(graph.NodeID(p.B))))
	}
	return out
}

// TestMusicChase reproduces Example 7 on G1/Σ1.
func TestMusicChase(t *testing.T) {
	g := fixtures.MusicGraph()
	res, err := Run(g, fixtures.MusicKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertPairs(t, g, res.Pairs, pairsOf(t, g,
		[2]string{"alb1", "alb2"}, [2]string{"art1", "art2"}))
	// Q2 must fire before Q3 can (entity dependency).
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(res.Steps))
	}
	if res.Steps[0].Key != "Q2" {
		t.Errorf("first step by %s, want Q2", res.Steps[0].Key)
	}
	if res.Steps[1].Key != "Q3" {
		t.Errorf("second step by %s, want Q3", res.Steps[1].Key)
	}
	if len(res.Steps[1].Requires) != 1 {
		t.Errorf("Q3 step requires %v, want the album pair", res.Steps[1].Requires)
	}
}

// TestCompanyChase reproduces Example 7 on G2/Σ2.
func TestCompanyChase(t *testing.T) {
	g := fixtures.CompanyGraph()
	res, err := Run(g, fixtures.CompanyKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertPairs(t, g, res.Pairs, pairsOf(t, g,
		[2]string{"com1", "com2"}, [2]string{"com4", "com5"}))
}

// TestAddressChase checks the constant-conditioned key Q6.
func TestAddressChase(t *testing.T) {
	g := fixtures.AddressGraph()
	res, err := Run(g, fixtures.AddressKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertPairs(t, g, res.Pairs, pairsOf(t, g, [2]string{"st1", "st2"}))
}

// TestChurchRosser (Proposition 1): the chase result is independent of
// the order keys are applied in.
func TestChurchRosser(t *testing.T) {
	g := fixtures.MusicGraph()
	base, err := Run(g, fixtures.MusicKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		res, err := Run(g, fixtures.MusicKeys(), Options{
			Order: func(ps []eqrel.Pair) {
				rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !samePairs(res.Pairs, base.Pairs) {
			t.Fatalf("seed %d: chase result differs: %v vs %v",
				seed, describe(g, res.Pairs), describe(g, base.Pairs))
		}
	}
}

func samePairs(a, b []eqrel.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVF2ChaseAgrees: the VF2 baseline checker yields the same fixpoint.
func TestVF2ChaseAgrees(t *testing.T) {
	for _, fx := range []struct {
		name string
		g    *graph.Graph
		set  *keys.Set
	}{
		{"music", fixtures.MusicGraph(), fixtures.MusicKeys()},
		{"company", fixtures.CompanyGraph(), fixtures.CompanyKeys()},
		{"address", fixtures.AddressGraph(), fixtures.AddressKeys()},
	} {
		t.Run(fx.name, func(t *testing.T) {
			a, err := Run(fx.g, fx.set, Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(fx.g, fx.set, Options{UseVF2: true})
			if err != nil {
				t.Fatal(err)
			}
			if !samePairs(a.Pairs, b.Pairs) {
				t.Fatalf("VF2 chase differs: %v vs %v", describe(fx.g, a.Pairs), describe(fx.g, b.Pairs))
			}
		})
	}
}

// TestPairingChaseAgrees: filtering L by pairing does not change the
// fixpoint (pairing is a necessary condition).
func TestPairingChaseAgrees(t *testing.T) {
	for _, fx := range []struct {
		name string
		g    *graph.Graph
		set  *keys.Set
	}{
		{"music", fixtures.MusicGraph(), fixtures.MusicKeys()},
		{"company", fixtures.CompanyGraph(), fixtures.CompanyKeys()},
	} {
		t.Run(fx.name, func(t *testing.T) {
			a, err := Run(fx.g, fx.set, Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(fx.g, fx.set, Options{UsePairing: true})
			if err != nil {
				t.Fatal(err)
			}
			if !samePairs(a.Pairs, b.Pairs) {
				t.Fatalf("paired chase differs")
			}
			if b.Candidates > a.Candidates {
				t.Errorf("pairing grew L: %d > %d", b.Candidates, a.Candidates)
			}
		})
	}
}

// TestTransitivity: three duplicate albums collapse into one class and
// all three pairs are reported.
func TestTransitivity(t *testing.T) {
	g := graph.New()
	name := g.AddValue("N")
	year := g.AddValue("2000")
	for i := 1; i <= 3; i++ {
		a := g.MustAddEntity(fmt.Sprintf("a%d", i), "album")
		g.MustAddTriple(a, "name_of", name)
		g.MustAddTriple(a, "release_year", year)
	}
	set, err := keys.ParseString(`
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("pairs = %v, want all 3 pairs of the class", describe(g, res.Pairs))
	}
}

// TestDependencyChainCascade builds a chain t0 <- t1 <- ... <- t4 where
// identifying level i+1 requires level i, exercising deep recursion.
func TestDependencyChainCascade(t *testing.T) {
	const depth = 5
	g := graph.New()
	var dsl string
	dsl = `
key K0 for t0 {
    x -name-> n*
}
`
	for lvl := 1; lvl < depth; lvl++ {
		dsl += fmt.Sprintf(`
key K%d for t%d {
    x -name-> n*
    x -child-> $y:t%d
}
`, lvl, lvl, lvl-1)
	}
	set, err := keys.ParseString(dsl)
	if err != nil {
		t.Fatal(err)
	}
	// Two parallel chains of entities, duplicates level by level. The
	// level-0 entities share a name value; each level-i entity points to
	// its chain's level-(i-1) entity and has a per-level name.
	for side := 0; side < 2; side++ {
		var prev graph.NodeID
		for lvl := 0; lvl < depth; lvl++ {
			e := g.MustAddEntity(fmt.Sprintf("s%d_l%d", side, lvl), fmt.Sprintf("t%d", lvl))
			g.MustAddTriple(e, "name", g.AddValue(fmt.Sprintf("name-l%d", lvl)))
			if lvl > 0 {
				g.MustAddTriple(e, "child", prev)
			}
			prev = e
		}
	}
	res, err := Run(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != depth {
		t.Fatalf("pairs = %d, want %d (one per level)", len(res.Pairs), depth)
	}
	// The chase must have ordered steps bottom-up.
	if len(res.Steps) != depth {
		t.Fatalf("steps = %d, want %d", len(res.Steps), depth)
	}
	for i, st := range res.Steps {
		wantKey := fmt.Sprintf("K%d", i)
		if st.Key != wantKey {
			t.Errorf("step %d by %s, want %s (bottom-up cascade)", i, st.Key, wantKey)
		}
	}
}

// TestProofExtractVerify: proofs extracted from the chase verify, and
// tampered proofs fail verification.
func TestProofExtractVerify(t *testing.T) {
	g := fixtures.MusicGraph()
	set := fixtures.MusicKeys()
	res, err := Run(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	art1, art2 := fixtures.Node(g, "art1"), fixtures.Node(g, "art2")
	proof, err := res.Prove(art1, art2)
	if err != nil {
		t.Fatal(err)
	}
	// The proof for the artist pair must include the album step.
	if len(proof.Steps) != 2 {
		t.Fatalf("proof steps = %d, want 2 (album pair then artist pair)", len(proof.Steps))
	}
	if err := proof.Verify(g, set, match.Options{}); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	// Tamper 1: drop the prerequisite step.
	bad := &Proof{Target: proof.Target, Steps: proof.Steps[1:]}
	if err := bad.Verify(g, set, match.Options{}); err == nil {
		t.Error("proof missing prerequisite verified")
	}
	// Tamper 2: claim the wrong key.
	bad2 := &Proof{Target: proof.Target, Steps: []Step{
		{Pair: proof.Steps[0].Pair, Key: "Q3"},
		proof.Steps[1],
	}}
	if err := bad2.Verify(g, set, match.Options{}); err == nil {
		t.Error("proof with wrong key verified")
	}
	// Tamper 3: unknown key name.
	bad3 := &Proof{Target: proof.Target, Steps: []Step{{Pair: proof.Steps[0].Pair, Key: "QX"}}}
	if err := bad3.Verify(g, set, match.Options{}); err == nil {
		t.Error("proof with unknown key verified")
	}
}

func TestProveUnidentifiedFails(t *testing.T) {
	g := fixtures.MusicGraph()
	res, err := Run(g, fixtures.MusicKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Prove(fixtures.Node(g, "alb1"), fixtures.Node(g, "alb3")); err == nil {
		t.Error("proof produced for unidentified pair")
	}
	// Reflexive pairs have the empty proof.
	p, err := res.Prove(fixtures.Node(g, "alb1"), fixtures.Node(g, "alb1"))
	if err != nil || len(p.Steps) != 0 {
		t.Errorf("reflexive proof: %v, steps=%d", err, len(p.Steps))
	}
	if err := p.Verify(g, fixtures.MusicKeys(), match.Options{}); err != nil {
		t.Errorf("empty proof rejected: %v", err)
	}
}

// TestProofViaTransitivity: prove a pair that entered Eq only through
// transitive closure, not via a direct chase step.
func TestProofViaTransitivity(t *testing.T) {
	g := graph.New()
	name := g.AddValue("N")
	year := g.AddValue("2000")
	var es []graph.NodeID
	for i := 1; i <= 3; i++ {
		a := g.MustAddEntity(fmt.Sprintf("a%d", i), "album")
		g.MustAddTriple(a, "name_of", name)
		g.MustAddTriple(a, "release_year", year)
		es = append(es, a)
	}
	set, err := keys.ParseString(`
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two direct steps identify the class; the third pair is transitive.
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(res.Steps))
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			proof, err := res.Prove(es[i], es[j])
			if err != nil {
				t.Fatalf("prove (%d,%d): %v", i, j, err)
			}
			if err := proof.Verify(g, set, match.Options{}); err != nil {
				t.Fatalf("verify (%d,%d): %v", i, j, err)
			}
		}
	}
}

// TestViolations: key satisfaction checking (G ⊨ Q) reports exactly the
// violating pairs of the fixtures.
func TestViolations(t *testing.T) {
	g := fixtures.MusicGraph()
	vs, err := Violations(g, fixtures.MusicKeys(), match.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Under Eq0 only value-based keys can fire: Q2 on (alb1, alb2).
	if len(vs) != 1 || vs[0].Key != "Q2" {
		t.Fatalf("violations = %+v, want one Q2 violation", vs)
	}
	clean := graph.New()
	a := clean.MustAddEntity("a", "album")
	clean.MustAddTriple(a, "name_of", clean.AddValue("solo"))
	vs, err = Violations(clean, fixtures.MusicKeys(), match.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("clean graph reported violations: %+v", vs)
	}
}

// TestEmptyGraph: chasing an empty graph is a no-op.
func TestEmptyGraph(t *testing.T) {
	g := graph.New()
	res, err := Run(g, fixtures.MusicKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 || len(res.Steps) != 0 {
		t.Error("empty graph produced results")
	}
}

// TestRandomizedOrderInvariance is a property test over random graphs:
// for each random graph, two random chase orders agree (Church-Rosser),
// and the VF2 chase agrees with the guided chase.
func TestRandomizedOrderInvariance(t *testing.T) {
	set, err := keys.ParseString(`
key KA for a {
    x -name-> n*
    x -rel-> $y:b
}
key KB for b {
    x -tag-> t*
}
key KW for a {
    x -name-> n*
    x -near-> _:b
}`)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng)
		base, err := Run(g, set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		shuf, err := Run(g, set, Options{Order: func(ps []eqrel.Pair) {
			rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !samePairs(base.Pairs, shuf.Pairs) {
			t.Fatalf("seed %d: order changed the fixpoint", seed)
		}
		vf2, err := Run(g, set, Options{UseVF2: true})
		if err != nil {
			t.Fatal(err)
		}
		if !samePairs(base.Pairs, vf2.Pairs) {
			t.Fatalf("seed %d: VF2 chase disagrees", seed)
		}
		paired, err := Run(g, set, Options{UsePairing: true})
		if err != nil {
			t.Fatal(err)
		}
		if !samePairs(base.Pairs, paired.Pairs) {
			t.Fatalf("seed %d: pairing-filtered chase disagrees", seed)
		}
	}
}

// randomBipartite builds a small random graph over types a and b with
// shared names/tags so that duplicates occur.
func randomBipartite(rng *rand.Rand) *graph.Graph {
	g := graph.New()
	nA, nB := 6+rng.Intn(4), 5+rng.Intn(4)
	var bs []graph.NodeID
	for i := 0; i < nB; i++ {
		b := g.MustAddEntity(fmt.Sprintf("b%d", i), "b")
		g.MustAddTriple(b, "tag", g.AddValue(fmt.Sprintf("tag%d", rng.Intn(3))))
		bs = append(bs, b)
	}
	for i := 0; i < nA; i++ {
		a := g.MustAddEntity(fmt.Sprintf("a%d", i), "a")
		g.MustAddTriple(a, "name", g.AddValue(fmt.Sprintf("name%d", rng.Intn(3))))
		g.MustAddTriple(a, "rel", bs[rng.Intn(len(bs))])
		if rng.Intn(2) == 0 {
			g.MustAddTriple(a, "near", bs[rng.Intn(len(bs))])
		}
	}
	return g
}
