package chase

import (
	"fmt"
	"reflect"
	"testing"
)

// TestStreamedMatchesMaterialized is the streaming pipeline's
// acceptance differential: at every worker count, with and without the
// pairing filter, the streamed chase (the default) must be
// byte-identical to the materialized oracle (Options.Materialize) —
// not just the fixpoint Pairs but the step log, the candidate count
// and the work counter. Sequential equality holds because retaining
// only failed pairs reproduces the sweep loop check for check (Same is
// monotone); parallel equality because round-1 verdicts depend only on
// the initial snapshot, so chunked streaming commits the same unions
// in the same order.
func TestStreamedMatchesMaterialized(t *testing.T) {
	for _, tc := range diffCases(t) {
		for _, p := range []int{1, 2, 4, 8} {
			for _, pairing := range []bool{false, true} {
				name := fmt.Sprintf("%s/p%d/pairing=%v", tc.name, p, pairing)
				opts := Options{Parallelism: p, UsePairing: pairing}
				streamed, err := Run(tc.g, tc.set, opts)
				if err != nil {
					t.Fatalf("%s: streamed: %v", name, err)
				}
				opts.Materialize = true
				oracle, err := Run(tc.g, tc.set, opts)
				if err != nil {
					t.Fatalf("%s: materialized: %v", name, err)
				}
				if !reflect.DeepEqual(streamed.Pairs, oracle.Pairs) {
					t.Errorf("%s: Pairs diverge\nstreamed: %v\noracle:   %v", name, streamed.Pairs, oracle.Pairs)
				}
				if !reflect.DeepEqual(streamed.Steps, oracle.Steps) {
					t.Errorf("%s: step logs diverge\nstreamed: %v\noracle:   %v", name, streamed.Steps, oracle.Steps)
				}
				if streamed.Candidates != oracle.Candidates {
					t.Errorf("%s: Candidates = %d, oracle %d", name, streamed.Candidates, oracle.Candidates)
				}
				if streamed.IsoSteps != oracle.IsoSteps {
					t.Errorf("%s: IsoSteps = %d, oracle %d", name, streamed.IsoSteps, oracle.IsoSteps)
				}
			}
		}
	}
}

// TestMaterializeOptionPreservesSequentialOracle pins the oracle
// itself: Materialize alone must not change anything relative to the
// pre-streaming chase semantics (FullSweep and Order force the same
// materialized path, so those combinations stay covered by the
// existing differential tests).
func TestMaterializeOptionPreservesSequentialOracle(t *testing.T) {
	for _, tc := range diffCases(t) {
		seq, err := Run(tc.g, tc.set, Options{Materialize: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		full, err := Run(tc.g, tc.set, Options{FullSweep: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(seq.Pairs, full.Pairs) {
			t.Errorf("%s: materialized-indexed vs full-sweep pairs diverge", tc.name)
		}
	}
}
