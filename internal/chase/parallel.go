package chase

import (
	"sort"
	"sync/atomic"

	"graphkeys/internal/engine"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
)

// This file is the parallel chase (EngineParallelChase at the public
// API): the revised chase of §3.1 executed on the shared concurrent
// substrate of internal/engine. The candidate set L is partitioned
// across a worker pool; guided witness checks run concurrently against
// a per-round snapshot of Eq; identifications merge through the
// lock-protected tracker; and a dependency worklist (the entity-pair
// dependency relation of §4.2) selects the pairs whose checks can
// newly succeed after a round's class merges, driving the recursive
// re-checks until the fixpoint.
//
// Correctness rests on two properties:
//
//   - Church–Rosser (Proposition 1): every terminal chasing sequence
//     reaches the same chase(G, Σ), so the nondeterministic
//     interleaving of concurrent checks cannot change the result —
//     only the order of the recorded steps.
//
//   - Dependency completeness: a check of (e1, e2) depends on Eq only
//     through the entity-variable bindings (u', v') its witness needs
//     in Eq. If the check failed against a round's snapshot, it can
//     newly succeed only after classes containing such a u' and v'
//     merge — and every such pair is registered as a dependent of the
//     merged classes' members in the dependency index. Round one
//     checks all of L, so the gated rounds preserve the fixpoint (the
//     same argument EMOptMR's incremental checking relies on, §4.2).
//
// The recorded Steps form a valid chasing sequence: a step's Requires
// held in the snapshot its check ran against, which contains only
// unions merged in earlier rounds, and merges within a round append in
// merge order.
func runParallel(g *graph.Graph, set *keys.Set, opts Options) (*Result, error) {
	p := opts.Parallelism
	mo := opts.Match
	if mo.Workers < p {
		mo.Workers = p
	}
	m, err := match.New(g, set, mo)
	if err != nil {
		return nil, err
	}
	// The dependency machinery only matters when some key is
	// recursive: without entity variables no check consults Eq, so no
	// failed check can newly succeed after a merge and one round
	// reaches the fixpoint.
	recursive := false
	for _, k := range set.Keys() {
		if k.Recursive {
			recursive = true
			break
		}
	}
	if !opts.FullSweep && !opts.Materialize {
		return runParallelStreamed(m, recursive, opts), nil
	}
	var cands []eqrel.Pair
	if opts.FullSweep {
		cands = m.Candidates()
	} else {
		cands = m.CandidatesIndexed()
	}
	if opts.UsePairing {
		cands = m.FilterPaired(cands)
	}
	res := &Result{Candidates: len(cands)}
	tr := engine.NewTracker(g.NumNodes())
	var depIdx *match.DependencyIndex
	if recursive {
		depIdx = m.BuildDependencyIndexParallel(cands, p)
	}
	var isoSteps atomic.Int64

	type verdict struct {
		ok   bool
		key  string
		reqs []eqrel.Pair
		uses []graph.Triple
	}

	active := make([]int, len(cands))
	for i := range active {
		active[i] = i
	}
	for len(active) > 0 {
		// Every check of a round sees the Eq of the previous round; the
		// snapshot reader is safe for any number of workers and free of
		// lock contention on the hot search path.
		snap := tr.Snapshot().Reader()
		verdicts := make([]verdict, len(active))
		engine.Parallel(m.Opts.Eng, p, len(active), func(i int) {
			pr := cands[active[i]]
			if snap.Same(pr.A, pr.B) {
				return
			}
			ok, key, reqs, uses, steps := identify(m, graph.NodeID(pr.A), graph.NodeID(pr.B), snap, opts.UseVF2)
			isoSteps.Add(int64(steps))
			if ok {
				verdicts[i] = verdict{ok: true, key: key, reqs: reqs, uses: uses}
			}
		})

		// Merge phase: commit identifications through the tracker in
		// verdict order and collect the entities of every merged class.
		changed := make(map[int32]bool)
		for i, v := range verdicts {
			if !v.ok {
				continue
			}
			pr := cands[active[i]]
			affected, grew := tr.Union(pr.A, pr.B)
			if !grew {
				// Already merged transitively during this phase; its
				// class members are in changed via those unions.
				continue
			}
			res.Steps = append(res.Steps, Step{Pair: pr, Key: v.key, Requires: v.reqs, Uses: v.uses})
			for _, x := range affected {
				changed[x] = true
			}
		}
		if len(changed) == 0 || depIdx == nil {
			break
		}

		// Dependency worklist: the only pairs whose checks can newly
		// succeed are dependents of the merged classes' members.
		wl := engine.NewWorklist[int]()
		for e := range changed {
			for _, di := range depIdx.Dependents(graph.NodeID(e)) {
				if !tr.Same(cands[di].A, cands[di].B) {
					wl.Push(di)
				}
			}
		}
		active = wl.Drain()
		sort.Ints(active) // deterministic check order round to round
	}

	res.Eq = tr.Relation()
	res.IsoSteps = int(isoSteps.Load())
	res.Pairs = res.Eq.Pairs(m.KeyedEntities())
	return res, nil
}
