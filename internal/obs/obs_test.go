package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket assignment rule: an
// observation equal to a bound lands in that bound's bucket
// (inclusive upper bounds), one past it lands in the next, and values
// above every bound land in the implicit +Inf bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{0, 10, 11, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4 (3 bounds + inf)", len(s.Buckets))
	}
	wantCounts := []uint64{2, 2, 2, 2} // {0,10} {11,100} {101,1000} {1001,5000}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d (le %d): count = %d, want %d", i, b.UpperBound, b.Count, wantCounts[i])
		}
	}
	if s.Buckets[3].UpperBound != math.MaxInt64 {
		t.Errorf("last bucket bound = %d, want MaxInt64", s.Buckets[3].UpperBound)
	}
	if s.Count != 8 || s.Min != 0 || s.Max != 5000 {
		t.Errorf("count/min/max = %d/%d/%d, want 8/0/5000", s.Count, s.Min, s.Max)
	}
	if s.Sum != 0+10+11+100+101+1000+1001+5000 {
		t.Errorf("sum = %d", s.Sum)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := newHistogram([]int64{100, 1, 10})
	h.Observe(5)
	s := h.Snapshot()
	if s.Buckets[0].UpperBound != 1 || s.Buckets[1].UpperBound != 10 || s.Buckets[2].UpperBound != 100 {
		t.Fatalf("bounds not sorted: %+v", s.Buckets)
	}
	if s.Buckets[1].Count != 1 {
		t.Fatalf("5 should land in le=10 bucket: %+v", s.Buckets)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Uniform 1..100: p50 ~ 50, p99 ~ 99. Interpolation is approximate;
	// accept one bucket's width of slack.
	if s.P50 < 40 || s.P50 > 60 {
		t.Errorf("p50 = %d, want ~50", s.P50)
	}
	if s.P99 < 90 || s.P99 > 100 {
		t.Errorf("p99 = %d, want ~99", s.P99)
	}
	if q := s.Quantile(0); q < 1 || q > 10 {
		t.Errorf("q0 = %d, want ~min", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("q1 = %d, want 100 (max)", q)
	}
}

func TestHistogramQuantileSingleObservation(t *testing.T) {
	h := newHistogram(DurationBuckets())
	h.Observe(1234)
	s := h.Snapshot()
	// With one observation clamping to min/max must report the exact
	// value, not a bucket bound.
	if s.P50 != 1234 || s.P99 != 1234 {
		t.Errorf("p50/p99 = %d/%d, want 1234/1234", s.P50, s.P99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram(SizeBuckets())
	s := h.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("empty snapshot not zero: %+v", s)
	}
}

// TestNilInstrumentsNoOp pins the package's core contract: every
// method on nil handles is safe.
func TestNilInstrumentsNoOp(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Error("nil gauge value != 0")
	}
	var h *Histogram
	h.Observe(1)
	if !h.Start().IsZero() {
		t.Error("nil histogram Start should return zero time")
	}
	h.ObserveSince(time.Time{})
	h.ObserveSince(h.Start())
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot not empty")
	}
	var v *CounterVec
	if v.Len() != 0 || v.At(0) != nil {
		t.Error("nil countervec not inert")
	}
	v.At(3).Inc()
	var tr *Tracer
	sp := tr.Begin("x")
	sp.End()
	sp.EndLabel("y")
	tr.SetSink(func(Event) {})
	if tr.Recent() != nil {
		t.Error("nil tracer Recent != nil")
	}
	var r *Registry
	if r.Counter("a", "") != nil || r.Gauge("b", "") != nil ||
		r.Histogram("c", "", nil) != nil || r.CounterVec("d", "", "i", 4) != nil {
		t.Error("nil registry returned non-nil instrument")
	}
	if s := r.Snapshot(); s.Counters == nil || len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

// TestConcurrentIncrements hammers every instrument type from many
// goroutines; run under -race this is the satellite-required
// concurrent-increment race test, and the totals pin atomicity.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", SizeBuckets())
	v := r.CounterVec("v", "", "i", 8)
	tr := NewTracer(16)

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 128))
				v.At(w).Inc()
				if i%500 == 0 {
					sp := tr.Begin("phase")
					sp.EndLabel("w")
					_ = tr.Recent()
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()

	const total = workers * iters
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge = %d, want %d", got, total)
	}
	if got := h.Snapshot().Count; got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var vecTotal int64
	for i := 0; i < v.Len(); i++ {
		if got := v.At(i).Value(); got != iters {
			t.Errorf("vec[%d] = %d, want %d", i, got, iters)
		}
		vecTotal += v.At(i).Value()
	}
	if s := r.Snapshot(); s.Counters["v"] != vecTotal {
		t.Errorf("snapshot vec total = %d, want %d", s.Counters["v"], vecTotal)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x", "") != r.Counter("x", "other help") {
		t.Error("Counter not idempotent by name")
	}
	if r.Histogram("h", "", []int64{1}) != r.Histogram("h", "", []int64{2, 3}) {
		t.Error("Histogram not idempotent by name")
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	var sunk []string
	tr.SetSink(func(ev Event) { sunk = append(sunk, ev.Label) })
	for _, l := range []string{"a", "b", "c", "d", "e"} {
		tr.Begin("phase").EndLabel(l)
	}
	evs := tr.Recent()
	if len(evs) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(evs))
	}
	for i, want := range []string{"c", "d", "e"} {
		if evs[i].Label != want {
			t.Errorf("ring[%d] = %q, want %q (oldest first)", i, evs[i].Label, want)
		}
		if evs[i].Name != "phase" || evs[i].Dur < 0 {
			t.Errorf("ring[%d] malformed: %+v", i, evs[i])
		}
	}
	if len(sunk) != 5 {
		t.Errorf("sink saw %d events, want all 5", len(sunk))
	}
	tr.SetSink(nil)
	tr.Begin("phase").End()
	if len(sunk) != 5 {
		t.Error("sink not removed")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("wal.commits", "total commits").Add(7)
	r.Gauge("writer.queue_depth", "").Set(3)
	h := r.Histogram("wal.group_size", "records per fsync group", SizeBuckets())
	h.Observe(4)
	h.Observe(90000) // lands in +Inf
	r.CounterVec("graph.shard_mutations", "", "shard", 2).At(1).Add(9)
	tr := NewTracer(4)
	tr.Begin("repair").EndLabel("c0")

	srv := httptest.NewServer(Handler(r, tr))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	prom := get("/metrics")
	for _, want := range []string{
		"wal_commits 7",
		"writer_queue_depth 3",
		"wal_group_size_count 2",
		`wal_group_size_bucket{le="+Inf"} 2`,
		`wal_group_size_bucket{le="4"} 1`,
		`graph_shard_mutations{shard="1"} 9`,
		"# TYPE wal_group_size histogram",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, prom)
		}
	}

	vars := get("/vars")
	for _, want := range []string{`"wal.commits": 7`, `"writer.queue_depth": 3`} {
		if !strings.Contains(vars, want) {
			t.Errorf("/vars missing %q in:\n%s", want, vars)
		}
	}

	events := get("/events")
	if !strings.Contains(events, `"repair"`) || !strings.Contains(events, `"c0"`) {
		t.Errorf("/events missing span in:\n%s", events)
	}
}
