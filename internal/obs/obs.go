// Package obs is the observability substrate of the matching system: a
// zero-dependency, allocation-light metrics registry (atomic counters,
// gauges, bounded-bucket histograms with quantile estimates) plus a
// lightweight phase tracer (trace.go). Every concurrent layer — the
// sharded store, the planned write path, the WAL, the incremental
// repair pass, the engine substrate, and the public Matcher/Writer —
// threads its instruments from here; http.go exposes a registry over
// HTTP in Prometheus text and JSON forms.
//
// Instrument handles are nil-safe: every method on a nil *Counter,
// *Gauge, *Histogram, *CounterVec or *Tracer is a no-op, so a layer
// holds (possibly nil) handles and records unconditionally — an
// uninstrumented run pays one nil check per event and nothing else.
// Hot paths that would otherwise call time.Now for a disabled
// histogram use Histogram.Start/ObserveSince, which skip the clock
// read entirely when the handle is nil.
//
// Instrumentation never participates in control flow: enabling a
// registry or tracer cannot change what any engine computes. The
// differential tests in internal/inc pin that (pairs, step log and
// stats byte-identical with obs on and off at every worker count).
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be >= 0; counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready; a
// nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded-bucket histogram of int64 observations
// (latencies in nanoseconds, sizes in items or bytes). Buckets are
// cumulative-style upper bounds, ascending, with an implicit +Inf
// bucket at the end; counts, sum, min and max are atomics, so Observe
// is lock-free and safe for concurrent use. A nil *Histogram no-ops.
type Histogram struct {
	bounds []int64 // ascending upper bounds (inclusive); +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Int64
	count  atomic.Uint64
	min    atomic.Int64 // valid iff count > 0
	max    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; linear would also do for
	// the typical 15-25 buckets, but Search keeps it O(log b) and
	// allocation-free either way.
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Start returns the current time for a later ObserveSince, or the zero
// time when the histogram is nil — skipping the clock read entirely on
// uninstrumented paths.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the nanoseconds elapsed since t0, no-oping on a
// nil histogram or a zero t0 (the Start of a nil handle).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0).Nanoseconds())
}

// Snapshot captures the histogram's current state. Concurrent Observes
// may land between field reads; each field is individually consistent,
// which is all a monitoring read needs.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		ub := int64(math.MaxInt64)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P99 = s.Quantile(0.99)
	return s
}

// Bucket is one histogram bucket: the count of observations at or
// below UpperBound and above the previous bucket's bound. The last
// bucket's UpperBound is math.MaxInt64 (the +Inf bucket).
type Bucket struct {
	UpperBound int64
	Count      uint64
}

// HistogramSnapshot is a point-in-time view of a Histogram.
type HistogramSnapshot struct {
	Count    uint64
	Sum      int64
	Min, Max int64
	P50, P99 int64
	Buckets  []Bucket
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation within the bucket holding the target rank, clamped to
// the observed min/max so tiny samples do not report a bucket bound
// nothing ever reached. Returns 0 with no observations.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	lo := s.Min
	for _, b := range s.Buckets {
		if b.Count == 0 {
			continue
		}
		hi := b.UpperBound
		if hi > s.Max {
			hi = s.Max
		}
		if seen+float64(b.Count) >= rank {
			frac := (rank - seen) / float64(b.Count)
			if frac < 0 {
				frac = 0
			}
			v := float64(lo) + frac*float64(hi-lo)
			return int64(v)
		}
		seen += float64(b.Count)
		lo = hi
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// CounterVec is a fixed-size family of counters distinguished by one
// integer-valued label (e.g. the shard index). A nil *CounterVec
// no-ops; At on it returns a nil *Counter, which also no-ops.
type CounterVec struct {
	label    string
	counters []Counter
}

// At returns the counter for label value i, or nil when out of range.
func (v *CounterVec) At(i int) *Counter {
	if v == nil || i < 0 || i >= len(v.counters) {
		return nil
	}
	return &v.counters[i]
}

// Len reports the family size (0 on nil).
func (v *CounterVec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.counters)
}

// DurationBuckets returns the default latency bucket bounds in
// nanoseconds: a 1-2-5 series from 1µs to 10s. Sub-microsecond
// observations land in the first bucket, which is fine — the paths
// instrumented here (lock waits, fsyncs, repair phases) only get
// interesting above it.
func DurationBuckets() []int64 {
	var out []int64
	for _, base := range []int64{int64(time.Microsecond), int64(10 * time.Microsecond), int64(100 * time.Microsecond),
		int64(time.Millisecond), int64(10 * time.Millisecond), int64(100 * time.Millisecond), int64(time.Second)} {
		out = append(out, base, 2*base, 5*base)
	}
	return append(out, int64(10*time.Second))
}

// SizeBuckets returns the default size bucket bounds: powers of two
// from 1 to 64Ki, for group sizes, batch sizes, posting lengths and
// queue depths.
func SizeBuckets() []int64 {
	var out []int64
	for b := int64(1); b <= 1<<16; b <<= 1 {
		out = append(out, b)
	}
	return out
}

// metric is one registered instrument plus its metadata.
type metric struct {
	name string
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
	v    *CounterVec
}

// Registry is a named collection of instruments. Registration
// (Counter, Gauge, Histogram, CounterVec) is idempotent by name —
// asking again returns the same instrument — and guarded by a mutex;
// the instruments themselves are lock-free. A nil *Registry returns
// nil instruments from every constructor, so wiring code can thread an
// optional registry without branching.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

func (r *Registry) lookup(name, help string) *metric {
	m, ok := r.byName[name]
	if !ok {
		m = &metric{name: name, help: help}
		r.byName[name] = m
		r.ordered = append(r.ordered, m)
	}
	return m
}

// Counter registers (or returns the existing) counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram registers (or returns the existing) histogram under name
// with the given bucket upper bounds (ignored if already registered).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help)
	if m.h == nil {
		m.h = newHistogram(bounds)
	}
	return m.h
}

// CounterVec registers (or returns the existing) counter family under
// name, with n counters labeled 0..n-1 by the given label name.
func (r *Registry) CounterVec(name, help, label string, n int) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help)
	if m.v == nil {
		m.v = &CounterVec{label: label, counters: make([]Counter, n)}
	}
	return m.v
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// keyed by metric name. CounterVec families appear in Counters as
// name{label="i"} entries plus a name total.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures the current value of every registered instrument.
// On a nil registry it returns an empty (non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.ordered))
	copy(metrics, r.ordered)
	r.mu.Unlock()
	for _, m := range metrics {
		switch {
		case m.c != nil:
			s.Counters[m.name] = m.c.Value()
		case m.g != nil:
			s.Gauges[m.name] = m.g.Value()
		case m.h != nil:
			s.Histograms[m.name] = m.h.Snapshot()
		case m.v != nil:
			var total int64
			for i := range m.v.counters {
				c := m.v.counters[i].Value()
				total += c
				s.Counters[fmt.Sprintf("%s{%s=%q}", m.name, m.v.label, fmt.Sprint(i))] = c
			}
			s.Counters[m.name] = total
		}
	}
	return s
}
