package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the phase tracer: begin/end spans with a name and an
// optional label, recorded into a fixed-size ring of recent events and
// optionally streamed to a pluggable sink. It exists for the coarse
// phases of the system — a repair pass's invalidation scan, one
// component's drain, a WAL group flush — not for per-operation events;
// the ring is mutex-guarded on End, which at phase granularity is
// never contended enough to matter.

// Event is one completed span.
type Event struct {
	// Name is the phase name the span was begun with (e.g.
	// "inc.repair.invalidate").
	Name string
	// Label is the optional detail supplied at End (e.g. a component
	// index or a seed count).
	Label string
	// Start is when the span began.
	Start time.Time
	// Dur is how long it ran.
	Dur time.Duration
}

// Tracer records spans. A nil *Tracer no-ops everywhere — Begin on it
// returns a Span whose End does nothing and no clock is read — so
// layers thread an optional tracer without branching.
type Tracer struct {
	sink atomic.Pointer[func(Event)]

	mu   sync.Mutex
	ring []Event
	next int
	n    int // events currently held (<= len(ring))
}

// NewTracer returns a tracer keeping the most recent ringSize events
// (clamped to at least 1).
func NewTracer(ringSize int) *Tracer {
	if ringSize < 1 {
		ringSize = 1
	}
	return &Tracer{ring: make([]Event, ringSize)}
}

// SetSink installs fn to receive every completed span in addition to
// the ring (nil to remove). The sink runs on the instrumented
// goroutine: keep it fast or hand off.
func (t *Tracer) SetSink(fn func(Event)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&fn)
}

// Span is an in-progress phase. The zero Span (from a nil tracer) is
// inert.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// Begin starts a span for the named phase.
func (t *Tracer) Begin(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End completes the span with no label.
func (s Span) End() { s.EndLabel("") }

// EndLabel completes the span, attaching a detail label.
func (s Span) EndLabel(label string) {
	if s.t == nil {
		return
	}
	ev := Event{Name: s.name, Label: label, Start: s.start, Dur: time.Since(s.start)}
	s.t.record(ev)
}

func (t *Tracer) record(ev Event) {
	if fn := t.sink.Load(); fn != nil {
		(*fn)(ev)
	}
	t.mu.Lock()
	t.ring[t.next] = ev
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Recent returns a copy of the retained events, oldest first. Nil
// tracers return nil.
func (t *Tracer) Recent() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}
