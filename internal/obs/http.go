package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// This file exposes a Registry (and optionally a Tracer) over HTTP:
//
//	/metrics  Prometheus text exposition format
//	/vars     the Snapshot as JSON (expvar-style, one GET = one scrape)
//	/events   the tracer's recent spans as JSON
//
// The handler is read-only and allocation-bounded by the registry
// size; callers mount it on whatever mux/port they choose (cmd/emrun
// and cmd/embench wire it together with net/http/pprof under
// -metrics :addr).

// Handler serves the registry (and tracer, when non-nil) as described
// in the file comment. The root path serves a short index.
func Handler(r *Registry, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r)
	})
	mux.HandleFunc("/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		type jsonEvent struct {
			Name    string `json:"name"`
			Label   string `json:"label,omitempty"`
			Start   string `json:"start"`
			DurNano int64  `json:"dur_ns"`
		}
		evs := t.Recent()
		out := make([]jsonEvent, 0, len(evs))
		for _, ev := range evs {
			out = append(out, jsonEvent{Name: ev.Name, Label: ev.Label, Start: ev.Start.Format("2006-01-02T15:04:05.000000Z07:00"), DurNano: int64(ev.Dur)})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		io.WriteString(w, "graphkeys observability\n\n/metrics  Prometheus text\n/vars     JSON snapshot\n/events   recent trace spans\n")
	})
	return mux
}

// promName rewrites a dotted metric name into the Prometheus
// identifier charset (dots and dashes become underscores).
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// WritePrometheus renders every instrument of the registry in the
// Prometheus text exposition format. Histograms emit cumulative
// _bucket series plus _sum and _count, so standard quantile tooling
// (histogram_quantile) works unchanged; the precomputed p50/p99 ride
// along as separate gauges for humans reading the page raw.
func WritePrometheus(w io.Writer, r *Registry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.ordered))
	copy(metrics, r.ordered)
	r.mu.Unlock()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	for _, m := range metrics {
		name := promName(m.name)
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, m.help)
		}
		switch {
		case m.c != nil:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.c.Value())
		case m.g != nil:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, m.g.Value())
		case m.v != nil:
			fmt.Fprintf(w, "# TYPE %s counter\n", name)
			for i := range m.v.counters {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", name, m.v.label, fmt.Sprint(i), m.v.counters[i].Value())
			}
		case m.h != nil:
			s := m.h.Snapshot()
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			var cum uint64
			for _, b := range s.Buckets {
				cum += b.Count
				le := "+Inf"
				if b.UpperBound != int64(^uint64(0)>>1) {
					le = fmt.Sprint(b.UpperBound)
				}
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
			}
			fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum)
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
			fmt.Fprintf(w, "%s_p50 %d\n", name, s.P50)
			fmt.Fprintf(w, "%s_p99 %d\n", name, s.P99)
		}
	}
}
