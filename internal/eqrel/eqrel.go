// Package eqrel implements the equivalence relation Eq of "Keys for
// Graphs" (§3.1): the set of entity pairs identified so far during a
// chase, closed under reflexivity, symmetry and transitivity.
//
// Eq is a union-find (disjoint-set) structure over the node IDs of one
// graph. Union-find gives the transitive-closure maintenance the paper's
// ReduceEM join rule and tc-edge propagation implement explicitly in a
// distributed setting: two entities are in Eq iff they are in the same
// class.
package eqrel

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Eq is a union-find over dense node IDs [0, n). The zero value is not
// usable; call New. Eq is not safe for general concurrent use (see
// Safe), with one carve-out the parallel repair pass relies on:
// concurrent Find/Union/Same calls are race-free as long as every
// goroutine confines itself to a disjoint set of equivalence classes —
// path halving and root relinking only ever write parent/rank entries
// of the classes being touched, and the version/classes counters are
// atomic.
type Eq struct {
	parent []int32
	rank   []uint8
	// version counts effective (class-merging) unions. Engines use it to
	// detect that a round changed Eq. Atomic so that class-disjoint
	// concurrent unions stay race-free.
	version atomic.Int64
	// classes counts current equivalence classes.
	classes atomic.Int64
}

// New returns the identity relation Eq0 = {(e,e)} over n nodes.
func New(n int) *Eq {
	eq := &Eq{
		parent: make([]int32, n),
		rank:   make([]uint8, n),
	}
	eq.classes.Store(int64(n))
	for i := range eq.parent {
		eq.parent[i] = int32(i)
	}
	return eq
}

// Len reports the number of nodes the relation is defined over.
func (eq *Eq) Len() int { return len(eq.parent) }

// Find returns the class representative of a, with path halving.
func (eq *Eq) Find(a int32) int32 {
	for eq.parent[a] != a {
		eq.parent[a] = eq.parent[eq.parent[a]]
		a = eq.parent[a]
	}
	return a
}

// Same reports whether (a, b) ∈ Eq.
func (eq *Eq) Same(a, b int32) bool { return eq.Find(a) == eq.Find(b) }

// Union adds (a, b) to Eq and closes transitively. It reports whether
// the relation actually grew (false if a and b were already equivalent).
func (eq *Eq) Union(a, b int32) bool {
	ra, rb := eq.Find(a), eq.Find(b)
	if ra == rb {
		return false
	}
	if eq.rank[ra] < eq.rank[rb] {
		ra, rb = rb, ra
	}
	eq.parent[rb] = ra
	if eq.rank[ra] == eq.rank[rb] {
		eq.rank[ra]++
	}
	eq.version.Add(1)
	eq.classes.Add(-1)
	return true
}

// Grow extends the relation to cover nodes [0, n), each new node in its
// own class. Existing classes and representatives are untouched; Grow
// with n <= Len is a no-op. It exists for incremental maintenance,
// where the graph gains nodes after the relation was created.
func (eq *Eq) Grow(n int) {
	for len(eq.parent) < n {
		eq.parent = append(eq.parent, int32(len(eq.parent)))
		eq.rank = append(eq.rank, 0)
		eq.classes.Add(1)
	}
}

// Version returns a counter that increases with every effective Union.
func (eq *Eq) Version() int { return int(eq.version.Load()) }

// Classes returns the current number of equivalence classes.
func (eq *Eq) Classes() int { return int(eq.classes.Load()) }

// Reader is a concurrency-safe read-only view of an Eq: its Same uses
// a non-compressing find, so any number of goroutines may query it as
// long as the underlying relation is not mutated concurrently. The
// parallel engines hand Readers of a per-round snapshot to their
// workers.
type Reader struct{ eq *Eq }

// Reader returns a read-only view of the relation's current state.
func (eq *Eq) Reader() Reader { return Reader{eq} }

// Same reports whether (a, b) ∈ Eq, without mutating the structure.
func (r Reader) Same(a, b int32) bool {
	return r.findRO(a) == r.findRO(b)
}

// Find returns a's class representative without mutating the
// structure — the canonical-entity lookup for concurrent readers
// (Eq.Find compresses paths and needs exclusive access).
func (r Reader) Find(a int32) int32 {
	return r.findRO(a)
}

func (r Reader) findRO(a int32) int32 {
	for r.eq.parent[a] != a {
		a = r.eq.parent[a]
	}
	return a
}

// Pair is an unordered entity pair, stored with A < B.
type Pair struct{ A, B int32 }

// MakePair normalizes (a, b) into a Pair with A < B.
func MakePair(a, b int32) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{a, b}
}

// Pairs enumerates every non-trivial pair of Eq restricted to the given
// universe of nodes (typically the entity nodes of the graph): for each
// class, all unordered pairs of its members. The result is sorted.
//
// This materializes chase(G,Σ) as the paper states it — the set of all
// pairs (e1, e2) with (G,Σ) ⊨ (e1, e2).
func (eq *Eq) Pairs(universe []int32) []Pair {
	classes := make(map[int32][]int32)
	for _, n := range universe {
		r := eq.Find(n)
		classes[r] = append(classes[r], n)
	}
	var out []Pair
	for _, members := range classes {
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				out = append(out, Pair{members[i], members[j]})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Clone returns an independent copy of the relation.
func (eq *Eq) Clone() *Eq {
	c := &Eq{
		parent: make([]int32, len(eq.parent)),
		rank:   make([]uint8, len(eq.rank)),
	}
	c.version.Store(eq.version.Load())
	c.classes.Store(eq.classes.Load())
	copy(c.parent, eq.parent)
	copy(c.rank, eq.rank)
	return c
}

// Safe wraps an Eq for concurrent use by the parallel engines. All
// methods take the lock; Find performs path compression and therefore
// also requires the write lock, so a single mutex is used throughout.
type Safe struct {
	mu sync.Mutex
	eq *Eq
}

// NewSafe returns a concurrent identity relation over n nodes.
func NewSafe(n int) *Safe { return &Safe{eq: New(n)} }

// Same reports whether (a, b) ∈ Eq.
func (s *Safe) Same(a, b int32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eq.Same(a, b)
}

// Union adds (a, b) and reports whether the relation grew.
func (s *Safe) Union(a, b int32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eq.Union(a, b)
}

// Version returns the effective-union counter.
func (s *Safe) Version() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eq.Version()
}

// Snapshot returns an independent copy of the underlying relation.
func (s *Safe) Snapshot() *Eq {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eq.Clone()
}

// Relation exposes the underlying Eq once concurrent work has finished.
// The caller must ensure no concurrent access afterwards.
func (s *Safe) Relation() *Eq { return s.eq }
