package eqrel

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	eq := New(5)
	if eq.Len() != 5 {
		t.Fatalf("Len = %d", eq.Len())
	}
	for i := int32(0); i < 5; i++ {
		if !eq.Same(i, i) {
			t.Errorf("reflexivity broken at %d", i)
		}
		for j := i + 1; j < 5; j++ {
			if eq.Same(i, j) {
				t.Errorf("identity relation relates %d and %d", i, j)
			}
		}
	}
	if eq.Classes() != 5 {
		t.Errorf("Classes = %d, want 5", eq.Classes())
	}
	if eq.Version() != 0 {
		t.Errorf("Version = %d, want 0", eq.Version())
	}
}

func TestUnionProperties(t *testing.T) {
	eq := New(6)
	if !eq.Union(0, 1) {
		t.Fatal("first union reported no growth")
	}
	if eq.Union(1, 0) {
		t.Fatal("repeated union reported growth")
	}
	if !eq.Same(0, 1) || !eq.Same(1, 0) {
		t.Fatal("symmetry broken")
	}
	eq.Union(1, 2)
	if !eq.Same(0, 2) {
		t.Fatal("transitivity broken")
	}
	if eq.Classes() != 4 {
		t.Errorf("Classes = %d, want 4", eq.Classes())
	}
	if eq.Version() != 2 {
		t.Errorf("Version = %d, want 2", eq.Version())
	}
}

func TestPairs(t *testing.T) {
	eq := New(6)
	eq.Union(0, 1)
	eq.Union(1, 2)
	eq.Union(4, 5)
	universe := []int32{0, 1, 2, 3, 4, 5}
	pairs := eq.Pairs(universe)
	want := []Pair{{0, 1}, {0, 2}, {1, 2}, {4, 5}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", pairs, want)
		}
	}
	// Restricting the universe restricts the pairs.
	pairs = eq.Pairs([]int32{0, 2, 4})
	if len(pairs) != 1 || pairs[0] != (Pair{0, 2}) {
		t.Fatalf("restricted pairs = %v", pairs)
	}
}

func TestMakePair(t *testing.T) {
	if MakePair(3, 1) != (Pair{1, 3}) {
		t.Error("MakePair did not normalize")
	}
	if MakePair(1, 3) != (Pair{1, 3}) {
		t.Error("MakePair changed ordered input")
	}
}

func TestClone(t *testing.T) {
	eq := New(4)
	eq.Union(0, 1)
	c := eq.Clone()
	c.Union(2, 3)
	if eq.Same(2, 3) {
		t.Error("clone aliased original")
	}
	if !c.Same(0, 1) {
		t.Error("clone lost unions")
	}
	if c.Version() != eq.Version()+1 {
		t.Error("clone version drifted")
	}
}

// TestEquivalenceLaws property-tests that after an arbitrary union
// sequence the relation is an equivalence relation consistent with the
// unions performed (smallest equivalence containing them).
func TestEquivalenceLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 24
		eq := New(n)
		// Reference: naive reachability over an undirected union graph.
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for k := 0; k < 30; k++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			eq.Union(a, b)
			adj[a][b] = true
			adj[b][a] = true
		}
		reach := func(a, b int32) bool {
			seen := make([]bool, n)
			stack := []int32{a}
			seen[a] = true
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if x == b {
					return true
				}
				for y := int32(0); y < n; y++ {
					if adj[x][y] && !seen[y] {
						seen[y] = true
						stack = append(stack, y)
					}
				}
			}
			return false
		}
		for a := int32(0); a < n; a++ {
			for b := int32(0); b < n; b++ {
				if eq.Same(a, b) != reach(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSafeConcurrent(t *testing.T) {
	const n = 1000
	s := NewSafe(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker links a strided chain; all chains overlap at 0.
			for i := w; i < n-1; i += 8 {
				s.Union(int32(i), int32(i+1))
				s.Same(int32(i), 0)
			}
		}(w)
	}
	wg.Wait()
	eq := s.Relation()
	// All nodes end up connected: chains i..i+1 cover every adjacent pair.
	for i := int32(1); i < n; i++ {
		if !eq.Same(0, i) {
			t.Fatalf("node %d not connected after concurrent unions", i)
		}
	}
	if got := s.Version(); got != n-1 {
		t.Errorf("Version = %d, want %d (each effective union counted once)", got, n-1)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewSafe(4)
	s.Union(0, 1)
	snap := s.Snapshot()
	s.Union(2, 3)
	if snap.Same(2, 3) {
		t.Error("snapshot observed later union")
	}
	if !snap.Same(0, 1) {
		t.Error("snapshot missing earlier union")
	}
}
