package vertexcentric

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPropagation floods a token along a chain of vertices; every
// vertex must be visited exactly once.
func TestPropagation(t *testing.T) {
	const n = 100
	visited := make([]atomic.Int32, n)
	e := New[int](4, func(v int, hops int, ctx *Context[int]) {
		visited[v].Add(1)
		if v+1 < n {
			ctx.Send(v+1, hops+1)
		}
	})
	e.Send(0, 0)
	processed := e.Run()
	if processed != n {
		t.Fatalf("processed = %d, want %d", processed, n)
	}
	for i := range visited {
		if got := visited[i].Load(); got != 1 {
			t.Fatalf("vertex %d visited %d times", i, got)
		}
	}
	if e.MessagesSent() != n {
		t.Errorf("MessagesSent = %d, want %d", e.MessagesSent(), n)
	}
}

// TestFanOutQuiescence: exponential fan-out (each message forks two)
// terminates exactly when the depth budget runs out.
func TestFanOutQuiescence(t *testing.T) {
	var count atomic.Int64
	e := New[int](8, func(v int, depth int, ctx *Context[int]) {
		count.Add(1)
		if depth < 10 {
			ctx.Send(v*2+1, depth+1)
			ctx.Send(v*2+2, depth+1)
		}
	})
	e.Send(0, 0)
	e.Run()
	want := int64(1<<11 - 1) // full binary tree of depth 10
	if count.Load() != want {
		t.Fatalf("handled %d messages, want %d", count.Load(), want)
	}
}

// TestVertexSerialization: concurrent sends to one vertex are processed
// serially (no data race on the per-vertex counter without a lock).
func TestVertexSerialization(t *testing.T) {
	perVertex := make(map[int]int) // only mutated by the vertex's handler
	var mu sync.Mutex              // protects cross-checking map access
	inHandler := make([]atomic.Int32, 16)
	e := New[int](4, func(v int, _ int, ctx *Context[int]) {
		if inHandler[v].Add(1) != 1 {
			t.Error("two handlers ran concurrently for one vertex")
		}
		mu.Lock()
		perVertex[v]++
		mu.Unlock()
		inHandler[v].Add(-1)
	})
	for i := 0; i < 400; i++ {
		e.Send(i%16, i)
	}
	e.Run()
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, c := range perVertex {
		total += c
	}
	if total != 400 {
		t.Fatalf("processed %d, want 400", total)
	}
}

// TestRunTwice: the engine supports re-seeding after quiescence, as the
// EMVC driver's backstop sweep requires.
func TestRunTwice(t *testing.T) {
	var count atomic.Int64
	e := New[int](2, func(v int, _ int, ctx *Context[int]) { count.Add(1) })
	e.Send(1, 0)
	if got := e.Run(); got != 1 {
		t.Fatalf("first run processed %d", got)
	}
	e.Send(2, 0)
	e.Send(3, 0)
	if got := e.Run(); got != 2 {
		t.Fatalf("second run processed %d", got)
	}
	if count.Load() != 3 {
		t.Fatalf("total handled %d", count.Load())
	}
}

// TestRunEmpty: running with no seeds returns immediately.
func TestRunEmpty(t *testing.T) {
	e := New[int](3, func(int, int, *Context[int]) {})
	if got := e.Run(); got != 0 {
		t.Fatalf("empty run processed %d", got)
	}
}

// TestWorkerClamp: p < 1 is clamped.
func TestWorkerClamp(t *testing.T) {
	e := New[int](0, func(int, int, *Context[int]) {})
	if e.P() != 1 {
		t.Fatalf("P = %d, want 1", e.P())
	}
}

// TestQueueDepthTracking: the high-water mark is recorded.
func TestQueueDepthTracking(t *testing.T) {
	e := New[int](1, func(v int, _ int, ctx *Context[int]) {})
	for i := 0; i < 50; i++ {
		e.Send(0, i)
	}
	e.Run()
	if e.MaxQueueDepth() < 10 {
		t.Errorf("MaxQueueDepth = %d, want >= 10 (all seeds queued up front)", e.MaxQueueDepth())
	}
}

// TestPingPong: two vertices bouncing a message terminate at the hop
// budget even though each handler sends from within the other's work.
func TestPingPong(t *testing.T) {
	var hops atomic.Int64
	e := New[int](2, func(v int, n int, ctx *Context[int]) {
		hops.Add(1)
		if n > 0 {
			ctx.Send(1-v, n-1)
		}
	})
	e.Send(0, 99)
	e.Run()
	if hops.Load() != 100 {
		t.Fatalf("hops = %d, want 100", hops.Load())
	}
}
