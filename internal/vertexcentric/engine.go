// Package vertexcentric implements the asynchronous vertex-centric
// execution model of GraphLab (ref [31] of "Keys for Graphs") that
// algorithm EMVC (§5) runs on: a vertex program executed in parallel on
// p workers, driven purely by asynchronous message passing, with no
// global synchronization rounds and no global barriers. Computation
// terminates when no message is in flight — quiescence.
//
// Vertices are dense integer IDs with worker affinity (vertex v is
// processed by worker v mod p), which serializes the processing of any
// single vertex's messages while letting different vertices proceed
// fully asynchronously — the property EMVC exploits to check different
// entity pairs, and different instantiations of one pair, in parallel.
package vertexcentric

import (
	"sync"
	"sync/atomic"
)

// Handler processes one message delivered to a vertex. It may send
// further messages through ctx. Handlers for the same vertex never run
// concurrently; handlers for different vertices do.
type Handler[M any] func(vertex int, msg M, ctx *Context[M])

// Context lets a handler send messages and inspect the engine.
type Context[M any] struct {
	e      *Engine[M]
	worker int
}

// Send delivers msg to the given vertex asynchronously.
func (c *Context[M]) Send(vertex int, msg M) { c.e.send(vertex, msg) }

// Engine is an asynchronous message-passing engine. Create with New,
// seed with Send, then Run until quiescence. Run may be called again
// after further Sends.
type Engine[M any] struct {
	p        int
	handler  Handler[M]
	inflight atomic.Int64
	sent     atomic.Int64
	boxes    []*mailbox[M]
	done     chan struct{}
	doneOnce sync.Once
	running  bool
}

type envelope[M any] struct {
	vertex int
	msg    M
}

// mailbox is an unbounded FIFO queue; unboundedness matters because a
// handler sends while it runs, and bounded queues would deadlock two
// workers sending to each other's full queues.
type mailbox[M any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []envelope[M]
	closed bool
	// depth tracks the high-water mark for statistics.
	depth int
}

func newMailbox[M any]() *mailbox[M] {
	mb := &mailbox[M]{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox[M]) push(e envelope[M]) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, e)
	if len(mb.queue) > mb.depth {
		mb.depth = len(mb.queue)
	}
	mb.mu.Unlock()
	mb.cond.Signal()
}

// pop blocks until an envelope is available or the box is closed.
func (mb *mailbox[M]) pop() (envelope[M], bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return envelope[M]{}, false
	}
	e := mb.queue[0]
	mb.queue = mb.queue[1:]
	return e, true
}

func (mb *mailbox[M]) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

func (mb *mailbox[M]) reopen() {
	mb.mu.Lock()
	mb.closed = false
	mb.mu.Unlock()
}

// New creates an engine with p workers (clamped to >= 1).
func New[M any](p int, handler Handler[M]) *Engine[M] {
	if p < 1 {
		p = 1
	}
	e := &Engine[M]{p: p, handler: handler}
	e.boxes = make([]*mailbox[M], p)
	for i := range e.boxes {
		e.boxes[i] = newMailbox[M]()
	}
	return e
}

// P returns the worker count.
func (e *Engine[M]) P() int { return e.p }

// Send enqueues a message for a vertex; usable for seeding before Run
// and from handlers (via Context) during Run.
func (e *Engine[M]) Send(vertex int, msg M) { e.send(vertex, msg) }

func (e *Engine[M]) send(vertex int, msg M) {
	e.inflight.Add(1)
	e.sent.Add(1)
	w := vertex % e.p
	if w < 0 {
		w = -w
	}
	e.boxes[w].push(envelope[M]{vertex: vertex, msg: msg})
}

// Run processes messages until quiescence: every sent message handled
// and no handler still running. It returns the number of messages
// processed in this run.
func (e *Engine[M]) Run() int64 {
	if e.inflight.Load() == 0 {
		return 0
	}
	e.done = make(chan struct{})
	e.doneOnce = sync.Once{}
	for _, b := range e.boxes {
		b.reopen()
	}
	processed := new(atomic.Int64)
	var wg sync.WaitGroup
	for w := 0; w < e.p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := &Context[M]{e: e, worker: w}
			for {
				env, ok := e.boxes[w].pop()
				if !ok {
					return
				}
				e.handler(env.vertex, env.msg, ctx)
				processed.Add(1)
				if e.inflight.Add(-1) == 0 {
					// Quiescent: no queued messages anywhere and no
					// handler that could still send (we were the last).
					e.doneOnce.Do(func() { close(e.done) })
				}
			}
		}(w)
	}
	<-e.done
	for _, b := range e.boxes {
		b.close()
	}
	wg.Wait()
	return processed.Load()
}

// MessagesSent returns the total number of messages sent over the
// engine's lifetime.
func (e *Engine[M]) MessagesSent() int64 { return e.sent.Load() }

// MaxQueueDepth returns the deepest any worker mailbox ever got.
func (e *Engine[M]) MaxQueueDepth() int {
	max := 0
	for _, b := range e.boxes {
		b.mu.Lock()
		if b.depth > max {
			max = b.depth
		}
		b.mu.Unlock()
	}
	return max
}
