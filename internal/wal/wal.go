// Package wal is the durable delta log of the write path: an
// append-only file of length-prefixed, CRC-protected binary records,
// each one the *normalized* op list of a planned delta (see
// internal/graph/plan.go — the write-ahead hook hands records over in
// plan order, which is the order the deltas serialize in), plus a
// snapshot file that compacts the log.
//
// A record stores the delta at name level (external entity IDs, value
// literals, predicate names), so replaying the records in log order
// against the snapshot graph reconstructs the store byte-identically:
// normalized records are exact net effects, and node IDs are assigned
// at reservation, under the plan mutex, in the same order the records
// enter the log — so even though concurrent group-commit deltas may
// lower out of order, reservation order is plan order is log order,
// and a sequential replay allocates identically.
//
// The snapshot carries the graph in the canonical text format plus the
// matcher's identified pairs at the snapshot point; the pairs let an
// opener cross-check that re-deriving the fixpoint over the snapshot
// graph reproduces the state the snapshot was taken from. A snapshot
// records the sequence number it covers; records with seq <= that are
// skipped on replay, which closes the crash window between snapshot
// rename and log truncation.
//
// Torn tails are expected: a crash mid-append leaves a short or
// CRC-broken final record, which Open drops by truncating the file at
// the last good offset.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"graphkeys/internal/graph"
)

// SyncPolicy selects the append durability of the log.
type SyncPolicy int

const (
	// SyncNone appends without fsync; the OS decides when bytes reach
	// the disk. A crash may lose the most recent records but never
	// corrupts the prefix.
	SyncNone SyncPolicy = iota
	// SyncAlways fsyncs after every appended record.
	SyncAlways
)

const (
	logName      = "wal.log"
	snapName     = "snapshot"
	logMagic     = "GKWALOG1"
	snapHeader   = "#gkwal-snapshot v1"
	snapGraphSep = "#graph"
)

// Record is one logged delta: its sequence number and its normalized
// ops.
type Record struct {
	Seq uint64
	Ops []graph.DeltaOp
}

// logFile is the slice of *os.File the append path uses. It exists as
// an interface so the fault-injection tests can interpose a wrapper
// that errors mid-append or mid-fsync (see testFileHook).
type logFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
}

// testFileHook, when non-nil, wraps the log file at Open. Tests use it
// to inject write/fsync failures; production code never sets it.
var testFileHook func(logFile) logFile

// pendingRec is one encoded record buffered for the next group flush.
type pendingRec struct {
	seq uint64
	rec []byte // header + payload
}

// Store is an open WAL directory. Append and Begin are safe for
// concurrent use; the loader methods (SnapshotGraph, SnapshotPairs,
// Records) report the state found at Open.
type Store struct {
	dir    string
	policy SyncPolicy

	mu   sync.Mutex
	cond *sync.Cond // group-commit waiters (commitWait, quiesce)
	f    logFile
	lock *os.File // exclusive dir lock (see lockDir)
	off  int64    // current append offset (end of the good prefix)
	seq  uint64   // last assigned sequence number

	// Group-commit state: Begin buffers encoded records here in seq
	// order; the first commit caller to find no flush in progress
	// becomes the leader, writes every buffered record as one chunk
	// and fsyncs once per policy; the others wait. durable is the last
	// seq the log file holds (synced under SyncAlways); failed maps
	// the seqs of a failed chunk to its error, so every waiter of the
	// group observes it; broken disables the store when a failed chunk
	// cannot even be rewound.
	pending    []pendingRec
	committing bool
	durable    uint64
	failed     map[uint64]error
	broken     error
	// maxGroup caps how many records one flush takes (see
	// SetGroupLimit); <= 0 means unbounded.
	maxGroup int

	// ob is the optional instrument bundle (see obs.go).
	ob atomic.Pointer[Obs]

	snapSeq   uint64
	snapGraph *graph.Graph
	snapPairs [][2]string
	records   []Record
}

// Open opens (creating if needed) the WAL directory: it takes the
// directory's exclusive lock (a second opener — Store, Replay, or
// another process — is rejected rather than allowed to truncate or
// interleave with a live writer), loads the snapshot if one exists,
// scans the log dropping a torn tail, and leaves the log ready for
// appends.
func Open(dir string, policy SyncPolicy) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %v", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, policy: policy, lock: lock, failed: make(map[uint64]error), maxGroup: DefaultGroupLimit}
	s.cond = sync.NewCond(&s.mu)
	if err := s.loadSnapshot(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	if err := s.openLog(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	s.durable = s.seq // everything found on disk is already durable
	return s, nil
}

// SnapshotGraph returns the snapshot's graph, or nil if the directory
// has no snapshot.
func (s *Store) SnapshotGraph() *graph.Graph { return s.snapGraph }

// SnapshotPairs returns the identified entity pairs stored with the
// snapshot (each {A, B} by external ID), or nil without a snapshot.
func (s *Store) SnapshotPairs() [][2]string { return s.snapPairs }

// SnapshotSeq returns the sequence number the snapshot covers (0
// without a snapshot).
func (s *Store) SnapshotSeq() uint64 { return s.snapSeq }

// Records returns the log records found at Open that are not covered
// by the snapshot, in log order.
func (s *Store) Records() []Record { return s.records }

// Seq returns the last assigned sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Append encodes, appends and commits one record, fsyncing per the
// policy, and returns its sequence number. It is Begin followed
// immediately by the commit — callers that can overlap their
// durability wait with other writers (the planned write path) use
// Begin directly and group-commit instead.
func (s *Store) Append(ops []graph.DeltaOp) (uint64, error) {
	seq, commit, err := s.Begin(ops)
	if err != nil {
		return 0, err
	}
	if err := commit(); err != nil {
		return 0, err
	}
	return seq, nil
}

// Begin assigns the next sequence number to the record and buffers its
// encoding, without touching the file: the returned commit function
// performs (or joins) the group flush and blocks until this record is
// durably appended per the policy, returning the flush error if its
// group failed. Buffering order is seq order, so callers that need log
// order to match an external serialization (the graph's plan order)
// call Begin inside that serialization and commit outside it — one
// fsync then covers every record buffered by concurrent planners
// (group commit: a single leader writes the chunk and fsyncs, the
// other waiters just observe the outcome).
//
// On a failed flush the log is rewound to the group's start, so an
// aborted delta never leaves a replayable (or prefix-poisoning
// partial) record behind; every commit of the failed group reports the
// error, and later groups append from the rewound offset. If even the
// rewind fails, the store marks itself broken and refuses further
// appends rather than risk acknowledged records landing after garbage.
func (s *Store) Begin(ops []graph.DeltaOp) (uint64, func() error, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return 0, nil, s.broken
	}
	if s.f == nil {
		return 0, nil, fmt.Errorf("wal: store is closed")
	}
	s.seq++
	seq := s.seq
	payload := encodePayload(seq, ops)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	s.pending = append(s.pending, pendingRec{seq: seq, rec: append(hdr[:], payload...)})
	return seq, func() error { return s.commitWait(seq) }, nil
}

// DefaultGroupLimit is the group-commit cap a fresh Store starts
// with: one flush takes at most this many records, so a sustained
// burst of writers amortizes its fsyncs without any single group —
// and therefore any single commit's wait, or any single rewind on a
// failed flush — growing unboundedly. Committers whose records are
// left behind lead (or join) the next flush immediately; no waiting
// is introduced, only the chunk is bounded.
const DefaultGroupLimit = 256

// SetGroupLimit caps how many records one group flush writes as one
// chunk (n <= 0 removes the cap). Records past the cap stay buffered,
// in order, for the immediately following flush.
func (s *Store) SetGroupLimit(n int) {
	s.mu.Lock()
	s.maxGroup = n
	s.mu.Unlock()
}

// commitWait blocks until seq's group flush resolves, leading the
// flush itself when no other committer is.
func (s *Store) commitWait(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err, ok := s.failed[seq]; ok {
			delete(s.failed, seq)
			return err
		}
		if seq <= s.durable {
			return nil
		}
		if s.broken != nil {
			return s.broken
		}
		if s.f == nil {
			return fmt.Errorf("wal: store closed before commit of seq %d", seq)
		}
		if s.committing {
			s.cond.Wait()
			continue
		}
		s.flushGroupLocked()
	}
}

// flushGroupLocked writes the pending records — at most maxGroup of
// them; any excess stays buffered, in order, for the flush that
// immediately follows — as one chunk and syncs once per policy.
// Caller holds s.mu; the lock is released during the file I/O so new
// Begins keep buffering the next group, and reacquired to publish the
// outcome. On return the flush (if any) has fully resolved and
// s.committing is false again.
func (s *Store) flushGroupLocked() {
	if len(s.pending) == 0 {
		return
	}
	group := s.pending
	if s.maxGroup > 0 && len(group) > s.maxGroup {
		// Splitting the slice is safe: later Begins append past the
		// remainder's length, never into the flushed prefix.
		group = group[:s.maxGroup]
		s.pending = s.pending[s.maxGroup:]
	} else {
		s.pending = nil
	}
	s.committing = true
	n := 0
	for _, pr := range group {
		n += len(pr.rec)
	}
	chunk := make([]byte, 0, n)
	for _, pr := range group {
		chunk = append(chunk, pr.rec...)
	}
	f := s.f
	ob := s.ob.Load()
	s.mu.Unlock()
	ob.groupSize().Observe(int64(len(group)))
	var ferr error
	if _, err := f.Write(chunk); err != nil {
		ferr = fmt.Errorf("wal: append: %v", err)
	} else if s.policy == SyncAlways {
		tSync := ob.fsyncNanos().Start()
		if err := f.Sync(); err != nil {
			ferr = fmt.Errorf("wal: fsync: %v", err)
		}
		ob.fsyncNanos().ObserveSince(tSync)
	}
	s.mu.Lock()
	s.committing = false
	if ferr == nil {
		s.off += int64(len(chunk))
		s.durable = group[len(group)-1].seq
		ob.records().Add(int64(len(group)))
	} else {
		ob.rewinds().Inc()
		// The whole group fails: rewind the file to the group start so
		// no partial record poisons the prefix, and route the error to
		// every waiter of the group. Later groups (already buffering in
		// s.pending) append from the rewound offset; their seqs leave a
		// gap in the log, which replay tolerates (records carry their
		// seq and order is all that matters).
		for _, pr := range group {
			s.failed[pr.seq] = ferr
		}
		if terr := s.f.Truncate(s.off); terr != nil {
			s.breakLocked(fmt.Errorf("%v (rewind also failed: %v; store disabled)", ferr, terr))
		} else if _, serr := s.f.Seek(s.off, io.SeekStart); serr != nil {
			s.breakLocked(fmt.Errorf("%v (rewind also failed: %v; store disabled)", ferr, serr))
		}
	}
	s.cond.Broadcast()
}

// breakLocked disables the store after an unrecoverable append-path
// failure. Caller holds s.mu.
func (s *Store) breakLocked(err error) {
	s.broken = fmt.Errorf("wal: %v", err)
	if s.f != nil {
		// A close failure can carry a deferred write error; fold it into
		// the broken-store message so it surfaces to every later caller.
		if cerr := s.f.Close(); cerr != nil {
			s.broken = fmt.Errorf("wal: %v (and closing the log failed: %v)", err, cerr)
		}
		s.f = nil
	}
}

// quiesceLocked waits out any in-progress flush and flushes whatever
// is still buffered, so the log file is the complete record of every
// Begin so far. Caller holds s.mu.
func (s *Store) quiesceLocked() {
	for s.committing {
		s.cond.Wait()
	}
	for len(s.pending) > 0 && s.broken == nil && s.f != nil {
		s.flushGroupLocked()
		for s.committing {
			s.cond.Wait()
		}
	}
}

// Sync flushes the log to disk regardless of policy. On a broken
// store it reports the breakage: buffered records may have been
// dropped, so pretending the log is flushed would be a lie.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quiesceLocked()
	if s.broken != nil {
		return s.broken
	}
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// WriteSnapshot atomically writes a snapshot of the given graph and
// pairs covering every record appended so far, then truncates the log.
// A crash between the two steps is safe: the snapshot's sequence
// number makes the still-present records no-ops on replay.
func (s *Store) WriteSnapshot(g *graph.Graph, pairs [][2]string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quiesceLocked()
	// A broken store may hold buffered records quiesce could not
	// flush; writing a snapshot that covers their sequence numbers
	// would mark them durable (and let their pending commits succeed)
	// even though they never reached the disk. Refuse instead.
	if s.broken != nil {
		return s.broken
	}
	// The snapshot is line/tab-structured text, which cannot represent
	// entity IDs, type names or predicates containing tabs or newlines
	// (the binary log records them fine). Refuse rather than write a
	// snapshot that can never be reopened — the state stays replayable
	// from the log, which this method has not yet truncated.
	if kind, name := unrepresentable(g); kind != "" {
		return fmt.Errorf("wal: snapshot: %s %q contains a tab or newline, unrepresentable in the snapshot text format; state remains replayable from the log", kind, name)
	}
	// The graph text format is triples-only, so entities without any
	// incident triple (never attached, or stripped by removals) would
	// be lost by compaction even though the log recorded them; they
	// ride along as explicit id:Type lines.
	var isolated []string
	g.EachEntity(func(n graph.NodeID) {
		if g.Degree(n) == 0 {
			isolated = append(isolated, g.Label(n)+":"+g.TypeName(g.TypeOf(n)))
		}
	})
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s seq=%d pairs=%d isolated=%d\n", snapHeader, s.seq, len(pairs), len(isolated))
	for _, pr := range pairs {
		fmt.Fprintf(&buf, "%s\t%s\n", pr[0], pr[1])
	}
	for _, e := range isolated {
		fmt.Fprintln(&buf, e)
	}
	fmt.Fprintln(&buf, snapGraphSep)
	if err := g.WriteText(&buf); err != nil {
		return fmt.Errorf("wal: snapshot graph: %v", err)
	}
	// The snapshot must be durably on disk before the log may shrink:
	// write + fsync the temp file (aborting on any failure), rename it
	// into place, fsync the directory so the rename survives a crash,
	// and only then truncate the log.
	tmp := filepath.Join(s.dir, snapName+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %v", err)
	}
	if _, err := tf.Write(buf.Bytes()); err != nil {
		tf.Close()
		return fmt.Errorf("wal: snapshot write: %v", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("wal: snapshot fsync: %v", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %v", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("wal: snapshot rename: %v", err)
	}
	if df, err := os.Open(s.dir); err == nil {
		if serr := df.Sync(); serr != nil {
			df.Close()
			return fmt.Errorf("wal: snapshot dir fsync: %v", serr)
		}
		df.Close()
	}
	s.snapSeq = s.seq
	s.durable = s.seq
	if s.f != nil {
		if err := s.f.Truncate(int64(len(logMagic))); err != nil {
			return fmt.Errorf("wal: truncate: %v", err)
		}
		if _, err := s.f.Seek(int64(len(logMagic)), io.SeekStart); err != nil {
			return fmt.Errorf("wal: seek: %v", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %v", err)
		}
		s.off = int64(len(logMagic))
	}
	return nil
}

// Close flushes any buffered records, closes the log file and releases
// the directory lock. Further Appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quiesceLocked()
	unlockDir(s.lock)
	s.lock = nil
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	s.cond.Broadcast()
	return err
}

// unrepresentable scans the graph's names for characters the
// line/tab-structured snapshot cannot carry, returning the kind of
// name that offends ("" if none) and the name itself. Value literals
// are exempt: the text format Go-quotes them.
func unrepresentable(g *graph.Graph) (kind, name string) {
	bad := func(s string) bool { return strings.ContainsAny(s, "\t\n") }
	g.EachEntity(func(n graph.NodeID) {
		if kind == "" && bad(g.Label(n)) {
			kind, name = "entity ID", g.Label(n)
		}
		if kind == "" && bad(g.TypeName(g.TypeOf(n))) {
			kind, name = "type name", g.TypeName(g.TypeOf(n))
		}
	})
	if kind == "" {
		g.EachTriple(func(s graph.NodeID, p graph.PredID, o graph.NodeID) {
			if kind == "" && bad(g.PredName(p)) {
				kind, name = "predicate", g.PredName(p)
			}
		})
	}
	return kind, name
}

// Replay reconstructs the graph recorded in the WAL directory: the
// snapshot graph (or an empty graph) with every logged delta applied in
// log order. It returns the graph and the records applied on top of
// the snapshot. The caller re-drives whatever it maintains over the
// graph (graphkeys.OpenMatcher re-derives the chase fixpoint and
// replays the records through the incremental engine).
func Replay(dir string) (*graph.Graph, []Record, error) {
	s, err := Open(dir, SyncNone)
	if err != nil {
		return nil, nil, err
	}
	defer s.Close()
	g := s.SnapshotGraph()
	if g == nil {
		g = graph.New()
	}
	for _, rec := range s.Records() {
		if _, err := g.ApplyDelta(graph.NewDeltaOps(rec.Ops)); err != nil {
			return nil, nil, fmt.Errorf("wal: replay seq %d: %v", rec.Seq, err)
		}
	}
	return g, s.Records(), nil
}

func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.dir, snapName)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("wal: snapshot header: %v", err)
	}
	var seq uint64
	var nPairs, nIsolated int
	if _, err := fmt.Sscanf(strings.TrimSpace(header), snapHeader+" seq=%d pairs=%d isolated=%d", &seq, &nPairs, &nIsolated); err != nil {
		return fmt.Errorf("wal: snapshot header %q: %v", strings.TrimSpace(header), err)
	}
	pairs := make([][2]string, 0, nPairs)
	for i := 0; i < nPairs; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			return fmt.Errorf("wal: snapshot pairs: %v", err)
		}
		a, b, ok := strings.Cut(strings.TrimRight(line, "\n"), "\t")
		if !ok {
			return fmt.Errorf("wal: snapshot pair line %q", line)
		}
		pairs = append(pairs, [2]string{a, b})
	}
	isolated := make([]string, 0, nIsolated)
	for i := 0; i < nIsolated; i++ {
		line, err := br.ReadString('\n')
		if err != nil {
			return fmt.Errorf("wal: snapshot isolated entities: %v", err)
		}
		isolated = append(isolated, strings.TrimRight(line, "\n"))
	}
	sep, err := br.ReadString('\n')
	if err != nil || strings.TrimSpace(sep) != snapGraphSep {
		return fmt.Errorf("wal: snapshot graph separator missing")
	}
	g, err := graph.ParseText(br)
	if err != nil {
		return fmt.Errorf("wal: snapshot graph: %v", err)
	}
	for _, tok := range isolated {
		// As in the graph text format, the LAST colon splits id from
		// type (entity IDs may contain colons).
		i := strings.LastIndexByte(tok, ':')
		if i <= 0 || i == len(tok)-1 {
			return fmt.Errorf("wal: snapshot isolated entity %q", tok)
		}
		if _, err := g.AddEntity(tok[:i], tok[i+1:]); err != nil {
			return fmt.Errorf("wal: snapshot isolated entity %q: %v", tok, err)
		}
	}
	s.snapSeq, s.seq = seq, seq
	s.snapGraph = g
	s.snapPairs = pairs
	return nil
}

func (s *Store) openLog() error {
	path := filepath.Join(s.dir, logName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %v", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %v", err)
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(logMagic); err != nil {
			f.Close()
			return fmt.Errorf("wal: write magic: %v", err)
		}
		s.f = wrapLogFile(f)
		s.off = int64(len(logMagic))
		return nil
	}
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != logMagic {
		f.Close()
		return fmt.Errorf("wal: %s is not a WAL log", path)
	}
	// Scan records, keeping the good prefix; stop at the first short or
	// corrupt record and truncate there (torn tail).
	good := int64(len(logMagic))
	br := bufio.NewReader(f)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		// The length prefix is untrusted (a torn tail can leave garbage
		// there): bound it by the bytes actually left in the file before
		// allocating, or a corrupt header could demand gigabytes on the
		// very recovery path meant to survive it.
		if int64(n) > st.Size()-good-8 {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != want {
			break
		}
		rec, err := decodePayload(payload)
		if err != nil {
			break
		}
		good += 8 + int64(n)
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		if rec.Seq > s.snapSeq {
			s.records = append(s.records, rec)
		}
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return fmt.Errorf("wal: truncate torn tail: %v", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("wal: %v", err)
	}
	s.f = wrapLogFile(f)
	s.off = good
	return nil
}

// wrapLogFile applies the test-only fault-injection hook.
func wrapLogFile(f *os.File) logFile {
	if testFileHook != nil {
		return testFileHook(f)
	}
	return f
}

// Payload encoding: uvarint seq, uvarint op count, then per op one
// kind byte, one flag byte (bit 0: ObjectIsValue), and the kind's
// string fields as uvarint-length-prefixed bytes.
func encodePayload(seq uint64, ops []graph.DeltaOp) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	str := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	for _, op := range ops {
		buf = append(buf, byte(op.Kind))
		var flags byte
		if op.ObjectIsValue {
			flags |= 1
		}
		buf = append(buf, flags)
		switch op.Kind {
		case graph.OpAddEntity:
			str(op.ID)
			str(op.TypeName)
		case graph.OpRemoveEntity:
			str(op.ID)
		case graph.OpAddTriple, graph.OpRemoveTriple:
			str(op.Subject)
			str(op.Pred)
			str(op.Object)
		}
	}
	return buf
}

func decodePayload(payload []byte) (Record, error) {
	r := bytes.NewReader(payload)
	fail := func(what string) (Record, error) {
		return Record{}, fmt.Errorf("wal: record %s", what)
	}
	seq, err := binary.ReadUvarint(r)
	if err != nil {
		return fail("seq")
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return fail("op count")
	}
	if n > uint64(len(payload)) {
		return fail("op count out of range")
	}
	str := func() (string, error) {
		l, err := binary.ReadUvarint(r)
		if err != nil || l > uint64(r.Len()) {
			return "", fmt.Errorf("bad string")
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	rec := Record{Seq: seq, Ops: make([]graph.DeltaOp, 0, n)}
	for i := uint64(0); i < n; i++ {
		kind, err := r.ReadByte()
		if err != nil {
			return fail("op kind")
		}
		flags, err := r.ReadByte()
		if err != nil {
			return fail("op flags")
		}
		op := graph.DeltaOp{Kind: graph.OpKind(kind), ObjectIsValue: flags&1 != 0}
		switch op.Kind {
		case graph.OpAddEntity:
			if op.ID, err = str(); err == nil {
				op.TypeName, err = str()
			}
		case graph.OpRemoveEntity:
			op.ID, err = str()
		case graph.OpAddTriple, graph.OpRemoveTriple:
			if op.Subject, err = str(); err == nil {
				if op.Pred, err = str(); err == nil {
					op.Object, err = str()
				}
			}
		default:
			return fail("kind unknown")
		}
		if err != nil {
			return fail("fields")
		}
		rec.Ops = append(rec.Ops, op)
	}
	if r.Len() != 0 {
		return fail("trailing bytes")
	}
	return rec, nil
}
