package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"graphkeys/internal/graph"
	"graphkeys/internal/testutil"
)

// failFile wraps the log file and injects failures: after okWrites
// successful Writes every further Write errors (mode "write"), or
// after okSyncs successful Syncs every further Sync errors (mode
// "sync"). Truncate/Seek/Close pass through, so the store's rewind
// path stays functional — the scenario under test is a full disk or a
// dying device, not a wedged one.
type failFile struct {
	logFile
	mu       sync.Mutex
	okWrites int
	okSyncs  int
	failW    bool
	failS    bool
	failT    bool // Truncate fails too: the rewind path dies, breaking the store
}

func (f *failFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failW && f.okWrites == 0 {
		return 0, fmt.Errorf("injected write failure")
	}
	if f.failW {
		f.okWrites--
	}
	return f.logFile.Write(p)
}

func (f *failFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failS && f.okSyncs == 0 {
		return fmt.Errorf("injected fsync failure")
	}
	if f.failS {
		f.okSyncs--
	}
	return f.logFile.Sync()
}

func (f *failFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failT {
		return fmt.Errorf("injected truncate failure")
	}
	return f.logFile.Truncate(size)
}

// installFailFile routes the next Open's log file through a failFile
// and returns it for arming. The hook is removed at cleanup.
func installFailFile(t *testing.T) *failFile {
	t.Helper()
	ff := &failFile{}
	testFileHook = func(f logFile) logFile {
		ff.logFile = f
		return ff
	}
	t.Cleanup(func() { testFileHook = nil })
	return ff
}

func readLog(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGroupCommitFsyncFailure: records buffered by several concurrent
// committers share one flush; when its fsync fails, every waiter of
// the group observes the error, the log rewinds to the durable prefix,
// and reopen+replay recovers exactly that prefix.
func TestGroupCommitFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	ff := installFailFile(t)
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}

	// A durable prefix of two records.
	good := []graph.DeltaOp{{Kind: graph.OpAddEntity, ID: "a", TypeName: "T"}}
	for i := 0; i < 2; i++ {
		if _, err := s.Append(good); err != nil {
			t.Fatal(err)
		}
	}
	prefix := readLog(t, dir)

	// Arm: every further fsync fails. Buffer a group of records first,
	// commit them concurrently — one leader flushes, all must fail.
	ff.mu.Lock()
	ff.failS = true
	ff.mu.Unlock()
	const group = 5
	commits := make([]func() error, group)
	for i := range commits {
		op := []graph.DeltaOp{{Kind: graph.OpAddEntity, ID: fmt.Sprintf("g%d", i), TypeName: "T"}}
		if _, commit, err := s.Begin(op); err != nil {
			t.Fatal(err)
		} else {
			commits[i] = commit
		}
	}
	errs := make([]error, group)
	var wg sync.WaitGroup
	for i := range commits {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = commits[i]()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("group member %d committed despite fsync failure", i)
		}
	}
	// The log is rewound to the durable prefix...
	if got := readLog(t, dir); !bytes.Equal(got, prefix) {
		t.Fatalf("log not rewound to the durable prefix: %d bytes, want %d", len(got), len(prefix))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// ...and reopen+replay recovers exactly it.
	testFileHook = nil
	g, recs, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replay found %d records, want the 2 durable ones", len(recs))
	}
	if _, ok := g.Entity("a"); !ok {
		t.Fatal("durable prefix lost")
	}
	if _, ok := g.Entity("g0"); ok {
		t.Fatal("failed group leaked into the replayed graph")
	}
}

// TestGroupCommitWriteFailure is the mid-append variant: the chunk
// write itself fails before any byte lands.
func TestGroupCommitWriteFailure(t *testing.T) {
	dir := t.TempDir()
	ff := installFailFile(t)
	s, err := Open(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]graph.DeltaOp{{Kind: graph.OpAddEntity, ID: "a", TypeName: "T"}}); err != nil {
		t.Fatal(err)
	}
	prefix := readLog(t, dir)

	ff.mu.Lock()
	ff.failW = true
	ff.mu.Unlock()
	if _, err := s.Append([]graph.DeltaOp{{Kind: graph.OpAddEntity, ID: "b", TypeName: "T"}}); err == nil {
		t.Fatal("append with failing write succeeded")
	}
	if got := readLog(t, dir); !bytes.Equal(got, prefix) {
		t.Fatalf("log changed across a failed write: %d bytes, want %d", len(got), len(prefix))
	}

	// The store recovers once the device does: disarm, append again.
	ff.mu.Lock()
	ff.failW = false
	ff.mu.Unlock()
	if _, err := s.Append([]graph.DeltaOp{{Kind: graph.OpAddEntity, ID: "c", TypeName: "T"}}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	s.Close()

	testFileHook = nil
	g, recs, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("replay found %d records, want 2 (failed seq leaves a gap)", len(recs))
	}
	if _, ok := g.Entity("b"); ok {
		t.Fatal("failed record leaked into the replayed graph")
	}
	if _, ok := g.Entity("c"); !ok {
		t.Fatal("post-recovery record lost")
	}
}

// TestBrokenStoreRefusesSyncAndSnapshot: when a failed group cannot
// even be rewound, the store breaks — and from then on Sync and
// WriteSnapshot must report the breakage instead of pretending the
// log is intact (a snapshot on a broken store would mark unflushed
// records durable; a nil Sync would tell the caller dropped records
// reached the disk).
func TestBrokenStoreRefusesSyncAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	ff := installFailFile(t)
	s, err := Open(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append([]graph.DeltaOp{{Kind: graph.OpAddEntity, ID: "a", TypeName: "T"}}); err != nil {
		t.Fatal(err)
	}
	// Write fails AND the rewind fails: the store must break.
	ff.mu.Lock()
	ff.failW, ff.failT = true, true
	ff.mu.Unlock()
	if _, err := s.Append([]graph.DeltaOp{{Kind: graph.OpAddEntity, ID: "b", TypeName: "T"}}); err == nil {
		t.Fatal("append with failing write+rewind succeeded")
	}
	if _, _, err := s.Begin(nil); err == nil {
		t.Fatal("Begin on a broken store succeeded")
	}
	if err := s.Sync(); err == nil {
		t.Fatal("Sync on a broken store reported success")
	}
	if err := s.WriteSnapshot(graph.New(), nil); err == nil {
		t.Fatal("WriteSnapshot on a broken store reported success")
	}
}

// TestFaultyFsyncLeavesGraphUnmutated is the end-to-end contract over
// the planned write path: concurrent writers stream deltas through
// ApplyDeltaLogged with group commit; when fsync starts failing, every
// affected Apply errors, the graph stays byte-identical to its durable
// state, and reopen+replay reconstructs exactly that state.
func TestFaultyFsyncLeavesGraphUnmutated(t *testing.T) {
	dir := t.TempDir()
	ff := installFailFile(t)
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	gen := testutil.New(testutil.Config{Seed: 21, Groups: 4, PerGroup: 6})
	g := graph.New()
	hook := func(ops []graph.DeltaOp) (graph.DeltaCommit, error) {
		_, commit, err := s.Begin(ops)
		if err != nil {
			return nil, err
		}
		return graph.DeltaCommit(commit), nil
	}
	if _, err := g.ApplyDeltaLogged(gen.Seed(), hook); err != nil {
		t.Fatal(err)
	}
	// Phase 1: a round of concurrent writers lands durably.
	apply := func(round int) ([]error, []*graph.DeltaResult) {
		errs := make([]error, gen.Config().Groups)
		results := make([]*graph.DeltaResult, gen.Config().Groups)
		var wg sync.WaitGroup
		for w := 0; w < gen.Config().Groups; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				results[w], errs[w] = g.ApplyDeltaLogged(gen.Delta(w, round), hook)
			}(w)
		}
		wg.Wait()
		return errs, results
	}
	errs, _ := apply(0)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	var durable bytes.Buffer
	if err := g.WriteText(&durable); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the device dies mid-fsync. Every concurrent writer must
	// observe the error and the graph must not move.
	ff.mu.Lock()
	ff.failS = true
	ff.mu.Unlock()
	errs, results := apply(1)
	failed := 0
	for w, err := range errs {
		if err == nil {
			// Only a delta that coalesced to a no-op (and so was never
			// logged) may succeed with a dead device.
			if results[w] == nil || !results[w].Empty() {
				t.Fatalf("writer %d mutated the graph despite fsync failure", w)
			}
			continue
		}
		failed++
	}
	if failed == 0 {
		t.Fatal("no writer exercised the failing fsync")
	}
	var after bytes.Buffer
	if err := g.WriteText(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(durable.Bytes(), after.Bytes()) {
		t.Fatal("failed group mutated the graph")
	}
	s.Close()

	// Reopen + replay recovers the durable prefix exactly.
	testFileHook = nil
	rg, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	var replayed bytes.Buffer
	if err := rg.WriteText(&replayed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(durable.Bytes(), replayed.Bytes()) {
		t.Fatalf("replay diverges from the durable state:\nreplayed:\n%s\ndurable:\n%s", replayed.String(), durable.String())
	}
}
