package wal

import "graphkeys/internal/obs"

// Obs is the WAL's instrument bundle. Every handle may be nil (they
// no-op); an unobserved store pays one atomic load per group flush.
type Obs struct {
	// GroupSize observes the number of records each group flush wrote
	// as one chunk — the group-commit amortization, bounded above by
	// the store's group limit (SetGroupLimit).
	GroupSize *obs.Histogram
	// FsyncNanos observes the latency of each group's fsync (only
	// under SyncAlways — SyncNone groups never sync).
	FsyncNanos *obs.Histogram
	// Records counts records durably appended; Rewinds counts failed
	// group flushes that rewound the log to the group start.
	Records *obs.Counter
	Rewinds *obs.Counter
}

func (o *Obs) groupSize() *obs.Histogram {
	if o == nil {
		return nil
	}
	return o.GroupSize
}

func (o *Obs) fsyncNanos() *obs.Histogram {
	if o == nil {
		return nil
	}
	return o.FsyncNanos
}

func (o *Obs) records() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Records
}

func (o *Obs) rewinds() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Rewinds
}

// SetObserver installs (or, with nil, removes) the store's
// instruments. Safe to call concurrently with appends.
func (s *Store) SetObserver(o *Obs) {
	s.ob.Store(o)
}

// RegisterObs builds an Obs wired to conventionally named instruments
// of the registry and installs it. A nil registry installs nothing.
func (s *Store) RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	s.SetObserver(&Obs{
		GroupSize:  r.Histogram("wal.group_size", "records per group-commit flush", obs.SizeBuckets()),
		FsyncNanos: r.Histogram("wal.fsync_ns", "group fsync latency", obs.DurationBuckets()),
		Records:    r.Counter("wal.records", "records durably appended"),
		Rewinds:    r.Counter("wal.rewinds", "failed group flushes rewound"),
	})
}
