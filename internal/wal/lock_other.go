//go:build !unix

package wal

import "os"

// Non-unix platforms get no advisory lock: single-opener discipline is
// the caller's responsibility there.
func lockDir(dir string) (*os.File, error) { return nil, nil }

func unlockDir(f *os.File) {
	if f != nil {
		f.Close()
	}
}
