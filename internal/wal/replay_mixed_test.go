package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"graphkeys/internal/graph"
)

// TestReplayMixedGroupCommit is the crash-replay differential for the
// optimistic write path: concurrent allocating and non-allocating
// writers group-commit interleaved records, and a recovery replay of
// the log must rebuild the live graph byte-identically. The allocating
// writers are the interesting half — their node IDs are assigned at
// reservation, under the plan mutex, in the same order their records
// enter the log, which is exactly what makes the sequential replay
// agree with the concurrent original.
func TestReplayMixedGroupCommit(t *testing.T) {
	const writers, rounds = 8, 16
	dir := t.TempDir()
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	logHook := func(ops []graph.DeltaOp) (graph.DeltaCommit, error) {
		_, commit, err := s.Begin(ops)
		if err != nil {
			return nil, err
		}
		return graph.DeltaCommit(commit), nil
	}

	// Base state for the non-allocating writers: entities and literals
	// that already exist, so toggling the triple allocates nothing.
	base := &graph.Delta{}
	for w := 0; w < writers; w++ {
		id := fmt.Sprintf("base%d", w)
		base.AddEntity(id, "T").AddValueTriple(id, "p", fmt.Sprintf("lit%d", w))
	}
	if _, err := g.ApplyDeltaLogged(base, logHook); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				var d *graph.Delta
				if w%2 == 0 {
					// Allocating: fresh entity + fresh literal each round.
					id := fmt.Sprintf("w%d-e%d", w, j)
					d = (&graph.Delta{}).
						AddEntity(id, "T").
						AddValueTriple(id, "score", fmt.Sprintf("w%d-v%d", w, j))
				} else {
					// Non-allocating: toggle an existing value triple.
					id, lit := fmt.Sprintf("base%d", w), fmt.Sprintf("lit%d", w)
					if j%2 == 0 {
						d = (&graph.Delta{}).RemoveValueTriple(id, "p", lit)
					} else {
						d = (&graph.Delta{}).AddValueTriple(id, "p", lit)
					}
				}
				if _, err := g.ApplyDeltaLogged(d, logHook); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var live bytes.Buffer
	if err := g.WriteText(&live); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rg, recs, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := writers*rounds + 1; len(recs) != want {
		t.Fatalf("replayed %d records, want %d", len(recs), want)
	}
	var replayed bytes.Buffer
	if err := rg.WriteText(&replayed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), replayed.Bytes()) {
		t.Fatalf("replay diverges from the live graph:\nlive:\n%s\nreplayed:\n%s", live.String(), replayed.String())
	}
}
