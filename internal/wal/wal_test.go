package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"graphkeys/internal/graph"
)

func graphText(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// logDeltas applies the deltas to g through the store's write-ahead
// hook, so the log records exactly what the graph absorbed. It uses
// the Begin/commit (group-commit) form, the one the durable matcher
// wires up.
func logDeltas(t *testing.T, g *graph.Graph, s *Store, ds ...*graph.Delta) {
	t.Helper()
	for _, d := range ds {
		if _, err := g.ApplyDeltaLogged(d, func(ops []graph.DeltaOp) (graph.DeltaCommit, error) {
			_, commit, err := s.Begin(ops)
			if err != nil {
				return nil, err
			}
			return graph.DeltaCommit(commit), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	logDeltas(t, g, s,
		(&graph.Delta{}).AddEntity("a", "T").AddValueTriple("a", "p", "1"),
		(&graph.Delta{}).AddEntity("b", "T").AddValueTriple("b", "p", "1").AddTriple("b", "knows", "a"),
		(&graph.Delta{}).RemoveValueTriple("a", "p", "1").AddValueTriple("a", "p", "2"),
		(&graph.Delta{}).AddEntity("c", "T").RemoveEntity("b"),
	)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rg, recs, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	if got, want := graphText(t, rg), graphText(t, g); !bytes.Equal(got, want) {
		t.Fatalf("replay diverges:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Byte-identical reconstruction includes the dense node IDs, since
	// allocation order is log order.
	if rg.NumNodes() != g.NumNodes() {
		t.Fatalf("replayed NumNodes = %d, want %d", rg.NumNodes(), g.NumNodes())
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	logDeltas(t, g, s,
		(&graph.Delta{}).AddEntity("a", "T").AddValueTriple("a", "p", "1"),
		(&graph.Delta{}).AddEntity("b", "T").AddValueTriple("b", "p", "2"),
	)
	s.Close()

	// Tear the tail: drop the last 3 bytes of the log.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Records()
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1 (torn second record dropped)", len(recs))
	}
	if recs[0].Seq != 1 {
		t.Fatalf("surviving record seq = %d, want 1", recs[0].Seq)
	}
	// The log must accept appends again, continuing the sequence.
	seq, err := s2.Append([]graph.DeltaOp{{Kind: graph.OpAddEntity, ID: "c", TypeName: "T"}})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("post-recovery seq = %d, want 2", seq)
	}
}

func TestSnapshotCompactsAndCoversRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	logDeltas(t, g, s,
		(&graph.Delta{}).AddEntity("a", "T").AddValueTriple("a", "p", "1"),
		(&graph.Delta{}).AddEntity("b", "T").AddValueTriple("b", "p", "1"),
	)
	pairs := [][2]string{{"a", "b"}}
	if err := s.WriteSnapshot(g, pairs); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot deltas land in the (now truncated) log.
	logDeltas(t, g, s, (&graph.Delta{}).AddValueTriple("a", "q", "z"))
	s.Close()

	s2, err := Open(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if s2.SnapshotGraph() == nil {
		t.Fatal("snapshot not loaded")
	}
	if got := s2.SnapshotPairs(); len(got) != 1 || got[0] != pairs[0] {
		t.Fatalf("snapshot pairs = %v, want %v", got, pairs)
	}
	if got := len(s2.Records()); got != 1 {
		t.Fatalf("records after snapshot = %d, want 1", got)
	}
	// The dir is single-opener: Replay must be rejected while s2 holds
	// the lock, and succeed once it is released.
	if _, _, err := Replay(dir); err == nil {
		t.Fatal("Replay succeeded while the store was open")
	}
	s2.Close()
	rg, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := graphText(t, rg), graphText(t, g); !bytes.Equal(got, want) {
		t.Fatalf("snapshot+log replay diverges:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotKeepsIsolatedEntities(t *testing.T) {
	// The graph text format is triples-only; entities without incident
	// triples (never attached, or stripped by removals) must survive
	// compaction anyway.
	dir := t.TempDir()
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	logDeltas(t, g, s,
		(&graph.Delta{}).AddEntity("lonely", "person"),
		(&graph.Delta{}).AddEntity("a", "person").AddValueTriple("a", "p", "1"),
		(&graph.Delta{}).AddEntity("b", "person").AddValueTriple("b", "q", "2").RemoveValueTriple("b", "q", "2"),
	)
	if err := s.WriteSnapshot(g, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	rg, _, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"lonely", "a", "b"} {
		if _, ok := rg.Entity(id); !ok {
			t.Fatalf("entity %q lost by snapshot compaction", id)
		}
	}
	if rg.NumEntities() != g.NumEntities() {
		t.Fatalf("replayed NumEntities = %d, want %d", rg.NumEntities(), g.NumEntities())
	}
	// And the revived entity is fully usable: a triple may attach to it.
	if _, err := rg.ApplyDelta((&graph.Delta{}).AddValueTriple("lonely", "p", "x")); err != nil {
		t.Fatalf("triple on revived isolated entity: %v", err)
	}
}

func TestSnapshotRejectsUnrepresentableNames(t *testing.T) {
	// Entity IDs with tabs fit the binary log but not the text
	// snapshot; WriteSnapshot must refuse (leaving the log authoritative)
	// instead of writing a snapshot that can never be reopened.
	dir := t.TempDir()
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := graph.New()
	logDeltas(t, g, s,
		(&graph.Delta{}).AddEntity("x\ty", "T").AddValueTriple("x\ty", "p", "1"))
	if err := s.WriteSnapshot(g, nil); err == nil {
		t.Fatal("snapshot of a tab-containing entity ID did not error")
	}
	// The log is still authoritative and replayable.
	s.Close()
	rg, recs, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
	if _, ok := rg.Entity("x\ty"); !ok {
		t.Fatal("tab-containing entity lost from the log")
	}
}

func TestTornTailHugeLengthPrefix(t *testing.T) {
	// A torn header whose garbage length field decodes huge must not
	// make Open allocate gigabytes; the scan bounds it by the file.
	dir := t.TempDir()
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	logDeltas(t, g, s, (&graph.Delta{}).AddEntity("a", "T"))
	s.Close()

	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Records()); got != 1 {
		t.Fatalf("recovered %d records, want 1", got)
	}
}

func TestSnapshotCrashBeforeTruncate(t *testing.T) {
	// Simulate the crash window between snapshot rename and log
	// truncation: a log still holding records the snapshot covers must
	// not double-apply them.
	dir := t.TempDir()
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	logDeltas(t, g, s, (&graph.Delta{}).AddEntity("a", "T").AddValueTriple("a", "p", "1"))
	logData, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(g, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Restore the pre-truncation log: snapshot present AND records <= snapSeq.
	if err := os.WriteFile(filepath.Join(dir, logName), logData, 0o644); err != nil {
		t.Fatal(err)
	}

	rg, recs, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("covered records replayed: %v", recs)
	}
	if got, want := graphText(t, rg), graphText(t, g); !bytes.Equal(got, want) {
		t.Fatalf("replay diverges after crash window:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestAppendFailureDisablesStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]graph.DeltaOp{{Kind: graph.OpAddEntity, ID: "a", TypeName: "T"}}); err != nil {
		t.Fatal(err)
	}
	// Sabotage the file handle: the next Append's write fails, and the
	// rewind fails too, so the store must mark itself broken instead of
	// risking acknowledged records after garbage.
	s.f.Close()
	if _, err := s.Append([]graph.DeltaOp{{Kind: graph.OpAddEntity, ID: "b", TypeName: "T"}}); err == nil {
		t.Fatal("append on a closed file succeeded")
	}
	if _, err := s.Append([]graph.DeltaOp{{Kind: graph.OpAddEntity, ID: "c", TypeName: "T"}}); err == nil {
		t.Fatal("append on a broken store succeeded")
	}
	// A broken store still holds the dir lock until Close.
	if _, err := Open(dir, SyncAlways); err == nil {
		t.Fatal("second Open succeeded while the broken store held the lock")
	}
	s.Close()
	// The good prefix survives for the next Open.
	s2, err := Open(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Records()); got != 1 {
		t.Fatalf("recovered %d records, want 1", got)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	ops := []graph.DeltaOp{
		{Kind: graph.OpAddEntity, ID: "weird\tid\n", TypeName: "T"},
		{Kind: graph.OpAddTriple, Subject: "weird\tid\n", Pred: "p", Object: "véal\x00ue", ObjectIsValue: true},
		{Kind: graph.OpRemoveTriple, Subject: "a", Pred: "q", Object: "b"},
		{Kind: graph.OpRemoveEntity, ID: "a"},
	}
	payload := encodePayload(42, ops)
	rec, err := decodePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 42 || len(rec.Ops) != len(ops) {
		t.Fatalf("decoded %+v", rec)
	}
	for i := range ops {
		if rec.Ops[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, rec.Ops[i], ops[i])
		}
	}
}
