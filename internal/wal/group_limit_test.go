package wal

import (
	"fmt"
	"sync"
	"testing"

	"graphkeys/internal/graph"
	"graphkeys/internal/obs"
)

// TestGroupLimitCapsFlushes buffers a burst far larger than the group
// cap and then commits it all at once: every flush must take at most
// the cap, the excess must carry over in order, and the group-size
// histogram must prove it (max <= cap, sum == records written).
func TestGroupLimitCapsFlushes(t *testing.T) {
	const (
		limit = 8
		n     = 50
	)
	dir := t.TempDir()
	s, err := Open(dir, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGroupLimit(limit)
	reg := obs.NewRegistry()
	s.RegisterObs(reg)

	// Buffer the whole burst before anyone commits, so the pending
	// queue is guaranteed to exceed the cap.
	commits := make([]func() error, 0, n)
	for i := 0; i < n; i++ {
		ops := []graph.DeltaOp{{Kind: graph.OpAddEntity, ID: fmt.Sprintf("e%d", i), TypeName: "T"}}
		_, commit, err := s.Begin(ops)
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, commit)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, commit := range commits {
		wg.Add(1)
		go func(i int, commit func() error) {
			defer wg.Done()
			errs[i] = commit()
		}(i, commit)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}

	snap := reg.Snapshot()
	h, ok := snap.Histograms["wal.group_size"]
	if !ok {
		t.Fatal("wal.group_size histogram missing")
	}
	if h.Max > limit {
		t.Fatalf("a flush took %d records, cap is %d", h.Max, limit)
	}
	if h.Sum != n {
		t.Fatalf("flushed %d records total, want %d", h.Sum, n)
	}
	if want := uint64((n + limit - 1) / limit); h.Count < want {
		t.Fatalf("%d flushes for %d records at cap %d, want >= %d", h.Count, n, limit, want)
	}
	if got := snap.Counters["wal.records"]; got != n {
		t.Fatalf("wal.records = %d, want %d", got, n)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The split must not lose or reorder anything: every record
	// replays, in seq order.
	_, recs, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("record %d out of order: seq %d after %d", i, recs[i].Seq, recs[i-1].Seq)
		}
	}
}
