//go:build unix

package wal

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/wal.lock, rejecting
// a second opener (another Store, a concurrent Replay, another
// process) instead of letting it truncate or interleave with a live
// writer's log. The lock dies with the process, so a crash never
// wedges the directory.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+"/wal.lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: lock: %v", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is already open in another store or process", dir)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	if f != nil {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}
}
