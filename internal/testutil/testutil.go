// Package testutil is the shared differential-test harness of the
// write path: a seeded, deterministic mutation-sequence generator over
// a grouped fixture of keyed entities. The incremental-repair, planner,
// WAL and public-matcher tests all drive it instead of carrying their
// own ad-hoc generators (which had drifted into three near-copies with
// slightly different mutation mixes).
//
// The fixture is Groups disjoint groups of PerGroup "person" entities
// with pairwise-colliding email value triples — the value-key material
// — and, when Bands is set, per-group "band" entities with names and a
// led_by edge to a person — the recursive-key material, so repairs
// cascade across types. Every generated delta is a pure function of
// (Config, group, round): re-invoking the generator replays the exact
// sequence, which is what lets a test apply the same stream
// concurrently and serially and demand identical results.
//
// Footprint overlap is tunable: at Overlap 0 a delta touches only its
// own group's entities and group-scoped literals, so the deltas of one
// round have pairwise-disjoint shard footprints (concurrent writers
// never conflict); raising Overlap makes deltas reach into the next
// group with that probability, producing admission conflicts and
// overlapping repair components on demand.
package testutil

import (
	"fmt"
	"math/rand"

	"graphkeys/internal/graph"
)

// Config shapes a generated mutation sequence. The zero value is
// usable; New fills in defaults.
type Config struct {
	// Seed drives every random choice; equal Configs generate equal
	// sequences.
	Seed int64
	// Groups is the number of disjoint entity groups (default 4).
	Groups int
	// PerGroup is the number of persons per group (default 8).
	PerGroup int
	// Overlap is the per-delta probability (0..1) that the delta also
	// touches the next group, overlapping its footprint with that
	// group's deltas.
	Overlap float64
	// Bands adds band entities (name_of value triples plus a led_by
	// edge to a person) and a recursive key over them, exercising the
	// dependency-cascade repair path.
	Bands bool
	// EntityChurn mixes RemoveEntity + re-add incarnations into the
	// sequence.
	EntityChurn bool
	// Coalesce mixes ops that cancel inside one delta (duplicate adds,
	// add+remove pairs), exercising planner normalization; such deltas
	// may normalize to fewer ops or to nothing.
	Coalesce bool
}

// Generator produces the fixture and its mutation sequence.
type Generator struct {
	cfg Config
}

// New returns a generator over the config, with defaults applied.
func New(cfg Config) *Generator {
	if cfg.Groups <= 0 {
		cfg.Groups = 4
	}
	if cfg.PerGroup <= 0 {
		cfg.PerGroup = 8
	}
	return &Generator{cfg: cfg}
}

// Config returns the effective (defaulted) configuration.
func (gn *Generator) Config() Config { return gn.cfg }

// Keys returns the key DSL text matching the fixture: a value key on
// person, plus a recursive key on band when Bands is set.
func (gn *Generator) Keys() string {
	ks := `key P for person {
	x -email-> e*
}`
	if gn.cfg.Bands {
		ks += `
key B for band {
	x -name_of-> n*
	x -led_by-> $y:person
}`
	}
	return ks
}

func (gn *Generator) person(group, i int) string {
	return fmt.Sprintf("g%d-p%d", group, i%gn.cfg.PerGroup)
}

func (gn *Generator) band(group, i int) string {
	return fmt.Sprintf("g%d-b%d", group, i%gn.cfg.PerGroup)
}

// mail is a group-scoped email literal; the seed assigns mail(i/2) to
// person i, so persons collide pairwise under the value key.
func (gn *Generator) mail(group, k int) string {
	return fmt.Sprintf("g%d-mail%d", group, k%gn.cfg.PerGroup)
}

func (gn *Generator) bandName(group, k int) string {
	return fmt.Sprintf("g%d-band%d", group, k%gn.cfg.PerGroup)
}

// Seed returns the initial population as one delta.
func (gn *Generator) Seed() *graph.Delta {
	d := &graph.Delta{}
	for w := 0; w < gn.cfg.Groups; w++ {
		for i := 0; i < gn.cfg.PerGroup; i++ {
			id := gn.person(w, i)
			d.AddEntity(id, "person")
			d.AddValueTriple(id, "email", gn.mail(w, i/2))
		}
		if gn.cfg.Bands {
			for i := 0; i < gn.cfg.PerGroup; i++ {
				id := gn.band(w, i)
				d.AddEntity(id, "band")
				d.AddValueTriple(id, "name_of", gn.bandName(w, i/2))
				d.AddTriple(id, "led_by", gn.person(w, i))
			}
		}
	}
	return d
}

// rng derives the per-delta random stream: a pure function of
// (Seed, group, round).
func (gn *Generator) rng(group, round int) *rand.Rand {
	h := gn.cfg.Seed*0x9E3779B9 + int64(group+1)*0x85EBCA77 + int64(round+1)*0xC2B2AE3D
	return rand.New(rand.NewSource(h))
}

// Delta returns the mutation delta of the given group and round. It is
// deterministic: the same (Config, group, round) always yields the
// same ops, so a test can re-derive the stream for a serial reference
// run.
func (gn *Generator) Delta(group, round int) *graph.Delta {
	group %= gn.cfg.Groups
	rng := gn.rng(group, round)
	d := &graph.Delta{}
	gn.mutate(d, group, round, rng)
	if gn.cfg.Overlap > 0 && rng.Float64() < gn.cfg.Overlap {
		// Reach into the next group: overlapping footprints across the
		// round's deltas, overlapping repair regions across the batch.
		gn.mutate(d, (group+1)%gn.cfg.Groups, round, rng)
	}
	return d
}

// mutate appends one group-local mutation to d.
func (gn *Generator) mutate(d *graph.Delta, group, round int, rng *rand.Rand) {
	kinds := []int{0, 1}
	if gn.cfg.Bands {
		kinds = append(kinds, 2)
	}
	if gn.cfg.EntityChurn {
		kinds = append(kinds, 3)
	}
	if gn.cfg.Coalesce {
		kinds = append(kinds, 4)
	}
	i := rng.Intn(gn.cfg.PerGroup)
	id := gn.person(group, i)
	switch kinds[rng.Intn(len(kinds))] {
	case 0: // email churn: drop the seed email, join another collision class
		d.RemoveValueTriple(id, "email", gn.mail(group, i/2))
		d.AddValueTriple(id, "email", gn.mail(group, rng.Intn(gn.cfg.PerGroup)))
	case 1: // extra email: grow a collision class without removals
		d.AddValueTriple(id, "email", gn.mail(group, rng.Intn(gn.cfg.PerGroup)))
	case 2: // band rename: recursive-key churn
		b := gn.band(group, rng.Intn(gn.cfg.PerGroup))
		d.RemoveValueTriple(b, "name_of", gn.bandName(group, rng.Intn(gn.cfg.PerGroup)))
		d.AddValueTriple(b, "name_of", gn.bandName(group, rng.Intn(gn.cfg.PerGroup)))
	case 3: // entity churn: drop a person, re-add a fresh incarnation
		d.RemoveEntity(id)
		d.AddEntity(id, "person")
		d.AddValueTriple(id, "email", gn.mail(group, rng.Intn(gn.cfg.PerGroup)))
	case 4: // internal churn that (partially) coalesces away
		lit := fmt.Sprintf("g%d-note%d", group, round)
		d.AddValueTriple(id, "note", lit)
		d.AddValueTriple(id, "note", lit) // dup: coalesces
		if rng.Intn(2) == 0 {
			d.RemoveValueTriple(id, "note", lit) // cancels: no-op delta part
		}
	}
}

// Independent returns the i-th delta of a stream whose deltas touch
// pairwise-distinct persons (for i < Groups*PerGroup), so ANY
// reordering of the stream — e.g. by the async Writer's batches —
// reaches the same final state. Entity churn (when enabled) removes
// and re-adds the delta's own person only.
func (gn *Generator) Independent(i int) *graph.Delta {
	group := (i / gn.cfg.PerGroup) % gn.cfg.Groups
	j := i % gn.cfg.PerGroup
	rng := gn.rng(group, 1<<20+i)
	id := gn.person(group, j)
	d := &graph.Delta{}
	d.RemoveValueTriple(id, "email", gn.mail(group, j/2))
	d.AddValueTriple(id, "email", gn.mail(group, rng.Intn(gn.cfg.PerGroup)))
	if gn.cfg.EntityChurn && i%5 == 2 {
		d.RemoveEntity(id)
		d.AddEntity(id, "person")
		d.AddValueTriple(id, "email", fmt.Sprintf("g%d-fresh%d", group, i))
	}
	return d
}

// AddOnly returns a purely additive delta of the given group and
// round that always reaches into the next group. Add-only deltas
// commute under any interleaving — the final triple set is the union —
// so concurrent batches of them compare exactly against a serialized
// reference even though their footprints (and the repair components
// they induce) overlap chain-wise across every group.
func (gn *Generator) AddOnly(group, round int) *graph.Delta {
	group %= gn.cfg.Groups
	rng := gn.rng(group, 1<<21+round)
	d := &graph.Delta{}
	add := func(w int) {
		id := gn.person(w, rng.Intn(gn.cfg.PerGroup))
		d.AddValueTriple(id, "email", gn.mail(w, rng.Intn(gn.cfg.PerGroup)))
	}
	add(group)
	add((group + 1) % gn.cfg.Groups)
	return d
}

// Toggle returns the i-th delta of a per-group toggle stream:
// alternately adding and removing one marker triple per person, so —
// applied in i order within a group — every delta has exactly one
// effective op, allocates nothing (the literal is pre-seeded), and
// keeps its footprint inside the group. The durable-write benchmarks
// use it to stream never-coalescing, pairwise-disjoint deltas through
// concurrent writers.
func (gn *Generator) Toggle(group, i int) *graph.Delta {
	group %= gn.cfg.Groups
	d := &graph.Delta{}
	id := gn.person(group, i%gn.cfg.PerGroup)
	lit := gn.mail(group, 0)
	if (i/gn.cfg.PerGroup)%2 == 0 {
		d.AddValueTriple(id, "note", lit)
	} else {
		d.RemoveValueTriple(id, "note", lit)
	}
	return d
}

// Round returns one delta per group for the given round — a batch with
// pairwise-disjoint footprints at Overlap 0.
func (gn *Generator) Round(round int) []*graph.Delta {
	ds := make([]*graph.Delta, gn.cfg.Groups)
	for w := 0; w < gn.cfg.Groups; w++ {
		ds[w] = gn.Delta(w, round)
	}
	return ds
}

// Sequence returns n deltas, cycling round-robin over the groups.
func (gn *Generator) Sequence(n int) []*graph.Delta {
	ds := make([]*graph.Delta, n)
	for i := 0; i < n; i++ {
		ds[i] = gn.Delta(i%gn.cfg.Groups, i/gn.cfg.Groups)
	}
	return ds
}
