package inc

import (
	"testing"

	"graphkeys/internal/fixtures"
	"graphkeys/internal/graph"
)

// TestNeighborhoodCacheFreshAcrossApplies is the regression test for
// the stale-neighborhood bug class the incremental engine depends on
// avoiding: the lazy matcher caches d-neighborhoods on first request,
// so an engine that kept one matcher across Applies would check
// witnesses against pre-mutation neighborhoods. The scenario forces
// alb2's neighborhood into the cache during one Apply, then adds the
// triple that completes a Q2 witness inside that same neighborhood: if
// the cache survived the mutation, the restricted witness search could
// not see the new value node and the identification would be missed.
func TestNeighborhoodCacheFreshAcrossApplies(t *testing.T) {
	g := graph.New()
	alb1 := g.MustAddEntity("alb1", "album")
	alb2 := g.MustAddEntity("alb2", "album")
	art1 := g.MustAddEntity("art1", "artist")
	art2 := g.MustAddEntity("art2", "artist")
	anthology := g.AddValue("Anthology 2")
	g.MustAddTriple(alb1, "name_of", anthology)
	g.MustAddTriple(alb2, "name_of", anthology)
	g.MustAddTriple(alb1, "release_year", g.AddValue("1996"))
	g.MustAddTriple(alb1, "recorded_by", art1)
	g.MustAddTriple(alb2, "recorded_by", art2)
	beatles := g.AddValue("The Beatles")
	g.MustAddTriple(art1, "name_of", beatles)
	g.MustAddTriple(art2, "name_of", beatles)

	e, err := New(g, fixtures.MusicKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Pairs()) != 0 {
		t.Fatalf("initial chase identified %v, want nothing (alb2 has no release year)", e.Pairs())
	}

	// Apply 1: a no-consequence addition next to alb1. Repair seeds
	// (alb1, alb2) — they share a name — and the Q1 check computes and
	// caches both albums' d-neighborhoods before failing (the artists
	// are not yet identified).
	d1 := new(graph.Delta).AddValueTriple("alb1", "label_of", "EMI")
	added, _, err := e.Apply(d1)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 0 {
		t.Fatalf("noise delta identified %v", added)
	}
	if e.LastStats().Checked == 0 {
		t.Fatal("noise delta checked no pairs; the scenario no longer caches neighborhoods")
	}

	// Apply 2: complete alb2's Q2 witness. A stale cached neighborhood
	// of alb2 would not contain the new "1996" value node, and the
	// witness search — restricted to the cached set — would miss it.
	d2 := new(graph.Delta).AddValueTriple("alb2", "release_year", "1996")
	added, _, err = e.Apply(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Eq().Same(int32(alb1), int32(alb2)) {
		t.Fatal("albums not identified after completing the Q2 witness: stale neighborhood cache")
	}
	// Q3 must cascade to the artists through the fresh album pair.
	if !e.Eq().Same(int32(art1), int32(art2)) {
		t.Fatal("artist cascade missed after album identification")
	}
	if len(added) != 2 {
		t.Fatalf("added = %v, want the album and artist pairs", added)
	}
}
