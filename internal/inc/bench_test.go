package inc

import (
	"math/rand"
	"testing"
	"time"

	"graphkeys/internal/chase"
	"graphkeys/internal/gen"
	"graphkeys/internal/graph"
)

// benchWorkload builds a synthetic graph big enough that whole-graph
// re-chase costs (matcher construction, candidate generation, candidate
// checks) dominate, plus a cycle of small fixed-size deltas — the
// steady-state workload of a mutating store, where a write touches a
// handful of triples regardless of how big the graph has grown.
func benchWorkload(tb testing.TB, batch int) (*gen.Workload, []*graph.Delta) {
	tb.Helper()
	cfg := gen.DefaultSynthetic()
	cfg.TypeGroups = 3
	cfg.EntitiesPerType = 200
	w, err := gen.Synthetic(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	// Deltas: remove a random small batch, then re-add it, repeatedly.
	rng := rand.New(rand.NewSource(42))
	trs := w.Graph.Triples()
	var deltas []*graph.Delta
	for cycle := 0; cycle < 4; cycle++ {
		recs := make([]tripleRec, 0, batch)
		for i := 0; i < batch; i++ {
			recs = append(recs, recordTriple(w.Graph, trs[rng.Intn(len(trs))]))
		}
		rem, add := &graph.Delta{}, &graph.Delta{}
		for _, r := range recs {
			r.removeOp(rem)
			r.addOp(add)
		}
		deltas = append(deltas, rem, add)
	}
	return w, deltas
}

// BenchmarkIncrementalApply measures maintaining the fixpoint through
// small deltas (a dozen triples each).
func BenchmarkIncrementalApply(b *testing.B) {
	w, deltas := benchWorkload(b, 12)
	e, err := New(w.Graph, w.Keys, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Apply(deltas[i%len(deltas)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRechase measures the from-scratch alternative: after
// each delta, recompute chase(G, Σ) with the sequential engine.
func BenchmarkFullRechase(b *testing.B) {
	w, deltas := benchWorkload(b, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Graph.ApplyDelta(deltas[i%len(deltas)]); err != nil {
			b.Fatal(err)
		}
		if _, err := chase.Run(w.Graph, w.Keys, chase.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestIncrementalSpeedup is the acceptance check behind the benchmarks:
// on a small-delta workload (a dozen triples per delta), incremental
// maintenance must beat full re-chase by at least 5x. The measured
// margin is far larger; 5x keeps the test robust on noisy CI machines.
// (Before value-indexed candidate generation the full re-chase was
// quadratic in the per-type population and the margin was larger
// still; the baseline here is the improved, indexed chase.)
func TestIncrementalSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	w, deltas := benchWorkload(t, 12)
	e, err := New(w.Graph, w.Keys, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Interleave: for each delta, time Apply, then time the full
	// re-chase on the identical mutated graph (also verifying results).
	var incTime, fullTime time.Duration
	for _, d := range deltas {
		start := time.Now()
		if _, _, err := e.Apply(d); err != nil {
			t.Fatal(err)
		}
		incTime += time.Since(start)

		start = time.Now()
		res, err := chase.Run(w.Graph, w.Keys, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fullTime += time.Since(start)
		if !pairsEqual(e.Pairs(), res.Pairs) {
			t.Fatal("incremental and full re-chase disagree")
		}
	}
	speedup := float64(fullTime) / float64(incTime)
	t.Logf("full re-chase %v, incremental %v: %.1fx speedup over %d deltas (|G| = %d, batch = 12 triples)",
		fullTime, incTime, speedup, len(deltas), w.Graph.NumTriples())
	if speedup < 5 {
		t.Fatalf("incremental maintenance only %.1fx faster than full re-chase, want >= 5x", speedup)
	}
}
