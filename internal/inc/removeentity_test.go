package inc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"graphkeys/internal/chase"
	"graphkeys/internal/fixtures"
	"graphkeys/internal/gen"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

// assertMatchesFullChase re-runs the full sequential chase on the
// engine's (already mutated) graph and compares fixpoints.
func assertMatchesFullChase(t *testing.T, e *Engine, set *keys.Set, ctx string) {
	t.Helper()
	full, err := chase.Run(e.Graph(), set, chase.Options{})
	if err != nil {
		t.Fatalf("%s: full chase: %v", ctx, err)
	}
	if !reflect.DeepEqual(e.Pairs(), full.Pairs) {
		t.Fatalf("%s: incremental %v != full re-chase %v", ctx, e.Pairs(), full.Pairs)
	}
}

// TestRemoveEntityInvalidatesItsPairs removes one side of an
// identified pair: every identification involving the entity must
// disappear, reported as removed, and the fixpoint must equal a fresh
// chase of the mutated graph.
func TestRemoveEntityInvalidatesItsPairs(t *testing.T) {
	g, set := fixtures.MusicGraph(), fixtures.MusicKeys()
	e, err := New(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Pairs()) == 0 {
		t.Fatal("music fixture identified nothing")
	}
	victim := graph.NodeID(e.Pairs()[0].A)
	victimID := g.Label(victim)

	d := &graph.Delta{}
	d.RemoveEntity(victimID)
	added, removed, err := e.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 0 {
		t.Fatalf("removal added pairs: %v", added)
	}
	if len(removed) == 0 {
		t.Fatal("removing an identified entity removed no pairs")
	}
	for _, pr := range e.Pairs() {
		if graph.NodeID(pr.A) == victim || graph.NodeID(pr.B) == victim {
			t.Fatalf("tombstoned entity still identified: %v", pr)
		}
	}
	assertMatchesFullChase(t, e, set, "after removal")

	// Re-adding the entity with the same attributes restores its pairs.
	re := &graph.Delta{}
	re.AddEntity(victimID, "album")
	re.AddValueTriple(victimID, "name_of", "Anthology 2")
	re.AddValueTriple(victimID, "release_year", "1996")
	addedBack, _, err := e.Apply(re)
	if err != nil {
		t.Fatal(err)
	}
	if len(addedBack) == 0 {
		t.Fatal("re-adding the entity with identifying attributes restored nothing")
	}
	assertMatchesFullChase(t, e, set, "after re-add")
}

// TestRemoveEntityRandomDifferential drives random entity removals
// (interleaved with triple churn) through the engine on a synthetic
// workload, checking against a full re-chase after every delta.
func TestRemoveEntityRandomDifferential(t *testing.T) {
	cfg := gen.DefaultSynthetic()
	cfg.Seed = 42
	cfg.EntitiesPerType = 30
	w, err := gen.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(w.Graph, w.Keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var entities []string
	w.Graph.EachEntity(func(n graph.NodeID) {
		entities = append(entities, w.Graph.Label(n))
	})
	for round := 0; round < 8; round++ {
		d := &graph.Delta{}
		victim := entities[rng.Intn(len(entities))]
		d.RemoveEntity(victim)
		if round%2 == 0 {
			// Also churn an unrelated attribute in the same delta.
			other := entities[rng.Intn(len(entities))]
			if other != victim {
				d.AddValueTriple(other, "churn_attr", fmt.Sprintf("v%d", round))
			}
		}
		if _, _, err := e.Apply(d); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		assertMatchesFullChase(t, e, w.Keys, fmt.Sprintf("round %d (removed %s)", round, victim))
	}
}
