package inc

import "graphkeys/internal/obs"

// Obs is the repair pass's instrument bundle: the Stats fields as
// live counters (ticking while a pass runs, where Stats only appears
// after it), plus the shape of the chase phase. Every handle may be
// nil (they no-op); an engine with Options.Obs == nil pays nothing.
type Obs struct {
	// Suspects, Region, Checked and Identified mirror the Stats fields
	// cumulatively across all passes.
	Suspects   *obs.Counter
	Region     *obs.Counter
	Checked    *obs.Counter
	Identified *obs.Counter
	// Merged counts deltas merged into maintenance passes; Repairs
	// counts the passes themselves (Merged/Repairs is the coalescing
	// the batched write path achieved).
	Merged  *obs.Counter
	Repairs *obs.Counter
	// Rounds counts BSP rounds run under recursive keys; Components
	// counts independently drained seed components without them.
	Rounds     *obs.Counter
	Components *obs.Counter
	// WorklistDepth observes the worklist length at the start of each
	// BSP round and sequential drain — the cascade's width over time.
	WorklistDepth *obs.Histogram
}

func (o *Obs) suspects() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Suspects
}

func (o *Obs) region() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Region
}

func (o *Obs) checked() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Checked
}

func (o *Obs) identified() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Identified
}

func (o *Obs) merged() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Merged
}

func (o *Obs) repairs() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Repairs
}

func (o *Obs) rounds() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Rounds
}

func (o *Obs) components() *obs.Counter {
	if o == nil {
		return nil
	}
	return o.Components
}

func (o *Obs) worklistDepth() *obs.Histogram {
	if o == nil {
		return nil
	}
	return o.WorklistDepth
}

// RegisterObs builds an Obs wired to conventionally named instruments
// of the registry (nil registry, nil Obs) — hand it to Options.Obs.
func RegisterObs(r *obs.Registry) *Obs {
	if r == nil {
		return nil
	}
	return &Obs{
		Suspects:      r.Counter("inc.suspects", "chase steps invalidated by removals"),
		Region:        r.Counter("inc.region", "entities in affected regions"),
		Checked:       r.Counter("inc.checked", "candidate-pair checks run"),
		Identified:    r.Counter("inc.identified", "chase steps (re-)derived"),
		Merged:        r.Counter("inc.merged", "deltas merged into maintenance passes"),
		Repairs:       r.Counter("inc.repairs", "maintenance passes run"),
		Rounds:        r.Counter("inc.rounds", "BSP rounds under recursive keys"),
		Components:    r.Counter("inc.components", "seed components drained independently"),
		WorklistDepth: r.Histogram("inc.worklist_depth", "worklist length per round/drain", obs.SizeBuckets()),
	}
}
