package inc

import (
	"reflect"
	"testing"

	"graphkeys/internal/obs"
	"graphkeys/internal/testutil"
)

// TestObsDifferential pins the observability guarantee: enabling
// metrics and phase tracing changes nothing the engine computes. The
// same mutation sequence runs bare and fully instrumented, at p = 1
// and p = 4, over both the component-parallel path and the BSP-rounds
// (recursive keys) path — graph text, pairs, step log and stats must
// be byte-identical.
func TestObsDifferential(t *testing.T) {
	const rounds = 6
	configs := []struct {
		name string
		cfg  testutil.Config
	}{
		{"components", testutil.Config{Seed: 21, Groups: 6, PerGroup: 8, EntityChurn: true, Coalesce: true}},
		{"rounds-recursive", testutil.Config{Seed: 22, Groups: 4, PerGroup: 8, Bands: true, EntityChurn: true}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			for _, p := range []int{1, 4} {
				gen := testutil.New(tc.cfg)
				bare := runRepairSequence(t, gen, Options{Parallelism: p}, rounds)

				reg := obs.NewRegistry()
				tr := obs.NewTracer(64)
				instr := runRepairSequence(t, gen, Options{
					Parallelism: p,
					Obs:         RegisterObs(reg),
					Trace:       tr,
				}, rounds)

				if instr.graphText != bare.graphText {
					t.Fatalf("p=%d: instrumented graph text diverges", p)
				}
				if instr.pairs != bare.pairs {
					t.Fatalf("p=%d: instrumented pairs diverge:\ngot:  %s\nwant: %s", p, instr.pairs, bare.pairs)
				}
				if instr.steps != bare.steps {
					t.Fatalf("p=%d: instrumented step log diverges:\ngot:\n%s\nwant:\n%s", p, instr.steps, bare.steps)
				}
				if !reflect.DeepEqual(instr.stats, bare.stats) {
					t.Fatalf("p=%d: instrumented stats diverge:\ngot:  %+v\nwant: %+v", p, instr.stats, bare.stats)
				}

				// And the instruments must actually have observed the run:
				// silence here would mean the hooks are disconnected.
				snap := reg.Snapshot()
				if snap.Counters["inc.repairs"] == 0 {
					t.Fatalf("p=%d: inc.repairs never incremented", p)
				}
				if snap.Counters["inc.checked"] == 0 {
					t.Fatalf("p=%d: inc.checked never incremented", p)
				}
				var merged int
				for _, st := range instr.stats {
					merged += st.Merged
				}
				if got := snap.Counters["inc.merged"]; got != int64(merged) {
					t.Fatalf("p=%d: inc.merged = %d, want %d (sum of Stats.Merged)", p, got, merged)
				}
				if len(tr.Recent()) == 0 {
					t.Fatalf("p=%d: tracer recorded no phase spans", p)
				}
			}
		})
	}
}
