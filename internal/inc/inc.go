// Package inc maintains chase(G, Σ) incrementally under graph
// mutations: instead of re-running the chase fixpoint of §3.1 from
// scratch after every change, an Engine keeps the equivalence relation
// Eq, the chasing sequence that produced it, and the triple-level
// provenance of every chase step, and repairs the fixpoint from a
// Delta of added/removed triples and added entities.
//
// The two directions exploit two structural properties of keys:
//
//   - Monotonicity: key satisfaction has no negation, so adding
//     triples can only create identifications and removing triples can
//     only destroy them. Additions therefore only require re-chasing
//     candidate pairs whose d-neighborhood gained a triple; removals
//     only require re-certifying identifications whose proofs touch a
//     removed triple.
//
//   - Locality (§4.1): a witness for (e1, e2) lies within the
//     d-neighborhoods of e1 and e2, so the candidate pairs affected by
//     a change are found by a d-hop scan around the changed triples —
//     the same neighborhood machinery the engines use, reused here
//     with d the key set's maximum radius.
//
// Removal repair is provenance-driven in the sense of the proof graphs
// behind Theorem 2: every chase step records the graph triples its
// witness consumed (chase.Step.Uses); removing a triple directly
// invalidates exactly the steps using it, invalidation cascades along
// the Requires edges of the proof DAG by replaying the surviving
// steps, and the affected pairs are then re-certified against the
// mutated graph, where they may be re-derived through other witnesses.
// Recursive keys propagate repair beyond the changed region: whenever
// re-certification merges two Eq classes, the pairs that may newly
// fire are the same-type pairs within d hops of the merged classes
// (the dependency relation of §4.2), which the worklist expands to.
package inc

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"graphkeys/internal/chase"
	"graphkeys/internal/engine"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
	"graphkeys/internal/obs"
)

// Options configures an Engine.
type Options struct {
	// Match is passed through to the matching machinery (ValueEq,
	// workers for the initial full chase).
	Match match.Options
	// Parallelism is the worker count of the repair pass
	// (engine.Workers semantics: values below 1 default to GOMAXPROCS
	// capped at engine.DefaultWorkers). Repair output — pairs, step
	// log, stats — is byte-identical at every worker count; the
	// differential tests pin that, so parallelism is safe to leave on.
	Parallelism int
	// Obs, when non-nil, receives the repair pass's live counters and
	// worklist-depth histogram (see RegisterObs). Trace, when non-nil,
	// receives phase spans (invalidate, region, chase, per-component
	// drains). Both are pure observers: enabling them cannot change
	// what the engine computes — the differential tests pin output
	// byte-identical with them on and off.
	Obs   *Obs
	Trace *obs.Tracer
}

// Stats reports the work done by the most recent maintenance pass,
// for experiments and tests asserting that repair stays local. One
// pass covers everything an Apply or ApplyAll call merged: ApplyAll
// (and the Writer built on it) folds its whole batch of deltas into a
// single pass, so after a batched call the Stats describe the batch
// as a whole, not any single delta — Merged says how many deltas they
// cover. The struct resets at the start of every Apply/ApplyAll call
// (even one whose merged delta turns out empty and repairs nothing).
type Stats struct {
	// Merged is the number of deltas whose results merged into the
	// pass (1 for Apply; the batch size for ApplyAll, not counting nil
	// or failed deltas).
	Merged int
	// Suspects is the number of chase steps invalidated by removals
	// (directly or by cascade along Requires).
	Suspects int
	// Region is the number of entities in the affected region of the
	// delta's additions.
	Region int
	// Checked is the number of candidate-pair checks run.
	Checked int
	// Identified is the number of chase steps (re-)derived.
	Identified int
}

// Engine maintains chase(G, Σ) under mutations of G. It owns the
// graph's mutation lifecycle: after New, mutate the graph only through
// Apply/ApplyAll. An Engine is not safe for concurrent use (ApplyAll
// parallelizes the graph mutations and the repair pass internally, on
// Options.Parallelism workers; the accessors stay single-threaded).
type Engine struct {
	g    *graph.Graph
	set  *keys.Set
	opts Options
	log  graph.DeltaLog

	m     *match.Matcher // lazy matcher over the current graph
	eq    *eqrel.Eq
	steps []chase.Step
	pairs []eqrel.Pair

	maxRadius int
	recTypes  map[graph.TypeID]bool           // types with at least one recursive key
	depN      map[graph.NodeID]*graph.NodeSet // per-Apply memo of maxRadius-hop neighborhoods

	stats Stats

	// seq is the repair generation: 0 after New, incremented once per
	// maintenance pass. stepSeqs records, parallel to steps, the
	// generation each step was derived at (0 = the initial full
	// chase); it lives beside the step log rather than inside
	// chase.Step so the steps themselves stay comparable against a
	// from-scratch chase. Explain reports it as the provenance "when".
	seq      uint64
	stepSeqs []uint64
}

// New computes the initial fixpoint with the sequential chase and
// returns an engine maintaining it.
func New(g *graph.Graph, set *keys.Set, opts Options) (*Engine, error) {
	res, err := chase.Run(g, set, chase.Options{Match: opts.Match})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g:        g,
		set:      set,
		opts:     opts,
		eq:       res.Eq,
		steps:    res.Steps,
		pairs:    res.Pairs,
		stepSeqs: make([]uint64, len(res.Steps)),
	}
	if err := e.rebuildMatcher(); err != nil {
		return nil, err
	}
	return e, nil
}

// Graph returns the maintained graph. Mutate it only through Apply.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Eq returns the current fixpoint relation. It is owned by the engine.
func (e *Engine) Eq() *eqrel.Eq { return e.eq }

// Pairs returns the current chase(G, Σ), sorted. The slice is owned by
// the engine.
func (e *Engine) Pairs() []eqrel.Pair { return e.pairs }

// Steps returns the current valid chasing sequence, in dependency
// order. The slice is owned by the engine.
func (e *Engine) Steps() []chase.Step { return e.steps }

// LastStats reports the work done by the most recent maintenance pass
// (see Stats for the batch semantics and the reset point).
func (e *Engine) LastStats() Stats { return e.stats }

// Seq reports the current repair generation: 0 after New, incremented
// once per maintenance pass.
func (e *Engine) Seq() uint64 { return e.seq }

// StepSeqs returns, parallel to Steps, the repair generation each
// step was derived at (0 = the initial full chase). The slice is
// owned by the engine.
func (e *Engine) StepSeqs() []uint64 { return e.stepSeqs }

// Explain returns the indices (into Steps) of the chase steps forming
// a witness chain for a ~ b: a topologically ordered subset whose
// Requires pairs are connected by earlier listed steps, ending in a
// step path connecting a and b. It errors when the current fixpoint
// does not identify the pair. An identical pair explains as an empty
// chain.
func (e *Engine) Explain(a, b graph.NodeID) ([]int, error) {
	target := eqrel.MakePair(int32(a), int32(b))
	if target.A != target.B && !e.eq.Same(target.A, target.B) {
		return nil, fmt.Errorf("inc: (%d, %d) is not identified; no witness chain exists", a, b)
	}
	return chase.ProveIndices(e.steps, target)
}

// SetLog installs the write-ahead hook handed to the graph on every
// subsequent Apply: it receives each delta's normalized ops before any
// mutation (see graph.ApplyDeltaLogged). Pass nil to disable.
func (e *Engine) SetLog(fn graph.DeltaLog) { e.log = fn }

// rebuildMatcher compiles the key set against the current graph in
// lazy mode. It is cheap — O(‖Σ‖) — and runs once per Apply so that
// new predicates, types and constants resolve and no stale cached
// neighborhood survives a mutation.
func (e *Engine) rebuildMatcher() error {
	mopts := e.opts.Match
	mopts.Lazy = true
	mopts.Workers = 0
	m, err := match.New(e.g, e.set, mopts)
	if err != nil {
		return err
	}
	e.m = m
	e.maxRadius = e.set.MaxRadius()
	e.recTypes = make(map[graph.TypeID]bool)
	for _, typeName := range e.set.Types() {
		for _, k := range e.set.ForType(typeName) {
			if k.Recursive {
				if tid, ok := e.g.TypeByName(typeName); ok {
					e.recTypes[tid] = true
				}
				break
			}
		}
	}
	return nil
}

// Apply mutates the graph by the delta and repairs the fixpoint. It
// returns the identified pairs that appeared and disappeared,
// materialized over keyed entities and sorted. The delta is applied
// atomically: on error neither the graph nor the fixpoint changes.
func (e *Engine) Apply(d *graph.Delta) (added, removed []eqrel.Pair, err error) {
	return e.ApplyAll([]*graph.Delta{d}, 1)
}

// ApplyAll mutates the graph by every delta and repairs the fixpoint
// with ONE maintenance pass over the merged changes — the batched
// write path. The graph mutations fan out over the given number of
// workers (engine.Workers semantics), so deltas with disjoint shard
// footprints apply concurrently; overlapping deltas serialize inside
// the store in plan order, which is also WAL order.
//
// Each delta is individually atomic, but the batch is not: a delta
// that fails validation is skipped while the others apply, and the
// joined errors are returned alongside the repair result. Batches
// whose deltas must all apply or none should therefore be
// pre-validated or submitted one delta at a time. Deltas in one batch
// should be independent — when they conflict, their serialization
// order (and with it, which of two conflicting ops wins) is
// unspecified.
func (e *Engine) ApplyAll(ds []*graph.Delta, workers int) (added, removed []eqrel.Pair, err error) {
	results := make([]*graph.DeltaResult, len(ds))
	errs := make([]error, len(ds))
	apply := func(i int) {
		if ds[i] == nil {
			return
		}
		results[i], errs[i] = e.g.ApplyDeltaLogged(ds[i], e.log)
	}
	if len(ds) == 1 {
		apply(0)
	} else {
		engine.Parallel(e.opts.Match.Eng, engine.Workers(workers), len(ds), apply)
	}
	res := &graph.DeltaResult{}
	merged := 0
	for i, r := range results {
		if errs[i] != nil || r == nil {
			continue
		}
		merged++
		res.AddedEntities = append(res.AddedEntities, r.AddedEntities...)
		res.AddedTriples = append(res.AddedTriples, r.AddedTriples...)
		res.RemovedTriples = append(res.RemovedTriples, r.RemovedTriples...)
		res.RemovedEntities = append(res.RemovedEntities, r.RemovedEntities...)
	}
	err = errors.Join(errs...)
	e.stats = Stats{Merged: merged}
	e.opts.Obs.merged().Add(int64(merged))
	if res.Empty() {
		return nil, nil, err
	}
	added, removed, rerr := e.repair(res)
	if rerr != nil {
		return nil, nil, errors.Join(err, rerr)
	}
	return added, removed, err
}

// repair re-establishes chase(G, Σ) after the graph absorbed the
// merged delta result: provenance-driven invalidation for the
// removals, d-hop affected-region re-chase for the additions, and the
// dependency worklist for recursive cascades. The expensive phases —
// the step-log mark scan, the affected-region neighborhoods, the
// partner generation, and the candidate re-checks — fan out over
// Options.Parallelism workers; every phase merges deterministically,
// so the repaired pairs, step log and stats are byte-identical at any
// worker count.
func (e *Engine) repair(res *graph.DeltaResult) (added, removed []eqrel.Pair, err error) {
	if err := e.rebuildMatcher(); err != nil {
		return nil, nil, err
	}
	e.seq++
	e.opts.Obs.repairs().Inc()
	spRepair := e.opts.Trace.Begin("inc.repair")
	defer spRepair.End()
	e.depN = make(map[graph.NodeID]*graph.NodeSet)
	workers := engine.Workers(e.opts.Parallelism)

	// Removals: invalidate steps whose witness used a removed triple,
	// cascade along Requires by replaying the survivors, and collect
	// suspects for re-certification. A dropped step taints its whole
	// OLD equivalence class, not just its own pair: a pair inside a
	// splitting class may have been skipped as already-Same by the
	// original chase (so no step records its independent witness), and
	// only re-checking every pair of the affected class can recover it.
	var suspects []eqrel.Pair
	if len(res.RemovedTriples) > 0 {
		spInv := e.opts.Trace.Begin("inc.repair.invalidate")
		removedSet := make(map[graph.Triple]bool, len(res.RemovedTriples))
		for _, tr := range res.RemovedTriples {
			removedSet[tr] = true
		}
		// Mark phase, parallel: which steps' witnesses consumed a
		// removed triple. The scan touches every step's Uses list —
		// the part of invalidation that grows with the step log — and
		// each step marks independently.
		usesRemoved := make([]bool, len(e.steps))
		engine.Parallel(e.opts.Match.Eng, workers, len(e.steps), func(i int) {
			usesRemoved[i] = stepUsesAny(e.steps[i], removedSet)
		})
		// Replay phase, sequential: drop marked steps, cascade along
		// Requires, rebuild Eq from the survivors.
		oldEq := e.eq
		oldMembers := e.classMembers()
		taintedRoots := make(map[int32]bool)
		eq := eqrel.New(e.g.NumNodes())
		kept := make([]chase.Step, 0, len(e.steps))
		keptSeqs := make([]uint64, 0, len(e.steps))
		dropped := 0
		for i, st := range e.steps {
			if usesRemoved[i] || !requiresHold(eq, st.Requires) {
				taintedRoots[oldEq.Find(st.Pair.A)] = true
				dropped++
				continue
			}
			eq.Union(st.Pair.A, st.Pair.B)
			kept = append(kept, st)
			keptSeqs = append(keptSeqs, e.stepSeqs[i])
		}
		e.eq = eq
		e.steps = kept
		e.stepSeqs = keptSeqs
		// Suspect order must not depend on map iteration: the seeds
		// feed the re-chase whose step log the differential tests pin.
		roots := make([]int32, 0, len(taintedRoots))
		for r := range taintedRoots {
			roots = append(roots, r)
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
		for _, r := range roots {
			mem := oldMembers[r]
			for i := 0; i < len(mem); i++ {
				for j := i + 1; j < len(mem); j++ {
					suspects = append(suspects, eqrel.MakePair(mem[i], mem[j]))
				}
			}
		}
		e.stats.Suspects = dropped
		e.opts.Obs.suspects().Add(int64(dropped))
		spInv.EndLabel(strconv.Itoa(dropped) + " dropped")
	} else {
		e.eq.Grow(e.g.NumNodes())
	}

	// Additions: the affected region is every keyed entity within
	// maxRadius hops of a changed triple endpoint or new entity; any
	// newly identifiable pair has such an entity on at least one side,
	// so seeding (p, q) for affected p and every candidate partner q
	// (match.ValuePartners: inverted-value-index lookups on indexable
	// types, all same-type entities otherwise) is complete (up to the
	// worklist expansion in the chase phase).
	seeds := suspects
	if len(res.AddedTriples) > 0 || len(res.AddedEntities) > 0 {
		spRegion := e.opts.Trace.Begin("inc.repair.region")
		region := e.affectedEntities(res, workers)
		e.stats.Region = len(region)
		e.opts.Obs.region().Add(int64(len(region)))
		partners := make([][]graph.NodeID, len(region))
		engine.Parallel(e.opts.Match.Eng, workers, len(region), func(i int) {
			partners[i] = e.m.ValuePartners(region[i])
		})
		for i, p := range region {
			for _, q := range partners[i] {
				seeds = append(seeds, eqrel.MakePair(int32(p), int32(q)))
			}
		}
		spRegion.EndLabel(strconv.Itoa(len(region)) + " entities")
	}

	spChase := e.opts.Trace.Begin("inc.repair.chase")
	e.chaseSeeds(seeds, workers)
	spChase.EndLabel(strconv.Itoa(len(seeds)) + " seeds")

	newPairs := e.eq.Pairs(e.m.KeyedEntities())
	added, removed = diffPairs(e.pairs, newPairs)
	e.pairs = newPairs
	return added, removed, nil
}

func stepUsesAny(st chase.Step, removed map[graph.Triple]bool) bool {
	for _, tr := range st.Uses {
		if removed[tr] {
			return true
		}
	}
	return false
}

func requiresHold(eq *eqrel.Eq, reqs []eqrel.Pair) bool {
	for _, r := range reqs {
		if !eq.Same(r.A, r.B) {
			return false
		}
	}
	return true
}

// affectedEntities collects the keyed entities whose d-neighborhood
// gained a triple: those within maxRadius hops of any added-triple
// endpoint, plus added entities of keyed types. The per-endpoint
// neighborhood BFS — the expensive part — fans out over the workers
// and seeds the per-Apply memo; the collection itself is sequential in
// endpoint order, so the region list is deterministic.
func (e *Engine) affectedEntities(res *graph.DeltaResult, workers int) []graph.NodeID {
	var endpoints []graph.NodeID
	seenEp := make(map[graph.NodeID]bool)
	addEp := func(n graph.NodeID) {
		if !seenEp[n] {
			seenEp[n] = true
			endpoints = append(endpoints, n)
		}
	}
	for _, tr := range res.AddedTriples {
		addEp(tr.S)
		addEp(tr.O)
	}
	for _, n := range res.AddedEntities {
		addEp(n)
	}
	sets := make([]*graph.NodeSet, len(endpoints))
	engine.Parallel(e.opts.Match.Eng, workers, len(endpoints), func(i int) {
		sets[i] = e.g.Neighborhood(endpoints[i], e.maxRadius)
	})
	for i, x := range endpoints {
		e.depN[x] = sets[i]
	}
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	collect := func(n graph.NodeID) {
		if seen[n] || !e.keyed(n) {
			return
		}
		seen[n] = true
		out = append(out, n)
	}
	for _, x := range endpoints {
		e.depNeighborhood(x).Each(collect)
	}
	return out
}

// keyed reports whether n is an entity whose type has keys.
func (e *Engine) keyed(n graph.NodeID) bool {
	return e.g.IsEntity(n) && len(e.m.KeysFor(e.g.TypeOf(n))) > 0
}

// depNeighborhood memoizes maxRadius-hop neighborhoods for the current
// Apply (the graph does not change during repair).
func (e *Engine) depNeighborhood(n graph.NodeID) *graph.NodeSet {
	if ns, ok := e.depN[n]; ok {
		return ns
	}
	ns := e.g.Neighborhood(n, e.maxRadius)
	e.depN[n] = ns
	return ns
}

// chaseSeeds re-runs chase steps from the seed pairs until the
// fixpoint. Two strategies, picked by the shape of the key set:
//
//   - No recursive keys: a check never consults Eq (no entity-variable
//     bindings) and no merge can enable another check, so the seeds
//     partition into connected components over their Eq classes and
//     the components repair fully independently — one goroutine each,
//     results merged in component order (chaseComponents).
//
//   - Recursive keys: checks read Eq and merges enable dependents, so
//     repair runs in BSP rounds — every check of a round sees the Eq
//     snapshot of the previous round, merges commit sequentially in
//     worklist order, dependents queue for the next round
//     (chaseRounds; the same shape as the parallel chase of §4.2).
//
// Both strategies are deterministic for every worker count; p = 1 IS
// the sequential repair the differential tests compare against.
func (e *Engine) chaseSeeds(seeds []eqrel.Pair, workers int) {
	if len(seeds) == 0 {
		return
	}
	if len(e.recTypes) == 0 {
		e.chaseComponents(seeds, workers)
		return
	}
	e.chaseRounds(seeds, workers)
}

// chaseComponents drains seed components concurrently. Correctness of
// the shared-Eq unions rests on class disjointness: a component owns
// the Eq classes of its seeds' endpoints by construction (components
// are the connected closure of seeds over classes), every union merges
// two owned classes, and union-find operations never touch entries
// outside the classes involved — so concurrent drains are race-free
// without a lock, and since no check consults Eq (no recursive keys),
// no drain can observe another's merges.
func (e *Engine) chaseComponents(seeds []eqrel.Pair, workers int) {
	// Union-find over class representatives connects seeds that share
	// (transitively) an Eq class.
	parent := make(map[int32]int32)
	var find func(x int32) int32
	find = func(x int32) int32 {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	for _, s := range seeds {
		ra, rb := find(e.eq.Find(s.A)), find(e.eq.Find(s.B))
		if ra != rb {
			parent[rb] = ra
		}
	}
	// Group seeds per component in seed order; component order is
	// first-appearance order, so the merged step log is deterministic.
	compOf := make(map[int32]int)
	var comps [][]eqrel.Pair
	for _, s := range seeds {
		r := find(e.eq.Find(s.A))
		ci, ok := compOf[r]
		if !ok {
			ci = len(comps)
			compOf[r] = ci
			comps = append(comps, nil)
		}
		comps[ci] = append(comps[ci], s)
	}
	type compResult struct {
		steps               []chase.Step
		checked, identified int
	}
	results := make([]compResult, len(comps))
	ob, tr := e.opts.Obs, e.opts.Trace
	ob.components().Add(int64(len(comps)))
	ob.worklistDepth().Observe(int64(len(seeds)))
	engine.Parallel(e.opts.Match.Eng, workers, len(comps), func(ci int) {
		sp := tr.Begin("inc.chase.component")
		wl := engine.NewWorklist[eqrel.Pair]()
		for _, s := range comps[ci] {
			wl.Push(s)
		}
		res := &results[ci]
		for {
			pr, ok := wl.Pop()
			if !ok {
				break
			}
			if e.eq.Same(pr.A, pr.B) {
				continue
			}
			got, key, reqs, uses := e.identify(graph.NodeID(pr.A), graph.NodeID(pr.B), e.eq)
			res.checked++
			ob.checked().Inc()
			if !got {
				continue
			}
			e.eq.Union(pr.A, pr.B)
			res.steps = append(res.steps, chase.Step{Pair: pr, Key: key, Requires: reqs, Uses: uses})
			res.identified++
			ob.identified().Inc()
		}
		sp.EndLabel("c" + strconv.Itoa(ci))
	})
	for i := range results {
		e.steps = append(e.steps, results[i].steps...)
		for range results[i].steps {
			e.stepSeqs = append(e.stepSeqs, e.seq)
		}
		e.stats.Checked += results[i].checked
		e.stats.Identified += results[i].identified
	}
}

// roundsSequentialCutoff is the floor of the worklist size below
// which chaseRounds abandons BSP rounds for a plain sequential drain:
// snapshotting Eq and fanning a handful of checks out costs more than
// checking them inline, and cascades typically trickle — a long tail
// of tiny rounds. snapshotAmortize raises the cutoff with the
// relation size: every round clones the whole Eq (O(n)), so a round
// must carry at least n/snapshotAmortize checks for the snapshot to
// amortize — without this, a million-node graph would pay a
// multi-megabyte copy per 32-pair round. Both terms depend only on
// workload shape, never on the worker count, so the execution path —
// and with it the byte-exact output — is the same at every
// parallelism.
const (
	roundsSequentialCutoff = 32
	snapshotAmortize       = 4096
)

// chaseRounds repairs under recursive keys in BSP rounds with
// per-round Eq snapshots: checks of one round run concurrently against
// the previous round's relation, identifications commit sequentially
// in worklist order, and each commit enqueues the pairs that depend on
// the merged classes (the §4.2 dependency relation) for the next
// round. Dependency completeness carries over from the sequential
// argument: a check that failed against a round's snapshot can newly
// succeed only after classes providing its entity-variable bindings
// merge, and every such pair is a dependent of the merged classes'
// members. Once the worklist trickles below the cutoff, the remainder
// drains sequentially against the live relation.
func (e *Engine) chaseRounds(seeds []eqrel.Pair, workers int) {
	members := e.classMembers()
	wl := engine.NewWorklist[eqrel.Pair]()
	for _, s := range seeds {
		wl.Push(s)
	}
	type verdict struct {
		checked bool
		ok      bool
		key     string
		reqs    []eqrel.Pair
		uses    []graph.Triple
	}
	cutoff := roundsSequentialCutoff
	if n := e.eq.Len() / snapshotAmortize; n > cutoff {
		cutoff = n
	}
	ob := e.opts.Obs
	for wl.Len() > 0 {
		if wl.Len() < cutoff {
			e.drainSequential(wl, members)
			return
		}
		ob.rounds().Inc()
		ob.worklistDepth().Observe(int64(wl.Len()))
		active := wl.Drain()
		snap := e.eq.Clone().Reader()
		verdicts := make([]verdict, len(active))
		engine.Parallel(e.opts.Match.Eng, workers, len(active), func(i int) {
			pr := active[i]
			if snap.Same(pr.A, pr.B) {
				return
			}
			ok, key, reqs, uses := e.identify(graph.NodeID(pr.A), graph.NodeID(pr.B), snap)
			verdicts[i] = verdict{checked: true, ok: ok, key: key, reqs: reqs, uses: uses}
		})
		for i, v := range verdicts {
			if v.checked {
				e.stats.Checked++
				ob.checked().Inc()
			}
			if !v.ok {
				continue
			}
			pr := active[i]
			if e.eq.Same(pr.A, pr.B) {
				continue // merged transitively earlier in this round
			}
			// Dependent pairs are computed from the classes as they
			// are about to merge: any pair that may newly fire needs
			// an entity-variable binding (u', v') with u' and v' in
			// the two classes, hence lies within maxRadius of their
			// members.
			ra, rb := e.eq.Find(pr.A), e.eq.Find(pr.B)
			mem1 := withSelf(members[ra], pr.A)
			mem2 := withSelf(members[rb], pr.B)
			dep := e.dependentPairs(mem1, mem2)

			e.eq.Union(pr.A, pr.B)
			e.steps = append(e.steps, chase.Step{Pair: pr, Key: v.key, Requires: v.reqs, Uses: v.uses})
			e.stepSeqs = append(e.stepSeqs, e.seq)
			e.stats.Identified++
			ob.identified().Inc()
			nr := e.eq.Find(pr.A)
			members[nr] = append(mem1, mem2...)
			if ra != nr {
				delete(members, ra)
			}
			if rb != nr {
				delete(members, rb)
			}
			for _, dp := range dep {
				if !e.eq.Same(dp.A, dp.B) {
					wl.Push(dp)
				}
			}
		}
	}
}

// drainSequential is the classic FIFO worklist drain: pop, check
// against the live relation, merge, push dependents, repeat until
// empty. chaseRounds hands the trickling tail of a repair to it.
func (e *Engine) drainSequential(wl *engine.Worklist[eqrel.Pair], members map[int32][]int32) {
	ob := e.opts.Obs
	ob.worklistDepth().Observe(int64(wl.Len()))
	for {
		pr, ok := wl.Pop()
		if !ok {
			return
		}
		if e.eq.Same(pr.A, pr.B) {
			continue
		}
		got, key, reqs, uses := e.identify(graph.NodeID(pr.A), graph.NodeID(pr.B), e.eq)
		e.stats.Checked++
		ob.checked().Inc()
		if !got {
			continue
		}
		ra, rb := e.eq.Find(pr.A), e.eq.Find(pr.B)
		mem1 := withSelf(members[ra], pr.A)
		mem2 := withSelf(members[rb], pr.B)
		dep := e.dependentPairs(mem1, mem2)

		e.eq.Union(pr.A, pr.B)
		e.steps = append(e.steps, chase.Step{Pair: pr, Key: key, Requires: reqs, Uses: uses})
		e.stepSeqs = append(e.stepSeqs, e.seq)
		e.stats.Identified++
		ob.identified().Inc()
		nr := e.eq.Find(pr.A)
		members[nr] = append(mem1, mem2...)
		if ra != nr {
			delete(members, ra)
		}
		if rb != nr {
			delete(members, rb)
		}
		for _, dp := range dep {
			if !e.eq.Same(dp.A, dp.B) {
				wl.Push(dp)
			}
		}
	}
}

// identify mirrors the sequential chase's per-pair check using the
// lazy matcher: first identifying key wins. The Eq-independent quick
// pairing filter (§4.2) runs first so that the d-neighborhoods — the
// expensive part on the incremental path — are only computed for pairs
// that pass the x-local necessary condition. Suspect pairs may involve
// entities tombstoned by the delta (their class is tainted by the
// removal of their incident triples); those can never re-derive.
//
// eq is the relation the witness search binds entity variables
// against: the live relation on the sequential/component paths, a
// per-round snapshot reader under BSP rounds. identify itself is safe
// for concurrent use (the lazy matcher's memos are mutex-guarded, the
// graph is quiescent during repair).
func (e *Engine) identify(e1, e2 graph.NodeID, eq match.EqView) (ok bool, key string, reqs []eqrel.Pair, uses []graph.Triple) {
	if !e.g.IsEntity(e1) || !e.g.IsEntity(e2) {
		return false, "", nil, nil
	}
	t := e.g.TypeOf(e1)
	if e.g.TypeOf(e2) != t {
		return false, "", nil, nil
	}
	var g1d, g2d *graph.NodeSet
	for _, ck := range e.m.KeysFor(t) {
		if !e.m.QuickPaired(ck, e1, e2) {
			continue
		}
		if g1d == nil {
			g1d, g2d = e.m.Neighborhood(e1), e.m.Neighborhood(e2)
		}
		got, raw, used, _ := e.m.IdentifiedByKeyProvenance(ck, e1, e2, g1d, g2d, eq)
		if got {
			reqs = make([]eqrel.Pair, 0, len(raw))
			for _, r := range raw {
				reqs = append(reqs, eqrel.MakePair(int32(r[0]), int32(r[1])))
			}
			return true, ck.Key.Name, reqs, used
		}
	}
	return false, "", nil, nil
}

// classMembers builds root -> keyed-member lists from the current
// steps. Every member of a non-trivial class appears in some step's
// pair, so the step log is a complete member index.
func (e *Engine) classMembers() map[int32][]int32 {
	members := make(map[int32][]int32)
	seen := make(map[int32]bool)
	add := func(n int32) {
		if seen[n] {
			return
		}
		seen[n] = true
		r := e.eq.Find(n)
		members[r] = append(members[r], n)
	}
	for _, st := range e.steps {
		add(st.Pair.A)
		add(st.Pair.B)
	}
	return members
}

func withSelf(members []int32, self int32) []int32 {
	for _, m := range members {
		if m == self {
			return members
		}
	}
	return append(members, self)
}

// dependentPairs returns the candidate pairs that may newly fire when
// the classes with the given members merge: same-type pairs of
// entities with a recursive key within maxRadius hops of the members.
func (e *Engine) dependentPairs(mem1, mem2 []int32) []eqrel.Pair {
	collectNear := func(members []int32) map[graph.TypeID][]graph.NodeID {
		byType := make(map[graph.TypeID][]graph.NodeID)
		seen := make(map[graph.NodeID]bool)
		for _, x := range members {
			e.depNeighborhood(graph.NodeID(x)).Each(func(n graph.NodeID) {
				if seen[n] || !e.g.IsEntity(n) {
					return
				}
				seen[n] = true
				t := e.g.TypeOf(n)
				if e.recTypes[t] {
					byType[t] = append(byType[t], n)
				}
			})
		}
		return byType
	}
	near1 := collectNear(mem1)
	near2 := collectNear(mem2)
	// Iterate types in sorted order: the dependent-pair push order
	// feeds the worklist, whose order the deterministic step log the
	// differential tests pin depends on — map iteration would vary it
	// run to run.
	types := make([]graph.TypeID, 0, len(near1))
	for t := range near1 {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	dedup := make(map[eqrel.Pair]bool)
	var out []eqrel.Pair
	for _, t := range types {
		ps := near1[t]
		qs, ok := near2[t]
		if !ok {
			continue
		}
		for _, p := range ps {
			for _, q := range qs {
				if p == q {
					continue
				}
				pr := eqrel.MakePair(int32(p), int32(q))
				if !dedup[pr] {
					dedup[pr] = true
					out = append(out, pr)
				}
			}
		}
	}
	return out
}

// diffPairs diffs two sorted pair lists.
func diffPairs(old, cur []eqrel.Pair) (added, removed []eqrel.Pair) {
	less := func(a, b eqrel.Pair) bool {
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	}
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		switch {
		case old[i] == cur[j]:
			i++
			j++
		case less(old[i], cur[j]):
			removed = append(removed, old[i])
			i++
		default:
			added = append(added, cur[j])
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, cur[j:]...)
	return added, removed
}
