// Package inc maintains chase(G, Σ) incrementally under graph
// mutations: instead of re-running the chase fixpoint of §3.1 from
// scratch after every change, an Engine keeps the equivalence relation
// Eq, the chasing sequence that produced it, and the triple-level
// provenance of every chase step, and repairs the fixpoint from a
// Delta of added/removed triples and added entities.
//
// The two directions exploit two structural properties of keys:
//
//   - Monotonicity: key satisfaction has no negation, so adding
//     triples can only create identifications and removing triples can
//     only destroy them. Additions therefore only require re-chasing
//     candidate pairs whose d-neighborhood gained a triple; removals
//     only require re-certifying identifications whose proofs touch a
//     removed triple.
//
//   - Locality (§4.1): a witness for (e1, e2) lies within the
//     d-neighborhoods of e1 and e2, so the candidate pairs affected by
//     a change are found by a d-hop scan around the changed triples —
//     the same neighborhood machinery the engines use, reused here
//     with d the key set's maximum radius.
//
// Removal repair is provenance-driven in the sense of the proof graphs
// behind Theorem 2: every chase step records the graph triples its
// witness consumed (chase.Step.Uses); removing a triple directly
// invalidates exactly the steps using it, invalidation cascades along
// the Requires edges of the proof DAG by replaying the surviving
// steps, and the affected pairs are then re-certified against the
// mutated graph, where they may be re-derived through other witnesses.
// Recursive keys propagate repair beyond the changed region: whenever
// re-certification merges two Eq classes, the pairs that may newly
// fire are the same-type pairs within d hops of the merged classes
// (the dependency relation of §4.2), which the worklist expands to.
package inc

import (
	"errors"

	"graphkeys/internal/chase"
	"graphkeys/internal/engine"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
)

// Options configures an Engine.
type Options struct {
	// Match is passed through to the matching machinery (ValueEq,
	// workers for the initial full chase).
	Match match.Options
}

// Stats reports the work done by the most recent Apply, for
// experiments and tests asserting that repair stays local.
type Stats struct {
	// Suspects is the number of chase steps invalidated by removals
	// (directly or by cascade along Requires).
	Suspects int
	// Region is the number of entities in the affected region of the
	// delta's additions.
	Region int
	// Checked is the number of candidate-pair checks run.
	Checked int
	// Identified is the number of chase steps (re-)derived.
	Identified int
}

// Engine maintains chase(G, Σ) under mutations of G. It owns the
// graph's mutation lifecycle: after New, mutate the graph only through
// Apply/ApplyAll. An Engine is not safe for concurrent use (ApplyAll
// parallelizes the graph mutations internally; the repair pass and the
// accessors stay single-threaded).
type Engine struct {
	g    *graph.Graph
	set  *keys.Set
	opts Options
	log  graph.DeltaLog

	m     *match.Matcher // lazy matcher over the current graph
	eq    *eqrel.Eq
	steps []chase.Step
	pairs []eqrel.Pair

	maxRadius int
	recTypes  map[graph.TypeID]bool           // types with at least one recursive key
	depN      map[graph.NodeID]*graph.NodeSet // per-Apply memo of maxRadius-hop neighborhoods

	stats Stats
}

// New computes the initial fixpoint with the sequential chase and
// returns an engine maintaining it.
func New(g *graph.Graph, set *keys.Set, opts Options) (*Engine, error) {
	res, err := chase.Run(g, set, chase.Options{Match: opts.Match})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		g:     g,
		set:   set,
		opts:  opts,
		eq:    res.Eq,
		steps: res.Steps,
		pairs: res.Pairs,
	}
	if err := e.rebuildMatcher(); err != nil {
		return nil, err
	}
	return e, nil
}

// Graph returns the maintained graph. Mutate it only through Apply.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Eq returns the current fixpoint relation. It is owned by the engine.
func (e *Engine) Eq() *eqrel.Eq { return e.eq }

// Pairs returns the current chase(G, Σ), sorted. The slice is owned by
// the engine.
func (e *Engine) Pairs() []eqrel.Pair { return e.pairs }

// Steps returns the current valid chasing sequence, in dependency
// order. The slice is owned by the engine.
func (e *Engine) Steps() []chase.Step { return e.steps }

// LastStats reports the work done by the most recent Apply.
func (e *Engine) LastStats() Stats { return e.stats }

// SetLog installs the write-ahead hook handed to the graph on every
// subsequent Apply: it receives each delta's normalized ops before any
// mutation (see graph.ApplyDeltaLogged). Pass nil to disable.
func (e *Engine) SetLog(fn graph.DeltaLog) { e.log = fn }

// rebuildMatcher compiles the key set against the current graph in
// lazy mode. It is cheap — O(‖Σ‖) — and runs once per Apply so that
// new predicates, types and constants resolve and no stale cached
// neighborhood survives a mutation.
func (e *Engine) rebuildMatcher() error {
	mopts := e.opts.Match
	mopts.Lazy = true
	mopts.Workers = 0
	m, err := match.New(e.g, e.set, mopts)
	if err != nil {
		return err
	}
	e.m = m
	e.maxRadius = e.set.MaxRadius()
	e.recTypes = make(map[graph.TypeID]bool)
	for _, typeName := range e.set.Types() {
		for _, k := range e.set.ForType(typeName) {
			if k.Recursive {
				if tid, ok := e.g.TypeByName(typeName); ok {
					e.recTypes[tid] = true
				}
				break
			}
		}
	}
	return nil
}

// Apply mutates the graph by the delta and repairs the fixpoint. It
// returns the identified pairs that appeared and disappeared,
// materialized over keyed entities and sorted. The delta is applied
// atomically: on error neither the graph nor the fixpoint changes.
func (e *Engine) Apply(d *graph.Delta) (added, removed []eqrel.Pair, err error) {
	return e.ApplyAll([]*graph.Delta{d}, 1)
}

// ApplyAll mutates the graph by every delta and repairs the fixpoint
// with ONE maintenance pass over the merged changes — the batched
// write path. The graph mutations fan out over the given number of
// workers (engine.Workers semantics), so deltas with disjoint shard
// footprints apply concurrently; overlapping deltas serialize inside
// the store in plan order, which is also WAL order.
//
// Each delta is individually atomic, but the batch is not: a delta
// that fails validation is skipped while the others apply, and the
// joined errors are returned alongside the repair result. Batches
// whose deltas must all apply or none should therefore be
// pre-validated or submitted one delta at a time. Deltas in one batch
// should be independent — when they conflict, their serialization
// order (and with it, which of two conflicting ops wins) is
// unspecified.
func (e *Engine) ApplyAll(ds []*graph.Delta, workers int) (added, removed []eqrel.Pair, err error) {
	results := make([]*graph.DeltaResult, len(ds))
	errs := make([]error, len(ds))
	apply := func(i int) {
		if ds[i] == nil {
			return
		}
		results[i], errs[i] = e.g.ApplyDeltaLogged(ds[i], e.log)
	}
	if len(ds) == 1 {
		apply(0)
	} else {
		engine.Parallel(engine.Workers(workers), len(ds), apply)
	}
	res := &graph.DeltaResult{}
	for i, r := range results {
		if errs[i] != nil || r == nil {
			continue
		}
		res.AddedEntities = append(res.AddedEntities, r.AddedEntities...)
		res.AddedTriples = append(res.AddedTriples, r.AddedTriples...)
		res.RemovedTriples = append(res.RemovedTriples, r.RemovedTriples...)
		res.RemovedEntities = append(res.RemovedEntities, r.RemovedEntities...)
	}
	err = errors.Join(errs...)
	e.stats = Stats{}
	if res.Empty() {
		return nil, nil, err
	}
	added, removed, rerr := e.repair(res)
	if rerr != nil {
		return nil, nil, errors.Join(err, rerr)
	}
	return added, removed, err
}

// repair re-establishes chase(G, Σ) after the graph absorbed the
// merged delta result: provenance-driven invalidation for the
// removals, d-hop affected-region re-chase for the additions, and the
// dependency worklist for recursive cascades.
func (e *Engine) repair(res *graph.DeltaResult) (added, removed []eqrel.Pair, err error) {
	if err := e.rebuildMatcher(); err != nil {
		return nil, nil, err
	}
	e.depN = make(map[graph.NodeID]*graph.NodeSet)

	// Removals: invalidate steps whose witness used a removed triple,
	// cascade along Requires by replaying the survivors, and collect
	// suspects for re-certification. A dropped step taints its whole
	// OLD equivalence class, not just its own pair: a pair inside a
	// splitting class may have been skipped as already-Same by the
	// original chase (so no step records its independent witness), and
	// only re-checking every pair of the affected class can recover it.
	var suspects []eqrel.Pair
	if len(res.RemovedTriples) > 0 {
		removedSet := make(map[graph.Triple]bool, len(res.RemovedTriples))
		for _, tr := range res.RemovedTriples {
			removedSet[tr] = true
		}
		oldEq := e.eq
		oldMembers := e.classMembers()
		taintedRoots := make(map[int32]bool)
		eq := eqrel.New(e.g.NumNodes())
		kept := make([]chase.Step, 0, len(e.steps))
		dropped := 0
		for _, st := range e.steps {
			if stepUsesAny(st, removedSet) || !requiresHold(eq, st.Requires) {
				taintedRoots[oldEq.Find(st.Pair.A)] = true
				dropped++
				continue
			}
			eq.Union(st.Pair.A, st.Pair.B)
			kept = append(kept, st)
		}
		e.eq = eq
		e.steps = kept
		for r := range taintedRoots {
			mem := oldMembers[r]
			for i := 0; i < len(mem); i++ {
				for j := i + 1; j < len(mem); j++ {
					suspects = append(suspects, eqrel.MakePair(mem[i], mem[j]))
				}
			}
		}
		e.stats.Suspects = dropped
	} else {
		e.eq.Grow(e.g.NumNodes())
	}

	// Additions: the affected region is every keyed entity within
	// maxRadius hops of a changed triple endpoint or new entity; any
	// newly identifiable pair has such an entity on at least one side,
	// so seeding (p, q) for affected p and every candidate partner q
	// (match.ValuePartners: inverted-value-index lookups on indexable
	// types, all same-type entities otherwise) is complete (up to the
	// worklist expansion below).
	work := engine.NewWorklist[eqrel.Pair]()
	for _, pr := range suspects {
		work.Push(pr)
	}
	if len(res.AddedTriples) > 0 || len(res.AddedEntities) > 0 {
		region := e.affectedEntities(res)
		e.stats.Region = len(region)
		for _, p := range region {
			for _, q := range e.m.ValuePartners(p) {
				work.Push(eqrel.MakePair(int32(p), int32(q)))
			}
		}
	}

	e.chaseWorklist(work)

	newPairs := e.eq.Pairs(e.m.KeyedEntities())
	added, removed = diffPairs(e.pairs, newPairs)
	e.pairs = newPairs
	return added, removed, nil
}

func stepUsesAny(st chase.Step, removed map[graph.Triple]bool) bool {
	for _, tr := range st.Uses {
		if removed[tr] {
			return true
		}
	}
	return false
}

func requiresHold(eq *eqrel.Eq, reqs []eqrel.Pair) bool {
	for _, r := range reqs {
		if !eq.Same(r.A, r.B) {
			return false
		}
	}
	return true
}

// affectedEntities collects the keyed entities whose d-neighborhood
// gained a triple: those within maxRadius hops of any added-triple
// endpoint, plus added entities of keyed types.
func (e *Engine) affectedEntities(res *graph.DeltaResult) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	collect := func(n graph.NodeID) {
		if seen[n] || !e.keyed(n) {
			return
		}
		seen[n] = true
		out = append(out, n)
	}
	var endpoints []graph.NodeID
	for _, tr := range res.AddedTriples {
		endpoints = append(endpoints, tr.S, tr.O)
	}
	endpoints = append(endpoints, res.AddedEntities...)
	for _, x := range endpoints {
		e.depNeighborhood(x).Each(collect)
	}
	return out
}

// keyed reports whether n is an entity whose type has keys.
func (e *Engine) keyed(n graph.NodeID) bool {
	return e.g.IsEntity(n) && len(e.m.KeysFor(e.g.TypeOf(n))) > 0
}

// depNeighborhood memoizes maxRadius-hop neighborhoods for the current
// Apply (the graph does not change during repair).
func (e *Engine) depNeighborhood(n graph.NodeID) *graph.NodeSet {
	if ns, ok := e.depN[n]; ok {
		return ns
	}
	ns := e.g.Neighborhood(n, e.maxRadius)
	e.depN[n] = ns
	return ns
}

// chaseWorklist re-runs chase steps over the worklist until the
// fixpoint: each identification expands the worklist with the pairs
// that depend on the merged classes through recursive keys, so repair
// follows dependency chains arbitrarily far from the mutation without
// ever sweeping the full candidate set.
func (e *Engine) chaseWorklist(w *engine.Worklist[eqrel.Pair]) {
	members := e.classMembers()
	for {
		pr, ok := w.Pop()
		if !ok {
			break
		}
		if e.eq.Same(pr.A, pr.B) {
			continue
		}
		got, key, reqs, uses := e.identify(graph.NodeID(pr.A), graph.NodeID(pr.B))
		e.stats.Checked++
		if !got {
			continue
		}
		// Dependent pairs are computed from the classes as they are
		// about to merge: any pair that may newly fire needs an entity
		// variable binding (u', v') with u' and v' in the two classes,
		// hence lies within maxRadius of their members.
		ra, rb := e.eq.Find(pr.A), e.eq.Find(pr.B)
		mem1 := withSelf(members[ra], pr.A)
		mem2 := withSelf(members[rb], pr.B)
		dep := e.dependentPairs(mem1, mem2)

		e.eq.Union(pr.A, pr.B)
		e.steps = append(e.steps, chase.Step{Pair: pr, Key: key, Requires: reqs, Uses: uses})
		e.stats.Identified++
		nr := e.eq.Find(pr.A)
		members[nr] = append(mem1, mem2...)
		if ra != nr {
			delete(members, ra)
		}
		if rb != nr {
			delete(members, rb)
		}
		for _, dp := range dep {
			if !e.eq.Same(dp.A, dp.B) {
				w.Push(dp)
			}
		}
	}
}

// identify mirrors the sequential chase's per-pair check using the
// lazy matcher: first identifying key wins. The Eq-independent quick
// pairing filter (§4.2) runs first so that the d-neighborhoods — the
// expensive part on the incremental path — are only computed for pairs
// that pass the x-local necessary condition. Suspect pairs may involve
// entities tombstoned by the delta (their class is tainted by the
// removal of their incident triples); those can never re-derive.
func (e *Engine) identify(e1, e2 graph.NodeID) (ok bool, key string, reqs []eqrel.Pair, uses []graph.Triple) {
	if !e.g.IsEntity(e1) || !e.g.IsEntity(e2) {
		return false, "", nil, nil
	}
	t := e.g.TypeOf(e1)
	if e.g.TypeOf(e2) != t {
		return false, "", nil, nil
	}
	var g1d, g2d *graph.NodeSet
	for _, ck := range e.m.KeysFor(t) {
		if !e.m.QuickPaired(ck, e1, e2) {
			continue
		}
		if g1d == nil {
			g1d, g2d = e.m.Neighborhood(e1), e.m.Neighborhood(e2)
		}
		got, raw, used, _ := e.m.IdentifiedByKeyProvenance(ck, e1, e2, g1d, g2d, e.eq)
		if got {
			reqs = make([]eqrel.Pair, 0, len(raw))
			for _, r := range raw {
				reqs = append(reqs, eqrel.MakePair(int32(r[0]), int32(r[1])))
			}
			return true, ck.Key.Name, reqs, used
		}
	}
	return false, "", nil, nil
}

// classMembers builds root -> keyed-member lists from the current
// steps. Every member of a non-trivial class appears in some step's
// pair, so the step log is a complete member index.
func (e *Engine) classMembers() map[int32][]int32 {
	members := make(map[int32][]int32)
	seen := make(map[int32]bool)
	add := func(n int32) {
		if seen[n] {
			return
		}
		seen[n] = true
		r := e.eq.Find(n)
		members[r] = append(members[r], n)
	}
	for _, st := range e.steps {
		add(st.Pair.A)
		add(st.Pair.B)
	}
	return members
}

func withSelf(members []int32, self int32) []int32 {
	for _, m := range members {
		if m == self {
			return members
		}
	}
	return append(members, self)
}

// dependentPairs returns the candidate pairs that may newly fire when
// the classes with the given members merge: same-type pairs of
// entities with a recursive key within maxRadius hops of the members.
func (e *Engine) dependentPairs(mem1, mem2 []int32) []eqrel.Pair {
	collectNear := func(members []int32) map[graph.TypeID][]graph.NodeID {
		byType := make(map[graph.TypeID][]graph.NodeID)
		seen := make(map[graph.NodeID]bool)
		for _, x := range members {
			e.depNeighborhood(graph.NodeID(x)).Each(func(n graph.NodeID) {
				if seen[n] || !e.g.IsEntity(n) {
					return
				}
				seen[n] = true
				t := e.g.TypeOf(n)
				if e.recTypes[t] {
					byType[t] = append(byType[t], n)
				}
			})
		}
		return byType
	}
	near1 := collectNear(mem1)
	near2 := collectNear(mem2)
	dedup := make(map[eqrel.Pair]bool)
	var out []eqrel.Pair
	for t, ps := range near1 {
		qs, ok := near2[t]
		if !ok {
			continue
		}
		for _, p := range ps {
			for _, q := range qs {
				if p == q {
					continue
				}
				pr := eqrel.MakePair(int32(p), int32(q))
				if !dedup[pr] {
					dedup[pr] = true
					out = append(out, pr)
				}
			}
		}
	}
	return out
}

// diffPairs diffs two sorted pair lists.
func diffPairs(old, cur []eqrel.Pair) (added, removed []eqrel.Pair) {
	less := func(a, b eqrel.Pair) bool {
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	}
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		switch {
		case old[i] == cur[j]:
			i++
			j++
		case less(old[i], cur[j]):
			removed = append(removed, old[i])
			i++
		default:
			added = append(added, cur[j])
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, cur[j:]...)
	return added, removed
}
