package inc

import (
	"math/rand"
	"testing"

	"graphkeys/internal/chase"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/fixtures"
	"graphkeys/internal/gen"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

func fullPairs(t *testing.T, g *graph.Graph, set *keys.Set) []eqrel.Pair {
	t.Helper()
	res, err := chase.Run(g, set, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Pairs
}

func pairsEqual(a, b []eqrel.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func mustPair(t *testing.T, g *graph.Graph, a, b string) eqrel.Pair {
	t.Helper()
	na, ok := g.Entity(a)
	if !ok {
		t.Fatalf("no entity %q", a)
	}
	nb, ok := g.Entity(b)
	if !ok {
		t.Fatalf("no entity %q", b)
	}
	return eqrel.MakePair(int32(na), int32(nb))
}

// TestRemovalCascade exercises the provenance-driven invalidation on
// the paper's music graph: dropping alb2's release year destroys
// (alb1, alb2) under Q2, which cascades to (art1, art2) because Q3's
// proof requires the album pair; re-adding the triple restores both.
func TestRemovalCascade(t *testing.T) {
	g := fixtures.MusicGraph()
	set := fixtures.MusicKeys()
	e, err := New(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	albums := mustPair(t, g, "alb1", "alb2")
	artists := mustPair(t, g, "art1", "art2")
	if !pairsEqual(e.Pairs(), []eqrel.Pair{albums, artists}) {
		t.Fatalf("initial pairs = %v, want album and artist pairs", e.Pairs())
	}

	d := &graph.Delta{}
	d.RemoveValueTriple("alb2", "release_year", "1996")
	added, removed, err := e.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 0 {
		t.Fatalf("removal added pairs: %v", added)
	}
	if !pairsEqual(removed, []eqrel.Pair{albums, artists}) {
		t.Fatalf("removed = %v, want both pairs (cascade)", removed)
	}
	if len(e.Pairs()) != 0 {
		t.Fatalf("pairs after removal = %v, want none", e.Pairs())
	}
	if got := fullPairs(t, g, set); !pairsEqual(e.Pairs(), got) {
		t.Fatalf("incremental %v != full re-chase %v", e.Pairs(), got)
	}

	back := &graph.Delta{}
	back.AddValueTriple("alb2", "release_year", "1996")
	added, removed, err = e.Apply(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("re-add removed pairs: %v", removed)
	}
	if !pairsEqual(added, []eqrel.Pair{albums, artists}) {
		t.Fatalf("added = %v, want both pairs restored", added)
	}
	if got := fullPairs(t, g, set); !pairsEqual(e.Pairs(), got) {
		t.Fatalf("incremental %v != full re-chase %v", e.Pairs(), got)
	}
}

// TestAdditionNewEntity grows the music graph with a fourth duplicate
// album and artist and checks the new identifications appear, cascading
// through the recursive keys.
func TestAdditionNewEntity(t *testing.T) {
	g := fixtures.MusicGraph()
	set := fixtures.MusicKeys()
	e, err := New(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := &graph.Delta{}
	d.AddEntity("alb4", "album").
		AddEntity("art4", "artist").
		AddValueTriple("alb4", "name_of", "Anthology 2").
		AddValueTriple("alb4", "release_year", "1996").
		AddTriple("alb4", "recorded_by", "art4").
		AddValueTriple("art4", "name_of", "The Beatles")
	added, removed, err := e.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("addition removed pairs: %v", removed)
	}
	// alb4 joins {alb1, alb2} via Q2, then art4 joins {art1, art2} via
	// Q3: two new album pairs and two new artist pairs.
	if len(added) != 4 {
		t.Fatalf("added = %v, want 4 new pairs", added)
	}
	if got := fullPairs(t, g, set); !pairsEqual(e.Pairs(), got) {
		t.Fatalf("incremental %v != full re-chase %v", e.Pairs(), got)
	}
}

// TestRedundantWitnessSurvivesRemoval checks that an identification
// with two independent witnesses survives losing one: alb1/alb2 are
// identified by Q2 (name+year); removing alb2's recorded_by edge kills
// only Q1/Q3-dependent facts, and the album pair must survive while
// the artist pair falls.
func TestRedundantWitnessSurvivesRemoval(t *testing.T) {
	g := fixtures.MusicGraph()
	set := fixtures.MusicKeys()
	e, err := New(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	albums := mustPair(t, g, "alb1", "alb2")
	artists := mustPair(t, g, "art1", "art2")

	d := &graph.Delta{}
	d.RemoveTriple("alb2", "recorded_by", "art2")
	_, removed, err := e.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(e.Pairs(), []eqrel.Pair{albums}) {
		t.Fatalf("pairs = %v, want only the album pair to survive", e.Pairs())
	}
	if !pairsEqual(removed, []eqrel.Pair{artists}) {
		t.Fatalf("removed = %v, want only the artist pair", removed)
	}
	if got := fullPairs(t, g, set); !pairsEqual(e.Pairs(), got) {
		t.Fatalf("incremental %v != full re-chase %v", e.Pairs(), got)
	}
}

// TestClassSplitRecoversSkippedWitness is the regression test for the
// transitivity blind spot: the original chase identifies (a,b) and
// (a,c) and then skips (b,c) as already Same, so no step records
// (b,c)'s independent witness. A removal that splits the class must
// still recover (b,c) — the whole old class is suspect, not only the
// dropped step's pair.
func TestClassSplitRecoversSkippedWitness(t *testing.T) {
	g := graph.New()
	a := g.MustAddEntity("a", "T")
	b := g.MustAddEntity("b", "T")
	c := g.MustAddEntity("c", "T")
	hub1 := g.AddValue("hub1")
	hub2 := g.AddValue("hub2")
	z := g.AddValue("z")
	g.MustAddTriple(a, "p", hub1)
	g.MustAddTriple(b, "p", hub1)
	g.MustAddTriple(a, "p", hub2)
	g.MustAddTriple(c, "p", hub2)
	g.MustAddTriple(b, "q", z)
	g.MustAddTriple(c, "q", z)
	set, err := keys.ParseString(`
key K1 for T {
    x -p-> v*
}
key K2 for T {
    x -q-> w*
}`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Pairs()) != 3 {
		t.Fatalf("initial pairs = %v, want the full triangle", e.Pairs())
	}

	// Drop b's K1 witness. (a,b) falls; (a,c) survives via hub2; (b,c)
	// must survive via its never-recorded K2 witness through z.
	d := &graph.Delta{}
	d.RemoveValueTriple("b", "p", "hub1")
	_, removed, err := e.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	full := fullPairs(t, g, set)
	if !pairsEqual(e.Pairs(), full) {
		t.Fatalf("incremental %v != full re-chase %v", e.Pairs(), full)
	}
	if len(full) != 3 {
		// (b,c) by K2 and (a,c) by K1 keep the triangle connected.
		t.Fatalf("full re-chase = %v, want the triangle to survive via K2", full)
	}
	if len(removed) != 0 {
		t.Fatalf("removed = %v, want none", removed)
	}
}

// TestEmptyAndNoopDeltas: applying an empty delta, or one whose ops are
// all no-ops, must change nothing.
func TestEmptyAndNoopDeltas(t *testing.T) {
	g := fixtures.MusicGraph()
	e, err := New(g, fixtures.MusicKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := len(e.Pairs())
	for _, d := range []*graph.Delta{
		{},
		(&graph.Delta{}).AddValueTriple("alb1", "name_of", "Anthology 2"), // duplicate
		(&graph.Delta{}).RemoveValueTriple("alb1", "name_of", "nope"),     // absent
		(&graph.Delta{}).AddEntity("alb1", "album"),                       // existing
	} {
		added, removed, err := e.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(added) != 0 || len(removed) != 0 {
			t.Fatalf("no-op delta reported added=%v removed=%v", added, removed)
		}
	}
	if len(e.Pairs()) != before {
		t.Fatalf("no-op deltas changed the fixpoint")
	}
}

// TestFailedDeltaLeavesStateIntact: an invalid delta must not disturb
// graph or fixpoint.
func TestFailedDeltaLeavesStateIntact(t *testing.T) {
	g := fixtures.MusicGraph()
	e, err := New(g, fixtures.MusicKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]eqrel.Pair(nil), e.Pairs()...)
	trips := g.NumTriples()
	bad := (&graph.Delta{}).RemoveValueTriple("alb2", "release_year", "1996").
		AddTriple("ghost", "recorded_by", "art1")
	if _, _, err := e.Apply(bad); err == nil {
		t.Fatal("invalid delta did not error")
	}
	if g.NumTriples() != trips {
		t.Fatal("failed delta mutated the graph")
	}
	if !pairsEqual(e.Pairs(), before) {
		t.Fatal("failed delta mutated the fixpoint")
	}
}

// tripleRec is the string form of a triple, for building replay deltas.
type tripleRec struct {
	subj, pred, obj string
	objIsValue      bool
}

func recordTriple(g *graph.Graph, tr graph.Triple) tripleRec {
	return tripleRec{
		subj:       g.Label(tr.S),
		pred:       g.PredName(tr.P),
		obj:        g.Label(tr.O),
		objIsValue: g.IsValue(tr.O),
	}
}

func (r tripleRec) removeOp(d *graph.Delta) {
	if r.objIsValue {
		d.RemoveValueTriple(r.subj, r.pred, r.obj)
	} else {
		d.RemoveTriple(r.subj, r.pred, r.obj)
	}
}

func (r tripleRec) addOp(d *graph.Delta) {
	if r.objIsValue {
		d.AddValueTriple(r.subj, r.pred, r.obj)
	} else {
		d.AddTriple(r.subj, r.pred, r.obj)
	}
}

// keyedEntityIDs lists the external IDs of entities whose type has a
// key.
func keyedEntityIDs(g *graph.Graph, set *keys.Set) []string {
	var out []string
	for _, tn := range set.Types() {
		tid, ok := g.TypeByName(tn)
		if !ok {
			continue
		}
		for _, n := range g.EntitiesOfType(tid) {
			out = append(out, g.Label(n))
		}
	}
	return out
}

// TestDifferentialRandomMutations is the acceptance test: on randomized
// mutation sequences over the synthetic generator, Apply must leave the
// engine's Eq identical to a full re-chase after every delta, and the
// reported added/removed diffs must be consistent.
func TestDifferentialRandomMutations(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := gen.DefaultSynthetic()
		cfg.Seed = seed
		w, err := gen.Synthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(w.Graph, w.Keys, Options{})
		if err != nil {
			t.Fatal(err)
		}
		g := e.Graph()
		rng := rand.New(rand.NewSource(seed * 7919))
		var pool []tripleRec // removed triples available for re-adding
		totalAdded, totalRemoved := 0, 0
		prev := append([]eqrel.Pair(nil), e.Pairs()...)

		for round := 0; round < 40; round++ {
			d := &graph.Delta{}
			switch round % 4 {
			case 0: // remove a few random triples
				trs := g.Triples()
				for i := 0; i < 1+rng.Intn(4); i++ {
					rec := recordTriple(g, trs[rng.Intn(len(trs))])
					pool = append(pool, rec)
					rec.removeOp(d)
				}
			case 1: // re-add previously removed triples
				for len(pool) > 0 && d.Len() < 3 {
					i := rng.Intn(len(pool))
					pool[i].addOp(d)
					pool = append(pool[:i], pool[i+1:]...)
				}
				if d.Len() == 0 {
					continue
				}
			case 2: // clone a random keyed entity (out-edges shared)
				ids := keyedEntityIDs(g, w.Keys)
				src := ids[rng.Intn(len(ids))]
				n, _ := g.Entity(src)
				cloneID := src + "_clone"
				if _, exists := g.Entity(cloneID); exists {
					continue
				}
				d.AddEntity(cloneID, g.TypeName(g.TypeOf(n)))
				for _, edge := range g.Out(n) {
					rec := tripleRec{
						subj:       cloneID,
						pred:       g.PredName(edge.Pred),
						obj:        g.Label(edge.To),
						objIsValue: g.IsValue(edge.To),
					}
					rec.addOp(d)
				}
			case 3: // sever a random out-edge of a keyed entity — this
				// targets witnesses directly, including the redundant
				// witnesses of classes grown by cloning (the class-split
				// regression scenario).
				ids := keyedEntityIDs(g, w.Keys)
				src := ids[rng.Intn(len(ids))]
				n, _ := g.Entity(src)
				out := g.Out(n)
				if len(out) == 0 {
					continue
				}
				edge := out[rng.Intn(len(out))]
				rec := recordTriple(g, graph.Triple{S: n, P: edge.Pred, O: edge.To})
				pool = append(pool, rec)
				rec.removeOp(d)
			}

			added, removed, err := e.Apply(d)
			if err != nil {
				t.Fatalf("seed %d round %d: Apply: %v", seed, round, err)
			}
			totalAdded += len(added)
			totalRemoved += len(removed)

			full := fullPairs(t, g, w.Keys)
			if !pairsEqual(e.Pairs(), full) {
				t.Fatalf("seed %d round %d: incremental pairs diverge from full re-chase\ninc:  %v\nfull: %v\nstats: %+v",
					seed, round, e.Pairs(), full, e.LastStats())
			}
			// prev + added - removed must equal the new pair set.
			reconstructed := applyDiff(prev, added, removed)
			if !pairsEqual(reconstructed, e.Pairs()) {
				t.Fatalf("seed %d round %d: diff inconsistent: prev+added-removed != pairs", seed, round)
			}
			prev = append(prev[:0], e.Pairs()...)
		}
		if totalAdded == 0 || totalRemoved == 0 {
			t.Fatalf("seed %d: mutation sequence never changed the match set (added %d, removed %d) — test is vacuous",
				seed, totalAdded, totalRemoved)
		}
	}
}

// applyDiff reconstructs a sorted pair list from prev plus a diff.
func applyDiff(prev, added, removed []eqrel.Pair) []eqrel.Pair {
	drop := make(map[eqrel.Pair]bool, len(removed))
	for _, p := range removed {
		drop[p] = true
	}
	out := make([]eqrel.Pair, 0, len(prev)+len(added))
	for _, p := range prev {
		if !drop[p] {
			out = append(out, p)
		}
	}
	out = append(out, added...)
	sortPairs(out)
	return out
}

func sortPairs(ps []eqrel.Pair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && (ps[j].A < ps[j-1].A || (ps[j].A == ps[j-1].A && ps[j].B < ps[j-1].B)); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
