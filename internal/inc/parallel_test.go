package inc

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"graphkeys/internal/chase"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/testutil"
)

// repairRun drives one engine at the given repair parallelism over the
// generator's sequence (graph phase single-worker, so dense node IDs
// are identical across runs) and captures everything repair produces.
type repairRun struct {
	graphText string
	pairs     string
	steps     string
	stats     []Stats
}

func runRepairSequence(t *testing.T, gen *testutil.Generator, opts Options, rounds int) repairRun {
	t.Helper()
	g := graph.New()
	if _, err := g.ApplyDelta(gen.Seed()); err != nil {
		t.Fatal(err)
	}
	set, err := keys.ParseString(gen.Keys())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, set, opts)
	if err != nil {
		t.Fatal(err)
	}
	var stats []Stats
	for round := 0; round < rounds; round++ {
		if _, _, err := e.ApplyAll(gen.Round(round), 1); err != nil {
			t.Fatalf("p=%d round %d: %v", opts.Parallelism, round, err)
		}
		stats = append(stats, e.LastStats())
	}
	var sb strings.Builder
	if err := g.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	// The differential closure: the maintained fixpoint must equal a
	// full re-chase of the mutated graph, at every parallelism.
	full, err := chase.Run(g, set, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(e.Pairs(), full.Pairs) {
		t.Fatalf("p=%d: incremental pairs diverge from full re-chase", opts.Parallelism)
	}
	return repairRun{
		graphText: sb.String(),
		pairs:     dumpPairs(e.Pairs()),
		steps:     dumpSteps(e.Steps()),
		stats:     stats,
	}
}

func dumpPairs(ps []eqrel.Pair) string {
	var sb strings.Builder
	for _, p := range ps {
		fmt.Fprintf(&sb, "%d-%d\n", p.A, p.B)
	}
	return sb.String()
}

func dumpSteps(steps []chase.Step) string {
	var sb strings.Builder
	for _, st := range steps {
		fmt.Fprintf(&sb, "%d-%d %s req=%v uses=%v\n", st.Pair.A, st.Pair.B, st.Key, st.Requires, st.Uses)
	}
	return sb.String()
}

// replayCheckSteps asserts the step log is a valid chasing sequence:
// every step's Requires already hold in the relation the earlier steps
// built, and the replayed relation identifies every final pair.
func replayCheckSteps(t *testing.T, g *graph.Graph, steps []chase.Step, want []eqrel.Pair) {
	t.Helper()
	eq := eqrel.New(g.NumNodes())
	for i, st := range steps {
		for _, r := range st.Requires {
			if !eq.Same(r.A, r.B) {
				t.Fatalf("step %d (%d,%d): requires (%d,%d) not yet derived", i, st.Pair.A, st.Pair.B, r.A, r.B)
			}
		}
		eq.Union(st.Pair.A, st.Pair.B)
	}
	for _, p := range want {
		if !eq.Same(p.A, p.B) {
			t.Fatalf("replayed steps miss pair (%d,%d)", p.A, p.B)
		}
	}
}

// TestParallelRepairByteIdentical is the tentpole differential test:
// repair at p ∈ {2, 4, 8} must produce byte-identical pairs, step log
// and stats to sequential repair (p = 1), over both the
// component-parallel path (no recursive keys) and the BSP-rounds path
// (recursive keys), with overlapping delta footprints, entity churn
// and coalescing ops in the mix.
func TestParallelRepairByteIdentical(t *testing.T) {
	const rounds = 8
	configs := []struct {
		name string
		cfg  testutil.Config
	}{
		{"components", testutil.Config{Seed: 5, Groups: 6, PerGroup: 8, EntityChurn: true, Coalesce: true}},
		{"components-overlap", testutil.Config{Seed: 6, Groups: 6, PerGroup: 8, Overlap: 0.5, EntityChurn: true}},
		{"rounds-recursive", testutil.Config{Seed: 7, Groups: 4, PerGroup: 8, Bands: true, EntityChurn: true, Coalesce: true}},
		{"rounds-recursive-overlap", testutil.Config{Seed: 8, Groups: 4, PerGroup: 6, Bands: true, Overlap: 0.5}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			gen := testutil.New(tc.cfg)
			ref := runRepairSequence(t, gen, Options{Parallelism: 1}, rounds)
			for _, p := range []int{2, 4, 8} {
				got := runRepairSequence(t, gen, Options{Parallelism: p}, rounds)
				if got.graphText != ref.graphText {
					t.Fatalf("p=%d: graph text diverges from sequential", p)
				}
				if got.pairs != ref.pairs {
					t.Fatalf("p=%d: pairs diverge from sequential:\ngot:  %s\nwant: %s", p, got.pairs, ref.pairs)
				}
				if got.steps != ref.steps {
					t.Fatalf("p=%d: step log diverges from sequential:\ngot:\n%s\nwant:\n%s", p, got.steps, ref.steps)
				}
				if !reflect.DeepEqual(got.stats, ref.stats) {
					t.Fatalf("p=%d: repair stats diverge from sequential:\ngot:  %+v\nwant: %+v", p, got.stats, ref.stats)
				}
			}
		})
	}
}

// TestParallelRepairStepLogReplays checks that the step log a parallel
// repair leaves behind is a valid chasing sequence: replaying it in
// order — asserting each step's Requires against the relation built so
// far — reconstructs the fixpoint.
func TestParallelRepairStepLogReplays(t *testing.T) {
	gen := testutil.New(testutil.Config{Seed: 13, Groups: 4, PerGroup: 8, Bands: true, EntityChurn: true})
	g := graph.New()
	if _, err := g.ApplyDelta(gen.Seed()); err != nil {
		t.Fatal(err)
	}
	set, err := keys.ParseString(gen.Keys())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, set, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		if _, _, err := e.ApplyAll(gen.Round(round), 1); err != nil {
			t.Fatal(err)
		}
	}
	replayCheckSteps(t, g, e.Steps(), e.Pairs())
}
