package inc

import (
	"fmt"
	"strings"
	"testing"

	"graphkeys/internal/chase"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

// FuzzDeltaSequence decodes arbitrary bytes into a mutation sequence
// over a small keyed universe, applies it through the incremental
// engine with parallel repair (p = 4; graph phase single-worker so
// node IDs stay deterministic), and asserts the maintained state is
// byte-identical to the reference: the same deltas applied to a fresh
// graph plus a sequential full re-chase. Every byte pair is one op;
// invalid deltas must be rejected identically on both sides.
//
// CI runs this as a fuzz smoke leg alongside the parser fuzzers.
func FuzzDeltaSequence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x12, 0x23, 0x34, 0x45})
	f.Add([]byte{0x40, 0x00, 0x41, 0x11, 0x82, 0x22, 0xc3, 0x33})
	f.Add([]byte{0x05, 0xff, 0x3c, 0x81, 0x7e, 0x02, 0x99, 0xaa, 0x55, 0x10})
	f.Fuzz(func(t *testing.T, data []byte) {
		const ents = 8
		const vals = 6
		set, err := keys.ParseString(`
key P for person {
	x -email-> e*
}
key B for band {
	x -name_of-> n*
	x -led_by-> $y:person
}`)
		if err != nil {
			t.Fatal(err)
		}
		person := func(i int) string { return fmt.Sprintf("p%d", i%ents) }
		band := func(i int) string { return fmt.Sprintf("b%d", i%(ents/2)) }
		lit := func(i int) string { return fmt.Sprintf("v%d", i%vals) }

		// Seed: persons with colliding emails, bands led by them.
		seed := &graph.Delta{}
		for i := 0; i < ents; i++ {
			seed.AddEntity(person(i), "person")
			seed.AddValueTriple(person(i), "email", lit(i/2))
		}
		for i := 0; i < ents/2; i++ {
			seed.AddEntity(band(i), "band")
			seed.AddValueTriple(band(i), "name_of", lit(i))
			seed.AddTriple(band(i), "led_by", person(i))
		}

		// Decode: every 2 bytes become one op; every 3 ops close a
		// delta. Ops may reference churned-away entities — such deltas
		// fail validation and must be skipped identically by both the
		// engine and the reference.
		var deltas []*graph.Delta
		d := &graph.Delta{}
		ops := 0
		for i := 0; i+1 < len(data); i += 2 {
			k, a := int(data[i]), int(data[i+1])
			switch k % 6 {
			case 0:
				d.AddValueTriple(person(a), "email", lit(a/3))
			case 1:
				d.RemoveValueTriple(person(a), "email", lit(a%vals))
			case 2:
				d.AddValueTriple(band(a), "name_of", lit(a%vals))
			case 3:
				d.RemoveValueTriple(band(a), "name_of", lit(a/2))
			case 4:
				d.RemoveEntity(person(a))
				d.AddEntity(person(a), "person")
				d.AddValueTriple(person(a), "email", lit(a%vals))
			case 5:
				d.AddTriple(band(a), "led_by", person(a/2))
			}
			ops++
			if ops%3 == 0 {
				deltas = append(deltas, d)
				d = &graph.Delta{}
			}
		}
		if d.Len() > 0 {
			deltas = append(deltas, d)
		}

		// Engine under test: parallel repair over the whole sequence as
		// one batch per delta (workers=1 keeps allocation order equal to
		// the reference's sequential application).
		eg := graph.New()
		if _, err := eg.ApplyDelta(seed); err != nil {
			t.Fatal(err)
		}
		e, err := New(eg, set, Options{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		var engineErrs int
		for _, gd := range deltas {
			if _, _, err := e.ApplyAll([]*graph.Delta{gd}, 1); err != nil {
				engineErrs++
			}
		}

		// Reference: same deltas on a fresh graph, sequentially, then a
		// full re-chase.
		rg := graph.New()
		if _, err := rg.ApplyDelta(seed); err != nil {
			t.Fatal(err)
		}
		var refErrs int
		for _, gd := range deltas {
			if _, err := rg.ApplyDelta(gd); err != nil {
				refErrs++
			}
		}
		if engineErrs != refErrs {
			t.Fatalf("engine rejected %d deltas, reference rejected %d", engineErrs, refErrs)
		}
		var et, rt strings.Builder
		if err := eg.WriteText(&et); err != nil {
			t.Fatal(err)
		}
		if err := rg.WriteText(&rt); err != nil {
			t.Fatal(err)
		}
		if et.String() != rt.String() {
			t.Fatalf("engine graph diverges from reference:\nengine:\n%s\nreference:\n%s", et.String(), rt.String())
		}
		full, err := chase.Run(rg, set, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !pairsEqual(e.Pairs(), full.Pairs) {
			t.Fatalf("incremental pairs diverge from full re-chase:\ninc:  %v\nfull: %v", e.Pairs(), full.Pairs)
		}
	})
}
