package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"graphkeys/internal/graph"
	"graphkeys/internal/inc"
	"graphkeys/internal/testutil"
	"graphkeys/internal/wal"
)

// This file benchmarks the two PR-5 write-path changes end to end:
//
//   - RepairExp: the parallel incremental repair pass. One merged
//     delta batch (value churn across a slice of the workload's
//     entities) repaired at increasing Options.Parallelism, each run
//     asserted byte-identical to the sequential repair. CI runs it at
//     GOMAXPROCS 1 and 4 and publishes BENCH_repair.json.
//
//   - GroupCommitExp: group-commit fsync. Concurrent writers stream
//     disjoint-footprint deltas through ApplyDeltaLogged against a
//     SyncAlways WAL, comparing the old shape — Append (write + fsync)
//     inside the plan mutex — against Begin/commit, where one group
//     fsync covers every record buffered while the leader flushed.

// RepairRun is one parallelism measurement of the repair experiment.
type RepairRun struct {
	Parallelism  int     `json:"parallelism"`
	Millis       float64 `json:"ms"`
	DeltasPerSec float64 `json:"deltas_per_sec"`
	Speedup      float64 `json:"speedup_vs_sequential"`
	Identical    bool    `json:"identical"`
}

// GroupCommitRun is one writer-count measurement of the group-commit
// experiment.
type GroupCommitRun struct {
	Writers        int     `json:"writers"`
	InLockMillis   float64 `json:"fsync_in_plan_lock_ms"`
	GroupMillis    float64 `json:"group_commit_ms"`
	InLockPerSec   float64 `json:"fsync_in_plan_lock_deltas_per_sec"`
	GroupPerSec    float64 `json:"group_commit_deltas_per_sec"`
	Speedup        float64 `json:"speedup"`
	GroupsObserved uint64  `json:"wal_records"`
}

// RepairReport is the machine-readable outcome of both experiments
// (the groupcommit section is filled by GroupCommitExp when the runner
// asks for the combined report).
type RepairReport struct {
	Dataset     string           `json:"dataset"`
	Triples     int              `json:"triples"`
	Entities    int              `json:"entities"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Deltas      int              `json:"deltas"`
	SeqMillis   float64          `json:"sequential_ms"`
	Runs        []RepairRun      `json:"runs"`
	GroupCommit []GroupCommitRun `json:"group_commit,omitempty"`
}

// JSON renders the report.
func (r *RepairReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// repairDeltas derives a churn batch from the workload: for up to
// nDeltas distinct subjects with a value triple, remove it and add a
// replacement literal shared across a few subjects — so the merged
// repair has a large affected region with non-trivial partner sets.
func repairDeltas(g *graph.Graph, nDeltas int) []*graph.Delta {
	type attr struct{ id, pred, lit string }
	var attrs []attr
	seen := make(map[string]bool)
	g.EachTriple(func(s graph.NodeID, p graph.PredID, o graph.NodeID) {
		if !g.IsValue(o) {
			return
		}
		id := g.Label(s)
		if seen[id] {
			return
		}
		seen[id] = true
		attrs = append(attrs, attr{id: id, pred: g.PredName(p), lit: g.Label(o)})
	})
	if nDeltas > len(attrs) {
		nDeltas = len(attrs)
	}
	deltas := make([]*graph.Delta, nDeltas)
	for i := 0; i < nDeltas; i++ {
		a := attrs[i]
		d := &graph.Delta{}
		d.RemoveValueTriple(a.id, a.pred, a.lit)
		// The replacement literal comes from a small hot pool, so the
		// churned entities pile into a few big collision classes: every
		// affected entity then sees a long candidate-partner list and
		// the repair becomes witness-check dominated — the phase
		// parallel repair fans out.
		d.AddValueTriple(a.id, a.pred, fmt.Sprintf("hot-%s-%d", a.pred, i%3))
		deltas[i] = d
	}
	return deltas
}

// RepairExp measures the incremental maintenance pass at increasing
// repair parallelism: one engine per run over a fresh workload copy,
// the whole churn batch applied as a single ApplyAll (graph phase
// single-worker, so every run mutates identically), wall time
// dominated by the repair. Every run's final graph text and pair list
// are compared against the sequential (p = 1) run's.
func RepairExp(ds Dataset, cfg BuildConfig, ps []int, nDeltas int) (*Table, *RepairReport, error) {
	probe, err := Build(ds, cfg)
	if err != nil {
		return nil, nil, err
	}
	deltas := repairDeltas(probe.Graph, nDeltas)
	nDeltas = len(deltas)

	// Each parallelism measures best-of-reps: the batch is only a few
	// to a few dozen milliseconds, so a single sample is at the mercy
	// of scheduler noise on shared runners.
	const reps = 3
	run := func(p int) (time.Duration, string, string, error) {
		best := time.Duration(0)
		var graphText, pairText string
		for r := 0; r < reps; r++ {
			w, err := Build(ds, cfg)
			if err != nil {
				return 0, "", "", err
			}
			e, err := inc.New(w.Graph, w.Keys, inc.Options{Parallelism: p})
			if err != nil {
				return 0, "", "", err
			}
			start := time.Now()
			if _, _, err := e.ApplyAll(deltas, 1); err != nil {
				return 0, "", "", err
			}
			dur := time.Since(start)
			if best == 0 || dur < best {
				best = dur
			}
			if r == 0 {
				var sb strings.Builder
				if err := w.Graph.WriteText(&sb); err != nil {
					return 0, "", "", err
				}
				graphText = sb.String()
				var pairs strings.Builder
				for _, pr := range e.Pairs() {
					fmt.Fprintf(&pairs, "%d-%d;", pr.A, pr.B)
				}
				pairText = pairs.String()
			}
		}
		return best, graphText, pairText, nil
	}

	seqDur, seqGraph, seqPairs, err := run(1)
	if err != nil {
		return nil, nil, err
	}
	rep := &RepairReport{
		Dataset:    ds.String(),
		Triples:    probe.Graph.NumTriples(),
		Entities:   probe.Graph.NumEntities(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Deltas:     nDeltas,
		SeqMillis:  ms(seqDur),
	}
	table := &Table{
		Title: fmt.Sprintf("Parallel repair: %d-delta merged batch (%s, |G|=%d, GOMAXPROCS=%d)",
			nDeltas, ds, rep.Triples, rep.GOMAXPROCS),
		Header: []string{"p", "time", "deltas/s", "vs sequential", "identical"},
		Rows: [][]string{{
			"1 (seq)", fmtDur(seqDur), fmt.Sprintf("%.0f", float64(nDeltas)/seqDur.Seconds()), "1.00x", "-",
		}},
	}
	for _, p := range ps {
		if p <= 1 {
			continue
		}
		dur, gotGraph, gotPairs, err := run(p)
		if err != nil {
			return nil, nil, err
		}
		r := RepairRun{
			Parallelism:  p,
			Millis:       ms(dur),
			DeltasPerSec: float64(nDeltas) / dur.Seconds(),
			Speedup:      float64(seqDur) / float64(dur),
			Identical:    gotGraph == seqGraph && gotPairs == seqPairs,
		}
		rep.Runs = append(rep.Runs, r)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", p), fmtDur(dur), fmt.Sprintf("%.0f", r.DeltasPerSec),
			fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%v", r.Identical),
		})
	}
	return table, rep, nil
}

// GroupCommitExp measures sustained durable-write throughput at
// increasing concurrent writer counts, old shape vs new: fsync inside
// the plan mutex (the wal.Store Append called synchronously from the
// write-ahead hook) against group commit (Begin under the plan mutex,
// the commit wait outside it). Deltas have pairwise-disjoint
// footprints, so the store admits the writers concurrently and the
// only serialization left is the durability protocol under test. dir
// must be a scratch directory; each run uses a fresh WAL under it.
func GroupCommitExp(dir string, writerCounts []int, nDeltas int) (*Table, []GroupCommitRun, error) {
	gen := testutil.New(testutil.Config{Seed: 99, Groups: 16, PerGroup: 8})

	run := func(sub string, writers int, group bool) (time.Duration, uint64, error) {
		s, err := wal.Open(fmt.Sprintf("%s/%s-w%d", dir, sub, writers), wal.SyncAlways)
		if err != nil {
			return 0, 0, err
		}
		defer s.Close()
		g := graph.New()
		if _, err := g.ApplyDelta(gen.Seed()); err != nil {
			return 0, 0, err
		}
		// Pre-intern the marker predicate (two deltas: an add+remove
		// pair in one delta would coalesce away and intern nothing),
		// so the timed stream never allocates or interns.
		warmAdd := &graph.Delta{}
		warmAdd.AddValueTriple("g0-p0", "note", "warmup")
		warmDel := &graph.Delta{}
		warmDel.RemoveValueTriple("g0-p0", "note", "warmup")
		for _, wd := range []*graph.Delta{warmAdd, warmDel} {
			if _, err := g.ApplyDelta(wd); err != nil {
				return 0, 0, err
			}
		}
		hook := func(ops []graph.DeltaOp) (graph.DeltaCommit, error) {
			if group {
				_, commit, err := s.Begin(ops)
				if err != nil {
					return nil, err
				}
				return graph.DeltaCommit(commit), nil
			}
			// Old shape: the full append (write + fsync) runs inside
			// the hook, i.e. inside the plan mutex.
			_, err := s.Append(ops)
			return nil, err
		}
		perWriter := nDeltas / writers
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					if _, err := g.ApplyDeltaLogged(gen.Toggle(w, i), hook); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}(w)
		}
		wg.Wait()
		dur := time.Since(start)
		return dur, s.Seq(), firstErr
	}

	table := &Table{
		Title:  fmt.Sprintf("Group-commit fsync: %d durable deltas, disjoint writers (GOMAXPROCS=%d)", nDeltas, runtime.GOMAXPROCS(0)),
		Header: []string{"writers", "fsync-in-lock", "group-commit", "in-lock deltas/s", "group deltas/s", "speedup"},
	}
	var runs []GroupCommitRun
	for _, writers := range writerCounts {
		inLock, _, err := run("inlock", writers, false)
		if err != nil {
			return nil, nil, err
		}
		grouped, recs, err := run("group", writers, true)
		if err != nil {
			return nil, nil, err
		}
		n := (nDeltas / writers) * writers
		r := GroupCommitRun{
			Writers:        writers,
			InLockMillis:   ms(inLock),
			GroupMillis:    ms(grouped),
			InLockPerSec:   float64(n) / inLock.Seconds(),
			GroupPerSec:    float64(n) / grouped.Seconds(),
			Speedup:        float64(inLock) / float64(grouped),
			GroupsObserved: recs,
		}
		runs = append(runs, r)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", writers), fmtDur(inLock), fmtDur(grouped),
			fmt.Sprintf("%.0f", r.InLockPerSec), fmt.Sprintf("%.0f", r.GroupPerSec),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return table, runs, nil
}
