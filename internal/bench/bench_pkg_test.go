package bench

import (
	"bytes"
	"strings"
	"testing"
)

// quick is a small configuration for harness tests.
func quick() BuildConfig { return BuildConfig{Seed: 1, Scale: 0.3, C: 1, D: 1} }

// TestBuildAllDatasets: each dataset builds and carries keys plus a
// non-empty ground truth.
func TestBuildAllDatasets(t *testing.T) {
	for _, ds := range []Dataset{GoogleDS, DBpediaDS, SyntheticDS} {
		w, err := Build(ds, quick())
		if err != nil {
			t.Fatalf("%v: %v", ds, err)
		}
		if w.Graph.NumTriples() == 0 || w.Keys.Cardinality() == 0 || len(w.Expected) == 0 {
			t.Errorf("%v: degenerate workload: %d triples, %d keys, %d expected",
				ds, w.Graph.NumTriples(), w.Keys.Cardinality(), len(w.Expected))
		}
	}
}

// TestRunAlgoAllCorrect: every algorithm reproduces the planted truth
// on every dataset at the quick size.
func TestRunAlgoAllCorrect(t *testing.T) {
	for _, ds := range []Dataset{GoogleDS, DBpediaDS, SyntheticDS} {
		w, err := Build(ds, quick())
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range Algos {
			m, err := RunAlgo(w, a, 2)
			if err != nil {
				t.Fatalf("%v/%v: %v", ds, a, err)
			}
			if !m.Correct {
				t.Errorf("%v/%v: result does not match planted truth", ds, a)
			}
			if m.Pairs == 0 {
				t.Errorf("%v/%v: no pairs identified", ds, a)
			}
		}
	}
}

// TestExperimentRunners: each runner produces a table with the right
// shape; this is the smoke test that cmd/embench drives end to end.
func TestExperimentRunners(t *testing.T) {
	cfg := quick()
	t1, err := Exp1VaryP(SyntheticDS, cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 2 || len(t1.Rows[0]) != 1+len(Algos) {
		t.Errorf("Exp1 table shape: %dx%d", len(t1.Rows), len(t1.Rows[0]))
	}
	t2, err := Exp2VaryG(SyntheticDS, cfg, []float64{0.2, 0.4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 2 {
		t.Errorf("Exp2 rows = %d", len(t2.Rows))
	}
	t3, err := Exp3VaryC(SyntheticDS, cfg, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 2 {
		t.Errorf("Exp3C rows = %d", len(t3.Rows))
	}
	t4, err := Exp3VaryD(SyntheticDS, cfg, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 2 {
		t.Errorf("Exp3D rows = %d", len(t4.Rows))
	}
	for _, tb := range []*Table{t1, t2, t3, t4} {
		for _, row := range tb.Rows {
			for _, cell := range row {
				if strings.Contains(cell, "WRONG") {
					t.Errorf("%s: incorrect result in row %v", tb.Title, row)
				}
			}
		}
	}
}

// TestTable2AndAblations: the remaining reports run and contain the
// expected structure.
func TestTable2AndAblations(t *testing.T) {
	tb, err := Table2(quick(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("Table 2 rows = %d, want 3 datasets", len(tb.Rows))
	}
	ab, err := Ablations(SyntheticDS, quick(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Rows) < 7 {
		t.Errorf("ablations rows = %d", len(ab.Rows))
	}
}

// TestTableRendering: Print and CSV produce consistent output.
func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:  "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	var buf bytes.Buffer
	tb.Print(&buf)
	if !strings.Contains(buf.String(), "== t ==") || !strings.Contains(buf.String(), "3") {
		t.Errorf("Print output:\n%s", buf.String())
	}
	csv := tb.CSV()
	if csv != "a,b\n1,2\n3,4\n" {
		t.Errorf("CSV = %q", csv)
	}
}

// TestNames: paper-facing labels.
func TestNames(t *testing.T) {
	if GoogleDS.String() != "Google" || DBpediaDS.String() != "DBpedia" || SyntheticDS.String() != "Synthetic" {
		t.Error("dataset names drifted")
	}
	if AlgoEMOptVC.String() != "EMOptVC" || AlgoEMVF2MR.String() != "EMVF2MR" {
		t.Error("algo names drifted")
	}
	if Dataset(9).String() != "Dataset(9)" || Algo(9).String() != "Algo(9)" {
		t.Error("unknown enum formatting")
	}
}
