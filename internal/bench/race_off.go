//go:build !race

package bench

// raceEnabled reports whether this binary was built with the race
// detector, which multiplies the cost of every atomic and so makes
// instrumentation-overhead budgets meaningless.
const raceEnabled = false
