package bench

import (
	"testing"

	"graphkeys/internal/chase"
	"graphkeys/internal/gen"
	"graphkeys/internal/match"
)

// candidatesWorkload builds the 1k+ entities-per-type workload the
// value-index acceptance benchmarks run on: one keyed type per chain
// level, radius d, so the full sweep materializes C(1200, 2) ≈ 719k
// pairs per type while the planted duplicates and shared values bound
// the indexed join.
func candidatesWorkload(tb testing.TB, radius int) *gen.Workload {
	tb.Helper()
	cfg := gen.DefaultSynthetic()
	cfg.TypeGroups = 1
	cfg.Chain = 0
	cfg.Radius = radius
	cfg.EntitiesPerType = 1200
	w, err := gen.Synthetic(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// BenchmarkCandidates compares candidate-set construction: the full
// O(n²) per-type sweep, the materialized value-indexed join, and the
// lazy candidate stream, at radius 1 (pure posting-list join) and
// radius 2 (neighborhood value buckets).
func BenchmarkCandidates(b *testing.B) {
	for _, bc := range []struct {
		name   string
		radius int
		mode   string
	}{
		{"sweep/d1", 1, "sweep"},
		{"indexed/d1", 1, "indexed"},
		{"streamed/d1", 1, "streamed"},
		{"sweep/d2", 2, "sweep"},
		{"indexed/d2", 2, "indexed"},
		{"streamed/d2", 2, "streamed"},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w := candidatesWorkload(b, bc.radius)
			m, err := match.New(w.Graph, w.Keys, match.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var n int
			for i := 0; i < b.N; i++ {
				switch bc.mode {
				case "sweep":
					n = len(m.Candidates())
				case "indexed":
					n = len(m.CandidatesIndexed())
				default:
					n = 0
					for range m.CandidateStream() {
						n++
					}
				}
			}
			b.ReportMetric(float64(n), "candidates")
		})
	}
}

// BenchmarkChaseCandidates measures the end-to-end effect: the full
// sequential chase over the 1200-entity workload with the O(n²) sweep,
// the materialized indexed join, and the streaming default.
func BenchmarkChaseCandidates(b *testing.B) {
	for _, bc := range []struct {
		name string
		opts chase.Options
	}{
		{"sweep", chase.Options{FullSweep: true}},
		{"indexed", chase.Options{Materialize: true}},
		{"streamed", chase.Options{}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w := candidatesWorkload(b, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := chase.Run(w.Graph, w.Keys, bc.opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Pairs) != len(w.Expected) {
					b.Fatalf("chase found %d pairs, want %d", len(res.Pairs), len(w.Expected))
				}
			}
		})
	}
}
