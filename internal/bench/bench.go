// Package bench is the experiment harness reproducing the evaluation of
// "Keys for Graphs" (§6): for every figure panel (Fig. 8(a)–(l)) and
// Table 2 it builds the corresponding workload, runs the paper's five
// algorithms, and renders the same rows/series the paper reports.
// Absolute times differ from the paper's EC2 cluster (this is an
// in-process simulation); the shapes — who wins, by what factor, how
// costs respond to p, |G|, c and d — are the reproduction target (see
// EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"graphkeys/internal/emmr"
	"graphkeys/internal/emvc"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/gen"
)

// Dataset identifies a workload family of §6.
type Dataset int

const (
	// GoogleDS is the Google+-flavored social graph (30 keys).
	GoogleDS Dataset = iota
	// DBpediaDS is the DBpedia-flavored knowledge base (100 keys).
	DBpediaDS
	// SyntheticDS is the synthetic generator (up to 500 keys).
	SyntheticDS
)

// String names the dataset as in the paper's figures.
func (d Dataset) String() string {
	switch d {
	case GoogleDS:
		return "Google"
	case DBpediaDS:
		return "DBpedia"
	case SyntheticDS:
		return "Synthetic"
	default:
		return fmt.Sprintf("Dataset(%d)", int(d))
	}
}

// Algo identifies one of the five evaluated algorithms.
type Algo int

const (
	AlgoEMVF2MR Algo = iota
	AlgoEMMR
	AlgoEMOptMR
	AlgoEMVC
	AlgoEMOptVC
)

// Algos lists all five in the paper's legend order.
var Algos = []Algo{AlgoEMVF2MR, AlgoEMMR, AlgoEMOptMR, AlgoEMVC, AlgoEMOptVC}

// String names the algorithm as in the paper.
func (a Algo) String() string {
	switch a {
	case AlgoEMVF2MR:
		return "EMVF2MR"
	case AlgoEMMR:
		return "EMMR"
	case AlgoEMOptMR:
		return "EMOptMR"
	case AlgoEMVC:
		return "EMVC"
	case AlgoEMOptVC:
		return "EMOptVC"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// BuildConfig sizes a workload.
type BuildConfig struct {
	Seed int64
	// Scale multiplies dataset sizes (the Exp-2 x-axis).
	Scale float64
	// C and D are the key-generator parameters (the Exp-3 x-axes);
	// every dataset gets planted chains with these parameters, matching
	// the paper's "fixing c = 2 and d = 2" baseline.
	C, D int
}

// DefaultBuild is the paper's baseline setting (c = 2, d = 2).
func DefaultBuild() BuildConfig { return BuildConfig{Seed: 1, Scale: 1, C: 2, D: 2} }

// Build constructs the workload for a dataset at the given size and key
// parameters.
func Build(ds Dataset, cfg BuildConfig) (*gen.Workload, error) {
	chains := gen.SyntheticConfig{
		Seed:                cfg.Seed + 13,
		TypeGroups:          2,
		EntitiesPerType:     scaledInt(24, cfg.Scale),
		DupFraction:         0.2,
		NearMissFraction:    0.3,
		Chain:               cfg.C,
		Radius:              cfg.D,
		Labels:              6000,
		NoiseEdgesPerEntity: 1,
	}
	switch ds {
	case GoogleDS:
		w, err := gen.Google(gen.FlavorConfig{Seed: cfg.Seed, Scale: cfg.Scale})
		if err != nil {
			return nil, err
		}
		if err := gen.PlantChains(w, chains, "g_"); err != nil {
			return nil, err
		}
		return w, nil
	case DBpediaDS:
		w, err := gen.DBpedia(gen.FlavorConfig{Seed: cfg.Seed, Scale: cfg.Scale})
		if err != nil {
			return nil, err
		}
		if err := gen.PlantChains(w, chains, "d_"); err != nil {
			return nil, err
		}
		return w, nil
	case SyntheticDS:
		syn := chains
		syn.TypeGroups = 4
		syn.EntitiesPerType = scaledInt(40, cfg.Scale)
		return gen.Synthetic(syn)
	default:
		return nil, fmt.Errorf("bench: unknown dataset %v", ds)
	}
}

func scaledInt(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 4 {
		n = 4
	}
	return n
}

// Measurement is one algorithm run's outcome.
type Measurement struct {
	Algo       Algo
	P          int
	Elapsed    time.Duration
	Pairs      int
	Candidates int
	Correct    bool
	// Extra carries algorithm-specific counters for the ablation
	// reports (rounds, messages, skipped checks, ...).
	Extra map[string]int64
}

// RunAlgo executes one algorithm on a workload with p workers and
// verifies the result against the planted ground truth.
func RunAlgo(w *gen.Workload, a Algo, p int) (Measurement, error) {
	m := Measurement{Algo: a, P: p, Extra: map[string]int64{}}
	start := time.Now()
	switch a {
	case AlgoEMVF2MR, AlgoEMMR, AlgoEMOptMR:
		variant := emmr.Base
		if a == AlgoEMVF2MR {
			variant = emmr.VF2
		} else if a == AlgoEMOptMR {
			variant = emmr.Opt
		}
		res, err := emmr.Run(w.Graph, w.Keys, emmr.Config{P: p, Variant: variant})
		if err != nil {
			return m, err
		}
		m.Elapsed = time.Since(start)
		m.Pairs = len(res.Pairs)
		m.Candidates = res.Stats.Candidates
		m.Correct = samePairs(res.Pairs, w.Expected)
		m.Extra["rounds"] = int64(res.Stats.Rounds)
		m.Extra["checks"] = int64(res.Stats.Checks)
		m.Extra["isoSteps"] = res.Stats.IsoSteps
		m.Extra["skipped"] = int64(res.Stats.SkippedByDependency)
		m.Extra["candidatesUnfiltered"] = int64(res.Stats.CandidatesUnfiltered)
		m.Extra["nbhdNodes"] = int64(res.Stats.NeighborhoodNodes)
		m.Extra["nbhdReduced"] = int64(res.Stats.ReducedNeighborhoodNodes)
	case AlgoEMVC, AlgoEMOptVC:
		variant := emvc.Base
		if a == AlgoEMOptVC {
			variant = emvc.Opt
		}
		res, err := emvc.Run(w.Graph, w.Keys, emvc.Config{P: p, Variant: variant})
		if err != nil {
			return m, err
		}
		m.Elapsed = time.Since(start)
		m.Pairs = len(res.Pairs)
		m.Candidates = res.Stats.Candidates
		m.Correct = samePairs(res.Pairs, w.Expected)
		m.Extra["messages"] = res.Stats.Messages
		m.Extra["localSteps"] = res.Stats.LocalSteps
		m.Extra["increments"] = res.Stats.Increments
		m.Extra["productNodes"] = int64(res.Stats.ProductNodes)
		m.Extra["backstop"] = int64(res.Stats.BackstopFound)
	default:
		return m, fmt.Errorf("bench: unknown algo %v", a)
	}
	return m, nil
}

func samePairs(a, b []eqrel.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Table is a rendered experiment: a header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Print renders the table aligned.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteString("\n")
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteString("\n")
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
