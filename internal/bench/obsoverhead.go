package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"graphkeys/internal/engine"
	"graphkeys/internal/inc"
	"graphkeys/internal/match"
	"graphkeys/internal/obs"
)

// This file measures the cost of the observability substrate: the
// same workload runs bare (no registry, every instrument handle nil)
// and fully instrumented (metrics registered at every layer plus the
// phase tracer), and the report is the relative slowdown. The
// instruments are atomics behind nil-checked handles, so the budget
// is tight: the write path and the repair pass should each stay
// within a few percent.

// ObsOverheadRun is one workload's bare-vs-instrumented measurement.
type ObsOverheadRun struct {
	Workload    string  `json:"workload"`
	BareMillis  float64 `json:"bare_ms"`
	InstrMillis float64 `json:"instrumented_ms"`
	OverheadPct float64 `json:"overhead_pct"`
}

// ObsOverheadReport is the machine-readable outcome
// (BENCH_obs_overhead.json in CI).
type ObsOverheadReport struct {
	Dataset    string           `json:"dataset"`
	Triples    int              `json:"triples"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Runs       []ObsOverheadRun `json:"runs"`
}

// JSON renders the report.
func (r *ObsOverheadReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// obsOverheadWorkload runs the workload once and reports its wall
// time. instrumented wires every layer's instruments into a fresh
// registry; bare leaves every hook nil — the handles are threaded
// per-run (no process globals), so runs can't leak into each other.
func obsOverheadWorkload(ds Dataset, cfg BuildConfig, p int, merged bool, nDeltas int, instrumented bool) (time.Duration, error) {
	w, err := Build(ds, cfg)
	if err != nil {
		return 0, err
	}
	deltas := repairDeltas(w.Graph, nDeltas)
	opts := inc.Options{Parallelism: p}
	if instrumented {
		reg := obs.NewRegistry()
		w.Graph.RegisterObs(reg)
		opts.Match.Obs = match.NewObs(reg)
		opts.Match.Eng = engine.NewObs(reg)
		opts.Obs = inc.RegisterObs(reg)
		opts.Trace = obs.NewTracer(256)
	}
	e, err := inc.New(w.Graph, w.Keys, opts)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if merged {
		// Repair-dominated: the whole churn batch as one maintenance
		// pass.
		if _, _, err := e.ApplyAll(deltas, 1); err != nil {
			return 0, err
		}
	} else {
		// Write-path-dominated: one pass per delta.
		for _, d := range deltas {
			if _, _, err := e.Apply(d); err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start), nil
}

// ObsOverheadExp measures instrumentation overhead on the write path
// (per-delta Apply stream) and the repair pass (one merged ApplyAll),
// best-of-reps per side to shed scheduler noise.
func ObsOverheadExp(ds Dataset, cfg BuildConfig, p, nDeltas int) (*Table, *ObsOverheadReport, error) {
	probe, err := Build(ds, cfg)
	if err != nil {
		return nil, nil, err
	}
	rep := &ObsOverheadReport{
		Dataset:    ds.String(),
		Triples:    probe.Graph.NumTriples(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	table := &Table{
		Title: fmt.Sprintf("Observability overhead: %d deltas, p=%d (%s, |G|=%d)",
			nDeltas, p, ds, rep.Triples),
		Header: []string{"workload", "bare", "instrumented", "overhead"},
	}

	// Bare and instrumented runs interleave within each rep, so slow
	// drift on the machine (thermal, co-tenant load) hits both sides
	// alike instead of masquerading as overhead; each side keeps its
	// best.
	const reps = 3
	best := func(merged bool) (bare, instr time.Duration, err error) {
		for r := 0; r < reps; r++ {
			b, err := obsOverheadWorkload(ds, cfg, p, merged, nDeltas, false)
			if err != nil {
				return 0, 0, err
			}
			in, err := obsOverheadWorkload(ds, cfg, p, merged, nDeltas, true)
			if err != nil {
				return 0, 0, err
			}
			if bare == 0 || b < bare {
				bare = b
			}
			if instr == 0 || in < instr {
				instr = in
			}
		}
		return bare, instr, nil
	}

	for _, wl := range []struct {
		name   string
		merged bool
	}{
		{"writepath", false},
		{"repair", true},
	} {
		bare, instr, err := best(wl.merged)
		if err != nil {
			return nil, nil, err
		}
		r := ObsOverheadRun{
			Workload:    wl.name,
			BareMillis:  ms(bare),
			InstrMillis: ms(instr),
			OverheadPct: (float64(instr)/float64(bare) - 1) * 100,
		}
		rep.Runs = append(rep.Runs, r)
		table.Rows = append(table.Rows, []string{
			wl.name, fmtDur(bare), fmtDur(instr), fmt.Sprintf("%+.1f%%", r.OverheadPct),
		})
	}
	return table, rep, nil
}
