package bench

import (
	"fmt"
	"time"

	"graphkeys/internal/emmr"
	"graphkeys/internal/mapreduce"
)

// This file defines one runner per experiment of §6. Each returns a
// Table whose rows mirror the series of the corresponding figure panel.

// Exp1VaryP reproduces Fig. 8(a)/(e)/(i): runtime of all five
// algorithms as the worker count p grows (the parallel-scalability
// claim). Row per p, column per algorithm.
func Exp1VaryP(ds Dataset, cfg BuildConfig, ps []int) (*Table, error) {
	w, err := Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Exp-1 (Fig 8 %s): varying p, c=%d d=%d", ds, cfg.C, cfg.D),
		Header: append([]string{"p"}, algoNames()...),
	}
	for _, p := range ps {
		row := []string{fmt.Sprintf("%d", p)}
		for _, a := range Algos {
			m, err := RunAlgo(w, a, p)
			if err != nil {
				return nil, err
			}
			row = append(row, cell(m))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Exp2VaryG reproduces Fig. 8(b)/(f)/(j): runtime as the graph scale
// factor grows, with p fixed (the paper uses p = 4).
func Exp2VaryG(ds Dataset, cfg BuildConfig, scales []float64, p int) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Exp-2 (Fig 8 %s): varying |G|, p=%d", ds, p),
		Header: append([]string{"scale", "|G|"}, algoNames()...),
	}
	for _, s := range scales {
		c := cfg
		c.Scale = s
		w, err := Build(ds, c)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.1f", s), fmt.Sprintf("%d", w.Graph.NumTriples())}
		for _, a := range Algos {
			m, err := RunAlgo(w, a, p)
			if err != nil {
				return nil, err
			}
			row = append(row, cell(m))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Exp3VaryC reproduces Fig. 8(c)/(g)/(k): runtime as the longest
// dependency chain c grows (p and d fixed). The MapReduce round count
// is reported alongside, as the paper calls it out.
func Exp3VaryC(ds Dataset, cfg BuildConfig, cs []int, p int) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Exp-3 (Fig 8 %s): varying c, p=%d d=%d", ds, p, cfg.D),
		Header: append(append([]string{"c"}, algoNames()...), "EMMR rounds"),
	}
	for _, c := range cs {
		bc := cfg
		bc.C = c
		w, err := Build(ds, bc)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", c)}
		var rounds int64
		for _, a := range Algos {
			m, err := RunAlgo(w, a, p)
			if err != nil {
				return nil, err
			}
			row = append(row, cell(m))
			if a == AlgoEMMR {
				rounds = m.Extra["rounds"]
			}
		}
		row = append(row, fmt.Sprintf("%d", rounds))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Exp3VaryD reproduces Fig. 8(d)/(h)/(l): runtime as the key radius d
// grows (p and c fixed), plus the d-neighbor shrink factor of the
// pairing reduction the paper reports for EMOptMR.
func Exp3VaryD(ds Dataset, cfg BuildConfig, dsweep []int, p int) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Exp-3 (Fig 8 %s): varying d, p=%d c=%d", ds, p, cfg.C),
		Header: append(append([]string{"d"}, algoNames()...), "Gd shrink"),
	}
	for _, d := range dsweep {
		bc := cfg
		bc.D = d
		w, err := Build(ds, bc)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", d)}
		var shrink string
		for _, a := range Algos {
			m, err := RunAlgo(w, a, p)
			if err != nil {
				return nil, err
			}
			row = append(row, cell(m))
			if a == AlgoEMOptMR && m.Extra["nbhdReduced"] > 0 {
				shrink = fmt.Sprintf("%.1fx", float64(m.Extra["nbhdNodes"])/float64(m.Extra["nbhdReduced"]))
			}
		}
		row = append(row, shrink)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table2 reproduces Table 2: candidate matches checked by the two
// optimized algorithms versus confirmed matches, per dataset.
func Table2(cfg BuildConfig, p int) (*Table, error) {
	t := &Table{
		Title:  "Table 2: candidate matches vs confirmed matches",
		Header: []string{"Dataset", "Candidates EMOptVC", "Candidates EMOptMR", "Confirmed"},
	}
	for _, ds := range []Dataset{GoogleDS, DBpediaDS, SyntheticDS} {
		w, err := Build(ds, cfg)
		if err != nil {
			return nil, err
		}
		vc, err := RunAlgo(w, AlgoEMOptVC, p)
		if err != nil {
			return nil, err
		}
		mr, err := RunAlgo(w, AlgoEMOptMR, p)
		if err != nil {
			return nil, err
		}
		if vc.Pairs != mr.Pairs {
			return nil, fmt.Errorf("bench: engines disagree on %v (%d vs %d pairs)", ds, vc.Pairs, mr.Pairs)
		}
		t.Rows = append(t.Rows, []string{
			ds.String(),
			fmt.Sprintf("%d", vc.Candidates),
			fmt.Sprintf("%d", mr.Candidates),
			fmt.Sprintf("%d", vc.Pairs),
		})
	}
	return t, nil
}

// Ablations reports the §6 optimization-effectiveness claims: the
// candidate-set reduction, d-neighbor shrink, dependency-gated check
// savings (EMOptMR vs EMMR), the EvalMR-vs-VF2 step ratio, the bounded-
// message savings (EMOptVC vs EMVC), and the product graph size ratio
// |Gp|/|G|.
func Ablations(ds Dataset, cfg BuildConfig, p int) (*Table, error) {
	w, err := Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	base, err := RunAlgo(w, AlgoEMMR, p)
	if err != nil {
		return nil, err
	}
	vf2, err := RunAlgo(w, AlgoEMVF2MR, p)
	if err != nil {
		return nil, err
	}
	opt, err := RunAlgo(w, AlgoEMOptMR, p)
	if err != nil {
		return nil, err
	}
	vc, err := RunAlgo(w, AlgoEMVC, p)
	if err != nil {
		return nil, err
	}
	vcOpt, err := RunAlgo(w, AlgoEMOptVC, p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Optimization ablations (%s, p=%d)", ds, p),
		Header: []string{"metric", "value"},
	}
	addRow := func(metric, value string) { t.Rows = append(t.Rows, []string{metric, value}) }
	addRow("L reduction by pairing",
		fmt.Sprintf("%.0f%% (%d -> %d)",
			100*(1-float64(opt.Candidates)/nonzero(float64(opt.Extra["candidatesUnfiltered"]))),
			opt.Extra["candidatesUnfiltered"], opt.Candidates))
	if opt.Extra["nbhdReduced"] > 0 {
		addRow("Gd shrink by pairing",
			fmt.Sprintf("%.1fx (%d -> %d nodes)",
				float64(opt.Extra["nbhdNodes"])/float64(opt.Extra["nbhdReduced"]),
				opt.Extra["nbhdNodes"], opt.Extra["nbhdReduced"]))
	}
	addRow("checks skipped by dependency gating (EMOptMR)",
		fmt.Sprintf("%d (vs %d performed)", opt.Extra["skipped"], opt.Extra["checks"]))
	addRow("EvalMR vs VF2 search steps",
		fmt.Sprintf("%.1fx fewer (%d vs %d)",
			float64(vf2.Extra["isoSteps"])/nonzero(float64(base.Extra["isoSteps"])),
			base.Extra["isoSteps"], vf2.Extra["isoSteps"]))
	addRow("EMOptVC vs EMVC messages",
		fmt.Sprintf("%.1fx fewer (%d vs %d)",
			float64(vc.Extra["messages"])/nonzero(float64(vcOpt.Extra["messages"])),
			vcOpt.Extra["messages"], vc.Extra["messages"]))
	addRow("EMMR vs EMVF2MR time", ratio(vf2.Elapsed, base.Elapsed))
	addRow("EMOptMR vs EMMR time", ratio(base.Elapsed, opt.Elapsed))
	addRow("EMOptVC vs EMVC time", ratio(vc.Elapsed, vcOpt.Elapsed))
	addRow("EMOptVC vs EMOptMR time", ratio(opt.Elapsed, vcOpt.Elapsed))
	addRow("|Gp| nodes vs |G| triples",
		fmt.Sprintf("%.2f (%d vs %d)",
			float64(vc.Extra["productNodes"])/nonzero(float64(w.Graph.NumTriples())),
			vc.Extra["productNodes"], w.Graph.NumTriples()))
	return t, nil
}

// ClusterComparison reproduces the paper's headline EMVC-vs-EMMR gap
// (§6: EMVC "at least 12.1, 10.9 and 13.5 times faster"). That gap is
// dominated by MapReduce's per-round job-scheduling and HDFS
// materialization costs, which an in-process simulation does not
// naturally pay; this experiment charges an explicit, configurable
// cluster cost model to the MapReduce engines (the vertex-centric
// engines, having no rounds and no materialization barrier, pay
// nothing) and reports the resulting ratios. The default constants are
// conservative for a Hadoop 1.x deployment: 250ms job latency per
// round, 5µs per shuffled KV.
func ClusterComparison(ds Dataset, cfg BuildConfig, p int) (*Table, error) {
	w, err := Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	cost := mapreduce.CostModel{RoundLatency: 250 * time.Millisecond, PerKV: 5 * time.Microsecond}
	t := &Table{
		Title: fmt.Sprintf("Cluster-cost comparison (%s, p=%d, %v/round + %v/KV charged to MapReduce)",
			ds, p, cost.RoundLatency, cost.PerKV),
		Header: []string{"algorithm", "time", "rounds", "vs EMOptVC"},
	}
	vc, err := RunAlgo(w, AlgoEMOptVC, p)
	if err != nil {
		return nil, err
	}
	for _, variant := range []emmr.Variant{emmr.Base, emmr.Opt} {
		start := time.Now()
		res, err := emmr.Run(w.Graph, w.Keys, emmr.Config{P: p, Variant: variant, Cost: cost})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			variant.String(),
			fmtDur(elapsed),
			fmt.Sprintf("%d", res.Stats.Rounds),
			fmt.Sprintf("%.1fx slower", float64(elapsed)/nonzero(float64(vc.Elapsed))),
		})
	}
	t.Rows = append(t.Rows, []string{"EMOptVC", fmtDur(vc.Elapsed), "-", "1.0x"})
	return t, nil
}

func ratio(slow, fast time.Duration) string {
	if fast <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1fx faster (%s vs %s)", float64(slow)/float64(fast), fmtDur(fast), fmtDur(slow))
}

func nonzero(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}

func algoNames() []string {
	var out []string
	for _, a := range Algos {
		out = append(out, a.String())
	}
	return out
}

func cell(m Measurement) string {
	s := fmtDur(m.Elapsed)
	if !m.Correct {
		s += " (WRONG)"
	}
	return s
}
