package bench

import (
	"runtime"
	"testing"
)

// TestParallelChaseSmoke runs the parallel-chase experiment at a small
// scale: results must be identical to the sequential chase at every
// worker count, and on a machine with enough cores the 4-worker run
// must show a real end-to-end speedup (the acceptance target is 2x on
// 4 workers; the test keeps a margin for noisy shared runners).
func TestParallelChaseSmoke(t *testing.T) {
	cfg := DefaultBuild()
	cfg.Scale = 0.6
	_, rep, err := ParallelChaseExp(SyntheticDS, cfg, []int{2, 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs == 0 {
		t.Fatal("reference workload identified nothing")
	}
	var fourWorker *ParallelChaseRun
	for i := range rep.Runs {
		if !rep.Runs[i].Identical {
			t.Fatalf("p=%d: parallel chase diverged from sequential", rep.Runs[i].P)
		}
		if rep.Runs[i].P == 4 {
			fourWorker = &rep.Runs[i]
		}
	}
	if runtime.GOMAXPROCS(0) < 4 || runtime.NumCPU() < 4 {
		t.Skipf("speedup assertion needs >= 4 CPUs (have GOMAXPROCS=%d, NumCPU=%d); measured %.2fx at p=4",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), speedupOrZero(fourWorker))
	}
	if fourWorker == nil {
		t.Fatal("no 4-worker run")
	}
	if fourWorker.Speedup < 1.5 {
		t.Errorf("4-worker speedup %.2fx, want >= 1.5x (acceptance target 2x; seq %.1fms, par %.1fms)",
			fourWorker.Speedup, rep.SeqMillis, fourWorker.Millis)
	}
}

func speedupOrZero(r *ParallelChaseRun) float64 {
	if r == nil {
		return 0
	}
	return r.Speedup
}
