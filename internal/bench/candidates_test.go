package bench

import (
	"runtime"
	"testing"
)

// TestCandidatesExpSmoke runs the streaming-pipeline experiment at a
// smoke size. The byte-identity differential must hold everywhere and
// always; the performance bar — ≥1.3× end-to-end chase or ≥40% less
// candidate-stage allocation on the radius-1 reference workload — is
// asserted like TestRepairExpSmoke: CI runners with 4 cores enforce
// it, smaller machines skip only the perf half.
func TestCandidatesExpSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	_, rep, err := CandidatesExp(1500, 15, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) == 0 {
		t.Fatal("no runs in report")
	}
	for _, run := range rep.Runs {
		if !run.Identical {
			t.Errorf("%s: streamed chase diverged from the materialized oracle", run.Workload)
		}
		if run.Candidates == 0 {
			t.Errorf("%s: empty candidate set — workload is degenerate", run.Workload)
		}
	}
	ref := rep.Runs[0] // buckets-d1 is the reference workload
	if ref.AllocReduction >= 0.40 || ref.SeqSpeedup >= 1.3 || ref.ParSpeedup >= 1.3 {
		return
	}
	if runtime.GOMAXPROCS(0) < 4 || runtime.NumCPU() < 4 {
		t.Skipf("perf bar needs >= 4 CPUs (GOMAXPROCS=%d, NumCPU=%d); measured alloc -%.0f%%, seq %.2fx, par %.2fx",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), ref.AllocReduction*100, ref.SeqSpeedup, ref.ParSpeedup)
	}
	t.Errorf("reference workload below the bar: alloc -%.0f%% (want >= 40%%) and chase %.2fx seq / %.2fx par (want >= 1.3x)",
		ref.AllocReduction*100, ref.SeqSpeedup, ref.ParSpeedup)
}
