package bench

import "testing"

// TestObsOverhead pins the instrumentation budget: the fully
// instrumented write path and repair pass must stay within 5% of the
// bare runs. Timing on shared runners is noisy even best-of-3, so a
// failing measurement is retried a couple of times before it counts.
func TestObsOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector multiplies atomic costs; overhead budget holds for production builds only")
	}
	// A larger-than-smoke workload: `go test ./...` runs packages
	// concurrently, so sub-10ms measurements are at the mercy of the
	// other packages' scheduling — the bigger batch keeps the
	// best-of-reps minima meaningful.
	cfg := DefaultBuild()
	cfg.Scale = 2.0
	const limitPct = 5.0
	const attempts = 3
	var rep *ObsOverheadReport
	for attempt := 1; ; attempt++ {
		var err error
		_, rep, err = ObsOverheadExp(SyntheticDS, cfg, 4, 256)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for _, r := range rep.Runs {
			if r.OverheadPct > worst {
				worst = r.OverheadPct
			}
		}
		if worst <= limitPct {
			break
		}
		if attempt == attempts {
			for _, r := range rep.Runs {
				t.Errorf("%s: instrumented %.1fms vs bare %.1fms = %+.1f%% overhead (limit %.0f%%)",
					r.Workload, r.InstrMillis, r.BareMillis, r.OverheadPct, limitPct)
			}
			return
		}
		t.Logf("attempt %d: worst overhead %+.1f%% > %.0f%%, retrying", attempt, worst, limitPct)
	}
	for _, r := range rep.Runs {
		t.Logf("%s: bare %.1fms, instrumented %.1fms, %+.1f%%", r.Workload, r.BareMillis, r.InstrMillis, r.OverheadPct)
	}
}
