package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"graphkeys"
	"graphkeys/internal/serve"
)

// This file measures the serving layer (internal/serve): client-side
// latency percentiles and sustained QPS per endpoint while point reads
// and asynchronous writes share one Matcher. The point of the
// experiment is the concurrency claim behind the service — readers on
// the RLock path must keep serving at low latency while /apply streams
// mutations through the Writer's coalescing batcher.

// ServeEndpointStats is one endpoint's client-observed latency profile.
type ServeEndpointStats struct {
	Endpoint string  `json:"endpoint"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50Micro float64 `json:"p50_us"`
	P99Micro float64 `json:"p99_us"`
	MaxMicro float64 `json:"max_us"`
}

// ServeReport is the machine-readable outcome (BENCH_serve.json in CI).
type ServeReport struct {
	GOMAXPROCS  int                  `json:"gomaxprocs"`
	Entities    int                  `json:"seed_entities"`
	Readers     int                  `json:"readers"`
	Writers     int                  `json:"writers"`
	WallMillis  float64              `json:"wall_ms"`
	TotalQPS    float64              `json:"total_qps"`
	FinalSeq    uint64               `json:"final_seq"`
	FinalPairs  int                  `json:"final_pairs"`
	Endpoints   []ServeEndpointStats `json:"endpoints"`
	EventsSeen  int                  `json:"sse_events_seen"`
	EventsReset bool                 `json:"sse_reset_seen"`
}

// JSON renders the report.
func (r *ServeReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// serveSamples collects latency samples per endpoint, one bucket per
// worker goroutine to keep the hot path contention-free.
type serveSamples struct {
	name string
	durs []time.Duration
}

func pctMicros(durs []time.Duration, p float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	i := int(p * float64(len(durs)-1))
	return float64(durs[i].Nanoseconds()) / 1000
}

// ServeExp stands a serve.Server over an in-memory matcher seeded with
// nSeed persons, then runs readers goroutines of point reads (/same,
// /entities alternating) and writers goroutines of /apply mutation
// posts (nOps deltas each) against it over real HTTP, plus one SSE
// subscriber counting events. Latency is client-observed
// (request-to-response, connection reuse via the default transport).
func ServeExp(nSeed, nOps, readers, writers int) (*Table, *ServeReport, error) {
	ks, err := graphkeys.ParseKeys("key P for person {\n x -email-> e*\n}")
	if err != nil {
		return nil, nil, err
	}
	g := graphkeys.NewGraph()
	for i := 0; i < nSeed; i++ {
		id := fmt.Sprintf("seed%d", i)
		if err := g.AddEntity(id, "person"); err != nil {
			return nil, nil, err
		}
		if err := g.AddValueTriple(id, "email", fmt.Sprintf("seedmail%d", i/2)); err != nil {
			return nil, nil, err
		}
	}
	m, err := graphkeys.NewMatcher(g, ks, graphkeys.Options{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		return nil, nil, err
	}
	srv := serve.New(m, serve.Options{EventRing: 4096})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := &http.Client{}
	do := func(method, url, body string) (time.Duration, error) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return 0, err
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		t0 := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		d := time.Since(t0)
		if resp.StatusCode >= 400 && resp.StatusCode != http.StatusTooManyRequests {
			return d, fmt.Errorf("%s %s: status %d", method, url, resp.StatusCode)
		}
		return d, nil
	}

	// One SSE subscriber rides along, counting events (it is the
	// subscriber every production deployment has at least one of; its
	// cost is part of the measurement).
	events, resets := 0, false
	sseDone := make(chan struct{})
	sseReq, _ := http.NewRequest("GET", ts.URL+"/subscribe?from=0", nil)
	sseResp, err := http.DefaultTransport.RoundTrip(sseReq)
	if err != nil {
		return nil, nil, err
	}
	go func() {
		defer close(sseDone)
		defer sseResp.Body.Close()
		buf := make([]byte, 32<<10)
		for {
			n, err := sseResp.Body.Read(buf)
			if n > 0 {
				events += strings.Count(string(buf[:n]), "event: change")
				if strings.Contains(string(buf[:n]), "event: reset") {
					resets = true
				}
			}
			if err != nil {
				return
			}
		}
	}()

	var (
		wg        sync.WaitGroup
		writersWG sync.WaitGroup
		errMu     sync.Mutex
		firstErr  error
		allSame   = make([]serveSamples, readers)
		allEnts   = make([]serveSamples, readers)
		allApply  = make([]serveSamples, writers)
		stopRead  = make(chan struct{})
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopRead:
					return
				default:
				}
				j := (r*7919 + i) % nSeed
				if i%2 == 0 {
					d, err := do("GET", fmt.Sprintf("%s/same?a=seed%d&b=seed%d", ts.URL, j, (j+1)%nSeed), "")
					if err != nil {
						fail(err)
						return
					}
					allSame[r].durs = append(allSame[r].durs, d)
				} else {
					d, err := do("GET", fmt.Sprintf("%s/entities?p=email&v=seedmail%d", ts.URL, j/2), "")
					if err != nil {
						fail(err)
						return
					}
					allEnts[r].durs = append(allEnts[r].durs, d)
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		writersWG.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersWG.Done()
			for i := 0; i < nOps; i++ {
				a, b := fmt.Sprintf("w%d_%d_a", w, i), fmt.Sprintf("w%d_%d_b", w, i)
				body := fmt.Sprintf(`{"deltas":[{"ops":[
					{"op":"add_entity","id":"%s","type":"person"},
					{"op":"add_entity","id":"%s","type":"person"},
					{"op":"add_value","s":"%s","p":"email","v":"wm%d_%d"},
					{"op":"add_value","s":"%s","p":"email","v":"wm%d_%d"}
				]}]}`, a, b, a, w, i, b, w, i)
				d, err := do("POST", ts.URL+"/apply", body)
				if err != nil {
					fail(err)
					return
				}
				allApply[w].durs = append(allApply[w].durs, d)
			}
		}(w)
	}
	// The writers bound the run; readers spin until the writers finish,
	// so read latency is measured under sustained write load.
	writersWG.Wait()
	close(stopRead)
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	// Drain the write queue so FinalSeq/FinalPairs describe the full
	// workload, then close (ends the SSE stream).
	if _, err := do("POST", ts.URL+"/apply?wait=1", `{"deltas":[{"ops":[{"op":"add_entity","id":"fin","type":"person"}]}]}`); err != nil {
		return nil, nil, err
	}
	finalSeq := m.Seq()
	finalPairs := len(m.Result().Matches)
	if err := srv.Close(); err != nil {
		return nil, nil, err
	}
	<-sseDone

	rep := &ServeReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Entities:    nSeed,
		Readers:     readers,
		Writers:     writers,
		WallMillis:  ms(wall),
		FinalSeq:    finalSeq,
		FinalPairs:  finalPairs,
		EventsSeen:  events,
		EventsReset: resets,
	}

	table := &Table{
		Title: fmt.Sprintf("Serving layer: %d readers + %d writers x %d deltas over HTTP (seed %d entities, GOMAXPROCS=%d)",
			readers, writers, nOps, nSeed, rep.GOMAXPROCS),
		Header: []string{"endpoint", "requests", "qps", "p50", "p99", "max"},
	}
	totalReqs := 0
	addEndpoint := func(name string, buckets []serveSamples) {
		var durs []time.Duration
		for i := range buckets {
			durs = append(durs, buckets[i].durs...)
		}
		if len(durs) == 0 {
			return
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		st := ServeEndpointStats{
			Endpoint: name,
			Requests: len(durs),
			QPS:      float64(len(durs)) / wall.Seconds(),
			P50Micro: pctMicros(durs, 0.50),
			P99Micro: pctMicros(durs, 0.99),
			MaxMicro: pctMicros(durs, 1.0),
		}
		rep.Endpoints = append(rep.Endpoints, st)
		totalReqs += st.Requests
		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprintf("%d", st.Requests),
			fmt.Sprintf("%.0f", st.QPS),
			fmt.Sprintf("%.0fus", st.P50Micro),
			fmt.Sprintf("%.0fus", st.P99Micro),
			fmt.Sprintf("%.0fus", st.MaxMicro),
		})
	}
	addEndpoint("GET /same", allSame)
	addEndpoint("GET /entities", allEnts)
	addEndpoint("POST /apply", allApply)
	rep.TotalQPS = float64(totalReqs) / wall.Seconds()
	table.Rows = append(table.Rows, []string{
		"total", fmt.Sprintf("%d", totalReqs), fmt.Sprintf("%.0f", rep.TotalQPS), "", "", "",
	})
	return table, rep, nil
}
