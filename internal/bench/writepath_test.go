package bench

import (
	"runtime"
	"testing"
)

// TestWritePathSmoke runs the write-throughput experiment at a small
// scale: every run must end in exactly the serial path's graph, the
// batched path must beat per-delta application even single-writer on
// one core (the amortized maintenance pass guarantees it — "never
// slower at 1 vCPU"), and on a machine with enough cores the 4-writer
// run must clear the acceptance bar of 1.5x over the serialized
// single-writer path.
func TestWritePathSmoke(t *testing.T) {
	cfg := DefaultBuild()
	cfg.Scale = 0.5
	_, rep, err := WritePathExp(SyntheticDS, cfg, []int{1, 4}, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	var four *WritePathRun
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if !run.Identical {
			t.Fatalf("writers=%d: batched application diverged from serial", run.Writers)
		}
		if run.Writers == 4 {
			four = run
		}
	}
	if four == nil {
		t.Fatal("no 4-writer run")
	}
	if four.SpeedupSerial < 1.5 {
		// The amortization alone dwarfs 1.5x on every machine; treat a
		// miss as a real regression regardless of core count.
		t.Errorf("4-writer batched speedup %.2fx over the serial write path, want >= 1.5x (serial %.1fms, batched %.1fms)",
			four.SpeedupSerial, rep.SerialMillis, four.Millis)
	}
	if runtime.GOMAXPROCS(0) < 4 || runtime.NumCPU() < 4 {
		t.Skipf("concurrency margin check needs >= 4 CPUs (have GOMAXPROCS=%d, NumCPU=%d); measured %.2fx vs serial at 4 writers",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), four.SpeedupSerial)
	}
}
