package bench

import (
	"runtime"
	"testing"
)

// TestWritePathSmoke runs the write-throughput experiment at a small
// scale: every run must end in exactly the serial path's graph, the
// batched path must beat per-delta application even single-writer on
// one core (the amortized maintenance pass guarantees it — "never
// slower at 1 vCPU"), and on a machine with enough cores the 4-writer
// run must clear the acceptance bar of 1.5x over the serialized
// single-writer path.
func TestWritePathSmoke(t *testing.T) {
	cfg := DefaultBuild()
	cfg.Scale = 0.5
	_, rep, err := WritePathExp(SyntheticDS, cfg, []int{1, 4}, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	var four *WritePathRun
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if !run.Identical {
			t.Fatalf("writers=%d: batched application diverged from serial", run.Writers)
		}
		if run.Writers == 4 {
			four = run
		}
	}
	if four == nil {
		t.Fatal("no 4-writer run")
	}
	if four.SpeedupSerial < 1.5 {
		// The amortization alone dwarfs 1.5x on every machine; treat a
		// miss as a real regression regardless of core count.
		t.Errorf("4-writer batched speedup %.2fx over the serial write path, want >= 1.5x (serial %.1fms, batched %.1fms)",
			four.SpeedupSerial, rep.SerialMillis, four.Millis)
	}
	if runtime.GOMAXPROCS(0) < 4 || runtime.NumCPU() < 4 {
		t.Skipf("concurrency margin check needs >= 4 CPUs (have GOMAXPROCS=%d, NumCPU=%d); measured %.2fx vs serial at 4 writers",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), four.SpeedupSerial)
	}
}

// TestWritePathAllocSmoke runs the allocating-writer leg at a small
// scale: every run must be name-identical to the 1-writer run AND to
// its own WAL replay (the byte-identity contract of reservation-order
// allocation), and — on a machine with enough cores — 8 concurrent
// allocating writers must clear 1.5x over the 1-writer run, which is
// the serialized throughput the pre-optimistic path pinned every
// allocating writer to.
func TestWritePathAllocSmoke(t *testing.T) {
	runs, err := writePathAllocLeg([]int{1, 8}, 256)
	if err != nil {
		t.Fatal(err)
	}
	var eight *WritePathAllocRun
	for i := range runs {
		run := &runs[i]
		if !run.Identical {
			t.Fatalf("alloc writers=%d: final graph diverged from the 1-writer run", run.Writers)
		}
		if !run.ReplayIdentical {
			t.Fatalf("alloc writers=%d: WAL replay diverged from the live graph", run.Writers)
		}
		if run.Writers == 8 {
			eight = run
		}
	}
	if eight == nil {
		t.Fatal("no 8-writer run")
	}
	if runtime.GOMAXPROCS(0) < 4 || runtime.NumCPU() < 4 {
		t.Skipf("allocating-writer speedup check needs >= 4 CPUs (have GOMAXPROCS=%d, NumCPU=%d); measured %.2fx at 8 writers",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), eight.SpeedupOne)
	}
	if eight.SpeedupOne < 1.5 {
		t.Errorf("8 allocating writers reached %.2fx over the serialized 1-writer path, want >= 1.5x (1-writer %.0f deltas/s, 8-writer %.0f deltas/s)",
			eight.SpeedupOne, runs[0].DeltasPerSec, eight.DeltasPerSec)
	}
}
