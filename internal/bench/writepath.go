package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"graphkeys/internal/graph"
	"graphkeys/internal/inc"
	"graphkeys/internal/obs"
	"graphkeys/internal/wal"
)

// This file benchmarks the planned write path (internal/graph/plan.go)
// end to end: a stream of small deltas driven through the incremental
// engine (the machinery under graphkeys.Matcher.Apply/ApplyBatch),
// comparing the old single-writer shape — one Apply, and with it one
// full incremental maintenance pass, per delta — against the batched
// ApplyAll path at increasing writer counts. CI runs it at GOMAXPROCS
// 1 and 4 and publishes the JSON report as the BENCH_write_path.json
// artifact.
//
// The delta stream touches distinct entities, so batch members have
// disjoint shard footprints and the store's admission control lets
// their mutations apply concurrently; the incremental repair then runs
// once over the merged result instead of once per delta, which is
// where most of the win comes from (and why batching at one writer
// must already beat per-delta Apply — the "never slower at 1 vCPU"
// half of the acceptance bar).

// WritePathRun is one writer-count measurement.
type WritePathRun struct {
	Writers       int     `json:"writers"`
	Millis        float64 `json:"ms"`
	DeltasPerSec  float64 `json:"deltas_per_sec"`
	SpeedupSerial float64 `json:"speedup_vs_serial"`
	SpeedupOne    float64 `json:"speedup_vs_1_writer"`
	Identical     bool    `json:"identical"`
}

// WritePathReport is the machine-readable outcome of the write-path
// experiment.
type WritePathReport struct {
	Dataset      string         `json:"dataset"`
	Triples      int            `json:"triples"`
	Entities     int            `json:"entities"`
	GOMAXPROCS   int            `json:"gomaxprocs"`
	Deltas       int            `json:"deltas"`
	BatchSize    int            `json:"batch_size"`
	SerialMillis float64        `json:"serial_ms"`
	SerialPerSec float64        `json:"serial_deltas_per_sec"`
	Runs         []WritePathRun `json:"runs"`
	// Alloc is the allocating-writer leg: concurrent writers creating
	// fresh entities and literals through the durable group-commit
	// path, the workload the name-level pending-allocation table
	// unlocks (see internal/graph/plan.go).
	Alloc []WritePathAllocRun `json:"allocating"`
}

// WritePathAllocRun is one writer-count measurement of the allocating
// leg: durable deltas (wal.SyncAlways group commit) that each create
// an entity and a value literal under fresh names. The 1-writer run is
// the serialized reference — the PR 5 path conflicted every allocating
// pair, so its throughput was the 1-writer throughput regardless of
// writer count.
type WritePathAllocRun struct {
	Writers         int     `json:"writers"`
	Millis          float64 `json:"ms"`
	DeltasPerSec    float64 `json:"deltas_per_sec"`
	SpeedupOne      float64 `json:"speedup_vs_1_writer"`
	Identical       bool    `json:"identical"`
	ReplayIdentical bool    `json:"replay_identical"`
	// Retry accounting from the optimistic planner, per run.
	PlanRetries      int64 `json:"plan_retries"`
	Replans          int64 `json:"replans"`
	PlanFallbacks    int64 `json:"plan_fallbacks"`
	OptimisticPlans  int64 `json:"plans_optimistic"`
	PendingNameWaits int64 `json:"pending_name_waits"`
	// PhaseMeansNs splits mean per-delta wall time across the write
	// path's phases (the same histograms BenchmarkPlanPhases reads):
	// plan (optimistic pass, no lock), admission wait, plan-mutex hold
	// (admit + revalidate + log + reserve), lower, commit wait.
	PhaseMeansNs map[string]float64 `json:"phase_means_ns"`
}

// JSON renders the report.
func (r *WritePathReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// writePathDeltas derives a delta stream from the workload graph: up
// to nDeltas deltas over distinct entities, each removing one of the
// entity's value triples and adding a replacement, so any subset of
// the stream is mutually independent.
func writePathDeltas(g *graph.Graph, nDeltas int) ([]*graph.Delta, error) {
	type attr struct{ id, pred, lit string }
	var attrs []attr
	seen := make(map[string]bool)
	g.EachTriple(func(s graph.NodeID, p graph.PredID, o graph.NodeID) {
		if !g.IsValue(o) {
			return
		}
		id := g.Label(s)
		if seen[id] {
			return
		}
		seen[id] = true
		attrs = append(attrs, attr{id: id, pred: g.PredName(p), lit: g.Label(o)})
	})
	if len(attrs) == 0 {
		return nil, fmt.Errorf("writepath: workload has no value triples")
	}
	if nDeltas > len(attrs) {
		nDeltas = len(attrs)
	}
	deltas := make([]*graph.Delta, nDeltas)
	for i := 0; i < nDeltas; i++ {
		a := attrs[i]
		d := &graph.Delta{}
		d.RemoveValueTriple(a.id, a.pred, a.lit)
		d.AddValueTriple(a.id, a.pred, fmt.Sprintf("%s-w%d", a.lit, i%7))
		deltas[i] = d
	}
	return deltas, nil
}

// WritePathExp measures delta throughput through the incremental
// engine: the serial per-delta path, then batched ApplyAll at each
// writer count. Each run rebuilds the engine over a fresh copy of the
// workload (Build is deterministic under one config), and every run's
// final graph text is compared against the serial run's.
func WritePathExp(ds Dataset, cfg BuildConfig, writers []int, nDeltas, batchSize int) (*Table, *WritePathReport, error) {
	build := func() (*inc.Engine, *graph.Graph, error) {
		w, err := Build(ds, cfg)
		if err != nil {
			return nil, nil, err
		}
		e, err := inc.New(w.Graph, w.Keys, inc.Options{})
		if err != nil {
			return nil, nil, err
		}
		return e, w.Graph, nil
	}
	probe, err := Build(ds, cfg)
	if err != nil {
		return nil, nil, err
	}
	deltas, err := writePathDeltas(probe.Graph, nDeltas)
	if err != nil {
		return nil, nil, err
	}
	nDeltas = len(deltas)

	finalText := func(g *graph.Graph) (string, error) {
		var sb strings.Builder
		if err := g.WriteText(&sb); err != nil {
			return "", err
		}
		return sb.String(), nil
	}

	// Serial baseline: one Apply (and one maintenance pass) per delta.
	eng, g, err := build()
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	for _, d := range deltas {
		if _, _, err := eng.Apply(d); err != nil {
			return nil, nil, err
		}
	}
	serialDur := time.Since(start)
	serialGraph, err := finalText(g)
	if err != nil {
		return nil, nil, err
	}

	rep := &WritePathReport{
		Dataset:      ds.String(),
		Triples:      probe.Graph.NumTriples(),
		Entities:     probe.Graph.NumEntities(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Deltas:       nDeltas,
		BatchSize:    batchSize,
		SerialMillis: ms(serialDur),
		SerialPerSec: float64(nDeltas) / serialDur.Seconds(),
	}
	table := &Table{
		Title: fmt.Sprintf("Write path: %d deltas through the incremental engine (%s, |G|=%d, batch=%d, GOMAXPROCS=%d)",
			nDeltas, ds, rep.Triples, batchSize, rep.GOMAXPROCS),
		Header: []string{"writers", "time", "deltas/s", "vs serial", "vs 1-writer", "identical"},
		Rows: [][]string{{
			"serial", fmtDur(serialDur), fmt.Sprintf("%.0f", rep.SerialPerSec), "1.00x", "-", "-",
		}},
	}

	var oneWriter time.Duration
	for _, nw := range writers {
		eng, g, err := build()
		if err != nil {
			return nil, nil, err
		}
		start := time.Now()
		for lo := 0; lo < nDeltas; lo += batchSize {
			hi := lo + batchSize
			if hi > nDeltas {
				hi = nDeltas
			}
			if _, _, err := eng.ApplyAll(deltas[lo:hi], nw); err != nil {
				return nil, nil, err
			}
		}
		dur := time.Since(start)
		if oneWriter == 0 {
			oneWriter = dur
		}
		gotGraph, err := finalText(g)
		if err != nil {
			return nil, nil, err
		}
		run := WritePathRun{
			Writers:       nw,
			Millis:        ms(dur),
			DeltasPerSec:  float64(nDeltas) / dur.Seconds(),
			SpeedupSerial: float64(serialDur) / float64(dur),
			SpeedupOne:    float64(oneWriter) / float64(dur),
			Identical:     gotGraph == serialGraph,
		}
		rep.Runs = append(rep.Runs, run)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", nw), fmtDur(dur), fmt.Sprintf("%.0f", run.DeltasPerSec),
			fmt.Sprintf("%.2fx", run.SpeedupSerial), fmt.Sprintf("%.2fx", run.SpeedupOne),
			fmt.Sprintf("%v", run.Identical),
		})
	}

	// Allocating-writer leg: same writer counts, durable group commit,
	// every delta creating fresh names.
	allocRuns, err := writePathAllocLeg(writers, nDeltas)
	if err != nil {
		return nil, nil, err
	}
	rep.Alloc = allocRuns
	for _, run := range allocRuns {
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("alloc-%d", run.Writers), fmt.Sprintf("%.1fms", run.Millis),
			fmt.Sprintf("%.0f", run.DeltasPerSec), "-",
			fmt.Sprintf("%.2fx", run.SpeedupOne),
			fmt.Sprintf("%v", run.Identical && run.ReplayIdentical),
		})
	}
	return table, rep, nil
}

// writePathAllocDeltas builds nDeltas independent allocating deltas:
// each creates a fresh entity with a fresh value literal, so any
// concurrent subset has disjoint name footprints.
func writePathAllocDeltas(nDeltas int) []*graph.Delta {
	deltas := make([]*graph.Delta, nDeltas)
	for i := range deltas {
		id := fmt.Sprintf("alloc-e%d", i)
		deltas[i] = (&graph.Delta{}).
			AddEntity(id, "T").
			AddValueTriple(id, "score", fmt.Sprintf("alloc-v%d", i))
	}
	return deltas
}

// writePathAllocLeg measures allocating-writer throughput through the
// durable write path: a fresh graph + WAL (SyncAlways) per run, the
// delta list partitioned across nw concurrent writers. Before
// name-level pending-allocation tracking, every allocating pair
// conflicted in admission, so throughput was writer-count-invariant;
// now disjoint-name writers plan, reserve, and group-commit
// concurrently — speedup_vs_1_writer is the measured win over that
// serialized (PR 5) behavior. Every run checks two identities: the
// final graph text against the first run's, and a full WAL replay
// against the live graph.
func writePathAllocLeg(writers []int, nDeltas int) ([]WritePathAllocRun, error) {
	deltas := writePathAllocDeltas(nDeltas)
	finalText := func(g *graph.Graph) (string, error) {
		var sb strings.Builder
		if err := g.WriteText(&sb); err != nil {
			return "", err
		}
		return sb.String(), nil
	}

	var runs []WritePathAllocRun
	var oneWriter time.Duration
	var refText string
	for _, nw := range writers {
		dir, err := os.MkdirTemp("", "gk-writepath-alloc")
		if err != nil {
			return nil, err
		}
		run, err := func() (WritePathAllocRun, error) {
			st, err := wal.Open(dir, wal.SyncAlways)
			if err != nil {
				return WritePathAllocRun{}, err
			}
			defer st.Close()
			g := graph.New()
			reg := obs.NewRegistry()
			g.RegisterObs(reg)
			hook := func(ops []graph.DeltaOp) (graph.DeltaCommit, error) {
				_, commit, err := st.Begin(ops)
				if err != nil {
					return nil, err
				}
				return graph.DeltaCommit(commit), nil
			}

			errs := make([]error, nw)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(deltas); i += nw {
						if _, err := g.ApplyDeltaLogged(deltas[i], hook); err != nil {
							errs[w] = err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			dur := time.Since(start)
			for _, err := range errs {
				if err != nil {
					return WritePathAllocRun{}, err
				}
			}

			live, err := finalText(g)
			if err != nil {
				return WritePathAllocRun{}, err
			}
			if err := st.Close(); err != nil {
				return WritePathAllocRun{}, err
			}
			rg, _, err := wal.Replay(dir)
			if err != nil {
				return WritePathAllocRun{}, err
			}
			replayed, err := finalText(rg)
			if err != nil {
				return WritePathAllocRun{}, err
			}
			if refText == "" {
				refText = live
			}
			if oneWriter == 0 {
				oneWriter = dur
			}

			snap := reg.Snapshot()
			phase := func(name string) float64 { return snap.Histograms[name].Mean() }
			return WritePathAllocRun{
				Writers:          nw,
				Millis:           ms(dur),
				DeltasPerSec:     float64(len(deltas)) / dur.Seconds(),
				SpeedupOne:       float64(oneWriter) / float64(dur),
				Identical:        live == refText,
				ReplayIdentical:  replayed == live,
				PlanRetries:      snap.Counters["graph.plan_retries"],
				Replans:          snap.Counters["graph.plan_retries"] + snap.Counters["graph.plan_fallbacks"],
				PlanFallbacks:    snap.Counters["graph.plan_fallbacks"],
				OptimisticPlans:  snap.Counters["graph.plans_optimistic"],
				PendingNameWaits: snap.Counters["graph.pending_name_waits"],
				PhaseMeansNs: map[string]float64{
					"plan":           phase("graph.plan_ns"),
					"admission_wait": phase("graph.admission_wait_ns"),
					"plan_hold":      phase("graph.plan_hold_ns"),
					"lower":          phase("graph.lower_ns"),
					"commit_wait":    phase("graph.commit_wait_ns"),
				},
			}, nil
		}()
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}
