package bench

import (
	"runtime"
	"testing"
)

// TestRepairExpSmoke runs the parallel-repair experiment at a small
// scale: every parallelism must reproduce the sequential run's graph
// and pairs byte-identically (the correctness half of the acceptance
// bar), and on a machine with >= 4 real CPUs the p = 4 run must clear
// the 1.5x repair-throughput bar. On fewer cores the speedup is
// skipped, not asserted — parallel repair degrades to roughly
// sequential wall-clock there, which the identical check still pins.
func TestRepairExpSmoke(t *testing.T) {
	cfg := DefaultBuild()
	cfg.Scale = 1.0
	_, rep, err := RepairExp(SyntheticDS, cfg, []int{2, 4}, 96)
	if err != nil {
		t.Fatal(err)
	}
	var four *RepairRun
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if !run.Identical {
			t.Fatalf("p=%d: parallel repair diverged from sequential", run.Parallelism)
		}
		if run.Parallelism == 4 {
			four = run
		}
	}
	if four == nil {
		t.Fatal("no p=4 run")
	}
	if runtime.GOMAXPROCS(0) < 4 || runtime.NumCPU() < 4 {
		t.Skipf("speedup check needs >= 4 CPUs (have GOMAXPROCS=%d, NumCPU=%d); measured %.2fx at p=4",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), four.Speedup)
	}
	if four.Speedup < 1.5 {
		t.Errorf("p=4 repair speedup %.2fx, want >= 1.5x (sequential %.1fms, parallel %.1fms)",
			four.Speedup, rep.SeqMillis, four.Millis)
	}
}

// TestGroupCommitSmoke runs the group-commit experiment at a small
// scale and checks the shape: both paths complete, every run logs the
// expected number of records, and with >= 4 CPUs the 8-writer group
// commit clears the 2x acceptance bar over fsync-in-plan-lock.
func TestGroupCommitSmoke(t *testing.T) {
	_, runs, err := GroupCommitExp(t.TempDir(), []int{2, 8}, 160)
	if err != nil {
		t.Fatal(err)
	}
	var eight *GroupCommitRun
	for i := range runs {
		r := &runs[i]
		want := uint64((160 / r.Writers) * r.Writers)
		if r.GroupsObserved != want {
			t.Fatalf("writers=%d: WAL holds %d records, want %d", r.Writers, r.GroupsObserved, want)
		}
		if r.Writers == 8 {
			eight = r
		}
	}
	if eight == nil {
		t.Fatal("no 8-writer run")
	}
	if runtime.GOMAXPROCS(0) < 4 || runtime.NumCPU() < 4 {
		t.Skipf("speedup check needs >= 4 CPUs (have GOMAXPROCS=%d, NumCPU=%d); measured %.2fx at 8 writers",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), eight.Speedup)
	}
	if eight.Speedup < 2.0 {
		t.Errorf("8-writer group-commit speedup %.2fx over fsync-in-plan-lock, want >= 2x (in-lock %.1fms, grouped %.1fms)",
			eight.Speedup, eight.InLockMillis, eight.GroupMillis)
	}
}
