package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"graphkeys/internal/chase"
	"graphkeys/internal/gen"
)

// This file benchmarks the parallel chase (EngineParallelChase)
// against the sequential reference on the embench reference graph: the
// end-to-end speedup the shard-partitioned store plus worker-pool
// chase buys, and the identity of the two results (the differential
// the acceptance tests also assert). CI runs it as a smoke and
// publishes the JSON report as the BENCH_parallel_chase.json artifact.

// ParallelChaseRun is one worker-count measurement.
type ParallelChaseRun struct {
	P         int     `json:"p"`
	Millis    float64 `json:"ms"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// ParallelChaseReport is the machine-readable outcome of the
// parallel-chase experiment.
type ParallelChaseReport struct {
	Dataset    string             `json:"dataset"`
	Triples    int                `json:"triples"`
	Entities   int                `json:"entities"`
	Candidates int                `json:"candidates"`
	Pairs      int                `json:"pairs"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	FullSweep  bool               `json:"full_sweep"`
	SeqMillis  float64            `json:"seq_ms"`
	Runs       []ParallelChaseRun `json:"runs"`
}

// JSON renders the report.
func (r *ParallelChaseReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParallelChaseExp measures the parallel chase at each worker count
// against the sequential chase on the given dataset, best of three
// runs each. fullSweep forces the quadratic candidate sweep, which is
// the check-dominated serving workload the worker pool targets (the
// value-indexed path spends most of its time generating candidates,
// not checking them).
func ParallelChaseExp(ds Dataset, cfg BuildConfig, ps []int, fullSweep bool) (*Table, *ParallelChaseReport, error) {
	w, err := Build(ds, cfg)
	if err != nil {
		return nil, nil, err
	}
	seq, seqDur, err := bestOf(3, w, chase.Options{FullSweep: fullSweep})
	if err != nil {
		return nil, nil, err
	}
	rep := &ParallelChaseReport{
		Dataset:    ds.String(),
		Triples:    w.Graph.NumTriples(),
		Entities:   w.Graph.NumEntities(),
		Candidates: seq.Candidates,
		Pairs:      len(seq.Pairs),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		FullSweep:  fullSweep,
		SeqMillis:  ms(seqDur),
	}
	table := &Table{
		Title:  fmt.Sprintf("Parallel chase vs sequential (%s, |G|=%d, L=%d, GOMAXPROCS=%d)", ds, rep.Triples, rep.Candidates, rep.GOMAXPROCS),
		Header: []string{"p", "time", "speedup", "identical"},
		Rows:   [][]string{{"seq", fmtDur(seqDur), "1.00x", "-"}},
	}
	for _, p := range ps {
		par, parDur, err := bestOf(3, w, chase.Options{FullSweep: fullSweep, Parallelism: p})
		if err != nil {
			return nil, nil, err
		}
		run := ParallelChaseRun{
			P:         p,
			Millis:    ms(parDur),
			Speedup:   float64(seqDur) / float64(parDur),
			Identical: samePairs(seq.Pairs, par.Pairs),
		}
		rep.Runs = append(rep.Runs, run)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", p), fmtDur(parDur),
			fmt.Sprintf("%.2fx", run.Speedup), fmt.Sprintf("%v", run.Identical),
		})
	}
	return table, rep, nil
}

// bestOf runs the chase n times and keeps the fastest (the usual
// benchmarking guard against scheduler noise).
func bestOf(n int, w *gen.Workload, opts chase.Options) (*chase.Result, time.Duration, error) {
	var best *chase.Result
	bestDur := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		res, err := chase.Run(w.Graph, w.Keys, opts)
		if err != nil {
			return nil, 0, err
		}
		if d := time.Since(start); d < bestDur {
			best, bestDur = res, d
		}
	}
	return best, bestDur, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
