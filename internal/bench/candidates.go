package bench

import (
	"encoding/json"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"graphkeys/internal/chase"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
)

// CandidatesRun is one workload row of the streaming-pipeline
// experiment: the candidate stage measured twice (materialize L vs
// drain the stream) and the end-to-end chase measured four ways
// (sequential and p-way, materialized oracle vs streamed default).
type CandidatesRun struct {
	Workload   string `json:"workload"`
	Radius     int    `json:"radius"`
	Candidates int    `json:"candidates"`

	// Candidate-stage allocation (bytes, best of 3): building L with
	// CandidatesIndexed versus draining CandidateStream without
	// retaining anything.
	MaterializedAllocBytes uint64 `json:"materialized_alloc_bytes"`
	StreamedAllocBytes     uint64 `json:"streamed_alloc_bytes"`
	// AllocReduction is 1 - streamed/materialized (0.40 = 40% less).
	AllocReduction float64 `json:"alloc_reduction"`

	// End-to-end chase wall clock (ms, best of 3).
	SeqMaterializedMillis float64 `json:"seq_materialized_ms"`
	SeqStreamedMillis     float64 `json:"seq_streamed_ms"`
	SeqSpeedup            float64 `json:"seq_speedup"`
	ParMaterializedMillis float64 `json:"par_materialized_ms"`
	ParStreamedMillis     float64 `json:"par_streamed_ms"`
	ParSpeedup            float64 `json:"par_speedup"`

	// Identical records the differential check: streamed and
	// materialized runs agreed byte for byte (pairs, step log, work
	// counters sequentially; fixpoint pairs at p workers).
	Identical bool `json:"identical"`
}

// CandidatesReport is the JSON artifact CI publishes as
// BENCH_candidates.json.
type CandidatesReport struct {
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Parallelism int             `json:"parallelism"`
	Entities    int             `json:"entities"`
	Buckets     int             `json:"buckets"`
	Runs        []CandidatesRun `json:"runs"`
}

// JSON renders the report for the CI artifact.
func (r *CandidatesReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// bucketWorkloadD1 builds the radius-1 reference workload: n entities
// of one keyed type, each carrying a group value shared by n/buckets
// entities and a tag value shared by half of them. The key anchors on
// both, so the candidate set is the union over buckets of the
// same-tag halves — large enough that materializing L dominates the
// candidate stage, which is exactly what the generator's planted
// duplicates (values shared by two entities) cannot produce.
func bucketWorkloadD1(n, buckets int) (*graph.Graph, *keys.Set, error) {
	g := graph.New()
	grp := make([]graph.NodeID, buckets)
	for i := range grp {
		grp[i] = g.AddValue(fmt.Sprintf("g%d", i))
	}
	tags := []graph.NodeID{g.AddValue("even"), g.AddValue("odd")}
	for i := 0; i < n; i++ {
		e := g.MustAddEntity(fmt.Sprintf("r%d", i), "rec")
		g.MustAddTriple(e, "grp", grp[i%buckets])
		g.MustAddTriple(e, "tag", tags[i%2])
	}
	set, err := keys.ParseString("key QB for rec {\n    x -grp-> g*\n    x -tag-> t*\n}")
	if err != nil {
		return nil, nil, err
	}
	return g, set, nil
}

// bucketWorkloadD2 builds the radius-2 reference workload: each entity
// reaches its group value through a private hub entity, so candidate
// generation goes through the d-hop value buckets rather than direct
// posting lists.
func bucketWorkloadD2(n, buckets int) (*graph.Graph, *keys.Set, error) {
	g := graph.New()
	grp := make([]graph.NodeID, buckets)
	for i := range grp {
		grp[i] = g.AddValue(fmt.Sprintf("g%d", i))
	}
	for i := 0; i < n; i++ {
		e := g.MustAddEntity(fmt.Sprintf("r%d", i), "rec")
		h := g.MustAddEntity(fmt.Sprintf("h%d", i), "hub")
		g.MustAddTriple(e, "via", h)
		g.MustAddTriple(h, "grp", grp[i%buckets])
	}
	set, err := keys.ParseString("key QH for rec {\n    x -via-> _h:hub\n    _h:hub -grp-> g*\n}")
	if err != nil {
		return nil, nil, err
	}
	return g, set, nil
}

// allocBytes measures the bytes allocated by f on a quiesced heap.
// TotalAlloc is cumulative, so the delta counts every allocation the
// candidate stage makes (the materialized path's L buffer growth and
// sort scratch included), which is the comparison the streaming
// pipeline is after.
func allocBytes(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// minAlloc is the best of n allocBytes measurements (GC noise only
// ever inflates the delta).
func minAlloc(n int, f func()) uint64 {
	best := allocBytes(f)
	for i := 1; i < n; i++ {
		if b := allocBytes(f); b < best {
			best = b
		}
	}
	return best
}

// bestChase runs the chase n times and returns the last result with
// the fastest wall clock.
func bestChase(n int, g *graph.Graph, set *keys.Set, opts chase.Options) (*chase.Result, time.Duration, error) {
	var res *chase.Result
	var best time.Duration
	for i := 0; i < n; i++ {
		start := time.Now()
		r, err := chase.Run(g, set, opts)
		if err != nil {
			return nil, 0, err
		}
		el := time.Since(start)
		if res == nil || el < best {
			res, best = r, el
		}
	}
	return res, best, nil
}

// CandidatesExp measures the streaming candidate pipeline against the
// materialized oracle on the two reference workloads (radius-1 posting
// joins, radius-2 value buckets): candidate-stage allocation, and
// end-to-end chase wall clock sequentially and at p workers, with a
// byte-identity differential on every run.
func CandidatesExp(n, buckets, p int) (*Table, *CandidatesReport, error) {
	rep := &CandidatesReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: p,
		Entities:    n,
		Buckets:     buckets,
	}
	t := &Table{
		Title: fmt.Sprintf("Candidate pipeline: materialized vs streamed (n=%d, buckets=%d, p=%d)", n, buckets, p),
		Header: []string{"workload", "d", "|L|", "mat alloc", "stream alloc", "alloc -%",
			"seq mat", "seq stream", "x", fmt.Sprintf("p%d mat", p), fmt.Sprintf("p%d stream", p), "x", "identical"},
	}
	for _, wl := range []struct {
		name   string
		radius int
		build  func(n, buckets int) (*graph.Graph, *keys.Set, error)
	}{
		{"buckets-d1", 1, bucketWorkloadD1},
		{"buckets-d2", 2, bucketWorkloadD2},
	} {
		g, set, err := wl.build(n, buckets)
		if err != nil {
			return nil, nil, err
		}
		m, err := match.New(g, set, match.Options{})
		if err != nil {
			return nil, nil, err
		}
		var nCands int
		matAlloc := minAlloc(3, func() { nCands = len(m.CandidatesIndexed()) })
		streamAlloc := minAlloc(3, func() {
			nCands = 0
			for range m.CandidateStream() {
				nCands++
			}
		})

		seqMat, seqMatDur, err := bestChase(3, g, set, chase.Options{Materialize: true})
		if err != nil {
			return nil, nil, err
		}
		seqStream, seqStreamDur, err := bestChase(3, g, set, chase.Options{})
		if err != nil {
			return nil, nil, err
		}
		parMat, parMatDur, err := bestChase(3, g, set, chase.Options{Parallelism: p, Materialize: true})
		if err != nil {
			return nil, nil, err
		}
		parStream, parStreamDur, err := bestChase(3, g, set, chase.Options{Parallelism: p})
		if err != nil {
			return nil, nil, err
		}

		identical := reflect.DeepEqual(seqStream.Pairs, seqMat.Pairs) &&
			reflect.DeepEqual(seqStream.Steps, seqMat.Steps) &&
			seqStream.Candidates == seqMat.Candidates &&
			seqStream.IsoSteps == seqMat.IsoSteps &&
			samePairs(parStream.Pairs, parMat.Pairs) &&
			samePairs(parStream.Pairs, seqStream.Pairs)

		run := CandidatesRun{
			Workload:               wl.name,
			Radius:                 wl.radius,
			Candidates:             nCands,
			MaterializedAllocBytes: matAlloc,
			StreamedAllocBytes:     streamAlloc,
			AllocReduction:         1 - float64(streamAlloc)/float64(nonzero(float64(matAlloc))),
			SeqMaterializedMillis:  ms(seqMatDur),
			SeqStreamedMillis:      ms(seqStreamDur),
			SeqSpeedup:             ms(seqMatDur) / nonzero(ms(seqStreamDur)),
			ParMaterializedMillis:  ms(parMatDur),
			ParStreamedMillis:      ms(parStreamDur),
			ParSpeedup:             ms(parMatDur) / nonzero(ms(parStreamDur)),
			Identical:              identical,
		}
		rep.Runs = append(rep.Runs, run)
		t.Rows = append(t.Rows, []string{
			wl.name, fmt.Sprintf("%d", wl.radius), fmt.Sprintf("%d", nCands),
			fmt.Sprintf("%dKB", matAlloc/1024), fmt.Sprintf("%dKB", streamAlloc/1024),
			fmt.Sprintf("%.0f%%", run.AllocReduction*100),
			fmt.Sprintf("%.2fms", run.SeqMaterializedMillis), fmt.Sprintf("%.2fms", run.SeqStreamedMillis),
			fmt.Sprintf("%.2fx", run.SeqSpeedup),
			fmt.Sprintf("%.2fms", run.ParMaterializedMillis), fmt.Sprintf("%.2fms", run.ParStreamedMillis),
			fmt.Sprintf("%.2fx", run.ParSpeedup),
			fmt.Sprintf("%v", identical),
		})
	}
	return t, rep, nil
}
