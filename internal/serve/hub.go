package serve

import (
	"sync"

	"graphkeys"
)

// hub fans the matcher's ApplyEvents out to SSE subscribers and keeps
// a bounded replay ring so a reconnecting client can resume from the
// sequence number it last saw without a full state transfer.
//
// Delivery policy: every subscriber has a buffered channel; a
// subscriber that falls ringSize events behind (full channel) is
// dropped — its channel is closed and the handler ends the stream, so
// one slow reader can never block the matcher's write path or grow
// memory without bound. The client reconnects with its last event ID
// and either replays from the ring or receives a reset.
type hub struct {
	mu   sync.Mutex
	ring []graphkeys.ApplyEvent // oldest first, len <= cap
	// evicted is the highest Seq that has been pushed out of the ring
	// (0 when nothing has been evicted): a resume from seq < evicted
	// cannot be satisfied by replay and must reset.
	evicted uint64
	subs    map[*subscriber]struct{}
	closed  bool

	ringSize int
	bufSize  int
}

type subscriber struct {
	ch chan graphkeys.ApplyEvent
}

func newHub(ringSize int) *hub {
	if ringSize < 1 {
		ringSize = 1
	}
	return &hub{
		subs:     make(map[*subscriber]struct{}),
		ringSize: ringSize,
		bufSize:  ringSize,
	}
}

// publish appends the event to the replay ring and offers it to every
// subscriber, dropping subscribers whose buffers are full. Called from
// the matcher's onApply hook (under the matcher's write lock), so it
// must never block.
func (h *hub) publish(ev graphkeys.ApplyEvent) (dropped int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0
	}
	if len(h.ring) >= h.ringSize {
		h.evicted = h.ring[0].Seq
		h.ring = append(h.ring[:0], h.ring[1:]...)
	}
	h.ring = append(h.ring, ev)
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default:
			close(s.ch)
			delete(h.subs, s)
			dropped++
		}
	}
	return dropped
}

// subscribe registers a new subscriber and returns its channel, the
// events to replay (those with Seq > from, oldest first), and whether
// the resume point was too old to replay (reset: events after from
// were already evicted). The replay slice and live channel do not
// overlap or reorder: both are cut under the same lock, so replayed
// events all precede the first channel delivery.
func (h *hub) subscribe(from uint64) (s *subscriber, replay []graphkeys.ApplyEvent, reset bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, nil, false, errClosed
	}
	reset = from < h.evicted
	for _, ev := range h.ring {
		if ev.Seq > from {
			replay = append(replay, ev)
		}
	}
	s = &subscriber{ch: make(chan graphkeys.ApplyEvent, h.bufSize)}
	h.subs[s] = struct{}{}
	return s, replay, reset, nil
}

// unsubscribe removes the subscriber (no-op if it was already dropped).
func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		close(s.ch)
	}
}

// count reports the live subscriber count.
func (h *hub) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// close drops every subscriber (closing their channels ends the SSE
// handlers) and rejects future subscriptions.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
		delete(h.subs, s)
	}
}
