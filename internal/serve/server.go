// Package serve is the HTTP serving surface over a graphkeys.Matcher:
// point reads (same/canonical/attribute lookups), provenance
// explanations, batched mutation ingestion through the async Writer
// with backpressure, and SSE subscription streams of merge/split
// events. The layering follows the substrate/query split the ROADMAP
// names as the exemplar: this package holds no matching logic and no
// state beyond the event replay ring — it translates HTTP to Matcher
// calls and Matcher events to SSE frames.
//
// Consistency: every read endpoint takes the matcher's read lock, so
// a response always reflects a whole-delta boundary — never a
// half-applied batch. Writes are asynchronous (202 Accepted means
// enqueued, not applied); ?wait=1 flushes before responding. SSE
// events carry the post-apply sequence number, so a client that
// replays events from its last seen seq converges to the same pair
// set a fresh full read would return.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"graphkeys"
	"graphkeys/internal/obs"
)

var errClosed = errors.New("serve: server is closed")

// Options configures a Server.
type Options struct {
	// EventRing is the SSE replay ring's capacity in events (and each
	// subscriber's buffer). Zero means DefaultEventRing.
	EventRing int
}

// DefaultEventRing is the default SSE replay-ring capacity.
const DefaultEventRing = 1024

// Server is the HTTP front of one Matcher. Create it with New, mount
// it (it implements http.Handler), and Close it to shut down: drain
// the writer, snapshot (durable matchers), and close the matcher.
type Server struct {
	m   *graphkeys.Matcher
	w   *graphkeys.Writer
	hub *hub
	mux *http.ServeMux

	// serve.* instruments on the matcher's registry: one scrape covers
	// substrate and serving layer alike.
	obInflight    *obs.Gauge
	obSubscribers *obs.Gauge
	obEvents      *obs.Counter
	obDropped     *obs.Counter
	obSame        *obs.Histogram
	obEntity      *obs.Histogram
	obEntities    *obs.Histogram
	obExplain     *obs.Histogram
	obApply       *obs.Histogram
}

// New builds a Server over the matcher. The server installs the
// matcher's OnApply hook (do not install another) and starts a Writer;
// the caller hands the matcher over and interacts through HTTP from
// then on, until Close.
func New(m *graphkeys.Matcher, opts Options) *Server {
	ring := opts.EventRing
	if ring <= 0 {
		ring = DefaultEventRing
	}
	// The instruments are built as locals and closed over below: the
	// registry guarantees them non-nil, and locals (rather than field
	// reads inside closures) keep the obshandle nil-safety contract
	// visible to the linter.
	reg := m.Registry()
	obEvents := reg.Counter("serve.events", "merge/split events published to subscribers")
	obDropped := reg.Counter("serve.events_dropped_subscribers", "subscribers dropped for falling behind")
	obSame := reg.Histogram("serve.same_ns", "GET /same latency", obs.DurationBuckets())
	obEntity := reg.Histogram("serve.entity_ns", "GET /entity latency", obs.DurationBuckets())
	obEntities := reg.Histogram("serve.entities_ns", "GET /entities latency", obs.DurationBuckets())
	obExplain := reg.Histogram("serve.explain_ns", "GET /explain latency", obs.DurationBuckets())
	obApply := reg.Histogram("serve.apply_ns", "POST /apply latency", obs.DurationBuckets())
	s := &Server{
		m:   m,
		hub: newHub(ring),

		obInflight:    reg.Gauge("serve.inflight", "HTTP requests currently being served"),
		obSubscribers: reg.Gauge("serve.subscribers", "live SSE subscribers"),
		obEvents:      obEvents,
		obDropped:     obDropped,
		obSame:        obSame,
		obEntity:      obEntity,
		obEntities:    obEntities,
		obExplain:     obExplain,
		obApply:       obApply,
	}
	// The hook runs under the matcher's write lock; publish only moves
	// the event into subscriber buffers (never blocks), keeping the
	// write path's lock hold bounded.
	// The subscriber gauge is owned by the SSE handlers (each Inc/Dec
	// exactly once around its stream, including when publish drops it);
	// the hook only counts.
	hub := s.hub
	m.SetOnApply(func(ev graphkeys.ApplyEvent) {
		obEvents.Inc()
		if dropped := hub.publish(ev); dropped > 0 {
			obDropped.Add(int64(dropped))
		}
	})
	s.w = m.NewWriter()

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /same", s.instrumented(obSame, s.handleSame))
	s.mux.HandleFunc("GET /entity", s.instrumented(obEntity, s.handleEntity))
	s.mux.HandleFunc("GET /entities", s.instrumented(obEntities, s.handleEntities))
	s.mux.HandleFunc("GET /explain", s.instrumented(obExplain, s.handleExplain))
	s.mux.HandleFunc("POST /apply", s.instrumented(obApply, s.handleApply))
	s.mux.HandleFunc("GET /subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /seq", s.handleSeq)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	// The matcher's own observability surface, on the same mux: one
	// port serves queries and their metrics.
	s.mux.Handle("/metrics", m.MetricsHandler())
	s.mux.Handle("/vars", m.MetricsHandler())
	s.mux.Handle("/events", m.MetricsHandler())
	return s
}

// ServeHTTP dispatches to the server's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close shuts the serving layer down in dependency order: subscribers
// are dropped (their streams end), the writer drains (every accepted
// delta applies), a durable matcher snapshots (compacting the WAL so
// the next open replays nothing), and the matcher's log closes. The
// matcher stays readable afterwards; call Close after (or while) the
// http.Server stops accepting requests.
func (s *Server) Close() error {
	s.hub.close()
	err := s.w.Close()
	if serr := s.m.Snapshot(); serr != nil && !isNonDurable(serr) && err == nil {
		err = serr
	}
	if cerr := s.m.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// isNonDurable reports whether the error is Snapshot's complaint about
// a non-durable matcher — expected when serving an in-memory one.
func isNonDurable(err error) bool {
	return err != nil && err.Error() == "graphkeys: Snapshot on a non-durable Matcher"
}

// instrumented wraps a handler with the in-flight gauge and a latency
// histogram.
func (s *Server) instrumented(h *obs.Histogram, fn http.HandlerFunc) http.HandlerFunc {
	inflight := s.obInflight
	return func(w http.ResponseWriter, r *http.Request) {
		inflight.Inc()
		t0 := h.Start()
		fn(w, r)
		h.ObserveSince(t0)
		inflight.Dec()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSame: GET /same?a=&b= — whether a and b are currently
// identified, with both canonical representatives and the sequence
// number the answer reflects.
func (s *Server) handleSame(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		httpError(w, http.StatusBadRequest, "same requires a= and b=")
		return
	}
	ca, okA := s.m.Canonical(graphkeys.EntityID(a))
	cb, okB := s.m.Canonical(graphkeys.EntityID(b))
	resp := map[string]any{
		"a":    a,
		"b":    b,
		"same": s.m.Same(graphkeys.EntityID(a), graphkeys.EntityID(b)),
		"seq":  s.m.Seq(),
	}
	if okA {
		resp["canonical_a"] = ca
	}
	if okB {
		resp["canonical_b"] = cb
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleEntity: GET /entity?id= — the canonical representative of the
// entity's equivalence class.
func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, "entity requires id=")
		return
	}
	c, ok := s.m.Canonical(graphkeys.EntityID(id))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown entity %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "canonical": c, "seq": s.m.Seq()})
}

// handleEntities: GET /entities?p=&v= — the entities carrying the
// attribute (p, v), off the inverted value index.
func (s *Server) handleEntities(w http.ResponseWriter, r *http.Request) {
	p, v := r.URL.Query().Get("p"), r.URL.Query().Get("v")
	if p == "" {
		httpError(w, http.StatusBadRequest, "entities requires p= and v=")
		return
	}
	ents := s.m.EntitiesWith(p, v)
	if ents == nil {
		ents = []graphkeys.EntityID{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"p": p, "v": v, "entities": ents, "seq": s.m.Seq()})
}

// handleExplain: GET /explain?a=&b= — the witness chain identifying
// the pair (404 when not identified or unknown).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if a == "" || b == "" {
		httpError(w, http.StatusBadRequest, "explain requires a= and b=")
		return
	}
	ex, err := s.m.Explain(graphkeys.EntityID(a), graphkeys.EntityID(b))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

// Op is one mutation of an /apply delta, a tagged union on Op:
//
//	{"op":"add_entity", "id":"e1", "type":"person"}
//	{"op":"add_edge",   "s":"e1", "p":"knows", "o":"e2"}
//	{"op":"add_value",  "s":"e1", "p":"email", "v":"a@b.c"}
//	{"op":"remove_edge", "s":"e1", "p":"knows", "o":"e2"}
//	{"op":"remove_value","s":"e1", "p":"email", "v":"a@b.c"}
//	{"op":"remove_entity","id":"e1"}
type Op struct {
	Op   string `json:"op"`
	ID   string `json:"id,omitempty"`
	Type string `json:"type,omitempty"`
	S    string `json:"s,omitempty"`
	P    string `json:"p,omitempty"`
	O    string `json:"o,omitempty"`
	V    string `json:"v,omitempty"`
}

// ApplyRequest is the POST /apply body: a batch of deltas, each delta
// individually atomic (the ApplyBatch partial semantics apply).
type ApplyRequest struct {
	Deltas []struct {
		Ops []Op `json:"ops"`
	} `json:"deltas"`
}

// buildDelta translates one JSON delta into a graphkeys.Delta.
func buildDelta(ops []Op) (*graphkeys.Delta, error) {
	d := graphkeys.NewDelta()
	for i, op := range ops {
		switch op.Op {
		case "add_entity":
			if op.ID == "" || op.Type == "" {
				return nil, fmt.Errorf("op %d: add_entity requires id and type", i)
			}
			d.AddEntity(graphkeys.EntityID(op.ID), op.Type)
		case "add_edge":
			if op.S == "" || op.P == "" || op.O == "" {
				return nil, fmt.Errorf("op %d: add_edge requires s, p and o", i)
			}
			d.AddEntityTriple(graphkeys.EntityID(op.S), op.P, graphkeys.EntityID(op.O))
		case "add_value":
			if op.S == "" || op.P == "" {
				return nil, fmt.Errorf("op %d: add_value requires s, p and v", i)
			}
			d.AddValueTriple(graphkeys.EntityID(op.S), op.P, op.V)
		case "remove_edge":
			if op.S == "" || op.P == "" || op.O == "" {
				return nil, fmt.Errorf("op %d: remove_edge requires s, p and o", i)
			}
			d.RemoveEntityTriple(graphkeys.EntityID(op.S), op.P, graphkeys.EntityID(op.O))
		case "remove_value":
			if op.S == "" || op.P == "" {
				return nil, fmt.Errorf("op %d: remove_value requires s, p and v", i)
			}
			d.RemoveValueTriple(graphkeys.EntityID(op.S), op.P, op.V)
		case "remove_entity":
			if op.ID == "" {
				return nil, fmt.Errorf("op %d: remove_entity requires id", i)
			}
			d.RemoveEntity(graphkeys.EntityID(op.ID))
		default:
			return nil, fmt.Errorf("op %d: unknown op %q", i, op.Op)
		}
	}
	return d, nil
}

// handleApply: POST /apply — enqueue the request's deltas on the
// writer. 202 means accepted (asynchronous; ?wait=1 flushes first),
// 429 means the queue is full (shed and retry), 503 means the write
// path is down (writer closed or sticky error).
func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	var req ApplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad apply body: %v", err)
		return
	}
	if len(req.Deltas) == 0 {
		httpError(w, http.StatusBadRequest, "apply requires at least one delta")
		return
	}
	ds := make([]*graphkeys.Delta, 0, len(req.Deltas))
	for i, jd := range req.Deltas {
		d, err := buildDelta(jd.Ops)
		if err != nil {
			httpError(w, http.StatusBadRequest, "delta %d: %v", i, err)
			return
		}
		ds = append(ds, d)
	}
	for i, d := range ds {
		if err := s.w.TryApply(d); err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, graphkeys.ErrWriterBusy) {
				status = http.StatusTooManyRequests
			}
			// Deltas before i are already enqueued and will apply;
			// report the split so the client can retry the remainder.
			writeJSON(w, status, map[string]any{
				"error":    err.Error(),
				"enqueued": i,
				"rejected": len(ds) - i,
			})
			return
		}
	}
	if r.URL.Query().Get("wait") == "1" {
		if err := s.w.Flush(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error":    err.Error(),
				"enqueued": len(ds),
			})
			return
		}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"enqueued": len(ds), "seq": s.m.Seq()})
}

// handleSeq: GET /seq — the matcher's current sequence number, the
// resume point for a fresh subscriber that first reads full state.
func (s *Server) handleSeq(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"seq": s.m.Seq()})
}

// event is the SSE data payload of one merge/split event.
type event struct {
	Seq     uint64           `json:"seq"`
	Added   []graphkeys.Pair `json:"added,omitempty"`
	Removed []graphkeys.Pair `json:"removed,omitempty"`
}

// handleSubscribe: GET /subscribe — an SSE stream of merge/split
// events. Each frame is
//
//	id: <seq>
//	event: change
//	data: {"seq":N,"added":[{"A":..,"B":..}],"removed":[...]}
//
// Resume with ?from=<seq> or the standard Last-Event-ID header: events
// with Seq > from replay from the ring first. When the resume point
// has already been evicted the stream starts with "event: reset" —
// the client must refetch full state (e.g. /seq plus point reads)
// before trusting the stream again. Subscribers that fall a full ring
// behind are disconnected (drop-and-reconnect beats unbounded
// buffering; the ring makes the reconnect cheap).
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var from uint64
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad from=%q: %v", q, err)
			return
		}
		from = v
	} else if h := r.Header.Get("Last-Event-ID"); h != "" {
		if v, err := strconv.ParseUint(h, 10, 64); err == nil {
			from = v
		}
	}
	sub, replay, reset, err := s.hub.subscribe(from)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	subscribers := s.obSubscribers
	subscribers.Inc()
	defer func() {
		// unsubscribe is a no-op if publish or close already dropped us;
		// the gauge must decrement exactly once either way.
		s.hub.unsubscribe(sub)
		subscribers.Dec()
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if reset {
		fmt.Fprintf(w, "event: reset\ndata: {\"seq\":%d}\n\n", s.m.Seq())
	}
	write := func(ev graphkeys.ApplyEvent) bool {
		data, err := json.Marshal(event{Seq: ev.Seq, Added: ev.Added, Removed: ev.Removed})
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: change\ndata: %s\n\n", ev.Seq, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return // dropped (slow) or server closing
			}
			if !write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
