package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphkeys"
)

// testKeys is one value-anchored key: two persons sharing an email are
// the same entity.
const testKeys = "key P for person {\n    x -email-> e*\n}\n"

func newTestServer(t *testing.T, durable bool) (*Server, *graphkeys.Matcher, *httptest.Server) {
	t.Helper()
	ks, err := graphkeys.ParseKeys(testKeys)
	if err != nil {
		t.Fatal(err)
	}
	var m *graphkeys.Matcher
	if durable {
		m, err = graphkeys.OpenMatcher(t.TempDir(), ks, graphkeys.Options{})
	} else {
		m, err = graphkeys.NewMatcher(graphkeys.NewGraph(), ks, graphkeys.Options{})
	}
	if err != nil {
		t.Fatal(err)
	}
	s := New(m, Options{EventRing: 64})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, m, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postApply(t *testing.T, base string, wait bool, body string) (int, map[string]any) {
	t.Helper()
	url := base + "/apply"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /apply: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST /apply: decode: %v", err)
	}
	return resp.StatusCode, out
}

// addPersonDelta is the JSON delta merging two persons via a shared
// email.
func addPersonDelta(a, b, email string) string {
	return fmt.Sprintf(`{"deltas":[{"ops":[
		{"op":"add_entity","id":"%s","type":"person"},
		{"op":"add_entity","id":"%s","type":"person"},
		{"op":"add_value","s":"%s","p":"email","v":"%s"},
		{"op":"add_value","s":"%s","p":"email","v":"%s"}
	]}]}`, a, b, a, email, b, email)
}

// TestServeEndpoints drives the point-read surface through HTTP.
func TestServeEndpoints(t *testing.T) {
	_, m, ts := newTestServer(t, false)
	code, resp := postApply(t, ts.URL, true, addPersonDelta("alice", "al", "a@x.org"))
	if code != http.StatusAccepted {
		t.Fatalf("apply: status %d (%v)", code, resp)
	}

	var same struct {
		Same bool   `json:"same"`
		Seq  uint64 `json:"seq"`
	}
	if code := getJSON(t, ts.URL+"/same?a=alice&b=al", &same); code != 200 || !same.Same {
		t.Fatalf("/same?a=alice&b=al: status %d same=%v", code, same.Same)
	}
	if code := getJSON(t, ts.URL+"/same?a=alice&b=nobody", &same); code != 200 || same.Same {
		t.Fatalf("/same with unknown entity: status %d same=%v", code, same.Same)
	}

	var ent struct {
		Canonical string `json:"canonical"`
	}
	var ent2 struct {
		Canonical string `json:"canonical"`
	}
	if code := getJSON(t, ts.URL+"/entity?id=alice", &ent); code != 200 {
		t.Fatalf("/entity?id=alice: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/entity?id=al", &ent2); code != 200 {
		t.Fatalf("/entity?id=al: status %d", code)
	}
	if ent.Canonical != ent2.Canonical {
		t.Fatalf("canonical(alice)=%q != canonical(al)=%q", ent.Canonical, ent2.Canonical)
	}
	if code := getJSON(t, ts.URL+"/entity?id=nobody", nil); code != http.StatusNotFound {
		t.Fatalf("/entity unknown: status %d, want 404", code)
	}

	var ents struct {
		Entities []string `json:"entities"`
	}
	if code := getJSON(t, ts.URL+"/entities?p=email&v=a@x.org", &ents); code != 200 {
		t.Fatalf("/entities: status %d", code)
	}
	if len(ents.Entities) != 2 {
		t.Fatalf("/entities = %v, want both persons", ents.Entities)
	}

	var ex struct {
		Steps []struct {
			Key string `json:"Key"`
		} `json:"Steps"`
	}
	if code := getJSON(t, ts.URL+"/explain?a=alice&b=al", &ex); code != 200 || len(ex.Steps) == 0 {
		t.Fatalf("/explain: status %d steps=%d", code, len(ex.Steps))
	}
	if code := getJSON(t, ts.URL+"/explain?a=alice&b=nobody", nil); code != http.StatusNotFound {
		t.Fatalf("/explain unidentified: status %d, want 404", code)
	}

	// Bad requests.
	if code := getJSON(t, ts.URL+"/same?a=alice", nil); code != http.StatusBadRequest {
		t.Fatalf("/same missing b: status %d, want 400", code)
	}
	if code, _ := postApply(t, ts.URL, false, `{"deltas":[{"ops":[{"op":"bogus"}]}]}`); code != http.StatusBadRequest {
		t.Fatalf("apply with unknown op: status %d, want 400", code)
	}

	// The metrics surface is mounted and carries serve.* instruments.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	for _, want := range []string{"serve_same_ns", "serve_apply_ns", "engine_parallel_calls"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics lacks %s", want)
		}
	}
	_ = m
}

// sseClient reads change events off a /subscribe stream into a
// channel. It stops at stream end.
type sseEvent struct {
	Seq     uint64           `json:"seq"`
	Added   []graphkeys.Pair `json:"added"`
	Removed []graphkeys.Pair `json:"removed"`
	reset   bool
}

func subscribeSSE(t *testing.T, url string) (<-chan sseEvent, func()) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	ch := make(chan sseEvent, 256)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var isReset bool
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				isReset = strings.TrimPrefix(line, "event: ") == "reset"
			case strings.HasPrefix(line, "data: "):
				var ev sseEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					return
				}
				ev.reset = isReset
				ch <- ev
			}
		}
	}()
	return ch, func() { resp.Body.Close() }
}

// pairKey normalizes a pair into an order-independent map key.
func pairKey(p graphkeys.Pair) [2]string {
	a, b := string(p.A), string(p.B)
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// TestServeConcurrentSSEDifferential is the end-to-end acceptance
// test: a durable matcher serves concurrent /same + /entities readers
// while /apply streams mutations (merges and splits), and an SSE
// subscriber's events, replayed over the initial pair set, reproduce
// exactly Matcher.Result(). Run with -race in CI.
func TestServeConcurrentSSEDifferential(t *testing.T) {
	_, m, ts := newTestServer(t, true)

	// Seed a couple of groups so readers have something to hit.
	if code, resp := postApply(t, ts.URL, true, addPersonDelta("seed_a", "seed_b", "seed@x.org")); code != http.StatusAccepted {
		t.Fatalf("seed: status %d (%v)", code, resp)
	}
	startSeq := m.Seq()
	initial := make(map[[2]string]bool)
	for _, p := range m.Result().Matches {
		initial[pairKey(p)] = true
	}

	events, stop := subscribeSSE(t, fmt.Sprintf("%s/subscribe?from=%d", ts.URL, startSeq))
	defer stop()

	const (
		writers   = 4
		readers   = 4
		perWriter = 8
	)
	var wg sync.WaitGroup
	stopRead := make(chan struct{})

	// Readers: point reads must never error while writes stream.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopRead:
					return
				default:
				}
				g := (r + i) % writers
				urls := []string{
					fmt.Sprintf("%s/same?a=w%d_%d_a&b=w%d_%d_b", ts.URL, g, i%perWriter, g, i%perWriter),
					fmt.Sprintf("%s/entities?p=email&v=w%d_%d@x.org", ts.URL, g, i%perWriter),
					ts.URL + "/same?a=seed_a&b=seed_b",
					ts.URL + "/seq",
				}
				resp, err := http.Get(urls[i%len(urls)])
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader: status %d", resp.StatusCode)
					return
				}
			}
		}(r)
	}

	// Writers: merge two fresh persons per step, then split some of
	// them again by removing one side's email.
	werr := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				a, b := fmt.Sprintf("w%d_%d_a", w, i), fmt.Sprintf("w%d_%d_b", w, i)
				email := fmt.Sprintf("w%d_%d@x.org", w, i)
				if code, resp := postApply(t, ts.URL, false, addPersonDelta(a, b, email)); code != http.StatusAccepted {
					werr <- fmt.Errorf("writer %d merge %d: status %d (%v)", w, i, code, resp)
					return
				}
				if i%2 == 1 {
					// Split the pair again: removing b's email destroys
					// the witness.
					body := fmt.Sprintf(`{"deltas":[{"ops":[{"op":"remove_value","s":"%s","p":"email","v":"%s"}]}]}`, b, email)
					if code, resp := postApply(t, ts.URL, false, body); code != http.StatusAccepted {
						werr <- fmt.Errorf("writer %d split %d: status %d (%v)", w, i, code, resp)
						return
					}
				}
			}
			werr <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-werr; err != nil {
			t.Fatal(err)
		}
	}
	close(stopRead)

	// Sentinel: a final merge whose event marks "you have seen
	// everything" — /apply?wait=1 flushes the writer first, so the
	// sentinel's event is the last one published.
	if code, resp := postApply(t, ts.URL, true, addPersonDelta("fin_a", "fin_b", "fin@x.org")); code != http.StatusAccepted {
		t.Fatalf("sentinel: status %d (%v)", code, resp)
	}
	wg.Wait()

	got := make(map[[2]string]bool)
	for k := range initial {
		got[k] = true
	}
	sentinel := pairKey(graphkeys.Pair{A: "fin_a", B: "fin_b"})
	deadline := time.After(30 * time.Second)
	var lastSeq uint64
loop:
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("SSE stream ended before the sentinel event")
			}
			if ev.reset {
				t.Fatalf("unexpected reset event (ring too small for workload?)")
			}
			if ev.Seq < lastSeq {
				t.Fatalf("events out of order: %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			for _, p := range ev.Added {
				got[pairKey(p)] = true
			}
			for _, p := range ev.Removed {
				delete(got, pairKey(p))
			}
			if got[sentinel] {
				break loop
			}
		case <-deadline:
			t.Fatal("timed out waiting for the sentinel event")
		}
	}

	want := make(map[[2]string]bool)
	for _, p := range m.Result().Matches {
		want[pairKey(p)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d pairs, matcher has %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("pair %v in Result but not reconstructed from events", k)
		}
	}
}

// TestServeSSEResumeAndReset: a subscriber resuming from a seq still
// in the ring replays the missed events; one resuming from before the
// ring's oldest retained event gets a reset frame first.
func TestServeSSEResumeAndReset(t *testing.T) {
	_, m, ts := newTestServer(t, false)

	// Produce more events than the 64-slot ring holds.
	for i := 0; i < 80; i++ {
		a, b := fmt.Sprintf("r%d_a", i), fmt.Sprintf("r%d_b", i)
		if code, resp := postApply(t, ts.URL, true, addPersonDelta(a, b, fmt.Sprintf("r%d@x.org", i))); code != http.StatusAccepted {
			t.Fatalf("apply %d: status %d (%v)", i, code, resp)
		}
	}
	cur := m.Seq()

	// Resume from the current seq: nothing to replay, and the next
	// event arrives live.
	events, stop := subscribeSSE(t, fmt.Sprintf("%s/subscribe?from=%d", ts.URL, cur))
	defer stop()
	if code, resp := postApply(t, ts.URL, true, addPersonDelta("live_a", "live_b", "live@x.org")); code != http.StatusAccepted {
		t.Fatalf("live apply: status %d (%v)", code, resp)
	}
	select {
	case ev, ok := <-events:
		if !ok {
			t.Fatal("stream closed")
		}
		if ev.reset {
			t.Fatalf("resume from current seq must not reset")
		}
		found := false
		for _, p := range ev.Added {
			if pairKey(p) == pairKey(graphkeys.Pair{A: "live_a", B: "live_b"}) {
				found = true
			}
		}
		if !found {
			t.Fatalf("live event lacks the expected pair: %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for live event")
	}

	// Resume from 0: that history left the 64-slot ring long ago — the
	// first frame must be a reset.
	events2, stop2 := subscribeSSE(t, ts.URL+"/subscribe?from=0")
	defer stop2()
	select {
	case ev, ok := <-events2:
		if !ok {
			t.Fatal("stream closed")
		}
		if !ev.reset {
			t.Fatalf("resume from 0 after eviction: first frame %+v, want reset", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for reset frame")
	}
}

// TestServeBackpressureAndClose: /apply on a closed server maps to
// 503; Close drains the writer so accepted deltas are visible
// afterwards; closing twice is safe.
func TestServeClose(t *testing.T) {
	s, m, ts := newTestServer(t, true)
	if code, resp := postApply(t, ts.URL, false, addPersonDelta("c_a", "c_b", "c@x.org")); code != http.StatusAccepted {
		t.Fatalf("apply: status %d (%v)", code, resp)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The accepted delta drained before the WAL closed.
	if !m.Same("c_a", "c_b") {
		t.Fatal("delta accepted before Close was lost")
	}
	// Writes now fail with 503 (writer closed).
	if code, _ := postApply(t, ts.URL, false, addPersonDelta("d_a", "d_b", "d@x.org")); code != http.StatusServiceUnavailable {
		t.Fatalf("apply after close: status %d, want 503", code)
	}
	// Reads still serve.
	var same struct {
		Same bool `json:"same"`
	}
	if code := getJSON(t, ts.URL+"/same?a=c_a&b=c_b", &same); code != 200 || !same.Same {
		t.Fatalf("read after close: status %d same=%v", code, same.Same)
	}
}
