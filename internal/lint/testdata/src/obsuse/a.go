package obsuse

import (
	"fmt"

	"internal/obs"
)

type metrics struct {
	hits *obs.Counter
	wait *obs.Histogram
}

// Reading a handle field off a local (wired elsewhere, possibly nil)
// without a guard.
func unguarded(ms map[string]*metrics, key string) {
	m := ms[key]
	m.hits.Inc() // want "without a nil guard"
}

// A nil check anywhere in the function counts.
func guarded(ms map[string]*metrics, key string) {
	m := ms[key]
	if m.hits == nil {
		return
	}
	m.hits.Inc()
}

type bundle struct {
	admission *obs.Histogram
}

// The accessor pattern: a method of the owning struct picks the
// field; the handle's methods absorb nil.
func (b *bundle) admissionWait() *obs.Histogram { return b.admission }

func histOf(b *bundle, pick func(*bundle) *obs.Histogram) *obs.Histogram {
	if b == nil {
		return nil
	}
	return pick(b)
}

// A closure parameter is the same contract as a method receiver.
func wired(b *bundle) *obs.Histogram {
	return histOf(b, func(o *bundle) *obs.Histogram { return o.admission })
}

// Assigning INTO a handle field is wiring, not instrumentation.
func wire(reg map[string]*obs.Histogram) *bundle {
	b := &bundle{}
	b.admission = reg["admission_wait"]
	return b
}

// Per-event calls must not allocate their arguments.
func perEventAlloc(v *obs.CounterVec, h *obs.Histogram, phase string, n int) {
	v.Inc(fmt.Sprintf("phase-%d", n)) // want "must not allocate"
	v.Inc("phase-" + phase)           // want "must not allocate"
	v.Inc("planned")
	const prefix = "phase-"
	v.Inc(prefix + "lower")
	h.Observe(float64(n))
}

func spanName(t *obs.Tracer, i int) {
	sp := t.Begin(fmt.Sprintf("round-%d", i)) // want "must not allocate"
	sp.End()
}
