// Package slices is a minimal stand-in for the standard library's
// slices package (matched by path and name; see the sort shim).
package slices

func Sort[E any](x []E)                                 {}
func SortFunc[E any](x []E, cmp func(a, b E) int)       {}
func SortStableFunc[E any](x []E, cmp func(a, b E) int) {}
