package lockcontract

import (
	"sync"

	"internal/engine"
	"internal/graph"
)

// Fixtures for the blocking-call rule: nothing that can block — an
// fsync, a commit wait, a WaitGroup wait, a parallel fan-out — may run
// while the plan mutex is held.

type planner struct {
	mu sync.Mutex
}

type logFile struct{}

func (f *logFile) Sync() error { return nil }

type store struct {
	pl planner
	f  logFile
	wg sync.WaitGroup
}

func (s *store) fsyncUnderLock() {
	s.pl.mu.Lock()
	s.f.Sync() // want "while the plan mutex is held"
	s.pl.mu.Unlock()
}

func (s *store) fsyncAfterUnlock() error {
	s.pl.mu.Lock()
	s.pl.mu.Unlock()
	return s.f.Sync()
}

func (s *store) parallelUnderLock(n int) {
	s.pl.mu.Lock()
	engine.Parallel(engine.Workers(0), n, func(i int) {}) // want "while the plan mutex is held"
	s.pl.mu.Unlock()
}

func (s *store) waitUnderLock() {
	s.pl.mu.Lock()
	s.wg.Wait() // want "while the plan mutex is held"
	s.pl.mu.Unlock()
}

func (s *store) commitUnderLock(commit graph.DeltaCommit) error {
	s.pl.mu.Lock()
	err := commit() // want "while the plan mutex is held"
	s.pl.mu.Unlock()
	return err
}

func (s *store) commitAfterUnlock(commit graph.DeltaCommit) error {
	s.pl.mu.Lock()
	s.pl.mu.Unlock()
	return commit()
}

// A deferred unlock keeps the region open to the end of the function.
func (s *store) deferredUnlock() error {
	s.pl.mu.Lock()
	defer s.pl.mu.Unlock()
	return s.f.Sync() // want "while the plan mutex is held"
}

// Cond.Wait releases the mutex it guards — that is the admission
// protocol itself, not a violation.
type admission struct {
	planMu sync.Mutex
	cond   *sync.Cond
}

func (a *admission) admit() {
	a.planMu.Lock()
	a.cond.Wait()
	a.planMu.Unlock()
}

// Fixtures for the work-stealing pool: a pool fan-out, a submission,
// or a Job.Wait under the plan mutex all couple the locked region to
// the pool's progress — submit before locking or after unlocking.
type repairPlanner struct {
	mu   sync.Mutex
	pool *engine.Pool
}

func (r *repairPlanner) fanOutUnderLock(n int) {
	r.mu.Lock()
	r.pool.Parallel(2, n, func(i int) {}) // want "while the plan mutex is held"
	r.mu.Unlock()
}

func (r *repairPlanner) submitUnderLock(n int) *engine.Job {
	r.mu.Lock()
	j := r.pool.Submit(2, n, func(i int) {}) // want "while the plan mutex is held"
	r.mu.Unlock()
	return j
}

func (r *repairPlanner) waitUnderLock(j *engine.Job) {
	r.mu.Lock()
	j.Wait() // want "while the plan mutex is held"
	r.mu.Unlock()
}

func (r *repairPlanner) submitThenWaitAfterUnlock(n int) {
	r.mu.Lock()
	r.mu.Unlock()
	r.pool.Submit(2, n, func(i int) {}).Wait()
}
