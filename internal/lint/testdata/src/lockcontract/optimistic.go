package lockcontract

// Fixtures for the optimistic-plan contract (rule 4): footprint
// recording happens OFF the plan mutex, revalidation happens UNDER it.

// footprint mirrors the planner's read-recording type by name; rule 4
// matches its methods by receiver type and the fpXxx helpers by name.
type footprint struct {
	epochs map[int]uint64
}

func (fp *footprint) observe(si int, e uint64) {
	fp.epochs[si] = e
}

type planStore struct {
	pl planner
}

func (s *planStore) fpPresent(fp *footprint, n int) bool {
	fp.observe(n, 0)
	return false
}

func (s *planStore) revalidate(fp *footprint) bool {
	return len(fp.epochs) == 0
}

// Recording off the mutex, revalidating under it: the contract.
func (s *planStore) planOptimistically(fp *footprint) bool {
	s.fpPresent(fp, 1)
	fp.observe(2, 0)
	s.pl.mu.Lock()
	ok := s.revalidate(fp)
	s.pl.mu.Unlock()
	return ok
}

// Recording under the mutex re-serializes planning.
func (s *planStore) recordUnderLock(fp *footprint) {
	s.pl.mu.Lock()
	s.fpPresent(fp, 1) // want "footprint recording .* under the plan mutex"
	fp.observe(2, 0)   // want "footprint recording .* under the plan mutex"
	s.pl.mu.Unlock()
}

// A deferred unlock keeps the region open to the end of the function.
func (s *planStore) recordUnderDeferredLock(fp *footprint) {
	s.pl.mu.Lock()
	defer s.pl.mu.Unlock()
	s.fpPresent(fp, 1) // want "footprint recording .* under the plan mutex"
}

// Revalidating without the mutex proves nothing.
func (s *planStore) revalidateUnlocked(fp *footprint) bool {
	return s.revalidate(fp) // want "revalidation outside the plan mutex"
}

// Revalidating after the unlock is outside the locked interval.
func (s *planStore) revalidateAfterUnlock(fp *footprint) bool {
	s.pl.mu.Lock()
	s.pl.mu.Unlock()
	return s.revalidate(fp) // want "revalidation outside the plan mutex"
}
