// Package os is a minimal stand-in for the standard library's os
// package (matched by path and name; see the sort shim).
package os

type File struct{}

func (f *File) Sync() error  { return nil }
func (f *File) Close() error { return nil }

func Rename(oldpath, newpath string) error { return nil }

func Create(name string) (*File, error) { return nil, nil }
