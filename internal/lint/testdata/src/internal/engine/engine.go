// Package engine shims graphkeys/internal/engine for the fixtures:
// the analyzers match engine.Parallel, Pool.Submit and Job.Wait by
// path suffix, receiver and name.
package engine

func Workers(p int) int { return p }

func Parallel(workers, n int, fn func(i int)) {}

// Pool and Job shim the persistent work-stealing pool.
type Pool struct{}

func NewPool(size int) *Pool { return &Pool{} }

func (p *Pool) Close() {}

func (p *Pool) Parallel(workers, n int, fn func(i int)) {}

func (p *Pool) Submit(workers, n int, fn func(i int)) *Job { return &Job{} }

type Job struct{}

func (j *Job) Wait() {}
