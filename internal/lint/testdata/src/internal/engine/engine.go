// Package engine shims graphkeys/internal/engine for the fixtures:
// the analyzers match engine.Parallel by path suffix and name.
package engine

func Workers(p int) int { return p }

func Parallel(workers, n int, fn func(i int)) {}
