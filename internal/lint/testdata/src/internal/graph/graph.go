// Package graph shims graphkeys/internal/graph for the fixtures: the
// Graph mutator surface for the read-only-engine rule, the
// DeltaCommit hook type for the blocking-call and dropped-error
// rules, and (in shard.go) the shard struct for the shard-lock rule.
package graph

type Graph struct{}

func (g *Graph) AddEntity(id, typ string) int32     { return 0 }
func (g *Graph) MustAddEntity(id, typ string) int32 { return 0 }
func (g *Graph) AddValue(lit string) int32          { return 0 }
func (g *Graph) AddTriple(s, p, o int32) error      { return nil }
func (g *Graph) MustAddTriple(s, p, o int32)        {}
func (g *Graph) RemoveTriple(s, p, o int32) bool    { return false }
func (g *Graph) RemoveTripleID(id int64) bool       { return false }
func (g *Graph) ApplyDelta(d *Delta) error          { return nil }
func (g *Graph) ApplyDeltaLogged(d *Delta) error    { return nil }

func (g *Graph) Out(n int32) []int32  { return nil }
func (g *Graph) TypeOf(n int32) int32 { return 0 }

type Delta struct{}

// DeltaCommit is the group-commit wait handed back by the write-ahead
// hook.
type DeltaCommit func() error
