package graph

import "sync"

// Fixtures for the shard-lock rule of lockcontract: field access on a
// shard-typed value must happen under the shard's own lock, or on a
// *shard received as a parameter (the caller then holds the lock).

type shard struct {
	mu      sync.RWMutex
	triples map[string]struct{}
	post    map[string][]int32
}

type Store struct {
	shards [4]shard
}

func (g *Store) unlockedRead(i int) int {
	return len(g.shards[i].triples) // want "without taking the shard lock"
}

func (g *Store) lockedRead(i int) int {
	sh := &g.shards[i]
	sh.mu.RLock()
	n := len(sh.triples)
	sh.mu.RUnlock()
	return n
}

// Helpers taking the *shard inherit the caller's lock.
func postInsert(sh *shard, k string, v int32) {
	sh.post[k] = append(sh.post[k], v)
}
