// Package wal shims graphkeys/internal/wal for the fixtures: Store's
// error-returning durability methods, matched by path suffix.
package wal

type Store struct{}

func Open(dir string) (*Store, error) { return nil, nil }

func (s *Store) Append(rec []byte) error { return nil }
func (s *Store) Sync() error             { return nil }
func (s *Store) Close() error            { return nil }

// Seq returns no error; calls to it are never flagged.
func (s *Store) Seq() uint64 { return 0 }
