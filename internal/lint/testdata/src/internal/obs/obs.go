// Package obs shims graphkeys/internal/obs for the fixtures: the
// nil-safe handle types and their per-event methods, matched by path
// suffix and name.
package obs

type Counter struct{}

func (c *Counter) Inc()          {}
func (c *Counter) Add(n float64) {}

type Gauge struct{}

func (g *Gauge) Inc()          {}
func (g *Gauge) Dec()          {}
func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64)     {}
func (h *Histogram) ObserveSince(t0 int64) {}

type CounterVec struct{}

func (v *CounterVec) Inc(label string) {}

type Tracer struct{}

type Span struct{}

func (t *Tracer) Begin(name string) Span { return Span{} }

func (s Span) End()                  {}
func (s Span) EndLabel(label string) {}
