// Fixtures for the read-only-engine rule of lockcontract: derivation
// packages (this one's path ends in internal/chase) must not call the
// graph's mutation entry points.
package chase

import "internal/graph"

// Engines derive; reads are fine.
func expand(g *graph.Graph, frontier []int32) []int32 {
	var next []int32
	for _, n := range frontier {
		next = append(next, g.Out(n)...)
	}
	return next
}

func repairInPlace(g *graph.Graph, d *graph.Delta) error {
	return g.ApplyDelta(d) // want "read-only engine package"
}

func addDerived(g *graph.Graph) {
	g.MustAddTriple(1, 2, 3) // want "read-only engine package"
}
