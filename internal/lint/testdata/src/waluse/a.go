package waluse

import (
	"os"

	"internal/graph"
	"internal/wal"
)

func dropAppend(s *wal.Store, rec []byte) {
	s.Append(rec) // want "dropped"
}

func dropRename(tmp, final string) {
	os.Rename(tmp, final) // want "dropped"
}

func blankSync(s *wal.Store) {
	_ = s.Sync() // want "assigned to _"
}

func blankOpen(dir string) *wal.Store {
	st, _ := wal.Open(dir) // want "assigned to _"
	return st
}

func dropFsync(f *os.File) {
	f.Sync() // want "dropped"
}

func dropCommit(commit graph.DeltaCommit) {
	commit() // want "dropped"
}

func handled(s *wal.Store, tmp, final string) error {
	if err := s.Append(nil); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return err
	}
	return s.Sync()
}

// No error result, nothing to drop.
func seq(s *wal.Store) uint64 {
	return s.Seq()
}

// Deferred and async cleanup paths are out of scope: there is no
// direct result to consume.
func deferred(s *wal.Store) {
	defer s.Close()
}

// os.File.Close is not on the durability path (temp-file cleanup).
func cleanup(f *os.File) {
	f.Close()
}
