package ignorecase

// Fixtures for the //emlint:ignore directive: a well-formed directive
// (analyzer name plus reason) suppresses findings on its own line and
// the line directly below; a directive naming a different analyzer
// suppresses nothing. Malformed directives are covered by a unit test
// (their diagnostic lands on the comment's own line, where a want
// marker cannot sit).

func suppressedSameLine(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k) //emlint:ignore maporder callers treat the result as a set; order cannot escape
	}
	return out
}

func suppressedLineAbove(m map[int]bool) []int {
	var out []int
	for k := range m {
		//emlint:ignore maporder callers treat the result as a set; order cannot escape
		out = append(out, k)
	}
	return out
}

func wrongAnalyzerName(m map[int]bool) []int {
	var out []int
	for k := range m {
		//emlint:ignore walerr a directive for another analyzer does not suppress this one
		out = append(out, k) // want "map order is nondeterministic"
	}
	return out
}
