// Package fmt is a minimal stand-in for the standard library's fmt
// package (matched by path and name; see the sort shim).
package fmt

func Sprintf(format string, a ...any) string { return format }
func Sprint(a ...any) string                 { return "" }
func Sprintln(a ...any) string               { return "" }
func Errorf(format string, a ...any) error   { return nil }
