package maporder

import "sort"

// Fixtures for iterator-composition code (the streaming candidate
// pipeline): a lazy stream built over a map range bakes map order
// into every yield, and the nondeterminism escapes to every consumer
// of the stream. Collect-then-sort inside the closure is the fix —
// the stream stays lazy per consumer pull, the order becomes stable.

// stream is the fixture's iter.Seq[string] stand-in.
type stream func(yield func(string) bool)

// keyStream yields bucket keys straight out of a map range.
func keyStream(buckets map[string][]int) stream {
	return func(yield func(string) bool) {
		var ks []string
		for k := range buckets {
			ks = append(ks, k) // want "map order is nondeterministic"
		}
		for _, k := range ks {
			if !yield(k) {
				return
			}
		}
	}
}

// keyStreamSorted collects and sorts before yielding: clean.
func keyStreamSorted(buckets map[string][]int) stream {
	return func(yield func(string) bool) {
		var ks []string
		for k := range buckets {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			if !yield(k) {
				return
			}
		}
	}
}

// memberStream memoizes bucket member lists in a map but only ever
// looks entries up by key — no range, nothing to flag.
func memberStream(lookup func(string) []int, keys []string) stream {
	members := make(map[string][]int)
	return func(yield func(string) bool) {
		for _, k := range keys {
			ms, ok := members[k]
			if !ok {
				ms = lookup(k)
				members[k] = ms
			}
			for range ms {
				if !yield(k) {
					return
				}
			}
		}
	}
}
