package maporder

import (
	"slices"
	"sort"
)

// The PR 5 bug shape: incremental repair collected the tainted roots
// of a dirty-node map and chased them in map-iteration order, so two
// runs over the same delta produced differently-ordered step logs.
func taintedRootsBug(dirty map[int64]bool) []int64 {
	var roots []int64
	for id := range dirty {
		roots = append(roots, id) // want "map order is nondeterministic"
	}
	return roots
}

// The PR 5 fix: collect, then sort before use.
func taintedRootsFixed(dirty map[int64]bool) []int64 {
	roots := make([]int64, 0, len(dirty))
	for id := range dirty {
		roots = append(roots, id)
	}
	slices.Sort(roots)
	return roots
}

// sort.* after the loop exempts too.
func sortedStrings(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// A field of an outer struct is an ordered sink just like a local.
type result struct{ steps []string }

func fieldSink(m map[string]int, r *result) {
	for k := range m {
		r.steps = append(r.steps, k) // want "map order is nondeterministic"
	}
}

// Appended values that do not depend on the loop variables accumulate
// the same multiset in any order.
func orderFree(m map[string]int) []int {
	var ones []int
	for _, v := range m {
		if v > 0 {
			ones = append(ones, 1)
		}
	}
	return ones
}

// A per-key map sink absorbs the order: each iteration touches its
// own entry.
func groupByKey(pairs map[string]int, groups map[string][]int) {
	for k, v := range pairs {
		groups[k] = append(groups[k], v)
	}
}

// Funneling every iteration into one fixed entry is ordered again.
func funnel(m map[string]int, buckets [][]string) {
	for k := range m {
		buckets[0] = append(buckets[0], k) // want "map order is nondeterministic"
	}
}

// A slice declared inside the loop body is per-iteration state.
func perIteration(m map[string][]string, emit func([]string)) {
	for k, vs := range m {
		var line []string
		line = append(line, k)
		line = append(line, vs...)
		emit(line)
	}
}
