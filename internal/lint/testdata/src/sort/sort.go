// Package sort is a minimal stand-in for the standard library's sort
// package. The analyzers match sort calls by package path and function
// name only, so fixtures stay hermetic and fast by importing this shim
// instead of pulling real standard-library sources through the
// type-checker.
package sort

func Slice(x any, less func(i, j int) bool)       {}
func SliceStable(x any, less func(i, j int) bool) {}
func Ints(x []int)                                {}
func Strings(x []string)                          {}
