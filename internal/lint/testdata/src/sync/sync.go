// Package sync is a minimal stand-in for the standard library's sync
// package (matched by package name; see the sort shim).
package sync

type Locker interface {
	Lock()
	Unlock()
}

type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

type WaitGroup struct{}

func (wg *WaitGroup) Add(delta int) {}
func (wg *WaitGroup) Done()         {}
func (wg *WaitGroup) Wait()         {}

type Cond struct {
	L Locker
}

func NewCond(l Locker) *Cond { return &Cond{L: l} }

func (c *Cond) Wait()      {}
func (c *Cond) Signal()    {}
func (c *Cond) Broadcast() {}
