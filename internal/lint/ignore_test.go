package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// A directive missing its reason (or its analyzer name) must not
// suppress anything, and must itself surface as a finding — bare
// ignores defeat the audit trail the reason requirement exists for.
func TestMalformedDirectiveIsAFinding(t *testing.T) {
	const src = `package p

func f(m map[int]bool) []int {
	var out []int
	for k := range m {
		//emlint:ignore maporder
		out = append(out, k)
	}
	return out
}
`
	findings := runOverSource(t, src)
	var sawBare, sawMapOrder bool
	for _, f := range findings {
		switch f.analyzer {
		case IgnoreName:
			sawBare = true
			if !strings.Contains(f.diag.Message, "reason") {
				t.Errorf("bare-directive finding does not mention the missing reason: %s", f.diag.Message)
			}
		case "maporder":
			sawMapOrder = true
		}
	}
	if !sawBare {
		t.Error("bare //emlint:ignore directive was not reported")
	}
	if !sawMapOrder {
		t.Error("bare directive suppressed the maporder finding it was attached to")
	}
}

// Findings in _test.go files are dropped: tests drop errors and build
// maps on purpose.
func TestTestFilesAreExempt(t *testing.T) {
	const src = `package p

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	findings := check(t, fset, f)
	if len(findings) != 0 {
		t.Errorf("findings reported in a _test.go file: %v", findings)
	}
}

func runOverSource(t *testing.T, src string) []finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return check(t, fset, f)
}

func check(t *testing.T, fset *token.FileSet, f *ast.File) []finding {
	t.Helper()
	info := newTypesInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := runAnalyzers(All(), Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}
