// Package lint is emlint: a suite of repo-specific static analyzers
// that mechanically enforce the invariants the system's guarantees
// rest on — byte-identical derivations at every worker count
// (maporder), the admission/locking contracts of the sharded store
// (lockcontract), nil-safe pure-observation instrumentation
// (obshandle), and write-ahead durability (walerr).
//
// The suite runs as a `go vet` tool:
//
//	go build -o /tmp/emlint ./cmd/emlint
//	go vet -vettool=/tmp/emlint ./...
//
// or directly (`emlint ./...` re-executes itself through go vet).
//
// The framework here is a deliberately small, dependency-free subset
// of golang.org/x/tools/go/analysis: an Analyzer inspects one
// type-checked package and reports position-tagged diagnostics. The
// driver (unit.go) speaks the unitchecker command-line protocol that
// `go vet -vettool` requires, importing dependency type information
// from the compiler's export data, so no code outside the standard
// library is needed.
//
// Findings can be suppressed, one line at a time, with a directive
// comment that names the analyzer and must give a reason:
//
//	//emlint:ignore maporder sink is a set; order cannot escape
//
// A directive suppresses matching findings on its own line and on the
// line directly below it. A bare directive (missing analyzer or
// reason) is itself a finding. See ignore.go.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis: a name (used in output and in
// ignore directives), a one-line doc string, and the function that
// runs it over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the analyzer suite in output order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		LockContract,
		ObsHandle,
		WalErr,
	}
}

// ---- shared helpers ----

// pkgIs reports whether a package path is, or ends with, the given
// canonical path suffix ("internal/obs" matches both the real
// "graphkeys/internal/obs" and a test fixture's "internal/obs").
func pkgIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isTestFile reports whether pos lies in a _test.go file. The
// analyzers enforce production invariants; tests build graphs and
// drop errors on purpose.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type of t (through one pointer), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(t).(*types.Named)
	return n
}

// typeIs reports whether t (through one pointer) is the named type
// pkgSuffix.name.
func typeIs(t types.Type, pkgSuffix, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && pkgIs(n.Obj().Pkg().Path(), pkgSuffix)
}

// calleeFunc resolves a call's static callee (function or method), or
// nil for dynamic calls and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// recvNamed returns the named receiver type of a method (through one
// pointer), or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// returnsError reports whether fn's signature includes an error
// result.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// rootIdent returns the leftmost identifier of a selector/index/call
// chain (a in a.b[i].c()), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// usesAnyObject reports whether expr references any of the given
// objects.
func usesAnyObject(info *types.Info, expr ast.Node, objs map[types.Object]bool) bool {
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// exprText renders an expression in canonical form for textual
// comparison (nil-guard matching, sort-target matching).
func exprText(e ast.Expr) string {
	return types.ExprString(e)
}
