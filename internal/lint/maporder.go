package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` loops over maps whose iteration order
// leaks into an ordered accumulation — an append to a slice that
// outlives the loop — without a sort between the loop and the slice's
// use. Go randomizes map iteration, so such a slice differs run to
// run and worker count to worker count; this is exactly the bug class
// PR 5 fixed twice by hand (unsorted tainted roots, unsorted type
// iteration), and byte-identical derivation order is a correctness
// contract for replay and for followers.
//
// Order-insensitive sinks are not flagged: writes into a map, counter
// updates, min/max selection with deterministic tie-breaks, and
// appends whose elements do not depend on the loop variables (the
// multiset of appended values is then order-independent). An append
// whose target is sorted later in the same function — the canonical
// collect-then-sort fix — is exempt. Anything the analyzer cannot see
// (the sort happens in a callee, the sink is a commutative reducer)
// takes a //emlint:ignore maporder <reason> directive.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not flow into slices, logs or results without a sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		// Functions are analyzed one at a time so the sorted-later
		// exemption can look at the rest of the enclosing function.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					mapOrderFunc(pass, fn.Body)
				}
				return false // nested FuncLits handled via the body walk
			}
			return true
		})
	}
	return nil
}

// mapOrderFunc scans one function body (including nested literals —
// a literal's loop may still sort within the literal, which is the
// enclosing body we pass when recursing).
func mapOrderFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rs)
		return true
	})
}

func checkMapRange(pass *Pass, enclosing *ast.BlockStmt, rs *ast.RangeStmt) {
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	if len(loopVars) == 0 {
		return // `for range m` without variables cannot leak order
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.TypesInfo, call) {
				continue
			}
			// The appended elements must depend on the loop variables:
			// if they do not, the accumulated multiset is the same in
			// every order.
			dep := false
			for _, arg := range call.Args[1:] {
				if usesAnyObject(pass.TypesInfo, arg, loopVars) {
					dep = true
					break
				}
			}
			if !dep {
				continue
			}
			target := ast.Unparen(as.Lhs[i])
			if !orderSensitiveTarget(pass, rs, loopVars, target) {
				continue
			}
			if sortedAfter(pass, enclosing, target, rs.End()) {
				continue
			}
			pass.Reportf(as.Pos(),
				"append of map-iteration values to %s: map order is nondeterministic; sort the result before it is used, or annotate //emlint:ignore maporder <why order cannot escape>",
				exprText(target))
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append" && len(call.Args) >= 2
}

// orderSensitiveTarget decides whether appending to target inside rs
// accumulates across iterations in a way that remembers order.
func orderSensitiveTarget(pass *Pass, rs *ast.RangeStmt, loopVars map[types.Object]bool, target ast.Expr) bool {
	switch t := target.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(t)
		if obj == nil {
			return false
		}
		// A slice declared inside the loop body is per-iteration state;
		// only accumulation into something that outlives the loop leaks
		// order.
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return false
		}
		return true
	case *ast.IndexExpr:
		// m[k] = append(m[k], …) with k a loop variable touches a
		// distinct entry per iteration: the map sink absorbs the order.
		// An index that does NOT involve the loop variables funnels
		// every iteration into one slice — order-sensitive.
		if usesAnyObject(pass.TypesInfo, t.Index, loopVars) {
			return false
		}
		return true
	case *ast.SelectorExpr:
		return true // field of an outer struct
	}
	return false
}

// sortedAfter reports whether, somewhere after pos in the enclosing
// function body, target is passed to a sort (sort.* / slices.Sort*),
// which makes the collected order irrelevant.
func sortedAfter(pass *Pass, body *ast.BlockStmt, target ast.Expr, pos token.Pos) bool {
	targetText := exprText(target)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || !isSortFunc(fn.Pkg().Path(), fn.Name()) {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = ast.Unparen(u.X)
		}
		if exprText(arg) == targetText {
			found = true
			return false
		}
		return true
	})
	return found
}

func isSortFunc(pkgPath, name string) bool {
	switch pkgPath {
	case "sort":
		switch name {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
