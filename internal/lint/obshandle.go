package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsHandle guards the observability substrate's two contracts
// (internal/obs, PR 6):
//
//  1. Handles are nil-safe by METHOD, not by field. A *obs.Counter (or
//     Gauge, Histogram, CounterVec, Tracer) read out of a struct field
//     and used directly reintroduces the nil checks the handle types
//     were built to absorb — instrumented code must either go through
//     a nil-safe accessor or guard the field itself. The analyzer
//     flags handle-field reads unless the enclosing function visibly
//     nil-checks the field, received it as a parameter (the accessor
//     pattern: the caller picked the field, the callee guards nil),
//     or is writing the field (wiring).
//
//  2. Hot-path instrumentation must not allocate per event. Counters
//     and spans sit on the write and derivation paths; an
//     fmt.Sprintf'd label or a composite literal built per Inc/Observe
//     turns free instrumentation into allocation pressure. Labels must
//     be constants or precomputed.
var ObsHandle = &Analyzer{
	Name: "obshandle",
	Doc:  "obs handles are used via nil-safe methods or guarded fields; per-event obs calls must not allocate",
	Run:  runObsHandle,
}

// obsHandleTypes are the nil-safe handle types of internal/obs.
var obsHandleTypes = map[string]bool{
	"Counter":    true,
	"Gauge":      true,
	"Histogram":  true,
	"CounterVec": true,
	"Tracer":     true,
}

// obsEventMethods are handle methods called per event (as opposed to
// wiring/snapshot calls, which are rare).
var obsEventMethods = map[string]bool{
	"Inc":          true,
	"Add":          true,
	"Dec":          true,
	"Set":          true,
	"Observe":      true,
	"ObserveSince": true,
	"Begin":        true,
}

func runObsHandle(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHandleFieldReads(pass, fd)
			checkAllocatingObsCalls(pass, fd.Body)
		}
	}
	return nil
}

// isObsHandlePtr reports whether t is *obs.Counter etc.
func isObsHandlePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n := namedOf(p.Elem())
	return n != nil && obsHandleTypes[n.Obj().Name()] &&
		n.Obj().Pkg() != nil && pkgIs(n.Obj().Pkg().Path(), "internal/obs")
}

// ---- rule 1: handle fields read without a guard ----

func checkHandleFieldReads(pass *Pass, fd *ast.FuncDecl) {
	type frame struct {
		node   ast.Node        // *ast.FuncDecl or *ast.FuncLit
		params map[string]bool // base idents that are params/receiver of this frame
	}
	var stack []frame

	paramsOf := func(recv *ast.FieldList, typ *ast.FuncType) map[string]bool {
		m := make(map[string]bool)
		add := func(fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					m[name.Name] = true
				}
			}
		}
		add(recv)
		add(typ.Params)
		return m
	}
	stack = append(stack, frame{fd, paramsOf(fd.Recv, fd.Type)})

	// Nil guards anywhere in the top-level function count (the common
	// shape is `if x.c == nil { return }` or a switch on the fields).
	guards := nilCompares(fd.Body)

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			stack = append(stack, frame{n, paramsOf(nil, n.Type)})
			ast.Inspect(n.Body, visit)
			stack = stack[:len(stack)-1]
			return false
		case *ast.AssignStmt:
			// Writes wire the handles up; only inspect the RHS.
			for _, rhs := range n.Rhs {
				ast.Inspect(rhs, visit)
			}
			for _, lhs := range n.Lhs {
				// Index expressions etc. on the LHS still read sub-exprs,
				// but handle fields as assignment targets are wiring.
				if _, ok := ast.Unparen(lhs).(*ast.SelectorExpr); !ok {
					ast.Inspect(lhs, visit)
				}
			}
			return false
		case *ast.SelectorExpr:
			s, ok := pass.TypesInfo.Selections[n]
			if !ok || s.Kind() != types.FieldVal || !isObsHandlePtr(s.Type()) {
				return true
			}
			// Exempt: the base is a parameter or receiver of the current
			// frame — the accessor/closure pattern, where the caller chose
			// the field and the handle's methods absorb nil.
			if root := rootIdent(n.X); root != nil && stack[len(stack)-1].params[root.Name] {
				return true
			}
			// Exempt: the function nil-checks the base or the field itself.
			if guards[exprText(n.X)] || guards[exprText(n)] {
				return true
			}
			pass.Reportf(n.Pos(),
				"obs handle field %s read without a nil guard: use the nil-safe accessor (or methods on a handle passed in as a parameter), or nil-check the field in this function", exprText(n))
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// nilCompares collects the text of every expression compared against
// nil in body (x == nil, x != nil), including inside nested literals.
func nilCompares(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xNil := isNilIdent(be.X)
		yNil := isNilIdent(be.Y)
		if xNil == yNil {
			return true
		}
		if xNil {
			out[exprText(ast.Unparen(be.Y))] = true
		} else {
			out[exprText(ast.Unparen(be.X))] = true
		}
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// ---- rule 2: allocating arguments on per-event calls ----

func checkAllocatingObsCalls(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || !obsEventMethods[fn.Name()] {
			return true
		}
		r := recvNamed(fn)
		if r == nil || !obsHandleTypes[r.Obj().Name()] ||
			r.Obj().Pkg() == nil || !pkgIs(r.Obj().Pkg().Path(), "internal/obs") {
			return true
		}
		for _, arg := range call.Args {
			if desc, ok := allocatingExpr(pass, arg); ok {
				pass.Reportf(arg.Pos(),
					"%s built per event in %s.%s call: hot-path instrumentation must not allocate; use a constant or precomputed label", desc, r.Obj().Name(), fn.Name())
			}
		}
		return true
	})
}

// allocatingExpr reports argument shapes that allocate on every call.
func allocatingExpr(pass *Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(pass.TypesInfo, e); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			switch fn.Name() {
			case "Sprintf", "Sprint", "Sprintln", "Errorf":
				return "fmt." + fn.Name() + " result", true
			}
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD && isStringType(pass.TypesInfo.TypeOf(e)) {
			// Constant folding makes "a"+"b" free; only flag when the
			// whole expression is not a compile-time constant.
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value == nil {
				return "string concatenation", true
			}
		}
	case *ast.CompositeLit:
		return "composite literal", true
	}
	return "", false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
