package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// This file is the driver: it speaks the (unpublished but stable)
// command-line protocol `go vet -vettool` requires of an analysis
// tool, the same one golang.org/x/tools/go/analysis/unitchecker
// implements:
//
//	emlint -V=full       print a version line for build caching
//	emlint -flags        print supported flags as JSON
//	emlint foo.cfg       analyze the compilation unit foo.cfg describes
//
// The .cfg file is JSON written by cmd/go per package: source files,
// the import map, and the export-data file of every dependency. Types
// of imports are loaded from that export data via go/importer, so the
// driver needs nothing beyond the standard library.
//
// Invoked any other way, emlint re-executes itself through
// `go vet -vettool=<self>` with the given package patterns, which is
// the supported local entry point: `emlint ./...`.

// unitConfig mirrors the JSON config cmd/go writes for each vet
// invocation (fields we do not use are omitted; unknown JSON fields
// are ignored by encoding/json).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/emlint.
func Main() {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	flag.Var(versionFlag{}, "V", "print version and exit")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `%[1]s enforces this repo's determinism, locking and durability invariants.

Usage:
  %[1]s [packages]     run via "go vet -vettool" over the packages (default ./...)
  %[1]s unit.cfg       analyze one compilation unit (invoked by go vet)

Analyzers:
`, progname)
		for _, a := range All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		os.Exit(2)
	}
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0])
		return
	}

	// Standalone mode: hand the package loading to go vet, which calls
	// back into this binary once per compilation unit.
	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("cannot locate own executable: %v", err)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		log.Fatal(err)
	}
}

// versionFlag implements the -V=full protocol: print a line the go
// command can use as the tool's build ID (content-addressed by the
// binary's own hash, so editing an analyzer invalidates vet's cache).
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel emlint buildID=%02x\n", exe, h.Sum(nil))
	os.Exit(0)
	return nil
}

// printFlags answers `emlint -flags`: go vet queries it to learn which
// flags it may forward.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// runUnit analyzes the single compilation unit described by cfgFile
// and exits: 0 when clean, 1 with findings on stderr otherwise.
func runUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// Facts-only invocations (dependency packages) have nothing to do:
	// every emlint analyzer is purely intra-package. Touch the vetx
	// output so cmd/go's bookkeeping finds a file.
	if cfg.VetxOnly {
		writeVetx(cfg)
		os.Exit(0)
	}

	fset := token.NewFileSet()
	findings, err := analyzeUnit(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		log.Fatal(err)
	}
	writeVetx(cfg)
	if len(findings) == 0 {
		os.Exit(0)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(f.diag.Pos), f.analyzer, f.diag.Message)
	}
	os.Exit(1)
}

func writeVetx(cfg *unitConfig) {
	if cfg.VetxOutput != "" {
		// Best-effort: an empty facts file keeps cmd/go's cache happy.
		_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
}

// analyzeUnit parses and type-checks the unit per the config and runs
// the full suite over it.
func analyzeUnit(fset *token.FileSet, cfg *unitConfig) ([]finding, error) {
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return base.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return runAnalyzers(All(), Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	})
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
