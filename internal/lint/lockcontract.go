package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockContract encodes the write path's locking discipline
// (internal/graph/plan.go, internal/graph/shard.go) as four rules:
//
//  1. No blocking call while the plan mutex is held. Planning is the
//     global serialization point of the write path; an fsync, a
//     durability-commit wait, a WaitGroup wait or an engine.Parallel
//     fan-out inside the plan-mutex hold turns every concurrent
//     writer into a convoy (and a commit wait can deadlock outright,
//     since commits group across planners). The group-commit design
//     exists precisely so these happen OUTSIDE the hold.
//
//  2. No shard-internal access without the shard lock. A function
//     that reaches into a shard's tables (nodes, adjacency, triple
//     set, postings) must take that shard's mutex itself or receive
//     the *shard from a caller that does (the helper contract —
//     helpers taking a *shard parameter inherit the caller's lock).
//
//  3. Derivation engines are read-only over the graph. The chase,
//     EMMR, EMVC, matching, discovery and key packages derive from
//     the graph; mutation belongs to the admission-gated write path
//     (internal/graph via internal/inc and the public Matcher). A
//     direct mutation call from an engine bypasses planning, WAL
//     logging and incremental repair at once.
//
//  4. The optimistic-plan contract. Optimistic planning exists to move
//     footprint recording OFF the plan mutex: a call that records
//     reads into a footprint (a method on the footprint type, or an
//     fpXxx-named read helper) under the plan mutex re-serializes the
//     expensive half of planning and defeats the design. Dually,
//     revalidation exists to be the admission check: a revalidate call
//     made while the plan mutex is NOT held proves nothing, because
//     the reads it confirms can go stale before the plan admits.
var LockContract = &Analyzer{
	Name: "lockcontract",
	Doc:  "no blocking calls under the plan mutex; shard internals only under the shard lock; engines stay read-only; footprints recorded off the plan mutex, revalidated under it",
	Run:  runLockContract,
}

// readOnlyPkgs are the engine packages rule 3 applies to (matched by
// path suffix).
var readOnlyPkgs = []string{
	"internal/chase",
	"internal/emmr",
	"internal/emvc",
	"internal/match",
	"internal/discover",
	"internal/eqrel",
	"internal/keys",
	"internal/pattern",
	"internal/mapreduce",
	"internal/vertexcentric",
}

// graphMutators are the *graph.Graph entry points that mutate the
// store.
var graphMutators = map[string]bool{
	"AddEntity":        true,
	"MustAddEntity":    true,
	"AddValue":         true,
	"AddTriple":        true,
	"MustAddTriple":    true,
	"RemoveTriple":     true,
	"RemoveTripleID":   true,
	"ApplyDelta":       true,
	"ApplyDeltaLogged": true,
}

func runLockContract(pass *Pass) error {
	pkgPath := pass.Pkg.Path()
	inGraph := pkgIs(pkgPath, "internal/graph")
	readOnly := false
	for _, s := range readOnlyPkgs {
		if pkgIs(pkgPath, s) {
			readOnly = true
			break
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPlanMutexRegions(pass, fd.Body)
			checkOptimisticContract(pass, fd)
			if inGraph {
				checkShardGuards(pass, fd)
			}
			if readOnly {
				checkReadOnly(pass, fd)
			}
		}
	}
	return nil
}

// ---- rule 1: blocking calls under the plan mutex ----

// planMutexRecv reports whether expr names the plan mutex: a mutex
// field (canonically "mu") of a struct whose type name contains
// "plan" (the planner), or a field itself named like planMu.
func planMutexRecv(pass *Pass, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if strings.Contains(strings.ToLower(sel.Sel.Name), "planmu") {
		return true
	}
	owner := namedOf(pass.TypesInfo.TypeOf(sel.X))
	return owner != nil && strings.Contains(strings.ToLower(owner.Obj().Name()), "plan")
}

// lockCall matches `<recv>.<name>()` and returns recv.
func lockCall(stmt ast.Stmt, name string) (ast.Expr, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	return sel.X, true
}

func checkPlanMutexRegions(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			recv, ok := lockCall(stmt, "Lock")
			if !ok || !planMutexRecv(pass, recv) {
				continue
			}
			scanLockedRegion(pass, block.List[i+1:], exprText(recv))
		}
		return true
	})
}

// scanLockedRegion walks the statements after a plan-mutex Lock until
// the matching top-level Unlock, reporting blocking calls. Branches
// are scanned with their own unlock tracking (an early-exit branch
// that unlocks stops being a locked region); function literals are
// not descended into (they run elsewhere).
func scanLockedRegion(pass *Pass, stmts []ast.Stmt, recvText string) (unlocked bool) {
	for _, stmt := range stmts {
		if r, ok := lockCall(stmt, "Unlock"); ok && exprText(r) == recvText {
			return true
		}
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the region open to function end.
			reportBlockingIn(pass, s.Call)
		case *ast.IfStmt:
			if s.Init != nil {
				reportBlockingIn(pass, s.Init)
			}
			reportBlockingIn(pass, s.Cond)
			scanLockedRegion(pass, s.Body.List, recvText)
			if s.Else != nil {
				if eb, ok := s.Else.(*ast.BlockStmt); ok {
					scanLockedRegion(pass, eb.List, recvText)
				} else {
					scanLockedRegion(pass, []ast.Stmt{s.Else}, recvText)
				}
			}
		case *ast.ForStmt:
			reportBlockingIn(pass, s)
		case *ast.RangeStmt:
			reportBlockingIn(pass, s)
		case *ast.BlockStmt:
			if scanLockedRegion(pass, s.List, recvText) {
				return true
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			reportBlockingIn(pass, s)
		default:
			reportBlockingIn(pass, stmt)
		}
	}
	return false
}

// reportBlockingIn inspects one node (without entering function
// literals) for calls that can block.
func reportBlockingIn(pass *Pass, node ast.Node) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if desc, ok := blockingCall(pass, call); ok {
			pass.Reportf(call.Pos(),
				"%s while the plan mutex is held: planning is the write path's serialization point; move the blocking call after Unlock (see the group-commit path in internal/graph/plan.go)", desc)
		}
		return true
	})
}

// blockingCall classifies calls that must not run under the plan
// mutex.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
		switch {
		case fn.Name() == "Parallel" && fn.Pkg() != nil && pkgIs(fn.Pkg().Path(), "internal/engine"):
			return "engine.Parallel fan-out", true
		case fn.Name() == "Submit" && fn.Pkg() != nil && pkgIs(fn.Pkg().Path(), "internal/engine") &&
			recvNamed(fn) != nil && recvNamed(fn).Obj().Name() == "Pool":
			// Submitting couples the locked region to the pool (and the
			// paired Wait blocks on it); both belong after Unlock.
			return "engine.Pool.Submit", true
		case fn.Name() == "Sync" && recvNamed(fn) != nil && returnsError(fn):
			return "fsync (" + recvNamed(fn).Obj().Name() + ".Sync)", true
		case fn.Name() == "Wait" && recvNamed(fn) != nil:
			// sync.Cond.Wait releases the mutex it guards — that is the
			// admission protocol itself, not a violation.
			if r := recvNamed(fn); !(r.Obj().Name() == "Cond" && r.Obj().Pkg() != nil && r.Obj().Pkg().Name() == "sync") {
				return r.Obj().Name() + ".Wait", true
			}
		case fn.Name() == "commitWait":
			return "commit wait", true
		}
		return "", false
	}
	// Dynamic call: a durability commit (graph.DeltaCommit) blocks on
	// the group fsync.
	if t := pass.TypesInfo.TypeOf(call.Fun); t != nil {
		if n := namedOf(t); n != nil && n.Obj().Name() == "DeltaCommit" && n.Obj().Pkg() != nil && pkgIs(n.Obj().Pkg().Path(), "internal/graph") {
			return "durability commit wait (DeltaCommit)", true
		}
	}
	return "", false
}

// ---- rule 2: shard internals only under the shard lock ----

func isShardType(pass *Pass, t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "shard" && n.Obj().Pkg() == pass.Pkg
}

func checkShardGuards(pass *Pass, fd *ast.FuncDecl) {
	// Parameters (and receiver) of *shard type inherit the caller's
	// lock: the helper contract.
	paramShards := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.ObjectOf(name); obj != nil && isShardType(pass, obj.Type()) {
					paramShards[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)

	// Does the function itself take any shard's lock?
	locksShard := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && isShardType(pass, pass.TypesInfo.TypeOf(inner.X)) {
				locksShard = true
				return false
			}
		}
		return true
	})
	if locksShard {
		return
	}

	reported := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal || sel.Sel.Name == "mu" {
			return true
		}
		if !isShardType(pass, s.Recv()) {
			return true
		}
		// Fields of sync/atomic type are self-synchronizing: the
		// optimistic planner's epoch loads are lock-free by design.
		if n := namedOf(s.Type()); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic" {
			return true
		}
		if root := rootIdent(sel.X); root != nil {
			if obj := pass.TypesInfo.ObjectOf(root); obj != nil && paramShards[obj] {
				return true
			}
		}
		reported = true // one finding per function is enough signal
		pass.Reportf(sel.Pos(),
			"access to shard internals (%s) without taking the shard lock: lock sh.mu, or take the *shard as a parameter if the caller holds it", exprText(sel))
		return false
	})
}

// ---- rule 4: footprints off the plan mutex, revalidation under it ----

// posInterval is a source region in which the plan mutex is held.
type posInterval struct{ start, end token.Pos }

// planLockedIntervals computes the plan-mutex-held regions of a
// function body positionally: from each plan-mutex Lock to the first
// matching top-level Unlock in the same block, or to the block's end
// when the unlock is deferred or happens in a branch. Branch-local
// early unlocks therefore stay inside the interval: conservative for
// the recording check (more code counts as locked), and exact for the
// revalidation check wherever each block Locks at most once, which is
// the write path's discipline.
func planLockedIntervals(pass *Pass, body *ast.BlockStmt) []posInterval {
	var ivs []posInterval
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			recv, ok := lockCall(stmt, "Lock")
			if !ok || !planMutexRecv(pass, recv) {
				continue
			}
			end := block.End()
			for _, later := range block.List[i+1:] {
				if r, ok := lockCall(later, "Unlock"); ok && exprText(r) == exprText(recv) {
					end = later.Pos()
					break
				}
			}
			ivs = append(ivs, posInterval{start: stmt.End(), end: end})
		}
		return true
	})
	return ivs
}

// fpHelperName reports whether name follows the fpXxx convention of
// the footprint-recording read helpers (fpEnt, fpVal, fpPresent,
// fpEdges, ...).
func fpHelperName(name string) bool {
	return len(name) > 2 && strings.HasPrefix(name, "fp") &&
		name[2] >= 'A' && name[2] <= 'Z'
}

func checkOptimisticContract(pass *Pass, fd *ast.FuncDecl) {
	ivs := planLockedIntervals(pass, fd.Body)
	inside := func(p token.Pos) bool {
		for _, iv := range ivs {
			if p >= iv.start && p < iv.end {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
		default:
			return true
		}
		recorder := fpHelperName(name)
		if !recorder {
			if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
				if r := recvNamed(fn); r != nil && r.Obj().Name() == "footprint" {
					recorder = true
				}
			}
		}
		if recorder && inside(call.Pos()) {
			pass.Reportf(call.Pos(),
				"footprint recording (%s) under the plan mutex: optimistic planning reads and records OFF the mutex; only revalidate under it (see internal/graph/plan.go)", name)
		}
		if name == "revalidate" && !inside(call.Pos()) {
			pass.Reportf(call.Pos(),
				"revalidation outside the plan mutex: a footprint revalidated without the plan mutex held can go stale before admission; take the plan mutex first (see internal/graph/plan.go)")
		}
		return true
	})
}

// ---- rule 3: engines are read-only over the graph ----

func checkReadOnly(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || !graphMutators[fn.Name()] {
			return true
		}
		r := recvNamed(fn)
		if r == nil || r.Obj().Name() != "Graph" || r.Obj().Pkg() == nil || !pkgIs(r.Obj().Pkg().Path(), "internal/graph") {
			return true
		}
		pass.Reportf(call.Pos(),
			"graph mutation (%s) from a read-only engine package: derivation engines must not bypass the admission-gated write path (mutate through graph deltas via the matcher / internal/inc)", fn.Name())
		return true
	})
}
