package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive:
//
//	//emlint:ignore <analyzer> <reason>
//
// placed at the end of the offending line or on its own line directly
// above it. The analyzer name and a free-text reason are both
// mandatory; a directive without them is itself reported (analyzer
// name "ignore"), so suppressions stay auditable.

const directivePrefix = "//emlint:ignore"

// IgnoreName is the pseudo-analyzer name under which malformed
// directives are reported.
const IgnoreName = "ignore"

// ignoreSet records, per file and line, which analyzers are
// suppressed on that line.
type ignoreSet map[string]map[int][]string

// collectIgnores scans the files' comments for directives. It returns
// the suppression set and a diagnostic for every malformed directive.
func collectIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	ig := make(ignoreSet)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := c.Text[len(directivePrefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //emlint:ignorexyz — not the directive
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     c.Pos(),
						Message: "emlint:ignore needs an analyzer name and a reason: //emlint:ignore <analyzer> <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := ig[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					ig[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], fields[0])
			}
		}
	}
	return ig, bad
}

// suppressed reports whether a finding by the named analyzer at pos is
// covered by a directive on the same line or the line above.
func (ig ignoreSet) suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	byLine := ig[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, a := range byLine[line] {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}

// finding pairs a diagnostic with the analyzer that produced it; the
// drivers (unit.go and linttest) work on findings so suppression and
// output can be analyzer-aware.
type finding struct {
	analyzer string
	diag     Diagnostic
}

// runAnalyzers executes every analyzer over one package and applies
// the suppression directives, returning the surviving findings (in
// file/position order per analyzer) plus malformed-directive findings.
// Findings in _test.go files are dropped: the invariants are about
// production code.
func runAnalyzers(analyzers []*Analyzer, pass Pass) ([]finding, error) {
	var out []finding
	ig, bad := collectIgnores(pass.Fset, pass.Files)
	for _, d := range bad {
		if !isTestFile(pass.Fset, d.Pos) {
			out = append(out, finding{analyzer: IgnoreName, diag: d})
		}
	}
	for _, a := range analyzers {
		p := pass // copy
		p.Analyzer = a
		var diags []Diagnostic
		p.Report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(&p); err != nil {
			return nil, err
		}
		for _, d := range diags {
			if isTestFile(pass.Fset, d.Pos) {
				continue
			}
			if ig.suppressed(pass.Fset, a.Name, d.Pos) {
				continue
			}
			out = append(out, finding{analyzer: a.Name, diag: d})
		}
	}
	return out, nil
}
