package lint

import "testing"

func TestMapOrder(t *testing.T) {
	testAnalyzer(t, MapOrder, "maporder")
}

func TestLockContract(t *testing.T) {
	// Three fixture packages, one per sub-rule: blocking calls under
	// the plan mutex, shard internals without the shard lock, and
	// mutation from a read-only engine package.
	testAnalyzer(t, LockContract, "lockcontract", "internal/graph", "internal/chase")
}

func TestObsHandle(t *testing.T) {
	testAnalyzer(t, ObsHandle, "obsuse")
}

func TestWalErr(t *testing.T) {
	testAnalyzer(t, WalErr, "waluse")
}

func TestIgnoreDirective(t *testing.T) {
	testAnalyzer(t, MapOrder, "ignorecase")
}
