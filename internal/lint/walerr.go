package lint

import (
	"go/ast"
	"go/types"
)

// WalErr flags dropped errors on the durability path. The WAL's whole
// contract is "acknowledged means fsynced"; an ignored error from an
// append, a group commit, a truncate/rewind, an fsync, or the
// snapshot's atomic rename silently converts a durability guarantee
// into a hope. The flagged call set is deliberately narrow:
//
//   - any function or method of internal/wal that returns an error
//     (Store methods, the logFile interface — including Close, whose
//     error on a writable log can carry a delayed write failure);
//   - os.Rename (the snapshot publish step);
//   - (*os.File).Sync (raw fsync);
//   - dynamic calls of graph.DeltaCommit (the durability hook).
//
// os.File.Close on read-side or temp files is NOT in the set — the
// snapshot writer's cleanup closes are fine — and `defer`/`go`
// statements are skipped (Go offers no direct result there; those
// sites need an explicit wrapper anyway, which the analyzer would
// then see).
var WalErr = &Analyzer{
	Name: "walerr",
	Doc:  "errors from WAL appends, commits, fsyncs, rewinds and snapshot renames must be handled",
	Run:  runWalErr,
}

func runWalErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				return false
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if desc, ok := durabilityCall(pass, call); ok && callReturnsError(pass, call) {
						pass.Reportf(call.Pos(),
							"error from %s dropped: durability failures must be handled (return, break the store, or fold into the surrounding error)", desc)
					}
				}
				return false
			case *ast.AssignStmt:
				checkAssignDrop(pass, n)
				return true
			}
			return true
		})
	}
	return nil
}

// checkAssignDrop flags `_, x := f()` / `_ = f()` where the blanked
// position is an error result of a durability call.
func checkAssignDrop(pass *Pass, as *ast.AssignStmt) {
	// Only the multi-value form `a, b := f()` and the single form
	// `_ = f()` assign call results positionally.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	desc, ok := durabilityCall(pass, call)
	if !ok {
		return
	}
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	res := sig.Results()
	for i, lhs := range as.Lhs {
		id, isIdent := ast.Unparen(lhs).(*ast.Ident)
		if !isIdent || id.Name != "_" {
			continue
		}
		if i >= res.Len() || !isErrorType(res.At(i).Type()) {
			continue
		}
		pass.Reportf(lhs.Pos(),
			"error from %s assigned to _: durability failures must be handled (return, break the store, or fold into the surrounding error)", desc)
	}
}

// callReturnsError reports whether the call has at least one
// error-typed result (for the bare-ExprStmt case).
func callReturnsError(pass *Pass, call *ast.CallExpr) bool {
	sig := callSignature(pass, call)
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

// durabilityCall classifies a call as belonging to the durability
// path, returning a human description.
func durabilityCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
		pkg := fn.Pkg()
		if pkg == nil {
			return "", false
		}
		// Anything of internal/wal that can return an error. This also
		// covers the logFile interface's methods (Sync, Truncate, Seek,
		// Close), which are declared in that package.
		if pkgIs(pkg.Path(), "internal/wal") && returnsError(fn) {
			if r := recvNamed(fn); r != nil {
				return "wal " + r.Obj().Name() + "." + fn.Name(), true
			}
			if r := fn.Type().(*types.Signature).Recv(); r != nil {
				return "wal log-file " + fn.Name(), true
			}
			return "wal." + fn.Name(), true
		}
		if pkg.Path() == "os" && fn.Name() == "Rename" {
			return "os.Rename (atomic publish)", true
		}
		if pkg.Path() == "os" && fn.Name() == "Sync" {
			if r := recvNamed(fn); r != nil && r.Obj().Name() == "File" {
				return "os.File.Sync (fsync)", true
			}
		}
		return "", false
	}
	// Dynamic call of the graph durability hook.
	if t := pass.TypesInfo.TypeOf(call.Fun); t != nil {
		if n := namedOf(t); n != nil && n.Obj().Name() == "DeltaCommit" &&
			n.Obj().Pkg() != nil && pkgIs(n.Obj().Pkg().Path(), "internal/graph") {
			return "DeltaCommit (group-commit wait)", true
		}
	}
	return "", false
}
