package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end tests of the vettool protocol: build the real cmd/emlint
// binary and drive it through `go vet -vettool`, exactly as CI does.

func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func buildEmlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "emlint")
	cmd := exec.Command("go", "build", "-o", bin, "graphkeys/cmd/emlint")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building emlint: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolCleanOnTree is the acceptance gate: the suite must pass
// over the repository itself. A finding here needs either a fix or a
// reasoned //emlint:ignore.
func TestVettoolCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("vets the whole repository")
	}
	bin := buildEmlint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("emlint is not clean over the tree: %v\n%s", err, out)
	}
}

// TestVettoolFailsOnSeededViolations proves the lint gate actually
// bites: a module seeded with a maporder and a walerr violation must
// fail the vet run, naming both analyzers.
func TestVettoolFailsOnSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets a scratch module")
	}
	bin := buildEmlint(t)
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seeded\n\ngo 1.24\n")
	write("seed.go", `package seeded

import "os"

func Keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func Publish(tmp, final string) {
	os.Rename(tmp, final)
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("seeded violations were not reported; output:\n%s", out)
	}
	for _, needle := range []string{"maporder", "walerr", "map order is nondeterministic", "os.Rename"} {
		if !strings.Contains(string(out), needle) {
			t.Errorf("vet output is missing %q:\n%s", needle, out)
		}
	}
}
