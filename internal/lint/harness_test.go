package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This is the analysistest-style harness: fixture packages live under
// testdata/src/<importpath>, annotated with expectation comments
//
//	expr // want "regexp"
//
// one per line. Running an analyzer over a fixture must produce
// exactly the findings the want markers describe: an unexpected
// finding fails the test, and so does a want with no finding.
//
// Fixture imports resolve among the fixtures themselves — including
// tiny shims of the standard-library packages (sort, sync, os, fmt,
// slices) and of the repo packages (internal/graph, internal/obs,
// internal/wal, internal/engine) the analyzers recognize. The
// analyzers match packages by path suffix and symbol name, so the
// shims exercise the same code paths as the real tree while keeping
// the tests hermetic and fast.

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// fixtureLoader parses and type-checks fixture packages on demand,
// acting as its own types.Importer.
type fixtureLoader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*fixturePkg
}

func newFixtureLoader() *fixtureLoader {
	return &fixtureLoader{
		fset: token.NewFileSet(),
		root: filepath.Join("testdata", "src"),
		pkgs: make(map[string]*fixturePkg),
	}
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	fp, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return fp.pkg, nil
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %q has no Go files", path)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	cfg := &types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	info := newTypesInfo()
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %q: %v", path, err)
	}
	fp := &fixturePkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = fp
	return fp, nil
}

// want is one expectation marker.
type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var ws []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				const prefix = "// want "
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				q := strings.TrimSpace(strings.TrimPrefix(c.Text, prefix))
				rx, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: malformed want marker %q: %v", fset.Position(c.Pos()), c.Text, err)
				}
				re, err := regexp.Compile(rx)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), rx, err)
				}
				ws = append(ws, &want{pos: fset.Position(c.Pos()), re: re})
			}
		}
	}
	return ws
}

// testAnalyzer runs one analyzer over the given fixture packages and
// checks its findings against the want markers.
func testAnalyzer(t *testing.T, a *Analyzer, paths ...string) {
	t.Helper()
	l := newFixtureLoader()
	for _, path := range paths {
		fp, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		findings, err := runAnalyzers([]*Analyzer{a}, Pass{
			Fset:      l.fset,
			Files:     fp.files,
			Pkg:       fp.pkg,
			TypesInfo: fp.info,
		})
		if err != nil {
			t.Fatalf("running %s over %s: %v", a.Name, path, err)
		}
		wants := collectWants(t, l.fset, fp.files)
		for _, f := range findings {
			pos := l.fset.Position(f.diag.Pos)
			matched := false
			for _, w := range wants {
				if !w.matched && w.pos.Filename == pos.Filename && w.pos.Line == pos.Line && w.re.MatchString(f.diag.Message) {
					w.matched = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected %s finding: %s", pos, f.analyzer, f.diag.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: expected a finding matching %q, got none", w.pos, w.re)
			}
		}
	}
}
