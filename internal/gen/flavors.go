package gen

import (
	"fmt"
	"math/rand"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

// This file provides the domain-flavored simulators standing in for the
// real datasets of §6 (which are not redistributable here): a Google+
// style social-attribute network with 30 entity types and 30 keys, and
// a DBpedia-style knowledge base with 495 entity types and 100 keys
// including the Fig. 7 key shapes. Node/edge counts scale with the
// Scale parameter; the duplicate-planting structure (two overlapping
// account universes for Google+, redundantly ingested resources for
// DBpedia) mirrors the entity-resolution task the paper evaluates.

// FlavorConfig controls the flavored generators.
type FlavorConfig struct {
	Seed int64
	// Scale multiplies the base entity counts; 1.0 is the unit size
	// (a few hundred entities), and benchmarks sweep fractions of it.
	Scale float64
}

// Google builds the Google+-flavored workload: users of two social
// networks with profile attributes (employer, university, place, ...),
// friend edges, and a planted overlap of accounts present in both
// networks — the social-network reconciliation task of the paper's
// introduction. 30 entity types, 30 keys; users are identified by
// screen name plus employer (recursive, mutually with employers
// identified by name plus a member), attribute entities by name and a
// containing place wildcard.
func Google(cfg FlavorConfig) (*Workload, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("gen: Scale must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New()
	w := &Workload{Graph: g}

	nUsers := scaled(120, cfg.Scale)
	nAttr := scaled(24, cfg.Scale) // per attribute type
	dupUsers := nUsers / 6
	attrTypes := []string{
		"employer", "university", "place", "major", "degree", "school",
		"hometown", "industry", "department", "club", "team", "language",
		"interest", "skill", "title", "conference", "community", "group",
		"platform", "device", "browser", "carrier", "app", "game",
		"publisher", "label", "venue", "event", "series",
	} // 29 attribute types + user = 30 types

	// DSL: user key (recursive via employer), employer key (recursive
	// via user: mutual recursion), value-based keys for the rest.
	dsl := `
key KUser for user {
    x -screen_name-> sn*
    x -works_at-> $e:employer
}
key KUserEmail for user {
    x -screen_name-> sn*
    x -email-> em*
}
key KEmployer for employer {
    x -name-> n*
    $u:user -works_at-> x
}
key KUniversity for university {
    x -name-> n*
    x -located_in-> _:place
}
`
	for _, at := range attrTypes {
		if at == "employer" || at == "university" || at == "device" {
			continue
		}
		dsl += fmt.Sprintf("key K%s for %s {\n    x -name-> n*\n}\n", at, at)
	}
	set, err := keys.ParseString(dsl)
	if err != nil {
		return nil, fmt.Errorf("gen: google DSL: %v", err)
	}
	w.Keys = set

	// Attribute entities. Duplicated fraction per type shares names.
	attrs := make(map[string][]graph.NodeID)
	for _, at := range attrTypes {
		dups := nAttr / 6
		for i := 0; i < nAttr; i++ {
			e := g.MustAddEntity(fmt.Sprintf("%s%d", at, i), at)
			attrs[at] = append(attrs[at], e)
			name := fmt.Sprintf("%s-name-%d", at, i)
			if i < 2*dups {
				name = fmt.Sprintf("%s-dupname-%d", at, i/2)
			}
			g.MustAddTriple(e, "name", g.AddValue(name))
		}
		// Universities gain a located_in place edge for KUniversity.
		if at == "university" {
			for _, u := range attrs[at] {
				g.MustAddTriple(u, "located_in", g.MustAddEntity(
					fmt.Sprintf("uniplace_%d", rng.Intn(nAttr)), "place"))
			}
		}
	}

	// Expected pairs for duplicated attribute entities. Value-based
	// types: name sharing suffices. Universities: name sharing plus the
	// located_in wildcard (every university has one), so their planted
	// pairs are identified too. Employers have only the recursive
	// KEmployer; their identified pairs come from the user overlap
	// below. "device" has no key at all: its planted pairs stay
	// unidentified load.
	for _, at := range attrTypes {
		if at == "employer" || at == "device" {
			continue
		}
		dups := nAttr / 6
		for j := 0; j < dups; j++ {
			w.Expected = append(w.Expected,
				eqrel.MakePair(int32(attrs[at][2*j]), int32(attrs[at][2*j+1])))
		}
	}

	// Users of network A; the first dupUsers of them also exist in
	// network B with the same screen name. Even-indexed overlap
	// accounts share the employer entity (identified by KUser via the
	// reflexive employer pair); odd-indexed ones work at the two
	// members of a planted duplicate-employer pair and carry an email,
	// so KUserEmail identifies the accounts first and KEmployer then
	// identifies the employer pair — the mutual-recursion cascade of
	// the paper's Q1/Q3.
	empDups := nAttr / 6
	employerPairSeen := make(map[eqrel.Pair]bool)
	for i := 0; i < nUsers; i++ {
		ua := g.MustAddEntity(fmt.Sprintf("netA_u%d", i), "user")
		sn := fmt.Sprintf("sn-%d", i)
		g.MustAddTriple(ua, "screen_name", g.AddValue(sn))
		g.MustAddTriple(ua, "studied_at", attrs["university"][rng.Intn(len(attrs["university"]))])
		g.MustAddTriple(ua, "lives_in", attrs["place"][rng.Intn(len(attrs["place"]))])
		if i >= dupUsers {
			g.MustAddTriple(ua, "works_at", attrs["employer"][rng.Intn(len(attrs["employer"]))])
			continue
		}
		ub := g.MustAddEntity(fmt.Sprintf("netB_u%d", i), "user")
		g.MustAddTriple(ub, "screen_name", g.AddValue(sn))
		if i%2 == 0 || empDups == 0 {
			emp := attrs["employer"][rng.Intn(len(attrs["employer"]))]
			g.MustAddTriple(ua, "works_at", emp)
			g.MustAddTriple(ub, "works_at", emp)
		} else {
			m := (i / 2) % empDups
			emp1, emp2 := attrs["employer"][2*m], attrs["employer"][2*m+1]
			g.MustAddTriple(ua, "works_at", emp1)
			g.MustAddTriple(ub, "works_at", emp2)
			email := g.AddValue(fmt.Sprintf("email-%d@example.org", i))
			g.MustAddTriple(ua, "email", email)
			g.MustAddTriple(ub, "email", email)
			ep := eqrel.MakePair(int32(emp1), int32(emp2))
			if !employerPairSeen[ep] {
				employerPairSeen[ep] = true
				w.Expected = append(w.Expected, ep)
			}
		}
		w.Expected = append(w.Expected, eqrel.MakePair(int32(ua), int32(ub)))
	}
	// Friend edges (noise for the matcher, realism for the graph).
	users := g.EntitiesOfType(mustType(g, "user"))
	for _, u := range users {
		for k := 0; k < 3; k++ {
			g.MustAddTriple(u, "friend", users[rng.Intn(len(users))])
		}
	}
	sortPairs(w.Expected)
	return w, nil
}

// DBpedia builds the DBpedia-flavored workload: 495 entity types (the
// few with Fig. 7 keys plus filler domain types), 100 keys. Books are
// identified by name, a cover artist wildcard and their publisher
// (recursive); companies by their name, CEO's name and parent company
// (recursive, the middle key of Fig. 7); artists by name, birth date
// and birth place name (value-based with a wildcard, the right key of
// Fig. 7). Duplicates are planted as redundantly-ingested resources.
func DBpedia(cfg FlavorConfig) (*Workload, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("gen: Scale must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	g := graph.New()
	w := &Workload{Graph: g}

	dsl := `
key KBook for book {
    x -name-> n*
    x -cover_artist-> _:artist
    x -publisher-> $c:company
}
key KCompany for company {
    x -name-> n1*
    x -ceo-> _p:person
    _p:person -name-> n2*
    x -parent_company-> $pc:company
}
key KCompanyHQ for company {
    x -name-> n*
    x -hq_city-> city*
}
key KArtist for artist {
    x -name-> n1*
    x -birth_date-> d*
    x -birth_place-> _l:location
    _l:location -name-> n2*
}
key KPerson for person {
    x -name-> n*
    x -birth_date-> d*
}
key KLocation for location {
    x -name-> n*
    x -country-> c*
}
`
	// Filler: 94 more value-based keys over filler types (so ||Σ|| =
	// 100 as in the paper), plus enough unkeyed filler types to reach
	// 495 entity types overall.
	const fillerKeyed = 94
	for i := 0; i < fillerKeyed; i++ {
		dsl += fmt.Sprintf("key KF%02d for ftype%02d {\n    x -f_attr%02d-> v*\n}\n", i, i, i)
	}
	set, err := keys.ParseString(dsl)
	if err != nil {
		return nil, fmt.Errorf("gen: dbpedia DSL: %v", err)
	}
	w.Keys = set

	nPer := scaled(30, cfg.Scale)
	dups := nPer / 6

	// Locations.
	var locations []graph.NodeID
	for i := 0; i < nPer; i++ {
		l := g.MustAddEntity(fmt.Sprintf("loc%d", i), "location")
		locations = append(locations, l)
		name := fmt.Sprintf("loc-name-%d", i)
		if i < 2*dups {
			name = fmt.Sprintf("loc-dupname-%d", i/2)
		}
		g.MustAddTriple(l, "name", g.AddValue(name))
		g.MustAddTriple(l, "country", g.AddValue(fmt.Sprintf("country-%d", i%7)))
	}
	// The planted same-name location pairs differ in country
	// (consecutive indices land in different country buckets mod 7),
	// so KLocation never identifies them: they are near-miss load that
	// exercises the pairing filter, and none enter the ground truth.

	// Persons (CEOs etc.).
	var persons []graph.NodeID
	for i := 0; i < nPer; i++ {
		p := g.MustAddEntity(fmt.Sprintf("person%d", i), "person")
		persons = append(persons, p)
		name := fmt.Sprintf("person-name-%d", i)
		date := fmt.Sprintf("19%02d-01-02", i%60)
		if i < 2*dups {
			name = fmt.Sprintf("person-dupname-%d", i/2)
			date = fmt.Sprintf("dup-date-%d", i/2)
		}
		g.MustAddTriple(p, "name", g.AddValue(name))
		g.MustAddTriple(p, "birth_date", g.AddValue(date))
	}
	for j := 0; j < dups; j++ {
		w.Expected = append(w.Expected, eqrel.MakePair(int32(persons[2*j]), int32(persons[2*j+1])))
	}

	// Artists: duplicates share name, date and birth-place *name* (via
	// distinct location entities with equal names — the wildcard plus
	// value-variable shape of Fig. 7 right).
	var artists []graph.NodeID
	for i := 0; i < nPer; i++ {
		a := g.MustAddEntity(fmt.Sprintf("artist%d", i), "artist")
		artists = append(artists, a)
		name := fmt.Sprintf("artist-name-%d", i)
		date := fmt.Sprintf("18%02d-03-04", i%60)
		var place graph.NodeID
		if i < 2*dups {
			name = fmt.Sprintf("artist-dupname-%d", i/2)
			date = fmt.Sprintf("artist-dupdate-%d", i/2)
			// Distinct location entities sharing a name.
			place = g.MustAddEntity(fmt.Sprintf("artist_birthloc_%d_%d", i/2, i%2), "location")
			g.MustAddTriple(place, "name", g.AddValue(fmt.Sprintf("birthloc-dup-%d", i/2)))
		} else {
			place = locations[rng.Intn(len(locations))]
		}
		g.MustAddTriple(a, "name", g.AddValue(name))
		g.MustAddTriple(a, "birth_date", g.AddValue(date))
		g.MustAddTriple(a, "birth_place", place)
	}
	for j := 0; j < dups; j++ {
		w.Expected = append(w.Expected, eqrel.MakePair(int32(artists[2*j]), int32(artists[2*j+1])))
	}

	// Companies: a root company plus duplicates that share name, CEO
	// name (distinct person entities with equal names are fine: the CEO
	// is a wildcard with a value condition) and the same parent-company
	// entity (reflexive entity-variable pair).
	root := g.MustAddEntity("company_root", "company")
	g.MustAddTriple(root, "name", g.AddValue("RootCo"))
	g.MustAddTriple(root, "hq_city", g.AddValue("RootCity"))
	var companies []graph.NodeID
	for i := 0; i < nPer; i++ {
		c := g.MustAddEntity(fmt.Sprintf("company%d", i), "company")
		companies = append(companies, c)
		name := fmt.Sprintf("company-name-%d", i)
		city := fmt.Sprintf("city-%d", i)
		if i < 2*dups {
			name = fmt.Sprintf("company-dupname-%d", i/2)
			city = fmt.Sprintf("dupcity-%d", i/2)
		}
		g.MustAddTriple(c, "name", g.AddValue(name))
		g.MustAddTriple(c, "hq_city", g.AddValue(city))
		g.MustAddTriple(c, "ceo", persons[i%len(persons)])
		g.MustAddTriple(c, "parent_company", root)
	}
	for j := 0; j < dups; j++ {
		w.Expected = append(w.Expected, eqrel.MakePair(int32(companies[2*j]), int32(companies[2*j+1])))
	}

	// Books: duplicates share a name and have cover artists
	// (wildcards). The first half of the planted book pairs publish at
	// the two members of a planted duplicate-company pair, so their
	// identification must wait for the company pair (a dependency
	// cascade); the rest share one publisher entity (reflexive pair).
	var books []graph.NodeID
	for i := 0; i < nPer; i++ {
		b := g.MustAddEntity(fmt.Sprintf("book%d", i), "book")
		books = append(books, b)
		name := fmt.Sprintf("book-name-%d", i)
		if i < 2*dups {
			name = fmt.Sprintf("book-dupname-%d", i/2)
		}
		g.MustAddTriple(b, "name", g.AddValue(name))
		g.MustAddTriple(b, "cover_artist", artists[rng.Intn(len(artists))])
		switch {
		case i < 2*dups && (i/2) < dups/2:
			// Partner 2j -> companies[2j], partner 2j+1 -> companies[2j+1]:
			// a planted duplicate-company pair.
			g.MustAddTriple(b, "publisher", companies[i])
		case i < 2*dups:
			g.MustAddTriple(b, "publisher", companies[(i/2)%len(companies)])
		default:
			g.MustAddTriple(b, "publisher", companies[rng.Intn(len(companies))])
		}
	}
	for j := 0; j < dups; j++ {
		w.Expected = append(w.Expected, eqrel.MakePair(int32(books[2*j]), int32(books[2*j+1])))
	}

	// Filler keyed types with planted value duplicates.
	for ft := 0; ft < fillerKeyed; ft++ {
		tn := fmt.Sprintf("ftype%02d", ft)
		n := scaled(6, cfg.Scale)
		fdups := n / 6
		var es []graph.NodeID
		for i := 0; i < n; i++ {
			e := g.MustAddEntity(fmt.Sprintf("%s_e%d", tn, i), tn)
			es = append(es, e)
			v := fmt.Sprintf("%s-val-%d", tn, i)
			if i < 2*fdups {
				v = fmt.Sprintf("%s-dupval-%d", tn, i/2)
			}
			g.MustAddTriple(e, fmt.Sprintf("f_attr%02d", ft), g.AddValue(v))
		}
		for j := 0; j < fdups; j++ {
			w.Expected = append(w.Expected, eqrel.MakePair(int32(es[2*j]), int32(es[2*j+1])))
		}
	}
	// Unkeyed filler types to reach 495 types in total.
	already := g.NumTypes()
	for i := already; i < 495; i++ {
		e := g.MustAddEntity(fmt.Sprintf("filler_t%d_e0", i), fmt.Sprintf("filler%03d", i))
		g.MustAddTriple(e, "filler_attr", g.AddValue(fmt.Sprintf("fv%d", i)))
	}
	sortPairs(w.Expected)
	return w, nil
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 2 {
		n = 2
	}
	return n
}

func mustType(g *graph.Graph, name string) graph.TypeID {
	t, ok := g.TypeByName(name)
	if !ok {
		panic("gen: missing type " + name)
	}
	return t
}
