// Package gen generates the workloads of the experimental study of
// "Keys for Graphs" (§6): the synthetic graph/key generator controlled
// by the number of entities and values, the dependency-chain length c
// and the key radius d, plus domain-flavored simulators standing in for
// the Google+ and DBpedia datasets (see DESIGN.md §5 for the
// substitution rationale).
//
// Generators plant known duplicate pairs, so every generated workload
// carries its expected chase result; the test suites and the benchmark
// harness verify engines against it.
package gen

import (
	"fmt"
	"math/rand"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

// SyntheticConfig controls the synthetic generator. The zero value is
// not runnable; use DefaultSynthetic as a base.
type SyntheticConfig struct {
	Seed int64
	// TypeGroups is the number of independent dependency chains; each
	// chain contributes Chain+1 entity types, each with one key, so the
	// key count is TypeGroups*(Chain+1).
	TypeGroups int
	// EntitiesPerType is the number of entities of each keyed type.
	EntitiesPerType int
	// DupFraction is the fraction of entities planted as duplicates
	// (each planted entity gets one duplicate partner).
	DupFraction float64
	// NearMissFraction is the fraction of non-duplicate entities at
	// recursive levels that share their attribute value with a partner
	// without sharing children — candidate pairs that survive pairing
	// but fail the recursive check.
	NearMissFraction float64
	// Chain is c: the length of each type chain's dependency path.
	// Level 0 keys are value-based; level l > 0 keys require an
	// identified level l-1 child.
	Chain int
	// Radius is d: keys reach their identifying value through a path of
	// Radius-1 wildcard entities, so d(Q, x) = Radius.
	Radius int
	// Labels is the size of the predicate alphabet (the paper uses
	// 6000); predicates are drawn from it deterministically.
	Labels int
	// NoiseEdgesPerEntity adds random extra edges with random labels.
	NoiseEdgesPerEntity int
}

// DefaultSynthetic mirrors the paper's §6 setting scaled down: 500 keys
// come from 500/(c+1) chains when Chain=c.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{
		Seed:                1,
		TypeGroups:          4,
		EntitiesPerType:     40,
		DupFraction:         0.2,
		NearMissFraction:    0.1,
		Chain:               2,
		Radius:              2,
		Labels:              6000,
		NoiseEdgesPerEntity: 1,
	}
}

// Workload is a generated graph, its key set, and the planted ground
// truth.
type Workload struct {
	Graph *graph.Graph
	Keys  *keys.Set
	// Expected is the set of planted duplicate pairs: the chase result
	// the engines must produce, sorted.
	Expected []eqrel.Pair
}

// Synthetic generates a workload per the configuration.
func Synthetic(cfg SyntheticConfig) (*Workload, error) {
	g := graph.New()
	dsl, expected, err := plantChains(g, cfg, "")
	if err != nil {
		return nil, err
	}
	set, err := keys.ParseString(dsl)
	if err != nil {
		return nil, fmt.Errorf("gen: generated DSL invalid: %v", err)
	}
	w := &Workload{Graph: g, Keys: set, Expected: expected}
	sortPairs(w.Expected)
	return w, nil
}

// PlantChains extends an existing workload with synthetic dependency
// chains of the given chain length and radius: chain types, their keys
// and planted duplicates are added to the workload's graph, key set and
// ground truth. It is how the §6 Exp-3 sweeps attach keys of varying c
// and d to the Google- and DBpedia-flavored graphs. The prefix keeps
// type, key and predicate names disjoint from the base workload's.
func PlantChains(w *Workload, cfg SyntheticConfig, prefix string) error {
	dsl, expected, err := plantChains(w.Graph, cfg, prefix)
	if err != nil {
		return err
	}
	combined := w.Keys.Format() + "\n" + dsl
	set, err := keys.ParseString(combined)
	if err != nil {
		return fmt.Errorf("gen: merged DSL invalid: %v", err)
	}
	w.Keys = set
	w.Expected = append(w.Expected, expected...)
	sortPairs(w.Expected)
	return nil
}

// plantChains writes chain entities/triples into g and returns the key
// DSL plus the planted pairs.
func plantChains(g *graph.Graph, cfg SyntheticConfig, prefix string) (string, []eqrel.Pair, error) {
	if cfg.TypeGroups < 1 || cfg.EntitiesPerType < 2 {
		return "", nil, fmt.Errorf("gen: need at least 1 type group and 2 entities per type")
	}
	if cfg.Chain < 0 || cfg.Radius < 1 {
		return "", nil, fmt.Errorf("gen: Chain must be >= 0 and Radius >= 1")
	}
	if cfg.Labels < cfg.TypeGroups*(cfg.Chain+1)*(cfg.Radius+1)+2 {
		cfg.Labels = cfg.TypeGroups*(cfg.Chain+1)*(cfg.Radius+1) + 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var dsl string
	var expected []eqrel.Pair

	pred := func(i int) string { return fmt.Sprintf("%sp%04d", prefix, i%cfg.Labels) }
	nextPred := 0
	// Key predicates occupy [0, totalKeyPreds); noise draws from the
	// rest of the alphabet so it can never complete a key pattern.
	totalKeyPreds := cfg.TypeGroups * (cfg.Chain + 1) * (cfg.Radius + 1)
	noisePred := func() string {
		return pred(totalKeyPreds + rng.Intn(cfg.Labels-totalKeyPreds))
	}

	for grp := 0; grp < cfg.TypeGroups; grp++ {
		// prev holds the previous level's entities; prevDup maps a
		// duplicate's index to its partner index.
		var prev []graph.NodeID
		for lvl := 0; lvl <= cfg.Chain; lvl++ {
			typeName := fmt.Sprintf("%sT%03d_%d", prefix, grp, lvl)
			auxType := fmt.Sprintf("%sX%03d_%d", prefix, grp, lvl)
			// Predicates for this type's key: Radius chain preds plus a
			// child pred.
			chainPreds := make([]string, cfg.Radius)
			for i := range chainPreds {
				chainPreds[i] = pred(nextPred)
				nextPred++
			}
			childPred := pred(nextPred)
			nextPred++

			// Key DSL: x -p1-> _:aux -p2-> ... -pd-> v*  [+ child].
			keyName := fmt.Sprintf("%sK%03d_%d", prefix, grp, lvl)
			body := ""
			cur := "x"
			for i := 0; i < cfg.Radius-1; i++ {
				w := fmt.Sprintf("_w%d:%s", i, auxType)
				body += fmt.Sprintf("    %s -%s-> %s\n", cur, chainPreds[i], w)
				cur = w
			}
			body += fmt.Sprintf("    %s -%s-> v*\n", cur, chainPreds[cfg.Radius-1])
			if lvl > 0 {
				body += fmt.Sprintf("    x -%s-> $y:%sT%03d_%d\n", childPred, prefix, grp, lvl-1)
			}
			dsl += fmt.Sprintf("key %s for %s {\n%s}\n", keyName, typeName, body)

			// Entities. Index 2i/2i+1 are duplicate partners for the
			// planted fraction.
			n := cfg.EntitiesPerType
			level := make([]graph.NodeID, n)
			nDup := int(float64(n) * cfg.DupFraction / 2)
			nNear := 0
			if lvl > 0 {
				nNear = int(float64(n) * cfg.NearMissFraction / 2)
			}
			// Near-miss partners must point at distinct, non-duplicate
			// children; that needs at least two entities outside the
			// planted ranges.
			if n-(2*nDup+2*nNear) < 2 {
				nNear = 0
			}
			uniqueStart := 2*nDup + 2*nNear
			tail := n - uniqueStart
			for i := 0; i < n; i++ {
				e := g.MustAddEntity(fmt.Sprintf("%s_e%d", typeName, i), typeName)
				level[i] = e
				// Attribute chain: fresh aux entities per entity (the
				// wildcards do not require shared nodes), ending at the
				// identifying value.
				var valueKey string
				switch {
				case i < 2*nDup:
					valueKey = fmt.Sprintf("%s_dv%d", typeName, i/2)
				case i < 2*nDup+2*nNear:
					valueKey = fmt.Sprintf("%s_nm%d", typeName, (i-2*nDup)/2)
				default:
					valueKey = fmt.Sprintf("%s_v%d", typeName, i)
				}
				cur := e
				for hop := 0; hop < cfg.Radius-1; hop++ {
					aux := g.MustAddEntity(fmt.Sprintf("%s_e%d_a%d", typeName, i, hop), auxType)
					g.MustAddTriple(cur, chainPreds[hop], aux)
					cur = aux
				}
				g.MustAddTriple(cur, chainPreds[cfg.Radius-1], g.AddValue(valueKey))
				// Child edge to the previous level: duplicate partners
				// point at duplicate children; near-misses point at
				// unrelated children.
				if lvl > 0 {
					var child graph.NodeID
					switch {
					case i < 2*nDup:
						// Pair (2j, 2j+1) points at the previous
						// level's pair (2j, 2j+1) respectively, which
						// are duplicates of each other — the cascade.
						child = prev[i%len(prev)]
					case i < 2*nDup+2*nNear:
						// Partners share the value but point at
						// distinct non-duplicate children, so the
						// recursive key must fail.
						child = prev[uniqueStart+(i-2*nDup)%tail]
					default:
						child = prev[rng.Intn(len(prev))]
					}
					g.MustAddTriple(e, childPred, child)
				}
				// Noise, from the reserved predicate range.
				for k := 0; k < cfg.NoiseEdgesPerEntity; k++ {
					g.MustAddTriple(e, noisePred(),
						g.AddValue(fmt.Sprintf("noise%d", rng.Intn(1000))))
				}
			}
			for j := 0; j < nDup; j++ {
				expected = append(expected, eqrel.MakePair(int32(level[2*j]), int32(level[2*j+1])))
			}
			prev = level
		}
	}
	return dsl, expected, nil
}

func sortPairs(ps []eqrel.Pair) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func less(a, b eqrel.Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}
