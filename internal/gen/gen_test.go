package gen

import (
	"testing"

	"graphkeys/internal/chase"
	"graphkeys/internal/emmr"
	"graphkeys/internal/emvc"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
)

func samePairs(a, b []eqrel.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSyntheticGroundTruth: the sequential chase on generated synthetic
// workloads recovers exactly the planted duplicates, across chain
// lengths, radii and seeds.
func TestSyntheticGroundTruth(t *testing.T) {
	for _, c := range []int{0, 1, 3} {
		for _, d := range []int{1, 2, 3} {
			for seed := int64(1); seed <= 3; seed++ {
				cfg := DefaultSynthetic()
				cfg.Seed = seed
				cfg.Chain = c
				cfg.Radius = d
				cfg.TypeGroups = 2
				cfg.EntitiesPerType = 20
				w, err := Synthetic(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := chase.Run(w.Graph, w.Keys, chase.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !samePairs(res.Pairs, w.Expected) {
					t.Fatalf("c=%d d=%d seed=%d: chase %d pairs, planted %d\nchase:   %v\nplanted: %v",
						c, d, seed, len(res.Pairs), len(w.Expected), res.Pairs, w.Expected)
				}
				if len(w.Expected) == 0 {
					t.Fatalf("c=%d d=%d: no duplicates planted; workload is vacuous", c, d)
				}
			}
		}
	}
}

// TestSyntheticKeyShape: generated keys have the requested radius and
// dependency chain, and the key count is TypeGroups*(Chain+1).
func TestSyntheticKeyShape(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.Chain = 3
	cfg.Radius = 4
	cfg.TypeGroups = 3
	cfg.EntitiesPerType = 8
	w, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := w.Keys.Cardinality(), 3*4; got != want {
		t.Errorf("||Σ|| = %d, want %d", got, want)
	}
	if got := w.Keys.MaxRadius(); got != 4 {
		t.Errorf("max radius = %d, want 4", got)
	}
	c, cyclic := w.Keys.LongestChain()
	if cyclic {
		t.Error("synthetic chains must be acyclic")
	}
	if c != 3 {
		t.Errorf("longest chain = %d, want 3", c)
	}
}

// TestSyntheticEnginesAgree: both parallel engine families reproduce
// the planted ground truth.
func TestSyntheticEnginesAgree(t *testing.T) {
	cfg := DefaultSynthetic()
	cfg.TypeGroups = 2
	cfg.EntitiesPerType = 16
	w, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []emmr.Variant{emmr.Base, emmr.Opt} {
		res, err := emmr.Run(w.Graph, w.Keys, emmr.Config{P: 4, Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		if !samePairs(res.Pairs, w.Expected) {
			t.Fatalf("%v: differs from planted truth", v)
		}
	}
	for _, v := range []emvc.Variant{emvc.Base, emvc.Opt} {
		res, err := emvc.Run(w.Graph, w.Keys, emvc.Config{P: 4, Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		if !samePairs(res.Pairs, w.Expected) {
			t.Fatalf("%v: differs from planted truth", v)
		}
	}
}

// TestSyntheticDeterministic: equal seeds produce equal workloads.
func TestSyntheticDeterministic(t *testing.T) {
	cfg := DefaultSynthetic()
	w1, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Graph.NumTriples() != w2.Graph.NumTriples() || !samePairs(w1.Expected, w2.Expected) {
		t.Error("same seed produced different workloads")
	}
	cfg.Seed = 99
	w3, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Graph.NumTriples() == w3.Graph.NumTriples() && samePairs(w1.Expected, w3.Expected) {
		// Same counts are plausible; identical noise is not. Compare a
		// serialization-level property instead: triple count plus value
		// count.
		if w1.Graph.NumNodes() == w3.Graph.NumNodes() {
			t.Log("different seeds produced suspiciously similar workloads (allowed, but worth a look)")
		}
	}
}

// TestSyntheticConfigValidation: bad configs error.
func TestSyntheticConfigValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{TypeGroups: 0, EntitiesPerType: 10, Chain: 1, Radius: 1},
		{TypeGroups: 1, EntitiesPerType: 1, Chain: 1, Radius: 1},
		{TypeGroups: 1, EntitiesPerType: 10, Chain: -1, Radius: 1},
		{TypeGroups: 1, EntitiesPerType: 10, Chain: 1, Radius: 0},
	}
	for i, cfg := range bad {
		if _, err := Synthetic(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestGoogleGroundTruth: the Google+-flavored workload's chase result
// matches its planted truth, and the type/key counts match the paper.
func TestGoogleGroundTruth(t *testing.T) {
	w, err := Google(FlavorConfig{Seed: 3, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Keys.Cardinality(); got != 30 {
		t.Errorf("google keys = %d, want 30", got)
	}
	res, err := chase.Run(w.Graph, w.Keys, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(res.Pairs, w.Expected) {
		t.Fatalf("chase %d pairs, planted %d\nchase:   %v\nplanted: %v",
			len(res.Pairs), len(w.Expected), res.Pairs, w.Expected)
	}
	// The mutual-recursion cascade must be present: at least one
	// employer pair in the truth.
	foundEmployer := false
	for _, pr := range w.Expected {
		if w.Graph.TypeName(w.Graph.TypeOf(graph.NodeID(pr.A))) == "employer" {
			foundEmployer = true
		}
	}
	if !foundEmployer {
		t.Error("no employer pair planted; mutual recursion unexercised")
	}
	c, cyclic := w.Keys.LongestChain()
	if !cyclic {
		t.Error("google keys should be mutually recursive (user <-> employer)")
	}
	_ = c
}

// TestDBpediaGroundTruth: likewise for the DBpedia-flavored workload.
func TestDBpediaGroundTruth(t *testing.T) {
	w, err := DBpedia(FlavorConfig{Seed: 5, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Keys.Cardinality(); got != 100 {
		t.Errorf("dbpedia keys = %d, want 100", got)
	}
	if got := w.Graph.NumTypes(); got != 495 {
		t.Errorf("dbpedia types = %d, want 495", got)
	}
	res, err := chase.Run(w.Graph, w.Keys, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !samePairs(res.Pairs, w.Expected) {
		t.Fatalf("chase %d pairs, planted %d", len(res.Pairs), len(w.Expected))
	}
}

// TestFlavorEnginesAgree: the parallel engines agree on both flavored
// workloads.
func TestFlavorEnginesAgree(t *testing.T) {
	for _, mk := range []struct {
		name string
		mk   func() (*Workload, error)
	}{
		{"google", func() (*Workload, error) { return Google(FlavorConfig{Seed: 1, Scale: 0.3}) }},
		{"dbpedia", func() (*Workload, error) { return DBpedia(FlavorConfig{Seed: 1, Scale: 0.3}) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			w, err := mk.mk()
			if err != nil {
				t.Fatal(err)
			}
			mrRes, err := emmr.Run(w.Graph, w.Keys, emmr.Config{P: 4, Variant: emmr.Opt})
			if err != nil {
				t.Fatal(err)
			}
			if !samePairs(mrRes.Pairs, w.Expected) {
				t.Errorf("EMOptMR differs from planted truth")
			}
			vcRes, err := emvc.Run(w.Graph, w.Keys, emvc.Config{P: 4, Variant: emvc.Opt})
			if err != nil {
				t.Fatal(err)
			}
			if !samePairs(vcRes.Pairs, w.Expected) {
				t.Errorf("EMOptVC differs from planted truth")
			}
		})
	}
}

// TestFlavorConfigValidation: scale must be positive.
func TestFlavorConfigValidation(t *testing.T) {
	if _, err := Google(FlavorConfig{Scale: 0}); err == nil {
		t.Error("google accepted zero scale")
	}
	if _, err := DBpedia(FlavorConfig{Scale: -1}); err == nil {
		t.Error("dbpedia accepted negative scale")
	}
}

// TestScaleMonotone: larger scales produce larger graphs.
func TestScaleMonotone(t *testing.T) {
	small, err := Google(FlavorConfig{Seed: 1, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Google(FlavorConfig{Seed: 1, Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if big.Graph.NumTriples() <= small.Graph.NumTriples() {
		t.Errorf("scale 1.0 (%d triples) not larger than scale 0.3 (%d)",
			big.Graph.NumTriples(), small.Graph.NumTriples())
	}
}
