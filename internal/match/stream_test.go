package match

import (
	"fmt"
	"reflect"
	"slices"
	"testing"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/fixtures"
	"graphkeys/internal/gen"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/obs"
	"graphkeys/internal/testutil"
)

// streamCase is one workload the streaming pipeline must agree with
// the materialized candidate builders on.
type streamCase struct {
	name string
	g    *graph.Graph
	set  *keys.Set
}

// streamCases sweeps the paper fixtures, every internal/testutil
// generator configuration (seed plus two churn rounds applied, so the
// graph carries removals and re-adds), synthetic chains across radii,
// and both flavored generators.
func streamCases(t *testing.T) []streamCase {
	t.Helper()
	cases := []streamCase{
		{"music", fixtures.MusicGraph(), fixtures.MusicKeys()},
		{"company", fixtures.CompanyGraph(), fixtures.CompanyKeys()},
		{"address", fixtures.AddressGraph(), fixtures.AddressKeys()},
	}
	for i, cfg := range []testutil.Config{
		{Seed: 1},
		{Seed: 2, Groups: 6, PerGroup: 10, Overlap: 0.5},
		{Seed: 3, Bands: true},
		{Seed: 4, Bands: true, EntityChurn: true, Coalesce: true, Overlap: 0.3},
		{Seed: 5, Groups: 2, PerGroup: 4, Bands: true, EntityChurn: true},
	} {
		gn := testutil.New(cfg)
		g := graph.New()
		if _, err := g.ApplyDelta(gn.Seed()); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			for _, d := range gn.Round(round) {
				if _, err := g.ApplyDelta(d); err != nil {
					t.Fatal(err)
				}
			}
		}
		set, err := keys.ParseString(gn.Keys())
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, streamCase{fmt.Sprintf("testutil-%d", i), g, set})
	}
	for _, cfg := range []struct{ chain, radius int }{{0, 1}, {1, 1}, {2, 2}, {1, 3}} {
		c := gen.DefaultSynthetic()
		c.Chain = cfg.chain
		c.Radius = cfg.radius
		w, err := gen.Synthetic(c)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, streamCase{fmt.Sprintf("synthetic_c%d_d%d", cfg.chain, cfg.radius), w.Graph, w.Keys})
	}
	for _, fl := range []struct {
		name  string
		build func(gen.FlavorConfig) (*gen.Workload, error)
	}{{"google", gen.Google}, {"dbpedia", gen.DBpedia}} {
		w, err := fl.build(gen.FlavorConfig{Seed: 1, Scale: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, streamCase{fl.name, w.Graph, w.Keys})
	}
	return cases
}

// TestCandidateStreamMatchesIndexed is the pipeline's property test:
// on every workload the collected stream equals CandidatesIndexed
// elementwise — same pairs, same order — and the filtered stream
// equals FilterPaired of the same list. (The greedy reorderings only
// permute commutative unions and intersections, so even the order is
// preserved, which is stronger than the set equality the chase needs.)
func TestCandidateStreamMatchesIndexed(t *testing.T) {
	for _, tc := range streamCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New(tc.g, tc.set, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := m.CandidatesIndexed()
			got := slices.Collect(m.CandidateStream())
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("stream diverges from CandidatesIndexed\ngot:  %v\nwant: %v", got, want)
			}
			pairedWant := m.FilterPaired(slices.Clone(want))
			if len(pairedWant) == 0 {
				pairedWant = nil
			}
			pairedGot := slices.Collect(m.FilterStream(m.CandidateStream()))
			if !reflect.DeepEqual(pairedGot, pairedWant) {
				t.Fatalf("filtered stream diverges from FilterPaired\ngot:  %v\nwant: %v", pairedGot, pairedWant)
			}
		})
	}
}

// TestPartnerStreamAgreesWithCandidates: the per-entity stream is the
// row view of the candidate set — PartnerStream(e) yields exactly the
// q with {e, q} in CandidatesIndexed, ascending (the partner relation
// is symmetric: shared anchors and shared buckets look the same from
// both sides).
func TestPartnerStreamAgreesWithCandidates(t *testing.T) {
	for _, tc := range streamCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New(tc.g, tc.set, Options{})
			if err != nil {
				t.Fatal(err)
			}
			ref := make(map[graph.NodeID][]graph.NodeID)
			for _, pr := range m.CandidatesIndexed() {
				a, b := graph.NodeID(pr.A), graph.NodeID(pr.B)
				ref[a] = append(ref[a], b)
				ref[b] = append(ref[b], a)
			}
			for _, e32 := range m.KeyedEntities() {
				e := graph.NodeID(e32)
				want := ref[e]
				slices.Sort(want)
				got := slices.Collect(m.PartnerStream(e))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("PartnerStream(%d) = %v, want %v", e, got, want)
				}
			}
		})
	}
}

// withStreamObs installs a fresh instrument bundle on the matcher for
// the duration of the test and returns it.
func withStreamObs(t *testing.T, m *Matcher) *Obs {
	t.Helper()
	prev := m.Opts.Obs
	t.Cleanup(func() { m.Opts.Obs = prev })
	m.Opts.Obs = NewObs(obs.NewRegistry())
	return m.Opts.Obs
}

// TestStreamEarlyTermination: a consumer that stops after the first
// candidate must stop the joins mid-flight — strictly fewer posting
// pulls than draining the stream, and exactly one candidate counted.
func TestStreamEarlyTermination(t *testing.T) {
	g, set := fixtures.MusicGraph(), fixtures.MusicKeys()
	m, err := New(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ob := withStreamObs(t, m)
	for range m.CandidateStream() {
	}
	full := ob.PostingsScanned.Value()
	streamed := ob.CandidatesStreamed.Value()
	if streamed < 2 || full < 2 {
		t.Fatalf("workload too small to observe termination: %d candidates, %d postings", streamed, full)
	}

	ob = withStreamObs(t, m)
	for range m.CandidateStream() {
		break
	}
	if got := ob.CandidatesStreamed.Value(); got != 1 {
		t.Errorf("after break: %d candidates streamed, want 1", got)
	}
	if got := ob.PostingsScanned.Value(); got >= full {
		t.Errorf("after break: %d postings scanned, full drain takes %d — the stream kept pulling", got, full)
	}
}

// TestConstantRejectStopsPostings: the greedy plan probes constant
// anchors first, so an entity missing the constant rejects after a
// single posting probe — the value-variable anchor's postings are
// never pulled.
func TestConstantRejectStopsPostings(t *testing.T) {
	g := graph.New()
	uk := g.AddValue("UK")
	zip := g.AddValue("2000")
	a := g.MustAddEntity("a", "street")
	b := g.MustAddEntity("b", "street")
	c := g.MustAddEntity("c", "street")
	for _, e := range []graph.NodeID{a, b} {
		g.MustAddTriple(e, "nation_of", uk)
		g.MustAddTriple(e, "zip_code", zip)
	}
	// c shares the zip but is not in the UK: the constant probe must
	// reject it before the zip posting list is pulled.
	g.MustAddTriple(c, "zip_code", zip)
	set, err := keys.ParseString("key Q for street {\n    x -zip_code-> code*\n    x -nation_of-> \"UK\"\n}")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}

	ob := withStreamObs(t, m)
	if got := slices.Collect(m.PartnerStream(c)); got != nil {
		t.Fatalf("partners(c) = %v, want none", got)
	}
	if got := ob.PostingsScanned.Value(); got != 1 {
		t.Errorf("rejected entity scanned %d posting lists, want 1 (the constant probe alone)", got)
	}

	ob = withStreamObs(t, m)
	if got := slices.Collect(m.PartnerStream(a)); !reflect.DeepEqual(got, []graph.NodeID{b}) {
		t.Fatalf("partners(a) = %v, want [b]", got)
	}
	if got := ob.PostingsScanned.Value(); got != 2 {
		t.Errorf("accepted entity scanned %d posting lists, want 2 (constant probe + zip postings)", got)
	}

	// The pair survives the full pipeline.
	want := []eqrel.Pair{eqrel.MakePair(int32(a), int32(b))}
	if got := slices.Collect(m.CandidateStream()); !reflect.DeepEqual(got, want) {
		t.Fatalf("stream = %v, want %v", got, want)
	}
}
