package match

import (
	"strings"
	"testing"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/fixtures"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

func newMatcher(t *testing.T, g *graph.Graph, set *keys.Set) *Matcher {
	t.Helper()
	m, err := New(g, set, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func node(t *testing.T, g *graph.Graph, id string) graph.NodeID {
	t.Helper()
	n, ok := g.Entity(id)
	if !ok {
		t.Fatalf("entity %s missing", id)
	}
	return n
}

// TestValueBasedKeyIdentifies mirrors Example 7 round 1: Q2 identifies
// (alb1, alb2) under Eq0, and identifies nothing else.
func TestValueBasedKeyIdentifies(t *testing.T) {
	g := fixtures.MusicGraph()
	m := newMatcher(t, g, fixtures.MusicKeys())
	eq := eqrel.New(g.NumNodes())
	alb1, alb2, alb3 := node(t, g, "alb1"), node(t, g, "alb2"), node(t, g, "alb3")

	ok, by, _ := m.Identified(alb1, alb2, eq)
	if !ok {
		t.Fatal("Q2 should identify (alb1, alb2)")
	}
	if by.Key.Name != "Q2" {
		t.Errorf("identified by %s, want Q2 (cheap value-based key first)", by.Key.Name)
	}
	if ok, _, _ := m.Identified(alb1, alb3, eq); ok {
		t.Error("(alb1, alb3) must not be identified (different year/artist)")
	}
	if ok, _, _ := m.Identified(alb2, alb3, eq); ok {
		t.Error("(alb2, alb3) must not be identified")
	}
}

// TestRecursiveKeyNeedsEq mirrors Example 7 round 2: Q3 identifies
// (art1, art2) only after (alb1, alb2) is in Eq.
func TestRecursiveKeyNeedsEq(t *testing.T) {
	g := fixtures.MusicGraph()
	m := newMatcher(t, g, fixtures.MusicKeys())
	eq := eqrel.New(g.NumNodes())
	alb1, alb2 := node(t, g, "alb1"), node(t, g, "alb2")
	art1, art2 := node(t, g, "art1"), node(t, g, "art2")

	if ok, _, _ := m.Identified(art1, art2, eq); ok {
		t.Fatal("(art1, art2) must not be identified before their albums")
	}
	eq.Union(int32(alb1), int32(alb2))
	ok, by, _ := m.Identified(art1, art2, eq)
	if !ok {
		t.Fatal("(art1, art2) should be identified once (alb1, alb2) ∈ Eq")
	}
	if by.Key.Name != "Q3" {
		t.Errorf("identified by %s, want Q3", by.Key.Name)
	}
}

// TestWildcardNoIdentity mirrors Example 7 on G2: Q4 identifies
// (com4, com5) under Eq0 because the same-named parent is a wildcard.
func TestWildcardNoIdentity(t *testing.T) {
	g := fixtures.CompanyGraph()
	m := newMatcher(t, g, fixtures.CompanyKeys())
	eq := eqrel.New(g.NumNodes())
	com4, com5 := node(t, g, "com4"), node(t, g, "com5")
	ok, by, _ := m.Identified(com4, com5, eq)
	if !ok {
		t.Fatal("Q4 should identify (com4, com5) under Eq0")
	}
	if by.Key.Name != "Q4" {
		t.Errorf("identified by %s, want Q4", by.Key.Name)
	}
	com1, com2 := node(t, g, "com1"), node(t, g, "com2")
	ok, by, _ = m.Identified(com1, com2, eq)
	if !ok {
		t.Fatal("Q5 should identify (com1, com2) via shared children")
	}
	if by.Key.Name != "Q5" {
		t.Errorf("identified by %s, want Q5", by.Key.Name)
	}
	// No cross pairs.
	com0 := node(t, g, "com0")
	eq.Union(int32(com1), int32(com2))
	eq.Union(int32(com4), int32(com5))
	for _, other := range []graph.NodeID{com1, com4} {
		if ok, _, _ := m.Identified(com0, other, eq); ok {
			t.Errorf("(com0, %s) must not be identified", g.Label(other))
		}
	}
}

// TestConstantCondition checks Q6: equal zip codes identify UK streets
// but not US streets.
func TestConstantCondition(t *testing.T) {
	g := fixtures.AddressGraph()
	m := newMatcher(t, g, fixtures.AddressKeys())
	eq := eqrel.New(g.NumNodes())
	st1, st2, st3 := node(t, g, "st1"), node(t, g, "st2"), node(t, g, "st3")
	us1, us2 := node(t, g, "us1"), node(t, g, "us2")
	if ok, _, _ := m.Identified(st1, st2, eq); !ok {
		t.Error("Q6 should identify the duplicate UK streets")
	}
	if ok, _, _ := m.Identified(us1, us2, eq); ok {
		t.Error("Q6 must not identify US streets")
	}
	if ok, _, _ := m.Identified(st1, st3, eq); ok {
		t.Error("different zip codes must not be identified")
	}
}

// TestInjectivityWithinSide builds a case where the only way to match
// would map two pattern nodes to one graph node, which subgraph
// isomorphism forbids.
func TestInjectivityWithinSide(t *testing.T) {
	set, err := keys.ParseString(`
key K for t {
    x -p-> _a:u
    x -q-> _b:u
}`)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	// e1 has distinct u-neighbors; e2 has a single u serving both edges.
	e1 := g.MustAddEntity("e1", "t")
	e2 := g.MustAddEntity("e2", "t")
	u1 := g.MustAddEntity("u1", "u")
	u2 := g.MustAddEntity("u2", "u")
	u3 := g.MustAddEntity("u3", "u")
	g.MustAddTriple(e1, "p", u1)
	g.MustAddTriple(e1, "q", u2)
	g.MustAddTriple(e2, "p", u3)
	g.MustAddTriple(e2, "q", u3)
	m := newMatcher(t, g, set)
	eq := eqrel.New(g.NumNodes())
	if ok, _, _ := m.Identified(e1, e2, eq); ok {
		t.Error("injectivity violated: e2's single u node matched two pattern nodes")
	}
}

// TestCrossSideSharingAllowed: the same graph node may appear on both
// sides of the combined search (ν1 and ν2 are independent valuations).
func TestCrossSideSharingAllowed(t *testing.T) {
	g := graph.New()
	a1 := g.MustAddEntity("a1", "album")
	a2 := g.MustAddEntity("a2", "album")
	art := g.MustAddEntity("art", "artist")
	name := g.AddValue("X")
	g.MustAddTriple(a1, "name_of", name)
	g.MustAddTriple(a2, "name_of", name)
	g.MustAddTriple(a1, "recorded_by", art)
	g.MustAddTriple(a2, "recorded_by", art)
	set, err := keys.ParseString(`
key Q1 for album {
    x -name_of-> name*
    x -recorded_by-> $y:artist
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := newMatcher(t, g, set)
	eq := eqrel.New(g.NumNodes())
	if ok, _, _ := m.Identified(a1, a2, eq); !ok {
		t.Error("shared artist node (reflexive Eq pair) should allow identification")
	}
}

func TestUnmatchableKeyCompiles(t *testing.T) {
	g := fixtures.MusicGraph()
	set, err := keys.ParseString(`
key K for album {
    x -no_such_pred-> v*
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := newMatcher(t, g, set)
	for _, ck := range m.KeysFor(mustType(t, g, "album")) {
		if ck.Matchable() {
			t.Error("key with unknown predicate compiled as matchable")
		}
	}
	alb1, alb2 := node(t, g, "alb1"), node(t, g, "alb2")
	if ok, _, _ := m.Identified(alb1, alb2, eqrel.New(g.NumNodes())); ok {
		t.Error("key with unknown predicate identified a pair")
	}
}

func mustType(t *testing.T, g *graph.Graph, name string) graph.TypeID {
	t.Helper()
	id, ok := g.TypeByName(name)
	if !ok {
		t.Fatalf("type %s missing", name)
	}
	return id
}

// TestDNeighborLocality: checking within the d-neighbors equals checking
// in the whole graph (§4.1 data locality), on the music fixture.
func TestDNeighborLocality(t *testing.T) {
	g := fixtures.MusicGraph()
	m := newMatcher(t, g, fixtures.MusicKeys())
	eq := eqrel.New(g.NumNodes())
	alb1, alb2 := node(t, g, "alb1"), node(t, g, "alb2")
	tid := mustType(t, g, "album")
	for _, ck := range m.KeysFor(tid) {
		inD, _ := m.IdentifiedByKey(ck, alb1, alb2, m.Neighborhood(alb1), m.Neighborhood(alb2), eq)
		whole, _ := m.IdentifiedByKey(ck, alb1, alb2, nil, nil, eq)
		if inD != whole {
			t.Errorf("%s: d-neighbor check = %v, whole graph = %v", ck.Key.Name, inD, whole)
		}
	}
}

// TestVF2AgreesOnFixtures: the enumerate-then-coincide baseline and the
// guided search agree on every candidate pair of the fixtures, at both
// Eq0 and a grown Eq.
func TestVF2AgreesOnFixtures(t *testing.T) {
	type fixture struct {
		name string
		g    *graph.Graph
		set  *keys.Set
	}
	for _, fx := range []fixture{
		{"music", fixtures.MusicGraph(), fixtures.MusicKeys()},
		{"company", fixtures.CompanyGraph(), fixtures.CompanyKeys()},
		{"address", fixtures.AddressGraph(), fixtures.AddressKeys()},
	} {
		t.Run(fx.name, func(t *testing.T) {
			m := newMatcher(t, fx.g, fx.set)
			eq := eqrel.New(fx.g.NumNodes())
			for round := 0; round < 3; round++ {
				for _, pr := range m.Candidates() {
					e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
					g1, _, _ := m.Identified(e1, e2, eq)
					g2, _, _ := m.IdentifiedVF2(e1, e2, eq)
					if g1 != g2 {
						t.Fatalf("round %d pair (%s,%s): guided=%v vf2=%v",
							round, fx.g.Label(e1), fx.g.Label(e2), g1, g2)
					}
					if g1 {
						eq.Union(pr.A, pr.B)
					}
				}
			}
		})
	}
}

// TestWitness: the witness of a recursive identification contains the
// prerequisite pair.
func TestWitness(t *testing.T) {
	g := fixtures.MusicGraph()
	m := newMatcher(t, g, fixtures.MusicKeys())
	eq := eqrel.New(g.NumNodes())
	alb1, alb2 := node(t, g, "alb1"), node(t, g, "alb2")
	art1, art2 := node(t, g, "art1"), node(t, g, "art2")
	eq.Union(int32(alb1), int32(alb2))
	tid := mustType(t, g, "artist")
	var q3 *CompiledKey
	for _, ck := range m.KeysFor(tid) {
		if ck.Key.Name == "Q3" {
			q3 = ck
		}
	}
	ok, reqs, _ := m.IdentifiedByKeyWitness(q3, art1, art2, m.Neighborhood(art1), m.Neighborhood(art2), eq)
	if !ok {
		t.Fatal("Q3 witness check failed")
	}
	if len(reqs) != 1 || eqrel.MakePair(int32(reqs[0][0]), int32(reqs[0][1])) != eqrel.MakePair(int32(alb1), int32(alb2)) {
		t.Errorf("witness requires = %v, want [(alb1, alb2)]", reqs)
	}
}

// TestCandidates checks L construction (§4.1): same-type pairs of keyed
// types only.
func TestCandidates(t *testing.T) {
	g := fixtures.MusicGraph()
	m := newMatcher(t, g, fixtures.MusicKeys())
	cands := m.Candidates()
	// 3 albums -> 3 pairs; 3 artists -> 3 pairs.
	if len(cands) != 6 {
		t.Fatalf("len(L) = %d, want 6", len(cands))
	}
	for _, pr := range cands {
		if g.TypeOf(graph.NodeID(pr.A)) != g.TypeOf(graph.NodeID(pr.B)) {
			t.Error("candidate pair with mixed types")
		}
		if pr.A >= pr.B {
			t.Error("candidate pair not normalized")
		}
	}
}

// TestCandidatesOnlyKeyedTypes: a graph type with no key contributes no
// candidates.
func TestCandidatesOnlyKeyedTypes(t *testing.T) {
	g := fixtures.MusicGraph()
	g.MustAddEntity("x1", "label")
	g.MustAddEntity("x2", "label")
	m := newMatcher(t, g, fixtures.MusicKeys())
	for _, pr := range m.Candidates() {
		tn := g.TypeName(g.TypeOf(graph.NodeID(pr.A)))
		if tn == "label" {
			t.Fatal("unkeyed type appeared in L")
		}
	}
}

// TestPairingNecessary (Proposition 9a): every pair identified under any
// reachable Eq can be paired; unpairable pairs are never identified.
func TestPairingNecessary(t *testing.T) {
	g := fixtures.MusicGraph()
	m := newMatcher(t, g, fixtures.MusicKeys())
	// Grow Eq to the full chase fixpoint by brute force.
	eq := eqrel.New(g.NumNodes())
	for round := 0; round < 4; round++ {
		for _, pr := range m.Candidates() {
			if ok, _, _ := m.Identified(graph.NodeID(pr.A), graph.NodeID(pr.B), eq); ok {
				eq.Union(pr.A, pr.B)
			}
		}
	}
	for _, pr := range m.Candidates() {
		e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
		identified := eq.Same(pr.A, pr.B)
		paired := m.CanBePaired(e1, e2)
		if identified && !paired {
			t.Errorf("(%s,%s) identified but not paired: pairing is not necessary",
				g.Label(e1), g.Label(e2))
		}
	}
}

// TestPairingFiltersHopeless: a pair with no shared structure at all is
// filtered out by pairing.
func TestPairingFiltersHopeless(t *testing.T) {
	g := fixtures.MusicGraph()
	alb1, alb3 := node(t, g, "alb1"), node(t, g, "alb3")
	// alb1 and alb3 share name "Anthology 2" and are paired by Q1/Q2's
	// structure (both have name, artist; alb3 has no release_year though).
	// Q2 requires release_year on both; alb3 lacks it, Q1 requires
	// recorded_by which both have with same-named... artists differ in
	// name ("The Beatles" vs "John Farnham") but Q1's y is an entity var:
	// pairing does not check Eq, only type. So (alb1, alb3) stays paired
	// by Q1. Construct instead a pair with no shared name value:
	solo := g.MustAddEntity("solo", "album")
	g.MustAddTriple(solo, "name_of", g.AddValue("Unique Name"))
	m2 := newMatcher(t, g, fixtures.MusicKeys())
	if m2.CanBePaired(alb1, solo) {
		t.Error("(alb1, solo) share no name value; pairing should reject")
	}
	_ = alb3
	cands := m2.CandidatesPaired()
	for _, pr := range cands {
		if graph.NodeID(pr.A) == solo || graph.NodeID(pr.B) == solo {
			t.Error("solo album must be filtered from paired L")
		}
	}
}

// TestReducedNeighborhoods: reduction preserves the identification
// outcome (§4.2) and never grows the node sets.
func TestReducedNeighborhoods(t *testing.T) {
	g := fixtures.CompanyGraph()
	m := newMatcher(t, g, fixtures.CompanyKeys())
	eq := eqrel.New(g.NumNodes())
	for _, pr := range m.Candidates() {
		e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
		full, _, _ := m.Identified(e1, e2, eq)
		r1, r2, paired := m.ReducedNeighborhoods(e1, e2)
		if !paired {
			if full {
				t.Fatalf("(%s,%s) identified but not paired", g.Label(e1), g.Label(e2))
			}
			continue
		}
		if r1.Len() > m.Neighborhood(e1).Len() || r2.Len() > m.Neighborhood(e2).Len() {
			t.Errorf("(%s,%s): reduction grew the neighborhoods", g.Label(e1), g.Label(e2))
		}
		var got bool
		for _, ck := range m.KeysFor(g.TypeOf(e1)) {
			if ok, _ := m.IdentifiedByKey(ck, e1, e2, r1, r2, eq); ok {
				got = true
				break
			}
		}
		if got != full {
			t.Errorf("(%s,%s): reduced check = %v, full = %v", g.Label(e1), g.Label(e2), got, full)
		}
	}
}

// TestDependencyIndex: (art1, art2) depends on the album pairs in its
// neighborhoods; value-based seeding classifies album pairs as seeds.
func TestDependencyIndex(t *testing.T) {
	g := fixtures.MusicGraph()
	m := newMatcher(t, g, fixtures.MusicKeys())
	cands := m.Candidates()
	idx := m.BuildDependencyIndex(cands)
	alb1 := node(t, g, "alb1")
	deps := idx.Dependents(alb1)
	// alb1 is within 1 hop of art1; artist pairs involving art1 depend on it.
	foundArtistPair := false
	for _, i := range deps {
		pr := cands[i]
		if g.TypeName(g.TypeOf(graph.NodeID(pr.A))) == "artist" {
			foundArtistPair = true
		}
	}
	if !foundArtistPair {
		t.Error("no artist pair depends on alb1")
	}
	for i, pr := range cands {
		tn := g.TypeName(g.TypeOf(graph.NodeID(pr.A)))
		switch tn {
		case "album":
			if !idx.HasValueSeed(i) {
				t.Error("album pairs have value-based Q2; must be seeds")
			}
		case "artist":
			if idx.HasValueSeed(i) {
				t.Error("artist pairs have only recursive Q3; must not be seeds")
			}
			if !idx.RecursiveOnly(i) {
				t.Error("artist pairs must be recursive-only")
			}
		}
	}
	if got := len(idx.Pairs()); got != len(cands) {
		t.Errorf("index pairs = %d, want %d", got, len(cands))
	}
}

// TestValueEqSimilarity exercises the pluggable value-equality hook
// (paper Remark (1)) with a case-insensitive matcher.
func TestValueEqSimilarity(t *testing.T) {
	g := graph.New()
	a1 := g.MustAddEntity("a1", "album")
	a2 := g.MustAddEntity("a2", "album")
	g.MustAddTriple(a1, "name_of", g.AddValue("anthology"))
	g.MustAddTriple(a2, "name_of", g.AddValue("ANTHOLOGY"))
	g.MustAddTriple(a1, "release_year", g.AddValue("1996"))
	g.MustAddTriple(a2, "release_year", g.AddValue("1996"))
	set, err := keys.ParseString(`
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}`)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := New(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eq := eqrel.New(g.NumNodes())
	if ok, _, _ := exact.Identified(a1, a2, eq); ok {
		t.Error("exact equality must not match different case")
	}
	ci, err := New(g, set, Options{ValueEq: strings.EqualFold})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := ci.Identified(a1, a2, eq); !ok {
		t.Error("case-insensitive ValueEq should match")
	}
	// Pairing must respect the custom predicate too.
	if !ci.CanBePaired(a1, a2) {
		t.Error("pairing with custom ValueEq should succeed")
	}
}

// TestSelfLoopPattern: a pattern triple x -p-> x requires a graph
// self-loop on both entities.
func TestSelfLoopPattern(t *testing.T) {
	set, err := keys.ParseString(`
key K for t {
    x -self-> x
    x -name-> v*
}`)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	e1 := g.MustAddEntity("e1", "t")
	e2 := g.MustAddEntity("e2", "t")
	e3 := g.MustAddEntity("e3", "t")
	v := g.AddValue("n")
	g.MustAddTriple(e1, "self", e1)
	g.MustAddTriple(e2, "self", e2)
	g.MustAddTriple(e1, "name", v)
	g.MustAddTriple(e2, "name", v)
	g.MustAddTriple(e3, "name", v) // no self-loop
	m := newMatcher(t, g, set)
	eq := eqrel.New(g.NumNodes())
	if ok, _, _ := m.Identified(e1, e2, eq); !ok {
		t.Error("self-loop pair should be identified")
	}
	if ok, _, _ := m.Identified(e1, e3, eq); ok {
		t.Error("e3 lacks the self-loop; must not be identified")
	}
	// The VF2 baseline must agree.
	if ok, _, _ := m.IdentifiedVF2(e1, e2, eq); !ok {
		t.Error("VF2: self-loop pair should be identified")
	}
	if ok, _, _ := m.IdentifiedVF2(e1, e3, eq); ok {
		t.Error("VF2: e3 lacks the self-loop")
	}
}

// TestIdentityView: the Identity EqView relates only equal IDs.
func TestIdentityView(t *testing.T) {
	id := Identity()
	if !id.Same(3, 3) || id.Same(3, 4) {
		t.Error("Identity() misbehaves")
	}
}
