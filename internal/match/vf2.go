package match

import "graphkeys/internal/graph"

// This file implements the baseline checker used by EM^VF2_MR in §6: a
// VF2-flavored subgraph-isomorphism enumeration that first lists every
// match S1 of Q(x) at e1 and every match S2 at e2 independently, and
// only then tests whether some S1(e1) coincides with some S2(e2) under
// Eq. Unlike EvalMR there is no cross-side pruning and no early
// termination of the enumeration phase — that is exactly the cost the
// paper's EMMR-vs-EMVF2MR comparison measures.

// assignment maps pattern node index -> graph node. Only one side.
type assignment []graph.NodeID

// EnumerateMatches lists every valuation of ck at entity e within the
// node set gd (nil = whole graph). The designated variable is pinned to
// e. The number of search steps is returned alongside.
func (m *Matcher) EnumerateMatches(ck *CompiledKey, e graph.NodeID, gd *graph.NodeSet) (out []assignment, steps int) {
	if !ck.matchable {
		return nil, 0
	}
	if !m.G.IsEntity(e) || m.G.TypeOf(e) != ck.nodes[ck.x].typ || !gd.Contains(e) {
		return nil, 0
	}
	st := &enumState{
		m:    m,
		ck:   ck,
		gd:   gd,
		cur:  make(assignment, len(ck.nodes)),
		used: make(map[graph.NodeID]bool, len(ck.nodes)),
	}
	for i := range st.cur {
		st.cur[i] = graph.NoNode
	}
	st.cur[ck.x] = e
	st.used[e] = true
	// Verify self-loops on x (see eval.go).
	for _, ti := range ck.incident[ck.x] {
		t := ck.triples[ti]
		if t.subj == ck.x && t.obj == ck.x && !m.G.HasTriple(e, t.pred, e) {
			return nil, 0
		}
	}
	st.enumerate(1)
	return st.out, st.steps
}

type enumState struct {
	m     *Matcher
	ck    *CompiledKey
	gd    *graph.NodeSet
	cur   assignment
	used  map[graph.NodeID]bool
	out   []assignment
	steps int
}

func (st *enumState) enumerate(pos int) {
	if pos == len(st.ck.order) {
		cp := make(assignment, len(st.cur))
		copy(cp, st.cur)
		st.out = append(st.out, cp)
		return
	}
	st.steps++
	q := st.ck.order[pos]
	ti := st.ck.anchor[pos]
	t := st.ck.triples[ti]
	var cands []graph.Edge
	if t.subj == q {
		cands = st.m.G.In(st.cur[t.obj])
	} else {
		cands = st.m.G.Out(st.cur[t.subj])
	}
	for _, e := range cands {
		if e.Pred != t.pred {
			continue
		}
		if !st.feasibleOneSide(q, e.To) {
			continue
		}
		st.cur[q] = e.To
		st.used[e.To] = true
		st.enumerate(pos + 1)
		st.used[e.To] = false
		st.cur[q] = graph.NoNode
	}
}

// feasibleOneSide checks the single-side valuation conditions of §2.1:
// kind/type compatibility, injectivity, constants, and the existence of
// every pattern triple whose endpoints are both assigned.
func (st *enumState) feasibleOneSide(q int, a graph.NodeID) bool {
	g := st.m.G
	if !st.gd.Contains(a) || st.used[a] {
		return false
	}
	n := st.ck.nodes[q]
	switch n.kind {
	case kDesignated:
		return false
	case kEntityVar, kWildcard:
		if !g.IsEntity(a) || g.TypeOf(a) != n.typ {
			return false
		}
	case kValueVar:
		if !g.IsValue(a) {
			return false
		}
	case kConst:
		if !g.IsValue(a) || !st.m.Opts.valueEq(g.Label(a), g.Label(n.constID)) {
			return false
		}
	}
	for _, ti := range st.ck.incident[q] {
		t := st.ck.triples[ti]
		if t.subj == q && t.obj == q {
			if !g.HasTriple(a, t.pred, a) {
				return false
			}
			continue
		}
		if t.subj == q && st.cur[t.obj] != graph.NoNode {
			if !g.HasTriple(a, t.pred, st.cur[t.obj]) {
				return false
			}
		}
		if t.obj == q && st.cur[t.subj] != graph.NoNode {
			if !g.HasTriple(st.cur[t.subj], t.pred, a) {
				return false
			}
		}
	}
	return true
}

// Coincide reports whether matches s1 (at e1) and s2 (at e2) coincide
// under Eq (§2.2 / §3.1): entity variables other than x must be
// Eq-equivalent, value variables must be equal values, wildcards and
// constants impose no cross-side constraint beyond what the valuations
// already guarantee.
func (m *Matcher) Coincide(ck *CompiledKey, s1, s2 assignment, eq EqView) bool {
	for q, n := range ck.nodes {
		switch n.kind {
		case kEntityVar:
			if q == ck.x {
				continue
			}
			if !eq.Same(int32(s1[q]), int32(s2[q])) {
				return false
			}
		case kValueVar:
			if !m.Opts.valueEq(m.G.Label(s1[q]), m.G.Label(s2[q])) {
				return false
			}
		}
	}
	return true
}

// IdentifiedVF2 is the baseline equivalent of Identified: for each key
// on the pair's type it enumerates all matches at e1 and all matches at
// e2, then tests coincidence pairwise.
func (m *Matcher) IdentifiedVF2(e1, e2 graph.NodeID, eq EqView) (ok bool, by *CompiledKey, steps int) {
	t := m.G.TypeOf(e1)
	if m.G.TypeOf(e2) != t {
		return false, nil, 0
	}
	g1d := m.Neighborhood(e1)
	g2d := m.Neighborhood(e2)
	for _, ck := range m.byType[t] {
		m1, s1 := m.EnumerateMatches(ck, e1, g1d)
		m2, s2 := m.EnumerateMatches(ck, e2, g2d)
		steps += s1 + s2
		for _, a1 := range m1 {
			for _, a2 := range m2 {
				if m.Coincide(ck, a1, a2, eq) {
					return true, ck, steps
				}
			}
		}
	}
	return false, nil, steps
}
