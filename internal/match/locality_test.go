package match

import (
	"fmt"
	"math/rand"
	"testing"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

// TestDataLocalityRandom property-tests the §4.1 data-locality claim on
// random graphs: for every candidate pair and key, checking within the
// cached d-neighbors gives the same verdict as checking in the whole
// graph, under both the empty and a partially grown Eq.
func TestDataLocalityRandom(t *testing.T) {
	set, err := keys.ParseString(`
key KA for a {
    x -name-> n*
    x -rel-> $y:b
}
key KB for b {
    x -tag-> t*
    _:a -rel-> x
}
key KC for a {
    x -name-> n*
    x -near-> _w:b
    _w:b -tag-> t*
}`)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := localityRandomGraph(rng)
		m, err := New(g, set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		eq := eqrel.New(g.NumNodes())
		for round := 0; round < 2; round++ {
			for _, pr := range m.Candidates() {
				e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
				for _, ck := range m.KeysFor(g.TypeOf(e1)) {
					inD, _ := m.IdentifiedByKey(ck, e1, e2, m.Neighborhood(e1), m.Neighborhood(e2), eq)
					whole, _ := m.IdentifiedByKey(ck, e1, e2, nil, nil, eq)
					if inD != whole {
						t.Fatalf("seed %d %s (%s,%s): d-neighbor=%v whole=%v",
							seed, ck.Key.Name, g.Label(e1), g.Label(e2), inD, whole)
					}
					if whole {
						eq.Union(pr.A, pr.B)
					}
				}
			}
		}
	}
}

// TestQuickPairedNecessary: QuickPaired never rejects a pair that the
// full check identifies, across random graphs and partially grown Eq.
func TestQuickPairedNecessary(t *testing.T) {
	set, err := keys.ParseString(`
key KA for a {
    x -name-> n*
    x -rel-> $y:b
}
key KB for b {
    x -tag-> t*
}`)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(20); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := localityRandomGraph(rng)
		m, err := New(g, set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		eq := eqrel.New(g.NumNodes())
		for round := 0; round < 2; round++ {
			for _, pr := range m.Candidates() {
				e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
				for _, ck := range m.KeysFor(g.TypeOf(e1)) {
					ok, _ := m.IdentifiedByKey(ck, e1, e2, m.Neighborhood(e1), m.Neighborhood(e2), eq)
					if ok && !m.QuickPaired(ck, e1, e2) {
						t.Fatalf("seed %d: %s identifies (%s,%s) but QuickPaired rejects",
							seed, ck.Key.Name, g.Label(e1), g.Label(e2))
					}
					if ok {
						eq.Union(pr.A, pr.B)
					}
				}
			}
		}
	}
}

// TestPairingSubsumesQuick: the full pairing relation never accepts a
// pair the quick filter rejects (the quick filter is the x-local slice
// of the fixpoint, so Paired ⇒ QuickPaired).
func TestPairingSubsumesQuick(t *testing.T) {
	set, err := keys.ParseString(`
key KA for a {
    x -name-> n*
    x -rel-> $y:b
}`)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(40); seed < 48; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := localityRandomGraph(rng)
		m, err := New(g, set, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range m.Candidates() {
			e1, e2 := graph.NodeID(pr.A), graph.NodeID(pr.B)
			for _, ck := range m.KeysFor(g.TypeOf(e1)) {
				rel := m.ComputePairing(ck, e1, e2, m.Neighborhood(e1), m.Neighborhood(e2))
				if rel.Paired(e1, e2) && !m.QuickPaired(ck, e1, e2) {
					t.Fatalf("seed %d: pairing accepts (%s,%s) but quick filter rejects",
						seed, g.Label(e1), g.Label(e2))
				}
			}
		}
	}
}

func localityRandomGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New()
	nB := 4 + rng.Intn(4)
	var bs []graph.NodeID
	for i := 0; i < nB; i++ {
		b := g.MustAddEntity(fmt.Sprintf("b%d", i), "b")
		if rng.Intn(4) > 0 {
			g.MustAddTriple(b, "tag", g.AddValue(fmt.Sprintf("tag%d", rng.Intn(3))))
		}
		bs = append(bs, b)
	}
	nA := 5 + rng.Intn(4)
	for i := 0; i < nA; i++ {
		a := g.MustAddEntity(fmt.Sprintf("a%d", i), "a")
		if rng.Intn(5) > 0 {
			g.MustAddTriple(a, "name", g.AddValue(fmt.Sprintf("name%d", rng.Intn(3))))
		}
		g.MustAddTriple(a, "rel", bs[rng.Intn(len(bs))])
		if rng.Intn(2) == 0 {
			g.MustAddTriple(a, "near", bs[rng.Intn(len(bs))])
		}
	}
	return g
}
