package match

import (
	"sort"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
)

// This file builds the candidate set L of §4.1 — all entity pairs of the
// same type on which at least one key is defined — its pairing-filtered
// variant of §4.2, and the entity-pair dependency index used by the
// entity-dependency and incremental-checking optimizations (§4.2) and by
// the dep edges of the product graph (§5.1).

// Candidates returns the unfiltered candidate set L: every unordered
// pair of distinct same-type entities whose type has a key. The result
// is sorted for determinism.
func (m *Matcher) Candidates() []eqrel.Pair {
	var out []eqrel.Pair
	for _, t := range m.KeyedTypes() {
		ents := m.G.EntitiesOfType(t)
		for i := 0; i < len(ents); i++ {
			for j := i + 1; j < len(ents); j++ {
				out = append(out, eqrel.MakePair(int32(ents[i]), int32(ents[j])))
			}
		}
	}
	sortPairs(out)
	return out
}

// CandidatesPaired returns L filtered by the pairing necessary
// condition (§4.2 "Reducing L"): pairs no key can pair are dropped.
func (m *Matcher) CandidatesPaired() []eqrel.Pair {
	all := m.Candidates()
	out := all[:0]
	for _, pr := range all {
		if m.CanBePaired(graph.NodeID(pr.A), graph.NodeID(pr.B)) {
			out = append(out, pr)
		}
	}
	return out
}

func sortPairs(ps []eqrel.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// DependencyIndex records, for a fixed candidate list, which candidate
// pairs depend on which entities: pair (e1, e2) depends on (e1', e2')
// if the latter lies within the d-neighbors of the former and has the
// type of an entity variable y of some recursive key defined on the
// former (§4.2). The index is keyed by single entities: when (u, v) is
// identified, the union of Dependents(u) and Dependents(v) is the set
// of pairs whose checks may newly succeed.
type DependencyIndex struct {
	pairs      []eqrel.Pair
	dependents map[graph.NodeID][]int
	// valueSeed marks pairs whose type has at least one value-based key:
	// the L0 seed set of the entity-dependency optimization.
	valueSeed []bool
	// recursiveOnly marks pairs whose type has only recursive keys.
	recursiveOnly []bool
}

// BuildDependencyIndex analyzes the candidate list against the matcher's
// key set.
func (m *Matcher) BuildDependencyIndex(pairs []eqrel.Pair) *DependencyIndex {
	idx := &DependencyIndex{
		pairs:         pairs,
		dependents:    make(map[graph.NodeID][]int),
		valueSeed:     make([]bool, len(pairs)),
		recursiveOnly: make([]bool, len(pairs)),
	}
	for i, pr := range pairs {
		a, b := graph.NodeID(pr.A), graph.NodeID(pr.B)
		t := m.G.TypeOf(a)
		typeName := m.G.TypeName(t)
		idx.valueSeed[i] = m.Set.HasValueBasedKeyForType(typeName)
		idx.recursiveOnly[i] = !idx.valueSeed[i]

		// Types of entity variables across the recursive keys on t.
		depTypes := make(map[graph.TypeID]bool)
		for _, ck := range m.byType[t] {
			if !ck.Key.Recursive {
				continue
			}
			for _, tn := range ck.Key.EntityVarTypes() {
				if tid, ok := m.G.TypeByName(tn); ok {
					depTypes[tid] = true
				}
			}
		}
		if len(depTypes) == 0 {
			continue
		}
		register := func(n graph.NodeID) {
			if n == a || n == b {
				return
			}
			if !m.G.IsEntity(n) || !depTypes[m.G.TypeOf(n)] {
				return
			}
			ds := idx.dependents[n]
			if len(ds) > 0 && ds[len(ds)-1] == i {
				return // already registered via the other neighborhood
			}
			idx.dependents[n] = append(ds, i)
		}
		m.Neighborhood(a).Each(register)
		m.Neighborhood(b).Each(register)
	}
	return idx
}

// Pairs returns the candidate list the index was built over.
func (d *DependencyIndex) Pairs() []eqrel.Pair { return d.pairs }

// Links counts the entity→pair dependency registrations: the dep-edge
// volume of the product graph in §5.1.
func (d *DependencyIndex) Links() int {
	n := 0
	for _, ds := range d.dependents {
		n += len(ds)
	}
	return n
}

// Dependents returns the indices (into Pairs) of candidate pairs that
// depend on entity n.
func (d *DependencyIndex) Dependents(n graph.NodeID) []int { return d.dependents[n] }

// HasValueSeed reports whether pair i belongs to the L0 seed set: its
// type has a value-based key, so it can be identified without waiting
// for any other pair.
func (d *DependencyIndex) HasValueSeed(i int) bool { return d.valueSeed[i] }

// RecursiveOnly reports whether pair i can only be identified by
// recursive keys.
func (d *DependencyIndex) RecursiveOnly(i int) bool { return d.recursiveOnly[i] }
